// Tests for tsn_telemetry: metrics registry determinism, Prometheus
// exposition edge cases, run manifests, and the Chrome trace-event
// timeline builder.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"

namespace tsn::telemetry {
namespace {

using namespace tsn::literals;

// ------------------------------------------------------- metric primitives
TEST(CounterTest, MonotonicAccumulation) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndHighWaterMark) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(2.0);  // below current max: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(HistogramTest, CumulativeBucketsArePrometheusShaped) {
  Histogram h({10.0, 20.0, 50.0});
  h.observe(5.0);    // <= 10
  h.observe(10.0);   // boundary lands in its own bucket (le semantics)
  h.observe(15.0);   // <= 20
  h.observe(100.0);  // +Inf only
  const std::vector<std::uint64_t> cumulative = h.cumulative_counts();
  ASSERT_EQ(cumulative.size(), 4u);  // 3 bounds + the implicit +Inf
  EXPECT_EQ(cumulative[0], 2u);
  EXPECT_EQ(cumulative[1], 3u);
  EXPECT_EQ(cumulative[2], 3u);
  EXPECT_EQ(cumulative[3], 4u);  // +Inf always equals count()
  EXPECT_EQ(cumulative.back(), h.count());
  EXPECT_DOUBLE_EQ(h.sum(), 130.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({10.0, 10.0}), Error);
  EXPECT_THROW(Histogram({20.0, 10.0}), Error);
}

// ----------------------------------------------------------- the registry
TEST(MetricsRegistryTest, EmptyRegistryRendersEmpty) {
  const MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.series_count(), 0u);
  EXPECT_EQ(registry.to_prometheus(), "");
  EXPECT_EQ(registry.to_json(), "{\"metrics\":[]}");
}

TEST(MetricsRegistryTest, ReturnsStableSeriesReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("tsn.test.hits", {{"port", "1"}});
  a.inc();
  Counter& b = registry.counter("tsn.test.hits", {{"port", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistryTest, RejectsInvalidNamesAndKindMismatch) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), Error);
  EXPECT_THROW(registry.counter(".leading"), Error);
  EXPECT_THROW(registry.counter("trailing."), Error);
  EXPECT_THROW(registry.counter("UpperCase"), Error);
  EXPECT_THROW(registry.counter("tsn.ok", {{"Bad-Key", "v"}}), Error);
  registry.counter("tsn.test.series");
  EXPECT_THROW(registry.gauge("tsn.test.series"), Error);
  registry.histogram("tsn.test.hist", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("tsn.test.hist", {1.0, 3.0}), Error);
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("tsn.test.odd", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("tsn_test_odd{path=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramHasCumulativeBucketsAndInf) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("tsn.test.latency_us", {10.0, 20.0},
                                    {{"flow", "0"}}, "per-flow latency");
  h.observe(5.0);
  h.observe(15.0);
  h.observe(99.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# HELP tsn_test_latency_us per-flow latency\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tsn_test_latency_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("tsn_test_latency_us_bucket{flow=\"0\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsn_test_latency_us_bucket{flow=\"0\",le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsn_test_latency_us_bucket{flow=\"0\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsn_test_latency_us_sum{flow=\"0\"} 119\n"), std::string::npos);
  EXPECT_NE(text.find("tsn_test_latency_us_count{flow=\"0\"} 3\n"), std::string::npos);
}

/// The core determinism property: snapshots are a pure function of the
/// observed values, independent of registration order.
TEST(MetricsRegistryTest, SnapshotByteIdenticalAcrossShuffledRegistration) {
  const auto populate = [](MetricsRegistry& registry, bool shuffled) {
    const std::vector<std::pair<std::string, std::string>> series = {
        {"tsn.a.one", "x"}, {"tsn.b.two", "y"}, {"tsn.a.one", "z"}, {"tsn.c.three", "w"}};
    if (shuffled) {
      for (auto it = series.rbegin(); it != series.rend(); ++it) {
        registry.counter(it->first, {{"tag", it->second}}).add(7);
      }
    } else {
      for (const auto& [name, tag] : series) {
        registry.counter(name, {{"tag", tag}}).add(7);
      }
    }
    registry.gauge("tsn.g.depth", {{"q", "3"}}).set(1.25);
    registry.histogram("tsn.h.us", {1.0, 2.0}).observe(1.5);
  };
  MetricsRegistry forward;
  MetricsRegistry shuffled;
  populate(forward, false);
  populate(shuffled, true);
  EXPECT_EQ(forward.to_prometheus(), shuffled.to_prometheus());
  EXPECT_EQ(forward.to_json(), shuffled.to_json());
}

TEST(MetricsRegistryTest, WallNamespaceIsExcludable) {
  MetricsRegistry registry;
  registry.counter("tsn.sim.events").add(10);
  registry.gauge("wall.run_ms").set(123.0);
  EXPECT_TRUE(is_wall_metric("wall.run_ms"));
  EXPECT_FALSE(is_wall_metric("tsn.sim.events"));

  RenderOptions no_wall;
  no_wall.include_wall = false;
  const std::string with = registry.to_prometheus();
  const std::string without = registry.to_prometheus(no_wall);
  EXPECT_NE(with.find("wall_run_ms"), std::string::npos);
  EXPECT_EQ(without.find("wall_run_ms"), std::string::npos);
  EXPECT_NE(without.find("tsn_sim_events 10"), std::string::npos);
  EXPECT_EQ(registry.to_json(no_wall).find("wall.run_ms"), std::string::npos);
}

// ---------------------------------------------------------- run manifests
TEST(RunManifestTest, Fnv1aMatchesReferenceVectors) {
  EXPECT_EQ(fnv1a_hash(""), 0xcbf29ce484222325ULL);   // offset basis
  EXPECT_EQ(fnv1a_hash("a"), 0xaf63dc4c8601ec8cULL);  // published test vector
  EXPECT_EQ(fnv1a_hash("scenario"), fnv1a_hash("scenario"));
  EXPECT_NE(fnv1a_hash("scenario"), fnv1a_hash("scenari0"));
}

TEST(RunManifestTest, MakeManifestStampsHashAndJsonShape) {
  const RunManifest m = make_manifest("simulate topology=ring switches=4", "planned", 42);
  EXPECT_EQ(m.scenario_hash, fnv1a_hash("simulate topology=ring switches=4"));
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"tool\":\"tsnb\""), std::string::npos);
  EXPECT_NE(json.find(std::string("\"version\":\"") + kToolVersion + "\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"simulate topology=ring switches=4\""),
            std::string::npos);
  EXPECT_NE(json.find("\"preset\":\"planned\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"scenario_hash\":\""), std::string::npos);
}

TEST(RunManifestTest, StampsIntoSnapshotsAndTimelines) {
  const RunManifest m = make_manifest("test scenario", "unit", 7);
  MetricsRegistry registry;
  registry.counter("tsn.test.hits").inc();
  RenderOptions options;
  options.manifest = &m;
  EXPECT_EQ(registry.to_prometheus(options).rfind("# manifest: {", 0), 0u);
  EXPECT_EQ(registry.to_json(options).rfind("{\"manifest\":{", 0), 0u);

  const TimelineBuilder timeline;
  EXPECT_NE(timeline.to_json(&m).find("\"metadata\":{\"manifest\":{"), std::string::npos);
}

// ----------------------------------------------------- timeline exporting
TEST(TimelineBuilderTest, RendersChromeTraceEventShapes) {
  TimelineBuilder timeline;
  timeline.set_process_name(1, "flows");
  timeline.set_thread_name(1, 3, "flow 3");
  timeline.add_complete("s0:1 -> s1", "hop", 1, 3, TimePoint(1500), 500_ns,
                        {{"seq", "9"}});
  timeline.add_instant("drop", "hop", 1, 3, TimePoint(2000));
  timeline.add_counter("queue_depth", 3, TimePoint(65'000), "packets", 2.0);
  EXPECT_EQ(timeline.event_count(), 3u);

  const std::string json = timeline.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Metadata naming events come first so viewers label lanes up front.
  EXPECT_NE(json.find("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
                      "\"args\":{\"name\":\"flows\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":3,"
                      "\"args\":{\"name\":\"flow 3\"}}"),
            std::string::npos);
  // Integer ns render as exact fractional microseconds.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"s0:1 -> s1\",\"cat\":\"hop\",\"pid\":1,"
                      "\"tid\":3,\"ts\":1.500,\"dur\":0.500,\"args\":{\"seq\":\"9\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\",\"name\":\"queue_depth\",\"pid\":3,\"tid\":0,"
                      "\"ts\":65.000,\"args\":{\"packets\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

// -------------------------------------------------------------- the logger
TEST(LogLevelTest, ParsesLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");  // the line-prefix tag
}

TEST(LoggerTest, LevelGatesEnabled) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(saved);
}

}  // namespace
}  // namespace tsn::telemetry
