// Tests for Injection Time Planning and CQF analysis: load spreading,
// queue-depth prediction, Eq. (1) bounds, scheduling-cycle math.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/cqf_analysis.hpp"
#include "sched/itp.hpp"
#include "sched/qbv.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn::sched {
namespace {

using namespace tsn::literals;

traffic::TsWorkloadParams paper_params(std::size_t flows) {
  traffic::TsWorkloadParams p;
  p.flow_count = flows;
  p.frame_bytes = 64;
  p.period = milliseconds(10);
  return p;
}

// ------------------------------------------------------------------- ITP
TEST(ItpPlannerTest, SpreadsFlowsAcrossSlots) {
  const topo::BuiltTopology ring = topo::make_ring(6);
  const auto flows =
      traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3], paper_params(512));
  ItpPlanner planner(ring.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  // 10 ms / 65 us = ~153 slots; 512 flows spread to ceil(512/153) = 4.
  EXPECT_LE(plan.max_queue_load, 5);
  EXPECT_GE(plan.max_queue_load, 4);
  EXPECT_TRUE(plan.wire_feasible);
  EXPECT_EQ(plan.injection_slot.size(), 512u);
}

TEST(ItpPlannerTest, NaivePlanConcentratesLoad) {
  const topo::BuiltTopology ring = topo::make_ring(6);
  const auto flows =
      traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3], paper_params(512));
  ItpPlanner planner(ring.topology, 65_us);
  const ItpPlan naive = planner.plan_naive(flows);
  // Everyone injects at period start: the whole load lands in one slot.
  EXPECT_EQ(naive.max_queue_load, 512);
  EXPECT_FALSE(naive.wire_feasible);  // 512 x 672 ns >> 65 us
}

TEST(ItpPlannerTest, PaperScaleDepthIsWellUnderTwelve) {
  // The paper provisions depth 12 for 1024 flows; our greedy first-fit
  // achieves the ceil(1024/153) = 7 optimum.
  const topo::BuiltTopology ring = topo::make_ring(6);
  const auto flows =
      traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3], paper_params(1024));
  ItpPlanner planner(ring.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  EXPECT_LE(plan.max_queue_load, 12);
  EXPECT_GE(plan.max_queue_load, 7);
  EXPECT_TRUE(plan.wire_feasible);
}

TEST(ItpPlannerTest, ApplyWritesOffsets) {
  const topo::BuiltTopology ring = topo::make_ring(3);
  auto flows =
      traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[1], paper_params(16));
  ItpPlanner planner(ring.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  plan.apply(flows);
  for (const traffic::FlowSpec& f : flows) {
    const auto it = plan.injection_slot.find(f.id);
    ASSERT_NE(it, plan.injection_slot.end());
    EXPECT_EQ(f.injection_offset.ns(), it->second * 65'000);
    EXPECT_LT(f.injection_offset, f.period);
  }
}

TEST(ItpPlannerTest, MixedPeriodsUseHyperperiod) {
  const topo::BuiltTopology lin = topo::make_linear(3);
  std::vector<traffic::FlowSpec> flows;
  auto a = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[2], paper_params(4));
  traffic::TsWorkloadParams p5 = paper_params(4);
  p5.period = milliseconds(5);
  auto b = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[2], p5, 100);
  flows.insert(flows.end(), a.begin(), a.end());
  flows.insert(flows.end(), b.begin(), b.end());
  ItpPlanner planner(lin.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  EXPECT_EQ(plan.hyperperiod, milliseconds(10));
  EXPECT_LE(plan.max_queue_load, 2);
}

TEST(ItpPlannerTest, IgnoresNonTsFlows) {
  const topo::BuiltTopology lin = topo::make_linear(3);
  std::vector<traffic::FlowSpec> flows = {
      traffic::make_rc_flow(1, lin.host_nodes[0], lin.host_nodes[2],
                            DataRate::megabits_per_sec(100))};
  ItpPlanner planner(lin.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  EXPECT_TRUE(plan.injection_slot.empty());
  EXPECT_EQ(plan.max_queue_load, 0);
}

TEST(ItpPlannerTest, ThrowsOnUnroutableTsFlow) {
  topo::Topology t;
  const auto h0 = t.add_host("h0");
  const auto h1 = t.add_host("h1");
  traffic::FlowSpec f;
  f.id = 1;
  f.type = net::TrafficClass::kTimeSensitive;
  f.src_host = h0;
  f.dst_host = h1;
  f.period = milliseconds(10);
  f.deadline = milliseconds(8);
  ItpPlanner planner(t, 65_us);
  EXPECT_THROW((void)planner.plan({f}), Error);
}

// --------------------------------------------------------- CQF analysis
TEST(CqfAnalysisTest, BoundsMatchEquationOne) {
  const auto b = cqf_bounds(4, 65_us);
  EXPECT_EQ(b.min, 195_us);  // (4-1) x 65
  EXPECT_EQ(b.max, 325_us);  // (4+1) x 65
}

TEST(CqfAnalysisTest, HopCountOnRing) {
  const topo::BuiltTopology ring = topo::make_ring(6);
  traffic::FlowSpec f;
  f.id = 0;
  f.type = net::TrafficClass::kTimeSensitive;
  f.src_host = ring.host_nodes[0];
  f.dst_host = ring.host_nodes[2];
  f.period = milliseconds(10);
  f.deadline = milliseconds(1);
  EXPECT_EQ(hop_count(ring.topology, f), 3);
}

TEST(CqfAnalysisTest, DeadlineFeasibility) {
  const topo::BuiltTopology ring = topo::make_ring(6);
  auto flows = traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3],
                                      paper_params(32));
  // 4 switch hops -> worst latency (4+1) x slot. Deadline >= 1 ms.
  EXPECT_TRUE(deadlines_met(ring.topology, flows, 65_us));
  EXPECT_FALSE(deadlines_met(ring.topology, flows, 250_us));  // 1.25 ms > 1 ms

  const auto max_slot = max_feasible_slot(ring.topology, flows, 5_us);
  ASSERT_TRUE(max_slot.has_value());
  // Tightest: 1 ms deadline / 5 hops = 200 us.
  EXPECT_EQ(*max_slot, 200_us);
  EXPECT_TRUE(deadlines_met(ring.topology, flows, *max_slot));
}

TEST(CqfAnalysisTest, SchedulingCycleIsLcm) {
  std::vector<traffic::FlowSpec> flows;
  traffic::FlowSpec f;
  f.type = net::TrafficClass::kTimeSensitive;
  f.src_host = 0;
  f.dst_host = 1;
  f.deadline = milliseconds(8);
  f.period = milliseconds(4);
  flows.push_back(f);
  f.period = milliseconds(10);
  flows.push_back(f);
  EXPECT_EQ(scheduling_cycle(flows), milliseconds(20));
}

TEST(CqfAnalysisTest, GateEntryCounts) {
  EXPECT_EQ(gate_entries_for_cqf(), 2);
  // A full per-slot program over a 10 ms cycle of 65 us slots.
  EXPECT_EQ(gate_entries_for_full_cycle(milliseconds(10), 65_us), 154);
}

// Property: ITP peak load is never worse than naive and never better than
// the ceiling bound.
struct ItpCase {
  std::size_t flows;
  std::size_t ring_size;
  std::size_t dst_index;
};

class ItpProperty : public ::testing::TestWithParam<ItpCase> {};

TEST_P(ItpProperty, PeakLoadWithinBounds) {
  const auto [n_flows, ring_size, dst] = GetParam();
  const topo::BuiltTopology ring = topo::make_ring(ring_size);
  const auto flows = traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[dst],
                                            paper_params(n_flows));
  ItpPlanner planner(ring.topology, 65_us);
  const ItpPlan plan = planner.plan(flows);
  const ItpPlan naive = planner.plan_naive(flows);
  const std::int64_t period_slots = milliseconds(10) / 65_us;
  const std::int64_t lower =
      (static_cast<std::int64_t>(n_flows) + period_slots - 1) / period_slots;
  EXPECT_GE(plan.max_queue_load, lower);
  EXPECT_LE(plan.max_queue_load, naive.max_queue_load);
  // Greedy first-fit should be within 2x of the ceiling bound.
  EXPECT_LE(plan.max_queue_load, 2 * lower + 1);
  // Every flow got a slot inside its period.
  for (const auto& [id, slot] : plan.injection_slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, period_slots);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ItpProperty,
                         ::testing::Values(ItpCase{16, 3, 1}, ItpCase{100, 4, 2},
                                           ItpCase{256, 6, 3}, ItpCase{512, 6, 5},
                                           ItpCase{1024, 6, 3}, ItpCase{1, 3, 2},
                                           ItpCase{153, 6, 1}, ItpCase{154, 6, 1}));


// ------------------------------------------------------------ Qbv synthesis
TEST(QbvSynthesisTest, WindowsFollowItpScheduleOnChain) {
  const topo::BuiltTopology lin = topo::make_linear(3);
  traffic::TsWorkloadParams p;
  p.flow_count = 4;
  p.period = milliseconds(1);  // 16 slots of 62.5 us
  auto flows = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[2], p);
  const Duration slot(62'500);
  ItpPlanner planner(lin.topology, slot);
  const ItpPlan plan = planner.plan(flows);
  plan.apply(flows);

  QbvSynthesizer synth(lin.topology, slot);
  const QbvProgram program = synth.synthesize(flows);
  EXPECT_EQ(program.cycle, milliseconds(1));
  EXPECT_EQ(program.slots_per_cycle, 16);
  // Route: s0 (to s1), s1 (to s2), s2 (to h2) -> three programmed ports.
  EXPECT_EQ(program.ports.size(), 3u);
  EXPECT_GT(program.max_entries, 0);
  EXPECT_LE(program.max_entries, 16);

  // Each flow's departure window at switch j is slot (inject + j + 1):
  // check on the first switch of the path.
  const auto first_hop = *lin.topology.route(lin.host_nodes[0], lin.host_nodes[2]);
  topo::NodeId s0 = topo::kInvalidNode;
  std::uint8_t port = 0;
  for (const topo::Hop& h : first_hop) {
    if (lin.topology.node(h.node).kind == topo::NodeKind::kSwitch) {
      s0 = h.node;
      port = h.out_port;
      break;
    }
  }
  const auto& gcl = program.ports.at({s0, port}).egress;
  for (const traffic::FlowSpec& f : flows) {
    const std::int64_t window = (f.injection_offset / slot + 1) % 16;
    const tables::GateBitmap gates = gcl.gates_at(slot * window);
    EXPECT_TRUE(gates & (1u << traffic::kTsPriority))
        << "flow " << f.id << " window slot " << window;
    // Background queues are shut during the TS window.
    EXPECT_FALSE(gates & 0x01) << "flow " << f.id;
  }
}

TEST(QbvSynthesisTest, AdjacentWindowsMerge) {
  // Two flows in consecutive slots produce one merged TS entry.
  const topo::BuiltTopology lin = topo::make_linear(2);
  std::vector<traffic::FlowSpec> flows;
  for (int i = 0; i < 2; ++i) {
    traffic::FlowSpec f;
    f.id = static_cast<net::FlowId>(i);
    f.type = net::TrafficClass::kTimeSensitive;
    f.src_host = lin.host_nodes[0];
    f.dst_host = lin.host_nodes[1];
    f.period = milliseconds(1);
    f.deadline = milliseconds(1);
    f.priority = traffic::kTsPriority;
    f.vid = static_cast<VlanId>(1 + i);
    f.injection_offset = Duration(62'500) * i;  // slots 0 and 1
    flows.push_back(f);
  }
  QbvSynthesizer synth(lin.topology, Duration(62'500));
  const QbvProgram program = synth.synthesize(flows);
  // Windows at slots 1 and 2 merge: [bg x1][ts x2][bg x13] -> 3 entries
  // (no merge across the cycle wrap: entry 0 stays anchored at the base).
  EXPECT_EQ(program.max_entries, 3);
  const auto& gcl = program.ports.begin()->second.egress;
  EXPECT_EQ(gcl.cycle_time(), milliseconds(1));
}

TEST(QbvSynthesisTest, ValidatesInput) {
  const topo::BuiltTopology lin = topo::make_linear(2);
  traffic::TsWorkloadParams p;
  p.flow_count = 1;
  p.period = milliseconds(10);
  auto flows = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[1], p);
  // 65 us does not divide 10 ms.
  QbvSynthesizer bad_slot(lin.topology, 65_us);
  EXPECT_THROW((void)bad_slot.synthesize(flows), Error);
  // No TS flows.
  QbvSynthesizer ok(lin.topology, Duration(62'500));
  std::vector<traffic::FlowSpec> none = {traffic::make_be_flow(
      9, lin.host_nodes[0], lin.host_nodes[1], DataRate::megabits_per_sec(10))};
  EXPECT_THROW((void)ok.synthesize(none), Error);
}

TEST(QbvSynthesisTest, EntriesBoundedBySlotsPerCycle) {
  // Guideline 2: the gate table never needs more entries than slots in
  // the scheduling cycle (merging only shrinks it).
  const topo::BuiltTopology ring = topo::make_ring(4);
  traffic::TsWorkloadParams p;
  p.flow_count = 200;
  p.period = milliseconds(10);
  auto flows = traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[2], p);
  const Duration slot(62'500);  // 160 slots per cycle
  ItpPlanner planner(ring.topology, slot);
  planner.plan(flows).apply(flows);
  QbvSynthesizer synth(ring.topology, slot);
  const QbvProgram program = synth.synthesize(flows);
  EXPECT_LE(program.max_entries, program.slots_per_cycle);
  EXPECT_EQ(program.slots_per_cycle, 160);
}

}  // namespace
}  // namespace tsn::sched
