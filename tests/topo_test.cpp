// Tests for the topology graph, routing, and the paper's three canonical
// industrial topologies (enabled-TSN-port counts: star 3, linear 2, ring 1).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topo/builders.hpp"
#include "topo/topology.hpp"

namespace tsn::topo {
namespace {

TEST(TopologyTest, ConnectAssignsPortsInOrder) {
  Topology t;
  const NodeId a = t.add_switch("a");
  const NodeId b = t.add_switch("b");
  const NodeId c = t.add_switch("c");
  const LinkId ab = t.connect(a, b);
  const LinkId ac = t.connect(a, c);
  EXPECT_EQ(t.link(ab).port_a, 0);
  EXPECT_EQ(t.link(ac).port_a, 1);
  EXPECT_EQ(t.node(a).port_count, 2);
  EXPECT_EQ(t.node(b).port_count, 1);
  EXPECT_EQ(t.peer(ab, a), b);
  EXPECT_EQ(t.peer(ab, b), a);
}

TEST(TopologyTest, ConnectValidation) {
  Topology t;
  const NodeId a = t.add_switch("a");
  EXPECT_THROW((void)t.connect(a, a), Error);
  EXPECT_THROW((void)t.connect(a, 99), Error);
  const NodeId b = t.add_switch("b");
  EXPECT_THROW((void)t.connect(a, b, Duration(0)), Error);
}

TEST(TopologyTest, RouteOnChain) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId s0 = t.add_switch("s0");
  const NodeId s1 = t.add_switch("s1");
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, s0);
  t.connect(s0, s1);
  t.connect(s1, h1);
  const auto route = t.route(h0, h1);
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->size(), 3u);
  EXPECT_EQ((*route)[0].node, h0);
  EXPECT_EQ((*route)[1].node, s0);
  EXPECT_EQ((*route)[2].node, s1);
}

TEST(TopologyTest, RouteRespectsLinkDirection) {
  Topology t;
  const NodeId a = t.add_switch("a");
  const NodeId b = t.add_switch("b");
  t.connect(a, b, Duration(50), DataRate::gigabits_per_sec(1), /*directed=*/true);
  EXPECT_TRUE(t.route(a, b).has_value());
  EXPECT_FALSE(t.route(b, a).has_value());
}

TEST(TopologyTest, RouteDoesNotTransitHosts) {
  // h0 - s0 - hMid - s1 would be shorter through the host; must not be.
  Topology t;
  const NodeId s0 = t.add_switch("s0");
  const NodeId s1 = t.add_switch("s1");
  const NodeId mid = t.add_host("mid");
  t.connect(s0, mid);
  t.connect(mid, s1);
  EXPECT_FALSE(t.route(s0, s1).has_value());
}

TEST(TopologyTest, RouteToSelfIsEmpty) {
  Topology t;
  const NodeId a = t.add_switch("a");
  const auto r = t.route(a, a);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(TopologyTest, UnreachableReturnsNullopt) {
  Topology t;
  const NodeId a = t.add_switch("a");
  const NodeId b = t.add_switch("b");
  EXPECT_FALSE(t.route(a, b).has_value());
}

// ----------------------------------------------------------- builders
TEST(BuildersTest, StarMatchesPaperSetup) {
  // Core with three children: 4 switches, core enables 3 TSN ports.
  const BuiltTopology star = make_star(3);
  EXPECT_EQ(star.switch_nodes.size(), 4u);
  EXPECT_EQ(star.host_nodes.size(), 4u);
  EXPECT_EQ(star.topology.enabled_tsn_ports(star.switch_nodes[0]), 3);
  EXPECT_EQ(star.topology.enabled_tsn_ports(star.switch_nodes[1]), 1);
  EXPECT_EQ(star.topology.max_enabled_tsn_ports(), 3);
}

TEST(BuildersTest, LinearMatchesPaperSetup) {
  const BuiltTopology lin = make_linear(6);
  EXPECT_EQ(lin.switch_nodes.size(), 6u);
  // End switches enable 1, middle switches 2 — the paper's linear config.
  EXPECT_EQ(lin.topology.enabled_tsn_ports(lin.switch_nodes[0]), 1);
  EXPECT_EQ(lin.topology.enabled_tsn_ports(lin.switch_nodes[3]), 2);
  EXPECT_EQ(lin.topology.max_enabled_tsn_ports(), 2);
}

TEST(BuildersTest, RingMatchesPaperSetup) {
  const BuiltTopology ring = make_ring(6);
  EXPECT_EQ(ring.switch_nodes.size(), 6u);
  // Unidirectional ring: every switch enables exactly 1 TSN egress port.
  for (const NodeId s : ring.switch_nodes) {
    EXPECT_EQ(ring.topology.enabled_tsn_ports(s), 1);
  }
}

TEST(BuildersTest, RingRouteGoesOneWay) {
  const BuiltTopology ring = make_ring(6);
  // From h0 to h3: must traverse s0 -> s1 -> s2 -> s3 (4 switches).
  const auto route = ring.topology.route(ring.host_nodes[0], ring.host_nodes[3]);
  ASSERT_TRUE(route.has_value());
  int switches = 0;
  for (const Hop& h : *route) {
    if (ring.topology.node(h.node).kind == NodeKind::kSwitch) ++switches;
  }
  EXPECT_EQ(switches, 4);
  // From h0 to h5 the unidirectional ring forces the long way (6 switches).
  const auto back = ring.topology.route(ring.host_nodes[0], ring.host_nodes[5]);
  ASSERT_TRUE(back.has_value());
  switches = 0;
  for (const Hop& h : *back) {
    if (ring.topology.node(h.node).kind == NodeKind::kSwitch) ++switches;
  }
  EXPECT_EQ(switches, 6);
}

TEST(BuildersTest, EveryHostRoutesToEveryOtherInStarAndLinear) {
  for (const BuiltTopology& built : {make_star(3), make_linear(4)}) {
    for (const NodeId a : built.host_nodes) {
      for (const NodeId b : built.host_nodes) {
        if (a == b) continue;
        EXPECT_TRUE(built.topology.route(a, b).has_value());
      }
    }
  }
}

TEST(BuildersTest, EnabledPortsRejectsHost) {
  const BuiltTopology ring = make_ring(3);
  EXPECT_THROW((void)ring.topology.enabled_tsn_ports(ring.host_nodes[0]), Error);
}

TEST(BuildersTest, SizeValidation) {
  EXPECT_THROW((void)make_ring(2), Error);
  EXPECT_THROW((void)make_linear(1), Error);
  EXPECT_THROW((void)make_star(0), Error);
}

}  // namespace
}  // namespace tsn::topo
