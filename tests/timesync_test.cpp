// Tests for the gPTP substrate: drifting clocks, the discipline map, and
// domain convergence to sub-50ns error (the paper's FPGA prototype bound).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "event/simulator.hpp"
#include "timesync/clock.hpp"
#include "timesync/gptp.hpp"

namespace tsn::timesync {
namespace {

using namespace tsn::literals;

// ------------------------------------------------------------ LocalClock
TEST(LocalClockTest, ZeroDriftTracksTrueTime) {
  const LocalClock clock(0.0);
  EXPECT_EQ(clock.raw(TimePoint(1'000'000)).ns(), 1'000'000);
  EXPECT_EQ(clock.synced(TimePoint(1'000'000)).ns(), 1'000'000);
}

TEST(LocalClockTest, DriftAccumulates) {
  const LocalClock clock(+100.0);  // 100 ppm fast
  // After 1 s of true time the raw clock reads 1 s + 100 us.
  EXPECT_NEAR(static_cast<double>(clock.raw(TimePoint(1'000'000'000)).ns()),
              1'000'100'000.0, 1.0);
}

TEST(LocalClockTest, DisciplineStepsAndRetunes) {
  LocalClock clock(+50.0);
  const TimePoint t0(1'000'000);
  // Step by -10 us and run at the corrective ratio that cancels the drift.
  const double ratio = 1.0 / (1.0 + 50e-6);
  const Duration step = TimePoint(t0.ns()) - clock.synced(t0) + Duration(-10'000);
  clock.discipline(t0, step, ratio);
  EXPECT_NEAR(static_cast<double>(clock.synced(t0).ns()), static_cast<double>(t0.ns()) - 10'000, 1.0);
  // One second later the corrected clock still tracks true time.
  const TimePoint t1 = t0 + 1_s;
  EXPECT_NEAR(static_cast<double>(clock.synced(t1).ns()),
              static_cast<double>(t1.ns()) - 10'000, 5.0);
}

TEST(LocalClockTest, TrueForSyncedIsInverse) {
  LocalClock clock(-30.0);
  clock.discipline(TimePoint(5'000'000), Duration(1234), 1.00002);
  for (const std::int64_t target : {10'000'000LL, 123'456'789LL, 999'999'999LL}) {
    const TimePoint truth = clock.true_for_synced(TimePoint(target));
    EXPECT_NEAR(static_cast<double>(clock.synced(truth).ns()), static_cast<double>(target), 2.0);
  }
}

TEST(LocalClockTest, TimestampQuantizes) {
  const LocalClock clock(0.0, Duration(8));
  EXPECT_EQ(clock.timestamp(TimePoint(17)).ns(), 16);
  EXPECT_EQ(clock.timestamp(TimePoint(16)).ns(), 16);
  EXPECT_EQ(clock.timestamp(TimePoint(15)).ns(), 8);
}

TEST(LocalClockTest, RejectsBadConfig) {
  EXPECT_THROW(LocalClock(-2'000'000.0), Error);  // oscillator would run backwards
  EXPECT_THROW(LocalClock(0.0, Duration(0)), Error);
  LocalClock ok(0.0);
  EXPECT_THROW(ok.discipline(TimePoint(0), Duration(0), 0.0), Error);
}

// ----------------------------------------------------------- GptpDomain
GptpConfig fast_config() {
  GptpConfig cfg;
  cfg.sync_interval = 125_ms;
  cfg.pdelay_interval = 250_ms;
  return cfg;
}

TEST(GptpDomainTest, TwoNodeConvergence) {
  event::Simulator sim;
  GptpDomain domain(sim, 1);
  GptpNode& gm = domain.add_node("gm", +12.0);
  GptpNode& slave = domain.add_node("slave", -18.0);
  domain.connect(gm, slave, 50_ns);
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 2_s);

  EXPECT_GT(slave.syncs_received(), 10u);
  // Link delay (50 ns) measured to within quantization error.
  EXPECT_NEAR(static_cast<double>(slave.link_delay_estimate().ns()), 50.0, 16.0);
  // Paper prototype: synchronization precision below 50 ns.
  const Duration err = domain.sync_error(slave);
  EXPECT_LT(std::abs(static_cast<double>(err.ns())), 50.0);
}

TEST(GptpDomainTest, SixSwitchChainStaysUnder50ns) {
  // The ring demo's scale: 6 switches in a boundary-clock chain.
  event::Simulator sim;
  GptpDomain domain(sim, 99);
  GptpNode* prev = &domain.add_node("gm", +20.0);
  for (int i = 1; i < 6; ++i) {
    GptpNode& next = domain.add_node("s" + std::to_string(i), (i % 2) ? -15.0 : +10.0);
    domain.connect(*prev, next, 50_ns);
    prev = &next;
  }
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 3_s);
  EXPECT_LT(domain.max_abs_sync_error().ns(), 50);
}

TEST(GptpDomainTest, ErrorGrowsWithDepth) {
  event::Simulator sim;
  GptpDomain domain(sim, 5);
  GptpNode* prev = &domain.add_node("gm", 0.0);
  std::vector<GptpNode*> nodes{prev};
  for (int i = 1; i < 5; ++i) {
    GptpNode& next = domain.add_node("n" + std::to_string(i), 25.0);
    domain.connect(*prev, next, 50_ns);
    nodes.push_back(&next);
    prev = &next;
  }
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 3_s);
  // Leaf error should not be (much) smaller than first-hop error on
  // average; mostly we just require everything converged.
  for (GptpNode* n : nodes) {
    EXPECT_LT(std::abs(static_cast<double>(domain.sync_error(*n).ns())), 100.0) << n->name();
  }
}

TEST(GptpDomainTest, GrandmasterHasZeroError) {
  event::Simulator sim;
  GptpDomain domain(sim, 2);
  GptpNode& gm = domain.add_node("gm", +30.0);
  GptpNode& s = domain.add_node("s", -30.0);
  domain.connect(gm, s, 100_ns);
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 1_s);
  EXPECT_EQ(domain.sync_error(gm).ns(), 0);
  EXPECT_EQ(&domain.grandmaster(), &gm);
}

TEST(GptpDomainTest, ConnectValidation) {
  event::Simulator sim;
  GptpDomain domain(sim, 3);
  GptpNode& a = domain.add_node("a", 0.0);
  GptpNode& b = domain.add_node("b", 0.0);
  GptpNode& c = domain.add_node("c", 0.0);
  domain.connect(a, b, 50_ns);
  EXPECT_THROW(domain.connect(c, b, 50_ns), Error);  // b already has a parent
  EXPECT_THROW(domain.connect(a, a, 50_ns), Error);
  EXPECT_THROW(domain.connect(a, c, 0_ns), Error);
}

TEST(GptpDomainTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    event::Simulator sim;
    GptpDomain domain(sim, seed);
    GptpNode& gm = domain.add_node("gm", 10.0);
    GptpNode& s = domain.add_node("s", -10.0);
    domain.connect(gm, s, 50_ns);
    domain.start(fast_config());
    (void)sim.run_until(TimePoint(0) + 1_s);
    return domain.sync_error(s).ns();
  };
  EXPECT_EQ(run(7), run(7));
}


// -------------------------------------------------------- BMCA / failover
TEST(GptpBmcaTest, ElectsBestQualityClock) {
  event::Simulator sim;
  GptpDomain domain(sim, 3);
  GptpNode& a = domain.add_node("a", 10.0);
  GptpNode& b = domain.add_node("b", -10.0);
  GptpNode& c = domain.add_node("c", 5.0);
  b.set_quality({10, 1});  // best priority1
  a.set_quality({128, 0});
  c.set_quality({128, 2});
  const std::vector<GptpDomain::Edge> edges = {{0, 1, 50_ns, 4_ns}, {1, 2, 50_ns, 4_ns}};
  const std::size_t gm = domain.elect_and_build_tree(edges);
  EXPECT_EQ(gm, b.index());
  EXPECT_TRUE(b.is_grandmaster());
  EXPECT_FALSE(a.is_grandmaster());
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 2_s);
  EXPECT_LT(domain.max_abs_sync_error().ns(), 50);
  EXPECT_EQ(&domain.grandmaster(), &b);
}

TEST(GptpBmcaTest, TieBreaksOnIdentity) {
  event::Simulator sim;
  GptpDomain domain(sim, 3);
  domain.add_node("a", 0.0);
  domain.add_node("b", 0.0);
  // Equal priority1: lowest identity (index) wins.
  const std::size_t gm = domain.elect_and_build_tree({{0, 1, 50_ns, 4_ns}});
  EXPECT_EQ(gm, 0u);
}

TEST(GptpBmcaTest, FailoverReElectsAndReconverges) {
  event::Simulator sim;
  GptpDomain domain(sim, 9);
  GptpNode& gm0 = domain.add_node("gm0", 15.0);
  domain.add_node("s1", -20.0);
  domain.add_node("s2", 8.0);
  domain.add_node("s3", -5.0);
  gm0.set_quality({1, 0});
  domain.node(1).set_quality({2, 1});  // the designated backup
  const std::vector<GptpDomain::Edge> edges = {
      {0, 1, 50_ns, 4_ns}, {1, 2, 50_ns, 4_ns}, {2, 3, 50_ns, 4_ns}};

  EXPECT_EQ(domain.elect_and_build_tree(edges), 0u);
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 1_s);
  EXPECT_LT(domain.max_abs_sync_error().ns(), 50);

  // Grandmaster dies; slaves hold over until re-election.
  domain.fail_node(0);
  (void)sim.run_until(TimePoint(0) + 1500_ms);

  EXPECT_EQ(domain.elect_and_build_tree(edges), 1u);
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 3_s);
  // Alive nodes re-converge to the backup grandmaster.
  EXPECT_EQ(&domain.grandmaster(), &domain.node(1));
  EXPECT_LT(domain.max_abs_sync_error().ns(), 50);
  // Holdover continuity: the backup's timescale continues the dead
  // master's (its last discipline tracked it), so there is no step at
  // failover — the dead clock and the new GM still agree closely.
  const Duration continuity = domain.sync_error(domain.node(0));
  EXPECT_LT(std::abs(static_cast<double>(continuity.ns())), 500.0);
}

TEST(GptpBmcaTest, RequiresAnAliveClock) {
  event::Simulator sim;
  GptpDomain domain(sim, 1);
  domain.add_node("only", 0.0);
  domain.fail_node(0);
  EXPECT_THROW((void)domain.elect_and_build_tree({}), Error);
}

// Property sweep: convergence across drift magnitudes and link delays.
struct SyncCase {
  double drift_ppm;
  std::int64_t delay_ns;
};

class GptpProperty : public ::testing::TestWithParam<SyncCase> {};

TEST_P(GptpProperty, ConvergesUnder50ns) {
  const auto [ppm, delay] = GetParam();
  event::Simulator sim;
  GptpDomain domain(sim, 11);
  GptpNode& gm = domain.add_node("gm", 0.0);
  GptpNode& s = domain.add_node("s", ppm);
  domain.connect(gm, s, Duration(delay));
  domain.start(fast_config());
  (void)sim.run_until(TimePoint(0) + 3_s);
  EXPECT_LT(std::abs(static_cast<double>(domain.sync_error(s).ns())), 50.0)
      << "drift " << ppm << " ppm, delay " << delay << " ns";
}

INSTANTIATE_TEST_SUITE_P(Sweep, GptpProperty,
                         ::testing::Values(SyncCase{1.0, 50}, SyncCase{-1.0, 50},
                                           SyncCase{10.0, 50}, SyncCase{-25.0, 500},
                                           SyncCase{50.0, 50}, SyncCase{100.0, 1000},
                                           SyncCase{-100.0, 5000}, SyncCase{0.0, 50}));

}  // namespace
}  // namespace tsn::timesync
