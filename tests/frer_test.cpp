// Tests for 802.1CB FRER: the sequence recovery function (unit +
// property) and end-to-end replication/elimination with link-failure
// injection on a bidirectional ring.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "event/simulator.hpp"
#include "frer/sequence_recovery.hpp"
#include "netsim/network.hpp"
#include "sched/itp.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn {
namespace {

using namespace tsn::literals;
using frer::SequenceRecovery;

// -------------------------------------------------------- SequenceRecovery
TEST(SequenceRecoveryTest, PassesFirstCopyDiscardsDuplicate) {
  SequenceRecovery rec(8);
  EXPECT_TRUE(rec.accept(0));
  EXPECT_FALSE(rec.accept(0));  // duplicate from the other path
  EXPECT_TRUE(rec.accept(1));
  EXPECT_FALSE(rec.accept(1));
  EXPECT_EQ(rec.passed(), 2u);
  EXPECT_EQ(rec.discarded(), 2u);
}

TEST(SequenceRecoveryTest, AcceptsLateFirstCopyInWindow) {
  SequenceRecovery rec(8);
  EXPECT_TRUE(rec.accept(5));
  EXPECT_TRUE(rec.accept(7));  // skipped ahead
  EXPECT_TRUE(rec.accept(6));  // late first copy of 6: still in window
  EXPECT_FALSE(rec.accept(6));
  EXPECT_EQ(rec.passed(), 3u);
}

TEST(SequenceRecoveryTest, RogueBehindWindow) {
  SequenceRecovery rec(4);
  EXPECT_TRUE(rec.accept(100));
  EXPECT_FALSE(rec.accept(90));  // 10 behind a 4-deep window
  EXPECT_EQ(rec.rogue(), 1u);
}

TEST(SequenceRecoveryTest, LargeJumpClearsHistory) {
  SequenceRecovery rec(4);
  EXPECT_TRUE(rec.accept(1));
  EXPECT_TRUE(rec.accept(100));  // jump far beyond the window
  // 97..99 are inside the new window and were never seen.
  EXPECT_TRUE(rec.accept(99));
  EXPECT_TRUE(rec.accept(98));
  EXPECT_FALSE(rec.accept(99));
}

TEST(SequenceRecoveryTest, ResetStartsOver) {
  SequenceRecovery rec(8);
  EXPECT_TRUE(rec.accept(3));
  rec.reset();
  EXPECT_TRUE(rec.accept(3));
  EXPECT_EQ(rec.passed(), 1u);
  EXPECT_EQ(rec.discarded(), 0u);
}

TEST(SequenceRecoveryTest, Validation) {
  EXPECT_THROW(SequenceRecovery(0), Error);
}

TEST(SequenceRecoveryTest, HistoryRingWraparoundKeepsExactDuplicateDetection) {
  // Sequence numbers index the history ring modulo its length; crossing
  // the ring boundary many times must neither pass a duplicate (stale
  // "unseen" slot) nor discard a first copy (stale "seen" slot).
  SequenceRecovery rec(8);
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_TRUE(rec.accept(s)) << "first copy of " << s;
    EXPECT_FALSE(rec.accept(s)) << "duplicate of " << s;
  }
  EXPECT_EQ(rec.passed(), 100u);
  EXPECT_EQ(rec.discarded(), 100u);
  EXPECT_EQ(rec.rogue(), 0u);
}

TEST(SequenceRecoveryTest, LateDuplicatesUnderAsymmetricPathDelay) {
  // The fast member leads by a constant skew; the slow member's copies
  // arrive several sequence numbers late. As long as the skew is inside
  // the window, every late copy is recognized as a duplicate.
  SequenceRecovery rec(16);
  const std::uint64_t kSkew = 5;
  std::uint64_t passed = 0;
  for (std::uint64_t s = 0; s < 50; ++s) {
    if (rec.accept(s)) ++passed;           // fast member, first copy
    if (s >= kSkew && rec.accept(s - kSkew)) ++passed;  // slow member
  }
  // Drain the slow member's tail.
  for (std::uint64_t s = 50 - kSkew; s < 50; ++s) {
    if (rec.accept(s)) ++passed;
  }
  EXPECT_EQ(passed, 50u);
  EXPECT_EQ(rec.discarded(), 50u);
  EXPECT_EQ(rec.rogue(), 0u);

  // A skew beyond the window instead classifies the laggard as rogue:
  // the price of a too-small frerSeqRcvyHistoryLength.
  SequenceRecovery tight(4);
  EXPECT_TRUE(tight.accept(20));
  EXPECT_FALSE(tight.accept(10));
  EXPECT_EQ(tight.rogue(), 1u);
}

TEST(SequenceRecoveryTest, ResetRecoversFromProlongedLinkDown) {
  // After a long outage the talker's sequence numbers have moved far
  // ahead. A large forward jump is accepted (history clears), and an
  // explicit reset() — the standard's frerSeqRcvyReset — starts the
  // window over so pre-outage numbers are treated as fresh again.
  SequenceRecovery rec(8);
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_TRUE(rec.accept(s));
  }
  // 10'000 periods of silence, then the stream resumes.
  EXPECT_TRUE(rec.accept(10'020));
  EXPECT_TRUE(rec.accept(10'021));
  EXPECT_FALSE(rec.accept(10'020));  // duplicates still caught
  // Way-behind stragglers from before the outage are rogue, not passed.
  EXPECT_FALSE(rec.accept(19));
  EXPECT_EQ(rec.rogue(), 1u);

  rec.reset();
  EXPECT_TRUE(rec.accept(0));  // a restarted talker is accepted cleanly
  EXPECT_TRUE(rec.accept(1));
  EXPECT_FALSE(rec.accept(0));
}

// Property: with two interleaved copies of every sequence number (in any
// bounded-reorder order), exactly one copy of each passes.
class SequenceRecoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequenceRecoveryProperty, ExactlyOneCopyPerSequencePasses) {
  Rng rng(GetParam());
  SequenceRecovery rec(64);
  // Two "paths" deliver sequences 0..999 with small random skew.
  std::vector<std::uint64_t> arrivals;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    arrivals.push_back(s);
    arrivals.push_back(s);
  }
  // Bounded local shuffle (window 8) models cross-path reordering.
  for (std::size_t i = 0; i + 8 < arrivals.size(); ++i) {
    std::swap(arrivals[i], arrivals[i + rng.index(8)]);
  }
  std::uint64_t passed = 0;
  for (const std::uint64_t s : arrivals) {
    if (rec.accept(s)) ++passed;
  }
  EXPECT_EQ(passed, 1000u);
  EXPECT_EQ(rec.discarded(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequenceRecoveryProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

// ---------------------------------------------------- end-to-end failover
struct FrerHarness {
  event::Simulator sim;
  topo::BuiltTopology built = topo::make_ring_bidirectional(6);
  netsim::NetworkOptions opts;
  std::unique_ptr<netsim::Network> net;
  std::vector<traffic::FlowSpec> flows;

  explicit FrerHarness(bool frer, std::size_t flow_count = 32) {
    opts.seed = 77;
    opts.resource.classification_table_size = 2 * static_cast<std::int64_t>(flow_count) + 8;
    opts.resource.unicast_table_size = 2 * static_cast<std::int64_t>(flow_count) + 8;
    traffic::TsWorkloadParams params;
    params.flow_count = flow_count;
    // h0 -> h2: primary s0-s1-s2 (2 inter-switch links), secondary the
    // other way around the ring (s0-s5-s4-s3-s2).
    flows = traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], params);
    sched::ItpPlanner planner(built.topology, opts.runtime.slot_size);
    planner.plan(flows).apply(flows);

    net = std::make_unique<netsim::Network>(sim, built.topology, opts);
    std::int64_t failures = 0;
    if (frer) {
      for (const traffic::FlowSpec& f : flows) {
        failures += net->provision_frer(f, static_cast<VlanId>(2000 + f.id));
      }
    } else {
      failures = net->provision(flows);
    }
    EXPECT_EQ(failures, 0);
    net->start_network();
    (void)sim.run_until(TimePoint(0) + 150_ms);
    net->start_traffic(TimePoint(0) + 151_ms);
  }

  void run_and_fail_link_midway() {
    // Run 50 ms healthy, then cut the s0->s1 ring link (the primary
    // path's first inter-switch link), run another 50 ms.
    (void)sim.run_until(TimePoint(0) + 200_ms);
    const auto hops = *built.topology.route(built.host_nodes[0], built.host_nodes[2]);
    for (const topo::Hop& hop : hops) {
      const topo::Link& l = built.topology.link(hop.link);
      if (built.topology.node(l.node_a).kind == topo::NodeKind::kSwitch &&
          built.topology.node(l.node_b).kind == topo::NodeKind::kSwitch) {
        net->set_link_state(hop.link, false);
        break;
      }
    }
    (void)sim.run_until(TimePoint(0) + 250_ms);
    net->stop_traffic();
    (void)sim.run_until(sim.now() + 20_ms);
  }
};

TEST(FrerIntegrationTest, HealthyNetworkEliminatesAllDuplicates) {
  FrerHarness h(/*frer=*/true);
  (void)h.sim.run_until(TimePoint(0) + 250_ms);
  h.net->stop_traffic();
  (void)h.sim.run_until(h.sim.now() + 20_ms);

  const auto ts = h.net->analyzer().summary(net::TrafficClass::kTimeSensitive);
  EXPECT_GT(ts.received, 100u);
  EXPECT_EQ(ts.lost(), 0u);
  // Every logical packet arrived twice; one copy was eliminated.
  const std::uint64_t discarded = h.net->nic_at(h.built.host_nodes[2]).frer_discarded();
  EXPECT_EQ(discarded, ts.received);
}

TEST(FrerIntegrationTest, SurvivesLinkFailureWithZeroLoss) {
  FrerHarness h(/*frer=*/true);
  h.run_and_fail_link_midway();
  const auto ts = h.net->analyzer().summary(net::TrafficClass::kTimeSensitive);
  EXPECT_GT(ts.received, 200u);
  EXPECT_EQ(ts.lost(), 0u);  // the disjoint member carried everything
  EXPECT_GT(h.net->link_drops(), 0u);  // the dead link really ate frames
}

TEST(FrerIntegrationTest, WithoutFrerLinkFailureLosesPackets) {
  FrerHarness h(/*frer=*/false);
  h.run_and_fail_link_midway();
  const auto ts = h.net->analyzer().summary(net::TrafficClass::kTimeSensitive);
  EXPECT_GT(ts.lost(), 0u);  // everything after the cut is gone
  EXPECT_GT(h.net->link_drops(), 0u);
}

TEST(FrerIntegrationTest, PrimaryMemberLeadsAtTheDivergencePoint) {
  // The talker serializes the primary member before the secondary copy
  // (802.1CB replicates at the talker), so at the first switch — where
  // the two VIDs diverge onto disjoint routes — the primary-direction
  // transmission must be recorded first for every stream.
  FrerHarness h(/*frer=*/true, /*flow_count=*/4);
  netsim::TraceRecorder trace(1 << 16);
  h.net->set_trace(&trace);
  (void)h.sim.run_until(TimePoint(0) + 155_ms);

  const auto hops =
      *h.built.topology.route(h.built.host_nodes[0], h.built.host_nodes[2]);
  const topo::NodeId talker = h.built.host_nodes[0];
  const topo::NodeId first_switch = hops[1].node;
  const topo::NodeId primary_next = hops[2].node;
  for (const traffic::FlowSpec& f : h.flows) {
    const auto path = trace.path_of(f.id, 0);
    int talker_txs = 0;
    std::vector<topo::NodeId> from_first_switch;
    for (const netsim::TraceEntry& e : path) {
      if (e.from == talker) ++talker_txs;
      if (e.from == first_switch) from_first_switch.push_back(e.to);
    }
    EXPECT_EQ(talker_txs, 2);  // both members leave the talker
    ASSERT_GE(from_first_switch.size(), 2u);
    EXPECT_EQ(from_first_switch.front(), primary_next);
  }
}

TEST(FrerIntegrationTest, RequiresDisjointPath) {
  // A linear topology has no second path.
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(3);
  netsim::NetworkOptions opts;
  opts.enable_gptp = false;
  netsim::Network net(sim, lin.topology, opts);
  traffic::TsWorkloadParams params;
  params.flow_count = 1;
  const auto flows = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[2], params);
  EXPECT_THROW((void)net.provision_frer(flows[0], 2000), Error);
}

}  // namespace
}  // namespace tsn
