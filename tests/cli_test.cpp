// Tests for the tsnb command line: argument parsing and the plan /
// simulate / report subcommands.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/log.hpp"

namespace tsn::cli {
namespace {

// -------------------------------------------------------------- ArgParser
TEST(ArgParserTest, ValuesFlagsAndDefaults) {
  ArgParser p;
  p.add_option("topology", "t", "ring");
  p.add_option("flows", "f", "1024");
  p.add_flag("aggregate", "a");
  ASSERT_TRUE(p.parse({"--flows", "256", "--aggregate"}));
  EXPECT_EQ(p.get("topology"), "ring");  // default
  EXPECT_EQ(p.get_int("flows"), 256);
  EXPECT_TRUE(p.get_bool("aggregate"));
  EXPECT_TRUE(p.was_set("flows"));
  EXPECT_FALSE(p.was_set("topology"));
}

TEST(ArgParserTest, EqualsSyntax) {
  ArgParser p;
  p.add_option("slot-us", "s", "65");
  ASSERT_TRUE(p.parse({"--slot-us=32.5"}));
  EXPECT_DOUBLE_EQ(*p.get_double("slot-us"), 32.5);
}

TEST(ArgParserTest, Rejections) {
  ArgParser p;
  p.add_option("flows", "f", "1");
  p.add_flag("aggregate", "a");
  EXPECT_FALSE(p.parse({"--unknown", "1"}));
  EXPECT_NE(p.error().find("unknown option"), std::string::npos);
  ArgParser p2;
  p2.add_option("flows", "f", "1");
  EXPECT_FALSE(p2.parse({"--flows"}));  // missing value
  ArgParser p3;
  p3.add_flag("aggregate", "a");
  EXPECT_FALSE(p3.parse({"--aggregate=1"}));  // flags take no value
  ArgParser p4;
  EXPECT_FALSE(p4.parse({"positional"}));
}

TEST(ArgParserTest, BadNumbersReturnNullopt) {
  ArgParser p;
  p.add_option("flows", "f", "");
  ASSERT_TRUE(p.parse({"--flows", "12abc"}));
  EXPECT_EQ(p.get_int("flows"), std::nullopt);
  EXPECT_EQ(p.get_double("flows"), std::nullopt);
}

TEST(ArgParserTest, UsageListsOptions) {
  ArgParser p;
  p.add_option("topology", "ring | linear | star", "ring");
  p.add_flag("aggregate", "collapse same-path flows");
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--topology <value> (default: ring)"), std::string::npos);
  EXPECT_NE(usage.find("--aggregate"), std::string::npos);
  EXPECT_NE(usage.find("collapse same-path flows"), std::string::npos);
}

// ------------------------------------------------------------ subcommands
TEST(TsnbTest, ReportRingMatchesPaperTotal) {
  std::string out;
  EXPECT_EQ(run_tsnb({"report", "--scenario", "ring"}, out), 0);
  EXPECT_NE(out.find("2106Kb"), std::string::npos);
  EXPECT_NE(out.find("80.53%"), std::string::npos);
}

TEST(TsnbTest, ReportCommercialHasNoReduction) {
  std::string out;
  EXPECT_EQ(run_tsnb({"report", "--scenario", "commercial"}, out), 0);
  EXPECT_NE(out.find("10818Kb"), std::string::npos);
  EXPECT_NE(out.find("0.00%"), std::string::npos);
}

TEST(TsnbTest, PlanEmitsRationaleAndReport) {
  std::string out;
  EXPECT_EQ(run_tsnb({"plan", "--topology", "ring", "--switches", "6", "--flows", "64",
                      "--hops", "4"},
                     out),
            0);
  EXPECT_NE(out.find("guideline 1"), std::string::npos);
  EXPECT_NE(out.find("guideline 5"), std::string::npos);
  EXPECT_NE(out.find("Switch Tbl"), std::string::npos);
}

TEST(TsnbTest, PlanWithAggregationShrinksTables) {
  std::string plain, aggregated;
  EXPECT_EQ(run_tsnb({"plan", "--flows", "64", "--hops", "3"}, plain), 0);
  EXPECT_EQ(run_tsnb({"plan", "--flows", "64", "--hops", "3", "--aggregate"}, aggregated),
            0);
  EXPECT_NE(plain.find("64 distinct streams"), std::string::npos);
  EXPECT_NE(aggregated.find("1 distinct streams"), std::string::npos);
}

TEST(TsnbTest, SimulateReportsZeroLoss) {
  std::string out;
  EXPECT_EQ(run_tsnb({"simulate", "--topology", "linear", "--switches", "3", "--flows",
                      "32", "--hops", "3", "--duration-ms", "50"},
                     out),
            0);
  EXPECT_NE(out.find("TS: received"), std::string::npos);
  EXPECT_NE(out.find("loss 0.00%"), std::string::npos);
  EXPECT_NE(out.find("switch drops 0"), std::string::npos);
}


/// `run` is an alias for `simulate`, and the observability flags export
/// manifest-stamped metrics / timeline / trace artifacts.
TEST(TsnbTest, RunAliasExportsObservabilityArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "tsnb_metrics.prom";
  const std::string timeline_path = dir + "tsnb_timeline.json";
  const std::string trace_path = dir + "tsnb_trace.csv";
  std::string out;
  ASSERT_EQ(run_tsnb({"run", "--topology", "linear", "--switches", "3", "--flows", "16",
                      "--hops", "3", "--duration-ms", "20", "--metrics-out", metrics_path,
                      "--timeline-out", timeline_path, "--trace-out", trace_path},
                     out),
            0);
  EXPECT_NE(out.find("metrics snapshot written to"), std::string::npos);
  EXPECT_NE(out.find("timeline written to"), std::string::npos);
  EXPECT_NE(out.find("packet trace written to"), std::string::npos);

  const auto slurp = [](const std::string& path) {
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path;
    std::string content((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());
    return content;
  };
  const std::string metrics = slurp(metrics_path);
  EXPECT_EQ(metrics.rfind("# manifest: {\"tool\":\"tsnb\"", 0), 0u);
  EXPECT_NE(metrics.find("\"scenario\":\"simulate topology=linear"), std::string::npos);
  EXPECT_NE(metrics.find("tsn_switch_tx_packets"), std::string::npos);
  EXPECT_NE(metrics.find("tsn_event_executed"), std::string::npos);
  EXPECT_NE(metrics.find("wall_event_run_ms"), std::string::npos);  // full render

  const std::string timeline = slurp(timeline_path);
  EXPECT_EQ(timeline.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(timeline.find("\"cat\":\"hop\""), std::string::npos);
  EXPECT_NE(timeline.find("\"metadata\":{\"manifest\":{"), std::string::npos);

  const std::string trace = slurp(trace_path);
  EXPECT_EQ(trace.rfind("# dropped_entries=", 0), 0u);
  EXPECT_NE(trace.find("at_ns,from,from_port,to,flow,sequence,frame_bytes,link_down"),
            std::string::npos);
}

TEST(TsnbTest, BenchQuickWritesMachineReadableBaseline) {
  const std::string path = ::testing::TempDir() + "tsnb_bench.json";
  std::string out;
  ASSERT_EQ(run_tsnb({"bench", "--quick", "--reps", "1", "--out", path}, out), 0);
  EXPECT_NE(out.find("kernel & dataplane bench (quick, best of 1)"), std::string::npos);
  EXPECT_NE(out.find("kernel.schedule_run"), std::string::npos);
  EXPECT_NE(out.find("results written to " + path), std::string::npos);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.rfind("{\"manifest\":{\"tool\":\"tsnb\"", 0), 0u);
  EXPECT_NE(content.find("\"schema\":\"tsnb.bench/1\""), std::string::npos);
  EXPECT_NE(content.find("\"quick\":true"), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"kernel.schedule_run\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"kernel.cascade\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"kernel.cancel_churn\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"netsim.ring_e2e\""), std::string::npos);
  EXPECT_NE(content.find("\"events_per_sec\":"), std::string::npos);
  EXPECT_NE(content.find("\"peak_heap_depth\":"), std::string::npos);
}

TEST(TsnbTest, BenchRejectsBadReps) {
  std::string out;
  EXPECT_EQ(run_tsnb({"bench", "--reps", "0"}, out), 2);
}

/// The recorder-off overhead gate: --against compares events/sec per
/// workload against a committed baseline and fails past --tolerance.
TEST(TsnbTest, BenchAgainstGatesOnRegression) {
  const std::string dir = ::testing::TempDir();
  const auto write = [](const std::string& path, const std::string& content) {
    std::ofstream file(path);
    ASSERT_TRUE(file.good()) << path;
    file << content;
  };
  // An unreachable baseline trips the gate (runtime failure, exit 1).
  const std::string impossible = dir + "tsnb_bench_impossible.json";
  write(impossible, "{\"workloads\":[{\"name\":\"netsim.ring_e2e\","
                    "\"events_per_sec\":999999999999.000}]}");
  std::string out;
  EXPECT_EQ(run_tsnb({"bench", "--quick", "--reps", "1", "--out",
                      dir + "tsnb_bench_gate.json", "--against", impossible},
                     out),
            1);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.find("error: bench regression"), std::string::npos);

  // A trivially slow baseline passes; workloads absent from it are
  // ignored rather than treated as regressions.
  const std::string slow = dir + "tsnb_bench_slow.json";
  write(slow, "{\"workloads\":[{\"name\":\"netsim.ring_e2e\","
              "\"events_per_sec\":1.000}]}");
  out.clear();
  EXPECT_EQ(run_tsnb({"bench", "--quick", "--reps", "1", "--out",
                      dir + "tsnb_bench_gate.json", "--against", slow},
                     out),
            0);
  EXPECT_NE(out.find("no regression beyond tolerance"), std::string::npos);

  // Bad baseline path is a runtime error; bad tolerance a usage error.
  EXPECT_EQ(run_tsnb({"bench", "--against", dir + "no_such_baseline.json"}, out), 1);
  EXPECT_EQ(run_tsnb({"bench", "--against", slow, "--tolerance", "-3"}, out), 2);
}

TEST(TsnbTest, SimulateTraceLimitZeroMeansUnlimited) {
  const std::string path = ::testing::TempDir() + "tsnb_trace_unlimited.csv";
  std::string out;
  ASSERT_EQ(run_tsnb({"simulate", "--topology", "linear", "--switches", "3", "--flows",
                      "16", "--hops", "3", "--duration-ms", "20", "--trace-limit", "0",
                      "--trace-out", path},
                     out),
            0);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  // Nothing was overwritten: the unlimited ring never wraps.
  EXPECT_EQ(content.rfind("# dropped_entries=0", 0), 0u);
}

// ------------------------------------------------------------ tsnb explain
TEST(TsnbExplainTest, RingWaterfallShowsBudgetVsSpent) {
  std::string out;
  ASSERT_EQ(run_tsnb({"explain", "--topology", "ring", "--switches", "3", "--hops", "3",
                      "--flows", "8", "--duration-ms", "10", "--limit", "2"},
                     out),
            0);
  EXPECT_NE(out.find("flight: injected="), std::string::npos);
  EXPECT_NE(out.find("e2e bound "), std::string::npos);
  EXPECT_NE(out.find("hop s0: bound "), std::string::npos);
  EXPECT_NE(out.find("gate-wait "), std::string::npos);
  EXPECT_NE(out.find("delivered at "), std::string::npos);
}

TEST(TsnbExplainTest, DropsFilterWithFaultsAttributesTheCause) {
  std::string out;
  ASSERT_EQ(run_tsnb({"explain", "--topology", "ring", "--switches", "3", "--hops", "3",
                      "--flows", "8", "--period-ms", "2", "--duration-ms", "25",
                      "--faults", "link-down", "--drops", "--format", "json"},
                     out),
            0);
  EXPECT_EQ(out.rfind("{\"targets\":[{\"name\":\"scenario\"", 0), 0u);
  EXPECT_NE(out.find("\"cause\":\"link_down\""), std::string::npos);
  EXPECT_NE(out.find("\"dropped\":true"), std::string::npos);
  EXPECT_NE(out.find("\"hops\":["), std::string::npos);
}

TEST(TsnbExplainTest, FlowAndFrameFiltersSelectOneOccurrence) {
  std::string out;
  ASSERT_EQ(run_tsnb({"explain", "--topology", "ring", "--switches", "3", "--hops", "3",
                      "--flows", "8", "--period-ms", "2", "--duration-ms", "10",
                      "--worst-k", "8", "--flow", "0", "--frame", "1", "--format",
                      "json"},
                     out),
            0);
  EXPECT_NE(out.find("\"flow\":0,\"sequence\":1"), std::string::npos);
}

TEST(TsnbExplainTest, ExitCodesFollowTheConvention) {
  // 2 = command-line mistakes, 1 = runtime failures, 0 = success.
  std::string out;
  EXPECT_EQ(run_tsnb({"explain", "--format", "yaml"}, out), 2);
  EXPECT_EQ(run_tsnb({"explain", "--frame", "3"}, out), 2);  // needs --flow
  EXPECT_EQ(run_tsnb({"explain", "--faults", "asteroid"}, out), 2);
  EXPECT_EQ(run_tsnb({"explain", "--suite", "nightly"}, out), 2);
  EXPECT_EQ(run_tsnb({"explain", "--worst-k", "0"}, out), 2);
  EXPECT_EQ(run_tsnb({"explain", "--config", "/nonexistent/x.cfg"}, out), 1);
}

TEST(TsnbTest, GlobalLogLevelFlag) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  std::string out;
  // The flag is position-independent and stripped before dispatch.
  EXPECT_EQ(run_tsnb({"--log-level", "error", "report", "--scenario", "ring"}, out), 0);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  out.clear();
  EXPECT_EQ(run_tsnb({"report", "--log-level=warn", "--scenario", "ring"}, out), 0);
  EXPECT_EQ(logger.level(), LogLevel::kWarn);
  out.clear();
  EXPECT_EQ(run_tsnb({"--log-level", "loud", "report"}, out), 2);
  EXPECT_NE(out.find("unknown --log-level"), std::string::npos);
  out.clear();
  EXPECT_EQ(run_tsnb({"report", "--log-level"}, out), 2);  // missing value
  logger.set_level(saved);
}

TEST(TsnbTest, CampaignMetricsOutWritesSnapshot) {
  const std::string path = ::testing::TempDir() + "tsnb_campaign_metrics.prom";
  std::string out;
  const std::string rows = ::testing::TempDir() + "tsnb_campaign_metrics.jsonl";
  ASSERT_EQ(run_tsnb({"campaign", "--axes",
                      "topology=ring;switches=3;flows=8;hops=2;"
                      "warmup-ms=50;duration-ms=20",
                      "--repeats", "2", "--quiet", "--out", rows, "--metrics-out", path},
                     out),
            0);
  EXPECT_NE(out.find("campaign metrics written to"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.rfind("# manifest: {\"tool\":\"tsnb\"", 0), 0u);
  EXPECT_NE(content.find("tsn_campaign_runs 2"), std::string::npos);
  EXPECT_NE(content.find("tsn_campaign_ts_p99_us_bucket"), std::string::npos);
  EXPECT_NE(content.find("wall_campaign_total_ms"), std::string::npos);
}

TEST(TsnbTest, PlanSaveThenReportConfig) {
  const std::string path = ::testing::TempDir() + "/tsnb_saved.cfg";
  std::string out;
  ASSERT_EQ(run_tsnb({"plan", "--flows", "64", "--hops", "3", "--save", path}, out), 0);
  EXPECT_NE(out.find("configuration written"), std::string::npos);

  std::string report;
  ASSERT_EQ(run_tsnb({"report", "--config", path}, report), 0);
  EXPECT_NE(report.find("Total"), std::string::npos);

  std::string sim;
  ASSERT_EQ(run_tsnb({"simulate", "--topology", "ring", "--flows", "64", "--hops", "3",
                      "--duration-ms", "30", "--config", path},
                     sim),
            0);
  EXPECT_NE(sim.find("loss 0.00%"), std::string::npos);
}

TEST(TsnbTest, FrerSubcommandSurvivesLinkCut) {
  std::string out;
  ASSERT_EQ(run_tsnb({"frer", "--flows", "16", "--duration-ms", "40"}, out), 0);
  EXPECT_NE(out.find("cut ring link"), std::string::npos);
  EXPECT_NE(out.find("loss 0.00%"), std::string::npos);
}

TEST(TsnbTest, CampaignWritesJsonlRowsAndSummary) {
  const std::string path = testing::TempDir() + "tsnb_campaign.jsonl";
  std::string out;
  ASSERT_EQ(run_tsnb({"campaign", "--axes", "hops=2,3;be-mbps=0,100", "--jobs", "2",
                      "--repeats", "2", "--flows-ignored", "x"},
                     out),
            2);  // undeclared option rejected with usage
  EXPECT_NE(out.find("usage: tsnb campaign"), std::string::npos);

  out.clear();
  ASSERT_EQ(run_tsnb({"campaign", "--axes",
                      "topology=ring;switches=3;flows=8;hops=2,3;be-mbps=0,100;"
                      "warmup-ms=50;duration-ms=20",
                      "--jobs", "2", "--repeats", "2", "--quiet", "--out", path},
                     out),
            0);
  EXPECT_NE(out.find("4 points x 2 repeat(s) = 8 runs"), std::string::npos);
  EXPECT_NE(out.find("8 rows written"), std::string::npos);
  EXPECT_NE(out.find("(0 failed)"), std::string::npos);
  EXPECT_NE(out.find("TS avg (us)"), std::string::npos);  // summary table

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::size_t runs = 0;
  std::size_t aggregates = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.rfind("{\"type\":\"run\"", 0) == 0) ++runs;
    if (line.rfind("{\"type\":\"aggregate\"", 0) == 0) ++aggregates;
    EXPECT_EQ(line.back(), '}');  // every row is one JSON object
  }
  EXPECT_EQ(runs, 8u);
  EXPECT_EQ(aggregates, 4u);
}

TEST(TsnbTest, CampaignRecordsFailedRunsWithoutCrashing) {
  const std::string path = testing::TempDir() + "tsnb_campaign_failed.jsonl";
  std::string out;
  // 'config=bogus' points fail per-run; the campaign still completes
  // and reports the failures in the summary.
  ASSERT_EQ(run_tsnb({"campaign", "--axes",
                      "flows=8;warmup-ms=50;duration-ms=20;config=planned,bogus",
                      "--quiet", "--out", path},
                     out),
            0);
  EXPECT_NE(out.find("(1 failed)"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"campaign", "--quiet"}, out), 2);  // --axes required
  EXPECT_NE(out.find("--axes is required"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"campaign", "--axes", "flows=8", "--format", "xml"}, out), 2);
  EXPECT_NE(out.find("unknown output format"), std::string::npos);
}

TEST(TsnbTest, ErrorsAreReported) {
  std::string out;
  EXPECT_EQ(run_tsnb({"plan", "--topology", "mesh"}, out), 2);
  EXPECT_NE(out.find("unknown --topology"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"frobnicate"}, out), 2);
  EXPECT_NE(out.find("unknown subcommand"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"plan", "--bogus", "1"}, out), 2);
  EXPECT_NE(out.find("usage: tsnb plan"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({}, out), 2);
  EXPECT_NE(out.find("subcommands"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"help"}, out), 0);
}

TEST(TsnbTest, HopsValidatedAgainstTopology) {
  std::string out;
  EXPECT_EQ(run_tsnb({"plan", "--topology", "linear", "--switches", "3", "--hops", "9"},
                     out),
            2);
  EXPECT_NE(out.find("invalid --hops"), std::string::npos);
}

TEST(TsnbTest, ExitCodesSeparateUsageFromRuntimeFailures) {
  // Usage errors (exit 2): bad option values, before any work happens.
  std::string out;
  EXPECT_EQ(run_tsnb({"report", "--scenario", "torus"}, out), 2);
  EXPECT_NE(out.find("usage error:"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_tsnb({"frer", "--switches", "1"}, out), 2);

  // Runtime failures (exit 1): the command line is fine, the run fails.
  out.clear();
  EXPECT_EQ(run_tsnb({"report", "--config", "/nonexistent/path.cfg"}, out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

// ------------------------------------------------------------------ verify
TEST(TsnbVerifyTest, CleanScenarioExitsZero) {
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--flows", "64", "--hops", "3"}, out), 0);
  EXPECT_NE(out.find("0 error(s)"), std::string::npos);
}

TEST(TsnbVerifyTest, JsonFormatIsMachineReadable) {
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--flows", "64", "--format", "json"}, out), 0);
  EXPECT_EQ(out.rfind("{\"diagnostics\":[", 0), 0u);
  EXPECT_NE(out.find("\"max_severity\":"), std::string::npos);
}

TEST(TsnbVerifyTest, OverflowingPresetExitsOne) {
  // 2000 flows exceed the ring preset's 1024-entry tables.
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--preset", "ring", "--flows", "2000"}, out), 1);
  EXPECT_NE(out.find("resource.table-overflow"), std::string::npos);
}

TEST(TsnbVerifyTest, ExamplesSuiteIsClean) {
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--suite", "examples", "--strict"}, out), 0);
  EXPECT_NE(out.find("example:ring_demo"), std::string::npos);
  EXPECT_NE(out.find("preset:bcm53154-reference"), std::string::npos);
}

TEST(TsnbVerifyTest, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--format", "yaml"}, out), 2);
  out.clear();
  EXPECT_EQ(run_tsnb({"verify", "--suite", "nope"}, out), 2);
  out.clear();
  EXPECT_EQ(run_tsnb({"verify", "--device", "virtex9000"}, out), 2);
  out.clear();
  EXPECT_EQ(run_tsnb({"verify", "--preset", "ring", "--config", "x.cfg"}, out), 2);
}

TEST(TsnbVerifyTest, QbvGateCapacityChecked) {
  // A 50 us slot on a 10 ms period synthesizes a >2-entry Qbv program,
  // which the planner's 2-entry CQF gate table cannot hold.
  std::string out;
  EXPECT_EQ(run_tsnb({"verify", "--qbv", "--slot-us", "50", "--flows", "32"}, out), 1);
  EXPECT_NE(out.find("gcl.capacity"), std::string::npos);
}

}  // namespace
}  // namespace tsn::cli
