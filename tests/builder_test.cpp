// Tests for the TSN-Builder core: Table II customization APIs, the five
// templates, the switch builder, the parameter planner, and — crucially —
// the exact reproduction of the paper's Table I and Table III numbers.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "builder/api.hpp"
#include "builder/config_io.hpp"
#include "builder/planner.hpp"
#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "builder/templates.hpp"
#include "common/error.hpp"
#include "event/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn::builder {
namespace {

// -------------------------------------------------------- CustomizationApi
TEST(CustomizationApiTest, TableIIRoundTrip) {
  CustomizationApi api;
  api.set_switch_tbl(1024, 0)
      .set_class_tbl(1024)
      .set_meter_tbl(1024)
      .set_gate_tbl(2, 8, 3)
      .set_cbs_tbl(3, 3, 3)
      .set_queues(12, 8, 3)
      .set_buffers(96, 3);
  const sw::SwitchResourceConfig& c = api.config();
  EXPECT_EQ(c.unicast_table_size, 1024);
  EXPECT_EQ(c.multicast_table_size, 0);
  EXPECT_EQ(c.classification_table_size, 1024);
  EXPECT_EQ(c.meter_table_size, 1024);
  EXPECT_EQ(c.gate_table_size, 2);
  EXPECT_EQ(c.cbs_map_size, 3);
  EXPECT_EQ(c.cbs_table_size, 3);
  EXPECT_EQ(c.queue_depth, 12);
  EXPECT_EQ(c.queues_per_port, 8);
  EXPECT_EQ(c.buffers_per_port, 96);
  EXPECT_EQ(c.port_count, 3);
  c.validate();
}

TEST(CustomizationApiTest, InconsistentPortNumRejected) {
  CustomizationApi api;
  api.set_gate_tbl(2, 8, 3);
  EXPECT_THROW(api.set_cbs_tbl(3, 3, 4), Error);
  EXPECT_THROW(api.set_buffers(96, 2), Error);
}

TEST(CustomizationApiTest, InconsistentQueueNumRejected) {
  CustomizationApi api;
  api.set_gate_tbl(2, 8, 3);
  EXPECT_THROW(api.set_queues(12, 4, 3), Error);
}

TEST(CustomizationApiTest, ArgumentValidation) {
  CustomizationApi api;
  EXPECT_THROW(api.set_switch_tbl(0, 0), Error);
  EXPECT_THROW(api.set_switch_tbl(16, -1), Error);
  EXPECT_THROW(api.set_gate_tbl(2, 9, 1), Error);
  EXPECT_THROW(api.set_gate_tbl(0, 8, 1), Error);
}

TEST(CustomizationApiTest, FromConfigPreservesBindings) {
  const CustomizationApi api = CustomizationApi::from_config(paper_customized(2));
  EXPECT_EQ(api.config().port_count, 2);
  CustomizationApi copy = api;
  EXPECT_THROW(copy.set_buffers(96, 3), Error);  // bound to 2 ports
}

// ----------------------------------------------------------- templates
TEST(TemplatesTest, StandardLibraryHasFiveInPipelineOrder) {
  const auto templates = standard_templates();
  ASSERT_EQ(templates.size(), 5u);
  EXPECT_EQ(templates[0]->kind(), TemplateKind::kTimeSync);
  EXPECT_EQ(templates[1]->kind(), TemplateKind::kPacketSwitch);
  EXPECT_EQ(templates[2]->kind(), TemplateKind::kIngressFilter);
  EXPECT_EQ(templates[3]->kind(), TemplateKind::kGateCtrl);
  EXPECT_EQ(templates[4]->kind(), TemplateKind::kEgressSched);
  for (const auto& t : templates) {
    EXPECT_FALSE(t->name().empty());
  }
}

TEST(TemplatesTest, TimeSyncConsumesNoTableMemory) {
  TimeSyncTemplate t;
  EXPECT_TRUE(t.resource_usage(paper_customized(1)).empty());
  EXPECT_EQ(t.submodules().size(), 3u);  // collect / calculate / correct
}

TEST(TemplatesTest, FormatTableSize) {
  EXPECT_EQ(format_table_size(16 * 1024), "16K");
  EXPECT_EQ(format_table_size(1024), "1024");
  EXPECT_EQ(format_table_size(512), "512");
  EXPECT_EQ(format_table_size(96), "96");
}

// --------------------------------------------- Table III exact reproduction
struct TableIIIColumn {
  const char* label;
  std::int64_t ports;       // 0 = commercial baseline
  double switch_kb, class_kb, meter_kb, gate_kb, cbs_kb, queues_kb, buffers_kb, total_kb;
  double reduction;  // vs commercial, percent
};

class TableIII : public ::testing::TestWithParam<TableIIIColumn> {};

TEST_P(TableIII, ColumnReproducesExactly) {
  const TableIIIColumn& col = GetParam();
  SwitchBuilder bld;
  bld.with_resources(col.ports == 0 ? bcm53154_reference() : paper_customized(col.ports));
  const resource::ResourceReport report = bld.report();

  ASSERT_EQ(report.components().size(), 7u);
  const auto& rows = report.components();
  EXPECT_EQ(rows[0].name, "Switch Tbl");
  EXPECT_DOUBLE_EQ(rows[0].allocation.cost.kilobits(), col.switch_kb);
  EXPECT_EQ(rows[1].name, "Class. Tbl");
  EXPECT_DOUBLE_EQ(rows[1].allocation.cost.kilobits(), col.class_kb);
  EXPECT_EQ(rows[2].name, "Meter Tbl");
  EXPECT_DOUBLE_EQ(rows[2].allocation.cost.kilobits(), col.meter_kb);
  EXPECT_EQ(rows[3].name, "Gate Tbl");
  EXPECT_DOUBLE_EQ(rows[3].allocation.cost.kilobits(), col.gate_kb);
  EXPECT_EQ(rows[4].name, "CBS Tbl");
  EXPECT_DOUBLE_EQ(rows[4].allocation.cost.kilobits(), col.cbs_kb);
  EXPECT_EQ(rows[5].name, "Queues");
  EXPECT_DOUBLE_EQ(rows[5].allocation.cost.kilobits(), col.queues_kb);
  EXPECT_EQ(rows[6].name, "Buffers");
  EXPECT_DOUBLE_EQ(rows[6].allocation.cost.kilobits(), col.buffers_kb);
  EXPECT_DOUBLE_EQ(report.total().kilobits(), col.total_kb);

  SwitchBuilder commercial;
  commercial.with_resources(bcm53154_reference());
  const double reduction = report.reduction_vs(commercial.report()) * 100.0;
  EXPECT_NEAR(reduction, col.reduction, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    PaperColumns, TableIII,
    ::testing::Values(
        // label, ports, switch, class, meter, gate, cbs, queues, buffers, total, -%
        TableIIIColumn{"commercial", 0, 1152, 126, 36, 144, 144, 576, 8640, 10818, 0.0},
        TableIIIColumn{"star", 3, 72, 126, 72, 108, 108, 432, 4860, 5778, 46.59},
        TableIIIColumn{"linear", 2, 72, 126, 72, 72, 72, 288, 3240, 3942, 63.56},
        TableIIIColumn{"ring", 1, 72, 126, 72, 36, 36, 144, 1620, 2106, 80.53}),
    [](const ::testing::TestParamInfo<TableIIIColumn>& param_info) {
      return param_info.param.label;
    });

// ------------------------------------------------- Table I exact numbers
TEST(TableITest, QueueAndBufferCases) {
  SwitchBuilder case1, case2;
  case1.with_resources(table1_case1());
  case2.with_resources(table1_case2());
  auto queues_plus_buffers = [](const resource::ResourceReport& r) {
    double kb = 0;
    for (const auto& row : r.components()) {
      if (row.name == "Queues" || row.name == "Buffers") kb += row.allocation.cost.kilobits();
    }
    return kb;
  };
  EXPECT_DOUBLE_EQ(queues_plus_buffers(case1.report()), 2304.0);
  EXPECT_DOUBLE_EQ(queues_plus_buffers(case2.report()), 1764.0);
  // Case 2 saves 540 Kb of BRAM (the paper's motivation experiment).
  EXPECT_DOUBLE_EQ(queues_plus_buffers(case1.report()) - queues_plus_buffers(case2.report()),
                   540.0);
}

// ------------------------------------------------------------- rendering
TEST(SwitchBuilderTest, RenderedReportLooksLikeTableIII) {
  SwitchBuilder bld;
  bld.with_resources(paper_customized(1));
  SwitchBuilder base;
  base.with_resources(bcm53154_reference());
  const std::string out = bld.report().render(base.report());
  EXPECT_NE(out.find("Switch Tbl"), std::string::npos);
  EXPECT_NE(out.find("2106Kb"), std::string::npos);
  EXPECT_NE(out.find("80.53%"), std::string::npos);
  EXPECT_EQ(out.find("16.875"), std::string::npos)
      << "per-buffer cost should not leak into the table";
}

TEST(SwitchBuilderTest, SynthesizesRunnableSwitch) {
  event::Simulator sim;
  SwitchBuilder bld;
  bld.with_resources(paper_customized(1));
  const auto device = bld.synthesize(sim, "ring0", 2);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->port_count(), 2);
  EXPECT_EQ(device->resource_config().queue_depth, 12);
  device->start();
  EXPECT_TRUE(device->gates(0).programmed());  // CQF programmed by default
}

TEST(SwitchBuilderTest, FitsOnZynq7020) {
  // The paper prototypes on a Zynq 7020; the ring configuration must fit
  // its 4.9 Mb of BRAM while the commercial one cannot.
  SwitchBuilder ring;
  ring.with_resources(paper_customized(1));
  EXPECT_LT(ring.report().utilization_on(resource::zynq7020()), 0.5);
  SwitchBuilder commercial;
  commercial.with_resources(bcm53154_reference());
  EXPECT_GT(commercial.report().utilization_on(resource::zynq7020()), 2.0);
}

// ---------------------------------------------------------------- planner
TEST(ParameterPlannerTest, FollowsGuidelinesOnRing) {
  const topo::BuiltTopology ring = topo::make_ring(6);
  PlannerInput in;
  in.topology = &ring.topology;
  traffic::TsWorkloadParams params;
  params.flow_count = 1024;
  in.flows = traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3], params);
  // Three RC background flows on distinct queues.
  in.flows.push_back(traffic::make_rc_flow(5000, ring.host_nodes[0], ring.host_nodes[3],
                                           DataRate::megabits_per_sec(100), 1024,
                                           traffic::kRcPriorityHigh, 4001));
  in.flows.push_back(traffic::make_rc_flow(5001, ring.host_nodes[0], ring.host_nodes[3],
                                           DataRate::megabits_per_sec(50), 1024,
                                           traffic::kRcPriorityMid, 4002));
  in.flows.push_back(traffic::make_rc_flow(5002, ring.host_nodes[0], ring.host_nodes[3],
                                           DataRate::megabits_per_sec(50), 1024,
                                           traffic::kRcPriorityLow, 4003));

  const PlannerOutput out = ParameterPlanner::plan(in);
  EXPECT_EQ(out.config.classification_table_size, 1027);  // one per flow
  EXPECT_EQ(out.config.unicast_table_size, 1027);         // distinct (dst, vid)
  EXPECT_EQ(out.config.gate_table_size, 2);               // CQF
  EXPECT_EQ(out.config.cbs_map_size, 3);                  // three RC queues
  EXPECT_EQ(out.config.cbs_table_size, 3);
  EXPECT_EQ(out.config.port_count, 1);                    // unidirectional ring
  EXPECT_EQ(out.config.buffers_per_port, out.config.queue_depth * 8);
  EXPECT_GE(out.config.queue_depth, out.itp.max_queue_load);
  EXPECT_FALSE(out.rationale.empty());
}

TEST(ParameterPlannerTest, NonCqfSizesGateTableByCycle) {
  const topo::BuiltTopology lin = topo::make_linear(3);
  PlannerInput in;
  in.topology = &lin.topology;
  traffic::TsWorkloadParams params;
  params.flow_count = 8;
  in.flows = traffic::make_ts_flows(lin.host_nodes[0], lin.host_nodes[2], params);
  in.use_cqf = false;
  const PlannerOutput out = ParameterPlanner::plan(in);
  // 10 ms cycle / 65 us slots = 154 entries.
  EXPECT_EQ(out.config.gate_table_size, 154);
}

TEST(ParameterPlannerTest, PortCountTracksTopology) {
  for (const auto& [builder_fn, expected] :
       std::vector<std::pair<topo::BuiltTopology, std::int64_t>>{
           {topo::make_star(3), 3}, {topo::make_linear(6), 2}, {topo::make_ring(6), 1}}) {
    PlannerInput in;
    in.topology = &builder_fn.topology;
    traffic::TsWorkloadParams params;
    params.flow_count = 4;
    in.flows = traffic::make_ts_flows(builder_fn.host_nodes[0], builder_fn.host_nodes[1],
                                      params);
    EXPECT_EQ(ParameterPlanner::plan(in).config.port_count, expected);
  }
}

TEST(ParameterPlannerTest, InputValidation) {
  PlannerInput in;
  EXPECT_THROW((void)ParameterPlanner::plan(in), Error);
  const topo::BuiltTopology ring = topo::make_ring(3);
  in.topology = &ring.topology;
  EXPECT_THROW((void)ParameterPlanner::plan(in), Error);  // no flows
}


// ---------------------------------------------------------------- config IO
TEST(ConfigIoTest, TextRoundTrip) {
  const sw::SwitchResourceConfig original = paper_customized(3);
  const std::string text = to_text(original);
  const sw::SwitchResourceConfig parsed = config_from_text(text);
  EXPECT_EQ(parsed.unicast_table_size, original.unicast_table_size);
  EXPECT_EQ(parsed.queue_depth, original.queue_depth);
  EXPECT_EQ(parsed.buffers_per_port, original.buffers_per_port);
  EXPECT_EQ(parsed.port_count, original.port_count);
  EXPECT_EQ(to_text(parsed), text);  // canonical form is stable
}

TEST(ConfigIoTest, CommentsWhitespaceAndDefaults) {
  const sw::SwitchResourceConfig c = config_from_text(
      "# a comment\n"
      "\n"
      "  queue_depth   =   16 \r\n"
      "port_count=2\n");
  EXPECT_EQ(c.queue_depth, 16);
  EXPECT_EQ(c.port_count, 2);
  // Untouched keys keep their defaults.
  EXPECT_EQ(c.queues_per_port, sw::SwitchResourceConfig{}.queues_per_port);
}

TEST(ConfigIoTest, RejectsGarbage) {
  EXPECT_THROW((void)config_from_text("bogus_key = 5\n"), Error);
  EXPECT_THROW((void)config_from_text("queue_depth = twelve\n"), Error);
  EXPECT_THROW((void)config_from_text("no equals sign\n"), Error);
  // Values that parse but violate validation are rejected too.
  EXPECT_THROW((void)config_from_text("queues_per_port = 9\n"), Error);
}

TEST(ConfigIoTest, RejectsValuesBeyondHardwareCeilings) {
  // Fuzz-found class: validate() used to accept arbitrarily large
  // magnitudes, so a hostile config file could drive the BRAM cost model
  // into signed-int64 overflow (buffer_bytes x 8, depth x width). Every
  // parameter now has a hardware ceiling enforced at parse time.
  EXPECT_THROW((void)config_from_text("buffer_bytes = 9223372036854775807\n"), Error);
  EXPECT_THROW((void)config_from_text("buffers_per_port = 9223372036854775807\n"), Error);
  EXPECT_THROW((void)config_from_text("unicast_table_size = 9223372036854775807\n"), Error);
  EXPECT_THROW((void)config_from_text("classification_table_size = 16777217\n"), Error);
  EXPECT_THROW((void)config_from_text("queue_depth = 65537\n"), Error);
  EXPECT_THROW((void)config_from_text("port_count = 1025\n"), Error);
  // The ceilings themselves are valid.
  sw::SwitchResourceConfig at_max;
  at_max.unicast_table_size = sw::kMaxTableEntries;
  at_max.buffer_bytes = sw::kMaxBufferBytes;
  at_max.buffers_per_port = sw::kMaxBuffersPerPort;
  at_max.queue_depth = sw::kMaxQueueDepth;
  at_max.port_count = sw::kMaxPortCount;
  at_max.validate();
}

TEST(ConfigIoTest, EveryPresetRoundTripsByteIdentical) {
  const std::vector<std::pair<std::string, sw::SwitchResourceConfig>> presets = {
      {"bcm53154", bcm53154_reference()}, {"paper1", paper_customized(1)},
      {"paper2", paper_customized(2)},    {"paper3", paper_customized(3)},
      {"case1", table1_case1()},          {"case2", table1_case2()},
  };
  for (const auto& [name, config] : presets) {
    // Canonical text survives a parse round-trip byte for byte.
    const std::string text = to_text(config);
    EXPECT_EQ(to_text(config_from_text(text)), text) << name;

    // And the on-disk form IS the canonical text: save -> raw file bytes
    // -> load -> save reproduces it exactly.
    const std::string path = ::testing::TempDir() + "/tsnb_preset_" + name + ".cfg";
    save_config(config, path);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    EXPECT_EQ(bytes.str(), text) << name;
    EXPECT_EQ(to_text(load_config(path)), text) << name;
  }
}

TEST(ConfigIoTest, MalformedConfigNamesTheOffendingInput) {
  // Parse failures must surface as diagnostics that quote the offending
  // key/value, never as crashes or silently-defaulted configs.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"bogus_key = 5\n", "unknown key 'bogus_key'"},
      {"queue_depth = twelve\n", "not an integer"},
      {"no equals sign\n", "malformed line"},
  };
  for (const auto& [text, expected] : cases) {
    try {
      (void)config_from_text(text);
      FAIL() << "expected tsn::Error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos) << e.what();
    }
  }
}

TEST(ConfigIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tsnb_config_test.cfg";
  save_config(paper_customized(1), path);
  const sw::SwitchResourceConfig loaded = load_config(path);
  EXPECT_EQ(loaded.buffers_per_port, 96);
  EXPECT_EQ(loaded.port_count, 1);
  EXPECT_THROW((void)load_config("/nonexistent/path.cfg"), Error);
}

// ----------------------------------------------------------------- presets
TEST(PresetsTest, CommercialMatchesDatasheet) {
  const sw::SwitchResourceConfig c = bcm53154_reference();
  EXPECT_EQ(c.unicast_table_size, 16384);
  EXPECT_EQ(c.classification_table_size, 1024);
  EXPECT_EQ(c.meter_table_size, 512);
  EXPECT_EQ(c.port_count, 4);
  EXPECT_EQ(c.cbs_map_size, 8);
  c.validate();
}

TEST(PresetsTest, CustomizedBuffersAreDepthTimesQueues) {
  for (const std::int64_t ports : {1, 2, 3}) {
    const sw::SwitchResourceConfig c = paper_customized(ports);
    EXPECT_EQ(c.buffers_per_port, c.queue_depth * c.queues_per_port);
    EXPECT_EQ(c.port_count, ports);
    c.validate();
  }
}

}  // namespace
}  // namespace tsn::builder
