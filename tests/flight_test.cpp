// Tests for tsn::flight: the exhaustive drop-cause mappings (every
// sw::DropReason and every netsim wire-drop counter must map to a drop
// cause — adding an enumerator without a mapping fails here at compile
// time via -Werror=switch and at runtime via these loops), the recorder's
// span lineage and worst-K retention, the explain waterfalls for a
// deadline-missing and a dropped frame on the ring example, and the
// retention-determinism contract (byte-identical reports across repeat
// runs, hook interleavings, flow-registration order, and campaign worker
// counts — faults included).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/record.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario_space.hpp"
#include "fault/plan.hpp"
#include "fault/profiles.hpp"
#include "flight/explain.hpp"
#include "flight/recorder.hpp"
#include "netsim/flight_wire.hpp"
#include "netsim/scenario.hpp"
#include "switch/flight_map.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"
#include "verify/verifier.hpp"

namespace tsn {
namespace {

using namespace tsn::literals;

// ------------------------------------------------------ cause mappings

TEST(FlightCauseMapTest, EverySwitchDropReasonMapsToADistinctDropCause) {
  std::set<flight::Cause> seen;
  for (int r = 0; r < static_cast<int>(sw::DropReason::kCount); ++r) {
    const auto reason = static_cast<sw::DropReason>(r);
    const flight::Cause cause = sw::flight_cause(reason);
    EXPECT_TRUE(flight::is_drop(cause)) << to_string(reason);
    EXPECT_STRNE(flight::to_string(cause), "?") << to_string(reason);
    EXPECT_TRUE(seen.insert(cause).second)
        << to_string(reason) << " shares a cause with another reason";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sw::DropReason::kCount));
}

TEST(FlightCauseMapTest, EveryWireDropCounterMapsToADistinctDropCause) {
  std::set<flight::Cause> seen;
  for (int d = 0; d < static_cast<int>(netsim::WireDrop::kCount); ++d) {
    const auto drop = static_cast<netsim::WireDrop>(d);
    const flight::Cause cause = netsim::flight_cause(drop);
    EXPECT_TRUE(flight::is_drop(cause)) << d;
    EXPECT_STRNE(flight::to_string(cause), "?") << d;
    EXPECT_TRUE(seen.insert(cause).second) << d;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(netsim::WireDrop::kCount));
}

TEST(FlightCauseMapTest, CauseTaxonomyIsTotal) {
  // Every cause names itself, names are unique, and exactly the four
  // non-loss outcomes (in-flight, on-time, late, FRER-eliminated) are
  // not drops. A new Cause enumerator that misses to_string()/is_drop()
  // already fails to compile (-Werror=switch); this pins the counts so a
  // mapping added to the wrong bucket fails too.
  std::set<std::string> names;
  std::size_t drops = 0;
  for (int c = 0; c < static_cast<int>(flight::Cause::kCount); ++c) {
    const auto cause = static_cast<flight::Cause>(c);
    const std::string name = flight::to_string(cause);
    EXPECT_NE(name, "?") << c;
    EXPECT_TRUE(names.insert(name).second) << name;
    if (flight::is_drop(cause)) ++drops;
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(flight::Cause::kCount));
  EXPECT_EQ(drops, static_cast<std::size_t>(flight::Cause::kCount) - 4);
  // Both mapping domains land inside the drop subset.
  EXPECT_EQ(drops, static_cast<std::size_t>(sw::DropReason::kCount) +
                       static_cast<std::size_t>(netsim::WireDrop::kCount));
}

// ------------------------------------------------- recorder unit tests

net::Packet test_packet(net::FlowId flow, std::uint64_t seq, VlanId vid,
                        Duration deadline = Duration::zero()) {
  net::Packet p;
  p.meta.flow_id = flow;
  p.meta.sequence = seq;
  p.vlan.vid = vid;
  p.meta.traffic_class = net::TrafficClass::kTimeSensitive;
  p.meta.deadline = deadline;
  return p;
}

TEST(FlightRecorderTest, WorstKRetainsTheWorstAndCountsEvictions) {
  flight::FlightRecorder::Options options;
  options.worst_k = 2;
  flight::FlightRecorder rec(options);
  // Five deliveries of flow 1 with latencies 10, 50, 20, 40, 30 us.
  const std::int64_t latencies_us[] = {10, 50, 20, 40, 30};
  for (std::uint64_t i = 0; i < 5; ++i) {
    const net::Packet p = test_packet(1, i, 10);
    const TimePoint injected(static_cast<std::int64_t>(i) * 1'000'000);
    rec.on_injection(p, 0, injected);
    rec.on_delivered(p, 2, injected + microseconds(latencies_us[i]));
  }
  const flight::FlightReport report = rec.report(TimePoint(10'000'000));
  EXPECT_EQ(report.totals.injected, 5u);
  EXPECT_EQ(report.totals.delivered, 5u);
  EXPECT_EQ(report.totals.evicted_healthy, 3u);
  EXPECT_EQ(report.totals.in_flight, 0u);
  ASSERT_EQ(report.frames.size(), 2u);
  // The two worst latencies (50us = seq 1, 40us = seq 3) survive.
  EXPECT_NE(report.find(flight::FrameKey{1, 1, 10}), nullptr);
  EXPECT_NE(report.find(flight::FrameKey{1, 3, 10}), nullptr);
  const flight::FrameRecord* worst = report.worst_latency_frame();
  ASSERT_NE(worst, nullptr);
  EXPECT_EQ(worst->key.sequence, 1u);
  EXPECT_EQ(worst->latency(), microseconds(50));
}

TEST(FlightRecorderTest, DropsAndDeadlineMissesAreAlwaysRetained) {
  flight::FlightRecorder::Options options;
  options.worst_k = 1;
  flight::FlightRecorder rec(options);
  // A healthy delivery, a late one (1us deadline, 5us latency), and a
  // queue-full drop — worst_k=1 must not evict the critical records.
  const net::Packet ok = test_packet(1, 0, 10);
  rec.on_injection(ok, 0, TimePoint(0));
  rec.on_delivered(ok, 2, TimePoint(2'000));

  const net::Packet late = test_packet(1, 1, 10, microseconds(1));
  rec.on_injection(late, 0, TimePoint(10'000));
  rec.on_delivered(late, 2, TimePoint(15'000));

  const net::Packet lost = test_packet(1, 2, 10);
  rec.on_injection(lost, 0, TimePoint(20'000));
  rec.on_switch_drop(lost, 1, sw::flight_cause(sw::DropReason::kQueueFull),
                     TimePoint(21'000));

  const flight::FlightReport report = rec.report(TimePoint(30'000));
  EXPECT_EQ(report.totals.delivered, 1u);
  EXPECT_EQ(report.totals.delivered_late, 1u);
  EXPECT_EQ(report.totals.dropped, 1u);
  ASSERT_EQ(report.frames.size(), 3u);
  const flight::FrameRecord* miss = report.find(flight::FrameKey{1, 1, 10});
  ASSERT_NE(miss, nullptr);
  EXPECT_TRUE(miss->deadline_missed());
  EXPECT_EQ(miss->cause, flight::Cause::kDeliveredLate);
  const flight::FrameRecord* drop = report.find(flight::FrameKey{1, 2, 10});
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->cause, flight::Cause::kQueueFull);
  ASSERT_FALSE(drop->spans.empty());
  EXPECT_EQ(drop->spans.back().kind, flight::SpanKind::kDrop);
  EXPECT_EQ(drop->spans.back().cause, flight::Cause::kQueueFull);
}

TEST(FlightRecorderTest, ReportIsIndependentOfHookInterleaving) {
  // Two flows' frames completing in opposite orders must produce
  // byte-identical reports: retention depends only on sim time and keys.
  const auto run = [](bool flow2_first) {
    flight::FlightRecorder rec;
    const net::Packet a = test_packet(1, 0, 10);
    const net::Packet b = test_packet(2, 0, 20);
    rec.on_injection(a, 0, TimePoint(1'000));
    rec.on_injection(b, 1, TimePoint(2'000));
    if (flow2_first) {
      rec.on_delivered(b, 3, TimePoint(30'000));
      rec.on_delivered(a, 2, TimePoint(40'000));
    } else {
      rec.on_delivered(a, 2, TimePoint(40'000));
      rec.on_delivered(b, 3, TimePoint(30'000));
    }
    const flight::ExplainContext ctx;
    return flight::render_json(rec.report(TimePoint(50'000)), ctx,
                               flight::ExplainFilter{});
  };
  EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------- ring scenario waterfalls

netsim::ScenarioConfig ring_config(std::size_t flow_count = 16) {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(3);
  cfg.options.seed = 7;
  const std::int64_t tables = 2 * static_cast<std::int64_t>(flow_count) + 16;
  cfg.options.resource.classification_table_size = tables;
  cfg.options.resource.unicast_table_size = tables;
  traffic::TsWorkloadParams params;
  params.flow_count = flow_count;
  params.period = 2_ms;
  cfg.flows =
      traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2], params);
  cfg.warmup = 100_ms;
  cfg.traffic_duration = 25_ms;
  return cfg;
}

/// The bound report + explain context for `cfg` (mirrors cmd_explain).
bound::BoundReport bounds_for(const netsim::ScenarioConfig& cfg) {
  const verify::VerifyInput vin = verify::verify_input_from(cfg);
  bound::BoundInput bin = verify::bound_input_for(vin);
  if (vin.plan.has_value()) bin.plan = &*vin.plan;
  return bound::analyze(bin);
}

TEST(FlightScenarioTest, RingLineageIsCompleteAndAccounted) {
  netsim::ScenarioConfig cfg = ring_config();
  flight::FlightRecorder recorder;
  cfg.observe.flight = &recorder;
  const topo::Topology topology = cfg.built.topology;
  const topo::NodeId talker = cfg.built.host_nodes[0];
  const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));
  const flight::FlightReport report = recorder.report(result.sim_end);

  // Every injected occurrence is accounted for by exactly one outcome.
  EXPECT_EQ(report.totals.injected, result.ts.injected);
  EXPECT_EQ(report.totals.injected,
            report.totals.delivered + report.totals.delivered_late +
                report.totals.dropped + report.totals.frer_eliminated +
                report.totals.in_flight);

  const flight::FrameRecord* worst = report.worst_latency_frame();
  ASSERT_NE(worst, nullptr);
  ASSERT_FALSE(worst->spans.empty());
  EXPECT_EQ(worst->spans.front().kind, flight::SpanKind::kInjection);
  EXPECT_EQ(worst->spans.front().node, talker);
  EXPECT_EQ(worst->spans.back().kind, flight::SpanKind::kDeliver);
  // The h0 -> h2 path crosses two switches: expect a gate-wait with the
  // dequeue-time gate state and admission depth on the lineage.
  bool saw_queue_wait = false;
  for (const flight::Span& span : worst->spans) {
    if (span.kind != flight::SpanKind::kQueueWait) continue;
    saw_queue_wait = true;
    EXPECT_GE(span.queued_behind, 0);
    EXPECT_NE(span.gates, 0);
    EXPECT_GE(span.end, span.start);
  }
  EXPECT_TRUE(saw_queue_wait);

  flight::ExplainContext ctx;
  ctx.topology = &topology;
  // talker host, two switches, listener host.
  EXPECT_GE(flight::hop_visits(*worst, ctx).size(), 4u);
}

TEST(FlightScenarioTest, DeadlineMissGetsACompleteWaterfall) {
  netsim::ScenarioConfig cfg = ring_config();
  // A 20us end-to-end deadline is unmeetable across two ring hops with a
  // 65us CQF slot: every delivery is a deadline miss.
  for (auto& flow : cfg.flows) flow.deadline = microseconds(20);
  const bound::BoundReport bounds = bounds_for(cfg);
  flight::FlightRecorder recorder;
  cfg.observe.flight = &recorder;
  const topo::Topology topology = cfg.built.topology;
  const Duration slot = cfg.options.runtime.slot_size;
  const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));
  const flight::FlightReport report = recorder.report(result.sim_end);
  EXPECT_GT(report.totals.delivered_late, 0u);

  flight::ExplainContext ctx;
  ctx.topology = &topology;
  ctx.bounds = &bounds;
  ctx.slot = slot;
  flight::ExplainFilter filter;
  filter.drops_only = true;  // deadline misses count as forensic targets
  const std::string text = flight::render_text(report, ctx, filter);
  // The pinned waterfall: miss marker, per-hop budget-vs-spent lines for
  // both switches, the gate-wait decomposition, and the delivery line.
  EXPECT_NE(text.find("[DEADLINE MISS]"), std::string::npos) << text;
  EXPECT_NE(text.find("cause=delivered_late"), std::string::npos) << text;
  EXPECT_NE(text.find("e2e bound "), std::string::npos) << text;
  EXPECT_NE(text.find("hop s0:"), std::string::npos) << text;
  EXPECT_NE(text.find("hop s1:"), std::string::npos) << text;
  EXPECT_NE(text.find("bound "), std::string::npos) << text;
  EXPECT_NE(text.find("spent "), std::string::npos) << text;
  EXPECT_NE(text.find("gate-wait "), std::string::npos) << text;
  EXPECT_NE(text.find("serialize "), std::string::npos) << text;
  EXPECT_NE(text.find("delivered at "), std::string::npos) << text;
  const std::string json = flight::render_json(report, ctx, filter);
  EXPECT_NE(json.find("\"deadline_missed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"bound_ns\":"), std::string::npos);
}

TEST(FlightScenarioTest, DroppedFrameGetsACompleteWaterfallWithCause) {
  netsim::ScenarioConfig cfg = ring_config();
  // Permanent failure of backbone link 0 (s0-s1) without FRER: primary-
  // path frames die on the wire with cause link_down.
  fault::FaultEvent down;
  down.kind = fault::FaultKind::kLinkDown;
  down.link = fault::backbone_links(cfg.built.topology).front();
  down.at = 10_ms;
  down.down_for = Duration::zero();
  cfg.faults.scheduled.push_back(down);

  flight::FlightRecorder recorder;
  cfg.observe.flight = &recorder;
  const topo::Topology topology = cfg.built.topology;
  const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));
  const flight::FlightReport report = recorder.report(result.sim_end);
  EXPECT_GT(report.totals.dropped, 0u);

  const flight::FrameRecord* dropped = nullptr;
  for (const flight::FrameRecord& rec : report.frames) {
    if (rec.cause == flight::Cause::kLinkDown) {
      dropped = &rec;
      break;
    }
  }
  ASSERT_NE(dropped, nullptr);
  ASSERT_FALSE(dropped->spans.empty());
  EXPECT_EQ(dropped->spans.front().kind, flight::SpanKind::kInjection);
  EXPECT_EQ(dropped->spans.back().kind, flight::SpanKind::kDrop);
  EXPECT_EQ(dropped->spans.back().cause, flight::Cause::kLinkDown);

  flight::ExplainContext ctx;
  ctx.topology = &topology;
  flight::ExplainFilter filter;
  filter.drops_only = true;
  const std::string text = flight::render_text(report, ctx, filter);
  EXPECT_NE(text.find("DROPPED at "), std::string::npos) << text;
  EXPECT_NE(text.find("cause=link_down"), std::string::npos) << text;
  // The fault action is stitched into the record as an annotation.
  ASSERT_FALSE(report.annotations.empty());
  EXPECT_NE(report.annotations.front().text.find("link-down"), std::string::npos)
      << report.annotations.front().text;
}

// -------------------------------------------- retention determinism

TEST(FlightDeterminismTest, ScenarioReportIsByteIdenticalAcrossRuns) {
  const auto run = [] {
    netsim::ScenarioConfig cfg = ring_config();
    cfg.faults = fault::profile_plan("link-flap", cfg.built.topology,
                                     cfg.traffic_duration);
    flight::FlightRecorder recorder;
    cfg.observe.flight = &recorder;
    const topo::Topology topology = cfg.built.topology;
    const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));
    flight::ExplainContext ctx;
    ctx.topology = &topology;
    return flight::render_json(recorder.report(result.sim_end), ctx,
                               flight::ExplainFilter{});
  };
  EXPECT_EQ(run(), run());
}

TEST(FlightDeterminismTest, ReportIsIndependentOfFlowRegistrationOrder) {
  // The same frame lineages, presented flow-by-flow in opposite
  // registration orders, must serialize byte-identically — retention and
  // report ordering key on (flow, sequence, vid), never on arrival
  // order. worst_k=1 keeps the eviction path under test in both orders.
  const auto replay = [](const std::vector<net::FlowId>& order) {
    flight::FlightRecorder::Options options;
    options.worst_k = 1;
    flight::FlightRecorder rec(options);
    for (const net::FlowId flow : order) {
      for (std::uint64_t seq = 0; seq < 3; ++seq) {
        const net::Packet p = test_packet(flow, seq, static_cast<VlanId>(flow));
        const TimePoint injected(static_cast<std::int64_t>(flow) * 10'000'000 +
                                 static_cast<std::int64_t>(seq) * 1'000'000);
        rec.on_injection(p, 0, injected);
        // Latencies vary by sequence so worst-K has real work to do; the
        // last occurrence of flow 3 is dropped instead.
        if (flow == 3 && seq == 2) {
          rec.on_switch_drop(p, 1, flight::Cause::kQueueFull,
                             injected + microseconds(5));
        } else {
          rec.on_delivered(
              p, 2,
              injected + microseconds(10 + 7 * static_cast<std::int64_t>(seq)));
        }
      }
    }
    const flight::ExplainContext ctx;
    return flight::render_json(rec.report(TimePoint(100'000'000)), ctx,
                               flight::ExplainFilter{});
  };
  EXPECT_EQ(replay({1, 2, 3}), replay({3, 2, 1}));
}

TEST(FlightDeterminismTest, CampaignWorstFrameRowsAreByteIdenticalAcrossJobs) {
  const auto run = [](std::size_t jobs) {
    campaign::ScenarioMatrix matrix;
    for (campaign::Axis& axis : campaign::parse_axes("faults=none,link-flap")) {
      matrix.add_axis(std::move(axis));
    }
    campaign::CampaignOptions options;
    options.jobs = jobs;
    options.capture_worst_frame = true;
    campaign::CampaignRunner runner(std::move(matrix), options);
    const std::vector<campaign::RunRecord> records =
        runner.run([](const campaign::RunPoint& point, std::uint64_t seed) {
          return campaign::scenario_for_point(point, seed);
        });
    std::vector<std::string> rows;
    rows.reserve(records.size());
    for (const campaign::RunRecord& record : records) {
      rows.push_back(campaign::to_jsonl(record, /*include_timing=*/false));
    }
    return rows;
  };
  const std::vector<std::string> serial = run(1);
  ASSERT_EQ(serial.size(), 2u);
  for (const std::string& row : serial) {
    // Capture actually ran: the worst frame is present with hop + JSON.
    EXPECT_NE(row.find("\"worst_frame_hop\":\"s"), std::string::npos) << row;
    EXPECT_NE(row.find("\"worst_frame\":{"), std::string::npos) << row;
    EXPECT_EQ(row.find("\"worst_frame\":null"), std::string::npos) << row;
  }
  EXPECT_EQ(serial, run(4));
}

TEST(FlightDeterminismTest, CampaignWithoutCaptureLeavesWorstFrameNull) {
  campaign::ScenarioMatrix matrix;
  for (campaign::Axis& axis : campaign::parse_axes("flows=8")) {
    matrix.add_axis(std::move(axis));
  }
  campaign::CampaignRunner runner(std::move(matrix), campaign::CampaignOptions{});
  const std::vector<campaign::RunRecord> records =
      runner.run([](const campaign::RunPoint& point, std::uint64_t seed) {
        return campaign::scenario_for_point(point, seed);
      });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok) << records[0].error;
  EXPECT_EQ(records[0].metrics.worst_frame_latency_ns, 0);
  const std::string row = campaign::to_jsonl(records[0], false);
  EXPECT_NE(row.find("\"worst_frame_latency_ns\":0"), std::string::npos) << row;
  EXPECT_NE(row.find("\"worst_frame\":null"), std::string::npos) << row;
}

}  // namespace
}  // namespace tsn
