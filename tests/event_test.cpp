// Tests for the discrete-event simulation kernel: ordering, determinism,
// cancellation, run_until semantics, periodic tasks, slot-pool recycling,
// and the small-buffer-optimized event::Callback.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "event/callback.hpp"
#include "event/simulator.hpp"

namespace tsn::event {
namespace {

using namespace tsn::literals;

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint(300), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint(100), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint(200), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 300);
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint(50), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_at(TimePoint(100), [&] {
    sim.schedule_in(50_ns, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen.ns(), 150);
}

TEST(SimulatorTest, CallbackMaySchedualAtSameTimestamp) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(10), [&] {
    sim.schedule_at(TimePoint(10), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(TimePoint(100), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint(50), [] {}), Error);
  EXPECT_THROW(sim.schedule_at(sim.now(), Simulator::Callback{}), Error);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{12345}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<std::int64_t> fired;
  for (std::int64_t t : {50, 100, 150}) {
    sim.schedule_at(TimePoint(t), [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_until(TimePoint(100)), 2u);
  EXPECT_EQ(sim.now().ns(), 100);
  EXPECT_EQ(fired, (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(sim.run_until(TimePoint(200)), 1u);
  EXPECT_EQ(sim.now().ns(), 200);  // advances even past the last event
}

TEST(SimulatorTest, RunUntilBackwardThrows) {
  Simulator sim;
  (void)sim.run_until(TimePoint(100));
  EXPECT_THROW((void)sim.run_until(TimePoint(50)), Error);
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(TimePoint(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 2u);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(5), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(TimePoint(i % 7), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, CancelFromSameTimestampCallback) {
  // An event may cancel another event scheduled at the very timestamp
  // currently executing; the victim's heap entry is skimmed, not fired.
  Simulator sim;
  bool victim_fired = false;
  EventId victim{};
  sim.schedule_at(TimePoint(10), [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(TimePoint(10), [&] { victim_fired = true; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, PendingEventsAfterMassCancellation) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(TimePoint(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 1000u);
  for (const EventId& id : ids) EXPECT_TRUE(sim.cancel(id));
  // All tombstones: nothing pending, nothing runs, the clock stays put.
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.now().ns(), 0);
}

TEST(SimulatorTest, StaleIdCannotCancelRecycledSlot) {
  Simulator sim;
  const EventId stale = sim.schedule_at(TimePoint(10), [] {});
  EXPECT_TRUE(sim.cancel(stale));
  // The freed slot is recycled for the next event; the spent handle's
  // generation no longer matches and must not cancel the newcomer.
  bool fired = false;
  (void)sim.schedule_at(TimePoint(20), [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SlotGenerationSurvivesHeavyReuse) {
  // Thousands of schedule/cancel/fire cycles through the same slot: every
  // retired handle stays dead, and the pool never grows past the peak
  // concurrency of one.
  Simulator sim;
  std::vector<EventId> history;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    const EventId id = sim.schedule_at(sim.now() + Duration(1), [] {});
    if (cycle % 2 == 0) {
      EXPECT_TRUE(sim.cancel(id));
    } else {
      EXPECT_EQ(sim.run(), 1u);
    }
    history.push_back(id);
  }
  for (const EventId& id : history) EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.events_executed(), 1000u);
  EXPECT_EQ(sim.slot_pool_capacity(), 1u);
}

TEST(SimulatorTest, CountsInlineAndHeapCallbacks) {
  Simulator sim;
  sim.schedule_at(TimePoint(1), [] {});  // captureless: inline
  const std::array<std::uint64_t, 16> big{};  // 128 B capture: heap
  sim.schedule_at(TimePoint(2), [big] { (void)big; });
  EXPECT_EQ(sim.callbacks_inline(), 1u);
  EXPECT_EQ(sim.callbacks_heap(), 1u);
  sim.run();
}

TEST(PeriodicTaskTest, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<std::int64_t> at;
  PeriodicTask task(sim, TimePoint(10), Duration(100), [&] { at.push_back(sim.now().ns()); });
  (void)sim.run_until(TimePoint(350));
  EXPECT_EQ(at, (std::vector<std::int64_t>{10, 110, 210, 310}));
}

TEST(PeriodicTaskTest, StopHaltsRepetition) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, TimePoint(0), Duration(10), [&] {
    if (++count == 3) task.stop();
  });
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DestructionCancelsPending) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, TimePoint(5), Duration(5), [&] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTaskTest, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, TimePoint(0), Duration(0), [] {}), Error);
  EXPECT_THROW(PeriodicTask(sim, TimePoint(0), Duration(5), nullptr), Error);
}

TEST(PeriodicTaskTest, StopFromOwnCallbackLeavesKernelClean) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, TimePoint(0), Duration(10), [&] {
    if (++count == 2) task.stop();
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
  // The re-armed occurrence was cancelled from inside its predecessor:
  // no orphaned event may keep the kernel busy.
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ------------------------------------------------------------- Callback
TEST(CallbackTest, SmallCaptureStoresInline) {
  int x = 0;
  Callback cb = [&x] { ++x; };
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(x, 1);
}

TEST(CallbackTest, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 B > 48 B inline budget
  big[0] = 40;
  big[15] = 2;
  std::uint64_t sum = 0;
  Callback cb = [big, &sum] {
    for (const std::uint64_t v : big) sum += v;
  };
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(sum, 42u);
}

TEST(CallbackTest, MoveTransfersOwnership) {
  int x = 0;
  Callback a = [&x] { ++x; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);
  Callback c;
  c = std::move(b);
  c();
  EXPECT_EQ(x, 2);
}

TEST(CallbackTest, CarriesMoveOnlyCaptures) {
  auto boxed = std::make_unique<int>(7);
  int seen = 0;
  Callback cb = [p = std::move(boxed), &seen] { seen = *p; };
  EXPECT_TRUE(cb.is_inline());  // unique_ptr + reference: 16 B
  cb();
  EXPECT_EQ(seen, 7);
}

TEST(CallbackTest, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(std::exchange(o.counter, nullptr)) {}
    Probe(const Probe&) = delete;
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
    void operator()() const {}
  };
  int destroyed = 0;
  {
    Callback cb = Probe(&destroyed);
    Callback moved = std::move(cb);
    moved();
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(CallbackTest, NullAndAssignment) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
  cb = [] {};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb = nullptr;
  EXPECT_FALSE(static_cast<bool>(cb));
}

}  // namespace
}  // namespace tsn::event
