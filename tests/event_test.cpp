// Tests for the discrete-event simulation kernel: ordering, determinism,
// cancellation, run_until semantics, periodic tasks.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "event/simulator.hpp"

namespace tsn::event {
namespace {

using namespace tsn::literals;

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint(300), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint(100), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint(200), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 300);
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint(50), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_at(TimePoint(100), [&] {
    sim.schedule_in(50_ns, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen.ns(), 150);
}

TEST(SimulatorTest, CallbackMaySchedualAtSameTimestamp) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(10), [&] {
    sim.schedule_at(TimePoint(10), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(TimePoint(100), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint(50), [] {}), Error);
  EXPECT_THROW(sim.schedule_at(sim.now(), Simulator::Callback{}), Error);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{12345}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<std::int64_t> fired;
  for (std::int64_t t : {50, 100, 150}) {
    sim.schedule_at(TimePoint(t), [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_until(TimePoint(100)), 2u);
  EXPECT_EQ(sim.now().ns(), 100);
  EXPECT_EQ(fired, (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(sim.run_until(TimePoint(200)), 1u);
  EXPECT_EQ(sim.now().ns(), 200);  // advances even past the last event
}

TEST(SimulatorTest, RunUntilBackwardThrows) {
  Simulator sim;
  (void)sim.run_until(TimePoint(100));
  EXPECT_THROW((void)sim.run_until(TimePoint(50)), Error);
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(TimePoint(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 2u);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(5), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(TimePoint(i % 7), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PeriodicTaskTest, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<std::int64_t> at;
  PeriodicTask task(sim, TimePoint(10), Duration(100), [&] { at.push_back(sim.now().ns()); });
  (void)sim.run_until(TimePoint(350));
  EXPECT_EQ(at, (std::vector<std::int64_t>{10, 110, 210, 310}));
}

TEST(PeriodicTaskTest, StopHaltsRepetition) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, TimePoint(0), Duration(10), [&] {
    if (++count == 3) task.stop();
  });
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DestructionCancelsPending) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, TimePoint(5), Duration(5), [&] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTaskTest, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, TimePoint(0), Duration(0), [] {}), Error);
  EXPECT_THROW(PeriodicTask(sim, TimePoint(0), Duration(5), nullptr), Error);
}

}  // namespace
}  // namespace tsn::event
