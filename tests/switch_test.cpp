// Tests for the switch dataplane: buffer pool, metadata queues, the five
// templates (packet switch, ingress filter, gate control, egress
// scheduling with CBS and guard band), and the integrated TsnSwitch.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "event/simulator.hpp"
#include "net/packet.hpp"
#include "switch/buffer_pool.hpp"
#include "switch/clock_source.hpp"
#include "switch/egress_sched.hpp"
#include "switch/gate_ctrl.hpp"
#include "switch/ingress_filter.hpp"
#include "switch/packet_switch.hpp"
#include "switch/queue.hpp"
#include "switch/tsn_switch.hpp"
#include "tables/gcl.hpp"
#include "timesync/clock.hpp"

namespace tsn::sw {
namespace {

using namespace tsn::literals;

net::Packet ts_packet(std::int64_t frame = 64) {
  net::Packet p = net::packet_with_frame_size(frame);
  p.src = MacAddress::from_u64(0x020000000001ULL);
  p.dst = MacAddress::from_u64(0x020000000002ULL);
  p.vlan = net::VlanTag{7, false, 100};
  p.meta.traffic_class = net::TrafficClass::kTimeSensitive;
  return p;
}

SwitchResourceConfig small_res() {
  SwitchResourceConfig res;
  res.unicast_table_size = 16;
  res.classification_table_size = 16;
  res.meter_table_size = 4;
  res.queue_depth = 8;
  res.buffers_per_port = 16;
  return res;
}

// ------------------------------------------------------------ BufferPool
TEST(BufferPoolTest, StoreRetrieveRelease) {
  BufferPool pool(4, 2048);
  const net::Packet p = ts_packet(128);
  const BufferHandle h = pool.store(p);
  ASSERT_NE(h, kInvalidBuffer);
  EXPECT_EQ(pool.packet(h).frame_bytes(), 128);
  EXPECT_EQ(pool.in_use(), 1);
  pool.release(h);
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(BufferPoolTest, ExhaustionReturnsInvalid) {
  BufferPool pool(2, 2048);
  EXPECT_NE(pool.store(ts_packet()), kInvalidBuffer);
  EXPECT_NE(pool.store(ts_packet()), kInvalidBuffer);
  EXPECT_EQ(pool.store(ts_packet()), kInvalidBuffer);
}

TEST(BufferPoolTest, PeakTracksHighWater) {
  BufferPool pool(8, 2048);
  const BufferHandle a = pool.store(ts_packet());
  const BufferHandle b = pool.store(ts_packet());
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.peak_in_use(), 2);
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(BufferPoolTest, OversizedFrameRejected) {
  BufferPool pool(2, 256);
  EXPECT_EQ(pool.store(ts_packet(512)), kInvalidBuffer);
}

TEST(BufferPoolTest, StaleHandleThrows) {
  BufferPool pool(2, 2048);
  const BufferHandle h = pool.store(ts_packet());
  pool.release(h);
  EXPECT_THROW((void)pool.packet(h), Error);
  EXPECT_THROW(pool.release(h), Error);
}

// --------------------------------------------------------- MetadataQueue
TEST(MetadataQueueTest, TailDropAtDepth) {
  MetadataQueue q(2);
  EXPECT_TRUE(q.enqueue({0, 64, TimePoint(0)}));
  EXPECT_TRUE(q.enqueue({1, 64, TimePoint(0)}));
  EXPECT_FALSE(q.enqueue({2, 64, TimePoint(0)}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.dequeue().buffer, 0u);
}

TEST(MetadataQueueTest, PeakOccupancy) {
  MetadataQueue q(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.enqueue({i, 64, TimePoint(0)}));
  }
  while (!q.empty()) (void)q.dequeue();
  EXPECT_EQ(q.peak_occupancy(), 5u);
}

// ------------------------------------------------------------ PacketSwitch
TEST(PacketSwitchTest, UnicastLookup) {
  PacketSwitch ps(16, 0);
  const net::Packet p = ts_packet();
  EXPECT_TRUE(ps.add_unicast(p.dst, p.vlan.vid, 3));
  EXPECT_EQ(ps.lookup(p), std::vector<tables::PortIndex>{3});
}

TEST(PacketSwitchTest, LookupMissIsEmpty) {
  PacketSwitch ps(16, 0);
  EXPECT_TRUE(ps.lookup(ts_packet()).empty());
}

TEST(PacketSwitchTest, VlanDisambiguates) {
  PacketSwitch ps(16, 0);
  net::Packet p = ts_packet();
  EXPECT_TRUE(ps.add_unicast(p.dst, 100, 1));
  EXPECT_TRUE(ps.add_unicast(p.dst, 200, 2));
  p.vlan.vid = 200;
  EXPECT_EQ(ps.lookup(p), std::vector<tables::PortIndex>{2});
}

TEST(PacketSwitchTest, MulticastExpandsGroup) {
  PacketSwitch ps(16, 8);
  EXPECT_TRUE(ps.has_multicast_table());
  net::Packet p = ts_packet();
  p.dst = MacAddress::from_u64(0x01005E000005ULL);  // multicast, group 5
  EXPECT_TRUE(ps.add_multicast(5, 0b0110));
  EXPECT_EQ(ps.lookup(p), (std::vector<tables::PortIndex>{1, 2}));
}

TEST(PacketSwitchTest, MulticastWithoutTableDrops) {
  PacketSwitch ps(16, 0);
  net::Packet p = ts_packet();
  p.dst = MacAddress::from_u64(0x01005E000005ULL);
  EXPECT_FALSE(ps.add_multicast(5, 0b0110));
  EXPECT_TRUE(ps.lookup(p).empty());
}

TEST(PacketSwitchTest, ParserAcceptsValidRejectsCorrupt) {
  const net::Packet p = ts_packet(128);
  auto bytes = net::to_frame(p).serialize();
  const auto parsed = PacketSwitch::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->vlan.vid, p.vlan.vid);
  bytes[30] ^= 0xFF;  // corrupt -> FCS fails
  EXPECT_FALSE(PacketSwitch::parse(bytes).has_value());
}

// ----------------------------------------------------------- IngressFilter
TEST(IngressFilterTest, AcceptsProvisionedFlow) {
  IngressFilter filter(16, 16);
  const net::Packet p = ts_packet();
  ASSERT_TRUE(filter.add_class_entry(tables::ClassificationKey::from_packet(p),
                                     {tables::kNoMeter, 7}));
  const auto v = filter.process(p, TimePoint(0));
  EXPECT_EQ(v.action, IngressFilter::Verdict::Action::kAccept);
  EXPECT_EQ(v.queue, 7);
}

TEST(IngressFilterTest, MissesUnprovisionedFlow) {
  IngressFilter filter(16, 16);
  const auto v = filter.process(ts_packet(), TimePoint(0));
  EXPECT_EQ(v.action, IngressFilter::Verdict::Action::kClassificationMiss);
}

TEST(IngressFilterTest, MeterRedDrops) {
  IngressFilter filter(16, 16);
  net::Packet p = ts_packet(1024);
  p.vlan.pcp = 5;
  const tables::MeterId m = filter.install_meter(DataRate::megabits_per_sec(8), 1100);
  ASSERT_NE(m, tables::kNoMeter);
  ASSERT_TRUE(filter.add_class_entry(tables::ClassificationKey::from_packet(p), {m, 5}));
  EXPECT_EQ(filter.process(p, TimePoint(0)).action, IngressFilter::Verdict::Action::kAccept);
  // Second packet at the same instant exceeds the 1100 B bucket.
  EXPECT_EQ(filter.process(p, TimePoint(0)).action,
            IngressFilter::Verdict::Action::kMeterDrop);
}


TEST(IngressFilterTest, MaxSduFilterDropsOversized) {
  IngressFilter filter(16, 16);
  net::Packet small = ts_packet(128);
  net::Packet big = ts_packet(512);
  tables::ClassificationResult result{tables::kNoMeter, 7, /*max_sdu_bytes=*/256};
  ASSERT_TRUE(filter.add_class_entry(tables::ClassificationKey::from_packet(small), result));
  EXPECT_EQ(filter.process(small, TimePoint(0)).action,
            IngressFilter::Verdict::Action::kAccept);
  EXPECT_EQ(filter.process(big, TimePoint(0)).action,
            IngressFilter::Verdict::Action::kMaxSduDrop);
}

TEST(IngressFilterTest, MaxSduDropDoesNotConsumeTokens) {
  IngressFilter filter(16, 16);
  net::Packet p = ts_packet(1024);
  p.vlan.pcp = 5;
  const tables::MeterId m = filter.install_meter(DataRate::megabits_per_sec(8), 1100);
  tables::ClassificationResult result{m, 5, /*max_sdu_bytes=*/512};
  ASSERT_TRUE(filter.add_class_entry(tables::ClassificationKey::from_packet(p), result));
  // Oversized frames bounce off the SDU filter repeatedly...
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(filter.process(p, TimePoint(0)).action,
              IngressFilter::Verdict::Action::kMaxSduDrop);
  }
  // ...without draining the bucket: a conformant frame still passes.
  net::Packet ok = ts_packet(512);
  ok.vlan.pcp = 5;
  EXPECT_EQ(filter.process(ok, TimePoint(0)).action,
            IngressFilter::Verdict::Action::kAccept);
}

// --------------------------------------------------------------- GateCtrl
class GateCtrlTest : public ::testing::Test {
 protected:
  event::Simulator sim;
  IdentityClock clock;
};

TEST_F(GateCtrlTest, UnprogrammedGatesAllOpen) {
  GateCtrl gc(sim, clock, 2);
  gc.start();
  EXPECT_EQ(gc.in_gates(), tables::kAllGatesOpen);
  EXPECT_EQ(gc.out_gates(), tables::kAllGatesOpen);
  EXPECT_EQ(gc.next_update_true(), TimePoint::max());
}

TEST_F(GateCtrlTest, CqfFlipsEverySlot) {
  GateCtrl gc(sim, clock, 2);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  gc.program(pair.ingress, pair.egress, TimePoint(0));
  gc.start();
  EXPECT_TRUE(gc.in_open(7));
  EXPECT_FALSE(gc.in_open(6));
  EXPECT_TRUE(gc.out_open(6));

  (void)sim.run_until(TimePoint(70'000));
  EXPECT_FALSE(gc.in_open(7));
  EXPECT_TRUE(gc.in_open(6));
  EXPECT_TRUE(gc.out_open(7));

  (void)sim.run_until(TimePoint(135'000));
  EXPECT_TRUE(gc.in_open(7));
  EXPECT_EQ(gc.updates_applied(), 4u);  // 2 lists x 2 boundaries
}

TEST_F(GateCtrlTest, MidCycleStartPicksCorrectEntry) {
  (void)sim.run_until(TimePoint(100'000));  // start inside slot 1
  GateCtrl gc(sim, clock, 2);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  gc.program(pair.ingress, pair.egress, TimePoint(0));
  gc.start();
  EXPECT_TRUE(gc.in_open(6));  // odd slot: queue 6 fills
  EXPECT_EQ(gc.next_update_true(), TimePoint(130'000));
}

TEST_F(GateCtrlTest, StopReprogramStartKeepsWalking) {
  // The boundary callback re-resolves the walker/gate members from a
  // captured direction flag (it must not reference the arming frame), so
  // gate walking has to survive a stop -> reprogram -> start cycle with
  // the schedule picking up mid-cycle exactly as a fresh start would.
  GateCtrl gc(sim, clock, 2);
  const auto wide = tables::make_cqf_gcl(65_us, 7, 6);
  gc.program(wide.ingress, wide.egress, TimePoint(0));
  gc.start();
  (void)sim.run_until(TimePoint(70'000));
  EXPECT_EQ(gc.updates_applied(), 2u);  // one boundary x 2 lists
  gc.stop();
  EXPECT_EQ(gc.in_gates(), tables::kAllGatesOpen);

  const auto narrow = tables::make_cqf_gcl(10_us, 7, 6);
  gc.program(narrow.ingress, narrow.egress, TimePoint(0));
  gc.start();  // now = 70 us, slot 7 of the 10 us program
  (void)sim.run_until(TimePoint(105'000));
  // Boundaries at 80/90/100 us: 3 more per list on top of the 2 above.
  EXPECT_EQ(gc.updates_applied(), 8u);
  // 105 us is slot 10 (even): ingress queue 7 open, egress drains queue 6.
  EXPECT_TRUE(gc.in_open(7));
  EXPECT_FALSE(gc.in_open(6));
  EXPECT_TRUE(gc.out_open(6));
  EXPECT_EQ(gc.next_update_true(), TimePoint(110'000));
}

TEST_F(GateCtrlTest, OnChangeFires) {
  GateCtrl gc(sim, clock, 2);
  const auto pair = tables::make_cqf_gcl(10_us, 7, 6);
  gc.program(pair.ingress, pair.egress, TimePoint(0));
  int changes = 0;
  gc.set_on_change([&changes] { ++changes; });
  gc.start();
  (void)sim.run_until(TimePoint(35'000));
  // start() + 3 boundaries x 2 lists.
  EXPECT_EQ(changes, 7);
}

TEST_F(GateCtrlTest, SkewedClockShiftsBoundaries) {
  // A clock running 1000 ppm fast reaches synced time 65 us early.
  timesync::LocalClock fast(+1000.0);
  DisciplinedClock source(fast);
  GateCtrl gc(sim, clock, 2);
  gc.set_clock(source);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  gc.program(pair.ingress, pair.egress, TimePoint(0));
  gc.start();
  const TimePoint boundary = gc.next_update_true();
  EXPECT_LT(boundary.ns(), 65'000);
  EXPECT_NEAR(static_cast<double>(boundary.ns()), 65'000.0 / 1.001, 2.0);
}

TEST_F(GateCtrlTest, ProgramValidation) {
  GateCtrl gc(sim, clock, 2);
  tables::GateControlList big(4);
  ASSERT_TRUE(big.add_entry({0xFF, 10_us}));
  ASSERT_TRUE(big.add_entry({0x0F, 10_us}));
  ASSERT_TRUE(big.add_entry({0xF0, 10_us}));
  tables::GateControlList small(2);
  ASSERT_TRUE(small.add_entry({0xFF, 30_us}));
  // 3 entries exceed the synthesized gate table size of 2.
  EXPECT_THROW(gc.program(big, small, TimePoint(0)), Error);
  // Mismatched cycle times.
  tables::GateControlList other(2);
  ASSERT_TRUE(other.add_entry({0xFF, 10_us}));
  EXPECT_THROW(gc.program(small, other, TimePoint(0)), Error);
}

// ---------------------------------------------------------- EgressScheduler
struct EgressHarness {
  event::Simulator sim;
  IdentityClock clock;
  SwitchResourceConfig res;
  SwitchRuntimeConfig rt;
  SwitchCounters counters;
  std::unique_ptr<GateCtrl> gates;
  std::unique_ptr<EgressScheduler> sched;
  std::vector<std::pair<TimePoint, net::Packet>> sent;

  explicit EgressHarness(bool guard = true, std::int64_t depth = 8,
                         std::int64_t buffers = 16) {
    res.queue_depth = depth;
    res.buffers_per_port = buffers;
    rt.guard_band = guard;
    gates = std::make_unique<GateCtrl>(sim, clock, res.gate_table_size);
    sched = std::make_unique<EgressScheduler>(sim, *gates, res, rt, counters);
    gates->set_on_change([this] { sched->kick(); });
    sched->set_tx_callback(
        [this](const net::Packet& p) { sent.emplace_back(sim.now(), p); });
  }

  net::Packet packet(Priority pcp, std::int64_t frame = 64) {
    net::Packet p = ts_packet(frame);
    p.vlan.pcp = pcp;
    return p;
  }
};

TEST(EgressSchedulerTest, TransmitsWhenGateOpen) {
  EgressHarness h;
  h.sched->ingress_enqueue(h.packet(0), 0);
  h.sim.run();
  ASSERT_EQ(h.sent.size(), 1u);
  // 64 B frame occupies 672 bit-times = 672 ns at 1 Gbps.
  EXPECT_EQ(h.sent[0].first.ns(), 672);
  EXPECT_EQ(h.counters.tx_packets, 1u);
}

TEST(EgressSchedulerTest, StrictPriorityOrdersBacklog) {
  EgressHarness h;
  // The first frame seizes the idle port; the rest queue up behind it.
  h.sched->ingress_enqueue(h.packet(0), 0);
  h.sched->ingress_enqueue(h.packet(1), 1);
  h.sched->ingress_enqueue(h.packet(5), 5);
  h.sched->ingress_enqueue(h.packet(7), 7);
  h.sim.run();
  ASSERT_EQ(h.sent.size(), 4u);
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 0);
  EXPECT_EQ(h.sent[1].second.vlan.pcp, 7);
  EXPECT_EQ(h.sent[2].second.vlan.pcp, 5);
  EXPECT_EQ(h.sent[3].second.vlan.pcp, 1);
}

TEST(EgressSchedulerTest, QueueFullCountsDropAndReleasesBuffer) {
  EgressHarness h(/*guard=*/true, /*depth=*/4);
  // Close queue 3's egress gate so it can only fill.
  tables::GateControlList gcl(2);
  ASSERT_TRUE(gcl.add_entry({static_cast<tables::GateBitmap>(~(1u << 3)), 1000_us}));
  h.gates->program(gcl, gcl, TimePoint(0));
  h.gates->start();
  for (int i = 0; i < 6; ++i) h.sched->ingress_enqueue(h.packet(3), 3);
  EXPECT_EQ(h.counters.drops[static_cast<std::size_t>(DropReason::kQueueFull)], 2u);
  // The dropped packets released their buffers: only 4 held.
  EXPECT_EQ(h.sched->pool().in_use(), 4);
}

TEST(EgressSchedulerTest, BufferExhaustionCountsDrop) {
  EgressHarness h;
  // Egress gates all closed: nothing drains, the 16-buffer pool fills.
  tables::GateControlList out_closed(2);
  ASSERT_TRUE(out_closed.add_entry({0x00, 1000_us}));
  tables::GateControlList in_open(2);
  ASSERT_TRUE(in_open.add_entry({0xFF, 1000_us}));
  h.gates->program(in_open, out_closed, TimePoint(0));
  h.gates->start();
  for (int q = 0; q < 5; ++q) {
    for (int i = 0; i < 4; ++i) {
      h.sched->ingress_enqueue(h.packet(static_cast<Priority>(q)),
                               static_cast<tables::QueueId>(q));
    }
  }
  EXPECT_EQ(h.counters.drops[static_cast<std::size_t>(DropReason::kBufferExhausted)], 4u);
  EXPECT_EQ(h.sched->pool().in_use(), 16);
}

TEST(EgressSchedulerTest, CbsThrottlesToIdleSlope) {
  EgressHarness h(/*guard=*/true, /*depth=*/32, /*buffers=*/64);
  // Reserve 100 Mbps for queue 5 on a 1 Gbps port.
  ASSERT_TRUE(h.sched->bind_shaper(
      5, tables::CbsConfig::for_reservation(DataRate::megabits_per_sec(100),
                                            DataRate::gigabits_per_sec(1))));
  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) h.sched->ingress_enqueue(h.packet(5, 1024), 5);
  h.sim.run();
  ASSERT_EQ(h.sent.size(), kFrames);
  const double elapsed_sec = static_cast<double>(h.sent.back().first.ns()) / 1e9;
  const double bits = kFrames * static_cast<double>(net::wire_bits(1024).bits());
  EXPECT_NEAR(bits / elapsed_sec, 100e6, 12e6);  // paced at ~idleSlope
}

TEST(EgressSchedulerTest, BestEffortFillsRcCreditGaps) {
  EgressHarness h;
  ASSERT_TRUE(h.sched->bind_shaper(
      5, tables::CbsConfig::for_reservation(DataRate::megabits_per_sec(100),
                                            DataRate::gigabits_per_sec(1))));
  for (int i = 0; i < 5; ++i) {
    h.sched->ingress_enqueue(h.packet(5, 1024), 5);
    h.sched->ingress_enqueue(h.packet(0, 1024), 0);
  }
  h.sim.run();
  ASSERT_EQ(h.sent.size(), 10u);
  // BE frames use the gaps while RC credit is negative, so the BE backlog
  // drains in ~5 back-to-back frame times — far before the RC pacing ends.
  TimePoint last_be{};
  for (const auto& [at, p] : h.sent) {
    if (p.vlan.pcp == 0) last_be = at;
  }
  const double five_frames_ns = 5.0 * static_cast<double>(net::wire_bits(1024).bits());
  EXPECT_LT(static_cast<double>(last_be.ns()), 4 * five_frames_ns);
  EXPECT_EQ(h.sent.back().second.vlan.pcp, 5);  // the RC tail finishes last
}

TEST(EgressSchedulerTest, GuardBandHoldsFrameThatWouldCrossBoundary) {
  EgressHarness h(/*guard=*/true);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  h.gates->program(pair.ingress, pair.egress, TimePoint(0));
  h.gates->start();
  // At t=60us, a 1500 B frame (12.3 us on the wire) cannot finish before
  // the 65 us boundary: the guard holds it until the boundary.
  (void)h.sim.run_until(TimePoint(60'000));
  h.sched->ingress_enqueue(h.packet(0, 1500), 0);
  (void)h.sim.run_until(TimePoint(130'000));
  ASSERT_EQ(h.sent.size(), 1u);
  const std::int64_t wire = net::wire_bits(1500).bits();
  EXPECT_EQ(h.sent[0].first.ns(), 65'000 + wire);
  EXPECT_GE(h.counters.guard_band_holds, 1u);
}

TEST(EgressSchedulerTest, WithoutGuardBandFrameCrossesBoundary) {
  EgressHarness h(/*guard=*/false);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  h.gates->program(pair.ingress, pair.egress, TimePoint(0));
  h.gates->start();
  (void)h.sim.run_until(TimePoint(60'000));
  h.sched->ingress_enqueue(h.packet(0, 1500), 0);
  (void)h.sim.run_until(TimePoint(130'000));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].first.ns(), 60'000 + net::wire_bits(1500).bits());
}



TEST_F(GateCtrlTest, StopReprogramRestart) {
  GateCtrl gc(sim, clock, 4);
  const auto pair = tables::make_cqf_gcl(65_us, 7, 6);
  gc.program(pair.ingress, pair.egress, TimePoint(0));
  gc.start();
  EXPECT_THROW(gc.program(pair.ingress, pair.egress, TimePoint(0)), Error);  // running
  gc.stop();
  EXPECT_EQ(gc.in_gates(), tables::kAllGatesOpen);  // stopped -> open
  // Reprogram with a different slot and restart mid-timeline.
  (void)sim.run_until(TimePoint(50'000));
  const auto pair2 = tables::make_cqf_gcl(10_us, 7, 6);
  gc.program(pair2.ingress, pair2.egress, TimePoint(0));
  gc.start();
  // t=50us is slot 5 (odd): queue 6 fills.
  EXPECT_TRUE(gc.in_open(6));
  EXPECT_FALSE(gc.in_open(7));
  EXPECT_EQ(gc.next_update_true(), TimePoint(60'000));
}

TEST(EgressSchedulerTest, HiCreditCapLimitsBurst) {
  EgressHarness h(/*guard=*/true, /*depth=*/32, /*buffers=*/64);
  // Cap accumulation at 2000 bits while the queue waits.
  tables::CbsConfig cfg = tables::CbsConfig::for_reservation(
      DataRate::megabits_per_sec(100), DataRate::gigabits_per_sec(1));
  cfg.hi_credit_bits = 2000;
  ASSERT_TRUE(h.sched->bind_shaper(5, cfg));
  // Block queue 5 with a higher-priority backlog so credit accrues.
  for (int i = 0; i < 8; ++i) h.sched->ingress_enqueue(h.packet(7, 1500), 7);
  for (int i = 0; i < 4; ++i) h.sched->ingress_enqueue(h.packet(5, 1024), 5);
  h.sim.run();
  // Everything drains eventually; the cap just bounds the credit.
  EXPECT_EQ(h.counters.tx_packets, 12u);
  const auto credit = h.sched->credit_bits(5);
  ASSERT_TRUE(credit.has_value());
  EXPECT_LE(*credit, 2000.0);
}

TEST(TsnSwitchTest, MulticastFansOutToMemberPorts) {
  event::Simulator sim;
  SwitchResourceConfig res = small_res();
  res.multicast_table_size = 4;
  SwitchRuntimeConfig rt;
  rt.enable_cqf = false;
  TsnSwitch dev(sim, "sw0", res, rt, 3);
  net::Packet p = ts_packet();
  p.dst = MacAddress::from_u64(0x01005E000009ULL);  // group 9
  ASSERT_TRUE(dev.add_multicast(9, 0b0110));        // ports 1 and 2
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                  {tables::kNoMeter, 7}));
  std::vector<tables::PortIndex> out;
  dev.set_tx_callback(
      [&out](tables::PortIndex port, const net::Packet&) { out.push_back(port); });
  dev.start();
  dev.receive(0, p);
  sim.run();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<tables::PortIndex>{1, 2}));
  EXPECT_EQ(dev.counters().tx_packets, 2u);
}

// ------------------------------------------------------ frame preemption
struct PreemptionHarness : EgressHarness {
  PreemptionHarness() : EgressHarness(/*guard=*/false, /*depth=*/8, /*buffers=*/16) {}
};

TEST(PreemptionTest, ExpressInterruptsPreemptableFrame) {
  EgressHarness h(/*guard=*/false, /*depth=*/8, /*buffers=*/16);
  // Rebuild the scheduler with preemption enabled.
  h.rt.preemption = true;
  h.sched = std::make_unique<EgressScheduler>(h.sim, *h.gates, h.res, h.rt, h.counters);
  h.sched->set_tx_callback([&h](const net::Packet& p) { h.sent.emplace_back(h.sim.now(), p); });

  h.sched->ingress_enqueue(h.packet(0, 1500), 0);  // 12.16 us on the wire
  (void)h.sim.run_until(TimePoint(2'000));
  h.sched->ingress_enqueue(h.packet(7, 64), 7);    // express arrives mid-frame
  h.sim.run();

  ASSERT_EQ(h.sent.size(), 2u);
  // The express frame finishes first: cut at 2 us + its own 672 ns.
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 7);
  EXPECT_EQ(h.sent[0].first.ns(), 2'000 + 672);
  // The preemptable remainder resumes with the 24 B fragment overhead:
  // sent 250 B of 1520, remainder 1270 + 24 = 1294 B = 10.352 us.
  EXPECT_EQ(h.sent[1].second.vlan.pcp, 0);
  EXPECT_EQ(h.sent[1].first.ns(), 2'672 + 1294 * 8);
  EXPECT_EQ(h.counters.preemptions, 1u);
  EXPECT_EQ(h.counters.tx_packets, 2u);
}

TEST(PreemptionTest, WaitsForMinimumFirstFragment) {
  EgressHarness h(/*guard=*/false, /*depth=*/8, /*buffers=*/16);
  h.rt.preemption = true;
  h.sched = std::make_unique<EgressScheduler>(h.sim, *h.gates, h.res, h.rt, h.counters);
  h.sched->set_tx_callback([&h](const net::Packet& p) { h.sent.emplace_back(h.sim.now(), p); });

  h.sched->ingress_enqueue(h.packet(0, 1500), 0);
  (void)h.sim.run_until(TimePoint(200));  // only 25 wire bytes sent
  h.sched->ingress_enqueue(h.packet(7, 64), 7);
  h.sim.run();

  ASSERT_EQ(h.sent.size(), 2u);
  // The cut waits for the 84-wire-byte minimum fragment (672 ns), then
  // the express frame transmits.
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 7);
  EXPECT_EQ(h.sent[0].first.ns(), 672 + 672);
  EXPECT_EQ(h.counters.preemptions, 1u);
}

TEST(PreemptionTest, NoCutNearFrameEnd) {
  EgressHarness h(/*guard=*/false, /*depth=*/8, /*buffers=*/16);
  h.rt.preemption = true;
  h.sched = std::make_unique<EgressScheduler>(h.sim, *h.gates, h.res, h.rt, h.counters);
  h.sched->set_tx_callback([&h](const net::Packet& p) { h.sent.emplace_back(h.sim.now(), p); });

  h.sched->ingress_enqueue(h.packet(0, 1500), 0);  // done at 12160 ns
  (void)h.sim.run_until(TimePoint(12'000));        // < 84 B remaining
  h.sched->ingress_enqueue(h.packet(7, 64), 7);
  h.sim.run();

  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 0);  // lets the tail finish
  EXPECT_EQ(h.sent[0].first.ns(), 12'160);
  EXPECT_EQ(h.counters.preemptions, 0u);
}

TEST(PreemptionTest, SuspendedFrameResumesBeforeNewPreemptableFrames) {
  EgressHarness h(/*guard=*/false, /*depth=*/8, /*buffers=*/16);
  h.rt.preemption = true;
  h.sched = std::make_unique<EgressScheduler>(h.sim, *h.gates, h.res, h.rt, h.counters);
  h.sched->set_tx_callback([&h](const net::Packet& p) { h.sent.emplace_back(h.sim.now(), p); });

  h.sched->ingress_enqueue(h.packet(0, 1500), 0);
  (void)h.sim.run_until(TimePoint(2'000));
  // Express + a HIGHER-priority preemptable frame arrive together.
  h.sched->ingress_enqueue(h.packet(7, 64), 7);
  h.sched->ingress_enqueue(h.packet(5, 64), 5);
  h.sim.run();

  ASSERT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 7);  // express burst
  EXPECT_EQ(h.sent[1].second.vlan.pcp, 0);  // the mid-flight frame resumes...
  EXPECT_EQ(h.sent[2].second.vlan.pcp, 5);  // ...before any new pFrame
  EXPECT_EQ(h.counters.preemptions, 1u);
}

TEST(PreemptionTest, DisabledMeansNoInterruption) {
  EgressHarness h(/*guard=*/false, /*depth=*/8, /*buffers=*/16);  // preemption off
  h.sched->ingress_enqueue(h.packet(0, 1500), 0);
  (void)h.sim.run_until(TimePoint(2'000));
  h.sched->ingress_enqueue(h.packet(7, 64), 7);
  h.sim.run();
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[0].second.vlan.pcp, 0);
  EXPECT_EQ(h.counters.preemptions, 0u);
}

// ---------------------------------------------------------------- TsnSwitch

TEST(TsnSwitchTest, ForwardsProvisionedFlow) {
  event::Simulator sim;
  SwitchRuntimeConfig rt;
  rt.enable_cqf = false;
  TsnSwitch dev(sim, "sw0", small_res(), rt, 2);
  const net::Packet p = ts_packet();
  ASSERT_TRUE(dev.add_unicast(p.dst, p.vlan.vid, 1));
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                  {tables::kNoMeter, 7}));
  std::vector<std::pair<tables::PortIndex, net::Packet>> out;
  dev.set_tx_callback([&out](tables::PortIndex port, const net::Packet& pkt) {
    out.emplace_back(port, pkt);
  });
  dev.start();
  dev.receive(0, p);
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(dev.counters().rx_packets, 1u);
  EXPECT_EQ(dev.counters().tx_packets, 1u);
  EXPECT_EQ(dev.counters().total_drops(), 0u);
}

TEST(TsnSwitchTest, DropsUnclassifiedAndUnrouted) {
  event::Simulator sim;
  SwitchRuntimeConfig rt;
  rt.enable_cqf = false;
  TsnSwitch dev(sim, "sw0", small_res(), rt, 2);
  dev.start();

  dev.receive(0, ts_packet());  // no classification entry
  sim.run();
  EXPECT_EQ(dev.counters().drops[static_cast<std::size_t>(DropReason::kClassificationMiss)],
            1u);

  net::Packet p = ts_packet();
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                  {tables::kNoMeter, 7}));
  dev.receive(0, p);  // classified but no forwarding entry
  sim.run();
  EXPECT_EQ(dev.counters().drops[static_cast<std::size_t>(DropReason::kLookupMiss)], 1u);
}

TEST(TsnSwitchTest, CqfRedirectsTsIntoFillingQueue) {
  event::Simulator sim;
  SwitchRuntimeConfig rt;  // CQF on, slot 65 us, queues 7/6
  TsnSwitch dev(sim, "sw0", small_res(), rt, 2);
  const net::Packet p = ts_packet();
  ASSERT_TRUE(dev.add_unicast(p.dst, p.vlan.vid, 1));
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                  {tables::kNoMeter, 7}));
  dev.start();
  // During slot 0, queue 7 fills and queue 6 drains; a packet received now
  // sits in queue 7 until the next boundary.
  dev.receive(0, p);
  (void)sim.run_until(TimePoint(30'000));
  EXPECT_EQ(dev.scheduler(1).queue(7).size(), 1u);
  EXPECT_EQ(dev.scheduler(1).queue(6).size(), 0u);
  // After the boundary the packet drains.
  (void)sim.run_until(TimePoint(70'000));
  EXPECT_EQ(dev.scheduler(1).queue(7).size(), 0u);
  EXPECT_EQ(dev.counters().tx_packets, 1u);

  // A packet received during slot 1 fills queue 6 instead.
  dev.receive(0, p);
  (void)sim.run_until(TimePoint(100'000));
  EXPECT_EQ(dev.scheduler(1).queue(6).size(), 1u);
}

TEST(TsnSwitchTest, MeterDropsCounted) {
  event::Simulator sim;
  SwitchRuntimeConfig rt;
  rt.enable_cqf = false;
  TsnSwitch dev(sim, "sw0", small_res(), rt, 2);
  net::Packet p = ts_packet(1024);
  p.vlan.pcp = 5;
  const tables::MeterId m = dev.install_meter(DataRate::megabits_per_sec(8), 1100);
  ASSERT_NE(m, tables::kNoMeter);
  ASSERT_TRUE(dev.add_unicast(p.dst, p.vlan.vid, 1));
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p), {m, 5}));
  dev.start();
  dev.receive(0, p);
  dev.receive(0, p);  // same instant: bucket exhausted
  sim.run();
  EXPECT_EQ(dev.counters().drops[static_cast<std::size_t>(DropReason::kMeterViolation)], 1u);
  EXPECT_EQ(dev.counters().tx_packets, 1u);
}

TEST(TsnSwitchTest, ValidatesConfigurationAtConstruction) {
  event::Simulator sim;
  SwitchResourceConfig bad = small_res();
  bad.queues_per_port = 9;
  EXPECT_THROW(TsnSwitch(sim, "x", bad, SwitchRuntimeConfig{}, 1), Error);
  EXPECT_THROW(TsnSwitch(sim, "x", small_res(), SwitchRuntimeConfig{}, 0), Error);
  SwitchRuntimeConfig bad_rt;
  bad_rt.cqf_queue_a = bad_rt.cqf_queue_b = 7;
  EXPECT_THROW(TsnSwitch(sim, "x", small_res(), bad_rt, 1), Error);
}

TEST(TsnSwitchTest, ClassEntryQueueBoundsChecked) {
  event::Simulator sim;
  SwitchResourceConfig res = small_res();
  res.queues_per_port = 4;
  SwitchRuntimeConfig rt;
  rt.cqf_queue_a = 3;
  rt.cqf_queue_b = 2;
  TsnSwitch dev(sim, "sw0", res, rt, 1);
  const net::Packet p = ts_packet();
  EXPECT_THROW((void)dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                         {tables::kNoMeter, 5}),
               Error);
}

TEST(TsnSwitchTest, MaxSduDropCounted) {
  event::Simulator sim;
  SwitchRuntimeConfig rt;
  rt.enable_cqf = false;
  TsnSwitch dev(sim, "sw0", small_res(), rt, 2);
  const net::Packet p = ts_packet(1500);
  ASSERT_TRUE(dev.add_unicast(p.dst, p.vlan.vid, 1));
  ASSERT_TRUE(dev.add_class_entry(tables::ClassificationKey::from_packet(p),
                                  {tables::kNoMeter, 7, 1024}));
  dev.start();
  dev.receive(0, p);
  sim.run();
  EXPECT_EQ(dev.counters().drops[static_cast<std::size_t>(DropReason::kMaxSduExceeded)], 1u);
  EXPECT_EQ(dev.counters().tx_packets, 0u);
}

}  // namespace
}  // namespace tsn::sw
