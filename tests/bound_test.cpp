// Tests for tsn::bound — the curve algebra's degenerate-window and
// rounding behaviour, the analyzer's aligned-vs-drifting pipeline
// bounds, and byte-pinned golden bounds for the campaign presets (any
// model change that moves a bound must re-justify the new number here).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bound/analyzer.hpp"
#include "bound/curves.hpp"
#include "campaign/scenario_space.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"
#include "verify/verifier.hpp"

namespace tsn::bound {
namespace {

// ---------------------------------------------------------- curve algebra

TEST(BoundCurveTest, ZeroLengthGateIntervalYieldsZeroService) {
  // A zero-length GCL interval guarantees nothing: the service curve is
  // identically zero and every bound through it diverges.
  const ServiceCurve s = gated_service(DataRate::gigabits_per_sec(1), Duration(0),
                                       microseconds(65));
  EXPECT_EQ(s.rate_bps, 0.0);
  const ArrivalCurve a{1e6, 672.0};
  EXPECT_FALSE(delay_bound(a, s).has_value());
  EXPECT_FALSE(backlog_bound_bits(a, s).has_value());
}

TEST(BoundCurveTest, GuardBandOnlyWindowPassesNothing) {
  // A guard band covering the whole open window leaves no usable
  // transmission time; a partial one leaves exactly the difference.
  EXPECT_EQ(effective_open(microseconds(2), microseconds(2)), Duration(0));
  EXPECT_EQ(effective_open(microseconds(2), microseconds(3)), Duration(0));
  EXPECT_EQ(effective_open(microseconds(5), microseconds(2)), microseconds(3));
  const ServiceCurve s =
      gated_service(DataRate::gigabits_per_sec(1),
                    effective_open(microseconds(2), microseconds(2)), microseconds(65));
  EXPECT_FALSE(delay_bound(ArrivalCurve{0.0, 1.0}, s).has_value());
}

TEST(BoundCurveTest, OpenCoveringWholeCycleIsTheFullLink) {
  for (const std::int64_t open_us : {65, 80}) {
    const ServiceCurve s = gated_service(DataRate::gigabits_per_sec(1),
                                         microseconds(open_us), microseconds(65));
    EXPECT_EQ(s.rate_bps, 1e9);
    EXPECT_EQ(s.latency, Duration(0));
  }
}

TEST(BoundCurveTest, BurstLargerThanOneWindowOfServiceStaysBounded) {
  // One 10 us window at 1 Gb/s drains 10000 bits; a 30000-bit burst needs
  // three windows, which the long-run rate-latency form absorbs into the
  // horizontal deviation: 90 us closed stretch + 30000 bits / 100 Mb/s.
  const ServiceCurve s = gated_service(DataRate::gigabits_per_sec(1), microseconds(10),
                                       microseconds(100));
  EXPECT_EQ(s.rate_bps, 1e8);
  EXPECT_EQ(s.latency, microseconds(90));
  const ArrivalCurve a{1e6, 30000.0};
  ASSERT_TRUE(delay_bound(a, s).has_value());
  EXPECT_EQ(delay_bound(a, s)->ns(), 390000);
  ASSERT_TRUE(backlog_bound_bits(a, s).has_value());
  EXPECT_EQ(*backlog_bound_bits(a, s), 30090.0);
}

TEST(BoundCurveTest, ArrivalRateAboveServiceRateIsUnbounded) {
  const ServiceCurve s{1e8, microseconds(5)};
  const ArrivalCurve a{2e8, 672.0};
  EXPECT_FALSE(delay_bound(a, s).has_value());
  EXPECT_FALSE(backlog_bound_bits(a, s).has_value());
}

TEST(BoundCurveTest, BoundsRoundUpTowardTheGuarantee) {
  // 1 bit at 3 b/s is 333333333.3 ns of queueing: rounding down would
  // shave a third of a nanosecond off the guarantee.
  const ServiceCurve s{3.0, Duration(0)};
  ASSERT_TRUE(delay_bound(ArrivalCurve{0.0, 1.0}, s).has_value());
  EXPECT_EQ(delay_bound(ArrivalCurve{0.0, 1.0}, s)->ns(), 333333334);
}

TEST(BoundCurveTest, PropagateInflatesBurstByRateTimesDelay) {
  const ArrivalCurve a{1e9, 100.0};
  EXPECT_EQ(propagate(a, Duration(1000)).burst_bits, 1100.0);
  EXPECT_EQ(propagate(a, Duration(1000)).rate_bps, 1e9);
  // A negative delay never deflates the burst.
  EXPECT_EQ(propagate(a, Duration(-50)).burst_bits, 100.0);
}

TEST(BoundCurveTest, MultiHopHeterogeneousShapersCompose) {
  // Hop 1 is a CQF-style gated window (half of every 65 us cycle), hop 2
  // a CBS-style rate-latency server. Composition is delay + propagate +
  // delay, each exact to the nanosecond.
  const ServiceCurve gate = gated_service(DataRate::gigabits_per_sec(1),
                                          Duration(32500), microseconds(65));
  EXPECT_EQ(gate.rate_bps, 5e8);
  EXPECT_EQ(gate.latency, Duration(32500));
  const ArrivalCurve fresh{1e7, 8352.0};
  ASSERT_TRUE(delay_bound(fresh, gate).has_value());
  const Duration d1 = *delay_bound(fresh, gate);
  EXPECT_EQ(d1.ns(), 49204);  // 32500 + ceil(8352 / 5e8 s)

  const ArrivalCurve shaped = propagate(fresh, d1);
  EXPECT_DOUBLE_EQ(shaped.burst_bits, 8352.0 + 1e7 * 49204e-9);
  const ServiceCurve cbs{2e8, microseconds(5)};
  ASSERT_TRUE(delay_bound(shaped, cbs).has_value());
  const Duration d2 = *delay_bound(shaped, cbs);
  EXPECT_EQ(d2.ns(), 49221);  // 5000 + ceil(8844.04 / 2e8 s)
  EXPECT_EQ((d1 + d2).ns(), 98425);
}

// ------------------------------------------------------------- analyzer

/// Eight TS flows across make_linear(3), period selectable so the same
/// workload exercises the aligned (period % slot == 0) and drifting
/// pipeline formulas.
BoundReport linear_report(Duration period) {
  static topo::BuiltTopology built = topo::make_linear(3);
  traffic::TsWorkloadParams p;
  p.flow_count = 8;
  p.frame_bytes = 64;
  p.period = period;
  verify::VerifyInput input;
  input.flows =
      traffic::make_ts_flows(built.host_nodes.front(), built.host_nodes.back(), p, 1);
  input.topology = &built.topology;
  return analyze(verify::bound_input_for(input));
}

TEST(BoundAnalyzerTest, AlignedPipelineBoundIsExact) {
  // 6.5 ms is 100 slots exactly: injections stay phase-locked, so the
  // bound is the plain h-slot pipeline.
  const BoundReport rep = linear_report(microseconds(6500));
  EXPECT_TRUE(rep.all_ts_bounded());
  EXPECT_EQ(rep.max_ts_latency().ns(), 196402);
  EXPECT_EQ(rep.max_ts_queue_frames(), 1);
  EXPECT_EQ(rep.max_backlog_bytes(), 84);
  EXPECT_EQ(rep.max_port_buffers(), 3);
}

TEST(BoundAnalyzerTest, DriftingPeriodWidensLatencyAndQueuePair) {
  // 10 ms mod 65 us != 0: the injection phase sweeps the slot, so some
  // occurrence slips into the adjacent cell. The latency bound grows to
  // the late-arrival form and the per-queue backlog widens to the worst
  // adjacent-cell pair (both CQF queues co-resident).
  const BoundReport rep = linear_report(milliseconds(10));
  EXPECT_TRUE(rep.all_ts_bounded());
  EXPECT_EQ(rep.max_ts_latency().ns(), 199124);
  EXPECT_EQ(rep.max_ts_queue_frames(), 2);
  EXPECT_EQ(rep.max_backlog_bytes(), 168);
  EXPECT_GT(rep.max_ts_latency(), linear_report(microseconds(6500)).max_ts_latency());
}

// ------------------------------------------------------- preset goldens

BoundReport preset_report(std::vector<std::pair<std::string, std::string>> params) {
  campaign::RunPoint point;
  point.params = std::move(params);
  const netsim::ScenarioConfig cfg = campaign::scenario_for_point(point, 1);
  const verify::VerifyInput vin = verify::verify_input_from(cfg);
  BoundInput bin = verify::bound_input_for(vin);
  if (vin.plan.has_value()) bin.plan = &*vin.plan;
  return analyze(bin);
}

struct PresetGolden {
  const char* name;
  std::vector<std::pair<std::string, std::string>> params;
  std::int64_t latency_ns;
  std::int64_t queue_frames;
  std::int64_t backlog_bytes;
  std::int64_t port_buffers;
};

TEST(BoundGoldenTest, PresetBoundsArePinned) {
  // Every row pins the analyzer's exact output on one campaign preset;
  // a diff here is a model change and must be re-derived, not accepted.
  const std::vector<PresetGolden> goldens = {
      {"commercial", {{"config", "commercial"}, {"flows", "512"}}, 138156, 8, 672, 9},
      {"case1", {{"config", "case1"}, {"frame", "256"}}, 141612, 4, 1104, 5},
      {"case2", {{"config", "case2"}, {"frame", "1024"}, {"rc-mbps", "100"}},
       166188, 4, 4176, 8},
      {"star", {{"topology", "star"}, {"switches", "3"}, {"hops", "3"}}, 135468, 4, 336, 5},
      {"ring",
       {{"topology", "ring"}, {"switches", "6"}, {"hops", "5"}, {"be-mbps", "100"}},
       330468, 4, 8192, 9},
  };
  for (const PresetGolden& g : goldens) {
    const BoundReport rep = preset_report(g.params);
    EXPECT_TRUE(rep.all_ts_bounded()) << g.name;
    EXPECT_EQ(rep.max_ts_latency().ns(), g.latency_ns) << g.name;
    EXPECT_EQ(rep.max_ts_queue_frames(), g.queue_frames) << g.name;
    EXPECT_EQ(rep.max_backlog_bytes(), g.backlog_bytes) << g.name;
    EXPECT_EQ(rep.max_port_buffers(), g.port_buffers) << g.name;
  }
}

TEST(BoundReportTest, RendersTextAndJson) {
  const BoundReport rep = linear_report(microseconds(6500));
  const std::string text = rep.render_text(true);
  EXPECT_NE(text.find("196.402"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"flows\":["), std::string::npos);
  EXPECT_NE(json.find("196402"), std::string::npos);
}

}  // namespace
}  // namespace tsn::bound
