// Tests for the Ethernet frame model: CRC32, serialization/parsing
// round-trips, padding, VLAN tags, wire timing, and the dataplane packet
// view.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/crc32.hpp"
#include "net/ethernet.hpp"
#include "net/packet.hpp"

namespace tsn::net {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  std::uint32_t state = crc32_init();
  state = crc32_update(state, std::span(data).first(100));
  state = crc32_update(state, std::span(data).subspan(100));
  EXPECT_EQ(crc32_finalize(state), crc32(data));
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(crc32({}), 0x00000000u); }

EthernetFrame sample_frame(std::size_t payload) {
  EthernetFrame f;
  f.dst = *MacAddress::parse("02:00:00:00:00:02");
  f.src = *MacAddress::parse("02:00:00:00:00:01");
  f.vlan = VlanTag{5, false, 100};
  f.ethertype = kEtherTypeTsnData;
  f.payload.resize(payload);
  for (std::size_t i = 0; i < payload; ++i) f.payload[i] = static_cast<std::uint8_t>(i);
  return f;
}

TEST(VlanTagTest, TciRoundTrip) {
  const VlanTag tag{7, true, 4094};
  EXPECT_EQ(VlanTag::from_tci(tag.tci()), tag);
  EXPECT_EQ(tag.tci(), 0xFFFE);
}

TEST(EthernetFrameTest, MinimumFramePadding) {
  const EthernetFrame f = sample_frame(1);
  EXPECT_EQ(f.frame_bytes(), 64);  // padded to the Ethernet minimum
  EXPECT_EQ(f.serialize().size(), 64u);
}

TEST(EthernetFrameTest, LargeFrameLength) {
  const EthernetFrame f = sample_frame(1000);
  // 14 header + 4 tag + 1000 + 4 FCS.
  EXPECT_EQ(f.frame_bytes(), 1022);
}

TEST(EthernetFrameTest, SerializeParseRoundTripTagged) {
  const EthernetFrame f = sample_frame(200);
  const auto bytes = f.serialize();
  const auto parsed = parse_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->frame.dst, f.dst);
  EXPECT_EQ(parsed->frame.src, f.src);
  ASSERT_TRUE(parsed->frame.vlan.has_value());
  EXPECT_EQ(*parsed->frame.vlan, *f.vlan);
  EXPECT_EQ(parsed->frame.ethertype, f.ethertype);
  EXPECT_EQ(parsed->frame.payload, f.payload);
}

TEST(EthernetFrameTest, SerializeParseRoundTripUntagged) {
  EthernetFrame f = sample_frame(100);
  f.vlan.reset();
  const auto parsed = parse_frame(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_FALSE(parsed->frame.vlan.has_value());
  EXPECT_EQ(parsed->frame.payload, f.payload);
}

TEST(EthernetFrameTest, CorruptionBreaksFcs) {
  auto bytes = sample_frame(100).serialize();
  bytes[20] ^= 0x01;
  const auto parsed = parse_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(EthernetFrameTest, TruncatedInputRejected) {
  const auto bytes = sample_frame(100).serialize();
  EXPECT_FALSE(parse_frame(std::span(bytes).first(32)).has_value());
  EXPECT_FALSE(parse_frame({}).has_value());
}

TEST(WireBitsTest, IncludesPreambleAndIfg) {
  // 64 B frame + 8 B preamble/SFD + 12 B IFG = 84 B = 672 bits.
  EXPECT_EQ(wire_bits(64).bits(), 672);
  EXPECT_EQ(wire_bits(1518).bits(), (1518 + 20) * 8);
}

// ---------------------------------------------------------------- packet
TEST(PacketTest, FrameSizeFloorsAtMinimum) {
  Packet p;
  p.payload_bytes = 10;
  EXPECT_EQ(p.frame_bytes(), 64);
}

TEST(PacketTest, PacketWithFrameSizeProducesExactSizes) {
  for (const std::int64_t size : {64, 128, 256, 512, 1024, 1500}) {
    const Packet p = packet_with_frame_size(size);
    EXPECT_EQ(p.frame_bytes(), size) << "frame size " << size;
  }
}

TEST(PacketTest, PacketWithFrameSizeRejectsOutOfRange) {
  EXPECT_THROW((void)packet_with_frame_size(32), Error);
  EXPECT_THROW((void)packet_with_frame_size(4000), Error);
}

TEST(PacketTest, FrameConversionRoundTrip) {
  Packet p = packet_with_frame_size(256);
  p.src = *MacAddress::parse("02:00:00:00:00:0a");
  p.dst = *MacAddress::parse("02:00:00:00:00:0b");
  p.vlan = VlanTag{7, false, 42};
  const EthernetFrame f = to_frame(p);
  const Packet q = from_frame(f);
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.dst, p.dst);
  EXPECT_EQ(q.vlan, p.vlan);
  EXPECT_EQ(q.payload_bytes, p.payload_bytes);
  EXPECT_EQ(q.frame_bytes(), p.frame_bytes());
}

TEST(PacketTest, ByteAccurateRoundTripThroughWire) {
  Packet p = packet_with_frame_size(128);
  p.src = *MacAddress::parse("02:00:00:00:00:01");
  p.dst = *MacAddress::parse("02:00:00:00:00:02");
  p.vlan = VlanTag{7, false, 7};
  const auto bytes = to_frame(p).serialize();
  const auto parsed = parse_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(from_frame(parsed->frame).frame_bytes(), 128);
}


// Property sweep: serialize/parse round-trip across payload sizes and
// random contents.
struct FrameCase {
  std::size_t payload;
  std::uint64_t seed;
  bool tagged;
};

class FrameRoundTrip : public ::testing::TestWithParam<FrameCase> {};

TEST_P(FrameRoundTrip, LosslessAndFcsClean) {
  const auto [payload, seed, tagged] = GetParam();
  Rng rng(seed);
  EthernetFrame f;
  f.dst = MacAddress::from_u64(rng() & 0xFEFFFFFFFFFFULL);
  f.src = MacAddress::from_u64(rng() & 0xFEFFFFFFFFFFULL);
  if (tagged) {
    f.vlan = VlanTag{static_cast<Priority>(rng.uniform(0, 7)), rng.bernoulli(0.5),
                     static_cast<VlanId>(rng.uniform(1, 4094))};
  }
  f.payload.resize(payload);
  for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng());

  const auto bytes = f.serialize();
  EXPECT_GE(bytes.size(), 64u);
  const auto parsed = parse_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->frame.dst, f.dst);
  EXPECT_EQ(parsed->frame.src, f.src);
  EXPECT_EQ(parsed->frame.vlan, f.vlan);
  // Short payloads come back padded; the original prefix must match.
  ASSERT_GE(parsed->frame.payload.size(), f.payload.size());
  EXPECT_TRUE(std::equal(f.payload.begin(), f.payload.end(), parsed->frame.payload.begin()));

  // Any single-bit corruption must break the FCS.
  auto corrupt = bytes;
  corrupt[rng.index(corrupt.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
  const auto reparsed = parse_frame(corrupt);
  if (reparsed.has_value()) {
    EXPECT_FALSE(reparsed->fcs_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FrameRoundTrip,
                         ::testing::Values(FrameCase{0, 1, true}, FrameCase{1, 2, false},
                                           FrameCase{45, 3, true}, FrameCase{46, 4, false},
                                           FrameCase{256, 5, true}, FrameCase{1000, 6, true},
                                           FrameCase{1500, 7, false},
                                           FrameCase{64, 8, true}));

TEST(TrafficClassTest, Names) {
  EXPECT_EQ(to_string(TrafficClass::kTimeSensitive), "TS");
  EXPECT_EQ(to_string(TrafficClass::kRateConstrained), "RC");
  EXPECT_EQ(to_string(TrafficClass::kBestEffort), "BE");
}

}  // namespace
}  // namespace tsn::net
