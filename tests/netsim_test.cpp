// Tests for the network assembly layer: NIC injection machinery, link
// wiring, provisioning, and small end-to-end deliveries.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "event/simulator.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "netsim/scenario.hpp"
#include "sched/itp.hpp"
#include "switch/tsn_switch.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn::netsim {
namespace {

using namespace tsn::literals;

traffic::FlowSpec ts_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
                          Duration period = 10_ms) {
  traffic::FlowSpec f;
  f.id = id;
  f.type = net::TrafficClass::kTimeSensitive;
  f.src_host = src;
  f.dst_host = dst;
  f.period = period;
  f.deadline = 8_ms;
  f.priority = traffic::kTsPriority;
  f.vid = static_cast<VlanId>(1 + id);
  return f;
}

// ------------------------------------------------------------------ NIC
TEST(TsnNicTest, PeriodicTsInjection) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  nic.add_flow(ts_flow(1, 0, 1, 1_ms));
  int sent = 0;
  nic.set_tx_callback([&sent](const net::Packet&) { ++sent; });
  nic.start_traffic(TimePoint(0), 2_us);
  (void)sim.run_until(TimePoint(0) + 10_ms);
  // 10 injections in 10 ms at 1 ms period (t = 2us, 1.002ms, ...).
  EXPECT_EQ(sent, 10);
  EXPECT_EQ(nic.injected_packets(), 10u);
  const auto& rec = an.flow(1);
  EXPECT_EQ(rec.injected, 10u);
}

TEST(TsnNicTest, StopTrafficHaltsInjection) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  nic.add_flow(ts_flow(1, 0, 1, 1_ms));
  nic.set_tx_callback([](const net::Packet&) {});
  nic.start_traffic(TimePoint(0), 2_us);
  (void)sim.run_until(TimePoint(0) + 3500_us);
  nic.stop_traffic();
  (void)sim.run_until(TimePoint(0) + 20_ms);
  EXPECT_EQ(nic.injected_packets(), 4u);  // t=2us, 1.002, 2.002, 3.002 ms
}

TEST(TsnNicTest, EgressSerializesBackToBack) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  // Two flows injecting at the same instant: the FIFO serializes them.
  nic.add_flow(ts_flow(1, 0, 1, 10_ms));
  nic.add_flow(ts_flow(2, 0, 1, 10_ms));
  std::vector<std::int64_t> tx_end;
  nic.set_tx_callback([&](const net::Packet&) { tx_end.push_back(sim.now().ns()); });
  nic.start_traffic(TimePoint(0), 0_us);
  (void)sim.run_until(TimePoint(0) + 1_ms);
  ASSERT_EQ(tx_end.size(), 2u);
  EXPECT_EQ(tx_end[1] - tx_end[0], 672);  // one 64 B wire time apart
}

TEST(TsnNicTest, RcFlowIsPacedAtRate) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  nic.add_flow(traffic::make_rc_flow(1, 0, 1, DataRate::megabits_per_sec(100), 1024));
  int sent = 0;
  nic.set_tx_callback([&sent](const net::Packet&) { ++sent; });
  nic.start_traffic(TimePoint(0), 0_us);
  (void)sim.run_until(TimePoint(0) + 10_ms);
  // 100 Mbps / (1044 B + overhead) wire bits ~= 11.7 kpps -> ~117 in 10 ms.
  EXPECT_NEAR(sent, 117, 3);
}

TEST(TsnNicTest, RcPacingDoesNotDriftOverLongHorizon) {
  // 64 B frames (672 wire bits) at 671 Mbps give an ideal gap of
  // 1001.49 ns. Truncating that to whole nanoseconds per frame would
  // overshoot the reserved rate by ~490 frames over one second; carrying
  // the fractional remainder keeps the achieved rate within one frame.
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  const std::int64_t bps = 671'000'000;
  nic.add_flow(traffic::make_rc_flow(1, 0, 1, DataRate(bps), 64));
  nic.set_tx_callback([](const net::Packet&) {});
  nic.start_traffic(TimePoint(0), 0_us);
  const std::int64_t horizon_ns = 1'000'000'000;
  (void)sim.run_until(TimePoint(0) + Duration(horizon_ns));
  const std::int64_t bits = net::wire_bits(64).bits();
  const auto expected =
      static_cast<double>(horizon_ns * bps / (bits * 1'000'000'000) + 1);
  EXPECT_NEAR(static_cast<double>(nic.injected_packets()), expected, 1.0);
}

TEST(TsnNicTest, RcFlowHonoursStartMargin) {
  // RC pacing begins at traffic_start + margin, same as the scheduled
  // class: the reservation only exists once the network is configured.
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  nic.add_flow(traffic::make_rc_flow(1, 0, 1, DataRate::megabits_per_sec(100), 1024));
  std::vector<std::int64_t> tx_end;
  nic.set_tx_callback([&](const net::Packet&) { tx_end.push_back(sim.now().ns()); });
  nic.start_traffic(TimePoint(0), 5_us);
  (void)sim.run_until(TimePoint(0) + 100_us);
  ASSERT_FALSE(tx_end.empty());
  // First frame starts serializing at the margin; at 1 Gbps the wire
  // time in ns equals the frame's wire bits.
  EXPECT_EQ(tx_end.front(), 5'000 + net::wire_bits(1024).bits());
}

TEST(TsnNicTest, FrerReplicationSendsPrimaryFirst) {
  // 802.1CB replicates at the talker: the primary member (original VID)
  // must hit the wire before the secondary copy, every occurrence.
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  const traffic::FlowSpec f = ts_flow(1, 0, 1, 1_ms);
  nic.add_replicated_flow(f, 2000);
  std::vector<std::pair<VlanId, std::uint64_t>> txs;
  nic.set_tx_callback(
      [&](const net::Packet& p) { txs.emplace_back(p.vlan.vid, p.meta.sequence); });
  nic.start_traffic(TimePoint(0), 0_us);
  (void)sim.run_until(TimePoint(0) + 2500_us);
  ASSERT_EQ(txs.size(), 6u);  // 3 occurrences x 2 members
  for (std::size_t k = 0; k < txs.size(); k += 2) {
    EXPECT_EQ(txs[k].first, f.vid);          // primary serializes first
    EXPECT_EQ(txs[k + 1].first, 2000);       // then the member copy
    EXPECT_EQ(txs[k].second, txs[k + 1].second);  // same 802.1CB sequence
  }
}

TEST(TsnNicTest, BeFlowApproximatesMeanRate) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 42);
  nic.add_flow(traffic::make_be_flow(1, 0, 1, DataRate::megabits_per_sec(300), 1024));
  std::int64_t bits = 0;
  nic.set_tx_callback([&bits](const net::Packet& p) { bits += p.wire_bits().bits(); });
  nic.start_traffic(TimePoint(0), 0_us);
  (void)sim.run_until(TimePoint(0) + 100_ms);
  EXPECT_NEAR(static_cast<double>(bits) / 0.1, 300e6, 30e6);
}

TEST(TsnNicTest, RejectsForeignFlows) {
  event::Simulator sim;
  analysis::Analyzer an;
  TsnNic nic(sim, 0, DataRate::gigabits_per_sec(1), an, 1);
  EXPECT_THROW(nic.add_flow(ts_flow(1, 3, 1)), Error);  // sourced elsewhere
}

// -------------------------------------------------------------- Network
TEST(NetworkTest, DeliversAcrossLinearTopology) {
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(2);
  NetworkOptions opts;
  opts.enable_gptp = false;
  opts.resource.unicast_table_size = 64;
  opts.resource.classification_table_size = 64;
  Network net(sim, lin.topology, opts);
  const std::vector<traffic::FlowSpec> flows = {
      ts_flow(1, lin.host_nodes[0], lin.host_nodes[1], 1_ms)};
  EXPECT_EQ(net.provision(flows), 0);
  net.start_network();
  net.start_traffic(TimePoint(0) + 100_us);
  (void)sim.run_until(TimePoint(0) + 20_ms);
  const auto ts = net.analyzer().summary(net::TrafficClass::kTimeSensitive);
  EXPECT_GT(ts.received, 10u);
  EXPECT_EQ(ts.lost(), 0u);
  EXPECT_EQ(net.total_switch_drops(), 0u);
}

TEST(NetworkTest, ProvisioningFailuresCountedWhenTablesTooSmall) {
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(2);
  NetworkOptions opts;
  opts.enable_gptp = false;
  opts.resource.classification_table_size = 2;  // far too small
  opts.resource.unicast_table_size = 2;
  Network net(sim, lin.topology, opts);
  std::vector<traffic::FlowSpec> flows;
  for (net::FlowId i = 0; i < 8; ++i) {
    flows.push_back(ts_flow(i, lin.host_nodes[0], lin.host_nodes[1]));
  }
  EXPECT_GT(net.provision(flows), 0);
}

TEST(NetworkTest, GptpTreeCoversAllDevices) {
  event::Simulator sim;
  const topo::BuiltTopology ring = topo::make_ring(4);
  NetworkOptions opts;
  opts.max_drift_ppm = 20.0;
  Network net(sim, ring.topology, opts);
  net.start_network();
  (void)sim.run_until(TimePoint(0) + 2_s);
  ASSERT_NE(net.gptp(), nullptr);
  // 4 switches + 4 hosts all disciplined under 50 ns.
  EXPECT_EQ(net.gptp()->node_count(), 8u);
  EXPECT_LT(net.max_sync_error().ns(), 50);
}

TEST(NetworkTest, AccessorsValidate) {
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(2);
  NetworkOptions opts;
  opts.enable_gptp = false;
  Network net(sim, lin.topology, opts);
  EXPECT_THROW((void)net.switch_at(lin.host_nodes[0]), Error);
  EXPECT_THROW((void)net.nic_at(lin.switch_nodes[0]), Error);
  (void)net.switch_at(lin.switch_nodes[0]);
  (void)net.nic_at(lin.host_nodes[0]);
}

// -------------------------------------------------------------- Scenario
TEST(ScenarioTest, SmallRingRunsCleanly) {
  ScenarioConfig cfg;
  cfg.built = topo::make_ring(3);
  cfg.options.seed = 5;
  traffic::TsWorkloadParams params;
  params.flow_count = 32;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[1],
                                     params);
  cfg.warmup = 100_ms;
  cfg.traffic_duration = 50_ms;
  const ScenarioResult r = run_scenario(std::move(cfg));
  EXPECT_EQ(r.provisioning_failures, 0u);
  EXPECT_GT(r.ts.received, 100u);
  EXPECT_EQ(r.ts.lost(), 0u);
  EXPECT_EQ(r.switch_drops, 0u);
  EXPECT_GT(r.ts.avg_latency_us(), 0.0);
  EXPECT_LT(r.max_sync_error.ns(), 50);
  EXPECT_GT(r.peak_ts_queue, 0);
  EXPECT_LE(r.peak_ts_queue, cfg.options.resource.queue_depth);
}

TEST(ScenarioTest, DeterministicForSeed) {
  auto run = [] {
    ScenarioConfig cfg;
    cfg.built = topo::make_ring(3);
    traffic::TsWorkloadParams params;
    params.flow_count = 8;
    cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[1],
                                       params);
    cfg.warmup = 50_ms;
    cfg.traffic_duration = 20_ms;
    const ScenarioResult r = run_scenario(std::move(cfg));
    return std::make_tuple(r.ts.received, r.ts.avg_latency_us(), r.ts.jitter_us());
  };
  EXPECT_EQ(run(), run());
}



// ----------------------------------------------------------------- trace
TEST(TraceRecorderTest, RingBufferSemantics) {
  TraceRecorder trace(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.record(TraceEntry{TimePoint(static_cast<std::int64_t>(i)), 0, 0, 1, 7, i, 64, false});
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.total_recorded(), 5u);
  EXPECT_EQ(trace.dropped_entries(), 2u);
  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().sequence, 2u);  // oldest surviving
  EXPECT_EQ(entries.back().sequence, 4u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorderTest, UnlimitedCapacityNeverWraps) {
  TraceRecorder trace(TraceRecorder::kUnlimited);
  // Well past the reservation prefix: the ring must grow, not overwrite.
  for (std::uint64_t i = 0; i < 70'000; ++i) {
    trace.record(TraceEntry{TimePoint(static_cast<std::int64_t>(i)), 0, 0, 1, 7, i, 64,
                            false});
  }
  EXPECT_EQ(trace.size(), 70'000u);
  EXPECT_EQ(trace.dropped_entries(), 0u);
  EXPECT_EQ(trace.entries().front().sequence, 0u);
  EXPECT_EQ(trace.entries().back().sequence, 69'999u);
}

TEST(TraceRecorderTest, DroppedEntriesAccountingAcrossWrapsAndClear) {
  TraceRecorder trace(4);
  // Below capacity: nothing dropped yet.
  for (std::uint64_t i = 0; i < 4; ++i) {
    trace.record(TraceEntry{TimePoint(static_cast<std::int64_t>(i)), 0, 0, 1, 7, i, 64, false});
  }
  EXPECT_EQ(trace.dropped_entries(), 0u);
  // Two full extra laps: every record past capacity evicts exactly one.
  for (std::uint64_t i = 4; i < 12; ++i) {
    trace.record(TraceEntry{TimePoint(static_cast<std::int64_t>(i)), 0, 0, 1, 7, i, 64, false});
    EXPECT_EQ(trace.total_recorded(), i + 1);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped_entries(), i + 1 - 4);
  }
  // clear() resets the accounting, not just the ring.
  trace.clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.dropped_entries(), 0u);
  trace.record(TraceEntry{TimePoint(0), 0, 0, 1, 7, 99, 64, false});
  EXPECT_EQ(trace.dropped_entries(), 0u);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceRecorderTest, PathOfOnWrappedRing) {
  // Two interleaved flows; capacity 4 holds only the last four records
  // once the ring wraps. path_of must return the surviving hops of the
  // requested (flow, sequence) only, oldest-first, and not resurrect
  // overwritten ones.
  TraceRecorder trace(4);
  // Flow 1 seq 0 crosses nodes 0->1->2->3 (three hops), interleaved with
  // flow 2 traffic that eventually evicts flow 1's oldest hops.
  trace.record(TraceEntry{TimePoint(10), 0, 0, 1, /*flow=*/1, /*seq=*/0, 64, false});
  trace.record(TraceEntry{TimePoint(11), 5, 0, 6, /*flow=*/2, /*seq=*/0, 64, false});
  trace.record(TraceEntry{TimePoint(12), 1, 0, 2, /*flow=*/1, /*seq=*/0, 64, false});
  trace.record(TraceEntry{TimePoint(13), 2, 0, 3, /*flow=*/1, /*seq=*/0, 64, false});
  ASSERT_EQ(trace.size(), 4u);  // full, not yet wrapped

  // Before the wrap, all three hops of (1, 0) are visible.
  EXPECT_EQ(trace.path_of(1, 0).size(), 3u);

  // Two more records evict the two oldest entries (flow 1's first hop
  // and flow 2's record).
  trace.record(TraceEntry{TimePoint(14), 6, 0, 7, /*flow=*/2, /*seq=*/1, 64, false});
  trace.record(TraceEntry{TimePoint(15), 7, 0, 8, /*flow=*/2, /*seq=*/2, 64, false});
  EXPECT_EQ(trace.dropped_entries(), 2u);

  const auto path = trace.path_of(1, 0);
  ASSERT_EQ(path.size(), 2u);  // the first hop was overwritten
  EXPECT_EQ(path[0].at, TimePoint(12));
  EXPECT_EQ(path[0].from, 1u);
  EXPECT_EQ(path[1].at, TimePoint(13));
  EXPECT_EQ(path[1].from, 2u);
  EXPECT_LT(path[0].at, path[1].at);  // oldest-first even across the wrap

  // The evicted flow-2 record is gone; its later packets are intact.
  EXPECT_TRUE(trace.path_of(2, 0).empty());
  EXPECT_EQ(trace.path_of(2, 1).size(), 1u);
  EXPECT_EQ(trace.path_of(2, 2).size(), 1u);
}

TEST(TraceRecorderTest, ReconstructsPacketPath) {
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(3);
  NetworkOptions opts;
  opts.enable_gptp = false;
  Network net(sim, lin.topology, opts);
  TraceRecorder trace;
  net.set_trace(&trace);

  const std::vector<traffic::FlowSpec> flows = {
      ts_flow(1, lin.host_nodes[0], lin.host_nodes[2], 10_ms)};
  ASSERT_EQ(net.provision(flows), 0);
  net.start_network();
  net.start_traffic(TimePoint(0) + 100_us);
  (void)sim.run_until(TimePoint(0) + 5_ms);

  // First packet: host h0 -> s0 -> s1 -> s2 -> h2, four link hops.
  const auto path = trace.path_of(1, 0);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0].from, lin.host_nodes[0]);
  EXPECT_EQ(path[1].from, lin.switch_nodes[0]);
  EXPECT_EQ(path[2].from, lin.switch_nodes[1]);
  EXPECT_EQ(path[3].from, lin.switch_nodes[2]);
  EXPECT_EQ(path[3].to, lin.host_nodes[2]);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i].at, path[i - 1].at);  // monotone along the path
  }

  const std::string dump = trace.render(lin.topology, 8);
  EXPECT_NE(dump.find("s0"), std::string::npos);
  EXPECT_NE(dump.find("flow 1"), std::string::npos);
}

TEST(TraceRecorderTest, MarksLinkDownTransmissions) {
  event::Simulator sim;
  const topo::BuiltTopology lin = topo::make_linear(2);
  NetworkOptions opts;
  opts.enable_gptp = false;
  Network net(sim, lin.topology, opts);
  TraceRecorder trace;
  net.set_trace(&trace);
  const std::vector<traffic::FlowSpec> flows = {
      ts_flow(1, lin.host_nodes[0], lin.host_nodes[1], 1_ms)};
  ASSERT_EQ(net.provision(flows), 0);
  net.start_network();
  // Kill the inter-switch link before traffic starts.
  const auto hops = *lin.topology.route(lin.host_nodes[0], lin.host_nodes[1]);
  net.set_link_state(hops[1].link, false);
  net.start_traffic(TimePoint(0) + 100_us);
  (void)sim.run_until(TimePoint(0) + 3_ms);
  bool saw_down = false;
  for (const TraceEntry& e : trace.entries()) saw_down |= e.link_down;
  EXPECT_TRUE(saw_down);
  EXPECT_GT(net.link_drops(), 0u);
}

TEST(TraceRecorderTest, RenderNotesTruncationByLimit) {
  const topo::BuiltTopology ring = topo::make_ring(3);
  TraceRecorder trace(16);
  for (std::uint64_t i = 0; i < 6; ++i) {
    trace.record(TraceEntry{TimePoint(static_cast<std::int64_t>(i * 1000)), 0, 0, 1, 7, i,
                            64, false});
  }
  // limit >= size: no truncation banner.
  EXPECT_EQ(trace.render(ring.topology, 6).find("(showing last"), std::string::npos);
  // limit < size: the partial dump announces itself up front.
  const std::string partial = trace.render(ring.topology, 2);
  EXPECT_EQ(partial.rfind("(showing last 2 of 6 entries)\n", 0), 0u);
  EXPECT_NE(partial.find("seq 4"), std::string::npos);
  EXPECT_NE(partial.find("seq 5"), std::string::npos);
  EXPECT_EQ(partial.find("seq 3"), std::string::npos);
}

TEST(TraceRecorderTest, CsvAndJsonExports) {
  TraceRecorder trace(2);
  trace.record(TraceEntry{TimePoint(1000), 0, 2, 1, 7, 5, 64, false});
  trace.record(TraceEntry{TimePoint(2000), 1, 0, 2, 7, 5, 64, true});
  trace.record(TraceEntry{TimePoint(3000), 2, 1, 3, 8, 0, 128, false});  // evicts seq 5's first hop

  const std::string csv = trace.to_csv();
  EXPECT_EQ(csv.rfind("# dropped_entries=1\n"
                      "at_ns,from,from_port,to,flow,sequence,frame_bytes,link_down\n",
                      0),
            0u);
  EXPECT_NE(csv.find("2000,1,0,2,7,5,64,1\n"), std::string::npos);  // oldest surviving first
  EXPECT_NE(csv.find("3000,2,1,3,8,0,128,0\n"), std::string::npos);
  EXPECT_EQ(csv.find("1000,"), std::string::npos);  // evicted entry is gone

  const std::string json = trace.to_json();
  EXPECT_EQ(json.rfind("{\"total_recorded\":3,\"dropped_entries\":1,\"entries\":[", 0), 0u);
  EXPECT_NE(json.find("{\"at_ns\":2000,\"from\":1,\"from_port\":0,\"to\":2,\"flow\":7,"
                      "\"sequence\":5,\"frame_bytes\":64,\"link_down\":true}"),
            std::string::npos);
  EXPECT_NE(json.find("\"link_down\":false"), std::string::npos);
}

// ------------------------------------------------------- observability hooks
/// End-to-end: one run fills the metrics registry, the packet trace, and
/// a Perfetto-loadable timeline with at least one complete per-flow hop
/// sequence — and all of it derives from sim time only, so identical
/// seeds export byte-identical artifacts.
TEST(ScenarioTest, ObservabilityExportsAreCompleteAndDeterministic) {
  struct Artifacts {
    std::string metrics;
    std::string timeline;
    std::string trace_json;
    std::uint64_t events = 0;
    std::int64_t sim_end_ns = 0;
  };
  const auto run = [] {
    ScenarioConfig cfg;
    cfg.built = topo::make_ring(3);
    cfg.options.seed = 5;
    traffic::TsWorkloadParams params;
    params.flow_count = 8;
    cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[1],
                                       params);
    cfg.warmup = 50_ms;
    cfg.traffic_duration = 20_ms;

    telemetry::MetricsRegistry registry;
    telemetry::TimelineBuilder timeline;
    TraceRecorder trace(4096);
    cfg.observe.metrics = &registry;
    cfg.observe.timeline = &timeline;
    cfg.observe.trace = &trace;
    const ScenarioResult r = run_scenario(std::move(cfg));

    Artifacts a;
    telemetry::RenderOptions sim_only;
    sim_only.include_wall = false;
    a.metrics = registry.to_prometheus(sim_only);
    a.timeline = timeline.to_json();
    a.trace_json = trace.to_json();
    a.events = r.events_executed;
    a.sim_end_ns = r.sim_end.ns();
    return a;
  };

  const Artifacts a = run();
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.sim_end_ns, 0);

  // Every layer reported into the registry.
  EXPECT_NE(a.metrics.find("tsn_switch_tx_packets"), std::string::npos);
  EXPECT_NE(a.metrics.find("tsn_switch_drops"), std::string::npos);
  EXPECT_NE(a.metrics.find("tsn_switch_queue_peak_occupancy"), std::string::npos);
  EXPECT_NE(a.metrics.find("tsn_timesync_offset_ns"), std::string::npos);
  EXPECT_NE(a.metrics.find("tsn_itp_slot_ns"), std::string::npos);
  EXPECT_NE(a.metrics.find("tsn_event_executed"), std::string::npos);
  EXPECT_EQ(a.metrics.find("wall_"), std::string::npos);  // sim-only render

  // The timeline carries at least one complete per-flow hop bar, plus the
  // gate grid and queue-depth lanes.
  EXPECT_NE(a.timeline.find("\"args\":{\"name\":\"flows\"}"), std::string::npos);
  EXPECT_NE(a.timeline.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.timeline.find("\"cat\":\"hop\""), std::string::npos);
  EXPECT_NE(a.timeline.find(" -> "), std::string::npos);
  EXPECT_NE(a.timeline.find("\"args\":{\"name\":\"queue 7 egress\"}"), std::string::npos);
  EXPECT_NE(a.timeline.find("\"cat\":\"gate\""), std::string::npos);
  EXPECT_NE(a.timeline.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(a.timeline.find("ts_queue_depth."), std::string::npos);

  EXPECT_NE(a.trace_json.find("\"entries\":[{"), std::string::npos);

  // Identical seed -> byte-identical sim-time artifacts.
  const Artifacts b = run();
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.events, b.events);
}

/// The per-flow hop bars must chain into a full source-to-destination
/// path for at least one packet (the issue's timeline acceptance bar).
TEST(ScenarioTest, TimelineContainsCompleteFlowPath) {
  ScenarioConfig cfg;
  cfg.built = topo::make_ring(3);
  cfg.options.seed = 5;
  traffic::TsWorkloadParams params;
  params.flow_count = 4;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[1],
                                     params);
  const topo::NodeId src = cfg.built.host_nodes[0];
  const topo::NodeId dst = cfg.built.host_nodes[1];
  const net::FlowId flow = cfg.flows.front().id;
  cfg.warmup = 50_ms;
  cfg.traffic_duration = 20_ms;
  TraceRecorder trace(65536);
  telemetry::TimelineBuilder timeline;
  cfg.observe.trace = &trace;
  cfg.observe.timeline = &timeline;
  (void)run_scenario(std::move(cfg));

  // Find a sequence of this flow whose recorded hops start at the source
  // host and end delivering into the destination host.
  bool complete = false;
  for (std::uint64_t seq = 0; seq < 4 && !complete; ++seq) {
    const std::vector<TraceEntry> path = trace.path_of(flow, seq);
    if (path.size() < 2) continue;
    bool connected = path.front().from == src && path.back().to == dst;
    for (std::size_t i = 1; i < path.size(); ++i) {
      connected &= path[i].from == path[i - 1].to;
      connected &= path[i].at >= path[i - 1].at;
    }
    complete = connected;
  }
  EXPECT_TRUE(complete);
  // And each of those hops is on the timeline as a complete event.
  EXPECT_NE(timeline.to_json().find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------- conservation property
// Every injected packet is either delivered or accounted for by a switch
// drop counter, and no buffer or queue slot leaks — across seeds and
// traffic mixes (failure injection: the tiny config forces drops).
struct ConservationCase {
  std::uint64_t seed;
  std::size_t ts_flows;
  std::int64_t bg_mbps;
  std::int64_t queue_depth;  // small depths force queue-full drops
};

class ConservationProperty : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationProperty, NothingLeaksNothingDuplicates) {
  const auto [seed, ts_flows, bg_mbps, queue_depth] = GetParam();
  event::Simulator sim;
  topo::BuiltTopology built = topo::make_ring(4);

  NetworkOptions opts;
  opts.seed = seed;
  opts.resource.queue_depth = queue_depth;
  opts.resource.buffers_per_port = queue_depth * 8;
  opts.resource.classification_table_size =
      static_cast<std::int64_t>(ts_flows) + 8;
  opts.resource.unicast_table_size = static_cast<std::int64_t>(ts_flows) + 8;
  opts.resource.meter_table_size = static_cast<std::int64_t>(ts_flows) + 8;

  traffic::TsWorkloadParams params;
  params.flow_count = ts_flows;
  params.seed = seed;
  std::vector<traffic::FlowSpec> flows =
      traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], params);
  if (bg_mbps > 0) {
    flows.push_back(traffic::make_rc_flow(9000, built.host_nodes[1],
                                          built.host_nodes[2],
                                          DataRate::megabits_per_sec(bg_mbps)));
    flows.push_back(traffic::make_be_flow(9001, built.host_nodes[3],
                                          built.host_nodes[2],
                                          DataRate::megabits_per_sec(bg_mbps)));
  }
  sched::ItpPlanner planner(built.topology, sw::SwitchRuntimeConfig{}.slot_size);
  planner.plan(flows).apply(flows);

  Network net(sim, built.topology, opts);
  ASSERT_EQ(net.provision(flows), 0);
  net.start_network();
  (void)sim.run_until(TimePoint(0) + 150_ms);
  net.start_traffic(TimePoint(0) + 151_ms);
  (void)sim.run_until(TimePoint(0) + 250_ms);
  net.stop_traffic();
  (void)sim.run_until(sim.now() + 30_ms);  // drain everything in flight

  std::uint64_t injected = 0;
  std::uint64_t received = 0;
  for (const topo::NodeId host : built.host_nodes) {
    injected += net.nic_at(host).injected_packets();
    received += net.nic_at(host).received_packets();
  }
  EXPECT_EQ(injected, received + net.total_switch_drops())
      << "seed " << seed << ": packets vanished or duplicated";

  // No buffer or queue residue after the drain.
  for (const topo::NodeId node : built.topology.switches()) {
    sw::TsnSwitch& device = net.switch_at(node);
    for (std::int64_t p = 0; p < device.port_count(); ++p) {
      auto& sched = device.scheduler(static_cast<tables::PortIndex>(p));
      EXPECT_EQ(sched.pool().in_use(), 0) << device.name() << " port " << p;
      for (std::size_t q = 0; q < sched.queue_count(); ++q) {
        EXPECT_TRUE(sched.queue(static_cast<tables::QueueId>(q)).empty())
            << device.name() << " port " << p << " queue " << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationProperty,
    ::testing::Values(ConservationCase{1, 64, 0, 12}, ConservationCase{2, 256, 200, 12},
                      ConservationCase{3, 256, 0, 2},   // forced queue-full drops
                      ConservationCase{4, 64, 400, 12}, ConservationCase{5, 512, 100, 12},
                      ConservationCase{6, 512, 0, 1}));

}  // namespace
}  // namespace tsn::netsim
