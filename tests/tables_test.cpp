// Tests for the table substrates: exact-match tables, classification,
// token-bucket meters, GCLs, and CBS tables.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "tables/cbs_table.hpp"
#include "tables/classification_table.hpp"
#include "tables/exact_match_table.hpp"
#include "tables/gcl.hpp"
#include "tables/switch_table.hpp"
#include "tables/token_bucket.hpp"

namespace tsn::tables {
namespace {

using namespace tsn::literals;

// ----------------------------------------------------------- exact match
TEST(ExactMatchTableTest, InsertLookupErase) {
  ExactMatchTable<int, int> t(4);
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_TRUE(t.insert(2, 20));
  EXPECT_EQ(t.lookup(1), 10);
  EXPECT_EQ(t.lookup(3), std::nullopt);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.lookup(1), std::nullopt);
}

TEST(ExactMatchTableTest, CapacityIsHard) {
  ExactMatchTable<int, int> t(2);
  EXPECT_TRUE(t.insert(1, 1));
  EXPECT_TRUE(t.insert(2, 2));
  EXPECT_FALSE(t.insert(3, 3));  // full: the COTS partitioning failure mode
  EXPECT_TRUE(t.full());
  // Updating an existing key is always allowed.
  EXPECT_TRUE(t.insert(2, 22));
  EXPECT_EQ(t.lookup(2), 22);
}

TEST(ExactMatchTableTest, ZeroCapacityRejected) {
  EXPECT_THROW((ExactMatchTable<int, int>(0)), Error);
}

// ---------------------------------------------------------- switch table
TEST(SwitchTableTest, UnicastKeyedByMacAndVid) {
  UnicastTable t(8);
  const MacAddress mac = MacAddress::from_u64(0x020000000001ULL);
  EXPECT_TRUE(t.insert({mac, 10}, PortIndex{1}));
  EXPECT_TRUE(t.insert({mac, 20}, PortIndex{2}));  // same MAC, other VLAN
  EXPECT_EQ(t.lookup({mac, 10}), PortIndex{1});
  EXPECT_EQ(t.lookup({mac, 20}), PortIndex{2});
  EXPECT_EQ(t.lookup({mac, 30}), std::nullopt);
}

TEST(SwitchTableTest, PortBitmapExpansion) {
  EXPECT_EQ(ports_from_bitmap(0b1011), (std::vector<PortIndex>{0, 1, 3}));
  EXPECT_TRUE(ports_from_bitmap(0).empty());
}

// -------------------------------------------------------- classification
TEST(ClassificationTableTest, MapsTupleToMeterAndQueue) {
  ClassificationTable t(16);
  const ClassificationKey key{MacAddress::from_u64(1), MacAddress::from_u64(2), 100, 7};
  EXPECT_TRUE(t.insert(key, {kNoMeter, 7}));
  const auto hit = t.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->queue, 7);
  EXPECT_EQ(hit->meter, kNoMeter);

  // Any field difference misses.
  ClassificationKey other = key;
  other.pri = 6;
  EXPECT_EQ(t.lookup(other), std::nullopt);
  other = key;
  other.vid = 101;
  EXPECT_EQ(t.lookup(other), std::nullopt);
}

TEST(ClassificationTableTest, FromPacketExtractsTupleFields) {
  net::Packet p;
  p.src = MacAddress::from_u64(11);
  p.dst = MacAddress::from_u64(22);
  p.vlan = net::VlanTag{5, false, 333};
  const ClassificationKey key = ClassificationKey::from_packet(p);
  EXPECT_EQ(key.src, p.src);
  EXPECT_EQ(key.dst, p.dst);
  EXPECT_EQ(key.vid, 333);
  EXPECT_EQ(key.pri, 5);
}

// ---------------------------------------------------------- token bucket
TEST(TokenBucketTest, AllowsBurstThenPolices) {
  // 8 Mbps, burst 2000 B.
  TokenBucket tb(DataRate::megabits_per_sec(8), 2000);
  EXPECT_TRUE(tb.offer(TimePoint(0), 1000));
  EXPECT_TRUE(tb.offer(TimePoint(0), 1000));
  EXPECT_FALSE(tb.offer(TimePoint(0), 1000));  // bucket empty
  // 8 Mbps = 1 B/us: after 1000 us the bucket holds 1000 B again.
  EXPECT_TRUE(tb.offer(TimePoint(0) + 1000_us, 1000));
  EXPECT_FALSE(tb.offer(TimePoint(0) + 1000_us, 1));
}

TEST(TokenBucketTest, LongRunThroughputMatchesRate) {
  TokenBucket tb(DataRate::megabits_per_sec(100), 1500);
  std::int64_t sent_bytes = 0;
  // Offer a 1000 B packet every 10 us for 100 ms -> offered 800 Mbps.
  for (std::int64_t t = 0; t < 100'000'000; t += 10'000) {
    if (tb.offer(TimePoint(t), 1000)) sent_bytes += 1000;
  }
  const double rate_bps = static_cast<double>(sent_bytes) * 8 / 0.1;
  EXPECT_NEAR(rate_bps, 100e6, 2e6);  // policed to ~100 Mbps
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket tb(DataRate::gigabits_per_sec(1), 3000);
  EXPECT_EQ(tb.tokens_at(TimePoint(0) + 10_ms), 3000);  // long idle: capped
}

TEST(TokenBucketTest, RejectsBadConfig) {
  EXPECT_THROW(TokenBucket(DataRate(0), 100), Error);
  EXPECT_THROW(TokenBucket(DataRate::megabits_per_sec(1), 0), Error);
}

TEST(MeterTableTest, InstallUntilFull) {
  MeterTable mt(2);
  EXPECT_NE(mt.install(DataRate::megabits_per_sec(10), 1000), kNoMeter);
  EXPECT_NE(mt.install(DataRate::megabits_per_sec(10), 1000), kNoMeter);
  EXPECT_EQ(mt.install(DataRate::megabits_per_sec(10), 1000), kNoMeter);
}

TEST(MeterTableTest, NoMeterIdAlwaysPasses) {
  MeterTable mt(2);
  EXPECT_TRUE(mt.offer(kNoMeter, TimePoint(0), 1'000'000));
}

TEST(MeterTableTest, MeteredFlowIsPoliced) {
  MeterTable mt(2);
  const MeterId id = mt.install(DataRate::megabits_per_sec(8), 1000);
  EXPECT_TRUE(mt.offer(id, TimePoint(0), 1000));
  EXPECT_FALSE(mt.offer(id, TimePoint(0), 1000));
}


// Property sweep: long-run token-bucket throughput converges to the
// configured rate across rates and offered loads.
struct BucketCase {
  std::int64_t rate_mbps;
  std::int64_t packet_bytes;
  std::int64_t offer_every_ns;
};

class TokenBucketProperty : public ::testing::TestWithParam<BucketCase> {};

TEST_P(TokenBucketProperty, LongRunRateConverges) {
  const auto [mbps, bytes, gap_ns] = GetParam();
  TokenBucket tb(DataRate::megabits_per_sec(mbps), 2 * bytes);
  std::int64_t sent_bits = 0;
  constexpr std::int64_t kRun = 200'000'000;  // 200 ms
  for (std::int64_t t = 0; t < kRun; t += gap_ns) {
    if (tb.offer(TimePoint(t), bytes)) sent_bits += bytes * 8;
  }
  const double offered = static_cast<double>(bytes * 8) / static_cast<double>(gap_ns) * 1e9;
  const double limit = static_cast<double>(mbps) * 1e6;
  const double achieved = static_cast<double>(sent_bits) / 0.2;
  // Policed at min(offered, rate), within 5%.
  EXPECT_NEAR(achieved, std::min(offered, limit), std::min(offered, limit) * 0.05)
      << mbps << " Mbps, " << bytes << " B, gap " << gap_ns << " ns";
}

INSTANTIATE_TEST_SUITE_P(Sweep, TokenBucketProperty,
                         ::testing::Values(BucketCase{10, 1000, 10'000},
                                           BucketCase{100, 1000, 10'000},
                                           BucketCase{100, 64, 5'000},
                                           BucketCase{500, 1500, 10'000},
                                           BucketCase{900, 1500, 20'000},
                                           BucketCase{50, 512, 100'000}));

// -------------------------------------------------------------------- GCL
TEST(GclTest, CycleAndLookup) {
  GateControlList gcl(4);
  ASSERT_TRUE(gcl.add_entry({0b0000'0001, 100_us}));
  ASSERT_TRUE(gcl.add_entry({0b0000'0010, 50_us}));
  EXPECT_EQ(gcl.cycle_time(), 150_us);
  EXPECT_EQ(gcl.gates_at(0_us), 0b0000'0001);
  EXPECT_EQ(gcl.gates_at(99_us), 0b0000'0001);
  EXPECT_EQ(gcl.gates_at(100_us), 0b0000'0010);
  EXPECT_EQ(gcl.gates_at(150_us), 0b0000'0001);  // wraps
  EXPECT_EQ(gcl.gates_at(-10_us), 0b0000'0010);  // negative offsets wrap too
}

TEST(GclTest, PositionReportsRemaining) {
  GateControlList gcl(2);
  ASSERT_TRUE(gcl.add_entry({0x01, 65_us}));
  ASSERT_TRUE(gcl.add_entry({0x02, 65_us}));
  const auto pos = gcl.position_at(70_us);
  EXPECT_EQ(pos.index, 1u);
  EXPECT_EQ(pos.remaining, 60_us);
}

TEST(GclTest, CapacityEnforced) {
  GateControlList gcl(1);
  EXPECT_TRUE(gcl.add_entry({0x01, 10_us}));
  EXPECT_FALSE(gcl.add_entry({0x02, 10_us}));
  EXPECT_THROW(GateControlList(0), Error);
  GateControlList g2(2);
  EXPECT_THROW((void)g2.add_entry({0x01, 0_us}), Error);
}

TEST(GclTest, EmptyProgramLeavesGatesOpen) {
  GateControlList gcl(2);
  EXPECT_EQ(gcl.gates_at(12_us), kAllGatesOpen);
}

TEST(CqfGclTest, TwoEntryPingPong) {
  const CqfGclPair pair = make_cqf_gcl(65_us, 7, 6);
  EXPECT_EQ(pair.ingress.size(), 2u);
  EXPECT_EQ(pair.egress.size(), 2u);
  EXPECT_EQ(pair.ingress.cycle_time(), 130_us);

  // Even slot: queue 7 fills (in-gate open), queue 6 drains (out-gate).
  const GateBitmap in_even = pair.ingress.gates_at(0_us);
  const GateBitmap out_even = pair.egress.gates_at(0_us);
  EXPECT_TRUE(in_even & (1 << 7));
  EXPECT_FALSE(in_even & (1 << 6));
  EXPECT_TRUE(out_even & (1 << 6));
  EXPECT_FALSE(out_even & (1 << 7));

  // Odd slot: swapped.
  const GateBitmap in_odd = pair.ingress.gates_at(65_us);
  EXPECT_TRUE(in_odd & (1 << 6));
  EXPECT_FALSE(in_odd & (1 << 7));

  // Non-CQF queues stay open in both phases and both directions.
  for (int q = 0; q < 6; ++q) {
    EXPECT_TRUE(in_even & (1 << q));
    EXPECT_TRUE(out_even & (1 << q));
    EXPECT_TRUE(in_odd & (1 << q));
  }
}

TEST(CqfGclTest, RejectsBadArguments) {
  EXPECT_THROW((void)make_cqf_gcl(0_us, 7, 6), Error);
  EXPECT_THROW((void)make_cqf_gcl(65_us, 7, 7), Error);
  EXPECT_THROW((void)make_cqf_gcl(65_us, 8, 6), Error);
  EXPECT_THROW((void)make_cqf_gcl(65_us, 7, 6, kAllGatesOpen, 1), Error);  // table too small
}

// -------------------------------------------------------------------- CBS
TEST(CbsConfigTest, ReservationDerivesSendSlope) {
  const CbsConfig c = CbsConfig::for_reservation(DataRate::megabits_per_sec(300),
                                                 DataRate::gigabits_per_sec(1));
  EXPECT_EQ(c.idle_slope.bps(), 300'000'000);
  EXPECT_EQ(c.send_slope.bps(), -700'000'000);
  EXPECT_THROW((void)CbsConfig::for_reservation(DataRate(0), DataRate::gigabits_per_sec(1)),
               Error);
  EXPECT_THROW((void)CbsConfig::for_reservation(DataRate::gigabits_per_sec(2),
                                                DataRate::gigabits_per_sec(1)),
               Error);
}

TEST(CbsMapTableTest, BindAndRebind) {
  CbsMapTable map(2);
  EXPECT_TRUE(map.bind(5, 0));
  EXPECT_TRUE(map.bind(4, 1));
  EXPECT_FALSE(map.bind(3, 2));  // full
  EXPECT_TRUE(map.bind(5, 1));   // rebinding an existing queue is free
  EXPECT_EQ(map.shaper_for(5), 1);
  EXPECT_EQ(map.shaper_for(3), kNoCbs);
}

TEST(CbsTableTest, InstallUntilFull) {
  CbsTable t(1);
  const CbsConfig c = CbsConfig::for_reservation(DataRate::megabits_per_sec(100),
                                                 DataRate::gigabits_per_sec(1));
  const CbsIndex i = t.install(c);
  EXPECT_NE(i, kNoCbs);
  EXPECT_EQ(t.install(c), kNoCbs);
  EXPECT_EQ(t.config(i).idle_slope.bps(), 100'000'000);
  EXPECT_THROW((void)t.config(5), Error);
}

}  // namespace
}  // namespace tsn::tables
