// Tests for flow specifications and the IEC 60802-guided workload
// builders.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "topo/builders.hpp"
#include "traffic/flow.hpp"
#include "traffic/workload.hpp"

namespace tsn::traffic {
namespace {

TEST(FlowSpecTest, ValidationRules) {
  FlowSpec f;
  f.src_host = 0;
  f.dst_host = 1;
  f.type = net::TrafficClass::kTimeSensitive;
  f.period = milliseconds(10);
  f.deadline = milliseconds(2);
  f.validate();  // ok

  FlowSpec no_period = f;
  no_period.period = Duration(0);
  EXPECT_THROW(no_period.validate(), Error);

  FlowSpec same_ends = f;
  same_ends.dst_host = 0;
  EXPECT_THROW(same_ends.validate(), Error);

  FlowSpec be;
  be.src_host = 0;
  be.dst_host = 1;
  be.type = net::TrafficClass::kBestEffort;
  EXPECT_THROW(be.validate(), Error);  // BE needs a rate
  be.rate = DataRate::megabits_per_sec(100);
  be.validate();

  FlowSpec bad_frame = f;
  bad_frame.frame_bytes = 40;
  EXPECT_THROW(bad_frame.validate(), Error);
}

TEST(HostMacTest, DistinctAndUnicast) {
  std::set<std::uint64_t> seen;
  for (topo::NodeId n = 0; n < 64; ++n) {
    const MacAddress mac = host_mac(n);
    EXPECT_FALSE(mac.is_multicast());
    EXPECT_TRUE(seen.insert(mac.to_u64()).second);
  }
}

TEST(FlowPacketTest, HeadersReflectSpec) {
  FlowSpec f;
  f.id = 9;
  f.type = net::TrafficClass::kTimeSensitive;
  f.src_host = 3;
  f.dst_host = 5;
  f.frame_bytes = 256;
  f.period = milliseconds(10);
  f.deadline = milliseconds(4);
  f.priority = kTsPriority;
  f.vid = 77;
  const net::Packet p = make_flow_packet(f);
  EXPECT_EQ(p.src, host_mac(3));
  EXPECT_EQ(p.dst, host_mac(5));
  EXPECT_EQ(p.vlan.pcp, kTsPriority);
  EXPECT_EQ(p.vlan.vid, 77);
  EXPECT_EQ(p.frame_bytes(), 256);
}

TEST(FlowPacketTest, MetaStamping) {
  FlowSpec f;
  f.id = 4;
  f.type = net::TrafficClass::kTimeSensitive;
  f.deadline = milliseconds(2);
  const net::PacketMeta meta = f.meta_for(17, TimePoint(123));
  EXPECT_EQ(meta.flow_id, 4u);
  EXPECT_EQ(meta.sequence, 17u);
  EXPECT_EQ(meta.injected_at.ns(), 123);
  EXPECT_EQ(meta.deadline, milliseconds(2));
  EXPECT_EQ(meta.traffic_class, net::TrafficClass::kTimeSensitive);
}

TEST(WorkloadTest, TsFlowsMatchPaperParameters) {
  TsWorkloadParams params;  // defaults: 1024 flows, 64 B, 10 ms
  auto flows = make_ts_flows(0, 1, params);
  ASSERT_EQ(flows.size(), 1024u);
  std::set<Duration> deadlines;
  std::set<VlanId> vids;
  for (const FlowSpec& f : flows) {
    EXPECT_EQ(f.type, net::TrafficClass::kTimeSensitive);
    EXPECT_EQ(f.frame_bytes, 64);
    EXPECT_EQ(f.period, milliseconds(10));
    EXPECT_EQ(f.priority, kTsPriority);
    deadlines.insert(f.deadline);
    vids.insert(f.vid);
  }
  // Deadlines drawn from {1, 2, 4, 8} ms; all appear at this flow count.
  EXPECT_EQ(deadlines.size(), 4u);
  for (const Duration d : deadlines) {
    EXPECT_TRUE(d == milliseconds(1) || d == milliseconds(2) || d == milliseconds(4) ||
                d == milliseconds(8));
  }
  // Distinct VIDs -> per-flow table entries (worst case of guideline 1).
  EXPECT_EQ(vids.size(), 1024u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  TsWorkloadParams params;
  params.flow_count = 32;
  const auto a = make_ts_flows(0, 1, params);
  const auto b = make_ts_flows(0, 1, params);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].deadline, b[i].deadline);
  }
}

TEST(WorkloadTest, DeadlinesDrawFromTheNamedWorkloadStream) {
  // params.seed is the campaign's raw base seed; the generator must draw
  // through the "traffic.workload" stream, not the raw seed, so deadline
  // assignment stays decorrelated from every other consumer of the base
  // seed (NIC jitter, fault plans). This pins the exact derivation.
  TsWorkloadParams params;
  params.flow_count = 64;
  const auto flows = make_ts_flows(0, 1, params);
  Rng expect = make_stream(params.seed, "traffic.workload");
  for (const FlowSpec& f : flows) {
    EXPECT_EQ(f.deadline, params.deadline_choices[expect.index(params.deadline_choices.size())]);
  }
}

TEST(WorkloadTest, WorkloadStreamIsDecorrelatedFromTheRawSeed) {
  TsWorkloadParams params;
  params.flow_count = 64;
  const auto flows = make_ts_flows(0, 1, params);
  Rng raw(params.seed);
  std::size_t same = 0;
  for (const FlowSpec& f : flows) {
    if (f.deadline == params.deadline_choices[raw.index(params.deadline_choices.size())]) {
      ++same;
    }
  }
  // A raw-seeded engine must not reproduce the stream's draw sequence.
  EXPECT_LT(same, flows.size());
}

TEST(WorkloadTest, DenseIdsFromFirstId) {
  TsWorkloadParams params;
  params.flow_count = 4;
  const auto flows = make_ts_flows(0, 1, params, 100);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].id, 100u + i);
  }
}

TEST(WorkloadTest, BackgroundFlows) {
  const FlowSpec rc = make_rc_flow(1, 0, 1, DataRate::megabits_per_sec(200));
  EXPECT_EQ(rc.type, net::TrafficClass::kRateConstrained);
  EXPECT_EQ(rc.priority, kRcPriorityHigh);
  EXPECT_EQ(rc.frame_bytes, 1024);  // the paper's background frame size

  const FlowSpec be = make_be_flow(2, 0, 1, DataRate::megabits_per_sec(500));
  EXPECT_EQ(be.type, net::TrafficClass::kBestEffort);
  EXPECT_EQ(be.priority, kBePriority);
}

TEST(WorkloadTest, AggregateTsRate) {
  TsWorkloadParams params;
  params.flow_count = 1024;
  const auto flows = make_ts_flows(0, 1, params);
  // 1024 flows x 672 wire bits / 10 ms = 68.8 Mbps.
  EXPECT_NEAR(aggregate_ts_rate(flows).mbps(), 68.8, 0.5);
}


TEST(AggregationTest, CollapsesSharedPathsOntoOneVid) {
  TsWorkloadParams params;
  params.flow_count = 100;
  auto flows = make_ts_flows(0, 1, params);           // all share (0 -> 1, pri 7)
  auto more = make_ts_flows(0, 2, params, 1000);      // second path
  flows.insert(flows.end(), more.begin(), more.end());
  const std::size_t aggregates = aggregate_flows_by_path(flows);
  EXPECT_EQ(aggregates, 2u);
  std::set<VlanId> vids;
  for (const FlowSpec& f : flows) vids.insert(f.vid);
  EXPECT_EQ(vids.size(), 2u);
  // Same-path flows now share identical classification keys.
  EXPECT_EQ(flows[0].vid, flows[99].vid);
  EXPECT_NE(flows[0].vid, flows[100].vid);
}

TEST(AggregationTest, PriorityKeepsAggregatesApart) {
  std::vector<FlowSpec> flows = {
      make_rc_flow(1, 0, 1, DataRate::megabits_per_sec(10), 1024, kRcPriorityHigh),
      make_rc_flow(2, 0, 1, DataRate::megabits_per_sec(10), 1024, kRcPriorityMid),
      make_rc_flow(3, 0, 1, DataRate::megabits_per_sec(10), 1024, kRcPriorityHigh),
  };
  EXPECT_EQ(aggregate_flows_by_path(flows), 2u);
  EXPECT_EQ(flows[0].vid, flows[2].vid);
  EXPECT_NE(flows[0].vid, flows[1].vid);
}

TEST(AggregationTest, ValidatesVidSpace) {
  TsWorkloadParams params;
  params.flow_count = 2;
  auto flows = make_ts_flows(0, 1, params);
  EXPECT_THROW((void)aggregate_flows_by_path(flows, 0), Error);
  // 4094 is the last usable VID; a second aggregate must not exist.
  auto two_paths = make_ts_flows(0, 1, params);
  auto more = make_ts_flows(0, 2, params, 100);
  two_paths.insert(two_paths.end(), more.begin(), more.end());
  EXPECT_THROW((void)aggregate_flows_by_path(two_paths, 4094), Error);
}

}  // namespace
}  // namespace tsn::traffic
