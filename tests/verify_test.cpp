// Tests for tsn::verify — the diagnostics plumbing plus one
// broken/clean pair per rule class: every misconfiguration the verifier
// claims to catch is demonstrated on a concrete broken input, and the
// corrected twin verifies clean again (so rules neither miss nor
// over-fire).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "builder/presets.hpp"
#include "resource/bram.hpp"
#include "sched/itp.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"
#include "verify/diagnostic.hpp"
#include "verify/verifier.hpp"

namespace tsn::verify {
namespace {

// ----------------------------------------------------------- diagnostics
TEST(DiagnosticTest, TextAndJsonForms) {
  const Diagnostic d{"cqf.slot-capacity", Severity::kError, "link[3].slot[7]",
                     "committed 9000 B"};
  EXPECT_EQ(d.to_text(), "error: cqf.slot-capacity: link[3].slot[7]: committed 9000 B");
  EXPECT_EQ(d.to_json(),
            "{\"rule\":\"cqf.slot-capacity\",\"severity\":\"error\","
            "\"subject\":\"link[3].slot[7]\",\"message\":\"committed 9000 B\"}");
}

TEST(DiagnosticTest, JsonEscapesMessages) {
  const Diagnostic d{"r", Severity::kInfo, "", "say \"hi\"\nbye"};
  EXPECT_NE(d.to_json().find("say \\\"hi\\\"\\nbye"), std::string::npos);
}

TEST(ReportTest, CountsAndSeverityAccounting) {
  Report report;
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.max_severity(), Severity::kInfo);
  EXPECT_EQ(report.render_text(), "configuration verifies clean\n");

  report.add("a.info", Severity::kInfo, "x", "advice");
  EXPECT_TRUE(report.clean());  // info alone is still clean
  report.add("b.warn", Severity::kWarning, "y", "caution");
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.has_errors());
  report.add("c.err", Severity::kError, "z", "broken");
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.max_severity(), Severity::kError);
  EXPECT_EQ(report.count(Severity::kInfo), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_TRUE(report.has_rule("b.warn"));
  EXPECT_FALSE(report.has_rule("missing"));
  EXPECT_NE(report.render_text().find("1 error(s), 1 warning(s), 1 info(s)"),
            std::string::npos);
}

TEST(ReportTest, SortPutsErrorsFirstDeterministically) {
  Report report;
  report.add("z.rule", Severity::kInfo, "s", "m");
  report.add("b.rule", Severity::kError, "s2", "m");
  report.add("a.rule", Severity::kError, "s1", "m");
  report.add("a.rule", Severity::kWarning, "s0", "m");
  report.sort();
  const auto& d = report.diagnostics();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0].rule, "a.rule");
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[1].rule, "b.rule");
  EXPECT_EQ(d[2].severity, Severity::kWarning);
  EXPECT_EQ(d[3].severity, Severity::kInfo);
}

TEST(ReportTest, JsonShapeAndMaxSeverity) {
  Report report;
  EXPECT_NE(report.to_json().find("\"max_severity\":\"clean\""), std::string::npos);
  report.add("a.warn", Severity::kWarning, "s", "m");
  const std::string json = report.to_json();
  EXPECT_EQ(json.rfind("{\"diagnostics\":[", 0), 0u);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max_severity\":\"warning\""), std::string::npos);
}

TEST(ReportTest, MergeKeepsOrder) {
  Report a;
  a.add("first", Severity::kInfo, "", "m");
  Report b;
  b.add("second", Severity::kError, "", "m");
  a.merge(std::move(b));
  ASSERT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.diagnostics()[0].rule, "first");
  EXPECT_EQ(a.diagnostics()[1].rule, "second");
}

// ------------------------------------------------------------- rule pairs
//
// The fixture's baseline is deliberately boring: a 3-switch linear chain,
// 8 TS flows with slot-aligned 6.5 ms periods and roomy 4 ms deadlines on
// the default (paper-shaped) resource configuration. It must produce ZERO
// diagnostics, so each test can break exactly one thing and attribute the
// resulting rule unambiguously.
class VerifyRuleTest : public ::testing::Test {
 protected:
  VerifyRuleTest() : built_(topo::make_linear(3)) {
    input_.topology = &built_.topology;
    input_.flows = aligned_ts_flows(8);
  }

  [[nodiscard]] std::vector<traffic::FlowSpec> aligned_ts_flows(
      std::size_t count, net::FlowId first_id = 0) const {
    traffic::TsWorkloadParams p;
    p.flow_count = count;
    p.frame_bytes = 64;
    p.period = microseconds(6500);  // 100 x 65 us slots: no alignment advice
    p.deadline_choices = {milliseconds(4)};
    return traffic::make_ts_flows(built_.host_nodes.front(), built_.host_nodes.back(), p,
                                  first_id);
  }

  topo::BuiltTopology built_;
  VerifyInput input_;
};

TEST_F(VerifyRuleTest, BaselineHasNoDiagnosticsAtAll) {
  const Report report = run(input_);
  EXPECT_TRUE(report.empty()) << report.render_text();
}

// --- topology rules
TEST_F(VerifyRuleTest, EndpointMustBeAnExistingHost) {
  input_.flows[0].dst_host = built_.switch_nodes[1];  // a switch, not a host
  input_.flows[1].src_host = topo::NodeId{9999};      // no such node
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("topo.endpoint"));
  EXPECT_TRUE(report.has_errors());

  input_.flows = aligned_ts_flows(8);
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, UnroutableFlowIsAnError) {
  const topo::NodeId island = built_.topology.add_host("island");
  input_.flows[0].dst_host = island;  // host exists but nothing links it
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("topo.no-route"));
  EXPECT_TRUE(report.has_errors());

  input_.flows = aligned_ts_flows(8);
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, InvalidFlowSpecIsReportedNotThrown) {
  input_.flows[0].frame_bytes = 64 * 1024;  // beyond any Ethernet MTU
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("topo.flow-spec"));
  EXPECT_TRUE(report.has_errors());
}

TEST_F(VerifyRuleTest, ScheduledFlowsOnFreeRunningClocksAreUnsynced) {
  input_.enable_gptp = false;
  input_.free_run_drift = true;
  const Report broken = run(input_);
  EXPECT_TRUE(broken.has_rule("topo.unsynced"));
  EXPECT_TRUE(broken.has_errors());

  // Perfect-but-unsynchronized clocks are a simulation idealization:
  // advice, not an error.
  input_.free_run_drift = false;
  const Report idealized = run(input_);
  EXPECT_TRUE(idealized.has_rule("topo.ideal-clocks"));
  EXPECT_FALSE(idealized.has_errors());
  EXPECT_TRUE(idealized.clean());

  input_.enable_gptp = true;
  EXPECT_TRUE(run(input_).empty());
}

// --- CQF schedule rules
TEST_F(VerifyRuleTest, DeadlineBelowEquationOneBoundIsAnError) {
  // Eq. 1 says worst case (hops + 1) x slot = 4 x 65 us = 260 us, but the
  // exact pipeline bound for this aligned workload is ~196 us: a 200 us
  // deadline trips only the Eq. 1 *approximation*, which since the
  // bound.* rules landed is advice, not an error.
  for (traffic::FlowSpec& f : input_.flows) f.deadline = microseconds(200);
  const Report approx = run(input_);
  EXPECT_TRUE(approx.has_rule("cqf.deadline"));
  EXPECT_FALSE(approx.has_errors());
  EXPECT_TRUE(approx.clean());  // info only

  // A deadline below the exact bound is a real violation: the tighter
  // bound.latency-deadline rule errors (and Eq. 1 still advises).
  for (traffic::FlowSpec& f : input_.flows) f.deadline = microseconds(100);
  const Report exact = run(input_);
  EXPECT_TRUE(exact.has_rule("bound.latency-deadline"));
  EXPECT_TRUE(exact.has_rule("cqf.deadline"));
  EXPECT_TRUE(exact.has_errors());

  for (traffic::FlowSpec& f : input_.flows) f.deadline = microseconds(300);
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, MisalignedPeriodIsAdviceUnderCqf) {
  // 10 ms is not a multiple of 65 us — the paper's own evaluation point.
  for (traffic::FlowSpec& f : input_.flows) f.period = milliseconds(10);
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("cqf.period-alignment"));
  EXPECT_TRUE(report.clean());  // info only: the hyperperiod ring covers it
}

TEST_F(VerifyRuleTest, OverloadedSlotViolatesCapacity) {
  // Hand-build the worst plan: every flow of a 1518 B burst injects in
  // slot 0, so one slot must carry ~12 KB over a 65 us x 1 Gb/s = 8125 B
  // link budget.
  input_.flows = aligned_ts_flows(8);
  for (traffic::FlowSpec& f : input_.flows) f.frame_bytes = 1518;
  sched::ItpPlan plan;
  plan.slot = microseconds(65);
  plan.hyperperiod = microseconds(6500);
  plan.slots_per_hyperperiod = 100;
  plan.max_queue_load = 8;
  plan.wire_feasible = true;  // isolate slot capacity from wire feasibility
  for (const traffic::FlowSpec& f : input_.flows) plan.injection_slot[f.id] = 0;
  input_.plan = plan;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("cqf.slot-capacity"));
  EXPECT_TRUE(report.has_errors());

  // The planner's own spread plan for the same workload is feasible.
  input_.plan.reset();
  EXPECT_TRUE(run(input_).empty());
}

// --- ITP plan rules
TEST_F(VerifyRuleTest, PlanReferencingForeignFlowIsAnError) {
  sched::ItpPlan plan =
      sched::ItpPlanner(built_.topology, microseconds(65)).plan(input_.flows);
  plan.injection_slot[net::FlowId{999}] = 0;  // not a flow of this scenario
  input_.plan = plan;
  EXPECT_TRUE(run(input_).has_rule("itp.unknown-flow"));
}

TEST_F(VerifyRuleTest, InjectionSlotOutsidePeriodIsAnError) {
  sched::ItpPlan plan =
      sched::ItpPlanner(built_.topology, microseconds(65)).plan(input_.flows);
  plan.injection_slot[input_.flows[0].id] = 100;  // period holds slots [0, 100)
  input_.plan = plan;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("itp.slot-range"));
  EXPECT_TRUE(report.has_errors());

  input_.plan->injection_slot[input_.flows[0].id] = 99;  // last valid slot
  EXPECT_FALSE(run(input_).has_rule("itp.slot-range"));
}

TEST_F(VerifyRuleTest, WireInfeasiblePlanIsAnError) {
  sched::ItpPlan plan =
      sched::ItpPlanner(built_.topology, microseconds(65)).plan(input_.flows);
  plan.wire_feasible = false;
  input_.plan = plan;
  EXPECT_TRUE(run(input_).has_rule("itp.wire-infeasible"));
}

// --- gate-control-list rules
TEST_F(VerifyRuleTest, CqfNeedsTwoGateEntries) {
  input_.resource.gate_table_size = 1;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("gcl.capacity"));
  EXPECT_TRUE(report.has_errors());

  input_.resource.gate_table_size = 2;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, NonPositiveSlotCannotSynthesizeGates) {
  input_.runtime.slot_size = Duration(0);
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("gcl.zero-interval"));
  EXPECT_TRUE(report.has_errors());
}

TEST_F(VerifyRuleTest, QbvFlagsMisalignedPeriodsAsCycleMismatch) {
  input_.gate_mode = VerifyInput::GateMode::kQbv;
  for (traffic::FlowSpec& f : input_.flows) f.period = milliseconds(10);
  const Report report = run(input_);
  // Under Qbv the misalignment is a warning (windows cannot tile the
  // cycle), not the CQF-mode info.
  EXPECT_TRUE(report.has_rule("gcl.cycle-mismatch"));
  EXPECT_FALSE(report.has_rule("cqf.period-alignment"));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.has_errors());

  for (traffic::FlowSpec& f : input_.flows) f.period = microseconds(6500);
  EXPECT_FALSE(run(input_).has_rule("gcl.cycle-mismatch"));
}

TEST_F(VerifyRuleTest, UnprotectedSlotBoundaryIsAWarning) {
  input_.runtime.guard_band = false;
  input_.runtime.preemption = false;
  input_.flows.push_back(traffic::make_be_flow(500, built_.host_nodes[1],
                                               built_.host_nodes.back(),
                                               DataRate::megabits_per_sec(100)));
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("gcl.guard-band"));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.has_errors());

  // Either protection mechanism silences it.
  input_.runtime.guard_band = true;
  EXPECT_FALSE(run(input_).has_rule("gcl.guard-band"));
  input_.runtime.guard_band = false;
  input_.runtime.preemption = true;
  EXPECT_FALSE(run(input_).has_rule("gcl.guard-band"));
}

// --- resource rules
TEST_F(VerifyRuleTest, InvalidResourceConfigIsReportedNotThrown) {
  input_.resource.queues_per_port = 9;  // hardware range is 1..8
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.invalid"));
  EXPECT_TRUE(report.has_errors());
}

TEST_F(VerifyRuleTest, TableDemandAboveCapacityOverflows) {
  // 8 flows to one (dst, vid) each: 8 distinct classification tuples.
  input_.resource.classification_table_size = 4;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.table-overflow"));
  EXPECT_TRUE(report.has_errors());

  input_.resource.classification_table_size = 8;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, QueueDepthMustCoverItpPeakLoad) {
  // A naive plan concentrates all 32 flows in slot 0 of every period:
  // per-slot load 32 >> the provisioned depth of 12.
  input_.flows = aligned_ts_flows(32);
  input_.plan =
      sched::ItpPlanner(built_.topology, microseconds(65)).plan_naive(input_.flows);
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.queue-depth"));
  EXPECT_TRUE(report.has_errors());

  // The spread plan needs depth 1 and the same config verifies clean.
  input_.plan.reset();
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, BufferSmallerThanLargestFrameIsAnError) {
  input_.resource.buffer_bytes = 512;
  for (traffic::FlowSpec& f : input_.flows) f.frame_bytes = 1024;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.buffer-size"));
  EXPECT_TRUE(report.has_errors());

  input_.resource.buffer_bytes = 1024;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, BufferBudgetBelowGuidelineFiveIsAWarning) {
  input_.resource.buffers_per_port = 50;  // < 12 depth x 8 queues
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.buffer-budget"));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.has_errors());
}

TEST_F(VerifyRuleTest, BramBudgetCheckedOnlyWhenDeviceGiven) {
  // The COTS reference (10818 Kb) cannot fit a Zynq-7020 (4.9 Mb)...
  input_.resource = builder::bcm53154_reference();
  EXPECT_FALSE(run(input_).has_rule("resource.bram-overflow"));  // no device, no rule
  input_.device = resource::zynq7020();
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("resource.bram-overflow"));
  EXPECT_TRUE(report.has_errors());

  // ...which is exactly why the paper customizes: the trimmed switch fits.
  input_.resource = builder::paper_customized(2);
  EXPECT_FALSE(run(input_).has_rule("resource.bram-overflow"));
}

// --- template-composition rules
TEST_F(VerifyRuleTest, CqfQueuePairMustBeInstantiated) {
  input_.resource.queues_per_port = 4;  // CQF redirects into queues 7 and 6
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("template.cqf-queues"));
  EXPECT_TRUE(report.has_errors());

  input_.runtime.cqf_queue_a = 3;
  input_.runtime.cqf_queue_b = 2;
  input_.runtime.express_queues = 0b0000'1100;
  EXPECT_FALSE(run(input_).has_rule("template.cqf-queues"));
}

TEST_F(VerifyRuleTest, RcClassesBeyondCbsTableUnderprovision) {
  input_.flows.push_back(traffic::make_rc_flow(600, built_.host_nodes[0],
                                               built_.host_nodes.back(),
                                               DataRate::megabits_per_sec(10), 256,
                                               traffic::kRcPriorityHigh));
  input_.flows.push_back(traffic::make_rc_flow(601, built_.host_nodes[0],
                                               built_.host_nodes.back(),
                                               DataRate::megabits_per_sec(10), 256,
                                               traffic::kRcPriorityMid));
  input_.resource.cbs_table_size = 1;  // 2 RC classes in use
  input_.resource.cbs_map_size = 1;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("template.cbs-underprovision"));
  EXPECT_TRUE(report.has_errors());

  input_.resource.cbs_table_size = 2;
  input_.resource.cbs_map_size = 2;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, PreemptableCqfQueuesAreAWarning) {
  input_.runtime.preemption = true;
  input_.runtime.guard_band = false;  // avoid the redundant-guard info
  input_.runtime.express_queues = 0;  // nobody is express
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("template.express-queues"));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.has_errors());

  input_.runtime.express_queues = 0b1100'0000;  // the CQF pair again
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(VerifyRuleTest, RedundantSlotProtectionIsAdvice) {
  input_.runtime.guard_band = true;
  input_.runtime.preemption = true;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("template.redundant-guard"));
  EXPECT_TRUE(report.clean());  // info only
}

TEST_F(VerifyRuleTest, UnusedMulticastTableIsAdvice) {
  input_.resource.multicast_table_size = 64;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("template.unused-multicast"));
  EXPECT_TRUE(report.clean());  // info only
}

// --------------------------------------------------------------- frer rules
//
// Clean baseline on the bidirectional ring (disjoint paths exist); each
// test breaks exactly one FRER aspect and expects one rule.
class FrerRuleTest : public ::testing::Test {
 protected:
  FrerRuleTest() : built_(topo::make_ring_bidirectional(6)) {
    input_.topology = &built_.topology;
    traffic::TsWorkloadParams p;
    p.flow_count = 4;
    p.period = microseconds(6500);
    p.deadline_choices = {milliseconds(4)};
    input_.flows =
        traffic::make_ts_flows(built_.host_nodes[0], built_.host_nodes[2], p);
    for (const traffic::FlowSpec& flow : input_.flows) {
      VerifyInput::FrerStream stream;
      stream.flow = flow.id;
      stream.secondary_vid = static_cast<VlanId>(2000 + flow.id);
      input_.frer_streams.push_back(stream);
    }
  }

  topo::BuiltTopology built_;
  VerifyInput input_;
};

TEST_F(FrerRuleTest, BaselineOnBidirectionalRingIsClean) {
  const Report report = run(input_);
  EXPECT_TRUE(report.empty()) << report.render_text();
}

TEST_F(FrerRuleTest, FlagsUnknownDuplicateAndNonTsMemberFlows) {
  VerifyInput::FrerStream ghost;
  ghost.flow = 999;
  ghost.secondary_vid = 3000;
  input_.frer_streams.push_back(ghost);
  EXPECT_TRUE(run(input_).has_rule("frer.member-flow"));
  input_.frer_streams.pop_back();

  VerifyInput::FrerStream twin = input_.frer_streams[0];
  twin.secondary_vid = 3001;
  input_.frer_streams.push_back(twin);
  EXPECT_TRUE(run(input_).has_rule("frer.member-flow"));
  input_.frer_streams.pop_back();

  input_.flows.push_back(traffic::make_be_flow(800, built_.host_nodes[0],
                                               built_.host_nodes[2],
                                               DataRate::megabits_per_sec(10)));
  VerifyInput::FrerStream best_effort;
  best_effort.flow = 800;
  best_effort.secondary_vid = 3002;
  input_.frer_streams.push_back(best_effort);
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("frer.member-flow"));
  EXPECT_TRUE(report.has_errors());
}

TEST_F(FrerRuleTest, FlagsSecondaryVidMisconfigurations) {
  // Out of VLAN range.
  input_.frer_streams[0].secondary_vid = 0;
  EXPECT_TRUE(run(input_).has_rule("frer.config"));

  // Equal to the flow's own primary VID.
  input_.frer_streams[0].secondary_vid = input_.flows[0].vid;
  EXPECT_TRUE(run(input_).has_rule("frer.config"));

  // Collides with another flow's primary VID.
  input_.frer_streams[0].secondary_vid = input_.flows[1].vid;
  EXPECT_TRUE(run(input_).has_rule("frer.config"));

  // Shared between two streams.
  input_.frer_streams[0].secondary_vid = input_.frer_streams[1].secondary_vid;
  EXPECT_TRUE(run(input_).has_rule("frer.config"));

  input_.frer_streams[0].secondary_vid = 2000;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(FrerRuleTest, RequiresLinkDisjointSecondaryPath) {
  // A linear chain has exactly one path: replication is a false promise.
  const topo::BuiltTopology linear = topo::make_linear(3);
  input_.topology = &linear.topology;
  traffic::TsWorkloadParams p;
  p.flow_count = 4;
  p.period = microseconds(6500);
  p.deadline_choices = {milliseconds(4)};
  input_.flows =
      traffic::make_ts_flows(linear.host_nodes.front(), linear.host_nodes.back(), p);
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("frer.disjoint-path"));
  EXPECT_TRUE(report.has_errors());
}

TEST_F(FrerRuleTest, WarnsWhenHistoryWindowCannotCoverPathSkew) {
  // On the 6-ring the secondary member runs 3 hops longer than the
  // primary; a 1-deep window cannot absorb that skew.
  input_.frer_streams[0].history_length = 1;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("frer.elimination-window"));
  EXPECT_FALSE(report.has_errors());  // sizing advice, not an error

  input_.frer_streams[0].history_length = 64;
  EXPECT_TRUE(run(input_).empty());
}

TEST_F(FrerRuleTest, RejectsEmptyHistoryWindow) {
  input_.frer_streams[0].history_length = 0;
  const Report report = run(input_);
  EXPECT_TRUE(report.has_rule("frer.config"));
  EXPECT_TRUE(report.has_errors());
}

// ------------------------------------------------------------ entry points
TEST(VerifyConfigTest, AllPresetsVerifyClean) {
  EXPECT_TRUE(verify_config(builder::bcm53154_reference()).clean());
  for (const std::int64_t ports : {1, 2, 3}) {
    EXPECT_TRUE(verify_config(builder::paper_customized(ports)).clean()) << ports;
  }
  EXPECT_TRUE(verify_config(builder::table1_case1()).clean());
  EXPECT_TRUE(verify_config(builder::table1_case2()).clean());
}

TEST(VerifyConfigTest, ConfigOnlyStillRunsResourceAndTemplateRules) {
  sw::SwitchResourceConfig broken = builder::paper_customized(1);
  broken.gate_table_size = 1;
  const Report report = verify_config(broken);
  EXPECT_TRUE(report.has_rule("gcl.capacity"));
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifyScenarioTest, DerivedPlanMakesScheduleRulesRunWithoutExplicitPlan) {
  // No plan supplied: the verifier plans via ItpPlanner itself, so a
  // queue_depth cut below the achievable spread load is still caught.
  const topo::BuiltTopology ring = topo::make_ring(6);
  traffic::TsWorkloadParams p;
  p.flow_count = 512;
  p.period = milliseconds(10);
  p.deadline_choices = {milliseconds(8)};
  VerifyInput input;
  input.topology = &ring.topology;
  input.flows = traffic::make_ts_flows(ring.host_nodes[0], ring.host_nodes[3], p);
  input.resource.queue_depth = 2;  // spread plan needs ceil(512/153) = 4
  input.resource.buffers_per_port = 2 * input.resource.queues_per_port;
  const Report report = run(input);
  EXPECT_TRUE(report.has_rule("resource.queue-depth"));
}

TEST(VerifyScenarioTest, FrerConfigPopulatesRedundancyRules) {
  // The campaign fail-fast path: a use_frer scenario on a topology with
  // no redundant path must be rejected before any simulation runs.
  netsim::ScenarioConfig config;
  config.built = topo::make_linear(3);
  traffic::TsWorkloadParams p;
  p.flow_count = 4;
  p.period = microseconds(6500);
  p.deadline_choices = {milliseconds(4)};
  config.flows = traffic::make_ts_flows(config.built.host_nodes.front(),
                                        config.built.host_nodes.back(), p);
  config.use_frer = true;
  const Report rejected = verify_scenario(config);
  EXPECT_TRUE(rejected.has_rule("frer.disjoint-path"));
  EXPECT_TRUE(rejected.has_errors());

  // The same scenario on the bidirectional ring verifies clean.
  netsim::ScenarioConfig ring = config;
  ring.built = topo::make_ring_bidirectional(6);
  ring.flows = traffic::make_ts_flows(ring.built.host_nodes[0],
                                      ring.built.host_nodes[2], p);
  const Report accepted = verify_scenario(ring);
  EXPECT_FALSE(accepted.has_rule("frer.disjoint-path"))
      << accepted.render_text();
  EXPECT_FALSE(accepted.has_errors()) << accepted.render_text();
}

}  // namespace
}  // namespace tsn::verify
