// Tests for the BRAM model — including the exact reproduction of every
// per-row BRAM figure in the paper's Tables I and III, and property
// sweeps over the allocator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "resource/bram.hpp"
#include "resource/report.hpp"

namespace tsn::resource {
namespace {

double kb(const Allocation& a) { return a.cost.kilobits(); }

// ----------------------------------------------- paper calibration points
TEST(BramTableTest, SwitchTable16Kx72Is1152Kb) {
  EXPECT_DOUBLE_EQ(kb(allocate_table(16 * 1024, 72)), 1152.0);
}

TEST(BramTableTest, SwitchTable1024x72Is72Kb) {
  EXPECT_DOUBLE_EQ(kb(allocate_table(1024, 72)), 72.0);
}

TEST(BramTableTest, ClassificationTable1024x117Is126Kb) {
  const Allocation a = allocate_table(1024, 117);
  EXPECT_DOUBLE_EQ(kb(a), 126.0);
  // Seven 1Kx18 RAMB18s.
  EXPECT_EQ(a.ramb18, 7);
  EXPECT_EQ(a.ramb36, 0);
}

TEST(BramTableTest, MeterTable512x68Is36Kb) {
  EXPECT_DOUBLE_EQ(kb(allocate_table(512, 68)), 36.0);
}

TEST(BramTableTest, MeterTable1024x68Is72Kb) {
  EXPECT_DOUBLE_EQ(kb(allocate_table(1024, 68)), 72.0);
}

TEST(BramInstanceTest, TinyTablesCostOneRamb18) {
  // Gate table: 2 entries x 17 b. CBS map: 8 x 16 b. CBS: 8 x 56 b.
  for (const auto& [depth, width] : {std::pair{2, 17}, {8, 16}, {8, 56}, {16, 32}, {12, 32}}) {
    const Allocation a = allocate_instance(depth, width);
    EXPECT_EQ(a.ramb18, 1) << depth << "x" << width;
    EXPECT_DOUBLE_EQ(kb(a), 18.0) << depth << "x" << width;
  }
}

TEST(BramInstanceTest, LargeInstanceFallsBackToTiling) {
  // 2048 x 32 = 64 Kb does not fit one RAMB18.
  const Allocation a = allocate_instance(2048, 32);
  EXPECT_GT(a.ramb18_equivalent(), 1);
  EXPECT_GE(a.cost.bits(), 2048 * 32);
}

TEST(BramPoolTest, PacketBufferIs16Point875Kb) {
  // 2048 B = 128 words x 135 b = 17280 b = 16.875 Kb.
  const Allocation one = allocate_packet_buffers(1, 2048);
  EXPECT_DOUBLE_EQ(kb(one), 16.875);
}

TEST(BramPoolTest, PaperBufferPools) {
  EXPECT_DOUBLE_EQ(kb(allocate_packet_buffers(128 * 4, 2048)), 8640.0);  // commercial
  EXPECT_DOUBLE_EQ(kb(allocate_packet_buffers(96 * 3, 2048)), 4860.0);   // star
  EXPECT_DOUBLE_EQ(kb(allocate_packet_buffers(96 * 2, 2048)), 3240.0);   // linear
  EXPECT_DOUBLE_EQ(kb(allocate_packet_buffers(96 * 1, 2048)), 1620.0);   // ring
}

TEST(BramPoolTest, Table1CaseTotalsForQueuesAndBuffers) {
  // Case 1: 8 queues x 18 Kb + 128 buffers x 16.875 Kb = 2304 Kb.
  const double case1 = 8 * kb(allocate_instance(16, 32)) + kb(allocate_packet_buffers(128, 2048));
  EXPECT_DOUBLE_EQ(case1, 2304.0);
  // Case 2: 8 x 18 + 96 x 16.875 = 1764 Kb; saving 540 Kb.
  const double case2 = 8 * kb(allocate_instance(12, 32)) + kb(allocate_packet_buffers(96, 2048));
  EXPECT_DOUBLE_EQ(case2, 1764.0);
  EXPECT_DOUBLE_EQ(case1 - case2, 540.0);
}

// --------------------------------------------------------- general rules
TEST(BramShapeTest, LegalShapeCapacitiesAreConsistent) {
  for (const BramShape& s : legal_shapes()) {
    // x1/x2/x4 modes cannot use the parity bits, so data volume may be
    // slightly below the primitive capacity — never above it.
    EXPECT_LE(s.depth * s.width, s.capacity().bits()) << s.to_string();
    EXPECT_GE(s.depth * s.width * 9 / 8, s.capacity().bits()) << s.to_string();
  }
}

TEST(BramTableTest, RejectsNonPositive) {
  EXPECT_THROW((void)allocate_table(0, 72), Error);
  EXPECT_THROW((void)allocate_table(100, 0), Error);
  EXPECT_THROW((void)allocate_instance(0, 1), Error);
  EXPECT_THROW((void)allocate_raw_pool(1, 0), Error);
  EXPECT_THROW((void)allocate_packet_buffers(0, 2048), Error);
}

struct AllocCase {
  std::int64_t depth;
  std::int64_t width;
};

class AllocatorProperty : public ::testing::TestWithParam<AllocCase> {};

TEST_P(AllocatorProperty, CoversRequestedBitsAndIsShapeConsistent) {
  const auto [depth, width] = GetParam();
  const Allocation a = allocate_table(depth, width);
  // The tiling must cover the requested geometry.
  EXPECT_GE(a.tiles_wide * a.shape.width, width);
  EXPECT_GE(a.tiles_deep * a.shape.depth, depth);
  // Cost equals primitives x primitive capacity.
  const std::int64_t prims = a.ramb18 + a.ramb36;
  EXPECT_EQ(prims, a.tiles_wide * a.tiles_deep);
  EXPECT_EQ(a.cost.bits(), a.ramb18 * 18 * 1024 + a.ramb36 * 36 * 1024);
  // Never cheaper than the raw contents.
  EXPECT_GE(a.cost.bits(), depth * width);
  // Never worse than the dumbest single-shape tiling (1Kx18 RAMB18).
  const std::int64_t dumb = ((width + 17) / 18) * ((depth + 1023) / 1024) * 18 * 1024;
  EXPECT_LE(a.cost.bits(), dumb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorProperty,
    ::testing::Values(AllocCase{1, 1}, AllocCase{512, 36}, AllocCase{513, 36},
                      AllocCase{512, 37}, AllocCase{1024, 117}, AllocCase{16384, 72},
                      AllocCase{100, 100}, AllocCase{5000, 9}, AllocCase{32768, 1},
                      AllocCase{2048, 18}, AllocCase{4096, 9}, AllocCase{65536, 72},
                      AllocCase{3, 135}, AllocCase{7, 7}, AllocCase{1024, 72},
                      AllocCase{2000, 68}));

// ---------------------------------------------------------------- report
TEST(ResourceReportTest, TotalsAndReduction) {
  ResourceReport custom;
  custom.add({"Queues", "12, 8, 1", 32, allocate_instance(12, 32)});
  ResourceReport base;
  base.add({"Queues", "16, 8, 4", 32, allocate_instance(16, 32)});
  base.add({"Buffers", "128, 4", 2048 * 8, allocate_packet_buffers(128, 2048)});
  EXPECT_GT(base.total().bits(), custom.total().bits());
  const double red = custom.reduction_vs(base);
  EXPECT_GT(red, 0.0);
  EXPECT_LT(red, 1.0);
}

TEST(ResourceReportTest, RenderContainsRowsAndTotal) {
  ResourceReport r;
  r.add({"Switch Tbl", "1K, 0", 72, allocate_table(1024, 72)});
  const std::string out = r.render();
  EXPECT_NE(out.find("Switch Tbl"), std::string::npos);
  EXPECT_NE(out.find("72Kb"), std::string::npos);
  EXPECT_NE(out.find("Total"), std::string::npos);
}

TEST(DevicePartTest, Zynq7020Inventory) {
  const DevicePart part = zynq7020();
  EXPECT_EQ(part.ramb36_total, 140);
  EXPECT_EQ(part.ramb18_total(), 280);
  EXPECT_EQ(part.total_bram().kilobits(), 5040.0);  // 4.9 Mb
}

TEST(ResourceReportTest, UtilizationOnZynq) {
  ResourceReport r;
  r.add({"Buffers", "96, 1", 2048 * 8, allocate_packet_buffers(96, 2048)});
  const double util = r.utilization_on(zynq7020());
  EXPECT_NEAR(util, 1620.0 / 5040.0, 1e-9);
}

}  // namespace
}  // namespace tsn::resource
