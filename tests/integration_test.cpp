// System-level integration tests: full networks of synthesized switches
// carrying TS/RC/BE traffic. These check the paper's headline claims:
//   * CQF end-to-end latency obeys Eq. (1): (hop-1)*slot <= L <= (hop+1)*slot;
//   * TS flows see zero loss and unchanged latency under background load;
//   * the customized (smaller) resource configuration delivers the same
//     QoS as the commercial parameterization;
//   * ITP keeps the peak queue occupancy within the provisioned depth.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "bound/analyzer.hpp"
#include "bound/soundness.hpp"
#include "builder/presets.hpp"
#include "netsim/scenario.hpp"
#include "sched/cqf_analysis.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"
#include "verify/verifier.hpp"

namespace tsn {
namespace {

using namespace tsn::literals;
using netsim::ScenarioConfig;
using netsim::ScenarioResult;

ScenarioConfig ring_scenario(std::size_t ring_size, std::size_t dst_host,
                             std::size_t flow_count, std::int64_t frame_bytes = 64,
                             Duration slot = 65_us) {
  ScenarioConfig cfg;
  cfg.built = topo::make_ring(ring_size);
  cfg.options.resource = builder::paper_customized(1);
  cfg.options.runtime.slot_size = slot;
  cfg.options.seed = 11;
  traffic::TsWorkloadParams params;
  params.flow_count = flow_count;
  params.frame_bytes = frame_bytes;
  // Keep the classification/switch tables large enough for extra
  // background flows the individual tests add.
  cfg.options.resource.classification_table_size = static_cast<std::int64_t>(flow_count) + 16;
  cfg.options.resource.unicast_table_size = static_cast<std::int64_t>(flow_count) + 16;
  cfg.options.resource.meter_table_size = static_cast<std::int64_t>(flow_count) + 16;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[dst_host],
                                     params);
  cfg.warmup = 150_ms;
  cfg.traffic_duration = 100_ms;
  return cfg;
}

/// Runs the scenario and additionally asserts the soundness contract:
/// every observable the run produced stays within its static bound from
/// tsn::bound (the bound input is lifted before the config is consumed).
ScenarioResult run_sound(ScenarioConfig cfg) {
  const verify::VerifyInput vin = verify::verify_input_from(cfg);
  bound::BoundInput bin = verify::bound_input_for(vin);
  if (vin.plan.has_value()) bin.plan = &*vin.plan;
  const bound::BoundReport report = bound::analyze(bin);
  ScenarioResult r = netsim::run_scenario(std::move(cfg));
  bound::MeasuredObservables measured;
  measured.ts_latency_max_us = r.ts.latency_us.max();
  measured.peak_ts_queue = r.peak_ts_queue;
  measured.peak_buffer_in_use = r.peak_buffer_in_use;
  measured.faults_active = r.fault_actions > 0;
  for (const std::string& violation : bound::check_soundness(report, measured)) {
    ADD_FAILURE() << violation;
  }
  return r;
}

TEST(IntegrationTest, CqfBoundsHoldOnRing) {
  for (const std::size_t hops : {2u, 4u}) {
    ScenarioConfig cfg = ring_scenario(6, hops - 1, 64);
    const ScenarioResult r = run_sound(std::move(cfg));
    ASSERT_GT(r.ts.received, 500u);
    EXPECT_EQ(r.ts.lost(), 0u);
    const auto bounds = sched::cqf_bounds(static_cast<std::int64_t>(hops), 65_us);
    EXPECT_GE(r.ts.latency_us.min(), bounds.min.us() * 0.99) << hops << " hops";
    EXPECT_LE(r.ts.latency_us.max(), bounds.max.us() * 1.01) << hops << " hops";
    EXPECT_NEAR(r.ts.avg_latency_us(), static_cast<double>(hops) * 65.0, 40.0) << hops << " hops";
  }
}

TEST(IntegrationTest, ZeroLossAndDeadlinesAcrossPacketSizes) {
  for (const std::int64_t frame : {64LL, 512LL, 1500LL}) {
    ScenarioConfig cfg = ring_scenario(6, 2, 64, frame);
    const ScenarioResult r = run_sound(std::move(cfg));
    EXPECT_EQ(r.ts.lost(), 0u) << frame << " B frames";
    EXPECT_EQ(r.ts.deadline_misses, 0u) << frame << " B frames";
    EXPECT_EQ(r.switch_drops, 0u) << frame << " B frames";
  }
}

TEST(IntegrationTest, BackgroundTrafficDoesNotDisturbTs) {
  // Baseline: TS alone.
  ScenarioConfig clean = ring_scenario(6, 2, 128);
  const ScenarioResult base = netsim::run_scenario(std::move(clean));

  // Loaded: RC + BE background injected from a second host at the entry
  // switch, exiting at the same destination (shares every TSN link).
  ScenarioConfig loaded = ring_scenario(6, 2, 128);
  const topo::NodeId src_sw = loaded.built.switch_nodes[0];
  const topo::NodeId bg_host = loaded.built.topology.add_host("bg");
  loaded.built.topology.connect(src_sw, bg_host, Duration(50));
  loaded.flows.push_back(traffic::make_rc_flow(9000, bg_host,
                                               loaded.built.host_nodes[2],
                                               DataRate::megabits_per_sec(200)));
  loaded.flows.push_back(traffic::make_be_flow(9001, bg_host,
                                               loaded.built.host_nodes[2],
                                               DataRate::megabits_per_sec(200)));
  const ScenarioResult bg = run_sound(std::move(loaded));

  EXPECT_EQ(bg.ts.lost(), 0u);
  EXPECT_GT(bg.rc.received, 0u);
  EXPECT_GT(bg.be.received, 0u);
  // TS latency/jitter essentially unchanged (paper Fig. 7d / Fig. 2).
  EXPECT_NEAR(bg.ts.avg_latency_us(), base.ts.avg_latency_us(), 3.0);
  EXPECT_NEAR(bg.ts.jitter_us(), base.ts.jitter_us(), 3.0);
}

TEST(IntegrationTest, CustomizedMatchesCommercialQos) {
  // Same workload through the BCM53154-parameterized switch and the
  // customized ring switch: QoS must be equivalent (paper's central claim).
  auto run_with = [](sw::SwitchResourceConfig res) {
    ScenarioConfig cfg = ring_scenario(6, 2, 256);
    res.classification_table_size = cfg.options.resource.classification_table_size;
    res.unicast_table_size = cfg.options.resource.unicast_table_size;
    res.meter_table_size = cfg.options.resource.meter_table_size;
    cfg.options.resource = res;
    return netsim::run_scenario(std::move(cfg));
  };
  const ScenarioResult commercial = run_with(builder::bcm53154_reference());
  const ScenarioResult customized = run_with(builder::paper_customized(1));
  EXPECT_EQ(commercial.ts.lost(), 0u);
  EXPECT_EQ(customized.ts.lost(), 0u);
  EXPECT_NEAR(customized.ts.avg_latency_us(), commercial.ts.avg_latency_us(), 2.0);
  EXPECT_NEAR(customized.ts.jitter_us(), commercial.ts.jitter_us(), 2.0);
}

TEST(IntegrationTest, ItpKeepsQueuesWithinProvisionedDepth) {
  ScenarioConfig cfg = ring_scenario(6, 3, 512);
  const ScenarioResult r = run_sound(std::move(cfg));
  EXPECT_EQ(r.ts.lost(), 0u);
  EXPECT_LE(r.peak_ts_queue, 12);                      // provisioned depth
  EXPECT_GE(r.plan.max_queue_load, r.peak_ts_queue - 2);  // prediction quality
}

TEST(IntegrationTest, NaiveInjectionOverflowsQueues) {
  // The ablation behind the queue-depth parameter: without ITP all 512
  // flows of a period land in the same slot and the depth-12 queues drop.
  ScenarioConfig cfg = ring_scenario(6, 3, 512);
  cfg.use_itp = false;
  const ScenarioResult r = netsim::run_scenario(std::move(cfg));
  EXPECT_GT(r.ts.lost(), 0u);
  EXPECT_GT(r.queue_full_drops + r.buffer_drops, 0u);
  EXPECT_GE(r.peak_ts_queue, 12);
}

TEST(IntegrationTest, TopologiesDeliverSameQos) {
  // Paper §IV.C: "the transmission performance of different topologies is
  // the same". Two-switch paths through star, linear and ring.
  auto run_topology = [](topo::BuiltTopology built, std::size_t src, std::size_t dst,
                         std::int64_t ports) {
    ScenarioConfig cfg;
    cfg.built = std::move(built);
    cfg.options.resource = builder::paper_customized(ports);
    cfg.options.resource.classification_table_size = 80;
    cfg.options.resource.unicast_table_size = 80;
    cfg.options.seed = 3;
    traffic::TsWorkloadParams params;
    params.flow_count = 64;
    cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[src],
                                       cfg.built.host_nodes[dst], params);
    cfg.warmup = 150_ms;
    cfg.traffic_duration = 60_ms;
    return netsim::run_scenario(std::move(cfg));
  };
  // Three switch hops everywhere: leaf0 -> core -> leaf1 in the star,
  // s0 -> s1 -> s2 in linear and ring.
  const ScenarioResult star = run_topology(topo::make_star(3), 1, 2, 3);
  const ScenarioResult linear = run_topology(topo::make_linear(6), 0, 2, 2);
  const ScenarioResult ring = run_topology(topo::make_ring(6), 0, 2, 1);
  for (const ScenarioResult* r : {&star, &linear, &ring}) {
    EXPECT_EQ(r->ts.lost(), 0u);
    EXPECT_EQ(r->switch_drops, 0u);
  }
  EXPECT_NEAR(star.ts.avg_latency_us(), linear.ts.avg_latency_us(), 5.0);
  EXPECT_NEAR(linear.ts.avg_latency_us(), ring.ts.avg_latency_us(), 5.0);
}

TEST(IntegrationTest, SlotSizeScalesLatency) {
  const ScenarioResult small = netsim::run_scenario(ring_scenario(6, 2, 64, 64, 65_us));
  const ScenarioResult big = netsim::run_scenario(ring_scenario(6, 2, 64, 64, 130_us));
  EXPECT_EQ(small.ts.lost(), 0u);
  EXPECT_EQ(big.ts.lost(), 0u);
  // Average latency and jitter scale with the slot (paper Fig. 7c).
  EXPECT_NEAR(big.ts.avg_latency_us() / small.ts.avg_latency_us(), 2.0, 0.3);
  EXPECT_GT(big.ts.jitter_us(), small.ts.jitter_us());
}

TEST(IntegrationTest, SyncErrorStaysWithinPrototypeBound) {
  ScenarioConfig cfg = ring_scenario(6, 3, 64);
  cfg.options.max_drift_ppm = 50.0;
  const ScenarioResult r = netsim::run_scenario(std::move(cfg));
  EXPECT_LT(r.max_sync_error.ns(), 50);
  EXPECT_EQ(r.ts.lost(), 0u);
}


TEST(IntegrationTest, QbvProgramDeliversCqfGradeQos) {
  // The synthesized full-cycle 802.1Qbv program (guideline 2's general
  // case) must carry the same workload as CQF with zero loss — at the
  // cost of a much larger gate table.
  auto run_mode = [](ScenarioConfig::GateMode mode) {
    ScenarioConfig cfg;
    cfg.built = topo::make_ring(6);
    cfg.options.resource = builder::paper_customized(1);
    cfg.options.resource.classification_table_size = 300;
    cfg.options.resource.unicast_table_size = 300;
    cfg.options.resource.meter_table_size = 300;
    // Qbv needs slot | period: 62.5 us divides 10 ms (160 slots), and a
    // gate table large enough for the synthesized program.
    cfg.options.runtime.slot_size = Duration(62'500);
    cfg.options.resource.gate_table_size =
        mode == ScenarioConfig::GateMode::kQbv ? 160 : 2;
    cfg.gate_mode = mode;
    cfg.options.seed = 8;
    traffic::TsWorkloadParams params;
    params.flow_count = 64;  // sparse windows: the program stays slotted
    cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2],
                                       params);
    cfg.warmup = 150_ms;
    cfg.traffic_duration = 80_ms;
    return netsim::run_scenario(std::move(cfg));
  };
  const ScenarioResult cqf = run_mode(ScenarioConfig::GateMode::kCqf);
  const ScenarioResult qbv = run_mode(ScenarioConfig::GateMode::kQbv);

  EXPECT_EQ(cqf.ts.lost(), 0u);
  EXPECT_EQ(qbv.ts.lost(), 0u);
  EXPECT_EQ(qbv.switch_drops, 0u);
  EXPECT_EQ(cqf.qbv_gate_entries, 0);
  EXPECT_GT(qbv.qbv_gate_entries, 2);   // guideline 2: ~cycle/slot entries
  EXPECT_LE(qbv.qbv_gate_entries, 160);
  EXPECT_EQ(qbv.ts.deadline_misses, 0u);
  // Both modes respect the Eq. (1) UPPER bound. CQF's two-queue ping-pong
  // additionally enforces the lower bound; single-queue Qbv windows allow
  // early departure when an earlier window is open, so only the upper
  // bound is asserted for it.
  const auto bounds = sched::cqf_bounds(3, Duration(62'500));
  EXPECT_GE(cqf.ts.latency_us.min(), bounds.min.us() * 0.99);
  EXPECT_LE(cqf.ts.latency_us.max(), bounds.max.us() * 1.01);
  EXPECT_LE(qbv.ts.latency_us.max(), bounds.max.us() * 1.01);
}

}  // namespace
}  // namespace tsn
