// Tests for tsn::fault: plan expansion (purity, lowering, validation),
// the RecoveryTracker bookkeeping, named profiles, and end-to-end
// resilience scenarios on the bidirectional ring — FRER failover with
// zero loss, reboot/corruption drop accounting, grandmaster handoff,
// and the determinism contract (byte-identical schedules and traffic
// isolation from the fault RNG stream).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/profiles.hpp"
#include "fault/recovery.hpp"
#include "netsim/scenario.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn {
namespace {

using namespace tsn::literals;

// ------------------------------------------------------------ expansion
TEST(FaultPlanTest, LowersFlapIntoAlternatingPairs) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(4);
  fault::FaultPlan plan;
  fault::FaultEvent flap;
  flap.kind = fault::FaultKind::kLinkFlap;
  flap.link = fault::backbone_links(built.topology).front();
  flap.at = 10_ms;
  flap.down_for = 2_ms;
  flap.up_for = 3_ms;
  flap.flaps = 3;
  plan.scheduled.push_back(flap);

  const auto schedule = fault::expand(plan, built.topology, 7);
  ASSERT_EQ(schedule.size(), 6u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Duration expected = 10_ms +
                              Duration((2_ms + 3_ms).ns() * static_cast<std::int64_t>(i / 2)) +
                              ((i % 2 == 1) ? 2_ms : Duration::zero());
    EXPECT_EQ(schedule[i].at, expected) << "action " << i;
    EXPECT_EQ(schedule[i].kind, i % 2 == 0 ? fault::ActionKind::kLinkDown
                                           : fault::ActionKind::kLinkUp);
  }
}

TEST(FaultPlanTest, PermanentLinkDownEmitsNoRestore) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(4);
  fault::FaultPlan plan;
  fault::FaultEvent down;
  down.kind = fault::FaultKind::kLinkDown;
  down.link = 0;
  down.at = 5_ms;
  down.down_for = Duration::zero();  // never restored
  plan.scheduled.push_back(down);

  const auto schedule = fault::expand(plan, built.topology, 7);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].kind, fault::ActionKind::kLinkDown);
}

TEST(FaultPlanTest, LowersRebootGmLossAndCorruptionIntoPairs) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(4);
  fault::FaultPlan plan;
  fault::FaultEvent reboot;
  reboot.kind = fault::FaultKind::kSwitchReboot;
  reboot.node = built.switch_nodes[1];
  reboot.at = 1_ms;
  reboot.down_for = 4_ms;
  plan.scheduled.push_back(reboot);
  fault::FaultEvent gm;
  gm.kind = fault::FaultKind::kGrandmasterLoss;
  gm.at = 2_ms;
  gm.down_for = 6_ms;
  plan.scheduled.push_back(gm);
  fault::FaultEvent corrupt;
  corrupt.kind = fault::FaultKind::kLinkCorruption;
  corrupt.link = 0;
  corrupt.at = 3_ms;
  corrupt.down_for = 8_ms;
  corrupt.bit_error_rate = 1e-5;
  plan.scheduled.push_back(corrupt);

  const auto schedule = fault::expand(plan, built.topology, 7);
  ASSERT_EQ(schedule.size(), 6u);
  // Time-sorted: starts at 1,2,3 ms then stops at 5,8,11 ms.
  EXPECT_EQ(schedule[0].kind, fault::ActionKind::kSwitchDown);
  EXPECT_EQ(schedule[1].kind, fault::ActionKind::kGmLoss);
  EXPECT_EQ(schedule[2].kind, fault::ActionKind::kCorruptStart);
  EXPECT_DOUBLE_EQ(schedule[2].bit_error_rate, 1e-5);
  EXPECT_EQ(schedule[3].kind, fault::ActionKind::kSwitchUp);
  EXPECT_EQ(schedule[3].at, 5_ms);
  EXPECT_EQ(schedule[4].kind, fault::ActionKind::kGmRebuild);
  EXPECT_EQ(schedule[4].at, 8_ms);
  EXPECT_EQ(schedule[5].kind, fault::ActionKind::kCorruptStop);
  EXPECT_EQ(schedule[5].at, 11_ms);
}

TEST(FaultPlanTest, StochasticExpansionIsPureInSeed) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(6);
  fault::FaultPlan plan;
  plan.stochastic.count = 4;
  plan.stochastic.window_start = 10_ms;
  plan.stochastic.window_end = 90_ms;

  const std::string a = fault::render_schedule(fault::expand(plan, built.topology, 42));
  const std::string b = fault::render_schedule(fault::expand(plan, built.topology, 42));
  const std::string c = fault::render_schedule(fault::expand(plan, built.topology, 43));
  EXPECT_EQ(a, b);    // same seed: byte-identical schedule
  EXPECT_NE(a, c);    // the draws really depend on the seed
  EXPECT_FALSE(a.empty());

  // Down/restore pairs inside the window, time-sorted.
  const auto schedule = fault::expand(plan, built.topology, 42);
  ASSERT_EQ(schedule.size(), 8u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].at, schedule[i].at);
  }
  for (const fault::FaultAction& action : schedule) {
    if (action.kind == fault::ActionKind::kLinkDown) {
      EXPECT_GE(action.at, 10_ms);
      EXPECT_LT(action.at, 90_ms);
    }
  }
}

TEST(FaultPlanTest, ValidatesTargetsAndWindows) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(4);
  fault::FaultPlan bad_link;
  bad_link.scheduled.push_back({fault::FaultKind::kLinkDown, 1_ms, 9999});
  EXPECT_THROW((void)fault::expand(bad_link, built.topology, 7), Error);

  fault::FaultPlan bad_reboot;
  fault::FaultEvent reboot;
  reboot.kind = fault::FaultKind::kSwitchReboot;
  reboot.node = built.host_nodes[0];  // hosts do not reboot
  bad_reboot.scheduled.push_back(reboot);
  EXPECT_THROW((void)fault::expand(bad_reboot, built.topology, 7), Error);

  fault::FaultPlan inverted;
  inverted.stochastic.count = 1;
  inverted.stochastic.window_start = 50_ms;
  inverted.stochastic.window_end = 10_ms;
  EXPECT_THROW((void)fault::expand(inverted, built.topology, 7), Error);
}

TEST(FaultPlanTest, BackboneLinksAreSwitchToSwitchOnly) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(5);
  const auto backbone = fault::backbone_links(built.topology);
  EXPECT_EQ(backbone.size(), 5u);  // the ring itself, no host links
  for (const topo::LinkId id : backbone) {
    const topo::Link& link = built.topology.link(id);
    EXPECT_EQ(built.topology.node(link.node_a).kind, topo::NodeKind::kSwitch);
    EXPECT_EQ(built.topology.node(link.node_b).kind, topo::NodeKind::kSwitch);
  }
}

// ------------------------------------------------------------- profiles
TEST(FaultProfileTest, EveryNamedProfileExpandsOnTheRing) {
  const topo::BuiltTopology built = topo::make_ring_bidirectional(6);
  for (const std::string& name : fault::profile_names()) {
    EXPECT_TRUE(fault::is_profile(name));
    const fault::FaultPlan plan = fault::profile_plan(name, built.topology, 100_ms);
    const auto schedule = fault::expand(plan, built.topology, 7);
    if (name == "none") {
      EXPECT_TRUE(plan.empty());
      EXPECT_TRUE(schedule.empty());
    } else {
      EXPECT_FALSE(schedule.empty()) << name;
    }
  }
  EXPECT_FALSE(fault::is_profile("meteor-strike"));
  EXPECT_THROW((void)fault::profile_plan("meteor-strike",
                                         built.topology, 100_ms), Error);
}

// ------------------------------------------------------- RecoveryTracker
TEST(RecoveryTrackerTest, MeasuresRecoveryGapAndDuplicates) {
  fault::RecoveryTracker tracker;
  tracker.track_flow(1, 1_ms);

  tracker.on_injection(1, 0, TimePoint(0) + 1_ms);
  tracker.on_delivery(1, 0, TimePoint(0) + 1_ms + 100_us);
  tracker.note_service_fault(TimePoint(0) + 2_ms);
  tracker.on_injection(1, 1, TimePoint(0) + 2_ms);
  tracker.on_injection(1, 2, TimePoint(0) + 3_ms);
  tracker.on_delivery(1, 2, TimePoint(0) + 3_ms + 500_us);  // seq 1 never lands
  tracker.on_delivery(1, 2, TimePoint(0) + 3_ms + 600_us);  // elimination escape
  tracker.finalize(TimePoint(0) + 10_ms);

  const auto& flow = tracker.flow(1);
  EXPECT_EQ(flow.injected, 3u);
  EXPECT_EQ(flow.delivered, 2u);
  EXPECT_EQ(flow.duplicates, 1u);
  EXPECT_EQ(flow.lost_in_failover, 1u);  // seq 1, injected at the fault
  // The fault at 2 ms was recovered by the delivery at 3.5 ms.
  EXPECT_EQ(flow.worst_recovery, 1_ms + 500_us);
  EXPECT_EQ(tracker.total_duplicates(), 1u);
  EXPECT_EQ(tracker.total_lost_in_failover(), 1u);
  EXPECT_EQ(tracker.fault_count(), 1u);
}

TEST(RecoveryTrackerTest, ChargesUnrecoveredFaultUntilRunEnd) {
  fault::RecoveryTracker tracker;
  tracker.track_flow(5, 1_ms);
  tracker.on_injection(5, 0, TimePoint(0) + 1_ms);
  tracker.on_delivery(5, 0, TimePoint(0) + 1_ms + 100_us);
  tracker.note_service_fault(TimePoint(0) + 4_ms);
  // No delivery ever again: the outage lasts to the end of the run.
  tracker.finalize(TimePoint(0) + 20_ms);
  EXPECT_EQ(tracker.flow(5).worst_recovery, 16_ms);
  EXPECT_EQ(tracker.worst_recovery(), 16_ms);
}

TEST(RecoveryTrackerTest, IgnoresUntrackedFlows) {
  fault::RecoveryTracker tracker;
  tracker.track_flow(1, 1_ms);
  tracker.on_injection(99, 0, TimePoint(0) + 1_ms);
  tracker.on_delivery(99, 0, TimePoint(0) + 2_ms);
  tracker.finalize(TimePoint(0) + 5_ms);
  EXPECT_EQ(tracker.flow(1).injected, 0u);
  EXPECT_EQ(tracker.total_duplicates(), 0u);
}

// ------------------------------------------------- end-to-end scenarios
netsim::ScenarioConfig ring_scenario(bool frer, std::size_t flow_count = 8) {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring_bidirectional(6);
  cfg.options.seed = 7;
  const std::int64_t tables = 2 * static_cast<std::int64_t>(flow_count) + 16;
  cfg.options.resource.classification_table_size = tables;
  cfg.options.resource.unicast_table_size = tables;
  traffic::TsWorkloadParams params;
  params.flow_count = flow_count;
  params.period = 2_ms;
  // h0 -> h2: primary s0-s1-s2; the secondary member rides the other way
  // around the ring, so backbone link 0 (s0-s1) only hits the primary.
  cfg.flows =
      traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2], params);
  cfg.use_frer = frer;
  cfg.warmup = 150_ms;
  cfg.traffic_duration = 80_ms;
  return cfg;
}

TEST(FaultScenarioTest, FrerRidesOutLinkDownWithZeroLoss) {
  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/true);
  cfg.faults =
      fault::profile_plan("link-down", cfg.built.topology, cfg.traffic_duration);
  const netsim::ScenarioResult result = netsim::run_scenario(cfg);

  EXPECT_EQ(result.fault_actions, 2u);  // down + restore
  EXPECT_GT(result.link_down_drops, 0u);  // the dead link really ate frames
  EXPECT_EQ(result.ts.lost(), 0u);  // the disjoint member carried everything
  EXPECT_EQ(result.frames_lost_failover, 0u);
  EXPECT_EQ(result.frer_duplicate_escapes, 0u);
  // The next secondary-path delivery closes the recovery interval within
  // about one flow period.
  EXPECT_GT(result.worst_recovery, Duration::zero());
  EXPECT_LT(result.worst_recovery, 5_ms);
  EXPECT_FALSE(result.fault_schedule.empty());
}

TEST(FaultScenarioTest, WithoutFrerPermanentLinkDownLosesFrames) {
  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/false);
  fault::FaultEvent down;
  down.kind = fault::FaultKind::kLinkDown;
  down.link = fault::backbone_links(cfg.built.topology).front();
  down.at = 24_ms;
  down.down_for = Duration::zero();  // never restored
  cfg.faults.scheduled.push_back(down);
  const netsim::ScenarioResult result = netsim::run_scenario(cfg);

  EXPECT_EQ(result.fault_actions, 1u);
  EXPECT_GT(result.ts.lost(), 0u);
  EXPECT_GT(result.frames_lost_failover, 0u);
  // Never recovered: charged until the end of the run.
  EXPECT_GT(result.worst_recovery, 10_ms);
}

TEST(FaultScenarioTest, RebootSilentlyDropsThroughTraffic) {
  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/false);
  fault::FaultEvent reboot;
  reboot.kind = fault::FaultKind::kSwitchReboot;
  reboot.node = cfg.built.switch_nodes[1];  // on the h0 -> h2 path
  reboot.at = 24_ms;
  reboot.down_for = 10_ms;
  cfg.faults.scheduled.push_back(reboot);
  const netsim::ScenarioResult result = netsim::run_scenario(cfg);

  EXPECT_GT(result.reboot_drops, 0u);
  EXPECT_GT(result.ts.lost(), 0u);
  EXPECT_EQ(result.link_down_drops, 0u);  // distinct counters
}

TEST(FaultScenarioTest, CorruptionDropsFramesWithoutPerturbingTraffic) {
  netsim::ScenarioConfig clean = ring_scenario(/*frer=*/false);
  const netsim::ScenarioResult baseline = netsim::run_scenario(clean);

  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/false);
  fault::FaultEvent corrupt;
  corrupt.kind = fault::FaultKind::kLinkCorruption;
  corrupt.link = fault::backbone_links(cfg.built.topology).front();
  corrupt.at = 10_ms;
  corrupt.down_for = 60_ms;
  corrupt.bit_error_rate = 1e-4;  // ~5% frame loss at 64 B
  cfg.faults.scheduled.push_back(corrupt);
  const netsim::ScenarioResult result = netsim::run_scenario(cfg);

  EXPECT_GT(result.corruption_drops, 0u);
  EXPECT_EQ(result.ts.lost(), result.corruption_drops);
  // Stream isolation: the fault plane draws from its own RNG streams, so
  // the injected workload is bit-for-bit the no-fault workload.
  EXPECT_EQ(result.ts.injected, baseline.ts.injected);
}

TEST(FaultScenarioTest, GrandmasterLossHandsOffWithoutDataplaneLoss) {
  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/false);
  cfg.faults =
      fault::profile_plan("gm-loss", cfg.built.topology, cfg.traffic_duration);
  const netsim::ScenarioResult result = netsim::run_scenario(cfg);

  EXPECT_EQ(result.gm_handoffs, 1u);
  EXPECT_EQ(result.ts.lost(), 0u);  // sync degradation, not a dataplane fault
  EXPECT_EQ(result.frames_lost_failover, 0u);
  EXPECT_GE(result.post_handoff_sync_excursion, Duration::zero());
  EXPECT_LE(result.post_handoff_sync_excursion, result.max_sync_error);
}

TEST(FaultScenarioTest, FaultScheduleIsByteIdenticalAcrossRuns) {
  netsim::ScenarioConfig cfg = ring_scenario(/*frer=*/true);
  cfg.faults =
      fault::profile_plan("random", cfg.built.topology, cfg.traffic_duration);
  const netsim::ScenarioResult a = netsim::run_scenario(cfg);
  const netsim::ScenarioResult b = netsim::run_scenario(cfg);
  EXPECT_EQ(a.fault_schedule, b.fault_schedule);
  EXPECT_EQ(a.fault_actions, b.fault_actions);
  EXPECT_EQ(a.ts.injected, b.ts.injected);
  EXPECT_EQ(a.ts.received, b.ts.received);
  EXPECT_EQ(a.worst_recovery, b.worst_recovery);
  // And the schedule matches a direct expansion with the scenario seed.
  EXPECT_EQ(a.fault_schedule,
            fault::render_schedule(
                fault::expand(cfg.faults, cfg.built.topology, cfg.options.seed)));
}

}  // namespace
}  // namespace tsn
