// Unit tests for the tsnlint lexer and each rule: positive (bad snippet
// is flagged), negative (idiomatic code is clean), and suppression /
// allowlist behavior. Snippets live in string literals, which the lexer
// strips — exactly why the repo-wide meta-test can scan this file too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "report.hpp"
#include "rules.hpp"
#include "symbols.hpp"

namespace {

using tsnlint::Finding;
using tsnlint::Options;

constexpr const char* kSimPath = "src/netsim/fake.cpp";  // in unordered-iteration scope

std::vector<Finding> lint(std::string_view source, std::string_view path = kSimPath,
                          std::string_view header = "", Options options = {}) {
  return tsnlint::analyze_source(path, source, header, options);
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; });
}

// ---- lexer -------------------------------------------------------------

TEST(TsnlintLexer, StripsCommentsStringsAndRawStrings) {
  const auto lexed = tsnlint::lex(
      "int a; // steady_clock in a comment\n"
      "const char* s = \"std::random_device\";\n"
      "const char* r = R\"(rand() time(nullptr))\";\n"
      "/* system_clock */ char c = 'x';\n");
  for (const tsnlint::Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "steady_clock");
    EXPECT_NE(t.text, "random_device");
    EXPECT_NE(t.text, "system_clock");
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
}

TEST(TsnlintLexer, ClassifiesFloatLiterals) {
  const auto lexed = tsnlint::lex("1 2.5 1e9 0x10 0x1p4 3f 42");
  std::vector<bool> floats;
  for (const tsnlint::Token& t : lexed.tokens) {
    if (t.kind == tsnlint::TokenKind::kNumber) floats.push_back(t.is_float);
  }
  EXPECT_EQ(floats, (std::vector<bool>{false, true, true, false, true, true, false}));
}

TEST(TsnlintLexer, TracksLineNumbers) {
  const auto lexed = tsnlint::lex("a\nb\n\nc");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 2);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

// ---- R1 wall-clock -----------------------------------------------------

TEST(TsnlintWallClock, FlagsChronoClocksAndEntropySources) {
  EXPECT_TRUE(has_rule(lint("auto t = std::chrono::system_clock::now();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = std::chrono::steady_clock::now();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("std::random_device rd;"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("int x = rand();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = time(nullptr);"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("return time(nullptr);"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = std::time(nullptr);"), "wall-clock"));
}

TEST(TsnlintWallClock, IgnoresMemberCallsAndDeclarations) {
  // Member access: gptp node clocks, not libc clock().
  EXPECT_FALSE(has_rule(lint("node.clock().synced(now);"), "wall-clock"));
  EXPECT_FALSE(has_rule(lint("ptr->clock();"), "wall-clock"));
  // Declaration of a variable named like the libc function.
  EXPECT_FALSE(has_rule(lint("LocalClock clock(0.0);"), "wall-clock"));
  // Member function declarations whose name shadows the libc function.
  EXPECT_FALSE(has_rule(lint("const LocalClock& clock() const { return clock_; }"),
                        "wall-clock"));
  // Other namespaces are not std.
  EXPECT_FALSE(has_rule(lint("auto t = mylib::time(x);"), "wall-clock"));
}

// ---- R2 unordered iteration -------------------------------------------

TEST(TsnlintUnordered, FlagsRangeForOverUnorderedMember) {
  const std::string src =
      "std::unordered_map<int, Rec> flows_;\n"
      "void f() { for (const auto& [id, rec] : flows_) { use(rec); } }\n";
  const auto fs = lint(src);
  ASSERT_TRUE(has_rule(fs, "unordered-iteration"));
  EXPECT_EQ(fs.front().line, 2);
}

TEST(TsnlintUnordered, FlagsIteratorLoop) {
  const std::string src =
      "std::unordered_set<int> seen_;\n"
      "void f() { for (auto it = seen_.begin(); it != seen_.end(); ++it) {} }\n";
  EXPECT_TRUE(has_rule(lint(src), "unordered-iteration"));
}

TEST(TsnlintUnordered, UsesPairedHeaderDeclarations) {
  const std::string header = "class A { std::unordered_map<int, int> flows_; };\n";
  const std::string src = "void A::dump() { for (const auto& kv : flows_) { use(kv); } }\n";
  EXPECT_TRUE(has_rule(lint(src, kSimPath, header), "unordered-iteration"));
}

TEST(TsnlintUnordered, CleanCases) {
  // Ordered containers and vectors are fine.
  EXPECT_FALSE(has_rule(lint("std::map<int, int> m_;\n"
                             "void f() { for (const auto& kv : m_) { use(kv); } }\n"),
                        "unordered-iteration"));
  EXPECT_FALSE(has_rule(lint("std::vector<int> v_;\n"
                             "void f() { for (int x : v_) { use(x); } }\n"),
                        "unordered-iteration"));
  // Lookup without traversal is fine.
  EXPECT_FALSE(has_rule(lint("std::unordered_map<int, int> m_;\n"
                             "bool f(int k) { return m_.find(k) != m_.end(); }\n"),
                        "unordered-iteration"));
  // Out of scope: the rule covers all of src/, but not the test tree
  // (tests may iterate however they like when asserting set contents).
  EXPECT_FALSE(has_rule(lint("std::unordered_map<int, int> m_;\n"
                             "void f() { for (const auto& kv : m_) { use(kv); } }\n",
                             "tests/fake_test.cpp"),
                        "unordered-iteration"));
}

TEST(TsnlintUnordered, ScopeCoversAllOfSrc) {
  // Iteration order anywhere in the library can reach simulation results
  // or serialized output, so the determinism rule covers every src/
  // subsystem — including the ones added when the scope widened from the
  // per-subsystem allowlist (builder, tables, telemetry, cli, ...).
  const std::string src = "std::unordered_map<int, int> m_;\n"
                          "void f() { for (const auto& kv : m_) { use(kv); } }\n";
  for (const char* path :
       {"src/switch/fake.cpp", "src/timesync/fake.cpp", "src/traffic/fake.cpp",
        "src/verify/fake.cpp", "src/builder/fake.cpp", "src/resource/fake.cpp",
        "src/tables/fake.cpp", "src/topo/fake.cpp", "src/telemetry/fake.cpp",
        "src/frer/fake.cpp", "src/net/fake.cpp", "src/common/fake.cpp",
        "src/cli/fake.cpp"}) {
    EXPECT_TRUE(has_rule(lint(src, path), "unordered-iteration")) << path;
  }
}

// ---- R3 rng ------------------------------------------------------------

TEST(TsnlintRng, FlagsShuffleAndUnseededEngines) {
  EXPECT_TRUE(has_rule(lint("std::random_shuffle(v.begin(), v.end());"), "rng"));
  EXPECT_TRUE(has_rule(lint("std::mt19937 gen;"), "rng"));
  EXPECT_TRUE(has_rule(lint("std::mt19937 gen{};"), "rng"));
  EXPECT_TRUE(has_rule(lint("auto g = std::default_random_engine{};"), "rng"));
}

TEST(TsnlintRng, AllowsSeededEngines) {
  EXPECT_FALSE(has_rule(lint("std::mt19937 gen(seed);"), "rng"));
  EXPECT_FALSE(has_rule(lint("std::mt19937 gen{0xBEEF};"), "rng"));
  EXPECT_FALSE(has_rule(lint("Rng rng(42);"), "rng"));
}

// ---- R4 float compare --------------------------------------------------

TEST(TsnlintFloatCompare, FlagsLiteralAndDeclaredDoubleComparisons) {
  EXPECT_TRUE(has_rule(lint("if (x == 0.5) {}"), "float-compare"));
  EXPECT_TRUE(has_rule(lint("if (1e-9 != y) {}"), "float-compare"));
  EXPECT_TRUE(has_rule(lint("double ratio = f();\nbool b = ratio == target;\n"),
                       "float-compare"));
  // Declared in the paired header, compared in the .cpp.
  EXPECT_TRUE(has_rule(lint("bool f() { return drift_ppm == limit; }",
                            kSimPath, "struct C { double drift_ppm; };"),
                       "float-compare"));
}

TEST(TsnlintFloatCompare, CleanCases) {
  EXPECT_FALSE(has_rule(lint("if (n == 0) {}"), "float-compare"));
  EXPECT_FALSE(has_rule(lint("if (p == nullptr) {}"), "float-compare"));
  EXPECT_FALSE(has_rule(lint("double x = 0.5;\nbool b = x < 0.25;\n"), "float-compare"));
  // A nullptr operand proves this is a pointer compare even when the name
  // collides with a double declared elsewhere in the file.
  EXPECT_FALSE(has_rule(lint("void f(double value);\n"
                             "bool g(const std::string* value) { return value != nullptr; }\n"),
                        "float-compare"));
}

// ---- R5 assert side effects -------------------------------------------

TEST(TsnlintAssert, FlagsMutatingAsserts) {
  EXPECT_TRUE(has_rule(lint("assert(++n < 10);"), "assert-side-effect"));
  EXPECT_TRUE(has_rule(lint("assert(n = compute());"), "assert-side-effect"));
  EXPECT_TRUE(has_rule(lint("assert((total += step) < limit);"), "assert-side-effect"));
}

TEST(TsnlintAssert, AllowsPureAsserts) {
  EXPECT_FALSE(has_rule(lint("assert(n == 10);"), "assert-side-effect"));
  EXPECT_FALSE(has_rule(lint("assert(a <= b && b <= c);"), "assert-side-effect"));
}

// ---- suppression & allowlist ------------------------------------------

TEST(TsnlintSuppression, SameLineDirectiveWithReasonSuppresses) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  "
      "// tsnlint:allow(wall-clock): wall time is reporting-only\n";
  EXPECT_TRUE(lint(src).empty());
}

TEST(TsnlintSuppression, PreviousLineDirectiveSuppresses) {
  const std::string src =
      "// tsnlint:allow(wall-clock): wall time is reporting-only\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint(src).empty());
}

TEST(TsnlintSuppression, DirectiveDoesNotReachTwoLinesDown) {
  const std::string src =
      "// tsnlint:allow(wall-clock): only covers the next line\n"
      "int unrelated;\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_rule(lint(src), "wall-clock"));
}

TEST(TsnlintSuppression, DirectiveWithoutReasonIsItselfAFinding) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  // tsnlint:allow(wall-clock)\n";
  const auto fs = lint(src);
  // The original finding stays AND the bare directive is flagged.
  EXPECT_TRUE(has_rule(fs, "wall-clock"));
  EXPECT_TRUE(has_rule(fs, "bad-suppression"));
}

TEST(TsnlintSuppression, WrongRuleDoesNotSuppress) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  // tsnlint:allow(rng): wrong rule\n";
  EXPECT_TRUE(has_rule(lint(src), "wall-clock"));
}

TEST(TsnlintSuppression, AllowlistDropsMatchingFilesOnly) {
  Options options;
  options.allow.push_back({"wall-clock", "campaign/runner.cpp"});
  const std::string src = "auto t = std::chrono::steady_clock::now();";
  EXPECT_TRUE(lint(src, "src/campaign/runner.cpp", "", options).empty());
  EXPECT_TRUE(has_rule(lint(src, "src/campaign/matrix.cpp", "", options), "wall-clock"));
}

TEST(TsnlintOutput, DiagnosticFormatIsFileLineRuleMessage) {
  const auto fs = lint("int x = rand();\n", "src/event/fake.cpp");
  ASSERT_FALSE(fs.empty());
  const std::string d = fs.front().format();
  EXPECT_TRUE(d.starts_with("src/event/fake.cpp:1: wall-clock: ")) << d;
}

// ---- pass 1: symbol table ----------------------------------------------

TEST(TsnlintSymbols, InfersUnitsFromIdentifierSuffixes) {
  using tsnlint::Unit;
  EXPECT_EQ(tsnlint::unit_of_identifier("deadline_ns"), Unit::kNs);
  EXPECT_EQ(tsnlint::unit_of_identifier("budget_us"), Unit::kUs);
  EXPECT_EQ(tsnlint::unit_of_identifier("recovery_ms"), Unit::kMs);
  EXPECT_EQ(tsnlint::unit_of_identifier("frame_bits"), Unit::kBits);
  EXPECT_EQ(tsnlint::unit_of_identifier("buffer_bytes"), Unit::kBytes);
  EXPECT_EQ(tsnlint::unit_of_identifier("rate_mbps"), Unit::kMbps);
  EXPECT_EQ(tsnlint::unit_of_identifier("clock_hz"), Unit::kHz);
  // Trailing-underscore members carry the unit too.
  EXPECT_EQ(tsnlint::unit_of_identifier("period_ns_"), Unit::kNs);
  // The suffix must be a suffix, not the whole name, and must match exactly.
  EXPECT_EQ(tsnlint::unit_of_identifier("_ns"), Unit::kNone);
  EXPECT_EQ(tsnlint::unit_of_identifier("nanoseconds"), Unit::kNone);
  EXPECT_EQ(tsnlint::unit_of_identifier("bonus"), Unit::kNone);  // ends in "us" not "_us"
}

TEST(TsnlintSymbols, RecordsIntegerWidths) {
  const std::string src =
      "int rate;\n"
      "std::int64_t total = 0;\n"
      "unsigned long big;\n"
      "uint32_t small = 7;\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_TRUE(sym.ints.contains("rate"));
  EXPECT_EQ(sym.ints.at("rate").width, tsnlint::IntWidth::k32);
  EXPECT_EQ(sym.ints.at("total").width, tsnlint::IntWidth::k64);
  EXPECT_EQ(sym.ints.at("big").width, tsnlint::IntWidth::k64);
  EXPECT_EQ(sym.ints.at("small").width, tsnlint::IntWidth::k32);
}

TEST(TsnlintSymbols, ParsesCaptureLists) {
  const std::string src =
      "void f() {\n"
      "  auto a = [&] { go(); };\n"
      "  auto b = [=, &x, this] { go(); };\n"
      "  auto c = [v = make(), *this] { go(); };\n"
      "}\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_EQ(sym.lambdas.size(), 3u);
  ASSERT_EQ(sym.lambdas[0].captures.size(), 1u);
  EXPECT_TRUE(sym.lambdas[0].captures[0].is_default);
  EXPECT_TRUE(sym.lambdas[0].captures[0].by_ref);
  ASSERT_EQ(sym.lambdas[1].captures.size(), 3u);
  EXPECT_TRUE(sym.lambdas[1].captures[0].is_default);
  EXPECT_FALSE(sym.lambdas[1].captures[0].by_ref);
  EXPECT_TRUE(sym.lambdas[1].captures[1].by_ref);
  EXPECT_EQ(sym.lambdas[1].captures[1].name, "x");
  EXPECT_TRUE(sym.lambdas[1].captures[2].is_this);
  ASSERT_EQ(sym.lambdas[2].captures.size(), 2u);
  EXPECT_TRUE(sym.lambdas[2].captures[0].is_init);
  EXPECT_EQ(sym.lambdas[2].captures[0].name, "v");
  EXPECT_TRUE(sym.lambdas[2].captures[1].star_this);
}

TEST(TsnlintSymbols, DistinguishesLambdasFromSubscriptsAndAttributes) {
  const std::string src =
      "void f() {\n"
      "  int a[4];\n"
      "  v[i] = a[0];\n"
      "  [[maybe_unused]] int y = g()[1];\n"
      "  auto l = [] { go(); };\n"
      "}\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_EQ(sym.lambdas.size(), 1u);
  EXPECT_EQ(sym.lambdas[0].line, 5);
}

TEST(TsnlintSymbols, TracksEnclosingCallOfALambdaArgument) {
  const std::string src =
      "void f() {\n"
      "  sim.schedule_at(t, [this] { tick(); });\n"
      "  std::sort(v.begin(), v.end(), [](int a, int b) { return a < b; });\n"
      "  PeriodicTask task(sim, start, period, [this] { poll(); });\n"
      "}\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_EQ(sym.lambdas.size(), 3u);
  EXPECT_EQ(sym.lambdas[0].enclosing_call, "schedule_at");
  EXPECT_EQ(sym.lambdas[0].enclosing_call_qualifier, "sim");
  EXPECT_EQ(sym.lambdas[1].enclosing_call, "sort");
  EXPECT_EQ(sym.lambdas[2].enclosing_call, "task");
  EXPECT_EQ(sym.lambdas[2].enclosing_call_qualifier, "PeriodicTask");
}

TEST(TsnlintSymbols, NestedLambdaInsideDeferredBodyIsNotAttributedToTheSink) {
  // The inner [&] runs synchronously inside the outer callback's body;
  // only the outer lambda belongs to schedule_at.
  const std::string src =
      "void f() {\n"
      "  sim.schedule_at(t, [this] {\n"
      "    std::for_each(v.begin(), v.end(), [&](int x) { use(x); });\n"
      "  });\n"
      "}\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_EQ(sym.lambdas.size(), 2u);
  EXPECT_EQ(sym.lambdas[0].enclosing_call, "schedule_at");
  EXPECT_EQ(sym.lambdas[1].enclosing_call, "for_each");
}

TEST(TsnlintSymbols, ExtractsQuotedIncludeEdges) {
  const std::string src =
      "#include \"switch/gate_ctrl.hpp\"\n"
      "#include <vector>\n"
      "  #  include \"common/error.hpp\"\n";
  const auto sym = tsnlint::build_symbols(tsnlint::lex(src), src);
  ASSERT_EQ(sym.includes.size(), 2u);
  EXPECT_EQ(sym.includes[0].path, "switch/gate_ctrl.hpp");
  EXPECT_EQ(sym.includes[0].line, 1);
  EXPECT_EQ(sym.includes[1].path, "common/error.hpp");
  EXPECT_EQ(sym.includes[1].line, 3);
}

// ---- R6 time-unit ------------------------------------------------------

TEST(TsnlintTimeUnit, FlagsCrossUnitArithmeticAndComparison) {
  EXPECT_TRUE(has_rule(lint("auto t = deadline_ns + budget_us;"), "time-unit"));
  EXPECT_TRUE(has_rule(lint("auto t = window_ms - slack_ns;"), "time-unit"));
  EXPECT_TRUE(has_rule(lint("if (deadline_ns <= budget_us) {}"), "time-unit"));
  EXPECT_TRUE(has_rule(lint("bool late = arrival_ns > limit_ms;"), "time-unit"));
  // Cross-dimension is as wrong as cross-scale.
  EXPECT_TRUE(has_rule(lint("auto x = frame_bytes + gap_ns;"), "time-unit"));
}

TEST(TsnlintTimeUnit, FlagsBareCrossUnitAssignment) {
  EXPECT_TRUE(has_rule(lint("deadline_ns = budget_us;"), "time-unit"));
  EXPECT_TRUE(has_rule(lint("total_ns += step_us;"), "time-unit"));
}

TEST(TsnlintTimeUnit, ExplicitConversionIsClean) {
  EXPECT_FALSE(has_rule(lint("auto t = deadline_ns + budget_us * 1000;"), "time-unit"));
  EXPECT_FALSE(has_rule(lint("deadline_ns = budget_us * 1000;"), "time-unit"));
  EXPECT_FALSE(has_rule(lint("auto t = t_ns + d_us.to_ns();"), "time-unit"));
  // Same unit on both sides is fine.
  EXPECT_FALSE(has_rule(lint("auto t = start_ns + delta_ns;"), "time-unit"));
  // Unsuffixed identifiers carry no unit claim.
  EXPECT_FALSE(has_rule(lint("auto t = deadline_ns + slack;"), "time-unit"));
}

TEST(TsnlintTimeUnit, Flags32BitIntermediateInRateTimesDuration) {
  const std::string src =
      "int rate_bps;\n"
      "int period;\n"
      "void f() { total_bits_ = rate_bps * period; }\n";
  const auto fs = lint(src);
  ASSERT_TRUE(has_rule(fs, "time-unit"));
}

TEST(TsnlintTimeUnit, WideningDefusesTheIntermediate) {
  EXPECT_FALSE(has_rule(lint("int rate;\nint period;\n"
                             "void f() { t_ns = static_cast<std::int64_t>(rate) * period; }\n"),
                        "time-unit"));
  EXPECT_FALSE(has_rule(lint("std::int64_t rate;\nint period;\n"
                             "void f() { t_ns = rate * period; }\n"),
                        "time-unit"));
  EXPECT_FALSE(has_rule(lint("int rate;\nvoid f() { t_ns = rate * 1000LL; }\n"),
                        "time-unit"));
}

TEST(TsnlintTimeUnit, PairedHeaderWidthsFeedTheOverflowCheck) {
  const std::string header = "class A { int rate_; int period_; };\n";
  const std::string src = "void A::f() { window_ns_ = rate_ * period_; }\n";
  EXPECT_TRUE(has_rule(lint(src, kSimPath, header), "time-unit"));
}

// ---- R7 callback-capture ----------------------------------------------

TEST(TsnlintCapture, FlagsByRefCapturesHandedToDeferredSinks) {
  EXPECT_TRUE(has_rule(lint("void f() { sim.schedule_at(t, [&] { go(); }); }"),
                       "callback-capture"));
  EXPECT_TRUE(has_rule(lint("void f() { sim.schedule_in(d, [&count] { ++count; }); }"),
                       "callback-capture"));
  EXPECT_TRUE(has_rule(
      lint("void f() { PeriodicTask task(sim, t0, period, [&stats] { stats.tick(); }); }"),
      "callback-capture"));
  EXPECT_TRUE(has_rule(lint("void f() { nic.set_tx_callback([&log](const Packet& p) "
                            "{ log.push(p); }); }"),
                       "callback-capture"));
}

TEST(TsnlintCapture, ValueThisAndInitCapturesAreClean) {
  EXPECT_FALSE(has_rule(lint("void f() { sim.schedule_at(t, [this] { tick(); }); }"),
                        "callback-capture"));
  EXPECT_FALSE(has_rule(lint("void f() { sim.schedule_at(t, [=] { use(x); }); }"),
                        "callback-capture"));
  EXPECT_FALSE(has_rule(lint("void f() { sim.schedule_at(t, [s = &sink] { ++*s; }); }"),
                        "callback-capture"));
  EXPECT_FALSE(has_rule(lint("void f() { sim.schedule_at(t, [*this] { tick(); }); }"),
                        "callback-capture"));
}

TEST(TsnlintCapture, ImmediateAlgorithmsAndTestsAreOutOfScope) {
  // std::sort's comparator runs before the call returns.
  EXPECT_FALSE(has_rule(lint("void f() { std::sort(b, e, [&](int a, int b) "
                             "{ return key(a) < key(b); }); }"),
                        "callback-capture"));
  // Tests drain the simulator inside the same frame on purpose.
  EXPECT_FALSE(has_rule(lint("void f() { sim.schedule_at(t, [&] { go(); }); }",
                             "tests/event_test.cpp"),
                        "callback-capture"));
}

TEST(TsnlintCapture, InnerImmediateLambdaInsideDeferredBodyIsClean) {
  const std::string src =
      "void f() {\n"
      "  sim.schedule_at(t, [this] {\n"
      "    std::for_each(v_.begin(), v_.end(), [&](int x) { use(x); });\n"
      "  });\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint(src), "callback-capture"));
}

// ---- R8 layering -------------------------------------------------------

tsnlint::LayerManifest test_manifest() {
  std::string error;
  const auto m = tsnlint::parse_layers(
      "common:\n"
      "event: common\n"
      "switch: common event\n",
      error);
  EXPECT_EQ(error, "");
  return m;
}

TEST(TsnlintLayering, ParsesManifestAndRejectsCycles) {
  std::string error;
  EXPECT_FALSE(test_manifest().empty());

  (void)tsnlint::parse_layers("a: b\nb: a\n", error);
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;

  error.clear();
  (void)tsnlint::parse_layers("a: ghost\n", error);
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;

  error.clear();
  (void)tsnlint::parse_layers("not a manifest line\n", error);
  EXPECT_FALSE(error.empty());
}

TEST(TsnlintLayering, FlagsUndeclaredBackEdges) {
  Options options;
  options.layers = test_manifest();
  // event -> switch is a back-edge (only switch -> event is declared).
  const auto fs = lint("#include \"switch/gate_ctrl.hpp\"\n", "src/event/simulator.cpp",
                       "", options);
  EXPECT_TRUE(has_rule(fs, "layering"));
  // The declared direction is clean, as are same-layer and system includes.
  EXPECT_FALSE(has_rule(lint("#include \"event/simulator.hpp\"\n"
                             "#include \"switch/queue.hpp\"\n"
                             "#include <vector>\n",
                             "src/switch/egress_sched.cpp", "", options),
                        "layering"));
}

TEST(TsnlintLayering, FlagsSubsystemsMissingFromTheManifest) {
  Options options;
  options.layers = test_manifest();
  const auto fs =
      lint("#include \"common/time.hpp\"\n", "src/newthing/stuff.cpp", "", options);
  ASSERT_TRUE(has_rule(fs, "layering"));
  EXPECT_NE(fs.front().message.find("not declared"), std::string::npos);
}

TEST(TsnlintLayering, NoManifestMeansRuleIsOff) {
  EXPECT_FALSE(has_rule(lint("#include \"switch/gate_ctrl.hpp\"\n",
                             "src/event/simulator.cpp"),
                        "layering"));
}

// ---- R9 rng-discipline -------------------------------------------------

TEST(TsnlintRngDiscipline, FlagsRawSeedConstruction) {
  EXPECT_TRUE(has_rule(lint("void f() { Rng rng(params.seed); }"), "rng-discipline"));
  EXPECT_TRUE(has_rule(lint("void f() { Rng rng{seed + 1}; }"), "rng-discipline"));
  EXPECT_TRUE(has_rule(lint("void f() { rng.reseed(raw); }"), "rng-discipline"));
}

TEST(TsnlintRngDiscipline, NamedStreamsAndMembersAreClean) {
  EXPECT_FALSE(has_rule(lint("void f() { Rng rng = make_stream(seed, \"traffic\"); }"),
                        "rng-discipline"));
  EXPECT_FALSE(has_rule(lint("void f() { Rng rng(stream_seed(base, \"nic\", id)); }"),
                        "rng-discipline"));
  EXPECT_FALSE(has_rule(lint("void f() { rng.reseed(stream_seed(base, \"x\")); }"),
                        "rng-discipline"));
  // A bare member declaration carries no seed expression to judge.
  EXPECT_FALSE(has_rule(lint("class Nic { Rng rng_; };"), "rng-discipline"));
}

TEST(TsnlintRngDiscipline, CommonRngAndTestsAreExempt) {
  const std::string src = "void f() { Rng rng(raw_seed); }";
  EXPECT_FALSE(has_rule(lint(src, "src/common/rng.hpp"), "rng-discipline"));
  EXPECT_FALSE(has_rule(lint(src, "tests/rng_test.cpp"), "rng-discipline"));
}

// ---- R10 hot-path-alloc ------------------------------------------------

TEST(TsnlintHotPath, FlagsAllocationsInTaggedPaths) {
  EXPECT_TRUE(has_rule(lint("void f() { auto* p = new Node(); }", "src/event/fake.cpp"),
                       "hot-path-alloc"));
  EXPECT_TRUE(has_rule(lint("auto p = std::make_unique<Rec>();", "src/netsim/nic.cpp"),
                       "hot-path-alloc"));
  EXPECT_TRUE(has_rule(lint("std::function<void()> cb;", "src/switch/egress_sched.hpp"),
                       "hot-path-alloc"));
}

TEST(TsnlintHotPath, PlacementNewIncludesAndColdPathsAreClean) {
  EXPECT_FALSE(has_rule(lint("void f() { ::new (buf) Rec(); }", "src/event/callback.hpp"),
                        "hot-path-alloc"));
  EXPECT_FALSE(has_rule(lint("#include <new>\n", "src/event/callback.hpp"),
                        "hot-path-alloc"));
  // Outside the tagged hot paths allocation is fine.
  EXPECT_FALSE(has_rule(lint("auto p = std::make_unique<Rec>();", "src/campaign/runner.cpp"),
                        "hot-path-alloc"));
}

// ---- suppression interplay with v2 rules -------------------------------

TEST(TsnlintSuppressionV2, AllowWorksOnV2Rules) {
  const std::string src =
      "// tsnlint:allow(time-unit): frobnicator units are documented at the call site\n"
      "auto t = deadline_ns + budget_us;\n";
  EXPECT_TRUE(lint(src).empty());
}

TEST(TsnlintSuppressionV2, StaleAllowIsAFinding) {
  const auto fs = lint("// tsnlint:allow(time-unit): nothing here needs it\nint x;\n");
  ASSERT_TRUE(has_rule(fs, "stale-suppression"));
  EXPECT_NE(fs.front().message.find("suppresses nothing"), std::string::npos);
}

TEST(TsnlintSuppressionV2, UnknownRuleInAllowIsAFinding) {
  const auto fs = lint("// tsnlint:allow(wallclock): typo'd rule id\nint x = rand();\n");
  EXPECT_TRUE(has_rule(fs, "stale-suppression"));
  EXPECT_TRUE(has_rule(fs, "wall-clock"));  // and it suppressed nothing
}

TEST(TsnlintSuppressionV2, DocPlaceholdersAreNotStale) {
  // `<rule>` in prose (e.g. a header comment describing the directive
  // syntax) is not a plausible rule id and must not be flagged.
  EXPECT_TRUE(lint("// append `tsnlint:allow(<rule>): <reason>` to the line\nint x;\n")
                  .empty());
}

// ---- output formats ----------------------------------------------------

TEST(TsnlintReport, JsonHasStableShape) {
  const auto fs = lint("int x = rand();\n", "src/event/fake.cpp");
  const std::string json = tsnlint::to_json(fs);
  EXPECT_NE(json.find("\"tool\":\"tsnlint\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/event/fake.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"wall-clock\""), std::string::npos);
}

TEST(TsnlintReport, SarifHasSchemaVersionRulesAndResults) {
  const auto fs = lint("int x = rand();\n", "src/event/fake.cpp");
  const std::string sarif = tsnlint::to_sarif(fs);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"tsnlint\""), std::string::npos);
  // Every known rule is declared in the driver table...
  for (const std::string& id : tsnlint::rule_ids()) {
    EXPECT_NE(sarif.find("\"id\":\"" + id + "\""), std::string::npos) << id;
  }
  // ...and the finding shows up as a result with a physical location.
  EXPECT_NE(sarif.find("\"ruleId\":\"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/event/fake.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
}

TEST(TsnlintReport, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(tsnlint::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

}  // namespace
