// Unit tests for the tsnlint lexer and each rule: positive (bad snippet
// is flagged), negative (idiomatic code is clean), and suppression /
// allowlist behavior. Snippets live in string literals, which the lexer
// strips — exactly why the repo-wide meta-test can scan this file too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace {

using tsnlint::Finding;
using tsnlint::Options;

constexpr const char* kSimPath = "src/netsim/fake.cpp";  // in unordered-iteration scope

std::vector<Finding> lint(std::string_view source, std::string_view path = kSimPath,
                          std::string_view header = "", Options options = {}) {
  return tsnlint::analyze_source(path, source, header, options);
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; });
}

// ---- lexer -------------------------------------------------------------

TEST(TsnlintLexer, StripsCommentsStringsAndRawStrings) {
  const auto lexed = tsnlint::lex(
      "int a; // steady_clock in a comment\n"
      "const char* s = \"std::random_device\";\n"
      "const char* r = R\"(rand() time(nullptr))\";\n"
      "/* system_clock */ char c = 'x';\n");
  for (const tsnlint::Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "steady_clock");
    EXPECT_NE(t.text, "random_device");
    EXPECT_NE(t.text, "system_clock");
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
}

TEST(TsnlintLexer, ClassifiesFloatLiterals) {
  const auto lexed = tsnlint::lex("1 2.5 1e9 0x10 0x1p4 3f 42");
  std::vector<bool> floats;
  for (const tsnlint::Token& t : lexed.tokens) {
    if (t.kind == tsnlint::TokenKind::kNumber) floats.push_back(t.is_float);
  }
  EXPECT_EQ(floats, (std::vector<bool>{false, true, true, false, true, true, false}));
}

TEST(TsnlintLexer, TracksLineNumbers) {
  const auto lexed = tsnlint::lex("a\nb\n\nc");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 2);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

// ---- R1 wall-clock -----------------------------------------------------

TEST(TsnlintWallClock, FlagsChronoClocksAndEntropySources) {
  EXPECT_TRUE(has_rule(lint("auto t = std::chrono::system_clock::now();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = std::chrono::steady_clock::now();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("std::random_device rd;"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("int x = rand();"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = time(nullptr);"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("return time(nullptr);"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint("auto t = std::time(nullptr);"), "wall-clock"));
}

TEST(TsnlintWallClock, IgnoresMemberCallsAndDeclarations) {
  // Member access: gptp node clocks, not libc clock().
  EXPECT_FALSE(has_rule(lint("node.clock().synced(now);"), "wall-clock"));
  EXPECT_FALSE(has_rule(lint("ptr->clock();"), "wall-clock"));
  // Declaration of a variable named like the libc function.
  EXPECT_FALSE(has_rule(lint("LocalClock clock(0.0);"), "wall-clock"));
  // Member function declarations whose name shadows the libc function.
  EXPECT_FALSE(has_rule(lint("const LocalClock& clock() const { return clock_; }"),
                        "wall-clock"));
  // Other namespaces are not std.
  EXPECT_FALSE(has_rule(lint("auto t = mylib::time(x);"), "wall-clock"));
}

// ---- R2 unordered iteration -------------------------------------------

TEST(TsnlintUnordered, FlagsRangeForOverUnorderedMember) {
  const std::string src =
      "std::unordered_map<int, Rec> flows_;\n"
      "void f() { for (const auto& [id, rec] : flows_) { use(rec); } }\n";
  const auto fs = lint(src);
  ASSERT_TRUE(has_rule(fs, "unordered-iteration"));
  EXPECT_EQ(fs.front().line, 2);
}

TEST(TsnlintUnordered, FlagsIteratorLoop) {
  const std::string src =
      "std::unordered_set<int> seen_;\n"
      "void f() { for (auto it = seen_.begin(); it != seen_.end(); ++it) {} }\n";
  EXPECT_TRUE(has_rule(lint(src), "unordered-iteration"));
}

TEST(TsnlintUnordered, UsesPairedHeaderDeclarations) {
  const std::string header = "class A { std::unordered_map<int, int> flows_; };\n";
  const std::string src = "void A::dump() { for (const auto& kv : flows_) { use(kv); } }\n";
  EXPECT_TRUE(has_rule(lint(src, kSimPath, header), "unordered-iteration"));
}

TEST(TsnlintUnordered, CleanCases) {
  // Ordered containers and vectors are fine.
  EXPECT_FALSE(has_rule(lint("std::map<int, int> m_;\n"
                             "void f() { for (const auto& kv : m_) { use(kv); } }\n"),
                        "unordered-iteration"));
  EXPECT_FALSE(has_rule(lint("std::vector<int> v_;\n"
                             "void f() { for (int x : v_) { use(x); } }\n"),
                        "unordered-iteration"));
  // Lookup without traversal is fine.
  EXPECT_FALSE(has_rule(lint("std::unordered_map<int, int> m_;\n"
                             "bool f(int k) { return m_.find(k) != m_.end(); }\n"),
                        "unordered-iteration"));
  // Out of scope: the rule targets simulation/netsim/analysis/campaign code.
  EXPECT_FALSE(has_rule(lint("std::unordered_map<int, int> m_;\n"
                             "void f() { for (const auto& kv : m_) { use(kv); } }\n",
                             "src/tables/fake.hpp"),
                        "unordered-iteration"));
}

TEST(TsnlintUnordered, ScopeCoversDataplaneTimesyncTrafficAndVerify) {
  // Iteration order in these subsystems reaches simulation results or
  // serialized diagnostics, so the determinism rule applies there too.
  const std::string src = "std::unordered_map<int, int> m_;\n"
                          "void f() { for (const auto& kv : m_) { use(kv); } }\n";
  for (const char* path : {"src/switch/fake.cpp", "src/timesync/fake.cpp",
                           "src/traffic/fake.cpp", "src/verify/fake.cpp"}) {
    EXPECT_TRUE(has_rule(lint(src, path), "unordered-iteration")) << path;
  }
}

// ---- R3 rng ------------------------------------------------------------

TEST(TsnlintRng, FlagsShuffleAndUnseededEngines) {
  EXPECT_TRUE(has_rule(lint("std::random_shuffle(v.begin(), v.end());"), "rng"));
  EXPECT_TRUE(has_rule(lint("std::mt19937 gen;"), "rng"));
  EXPECT_TRUE(has_rule(lint("std::mt19937 gen{};"), "rng"));
  EXPECT_TRUE(has_rule(lint("auto g = std::default_random_engine{};"), "rng"));
}

TEST(TsnlintRng, AllowsSeededEngines) {
  EXPECT_FALSE(has_rule(lint("std::mt19937 gen(seed);"), "rng"));
  EXPECT_FALSE(has_rule(lint("std::mt19937 gen{0xBEEF};"), "rng"));
  EXPECT_FALSE(has_rule(lint("Rng rng(42);"), "rng"));
}

// ---- R4 float compare --------------------------------------------------

TEST(TsnlintFloatCompare, FlagsLiteralAndDeclaredDoubleComparisons) {
  EXPECT_TRUE(has_rule(lint("if (x == 0.5) {}"), "float-compare"));
  EXPECT_TRUE(has_rule(lint("if (1e-9 != y) {}"), "float-compare"));
  EXPECT_TRUE(has_rule(lint("double ratio = f();\nbool b = ratio == target;\n"),
                       "float-compare"));
  // Declared in the paired header, compared in the .cpp.
  EXPECT_TRUE(has_rule(lint("bool f() { return drift_ppm == limit; }",
                            kSimPath, "struct C { double drift_ppm; };"),
                       "float-compare"));
}

TEST(TsnlintFloatCompare, CleanCases) {
  EXPECT_FALSE(has_rule(lint("if (n == 0) {}"), "float-compare"));
  EXPECT_FALSE(has_rule(lint("if (p == nullptr) {}"), "float-compare"));
  EXPECT_FALSE(has_rule(lint("double x = 0.5;\nbool b = x < 0.25;\n"), "float-compare"));
  // A nullptr operand proves this is a pointer compare even when the name
  // collides with a double declared elsewhere in the file.
  EXPECT_FALSE(has_rule(lint("void f(double value);\n"
                             "bool g(const std::string* value) { return value != nullptr; }\n"),
                        "float-compare"));
}

// ---- R5 assert side effects -------------------------------------------

TEST(TsnlintAssert, FlagsMutatingAsserts) {
  EXPECT_TRUE(has_rule(lint("assert(++n < 10);"), "assert-side-effect"));
  EXPECT_TRUE(has_rule(lint("assert(n = compute());"), "assert-side-effect"));
  EXPECT_TRUE(has_rule(lint("assert((total += step) < limit);"), "assert-side-effect"));
}

TEST(TsnlintAssert, AllowsPureAsserts) {
  EXPECT_FALSE(has_rule(lint("assert(n == 10);"), "assert-side-effect"));
  EXPECT_FALSE(has_rule(lint("assert(a <= b && b <= c);"), "assert-side-effect"));
}

// ---- suppression & allowlist ------------------------------------------

TEST(TsnlintSuppression, SameLineDirectiveWithReasonSuppresses) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  "
      "// tsnlint:allow(wall-clock): wall time is reporting-only\n";
  EXPECT_TRUE(lint(src).empty());
}

TEST(TsnlintSuppression, PreviousLineDirectiveSuppresses) {
  const std::string src =
      "// tsnlint:allow(wall-clock): wall time is reporting-only\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint(src).empty());
}

TEST(TsnlintSuppression, DirectiveDoesNotReachTwoLinesDown) {
  const std::string src =
      "// tsnlint:allow(wall-clock): only covers the next line\n"
      "int unrelated;\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_rule(lint(src), "wall-clock"));
}

TEST(TsnlintSuppression, DirectiveWithoutReasonIsItselfAFinding) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  // tsnlint:allow(wall-clock)\n";
  const auto fs = lint(src);
  // The original finding stays AND the bare directive is flagged.
  EXPECT_TRUE(has_rule(fs, "wall-clock"));
  EXPECT_TRUE(has_rule(fs, "bad-suppression"));
}

TEST(TsnlintSuppression, WrongRuleDoesNotSuppress) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  // tsnlint:allow(rng): wrong rule\n";
  EXPECT_TRUE(has_rule(lint(src), "wall-clock"));
}

TEST(TsnlintSuppression, AllowlistDropsMatchingFilesOnly) {
  Options options;
  options.allow.push_back({"wall-clock", "campaign/runner.cpp"});
  const std::string src = "auto t = std::chrono::steady_clock::now();";
  EXPECT_TRUE(lint(src, "src/campaign/runner.cpp", "", options).empty());
  EXPECT_TRUE(has_rule(lint(src, "src/campaign/matrix.cpp", "", options), "wall-clock"));
}

TEST(TsnlintOutput, DiagnosticFormatIsFileLineRuleMessage) {
  const auto fs = lint("int x = rand();\n", "src/event/fake.cpp");
  ASSERT_FALSE(fs.empty());
  const std::string d = fs.front().format();
  EXPECT_TRUE(d.starts_with("src/event/fake.cpp:1: wall-clock: ")) << d;
}

}  // namespace
