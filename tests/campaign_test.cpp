// Tests for the campaign subsystem: matrix expansion, deterministic
// parallel execution, failure capture, and the JSONL/CSV sinks.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/record.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario_space.hpp"
#include "campaign/sink.hpp"
#include "campaign/telemetry.hpp"
#include "common/error.hpp"
#include "fault/plan.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::campaign {
namespace {

// --------------------------------------------------------------- matrix
TEST(MatrixTest, ExpandsCrossProductInCanonicalOrder) {
  ScenarioMatrix matrix;
  matrix.add_axis("a", {"1", "2"}).add_axis("b", {"x", "y", "z"});
  EXPECT_EQ(matrix.point_count(), 6u);

  const std::vector<RunPoint> points = matrix.expand();
  ASSERT_EQ(points.size(), 6u);
  // First axis slowest: (1,x) (1,y) (1,z) (2,x) (2,y) (2,z).
  EXPECT_EQ(points[0].label(), "a=1 b=x");
  EXPECT_EQ(points[2].label(), "a=1 b=z");
  EXPECT_EQ(points[3].label(), "a=2 b=x");
  EXPECT_EQ(points[5].label(), "a=2 b=z");
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);

  ASSERT_NE(points[4].find("b"), nullptr);
  EXPECT_EQ(*points[4].find("b"), "y");
  EXPECT_EQ(points[4].find("missing"), nullptr);
}

TEST(MatrixTest, EmptyMatrixIsOneDefaultsPoint) {
  const ScenarioMatrix matrix;
  EXPECT_EQ(matrix.point_count(), 1u);
  const std::vector<RunPoint> points = matrix.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].params.empty());
  EXPECT_EQ(points[0].label(), "(defaults)");
}

TEST(MatrixTest, RejectsDuplicateAndEmptyAxes) {
  ScenarioMatrix matrix;
  matrix.add_axis("a", {"1"});
  EXPECT_THROW(matrix.add_axis("a", {"2"}), Error);
  EXPECT_THROW(matrix.add_axis("", {"1"}), Error);
  EXPECT_THROW(matrix.add_axis("b", {}), Error);
}

TEST(MatrixTest, ParsesAxisSpecs) {
  const Axis axis = parse_axis("bg-mbps = 0, 100 ,300");
  EXPECT_EQ(axis.name, "bg-mbps");
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(axis.values[1], "100");

  const std::vector<Axis> axes = parse_axes("a=1,2; b=x ;");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].name, "a");
  EXPECT_EQ(axes[1].values.front(), "x");

  EXPECT_THROW(parse_axis("noequals"), Error);
  EXPECT_THROW(parse_axis("=1,2"), Error);
  EXPECT_THROW(parse_axis("a=1,,2"), Error);
  EXPECT_THROW(parse_axes(";"), Error);
}

// --------------------------------------------------------------- seeding
TEST(RunnerTest, DerivedSeedsAreStableAndDistinct) {
  const std::uint64_t s00 = CampaignRunner::derive_seed(7, 0, 0);
  EXPECT_EQ(s00, CampaignRunner::derive_seed(7, 0, 0));
  EXPECT_NE(s00, CampaignRunner::derive_seed(7, 0, 1));
  EXPECT_NE(s00, CampaignRunner::derive_seed(7, 1, 0));
  EXPECT_NE(s00, CampaignRunner::derive_seed(8, 0, 0));
  // (point, repeat) must not alias (repeat, point).
  EXPECT_NE(CampaignRunner::derive_seed(7, 1, 2), CampaignRunner::derive_seed(7, 2, 1));
}

// ----------------------------------------------------------------- runner
ScenarioMatrix small_matrix() {
  ScenarioMatrix matrix;
  matrix.add_axis("hops", {"2", "3"});
  matrix.add_axis("be-mbps", {"0", "200"});
  return matrix;
}

ScenarioDefaults fast_defaults() {
  ScenarioDefaults d;
  d.topology = "ring";
  d.switches = 3;
  d.flows = 8;
  d.warmup_ms = 50;
  d.duration_ms = 20;
  return d;
}

std::vector<RunRecord> run_campaign(std::size_t jobs, std::size_t repeats = 2,
                                    std::uint64_t base_seed = 11) {
  CampaignOptions options;
  options.jobs = jobs;
  options.repeats = repeats;
  options.base_seed = base_seed;
  CampaignRunner runner(small_matrix(), options);
  return runner.run([](const RunPoint& point, std::uint64_t seed) {
    return scenario_for_point(point, seed, fast_defaults());
  });
}

TEST(RunnerTest, SameSeedProducesByteIdenticalRows) {
  const std::vector<RunRecord> first = run_campaign(/*jobs=*/1);
  const std::vector<RunRecord> second = run_campaign(/*jobs=*/1);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(to_jsonl(first[i], /*include_timing=*/false),
              to_jsonl(second[i], /*include_timing=*/false));
  }
}

TEST(RunnerTest, JobCountDoesNotChangeResults) {
  const std::vector<RunRecord> serial = run_campaign(/*jobs=*/1);
  const std::vector<RunRecord> parallel = run_campaign(/*jobs=*/4);
  ASSERT_EQ(serial.size(), 8u);  // 4 points x 2 repeats
  ASSERT_EQ(parallel.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Records land at fixed positions (point, repeat) regardless of
    // which worker ran them, and their payloads match byte for byte.
    EXPECT_EQ(serial[i].point_index, parallel[i].point_index);
    EXPECT_EQ(serial[i].repeat, parallel[i].repeat);
    EXPECT_EQ(to_jsonl(serial[i], /*include_timing=*/false),
              to_jsonl(parallel[i], /*include_timing=*/false));
  }
}

/// The issue's headline acceptance test: exported sim-time metrics are
/// byte-identical no matter how many workers executed the campaign. Wall
/// metrics (which legitimately differ) must be present in the full
/// snapshot but excluded from the compared form.
TEST(RunnerTest, MetricsSnapshotByteIdenticalAcrossJobCounts) {
  const std::vector<RunRecord> serial = run_campaign(/*jobs=*/1);
  const std::vector<RunRecord> parallel = run_campaign(/*jobs=*/4);

  telemetry::MetricsRegistry serial_registry;
  telemetry::MetricsRegistry parallel_registry;
  collect_metrics(serial, serial_registry);
  collect_metrics(parallel, parallel_registry);

  telemetry::RenderOptions sim_only;
  sim_only.include_wall = false;
  EXPECT_EQ(serial_registry.to_prometheus(sim_only),
            parallel_registry.to_prometheus(sim_only));
  EXPECT_EQ(serial_registry.to_json(sim_only), parallel_registry.to_json(sim_only));

  // The sim-time side actually carries data (not trivially-equal empties)...
  const std::string snapshot = serial_registry.to_prometheus(sim_only);
  EXPECT_NE(snapshot.find("tsn_campaign_runs 8"), std::string::npos);
  EXPECT_NE(snapshot.find("tsn_campaign_ok 8"), std::string::npos);
  EXPECT_NE(snapshot.find("tsn_campaign_total_ts_received "), std::string::npos);
  EXPECT_NE(snapshot.find("tsn_campaign_total_events_executed "), std::string::npos);
  EXPECT_NE(snapshot.find("tsn_campaign_ts_p99_us_bucket"), std::string::npos);
  EXPECT_EQ(snapshot.find("wall_"), std::string::npos);
  // ...and the wall-clock side exists in the full render, clearly fenced.
  const std::string full = parallel_registry.to_prometheus();
  EXPECT_NE(full.find("wall_campaign_total_ms"), std::string::npos);
  EXPECT_NE(full.find("wall_campaign_phase_ms{phase=\"simulate\"}"), std::string::npos);
  EXPECT_NE(full.find("wall_campaign_worker_runs{worker=\""), std::string::npos);
}

/// The fault-plane acceptance test: a resilience matrix (fault profiles
/// on a FRER-protected bidirectional ring) exports byte-identical rows
/// no matter how many workers ran it, and the recovery columns carry the
/// expected physics (zero loss with a surviving redundant path, non-zero
/// recovery time on the faulted rows).
TEST(RunnerTest, FaultCampaignByteIdenticalAcrossJobCountsWithRecoveryColumns) {
  ScenarioDefaults defaults;
  defaults.topology = "ring2";
  defaults.switches = 6;
  defaults.flows = 8;
  defaults.frer = true;
  defaults.period_ms = 2;
  defaults.warmup_ms = 50;
  defaults.duration_ms = 40;

  ScenarioMatrix matrix;
  matrix.add_axis("faults", {"none", "link-down", "random"});
  const auto factory = [defaults](const RunPoint& point, std::uint64_t seed) {
    return scenario_for_point(point, seed, defaults);
  };
  CampaignOptions serial_options;
  serial_options.jobs = 1;
  serial_options.repeats = 2;
  CampaignOptions parallel_options = serial_options;
  parallel_options.jobs = 4;

  const std::vector<RunRecord> serial = CampaignRunner(matrix, serial_options).run(factory);
  const std::vector<RunRecord> parallel =
      CampaignRunner(matrix, parallel_options).run(factory);
  ASSERT_EQ(serial.size(), 6u);  // 3 profiles x 2 repeats
  ASSERT_EQ(parallel.size(), 6u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(to_jsonl(serial[i], /*include_timing=*/false),
              to_jsonl(parallel[i], /*include_timing=*/false));
  }

  // Control row: no faults, nothing to recover from.
  EXPECT_EQ(serial[0].metrics.fault_actions, 0);
  EXPECT_EQ(serial[0].metrics.recovery_ms, 0.0);
  // link-down rows: down + restore applied, the redundant member carried
  // everything, and the recovery gap was measured.
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(serial[i].metrics.fault_actions, 2) << i;
    EXPECT_EQ(serial[i].metrics.fault_frames_lost, 0) << i;
    EXPECT_EQ(serial[i].metrics.frer_dup_escapes, 0) << i;
    EXPECT_GT(serial[i].metrics.recovery_ms, 0.0) << i;
  }
  // random rows: three seeded outages, six actions.
  EXPECT_EQ(serial[4].metrics.fault_actions, 6);

  // The recovery columns ride the standard sinks.
  const std::string row = to_jsonl(serial[2], /*include_timing=*/false);
  EXPECT_NE(row.find("\"fault_actions\":2"), std::string::npos);
  EXPECT_NE(row.find("\"recovery_ms\":"), std::string::npos);
  EXPECT_NE(row.find("\"fault_frames_lost\":0"), std::string::npos);
}

TEST(RunnerTest, DifferentBaseSeedChangesRuns) {
  const std::vector<RunRecord> a = run_campaign(1, 1, 11);
  const std::vector<RunRecord> b = run_campaign(1, 1, 12);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a[0].seed, b[0].seed);
}

TEST(RunnerTest, ThrowingRunBecomesFailedRow) {
  ScenarioMatrix matrix;
  matrix.add_axis("config", {"planned", "bogus"});
  CampaignOptions options;
  options.jobs = 2;
  CampaignRunner runner(std::move(matrix), options);
  const std::vector<RunRecord> records =
      runner.run([](const RunPoint& point, std::uint64_t seed) {
        return scenario_for_point(point, seed, fast_defaults());
      });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_NE(records[1].error.find("unknown config"), std::string::npos);
  EXPECT_EQ(records[1].metrics.ts_received, 0);
}

TEST(RunnerTest, StaticallyInvalidPointBecomesVerifyFailedRow) {
  // itp=off injects every flow at period start: the naive plan's per-slot
  // load (64) exceeds case2's queue depth (12), which the verifier
  // rejects before any simulation runs.
  ScenarioMatrix matrix;
  matrix.add_axis("itp", {"on", "off"});
  ScenarioDefaults defaults = fast_defaults();
  defaults.topology = "linear";
  defaults.flows = 64;
  defaults.config = "case2";
  const auto factory = [defaults](const RunPoint& point, std::uint64_t seed) {
    return scenario_for_point(point, seed, defaults);
  };

  CampaignOptions options;
  CampaignRunner runner(matrix, options);
  const std::vector<RunRecord> records = runner.run(factory);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[0].verify_failed);
  EXPECT_FALSE(records[1].ok);
  EXPECT_TRUE(records[1].verify_failed);
  EXPECT_NE(records[1].error.find("static verification failed"), std::string::npos);
  // The highest-ranked diagnostic is the exact worst-case backlog bound
  // (bound.* sorts ahead of resource.queue-depth, which also fires).
  EXPECT_NE(records[1].error.find("bound.backlog-overflow"), std::string::npos);
  EXPECT_EQ(records[1].metrics.ts_received, 0);  // rejected, never simulated
  // The rejection is visible in both sink formats: the jsonl flag, and in
  // CSV the error followed by the verify_failed column.
  EXPECT_NE(to_jsonl(records[1], /*include_timing=*/false).find("\"verify_failed\":true"),
            std::string::npos);
  const std::string row = to_csv(records[1], matrix.axes());
  EXPECT_NE(row.find(",0,static verification failed"), std::string::npos);
  EXPECT_NE(row.find("error(s)),1,"), std::string::npos);

  // Opting out of verification hands the point to the simulator instead.
  CampaignOptions unchecked;
  unchecked.verify = false;
  CampaignRunner permissive(matrix, unchecked);
  const std::vector<RunRecord> raw = permissive.run(factory);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_FALSE(raw[1].verify_failed);
}

TEST(RunnerTest, ProgressReportsEveryRun) {
  CampaignOptions options;
  options.jobs = 4;
  CampaignRunner runner(small_matrix(), options);
  std::size_t calls = 0;
  std::size_t last_total = 0;
  (void)runner.run(
      [](const RunPoint& point, std::uint64_t seed) {
        return scenario_for_point(point, seed, fast_defaults());
      },
      [&calls, &last_total](const RunRecord&, std::size_t, std::size_t total) {
        ++calls;
        last_total = total;
      });
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(last_total, 4u);
}

// ------------------------------------------------------------------ sinks
TEST(SinkTest, JsonlHasRunAndAggregateRows) {
  const std::vector<RunRecord> records = run_campaign(1);
  const std::string jsonl = serialize(records, small_matrix().axes(), SinkFormat::kJsonl);
  std::size_t runs = 0;
  std::size_t aggregates = 0;
  std::size_t pos = 0;
  while ((pos = jsonl.find("{\"type\":\"run\"", pos)) != std::string::npos) {
    ++runs;
    ++pos;
  }
  pos = 0;
  while ((pos = jsonl.find("{\"type\":\"aggregate\"", pos)) != std::string::npos) {
    ++aggregates;
    ++pos;
  }
  EXPECT_EQ(runs, 8u);        // one per (point, repeat)
  EXPECT_EQ(aggregates, 4u);  // one per point
  EXPECT_NE(jsonl.find("\"ts_avg_us\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_p99_us\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"resource_kb\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_avg_us_mean\":"), std::string::npos);
  EXPECT_EQ(serialize(records, small_matrix().axes(), SinkFormat::kJsonl,
                      /*include_timing=*/false)
                .find("wall_ms"),
            std::string::npos);
}

TEST(SinkTest, ManifestStampsBothFormats) {
  const std::vector<RunRecord> records = run_campaign(1);
  const telemetry::RunManifest manifest =
      telemetry::make_manifest("campaign hops=2,3; be-mbps=0,200", "campaign", 11);
  const std::string jsonl = serialize(records, small_matrix().axes(), SinkFormat::kJsonl,
                                      /*include_timing=*/true, &manifest);
  EXPECT_EQ(jsonl.rfind("{\"type\":\"manifest\",\"manifest\":{\"tool\":\"tsnb\"", 0), 0u);
  const std::string csv = serialize(records, small_matrix().axes(), SinkFormat::kCsv,
                                    /*include_timing=*/true, &manifest);
  EXPECT_EQ(csv.rfind("# manifest: {\"tool\":\"tsnb\"", 0), 0u);
  // Stamping is opt-in: the default serialization is unchanged.
  EXPECT_EQ(serialize(records, small_matrix().axes(), SinkFormat::kJsonl)
                .find("\"type\":\"manifest\""),
            std::string::npos);
}

TEST(SinkTest, CsvHasHeaderAndOneRowPerRun) {
  const std::vector<RunRecord> records = run_campaign(1);
  const std::string csv = serialize(records, small_matrix().axes(), SinkFormat::kCsv);
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 9u);  // header + 8 runs
  EXPECT_EQ(csv.rfind("point,repeat,seed,hops,be-mbps,ok,error,", 0), 0u);
}

TEST(SinkTest, EscapesJsonStrings) {
  RunRecord record;
  record.error = "bad \"value\"\nline2";
  const std::string line = to_jsonl(record);
  EXPECT_NE(line.find("bad \\\"value\\\"\\nline2"), std::string::npos);
}

TEST(SinkTest, ParsesFormats) {
  EXPECT_EQ(parse_sink_format("jsonl"), SinkFormat::kJsonl);
  EXPECT_EQ(parse_sink_format("csv"), SinkFormat::kCsv);
  EXPECT_THROW((void)parse_sink_format("xml"), Error);
}

// -------------------------------------------------------------- aggregate
TEST(AggregateTest, MeanAndStddevAcrossRepeats) {
  std::vector<RunRecord> records;
  for (std::size_t repeat = 0; repeat < 3; ++repeat) {
    RunRecord r;
    r.point_index = 5;
    r.repeat = repeat;
    r.ok = true;
    r.metrics.ts_avg_us = 10.0 + static_cast<double>(repeat) * 10.0;  // 10, 20, 30
    records.push_back(r);
  }
  RunRecord failed;
  failed.point_index = 5;
  failed.repeat = 3;
  failed.ok = false;
  failed.error = "boom";
  records.push_back(failed);

  const std::vector<PointAggregate> aggs = aggregate(records);
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].point_index, 5u);
  EXPECT_EQ(aggs[0].repeats, 4u);
  EXPECT_EQ(aggs[0].failures, 1u);
  // ts_avg_us is the first value field.
  ASSERT_FALSE(value_fields().empty());
  EXPECT_STREQ(value_fields()[0].name, "ts_avg_us");
  EXPECT_EQ(aggs[0].values[0].count(), 3u);  // failed repeat excluded
  EXPECT_DOUBLE_EQ(aggs[0].values[0].mean(), 20.0);
  EXPECT_NEAR(aggs[0].values[0].stddev(), 8.1649658, 1e-6);
}

// -------------------------------------------------------- scenario space
TEST(ScenarioSpaceTest, RejectsUnknownAxisAndBadValues) {
  RunPoint point;
  point.params = {{"no-such-axis", "1"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);

  point.params = {{"flows", "many"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);

  point.params = {{"topology", "mesh"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);

  point.params = {{"itp", "sometimes"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);

  point.params = {{"frer", "maybe"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);

  point.params = {{"faults", "meteor-strike"}};
  EXPECT_THROW((void)scenario_for_point(point, 1), Error);
}

TEST(ScenarioSpaceTest, BindsFrerAndFaultAxes) {
  RunPoint point;
  point.params = {{"topology", "ring2"}, {"switches", "6"}, {"flows", "8"},
                  {"frer", "on"},        {"faults", "link-flap"},
                  {"duration-ms", "40"}, {"config", "customized"}};
  const netsim::ScenarioConfig cfg = scenario_for_point(point, 7);
  EXPECT_TRUE(cfg.use_frer);
  ASSERT_EQ(cfg.faults.scheduled.size(), 1u);
  EXPECT_EQ(cfg.faults.scheduled[0].kind, fault::FaultKind::kLinkFlap);
  // Profile timing follows the traffic window (flap starts at 30%).
  EXPECT_EQ(cfg.faults.scheduled[0].at, milliseconds(12));
  // FRER doubles the member streams; the preset tables must cover them.
  EXPECT_GE(cfg.options.resource.unicast_table_size, 2 * 8 + 16);

  // The default point stays fault-free with FRER off.
  RunPoint bare;
  const netsim::ScenarioConfig plain = scenario_for_point(bare, 7);
  EXPECT_FALSE(plain.use_frer);
  EXPECT_TRUE(plain.faults.empty());
}

TEST(ScenarioSpaceTest, BindsAxesOntoScenario) {
  RunPoint point;
  point.params = {{"topology", "ring"},  {"switches", "4"}, {"flows", "16"},
                  {"slot-us", "32.5"},   {"hops", "2"},     {"bg-mbps", "50"},
                  {"duration-ms", "25"}, {"config", "customized"}};
  const netsim::ScenarioConfig cfg = scenario_for_point(point, 99);
  EXPECT_EQ(cfg.built.switch_nodes.size(), 4u);
  EXPECT_EQ(cfg.options.runtime.slot_size.ns(), 32'500);
  EXPECT_EQ(cfg.options.seed, 99u);
  EXPECT_EQ(cfg.traffic_duration, milliseconds(25));
  // 16 TS flows + RC and BE background (bg-mbps sets both).
  EXPECT_EQ(cfg.flows.size(), 18u);
  // Presets grow their shared tables to fit the workload.
  EXPECT_GE(cfg.options.resource.unicast_table_size, 32);
}

}  // namespace
}  // namespace tsn::campaign
