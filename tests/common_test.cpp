// Unit and property tests for tsn_common: time, units, MAC addresses,
// RNG, math helpers, ring buffer, text tables.
#include <gtest/gtest.h>

#include <set>

#include "common/mac_address.hpp"
#include "common/math_util.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace tsn {
namespace {

using namespace tsn::literals;

// ------------------------------------------------------------------ time
TEST(DurationTest, ArithmeticAndComparison) {
  EXPECT_EQ((3_us + 500_ns).ns(), 3500);
  EXPECT_EQ((10_ms - 1_ms).ns(), 9'000'000);
  EXPECT_EQ((65_us * 4).ns(), 260'000);
  EXPECT_EQ(10_ms / 65_us, 153);  // the paper's period/slot ratio
  EXPECT_LT(64_us, 65_us);
  EXPECT_EQ(-(5_ns), Duration(-5));
}

TEST(DurationTest, UnitConversions) {
  EXPECT_DOUBLE_EQ((65_us).us(), 65.0);
  EXPECT_DOUBLE_EQ((10_ms).ms(), 10.0);
  EXPECT_DOUBLE_EQ((2_s).sec(), 2.0);
}

TEST(TimePointTest, DurationInterplay) {
  const TimePoint t(1'000'000);
  EXPECT_EQ((t + 65_us).ns(), 1'065'000);
  EXPECT_EQ((t - 1_us).ns(), 999'000);
  EXPECT_EQ(((t + 65_us) - t).ns(), 65'000);
}

TEST(SlotIndexTest, HalfOpenSlots) {
  const Duration slot = 65_us;
  EXPECT_EQ(slot_index(TimePoint(0), slot), 0);
  EXPECT_EQ(slot_index(TimePoint(64'999), slot), 0);
  EXPECT_EQ(slot_index(TimePoint(65'000), slot), 1);
  EXPECT_EQ(slot_index(TimePoint(-1), slot), -1);  // floor semantics
}

TEST(SlotIndexTest, NextBoundary) {
  const Duration slot = 65_us;
  EXPECT_EQ(next_slot_boundary(TimePoint(0), slot).ns(), 65'000);
  EXPECT_EQ(next_slot_boundary(TimePoint(64'999), slot).ns(), 65'000);
  EXPECT_EQ(next_slot_boundary(TimePoint(65'000), slot).ns(), 130'000);
}

TEST(DurationTest, ToStringPicksNaturalUnit) {
  EXPECT_EQ(to_string(65_us), "65us");
  EXPECT_EQ(to_string(10_ms), "10ms");
  EXPECT_EQ(to_string(512_ns), "512ns");
  EXPECT_EQ(to_string(2_s), "2s");
}

// ----------------------------------------------------------------- units
TEST(BitCountTest, Conversions) {
  EXPECT_EQ(BitCount::from_bytes(2048).bits(), 16384);
  EXPECT_EQ(BitCount::from_kilobits(18).bits(), 18432);
  EXPECT_DOUBLE_EQ(BitCount(17280).kilobits(), 16.875);  // one packet buffer
}

TEST(DataRateTest, TransmissionTimeIsExactFor64BAtGigabit) {
  // 64 B frame + 8 B preamble + 12 B IFG = 672 bits -> 672 ns at 1 Gbps.
  const auto rate = DataRate::gigabits_per_sec(1);
  EXPECT_EQ(rate.transmission_time(BitCount(672)).ns(), 672);
  EXPECT_EQ(rate.transmission_time(BitCount::from_bytes(64)).ns(), 512);
}

TEST(DataRateTest, BitsInWindow) {
  const auto rate = DataRate::megabits_per_sec(100);
  EXPECT_EQ(rate.bits_in(milliseconds(1)).bits(), 100'000);
  EXPECT_EQ(rate.bits_in(seconds(2)).bits(), 200'000'000);
}

TEST(DataRateTest, ScaledPercent) {
  EXPECT_EQ(DataRate::gigabits_per_sec(1).scaled_percent(30).bps(), 300'000'000);
}

// ------------------------------------------------------------------- MAC
TEST(MacAddressTest, RoundTripString) {
  const auto mac = MacAddress::parse("02:00:5e:10:ff:01");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:5e:10:ff:01");
}

TEST(MacAddressTest, RejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ff").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ff:0g").has_value());
  EXPECT_FALSE(MacAddress::parse("02-00-5e-10-ff-01").has_value());
  EXPECT_FALSE(MacAddress::parse("").has_value());
}

TEST(MacAddressTest, U64RoundTrip) {
  const MacAddress mac = MacAddress::from_u64(0x0200000000ABULL);
  EXPECT_EQ(mac.to_u64(), 0x0200000000ABULL);
  EXPECT_EQ(mac.octets()[5], 0xAB);
}

TEST(MacAddressTest, MulticastAndBroadcast) {
  EXPECT_TRUE(MacAddress::from_u64(0x010000000001ULL).is_multicast());
  EXPECT_FALSE(MacAddress::from_u64(0x020000000001ULL).is_multicast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
}

// ------------------------------------------------------------------- RNG
TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(99);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / kN, 42.0, 0.5);
}

TEST(RngTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(5, 4), Error);
  EXPECT_THROW((void)rng.exponential(0.0), Error);
  EXPECT_THROW((void)rng.index(0), Error);
}

// ------------------------------------------------------------------ math
TEST(MathTest, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1), 1u);
}

TEST(MathTest, LcmOfPeriodsIsSchedulingCycle) {
  const std::vector<Duration> periods = {milliseconds(2), milliseconds(5), milliseconds(10)};
  EXPECT_EQ(lcm_of_periods(periods), milliseconds(10));
  const std::vector<Duration> coprime = {milliseconds(3), milliseconds(7)};
  EXPECT_EQ(lcm_of_periods(coprime), milliseconds(21));
  EXPECT_THROW((void)lcm_of_periods({}), Error);
}

// ----------------------------------------------------------- ring buffer
TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, TailDropWhenFull) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_FALSE(rb.push(3));  // dropped, buffer unchanged
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.front(), 1);
}

TEST(RingBufferTest, AtIndexesFromFront) {
  RingBuffer<int> rb(3);
  ASSERT_TRUE(rb.push(7));
  ASSERT_TRUE(rb.push(8));
  EXPECT_EQ(rb.at(0), 7);
  EXPECT_EQ(rb.at(1), 8);
  EXPECT_THROW((void)rb.at(2), Error);
}

TEST(RingBufferTest, WrapsAroundManyTimes) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rb.push(i));
    EXPECT_EQ(rb.pop(), i);
  }
}

TEST(RingBufferTest, ErrorsOnEmptyAccess) {
  RingBuffer<int> rb(1);
  EXPECT_THROW((void)rb.front(), Error);
  EXPECT_THROW((void)rb.pop(), Error);
  EXPECT_THROW(RingBuffer<int>(0), Error);
}

// ------------------------------------------------------------ formatting
TEST(StringUtilTest, TrimmedFormatting) {
  EXPECT_EQ(format_trimmed(16.875, 3), "16.875");
  EXPECT_EQ(format_trimmed(72.0, 3), "72");
  EXPECT_EQ(format_trimmed(2106.0, 3), "2106");
}

TEST(StringUtilTest, Percent) { EXPECT_EQ(format_percent(0.8053), "80.53%"); }

TEST(TextTableTest, AlignsColumnsAndSeparators) {
  TextTable t;
  t.set_header({"A", "Bee"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"total", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| A     | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| total | 2   |"), std::string::npos);
  // Header rule + separator rule.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(TextTableTest, HeaderAfterRowsThrows) {
  TextTable t;
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"A"}), Error);
}

}  // namespace
}  // namespace tsn
