// Tests for the statistics engine and the TSN analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analyzer.hpp"
#include "analysis/histogram.hpp"
#include "analysis/stats.hpp"
#include "common/error.hpp"

namespace tsn::analysis {
namespace {

TEST(StreamingStatsTest, MeanStddevMinMax) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(StreamingStatsTest, MergeEqualsCombinedStream) {
  StreamingStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i * 0.1;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  StreamingStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
  EXPECT_THROW((void)s.percentile(101), Error);
  SampleStats empty;
  EXPECT_THROW((void)empty.percentile(50), Error);
}

// ---------------------------------------------------------------- Analyzer
net::Packet delivered_packet(net::FlowId id, TimePoint injected, Duration deadline,
                             net::TrafficClass cls = net::TrafficClass::kTimeSensitive) {
  net::Packet p;
  p.meta.flow_id = id;
  p.meta.injected_at = injected;
  p.meta.deadline = deadline;
  p.meta.traffic_class = cls;
  return p;
}

TEST(AnalyzerTest, LatencyAndLossAccounting) {
  Analyzer an;
  an.record_injection(1, net::TrafficClass::kTimeSensitive);
  an.record_injection(1, net::TrafficClass::kTimeSensitive);
  an.record_injection(1, net::TrafficClass::kTimeSensitive);
  an.record_delivery(delivered_packet(1, TimePoint(0), milliseconds(1)), TimePoint(130'000));
  an.record_delivery(delivered_packet(1, TimePoint(100), milliseconds(1)),
                     TimePoint(195'100));

  const FlowRecord& rec = an.flow(1);
  EXPECT_EQ(rec.injected, 3u);
  EXPECT_EQ(rec.received, 2u);
  EXPECT_EQ(rec.deadline_misses, 0u);
  EXPECT_NEAR(rec.latency_us.mean(), (130.0 + 195.0) / 2, 1e-6);

  const ClassSummary ts = an.summary(net::TrafficClass::kTimeSensitive);
  EXPECT_EQ(ts.lost(), 1u);
  EXPECT_NEAR(ts.loss_rate(), 1.0 / 3.0, 1e-9);
}

TEST(AnalyzerTest, DeadlineMissDetected) {
  Analyzer an;
  an.record_injection(7, net::TrafficClass::kTimeSensitive);
  // 2 ms latency against a 1 ms deadline.
  an.record_delivery(delivered_packet(7, TimePoint(0), milliseconds(1)),
                     TimePoint(2'000'000));
  EXPECT_EQ(an.flow(7).deadline_misses, 1u);
}

TEST(AnalyzerTest, ClassesSeparated) {
  Analyzer an;
  an.record_injection(1, net::TrafficClass::kTimeSensitive);
  an.record_injection(2, net::TrafficClass::kBestEffort);
  an.record_delivery(delivered_packet(1, TimePoint(0), milliseconds(1)), TimePoint(1000));
  an.record_delivery(
      delivered_packet(2, TimePoint(0), Duration(0), net::TrafficClass::kBestEffort),
      TimePoint(50'000));
  EXPECT_EQ(an.summary(net::TrafficClass::kTimeSensitive).received, 1u);
  EXPECT_EQ(an.summary(net::TrafficClass::kBestEffort).received, 1u);
  EXPECT_EQ(an.summary(net::TrafficClass::kRateConstrained).received, 0u);
}

TEST(AnalyzerTest, JitterIsLatencyStddev) {
  Analyzer an;
  for (int i = 0; i < 4; ++i) an.record_injection(3, net::TrafficClass::kTimeSensitive);
  for (const std::int64_t lat_us : {100, 120, 140, 160}) {
    an.record_delivery(delivered_packet(3, TimePoint(0), milliseconds(1)),
                       TimePoint(lat_us * 1000));
  }
  const ClassSummary ts = an.summary(net::TrafficClass::kTimeSensitive);
  EXPECT_NEAR(ts.avg_latency_us(), 130.0, 1e-9);
  EXPECT_NEAR(ts.jitter_us(), std::sqrt(500.0), 1e-6);
}

TEST(AnalyzerTest, ReportMentionsClasses) {
  Analyzer an;
  an.record_injection(1, net::TrafficClass::kTimeSensitive);
  an.record_delivery(delivered_packet(1, TimePoint(0), milliseconds(1)), TimePoint(1000));
  const std::string report = an.report();
  EXPECT_NE(report.find("TS:"), std::string::npos);
  EXPECT_EQ(report.find("BE:"), std::string::npos);  // no BE traffic
  EXPECT_NE(report.find("loss=0.00%"), std::string::npos);
}

TEST(AnalyzerTest, UnknownFlowThrows) {
  Analyzer an;
  EXPECT_THROW((void)an.flow(99), Error);
  EXPECT_FALSE(an.has_flow(99));
}



TEST(AnalyzerTest, CsvExport) {
  Analyzer an;
  an.record_injection(2, net::TrafficClass::kTimeSensitive);
  an.record_injection(2, net::TrafficClass::kTimeSensitive);
  an.record_injection(1, net::TrafficClass::kBestEffort);
  an.record_delivery(delivered_packet(2, TimePoint(0), milliseconds(1)), TimePoint(130'000));
  const std::string csv = an.to_csv();
  // Header, then flows sorted by id; flow 1 has no latency samples.
  EXPECT_NE(csv.find("flow,class,injected"), std::string::npos);
  const auto row1 = csv.find("1,BE,1,0,0,,,,,");
  const auto row2 = csv.find("2,TS,2,1,0,130.000,");
  EXPECT_NE(row1, std::string::npos) << csv;
  EXPECT_NE(row2, std::string::npos) << csv;
  EXPECT_LT(row1, row2);
}

// --------------------------------------------------------------- Histogram
TEST(HistogramTest, BinsAndOutliers) {
  Histogram h(0.0, 100.0, 10);
  h.add(5.0);    // bin 0
  h.add(15.0);   // bin 1
  h.add(15.5);   // bin 1
  h.add(99.9);   // bin 9
  h.add(-1.0);   // underflow
  h.add(100.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
}

TEST(HistogramTest, RenderTrimsEmptyEnds) {
  Histogram h(0.0, 100.0, 10);
  h.add(45.0);
  h.add(46.0);
  h.add(55.0);
  const std::string out = h.render_ascii(10);
  EXPECT_NE(out.find("[40, 50) 2"), std::string::npos);
  EXPECT_NE(out.find("[50, 60) 1"), std::string::npos);
  EXPECT_EQ(out.find("[0, 10)"), std::string::npos);  // trimmed
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(0.0, 100.0, 0), Error);
  EXPECT_THROW(Histogram(10.0, 10.0, 5), Error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bin(2), Error);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(-5.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
}  // namespace tsn::analysis
