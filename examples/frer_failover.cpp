// FRER failover demo (802.1CB, the TSN "flow integrity" standard family
// cited in the paper's introduction): TS streams replicated over the two
// directions of a bidirectional ring survive a mid-run link failure with
// zero loss, while unprotected streams lose every packet after the cut.
//
//   $ ./frer_failover
#include <cstdio>

#include "common/string_util.hpp"
#include "event/simulator.hpp"
#include "netsim/network.hpp"
#include "sched/itp.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

using namespace tsn;
using namespace tsn::literals;

namespace {

struct Outcome {
  analysis::ClassSummary ts;
  std::uint64_t duplicates_eliminated = 0;
  std::uint64_t link_drops = 0;
};

Outcome run(bool frer) {
  event::Simulator sim;
  topo::BuiltTopology built = topo::make_ring_bidirectional(6);

  netsim::NetworkOptions opts;
  opts.seed = 99;
  opts.resource.classification_table_size = 300;
  opts.resource.unicast_table_size = 300;

  traffic::TsWorkloadParams params;
  params.flow_count = 128;
  std::vector<traffic::FlowSpec> flows =
      traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], params);
  sched::ItpPlanner planner(built.topology, opts.runtime.slot_size);
  planner.plan(flows).apply(flows);

  netsim::Network net(sim, built.topology, opts);
  std::int64_t failures = 0;
  if (frer) {
    for (const traffic::FlowSpec& f : flows) {
      failures += net.provision_frer(f, static_cast<VlanId>(2000 + f.id));
    }
  } else {
    failures = net.provision(flows);
  }
  if (failures != 0) std::fprintf(stderr, "provisioning failures: %lld\n",
                                  static_cast<long long>(failures));

  net.start_network();
  (void)sim.run_until(TimePoint(0) + 150_ms);
  net.start_traffic(TimePoint(0) + 151_ms);

  // 100 ms healthy, then cut the first inter-switch link of the primary
  // (clockwise) path, then 100 ms degraded.
  (void)sim.run_until(TimePoint(0) + 250_ms);
  const auto hops = *built.topology.route(built.host_nodes[0], built.host_nodes[2]);
  for (const topo::Hop& hop : hops) {
    const topo::Link& l = built.topology.link(hop.link);
    if (built.topology.node(l.node_a).kind == topo::NodeKind::kSwitch &&
        built.topology.node(l.node_b).kind == topo::NodeKind::kSwitch) {
      std::printf("  [t=100ms of traffic] cutting ring link %s <-> %s\n",
                  built.topology.node(l.node_a).name.c_str(),
                  built.topology.node(l.node_b).name.c_str());
      net.set_link_state(hop.link, false);
      break;
    }
  }
  (void)sim.run_until(TimePoint(0) + 350_ms);
  net.stop_traffic();
  (void)sim.run_until(sim.now() + 20_ms);

  Outcome out;
  out.ts = net.analyzer().summary(net::TrafficClass::kTimeSensitive);
  out.duplicates_eliminated = net.nic_at(built.host_nodes[2]).frer_discarded();
  out.link_drops = net.link_drops();
  return out;
}

}  // namespace

int main() {
  std::printf("== FRER failover: 128 TS streams, bidirectional 6-switch ring ==\n\n");

  std::printf("--- without replication ---\n");
  const Outcome plain = run(false);
  std::printf("  delivered %llu / %llu (loss %s), frames eaten by the dead link: %llu\n\n",
              static_cast<unsigned long long>(plain.ts.received),
              static_cast<unsigned long long>(plain.ts.injected),
              format_percent(plain.ts.loss_rate()).c_str(),
              static_cast<unsigned long long>(plain.link_drops));

  std::printf("--- with 802.1CB replication + sequence recovery ---\n");
  const Outcome frer = run(true);
  std::printf("  delivered %llu / %llu (loss %s), duplicates eliminated: %llu,\n"
              "  frames eaten by the dead link: %llu\n",
              static_cast<unsigned long long>(frer.ts.received),
              static_cast<unsigned long long>(frer.ts.injected),
              format_percent(frer.ts.loss_rate()).c_str(),
              static_cast<unsigned long long>(frer.duplicates_eliminated),
              static_cast<unsigned long long>(frer.link_drops));
  std::printf("  avg latency %.1fus, jitter %.2fus\n\n", frer.ts.avg_latency_us(),
              frer.ts.jitter_us());
  std::printf("Expected shape: ~50%% loss without FRER (everything after the cut);\n"
              "zero loss with FRER — the disjoint member carries on seamlessly.\n");
  return 0;
}
