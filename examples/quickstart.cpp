// Quickstart: customize a resource-efficient TSN switch with TSN-Builder,
// compare its BRAM footprint against the BCM53154 COTS baseline, and run
// TS traffic through a small ring to confirm the QoS is unchanged.
//
//   $ ./quickstart
#include <cstdio>

#include "builder/api.hpp"
#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "common/string_util.hpp"
#include "netsim/scenario.hpp"
#include "sched/cqf_analysis.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

using namespace tsn;

int main() {
  std::printf("== TSN-Builder quickstart ==\n\n");

  // --- 1. Customize the resource parameters through the Table II APIs ---
  builder::CustomizationApi api;
  api.set_switch_tbl(1024, 0)
      .set_class_tbl(1024)
      .set_meter_tbl(1024)
      .set_gate_tbl(2, 8, 1)   // CQF needs 2 gate entries; 8 queues; 1 TSN port (ring)
      .set_cbs_tbl(3, 3, 1)    // three RC queues
      .set_queues(12, 8, 1)    // depth from the ITP analysis
      .set_buffers(96, 1);     // depth x queues

  builder::SwitchBuilder bld;
  bld.with_resources(api);

  // --- 2. Price it against the commercial baseline --------------------
  builder::SwitchBuilder commercial;
  commercial.with_resources(builder::bcm53154_reference());
  const resource::ResourceReport base_report = commercial.report();
  const resource::ResourceReport custom_report = bld.report();

  std::printf("Customized switch (ring, 1 TSN port):\n%s\n",
              custom_report.render(base_report).c_str());
  std::printf("Commercial baseline total: %sKb\n",
              format_trimmed(base_report.total().kilobits(), 3).c_str());
  std::printf("Memory saved: %s\n\n",
              format_percent(custom_report.reduction_vs(base_report)).c_str());

  // --- 3. Run TS traffic through a 3-switch ring ----------------------
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(3);
  cfg.options.resource = api.config();
  cfg.options.runtime.slot_size = microseconds(65);

  traffic::TsWorkloadParams ts;
  ts.flow_count = 64;
  ts.frame_bytes = 64;
  ts.period = milliseconds(10);
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2], ts);
  cfg.traffic_duration = milliseconds(100);

  const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));

  std::printf("TS flows over 2 ring hops (slot = 65us):\n");
  std::printf("  injected=%llu received=%llu loss=%s\n",
              static_cast<unsigned long long>(result.ts.injected),
              static_cast<unsigned long long>(result.ts.received),
              format_percent(result.ts.loss_rate()).c_str());
  std::printf("  latency avg=%.1fus jitter=%.2fus min=%.1fus max=%.1fus\n",
              result.ts.avg_latency_us(), result.ts.jitter_us(), result.ts.latency_us.min(),
              result.ts.latency_us.max());
  const auto bounds = sched::cqf_bounds(2, microseconds(65));
  std::printf("  CQF bounds (Eq.1, hop=2): [%.0fus, %.0fus]\n", bounds.min.us(),
              bounds.max.us());
  std::printf("  max gPTP sync error: %lldns\n",
              static_cast<long long>(result.max_sync_error.ns()));
  std::printf("  peak TS queue occupancy: %lld (provisioned depth 12)\n",
              static_cast<long long>(result.peak_ts_queue));
  return 0;
}
