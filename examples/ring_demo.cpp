// Ring demo — the paper's Fig. 6 testbed: six TSN switches in a
// unidirectional ring (each with one enabled TSN port), a TSNNic tester
// injecting 1024 TS flows plus RC/BE background, and a TSN analyzer
// measuring latency, jitter and loss per class.
//
//   $ ./ring_demo
#include <cstdio>

#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "common/string_util.hpp"
#include "netsim/scenario.hpp"
#include "sched/cqf_analysis.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

using namespace tsn;
using namespace tsn::literals;

int main() {
  std::printf("== TSN-Builder ring demo (6 switches, unidirectional) ==\n\n");

  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(6);

  // Customized resource configuration for the ring (1 enabled TSN port).
  cfg.options.resource = builder::paper_customized(1);
  cfg.options.resource.classification_table_size = 1040;  // 1024 TS + background
  cfg.options.resource.unicast_table_size = 1040;
  cfg.options.resource.meter_table_size = 1040;
  // The 10 ms TS periods drift across the 65 us slot grid, so a frame can
  // slip into the adjacent CQF cell: the static backlog bound is 14
  // frames per queue, beyond the 12-deep paper default.
  cfg.options.resource.queue_depth = 16;
  cfg.options.resource.buffers_per_port =
      cfg.options.resource.queue_depth * cfg.options.resource.queues_per_port;
  cfg.options.runtime.slot_size = 65_us;
  cfg.options.max_drift_ppm = 20.0;
  cfg.options.seed = 2020;

  // The paper's workload: 1024 periodic TS flows (64 B, 10 ms period,
  // deadlines from {1,2,4,8} ms per IEC 60802), traversing 4 switches.
  traffic::TsWorkloadParams params;
  params.flow_count = 1024;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[3],
                                     params);

  // Background RC + BE from a dedicated tester port on the first switch.
  const topo::NodeId bg_host = cfg.built.topology.add_host("tester-bg");
  cfg.built.topology.connect(cfg.built.switch_nodes[0], bg_host, Duration(50));
  cfg.flows.push_back(traffic::make_rc_flow(9000, bg_host, cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(200)));
  cfg.flows.push_back(traffic::make_be_flow(9001, bg_host, cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(200)));

  cfg.warmup = 200_ms;  // let gPTP converge
  cfg.traffic_duration = 200_ms;

  std::printf("Running: 1024 TS flows over 4 ring hops + 200 Mbps RC + 200 Mbps BE...\n\n");
  const netsim::ScenarioResult r = netsim::run_scenario(std::move(cfg));

  const auto bounds = sched::cqf_bounds(4, 65_us);
  std::printf("TS : recv=%llu loss=%s avg=%.1fus jitter=%.2fus range=[%.1f, %.1f]us\n",
              static_cast<unsigned long long>(r.ts.received),
              format_percent(r.ts.loss_rate()).c_str(), r.ts.avg_latency_us(),
              r.ts.jitter_us(), r.ts.latency_us.min(), r.ts.latency_us.max());
  std::printf("     CQF Eq.(1) bounds for 4 hops: [%.0f, %.0f]us; deadline misses: %llu\n",
              bounds.min.us(), bounds.max.us(),
              static_cast<unsigned long long>(r.ts.deadline_misses));
  std::printf("RC : recv=%llu loss=%s avg=%.1fus\n",
              static_cast<unsigned long long>(r.rc.received),
              format_percent(r.rc.loss_rate()).c_str(), r.rc.avg_latency_us());
  std::printf("BE : recv=%llu loss=%s avg=%.1fus\n",
              static_cast<unsigned long long>(r.be.received),
              format_percent(r.be.loss_rate()).c_str(), r.be.avg_latency_us());
  std::printf("\nnetwork: switch drops=%llu, peak TS queue=%lld/16, peak buffers=%lld/128, "
              "max sync error=%lldns\n",
              static_cast<unsigned long long>(r.switch_drops),
              static_cast<long long>(r.peak_ts_queue),
              static_cast<long long>(r.peak_buffer_in_use),
              static_cast<long long>(r.max_sync_error.ns()));

  if (!r.ts_latency_histogram.empty()) {
    std::printf("\nTS latency distribution (us, per-flow percentile samples):\n%s",
                r.ts_latency_histogram.c_str());
  }

  builder::SwitchBuilder bld;
  bld.with_resources(builder::paper_customized(1));
  builder::SwitchBuilder base;
  base.with_resources(builder::bcm53154_reference());
  std::printf("per-switch BRAM: %sKb (commercial: %sKb, saved %s)\n",
              format_trimmed(bld.report().total().kilobits(), 3).c_str(),
              format_trimmed(base.report().total().kilobits(), 3).c_str(),
              format_percent(bld.report().reduction_vs(base.report())).c_str());
  return 0;
}
