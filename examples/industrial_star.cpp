// Industrial-control star network: a core switch with three production
// cells (the paper's star scenario, 3 enabled TSN ports on the core).
// Cross-cell TS flows traverse leaf -> core -> leaf; cells also push RC
// sensor streams to a controller. Demonstrates multi-talker provisioning
// and the star resource customization.
//
//   $ ./industrial_star
#include <cstdio>

#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "common/string_util.hpp"
#include "netsim/scenario.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

using namespace tsn;
using namespace tsn::literals;

int main() {
  std::printf("== Industrial star: core + 3 production cells ==\n\n");

  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_star(3);  // switches: core, leaf0..2; hosts h0..h3
  cfg.options.resource = builder::paper_customized(3);
  cfg.options.resource.classification_table_size = 1024;
  cfg.options.resource.unicast_table_size = 1024;
  cfg.options.resource.meter_table_size = 1024;
  // The 10 ms TS periods drift across the 65 us slot grid, so a frame can
  // slip into the adjacent CQF cell: the static backlog bound is 14
  // frames per queue, beyond the 12-deep paper default.
  cfg.options.resource.queue_depth = 16;
  cfg.options.resource.buffers_per_port =
      cfg.options.resource.queue_depth * cfg.options.resource.queues_per_port;
  cfg.options.seed = 60802;

  // Each cell talks to the next (1 -> 2 -> 3 -> 1), 256 TS flows each,
  // three switch hops per path (leaf -> core -> leaf).
  traffic::TsWorkloadParams params;
  params.flow_count = 256;
  for (std::size_t cell = 1; cell <= 3; ++cell) {
    const std::size_t next = cell == 3 ? 1 : cell + 1;
    params.seed = 100 + cell;
    params.first_vid = static_cast<VlanId>(cell * 300);
    auto flows = traffic::make_ts_flows(cfg.built.host_nodes[cell],
                                        cfg.built.host_nodes[next], params,
                                        static_cast<net::FlowId>(cell * 1000));
    cfg.flows.insert(cfg.flows.end(), flows.begin(), flows.end());
  }
  // RC sensor aggregation from cells 2 and 3 to the controller at cell 1.
  for (std::size_t cell = 2; cell <= 3; ++cell) {
    cfg.flows.push_back(traffic::make_rc_flow(
        static_cast<net::FlowId>(9000 + cell), cfg.built.host_nodes[cell],
        cfg.built.host_nodes[1], DataRate::megabits_per_sec(100), 1024,
        traffic::kRcPriorityHigh, static_cast<VlanId>(3900 + cell)));
  }

  cfg.warmup = 200_ms;
  cfg.traffic_duration = 200_ms;

  std::printf("Running: 3x256 cross-cell TS flows + 2x100 Mbps RC aggregation...\n\n");
  const netsim::ScenarioResult r = netsim::run_scenario(std::move(cfg));

  std::printf("TS : recv=%llu loss=%s avg=%.1fus jitter=%.2fus misses=%llu\n",
              static_cast<unsigned long long>(r.ts.received),
              format_percent(r.ts.loss_rate()).c_str(), r.ts.avg_latency_us(),
              r.ts.jitter_us(), static_cast<unsigned long long>(r.ts.deadline_misses));
  std::printf("RC : recv=%llu loss=%s avg=%.1fus\n",
              static_cast<unsigned long long>(r.rc.received),
              format_percent(r.rc.loss_rate()).c_str(), r.rc.avg_latency_us());
  std::printf("net: drops=%llu peak TS queue=%lld/16 sync err=%lldns itp peak=%lld\n\n",
              static_cast<unsigned long long>(r.switch_drops),
              static_cast<long long>(r.peak_ts_queue),
              static_cast<long long>(r.max_sync_error.ns()),
              static_cast<long long>(r.plan.max_queue_load));

  builder::SwitchBuilder star;
  star.with_resources(builder::paper_customized(3));
  builder::SwitchBuilder base;
  base.with_resources(builder::bcm53154_reference());
  std::printf("star switch BRAM: %sKb (saved %s vs BCM53154)\n",
              format_trimmed(star.report().total().kilobits(), 3).c_str(),
              format_percent(star.report().reduction_vs(base.report())).c_str());
  return 0;
}
