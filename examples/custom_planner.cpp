// Custom planner walk-through: start from an application description
// (topology + flows), let ParameterPlanner derive the resource
// configuration per the paper's §III.C guidelines, inspect the rationale,
// synthesize the switch, and verify the plan by simulation.
//
//   $ ./custom_planner
#include <cstdio>

#include "builder/planner.hpp"
#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "common/string_util.hpp"
#include "netsim/scenario.hpp"
#include "sched/cqf_analysis.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

using namespace tsn;
using namespace tsn::literals;

int main() {
  std::printf("== Application-driven parameter planning ==\n\n");

  // 1. Describe the application: a 4-switch linear production line with
  //    600 periodic TS flows and two RC camera streams.
  topo::BuiltTopology built = topo::make_linear(4);
  traffic::TsWorkloadParams params;
  params.flow_count = 600;
  params.frame_bytes = 128;
  params.period = 10_ms;
  std::vector<traffic::FlowSpec> flows =
      traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[3], params);
  flows.push_back(traffic::make_rc_flow(8000, built.host_nodes[1], built.host_nodes[3],
                                        DataRate::megabits_per_sec(150), 1024,
                                        traffic::kRcPriorityHigh, 4001));
  flows.push_back(traffic::make_rc_flow(8001, built.host_nodes[2], built.host_nodes[3],
                                        DataRate::megabits_per_sec(150), 1024,
                                        traffic::kRcPriorityMid, 4002));

  // 2. Pick the largest CQF slot that still meets every deadline, then
  //    plan the resource parameters.
  const auto slot = sched::max_feasible_slot(built.topology, flows);
  std::printf("max feasible slot for all deadlines: %s\n",
              slot ? to_string(*slot).c_str() : "none");

  builder::PlannerInput input;
  input.topology = &built.topology;
  input.flows = flows;
  input.slot = slot.value_or(65_us);
  const builder::PlannerOutput plan = builder::ParameterPlanner::plan(input);

  std::printf("\nplanner rationale:\n%s\n", plan.rationale.c_str());

  // 3. Price the planned configuration against the COTS baseline.
  builder::SwitchBuilder bld;
  bld.with_resources(plan.config);
  builder::SwitchBuilder base;
  base.with_resources(builder::bcm53154_reference());
  std::printf("planned switch resources:\n%s\n",
              bld.report().render(base.report()).c_str());

  // 4. Verify by simulation: run the planned network and compare the
  //    measured peaks with the provisioned parameters.
  netsim::ScenarioConfig cfg;
  cfg.built = std::move(built);
  cfg.options.resource = plan.config;
  cfg.options.runtime.slot_size = input.slot;
  cfg.flows = std::move(flows);
  cfg.warmup = 200_ms;
  cfg.traffic_duration = 150_ms;
  const netsim::ScenarioResult r = netsim::run_scenario(std::move(cfg));

  std::printf("verification: TS loss=%s, deadline misses=%llu, drops=%llu\n",
              format_percent(r.ts.loss_rate()).c_str(),
              static_cast<unsigned long long>(r.ts.deadline_misses),
              static_cast<unsigned long long>(r.switch_drops));
  std::printf("  provisioned queue depth %lld vs measured peak %lld\n",
              static_cast<long long>(plan.config.queue_depth),
              static_cast<long long>(r.peak_ts_queue));
  std::printf("  provisioned buffers %lld vs measured peak %lld\n",
              static_cast<long long>(plan.config.buffers_per_port),
              static_cast<long long>(r.peak_buffer_in_use));
  std::printf("  TS avg latency %.1fus (jitter %.2fus), sync error %lldns\n",
              r.ts.avg_latency_us(), r.ts.jitter_us(),
              static_cast<long long>(r.max_sync_error.ns()));
  return 0;
}
