#include "tables/token_bucket.hpp"

namespace tsn::tables {

TokenBucket::TokenBucket(DataRate rate, std::int64_t burst_bytes)
    : rate_(rate), burst_bytes_(burst_bytes), tokens_bytes_(burst_bytes) {
  require(rate.bps() > 0, "TokenBucket: rate must be positive");
  require(burst_bytes > 0, "TokenBucket: burst must be positive");
}

void TokenBucket::refill(TimePoint now) {
  if (now <= last_refill_) return;
  const Duration elapsed = now - last_refill_;
  last_refill_ = now;
  const std::int64_t new_bits = rate_.bits_in(elapsed).bits() + remainder_bits_;
  tokens_bytes_ += new_bits / 8;
  remainder_bits_ = new_bits % 8;
  if (tokens_bytes_ >= burst_bytes_) {
    tokens_bytes_ = burst_bytes_;
    remainder_bits_ = 0;
  }
}

bool TokenBucket::offer(TimePoint now, std::int64_t bytes) {
  refill(now);
  if (bytes > tokens_bytes_) return false;
  tokens_bytes_ -= bytes;
  return true;
}

std::int64_t TokenBucket::tokens_at(TimePoint now) {
  refill(now);
  return tokens_bytes_;
}

void TokenBucket::reset(TimePoint now) {
  tokens_bytes_ = burst_bytes_;
  remainder_bits_ = 0;
  last_refill_ = now;
}

MeterTable::MeterTable(std::size_t capacity) : capacity_(capacity) {
  require(capacity > 0, "MeterTable: capacity must be positive");
  meters_.reserve(capacity);
}

MeterId MeterTable::install(DataRate rate, std::int64_t burst_bytes) {
  if (meters_.size() >= capacity_) return kNoMeter;
  meters_.emplace_back(rate, burst_bytes);
  return static_cast<MeterId>(meters_.size() - 1);
}

bool MeterTable::offer(MeterId id, TimePoint now, std::int64_t bytes) {
  if (id == kNoMeter || id >= meters_.size()) return true;
  return meters_[id].offer(now, bytes);
}

TokenBucket& MeterTable::meter(MeterId id) {
  require(id < meters_.size(), "MeterTable::meter: id out of range");
  return meters_[id];
}

}  // namespace tsn::tables
