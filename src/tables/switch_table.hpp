// Forwarding tables of the Packet Switch template (paper Fig. 4):
//  * unicast table:   (Dst MAC, VID) -> outport
//  * multicast table: MC ID -> set of outports
//
// Entry width (unicast): 48 b MAC + 12 b VID + port field, padded to the
// 72 b the paper charges per entry.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/mac_address.hpp"
#include "tables/exact_match_table.hpp"

namespace tsn::tables {

using PortIndex = std::uint8_t;
inline constexpr std::int64_t kUnicastEntryBits = 72;
inline constexpr std::int64_t kMulticastEntryBits = 72;

struct UnicastKey {
  MacAddress dst;
  VlanId vid = 0;
  bool operator==(const UnicastKey&) const = default;
};

struct UnicastKeyHash {
  std::size_t operator()(const UnicastKey& k) const noexcept {
    // 48-bit MAC and 12-bit VID pack losslessly into 60 bits.
    return std::hash<std::uint64_t>{}(k.dst.to_u64() ^ (static_cast<std::uint64_t>(k.vid) << 48));
  }
};

using UnicastTable = ExactMatchTable<UnicastKey, PortIndex, UnicastKeyHash>;

/// Multicast group id -> member port bitmap (bit i == port i).
using MulticastTable = ExactMatchTable<std::uint16_t, std::uint32_t>;

/// Expands a port bitmap into port indices.
[[nodiscard]] inline std::vector<PortIndex> ports_from_bitmap(std::uint32_t bitmap) {
  std::vector<PortIndex> ports;
  for (PortIndex p = 0; p < 32; ++p) {
    if (bitmap & (1u << p)) ports.push_back(p);
  }
  return ports;
}

}  // namespace tsn::tables
