// Token-bucket meters — the policing elements of the Ingress Filter
// template (paper Fig. 5: "the CBS is implemented based on a token bucket";
// the ingress meters regulate each flow with its current rate).
//
// Entry width: rate + bucket state fields, charged as 68 b per the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "tables/classification_table.hpp"

namespace tsn::tables {

inline constexpr std::int64_t kMeterEntryBits = 68;

/// Single-rate two-color token bucket. Tokens are bytes; refill is lazy
/// (computed from the elapsed time on each offer), which is both exact and
/// event-friendly.
class TokenBucket {
 public:
  /// `rate` — committed information rate; `burst_bytes` — bucket capacity.
  TokenBucket(DataRate rate, std::int64_t burst_bytes);

  /// Offers a packet of `bytes` at time `now`. Green -> tokens consumed,
  /// returns true. Red -> state unchanged, returns false (caller drops).
  [[nodiscard]] bool offer(TimePoint now, std::int64_t bytes);

  [[nodiscard]] DataRate rate() const { return rate_; }
  [[nodiscard]] std::int64_t burst_bytes() const { return burst_bytes_; }
  /// Tokens available at `now` (refills as a side effect).
  [[nodiscard]] std::int64_t tokens_at(TimePoint now);

  void reset(TimePoint now);

 private:
  void refill(TimePoint now);

  DataRate rate_;
  std::int64_t burst_bytes_;
  // Token state: whole bytes plus a sub-byte remainder (in bits) to keep
  // long-run throughput exact regardless of event spacing.
  std::int64_t tokens_bytes_;
  std::int64_t remainder_bits_ = 0;
  TimePoint last_refill_{};
};

/// The meter table: a fixed-capacity array of token buckets indexed by the
/// Meter ID produced by the classification table.
class MeterTable {
 public:
  explicit MeterTable(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return meters_.size(); }

  /// Installs a meter; returns its id, or kNoMeter when the table is full.
  [[nodiscard]] MeterId install(DataRate rate, std::int64_t burst_bytes);

  /// Polices a packet. Unknown/kNoMeter ids pass (TS flows are unmetered).
  [[nodiscard]] bool offer(MeterId id, TimePoint now, std::int64_t bytes);

  [[nodiscard]] TokenBucket& meter(MeterId id);

  void clear() { meters_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<TokenBucket> meters_;
};

}  // namespace tsn::tables
