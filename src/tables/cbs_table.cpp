#include "tables/cbs_table.hpp"

namespace tsn::tables {

bool CbsMapTable::bind(QueueId queue, CbsIndex cbs) {
  for (Entry& e : entries_) {
    if (e.queue == queue) {
      e.cbs = cbs;
      return true;
    }
  }
  if (entries_.size() >= capacity_) return false;
  entries_.push_back(Entry{queue, cbs});
  return true;
}

CbsIndex CbsMapTable::shaper_for(QueueId queue) const {
  for (const Entry& e : entries_) {
    if (e.queue == queue) return e.cbs;
  }
  return kNoCbs;
}

CbsIndex CbsTable::install(CbsConfig config) {
  if (configs_.size() >= capacity_) return kNoCbs;
  configs_.push_back(config);
  return static_cast<CbsIndex>(configs_.size() - 1);
}

const CbsConfig& CbsTable::config(CbsIndex i) const {
  require(i < configs_.size(), "CbsTable::config: index out of range");
  return configs_[i];
}

}  // namespace tsn::tables
