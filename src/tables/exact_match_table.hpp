// Capacity-bounded exact-match table.
//
// Models an on-chip lookup table: the entry count is a synthesis-time
// resource parameter (paper API set_switch_tbl etc.), so insertion beyond
// capacity FAILS instead of growing — exactly the failure mode a
// mis-provisioned COTS switch hits when an application needs more flows
// than the chip's fixed partitioning provides.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"

namespace tsn::tables {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ExactMatchTable {
 public:
  explicit ExactMatchTable(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "ExactMatchTable: capacity must be positive");
    map_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool full() const { return map_.size() >= capacity_; }

  /// Inserts or updates. Returns false (table unchanged) when inserting a
  /// new key into a full table.
  [[nodiscard]] bool insert(const Key& key, Value value) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second = std::move(value);
      return true;
    }
    if (full()) return false;
    map_.emplace(key, std::move(value));
    return true;
  }

  /// Lookup; nullopt on miss (the dataplane treats a miss as "flood or
  /// drop" per its own policy).
  [[nodiscard]] std::optional<Value> lookup(const Key& key) const {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const Key& key) const { return map_.contains(key); }

  bool erase(const Key& key) { return map_.erase(key) > 0; }

  void clear() { map_.clear(); }

 private:
  std::size_t capacity_;
  std::unordered_map<Key, Value, Hash> map_;
};

}  // namespace tsn::tables
