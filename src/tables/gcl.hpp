// Gate Control List storage (IEEE 802.1Qbv, paper Fig. 4 In/Out Gate
// tables).
//
// A GCL is a fixed-capacity cyclic program: entry i holds a gate-state
// bitmap (bit q == 1 means queue q's gate is OPEN) for a time interval.
// The capacity is the `gate_size` resource parameter; with CQF the whole
// program is 2 entries (paper §IV.B), which is exactly why the customized
// gate tables are so small.
//
// Entry width: 8 b gate bitmap + 9 b interval field = 17 b (paper width).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace tsn::tables {

inline constexpr std::int64_t kGateEntryBits = 17;

using GateBitmap = std::uint8_t;  // one bit per queue, up to 8 queues
inline constexpr GateBitmap kAllGatesOpen = 0xFF;

struct GateEntry {
  GateBitmap gate_states = kAllGatesOpen;
  Duration interval{};
  bool operator==(const GateEntry&) const = default;
};

class GateControlList {
 public:
  /// `capacity` — the synthesized gate table size (entries).
  explicit GateControlList(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Appends a program entry; returns false when the table is full.
  [[nodiscard]] bool add_entry(GateEntry entry);

  void clear() { entries_.clear(); }

  [[nodiscard]] const GateEntry& entry(std::size_t i) const;

  /// Total program duration (sum of entry intervals).
  [[nodiscard]] Duration cycle_time() const;

  /// Position within the cyclic program at `offset` past the cycle base.
  struct Position {
    std::size_t index = 0;        // active entry
    Duration remaining{};         // time until the next entry takes over
  };
  [[nodiscard]] Position position_at(Duration offset_in_cycle) const;

  /// Gate bitmap active at `offset` past the cycle base. An empty GCL
  /// leaves all gates open (802.1Qbv default when no program is running).
  [[nodiscard]] GateBitmap gates_at(Duration offset_in_cycle) const;

 private:
  std::size_t capacity_;
  std::vector<GateEntry> entries_;
};

/// Builds the 2-entry CQF gate program (802.1Qch). The two TS queues
/// `queue_a` and `queue_b` alternate every `slot`:
///  * ingress list: A open on even slots, B on odd slots;
///  * egress list: the mirror image (B drains while A fills).
/// Gates of all queues outside {A, B} follow `others`: non-TS queues keep
/// their gates permanently open (strict priority + CBS arbitrate them).
struct CqfGclPair {
  GateControlList ingress;
  GateControlList egress;
};
[[nodiscard]] CqfGclPair make_cqf_gcl(Duration slot, std::uint8_t queue_a,
                                      std::uint8_t queue_b,
                                      GateBitmap others = kAllGatesOpen,
                                      std::size_t capacity = 2);

}  // namespace tsn::tables
