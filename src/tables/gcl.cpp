#include "tables/gcl.hpp"

namespace tsn::tables {

GateControlList::GateControlList(std::size_t capacity) : capacity_(capacity) {
  require(capacity > 0, "GateControlList: capacity must be positive");
  entries_.reserve(capacity);
}

bool GateControlList::add_entry(GateEntry entry) {
  require(entry.interval.ns() > 0, "GateControlList: entry interval must be positive");
  if (entries_.size() >= capacity_) return false;
  entries_.push_back(entry);
  return true;
}

const GateEntry& GateControlList::entry(std::size_t i) const {
  require(i < entries_.size(), "GateControlList::entry: index out of range");
  return entries_[i];
}

Duration GateControlList::cycle_time() const {
  Duration total{};
  for (const GateEntry& e : entries_) total += e.interval;
  return total;
}

GateControlList::Position GateControlList::position_at(Duration offset_in_cycle) const {
  require(!entries_.empty(), "GateControlList::position_at: empty program");
  const Duration cycle = cycle_time();
  Duration off = offset_in_cycle % cycle;
  if (off < Duration::zero()) off += cycle;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (off < entries_[i].interval) {
      return Position{i, entries_[i].interval - off};
    }
    off -= entries_[i].interval;
  }
  // Unreachable: off < cycle by construction.
  return Position{entries_.size() - 1, Duration::zero()};
}

GateBitmap GateControlList::gates_at(Duration offset_in_cycle) const {
  if (entries_.empty()) return kAllGatesOpen;
  return entries_[position_at(offset_in_cycle).index].gate_states;
}

CqfGclPair make_cqf_gcl(Duration slot, std::uint8_t queue_a, std::uint8_t queue_b,
                        GateBitmap others, std::size_t capacity) {
  require(slot.ns() > 0, "make_cqf_gcl: slot must be positive");
  require(queue_a < 8 && queue_b < 8 && queue_a != queue_b,
          "make_cqf_gcl: need two distinct queues in [0,8)");
  const GateBitmap bit_a = static_cast<GateBitmap>(1u << queue_a);
  const GateBitmap bit_b = static_cast<GateBitmap>(1u << queue_b);
  const GateBitmap base = static_cast<GateBitmap>(others & ~(bit_a | bit_b));

  CqfGclPair pair{GateControlList(capacity), GateControlList(capacity)};
  // Even slot: A fills (ingress open), B drains (egress open).
  require(pair.ingress.add_entry({static_cast<GateBitmap>(base | bit_a), slot}),
          "make_cqf_gcl: gate table too small for CQF (need 2 entries)");
  require(pair.ingress.add_entry({static_cast<GateBitmap>(base | bit_b), slot}),
          "make_cqf_gcl: gate table too small for CQF (need 2 entries)");
  require(pair.egress.add_entry({static_cast<GateBitmap>(base | bit_b), slot}),
          "make_cqf_gcl: gate table too small for CQF (need 2 entries)");
  require(pair.egress.add_entry({static_cast<GateBitmap>(base | bit_a), slot}),
          "make_cqf_gcl: gate table too small for CQF (need 2 entries)");
  return pair;
}

}  // namespace tsn::tables
