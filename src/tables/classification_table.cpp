#include "tables/classification_table.hpp"

namespace tsn::tables {

std::size_t ClassificationKeyHash::operator()(const ClassificationKey& k) const noexcept {
  // Mix the two MACs and the tag fields; 64-bit finalizer from SplitMix64.
  std::uint64_t h = k.src.to_u64() * 0x9E3779B97F4A7C15ULL;
  h ^= k.dst.to_u64() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= (static_cast<std::uint64_t>(k.vid) << 3) | k.pri;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::size_t>(h ^ (h >> 31));
}

}  // namespace tsn::tables
