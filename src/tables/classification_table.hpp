// Ingress Filter classification table (paper Fig. 4):
//   (Src MAC, Dst MAC, VID, PRI) -> (Meter ID, Queue ID)
//
// Entry width: 48 + 48 + 12 + 3 key bits + meter/queue result fields,
// charged as 117 b per the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/mac_address.hpp"
#include "net/packet.hpp"
#include "tables/exact_match_table.hpp"

namespace tsn::tables {

inline constexpr std::int64_t kClassificationEntryBits = 117;

using MeterId = std::uint16_t;
using QueueId = std::uint8_t;
inline constexpr MeterId kNoMeter = 0xFFFF;  // TS flows are not rate-policed

struct ClassificationKey {
  MacAddress src;
  MacAddress dst;
  VlanId vid = 0;
  Priority pri = 0;

  bool operator==(const ClassificationKey&) const = default;

  [[nodiscard]] static ClassificationKey from_packet(const net::Packet& p) {
    return ClassificationKey{p.src, p.dst, p.vlan.vid, p.vlan.pcp};
  }
};

struct ClassificationKeyHash {
  std::size_t operator()(const ClassificationKey& k) const noexcept;
};

/// Classification result: which meter polices the flow, which egress
/// queue it joins, and the stream's maximum SDU size (802.1Qci per-stream
/// filtering; 0 = no limit).
struct ClassificationResult {
  MeterId meter = kNoMeter;
  QueueId queue = 0;
  std::int32_t max_sdu_bytes = 0;
  bool operator==(const ClassificationResult&) const = default;
};

class ClassificationTable {
 public:
  explicit ClassificationTable(std::size_t capacity) : table_(capacity) {}

  [[nodiscard]] bool insert(const ClassificationKey& key, ClassificationResult result) {
    return table_.insert(key, result);
  }
  [[nodiscard]] std::optional<ClassificationResult> lookup(const ClassificationKey& key) const {
    return table_.lookup(key);
  }
  [[nodiscard]] std::size_t capacity() const { return table_.capacity(); }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  void clear() { table_.clear(); }

 private:
  ExactMatchTable<ClassificationKey, ClassificationResult, ClassificationKeyHash> table_;
};

}  // namespace tsn::tables
