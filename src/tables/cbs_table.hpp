// Credit-Based Shaper tables of the Egress Sched template (IEEE 802.1Qav,
// paper Fig. 4):
//  * CBS MAP table: egress queue -> shaper index
//  * CBS table:     per-shaper idleSlope / sendSlope configuration
//
// The paper charges both tables together at 72 b/entry; we split that as
// 16 b (map) + 56 b (shaper config).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "tables/classification_table.hpp"

namespace tsn::tables {

inline constexpr std::int64_t kCbsMapEntryBits = 16;
inline constexpr std::int64_t kCbsEntryBits = 56;
inline constexpr std::int64_t kCbsCombinedEntryBits = kCbsMapEntryBits + kCbsEntryBits;

using CbsIndex = std::uint16_t;
inline constexpr CbsIndex kNoCbs = 0xFFFF;

/// Static configuration of one credit-based shaper. Credits evolve at
/// idleSlope while waiting/blocked and at sendSlope (negative) while
/// transmitting; transmission is allowed only when credit >= 0.
struct CbsConfig {
  DataRate idle_slope;        // reserved bandwidth for the RC queue
  DataRate send_slope;        // drain rate while transmitting (port rate - idleSlope)
  std::int64_t hi_credit_bits = 0;  // 0 = unbounded above (credit capped at 0 when idle-empty)
  std::int64_t lo_credit_bits = 0;  // 0 = unbounded below

  /// Standard derivation: sendSlope = idleSlope - portRate.
  [[nodiscard]] static CbsConfig for_reservation(DataRate idle_slope, DataRate port_rate) {
    require(idle_slope.bps() > 0 && idle_slope.bps() <= port_rate.bps(),
            "CbsConfig: idleSlope must be in (0, portRate]");
    return CbsConfig{idle_slope, DataRate(idle_slope.bps() - port_rate.bps()), 0, 0};
  }
};

/// CBS MAP table: which shaper (if any) gates each egress queue.
class CbsMapTable {
 public:
  explicit CbsMapTable(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "CbsMapTable: capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Binds `queue` to shaper `cbs`. Returns false when full.
  [[nodiscard]] bool bind(QueueId queue, CbsIndex cbs);

  /// Shaper for `queue`, or kNoCbs when the queue is unshaped.
  [[nodiscard]] CbsIndex shaper_for(QueueId queue) const;

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    QueueId queue;
    CbsIndex cbs;
  };
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

/// CBS table: fixed-capacity array of shaper configurations.
class CbsTable {
 public:
  explicit CbsTable(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "CbsTable: capacity must be positive");
    configs_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return configs_.size(); }

  /// Installs a shaper config; returns its index or kNoCbs when full.
  [[nodiscard]] CbsIndex install(CbsConfig config);

  [[nodiscard]] const CbsConfig& config(CbsIndex i) const;

  void clear() { configs_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<CbsConfig> configs_;
};

}  // namespace tsn::tables
