// The campaign's parameter vocabulary: turns a RunPoint's (axis, value)
// bindings into a concrete netsim::ScenarioConfig.
//
// Recognized axes (unlisted axes throw tsn::Error, which the runner
// records as a failed row):
//   topology   ring | ring2 | linear | star    (default linear; ring2 =
//              bidirectional ring, the FRER substrate)
//   switches   switch count / star leaves      (default 3)
//   flows      periodic TS flow count          (default 256)
//   frame      TS frame bytes                  (default 64)
//   period-ms  TS flow period                  (default 10)
//   slot-us    CQF slot size (fractional ok)   (default 65)
//   hops       switches each TS flow crosses   (default 2; 1 = dedicated
//              listener host on the first switch)
//   rc-mbps    RC background rate              (default 0)
//   be-mbps    BE background rate              (default 0)
//   bg-mbps    sets rc-mbps AND be-mbps (paired background, Fig. 7(d))
//   config     planned | case1 | case2 | commercial | customized
//              (default planned — run the §III.C planner on the
//              workload; presets auto-grow their shared tables to fit)
//   itp        on | off                        (default on)
//   frer       on | off                        (default off; replicate TS
//              flows over a disjoint secondary path, 802.1CB elimination
//              at the listener — needs a topology with redundant routes)
//   faults     none | link-down | link-flap | reboot | gm-loss | corrupt
//              | random                        (default none; named fault
//              profile from tsn::fault, timed against the traffic window)
//   duration-ms  measured traffic window       (default 100)
//   warmup-ms    gPTP warm-up                  (default 150)
//
// Defaults can be overridden programmatically (benches pin topology and
// durations, then sweep the rest as axes).
#pragma once

#include <cstdint>
#include <string>

#include "campaign/matrix.hpp"
#include "netsim/scenario.hpp"

namespace tsn::campaign {

struct ScenarioDefaults {
  std::string topology = "linear";
  std::int64_t switches = 3;
  std::int64_t flows = 256;
  std::int64_t frame = 64;
  std::int64_t period_ms = 10;
  double slot_us = 65.0;
  std::int64_t hops = 2;
  std::int64_t rc_mbps = 0;
  std::int64_t be_mbps = 0;
  std::string config = "planned";
  bool itp = true;
  bool frer = false;
  std::string faults = "none";
  std::int64_t duration_ms = 100;
  std::int64_t warmup_ms = 150;
};

/// Builds the scenario for one matrix cell. `seed` drives workload and
/// simulation randomness. Throws tsn::Error on unknown axes or values
/// that do not form a runnable scenario.
[[nodiscard]] netsim::ScenarioConfig scenario_for_point(
    const RunPoint& point, std::uint64_t seed, const ScenarioDefaults& defaults = {});

}  // namespace tsn::campaign
