#include "campaign/record.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/error.hpp"
#include "common/text_table.hpp"

namespace tsn::campaign {
namespace {

/// Shortest round-trippable decimal form — identical doubles always
/// format identically, which is what row-level determinism needs.
std::string fmt_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_params(const std::vector<std::pair<std::string, std::string>>& params) {
  std::string out = "{";
  for (const auto& [key, value] : params) {
    if (out.size() > 1) out += ',';
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  return out + "}";
}

/// CSV quoting for the error column (params/metrics never need it).
std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  return out + "\"";
}

std::size_t value_field_index(const char* name) {
  const std::vector<ValueField>& fields = value_fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (std::string_view(fields[i].name) == name) return i;
  }
  throw Error(std::string("unknown value field '") + name + "'");
}

}  // namespace

const std::vector<CounterField>& counter_fields() {
  static const std::vector<CounterField> kFields = {
      {"ts_injected", &RunMetrics::ts_injected},
      {"ts_received", &RunMetrics::ts_received},
      {"ts_deadline_misses", &RunMetrics::ts_deadline_misses},
      {"switch_drops", &RunMetrics::switch_drops},
      {"queue_full_drops", &RunMetrics::queue_full_drops},
      {"buffer_drops", &RunMetrics::buffer_drops},
      {"provisioning_failures", &RunMetrics::provisioning_failures},
      {"peak_ts_queue", &RunMetrics::peak_ts_queue},
      {"peak_buffer_in_use", &RunMetrics::peak_buffer_in_use},
      {"max_sync_error_ns", &RunMetrics::max_sync_error_ns},
      {"events_executed", &RunMetrics::events_executed},
      {"sim_end_ns", &RunMetrics::sim_end_ns},
      {"fault_actions", &RunMetrics::fault_actions},
      {"fault_frames_lost", &RunMetrics::fault_frames_lost},
      {"frer_dup_escapes", &RunMetrics::frer_dup_escapes},
      {"corruption_drops", &RunMetrics::corruption_drops},
      {"reboot_drops", &RunMetrics::reboot_drops},
      {"gm_handoffs", &RunMetrics::gm_handoffs},
      {"handoff_excursion_ns", &RunMetrics::handoff_excursion_ns},
      {"bound_latency_ns", &RunMetrics::bound_latency_ns},
      {"bound_backlog_bytes", &RunMetrics::bound_backlog_bytes},
      {"worst_frame_latency_ns", &RunMetrics::worst_frame_latency_ns},
  };
  return kFields;
}

const std::vector<ValueField>& value_fields() {
  static const std::vector<ValueField> kFields = {
      {"ts_avg_us", &RunMetrics::ts_avg_us},
      {"ts_jitter_us", &RunMetrics::ts_jitter_us},
      {"ts_min_us", &RunMetrics::ts_min_us},
      {"ts_max_us", &RunMetrics::ts_max_us},
      {"ts_p50_us", &RunMetrics::ts_p50_us},
      {"ts_p99_us", &RunMetrics::ts_p99_us},
      {"ts_loss_pct", &RunMetrics::ts_loss_pct},
      {"rc_loss_pct", &RunMetrics::rc_loss_pct},
      {"be_loss_pct", &RunMetrics::be_loss_pct},
      {"recovery_ms", &RunMetrics::recovery_ms},
      {"resource_kb", &RunMetrics::resource_kb},
  };
  return kFields;
}

RunMetrics metrics_from(const netsim::ScenarioResult& result, double resource_kb) {
  RunMetrics m;
  m.ts_injected = static_cast<std::int64_t>(result.ts.injected);
  m.ts_received = static_cast<std::int64_t>(result.ts.received);
  m.ts_deadline_misses = static_cast<std::int64_t>(result.ts.deadline_misses);
  m.switch_drops = static_cast<std::int64_t>(result.switch_drops);
  m.queue_full_drops = static_cast<std::int64_t>(result.queue_full_drops);
  m.buffer_drops = static_cast<std::int64_t>(result.buffer_drops);
  m.provisioning_failures = static_cast<std::int64_t>(result.provisioning_failures);
  m.peak_ts_queue = result.peak_ts_queue;
  m.peak_buffer_in_use = result.peak_buffer_in_use;
  m.max_sync_error_ns = result.max_sync_error.ns();
  m.events_executed = static_cast<std::int64_t>(result.events_executed);
  m.sim_end_ns = result.sim_end.ns();
  m.fault_actions = static_cast<std::int64_t>(result.fault_actions);
  m.fault_frames_lost = static_cast<std::int64_t>(result.frames_lost_failover);
  m.frer_dup_escapes = static_cast<std::int64_t>(result.frer_duplicate_escapes);
  m.corruption_drops = static_cast<std::int64_t>(result.corruption_drops);
  m.reboot_drops = static_cast<std::int64_t>(result.reboot_drops);
  m.gm_handoffs = static_cast<std::int64_t>(result.gm_handoffs);
  m.handoff_excursion_ns = result.post_handoff_sync_excursion.ns();
  m.ts_avg_us = result.ts.avg_latency_us();
  m.ts_jitter_us = result.ts.jitter_us();
  m.ts_min_us = result.ts.latency_us.min();
  m.ts_max_us = result.ts.latency_us.max();
  m.ts_p50_us = result.ts_p50_us;
  m.ts_p99_us = result.ts_p99_us;
  m.ts_loss_pct = result.ts.loss_rate() * 100.0;
  m.rc_loss_pct = result.rc.loss_rate() * 100.0;
  m.be_loss_pct = result.be.loss_rate() * 100.0;
  m.recovery_ms = result.worst_recovery.ms();
  m.resource_kb = resource_kb;
  m.worst_frame_latency_ns = result.worst_frame_latency_ns;
  m.worst_frame_hop = result.worst_frame_hop;
  m.worst_frame_json = result.worst_frame_json;
  return m;
}

const std::string* RunRecord::find_param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string to_jsonl(const RunRecord& record, bool include_timing) {
  std::string out = "{\"type\":\"run\"";
  out += ",\"point\":" + std::to_string(record.point_index);
  out += ",\"repeat\":" + std::to_string(record.repeat);
  out += ",\"seed\":" + std::to_string(record.seed);
  out += ",\"params\":" + json_params(record.params);
  out += std::string(",\"ok\":") + (record.ok ? "true" : "false");
  out += ",\"error\":\"" + json_escape(record.error) + "\"";
  out += std::string(",\"verify_failed\":") + (record.verify_failed ? "true" : "false");
  for (const CounterField& f : counter_fields()) {
    out += ",\"" + std::string(f.name) + "\":" + std::to_string(record.metrics.*f.member);
  }
  for (const ValueField& f : value_fields()) {
    out += ",\"" + std::string(f.name) + "\":" + fmt_number(record.metrics.*f.member);
  }
  out += ",\"worst_frame_hop\":\"" + json_escape(record.metrics.worst_frame_hop) + "\"";
  // frame_json output is embedded verbatim (it is already a JSON object);
  // null when the run carried no worst-frame capture.
  out += ",\"worst_frame\":";
  out += record.metrics.worst_frame_json.empty() ? "null" : record.metrics.worst_frame_json;
  if (include_timing) {
    out += ",\"wall_ms\":" + fmt_number(record.wall_ms);
    out += ",\"wall_setup_ms\":" + fmt_number(record.wall_setup_ms);
    out += ",\"wall_sim_ms\":" + fmt_number(record.wall_sim_ms);
    out += ",\"wall_analyze_ms\":" + fmt_number(record.wall_analyze_ms);
    out += ",\"worker\":" + std::to_string(record.worker);
  }
  return out + "}";
}

std::string csv_header(const std::vector<Axis>& axes) {
  std::string out = "point,repeat,seed";
  for (const Axis& axis : axes) out += "," + axis.name;
  out += ",ok,error,verify_failed";
  for (const CounterField& f : counter_fields()) out += "," + std::string(f.name);
  for (const ValueField& f : value_fields()) out += "," + std::string(f.name);
  return out + ",worst_frame_hop,wall_ms,wall_setup_ms,wall_sim_ms,wall_analyze_ms,worker";
}

std::string to_csv(const RunRecord& record, const std::vector<Axis>& axes) {
  std::string out = std::to_string(record.point_index) + "," +
                    std::to_string(record.repeat) + "," + std::to_string(record.seed);
  for (const Axis& axis : axes) {
    const std::string* value = record.find_param(axis.name);
    out += ",";
    if (value != nullptr) out += csv_quote(*value);
  }
  out += record.ok ? ",1," : ",0,";
  out += csv_quote(record.error);
  out += record.verify_failed ? ",1" : ",0";
  for (const CounterField& f : counter_fields()) {
    out += "," + std::to_string(record.metrics.*f.member);
  }
  for (const ValueField& f : value_fields()) {
    out += "," + fmt_number(record.metrics.*f.member);
  }
  out += "," + csv_quote(record.metrics.worst_frame_hop);
  out += "," + fmt_number(record.wall_ms) + "," + fmt_number(record.wall_setup_ms) +
         "," + fmt_number(record.wall_sim_ms) + "," + fmt_number(record.wall_analyze_ms);
  return out + "," + std::to_string(record.worker);
}

std::vector<PointAggregate> aggregate(const std::vector<RunRecord>& records) {
  std::map<std::size_t, PointAggregate> by_point;
  for (const RunRecord& record : records) {
    PointAggregate& agg = by_point[record.point_index];
    if (agg.repeats == 0 && agg.failures == 0) {
      agg.point_index = record.point_index;
      agg.params = record.params;
      agg.values.resize(value_fields().size());
    }
    ++agg.repeats;
    if (!record.ok) {
      ++agg.failures;
      continue;  // failed repeats carry no metrics
    }
    const std::vector<ValueField>& fields = value_fields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
      agg.values[i].add(record.metrics.*fields[i].member);
    }
  }
  std::vector<PointAggregate> out;
  out.reserve(by_point.size());
  for (auto& [index, agg] : by_point) out.push_back(std::move(agg));
  return out;
}

std::string to_jsonl(const PointAggregate& aggregate_row) {
  std::string out = "{\"type\":\"aggregate\"";
  out += ",\"point\":" + std::to_string(aggregate_row.point_index);
  out += ",\"params\":" + json_params(aggregate_row.params);
  out += ",\"repeats\":" + std::to_string(aggregate_row.repeats);
  out += ",\"failures\":" + std::to_string(aggregate_row.failures);
  const std::vector<ValueField>& fields = value_fields();
  for (std::size_t i = 0; i < fields.size() && i < aggregate_row.values.size(); ++i) {
    const analysis::StreamingStats& s = aggregate_row.values[i];
    out += ",\"" + std::string(fields[i].name) + "_mean\":" + fmt_number(s.mean());
    out += ",\"" + std::string(fields[i].name) + "_stddev\":" + fmt_number(s.stddev());
  }
  return out + "}";
}

std::string render_summary(const std::vector<PointAggregate>& aggregates) {
  TextTable table;
  table.set_header({"point", "runs", "failed", "TS avg (us)", "jitter (us)", "p99 (us)",
                    "loss %", "BRAM Kb"});
  const std::size_t i_avg = value_field_index("ts_avg_us");
  const std::size_t i_jit = value_field_index("ts_jitter_us");
  const std::size_t i_p99 = value_field_index("ts_p99_us");
  const std::size_t i_loss = value_field_index("ts_loss_pct");
  const std::size_t i_kb = value_field_index("resource_kb");
  for (const PointAggregate& agg : aggregates) {
    RunPoint point;
    point.params = agg.params;
    auto cell = [&agg](std::size_t i) {
      if (agg.values[i].count() == 0) return std::string("-");
      std::string out = fmt_number(agg.values[i].mean());
      if (agg.values[i].count() > 1) out += " +/- " + fmt_number(agg.values[i].stddev());
      return out;
    };
    table.add_row({point.label(), std::to_string(agg.repeats),
                   std::to_string(agg.failures), cell(i_avg), cell(i_jit), cell(i_p99),
                   cell(i_loss), cell(i_kb)});
  }
  return table.render();
}

}  // namespace tsn::campaign
