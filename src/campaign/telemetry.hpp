// Campaign-level metrics export.
//
// The sim-time series ("tsn.campaign.*") are pure functions of the
// records' deterministic fields (seeds, counters, latency values), so
// two campaigns over the same matrix and base seed export byte-identical
// snapshots no matter how many workers executed them — the property the
// determinism tests compare with RenderOptions{include_wall = false}.
// Host timing (total/phase wall time, per-worker throughput) lands under
// "wall.campaign.*".
#pragma once

#include <vector>

#include "campaign/record.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::campaign {

/// Fixed bucket bounds (µs) for the campaign-wide TS p99 histogram;
/// declared once so every snapshot has the identical layout.
[[nodiscard]] const std::vector<double>& ts_latency_bucket_bounds();

/// Exports `records` into `registry`.
void collect_metrics(const std::vector<RunRecord>& records,
                     telemetry::MetricsRegistry& registry);

}  // namespace tsn::campaign
