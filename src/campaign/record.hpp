// Structured results of a campaign — one RunRecord per (point, repeat),
// plus per-point aggregates across repeats.
//
// Records serialize to JSONL (one self-describing object per line; "run"
// rows followed by "aggregate" rows) and to CSV (one column per axis and
// per metric). Serialization is deterministic: fields appear in a fixed
// order and numbers format identically for identical values, so two runs
// with the same seeds produce byte-identical rows. Wall-clock time is
// the one intentionally non-deterministic field; to_jsonl() can omit it
// for byte-wise comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/stats.hpp"
#include "campaign/matrix.hpp"
#include "netsim/scenario.hpp"

namespace tsn::campaign {

/// The metrics one simulation run exports (the paper's Fig. 2 / Fig. 7
/// observables plus device state and resource cost).
struct RunMetrics {
  // Counters.
  std::int64_t ts_injected = 0;
  std::int64_t ts_received = 0;
  std::int64_t ts_deadline_misses = 0;
  std::int64_t switch_drops = 0;
  std::int64_t queue_full_drops = 0;
  std::int64_t buffer_drops = 0;
  std::int64_t provisioning_failures = 0;
  std::int64_t peak_ts_queue = 0;
  std::int64_t peak_buffer_in_use = 0;
  std::int64_t max_sync_error_ns = 0;
  std::int64_t events_executed = 0;
  std::int64_t sim_end_ns = 0;
  // Fault plane / FRER resilience (zero in fault-free runs).
  std::int64_t fault_actions = 0;
  std::int64_t fault_frames_lost = 0;
  std::int64_t frer_dup_escapes = 0;
  std::int64_t corruption_drops = 0;
  std::int64_t reboot_drops = 0;
  std::int64_t gm_handoffs = 0;
  std::int64_t handoff_excursion_ns = 0;
  // Static worst-case bounds (tsn::bound) for the same point, next to the
  // measured p99/max: the soundness invariant measured <= bound and the
  // ROADMAP item 3 schedule-quality margin both read off this pair.
  // Zero when no TS flow admits a finite bound.
  std::int64_t bound_latency_ns = 0;
  std::int64_t bound_backlog_bytes = 0;
  // Flight plane (tsn::flight): latency of the worst retained frame.
  // Zero unless the campaign ran with worst-frame capture enabled.
  std::int64_t worst_frame_latency_ns = 0;

  // Values.
  double ts_avg_us = 0.0;
  double ts_jitter_us = 0.0;
  double ts_min_us = 0.0;
  double ts_max_us = 0.0;
  double ts_p50_us = 0.0;
  double ts_p99_us = 0.0;
  double ts_loss_pct = 0.0;
  double rc_loss_pct = 0.0;
  double be_loss_pct = 0.0;
  /// Worst fault-to-next-delivery gap over the TS flows (ms); 0 without
  /// faults.
  double recovery_ms = 0.0;
  double resource_kb = 0.0;

  // Flight plane, non-tabular: the hop where the worst frame spent the
  // most time, and its full explain JSON (frame_json). Serialized
  // manually — the hop as a CSV/JSONL string column, the JSON object
  // embedded raw in JSONL only. Empty unless worst-frame capture ran.
  std::string worst_frame_hop;
  std::string worst_frame_json;
};

/// Field tables driving every serializer (JSONL, CSV, aggregates), so
/// adding a metric is a one-line change.
struct CounterField {
  const char* name;
  std::int64_t RunMetrics::*member;
};
struct ValueField {
  const char* name;
  double RunMetrics::*member;
};
[[nodiscard]] const std::vector<CounterField>& counter_fields();
[[nodiscard]] const std::vector<ValueField>& value_fields();

/// Extracts the exported metrics from a finished scenario.
/// `resource_kb` is priced separately (the scenario does not know its
/// own BRAM cost).
[[nodiscard]] RunMetrics metrics_from(const netsim::ScenarioResult& result,
                                      double resource_kb);

struct RunRecord {
  std::size_t point_index = 0;
  std::size_t repeat = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::string>> params;  // axis order

  bool ok = false;
  std::string error;  // non-empty iff !ok
  /// True when the static verifier (tsn::verify) rejected the point
  /// before any simulation ran; `error` then carries the diagnostics.
  bool verify_failed = false;
  RunMetrics metrics;

  double wall_ms = 0.0;  // host wall-clock; excluded from determinism
  /// Phase breakdown of wall_ms (setup = factory + verify + pricing,
  /// simulate = run_scenario, analyze = metric extraction). Host timing,
  /// excluded from determinism like wall_ms.
  double wall_setup_ms = 0.0;
  double wall_sim_ms = 0.0;
  double wall_analyze_ms = 0.0;
  /// Pool worker that executed this run — schedule-dependent; serialized
  /// only alongside the timing fields.
  std::size_t worker = 0;

  /// Value of axis `name`, or nullptr.
  [[nodiscard]] const std::string* find_param(std::string_view name) const;
};

/// One JSON object, no trailing newline:
/// {"type":"run","point":0,"repeat":1,"seed":...,"params":{...},
///  "ok":true,"error":"","verify_failed":false,<counters>,<values>,
///  "worst_frame_hop":"...","worst_frame":{...}|null,"wall_ms":...}.
/// `include_timing == false` omits wall_ms (byte-stable form).
[[nodiscard]] std::string to_jsonl(const RunRecord& record, bool include_timing = true);

/// CSV header for a campaign over `axes`:
/// point,repeat,seed,<axis...>,ok,error,verify_failed,<counters...>,
/// <values...>,worst_frame_hop,wall_ms (worst_frame_json is JSONL-only)
[[nodiscard]] std::string csv_header(const std::vector<Axis>& axes);
[[nodiscard]] std::string to_csv(const RunRecord& record, const std::vector<Axis>& axes);

/// Per-point aggregate across repeats. Value metrics get mean/stddev
/// over the successful repeats; failures are counted.
struct PointAggregate {
  std::size_t point_index = 0;
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t repeats = 0;
  std::size_t failures = 0;
  /// One stats accumulator per value_fields() entry, same order.
  std::vector<analysis::StreamingStats> values;
};

/// Groups `records` (any order) by point_index and aggregates. The
/// output is sorted by point_index.
[[nodiscard]] std::vector<PointAggregate> aggregate(const std::vector<RunRecord>& records);

/// {"type":"aggregate","point":0,"params":{...},"repeats":3,
///  "failures":0,"ts_avg_us_mean":...,"ts_avg_us_stddev":...,...}
[[nodiscard]] std::string to_jsonl(const PointAggregate& aggregate_row);

/// Human-readable summary table of the aggregates (one line per point).
[[nodiscard]] std::string render_summary(const std::vector<PointAggregate>& aggregates);

}  // namespace tsn::campaign
