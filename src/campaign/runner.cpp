#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "bound/analyzer.hpp"
#include "builder/switch_builder.hpp"
#include "common/error.hpp"
#include "flight/recorder.hpp"
#include "verify/verifier.hpp"

namespace tsn::campaign {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Compact, deterministic one-line summary of a failing verify report
/// for the record's error column (the report is already sorted, so the
/// first error is the highest-ranked one).
std::string verify_summary(const verify::Report& report) {
  std::string out = "static verification failed: ";
  out += report.diagnostics().front().to_text();
  const std::size_t errors = report.count(verify::Severity::kError);
  if (errors > 1) out += " (+" + std::to_string(errors - 1) + " more error(s))";
  return out;
}

}  // namespace

CampaignRunner::CampaignRunner(ScenarioMatrix matrix, CampaignOptions options)
    : matrix_(std::move(matrix)), options_(options) {
  require(options_.repeats >= 1, "campaign: repeats must be >= 1");
  if (options_.jobs == 0) {
    options_.jobs = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::size_t CampaignRunner::total_runs() const {
  return matrix_.point_count() * options_.repeats;
}

std::uint64_t CampaignRunner::derive_seed(std::uint64_t base, std::size_t point,
                                          std::size_t repeat) {
  std::uint64_t x = splitmix64(base);
  x = splitmix64(x ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(point) + 1)));
  x = splitmix64(x ^ (0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(repeat) + 1)));
  return x;
}

std::vector<RunRecord> CampaignRunner::run(const ScenarioFactory& factory,
                                           const ProgressFn& progress) {
  require(static_cast<bool>(factory), "campaign: a scenario factory is required");
  const std::vector<RunPoint> points = matrix_.expand();
  const std::size_t repeats = options_.repeats;
  const std::size_t total = points.size() * repeats;

  std::vector<RunRecord> records(total);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  // Phase stamps: ms since `started` at the end of setup (factory +
  // verify + pricing) and of simulation; the remainder is analysis.
  // tsnlint:allow(wall-clock): phase stamps feed reporting-only wall_* fields
  using WallStamp = std::chrono::steady_clock::time_point;
  auto elapsed_ms = [](WallStamp from, WallStamp to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  };

  auto worker = [&](std::size_t worker_id) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const RunPoint& point = points[i / repeats];
      const std::size_t repeat = i % repeats;

      RunRecord& record = records[i];
      record.point_index = point.index;
      record.repeat = repeat;
      record.seed = derive_seed(options_.base_seed, point.index, repeat);
      record.params = point.params;
      record.worker = worker_id;

      // tsnlint:allow(wall-clock): wall_ms is reporting-only telemetry, no sim state derives from it
      const auto started = std::chrono::steady_clock::now();
      WallStamp setup_done = started;
      WallStamp sim_done = started;
      try {
        netsim::ScenarioConfig cfg = factory(point, record.seed);
        bool rejected = false;
        if (options_.verify) {
          // Fail fast: reject statically-invalid points before paying for
          // the simulation.
          const verify::Report report = verify::verify_scenario(cfg);
          if (report.has_errors()) {
            record.ok = false;
            record.verify_failed = true;
            record.error = verify_summary(report);
            rejected = true;
          }
        }
        if (!rejected) {
          // Price the configuration before the simulation consumes it.
          builder::SwitchBuilder pricer;
          pricer.with_resources(cfg.options.resource);
          const double resource_kb = pricer.report().total().kilobits();
          // Static worst-case bounds for the same point (before the move
          // consumes the config): the bound_* columns sit next to the
          // measured p99/max so soundness is checkable per row.
          const verify::VerifyInput vin = verify::verify_input_from(cfg);
          bound::BoundInput bin = verify::bound_input_for(vin);
          if (vin.plan.has_value()) bin.plan = &*vin.plan;
          const bound::BoundReport bounds = bound::analyze(bin);
          // Per-run flight recorder (worker-local, so runs stay
          // share-nothing); the scenario fills result.worst_frame_*.
          flight::FlightRecorder flight_recorder;
          if (options_.capture_worst_frame) {
            cfg.observe.flight = &flight_recorder;
          }
          // tsnlint:allow(wall-clock): reporting-only phase timing
          setup_done = std::chrono::steady_clock::now();
          const netsim::ScenarioResult result = netsim::run_scenario(std::move(cfg));
          // tsnlint:allow(wall-clock): reporting-only phase timing
          sim_done = std::chrono::steady_clock::now();
          record.metrics = metrics_from(result, resource_kb);
          record.metrics.bound_latency_ns = bounds.max_ts_latency().ns();
          record.metrics.bound_backlog_bytes = bounds.max_backlog_bytes();
          record.ok = true;
        }
      } catch (const std::exception& e) {
        record.ok = false;
        record.error = e.what();
      }
      // tsnlint:allow(wall-clock): reporting-only run timing
      const auto finished_at = std::chrono::steady_clock::now();
      record.wall_ms = elapsed_ms(started, finished_at);
      record.wall_setup_ms = elapsed_ms(started, setup_done);
      record.wall_sim_ms = elapsed_ms(setup_done, sim_done);
      record.wall_analyze_ms = elapsed_ms(sim_done, finished_at);

      const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(record, finished, total);
      }
    }
  };

  const std::size_t pool = std::min(options_.jobs, std::max<std::size_t>(1, total));
  if (pool <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
  }
  return records;
}

}  // namespace tsn::campaign
