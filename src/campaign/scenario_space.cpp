#include "campaign/scenario_space.hpp"

#include <algorithm>
#include <charconv>

#include "builder/planner.hpp"
#include "builder/presets.hpp"
#include "common/error.hpp"
#include "fault/profiles.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn::campaign {
namespace {

std::int64_t to_int(const std::string& name, const std::string& value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
  require(ec == std::errc() && ptr == value.data() + value.size(),
          "axis '" + name + "': '" + value + "' is not an integer");
  return parsed;
}

double to_double(const std::string& name, const std::string& value) {
  double parsed = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
  require(ec == std::errc() && ptr == value.data() + value.size(),
          "axis '" + name + "': '" + value + "' is not a number");
  return parsed;
}

bool to_switch(const std::string& name, const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw Error("axis '" + name + "': expected on|off, got '" + value + "'");
}

/// Applies one (axis, value) binding onto the defaults.
void apply_param(ScenarioDefaults& p, const std::string& name, const std::string& value) {
  if (name == "topology") p.topology = value;
  else if (name == "switches") p.switches = to_int(name, value);
  else if (name == "flows") p.flows = to_int(name, value);
  else if (name == "frame") p.frame = to_int(name, value);
  else if (name == "period-ms") p.period_ms = to_int(name, value);
  else if (name == "slot-us") p.slot_us = to_double(name, value);
  else if (name == "hops") p.hops = to_int(name, value);
  else if (name == "rc-mbps") p.rc_mbps = to_int(name, value);
  else if (name == "be-mbps") p.be_mbps = to_int(name, value);
  else if (name == "bg-mbps") p.rc_mbps = p.be_mbps = to_int(name, value);
  else if (name == "config") p.config = value;
  else if (name == "itp") p.itp = to_switch(name, value);
  else if (name == "frer") p.frer = to_switch(name, value);
  else if (name == "faults") p.faults = value;
  else if (name == "duration-ms") p.duration_ms = to_int(name, value);
  else if (name == "warmup-ms") p.warmup_ms = to_int(name, value);
  else throw Error("unknown campaign axis '" + name + "'");
}

}  // namespace

netsim::ScenarioConfig scenario_for_point(const RunPoint& point, std::uint64_t seed,
                                          const ScenarioDefaults& defaults) {
  ScenarioDefaults p = defaults;
  for (const auto& [name, value] : point.params) apply_param(p, name, value);

  require(p.switches >= 1, "campaign: switches must be >= 1");
  require(p.flows >= 1, "campaign: flows must be >= 1");
  require(p.period_ms >= 1, "campaign: period-ms must be >= 1");
  require(p.slot_us > 0, "campaign: slot-us must be > 0");
  require(p.duration_ms >= 1, "campaign: duration-ms must be >= 1");

  netsim::ScenarioConfig cfg;
  std::int64_t preset_ports = 1;
  if (p.topology == "ring") {
    cfg.built = topo::make_ring(static_cast<std::size_t>(p.switches));
    preset_ports = 1;
  } else if (p.topology == "ring2") {
    cfg.built = topo::make_ring_bidirectional(static_cast<std::size_t>(p.switches));
    preset_ports = 2;
  } else if (p.topology == "linear") {
    cfg.built = topo::make_linear(static_cast<std::size_t>(p.switches));
    preset_ports = 2;
  } else if (p.topology == "star") {
    cfg.built = topo::make_star(static_cast<std::size_t>(p.switches));
    preset_ports = 3;
  } else {
    throw Error("campaign: unknown topology '" + p.topology +
                "' (ring|ring2|linear|star)");
  }
  require(p.hops >= 1 &&
              p.hops <= static_cast<std::int64_t>(cfg.built.switch_nodes.size()),
          "campaign: hops out of range for this topology");

  const Duration slot(static_cast<std::int64_t>(p.slot_us * 1000.0));
  traffic::TsWorkloadParams params;
  params.flow_count = static_cast<std::size_t>(p.flows);
  params.frame_bytes = p.frame;
  params.period = milliseconds(p.period_ms);
  params.seed = seed;
  const topo::NodeId src = cfg.built.host_nodes.front();
  topo::NodeId dst = cfg.built.host_nodes[static_cast<std::size_t>(p.hops - 1)];
  if (p.hops == 1) {
    // Talker and listener share the first switch: attach a dedicated
    // listener host so the flow still crosses the TSN dataplane.
    dst = cfg.built.topology.add_host("listener");
    cfg.built.topology.connect(cfg.built.switch_nodes[0], dst, Duration(50));
  }
  cfg.flows = traffic::make_ts_flows(src, dst, params);

  if (p.rc_mbps > 0 || p.be_mbps > 0) {
    const topo::NodeId bg_host = cfg.built.topology.add_host("bg");
    cfg.built.topology.connect(cfg.built.switch_nodes[0], bg_host, Duration(50));
    if (p.rc_mbps > 0) {
      cfg.flows.push_back(traffic::make_rc_flow(
          900'000, bg_host, dst, DataRate::megabits_per_sec(p.rc_mbps)));
    }
    if (p.be_mbps > 0) {
      cfg.flows.push_back(traffic::make_be_flow(
          900'001, bg_host, dst, DataRate::megabits_per_sec(p.be_mbps)));
    }
  }

  if (p.config == "planned") {
    builder::PlannerInput input;
    input.topology = &cfg.built.topology;
    input.flows = cfg.flows;
    input.slot = slot;
    cfg.options.resource = builder::ParameterPlanner::plan(input).config;
    if (p.frer) {
      // The planner sizes the shared tables to the declared streams; FRER
      // adds one secondary member stream per TS flow on top.
      sw::SwitchResourceConfig& r = cfg.options.resource;
      r.unicast_table_size += p.flows;
      r.classification_table_size += p.flows;
      r.meter_table_size += p.flows;
    }
  } else {
    if (p.config == "case1") cfg.options.resource = builder::table1_case1();
    else if (p.config == "case2") cfg.options.resource = builder::table1_case2();
    else if (p.config == "commercial") cfg.options.resource = builder::bcm53154_reference();
    else if (p.config == "customized") cfg.options.resource = builder::paper_customized(preset_ports);
    else throw Error("campaign: unknown config '" + p.config +
                     "' (planned|case1|case2|commercial|customized)");
    // Presets fix QoS resources (queues, buffers, gates); the shared
    // tables must still fit the workload's streams (FRER doubles them:
    // one member stream per path).
    const std::int64_t needed = (p.frer ? 2 * p.flows : p.flows) + 16;
    sw::SwitchResourceConfig& r = cfg.options.resource;
    r.unicast_table_size = std::max(r.unicast_table_size, needed);
    r.classification_table_size = std::max(r.classification_table_size, needed);
    r.meter_table_size = std::max(r.meter_table_size, needed);
  }

  cfg.options.runtime.slot_size = slot;
  cfg.options.seed = seed;
  cfg.use_itp = p.itp;
  cfg.use_frer = p.frer;
  cfg.warmup = milliseconds(p.warmup_ms);
  cfg.traffic_duration = milliseconds(p.duration_ms);
  // Fault profiles are timed against the traffic window; "none" yields an
  // empty plan, unknown names throw (recorded as a failed row).
  cfg.faults = fault::profile_plan(p.faults, cfg.built.topology, cfg.traffic_duration);
  return cfg;
}

}  // namespace tsn::campaign
