#include "campaign/matrix.hpp"

#include <cctype>

#include "common/error.hpp"

namespace tsn::campaign {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

Axis parse_axis(std::string_view spec) {
  const std::size_t eq = spec.find('=');
  require(eq != std::string_view::npos,
          "axis: expected 'name=v1,v2,...', got '" + std::string(spec) + "'");
  Axis axis;
  axis.name = std::string(trim(spec.substr(0, eq)));
  require(!axis.name.empty(), "axis: empty name in '" + std::string(spec) + "'");
  for (const std::string_view part : split(spec.substr(eq + 1), ',')) {
    const std::string_view value = trim(part);
    require(!value.empty(), "axis '" + axis.name + "': empty value");
    axis.values.emplace_back(value);
  }
  require(!axis.values.empty(), "axis '" + axis.name + "': no values");
  return axis;
}

std::vector<Axis> parse_axes(std::string_view spec) {
  std::vector<Axis> axes;
  for (const std::string_view part : split(spec, ';')) {
    if (trim(part).empty()) continue;  // tolerate a trailing ';'
    axes.push_back(parse_axis(trim(part)));
  }
  require(!axes.empty(), "axes: no axis in '" + std::string(spec) + "'");
  return axes;
}

const std::string* RunPoint::find(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string RunPoint::label() const {
  std::string out;
  for (const auto& [key, value] : params) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value;
  }
  return out.empty() ? "(defaults)" : out;
}

ScenarioMatrix& ScenarioMatrix::add_axis(std::string name, std::vector<std::string> values) {
  return add_axis(Axis{std::move(name), std::move(values)});
}

ScenarioMatrix& ScenarioMatrix::add_axis(Axis axis) {
  require(!axis.name.empty(), "matrix: axis name must not be empty");
  require(!axis.values.empty(), "matrix: axis '" + axis.name + "' needs at least one value");
  for (const Axis& existing : axes_) {
    require(existing.name != axis.name, "matrix: duplicate axis '" + axis.name + "'");
  }
  axes_.push_back(std::move(axis));
  return *this;
}

std::size_t ScenarioMatrix::point_count() const {
  std::size_t n = 1;
  for (const Axis& axis : axes_) n *= axis.values.size();
  return n;
}

std::vector<RunPoint> ScenarioMatrix::expand() const {
  const std::size_t total = point_count();
  std::vector<RunPoint> points;
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    RunPoint point;
    point.index = i;
    point.params.reserve(axes_.size());
    // Mixed-radix decomposition of i, most significant digit first.
    std::size_t stride = total;
    for (const Axis& axis : axes_) {
      stride /= axis.values.size();
      const std::size_t digit = (i / stride) % axis.values.size();
      point.params.emplace_back(axis.name, axis.values[digit]);
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace tsn::campaign
