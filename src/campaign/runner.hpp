// The campaign executor: expands a ScenarioMatrix into (point, repeat)
// runs and executes them on a pool of worker threads.
//
// Each run builds its own scenario through the factory and simulates it
// on a private event::Simulator, so runs share no mutable state and the
// pool scales to the hardware. Determinism is anchored in the seeds, not
// the schedule: every run's seed is a pure function of (base_seed,
// point_index, repeat), and results land at a fixed position in the
// output vector — the same campaign produces identical rows whether it
// runs on 1 thread or 16.
//
// A run that throws is captured as a failed RunRecord (ok = false, the
// exception text in `error`); the campaign always completes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/record.hpp"
#include "netsim/scenario.hpp"

namespace tsn::campaign {

struct CampaignOptions {
  /// Worker threads (0 = hardware concurrency).
  std::size_t jobs = 1;
  /// Repeats per matrix point, each with its own derived seed.
  std::size_t repeats = 1;
  std::uint64_t base_seed = 7;
  /// Fail fast: statically verify each scenario (tsn::verify) before
  /// simulating it; points with error-severity diagnostics are recorded
  /// as verify_failed rows without burning simulation time.
  bool verify = true;
  /// Attach a per-run flight recorder (tsn::flight) and export the
  /// worst-latency frame of each run as worst_frame_latency_ns /
  /// worst_frame_hop / worst_frame_json. Off by default: the recorder is
  /// hot-path-cheap but not free, and campaigns are throughput-bound.
  bool capture_worst_frame = false;
};

class CampaignRunner {
 public:
  /// Builds the scenario for one run. Called concurrently from worker
  /// threads; must not touch shared mutable state.
  using ScenarioFactory =
      std::function<netsim::ScenarioConfig(const RunPoint&, std::uint64_t seed)>;

  /// Progress callback: a finished record plus done/total counts.
  /// Invoked under an internal mutex (callbacks never race each other).
  using ProgressFn =
      std::function<void(const RunRecord&, std::size_t done, std::size_t total)>;

  CampaignRunner(ScenarioMatrix matrix, CampaignOptions options);

  [[nodiscard]] const ScenarioMatrix& matrix() const { return matrix_; }
  [[nodiscard]] std::size_t total_runs() const;

  /// Executes every (point, repeat) and returns the records ordered by
  /// (point_index, repeat) regardless of worker scheduling.
  [[nodiscard]] std::vector<RunRecord> run(const ScenarioFactory& factory,
                                           const ProgressFn& progress = {});

  /// SplitMix64-style mix of (base, point, repeat): nearby runs get
  /// unrelated, schedule-independent seeds.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base, std::size_t point,
                                                 std::size_t repeat);

 private:
  ScenarioMatrix matrix_;
  CampaignOptions options_;
};

}  // namespace tsn::campaign
