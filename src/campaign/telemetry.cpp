#include "campaign/telemetry.hpp"

#include <map>
#include <string>

namespace tsn::campaign {

const std::vector<double>& ts_latency_bucket_bounds() {
  static const std::vector<double> kBounds = {10.0,   20.0,   50.0,   100.0,  200.0,
                                              500.0,  1000.0, 2000.0, 5000.0};
  return kBounds;
}

void collect_metrics(const std::vector<RunRecord>& records,
                     telemetry::MetricsRegistry& registry) {
  auto& runs = registry.counter("tsn.campaign.runs", {}, "(point, repeat) runs executed");
  auto& ok = registry.counter("tsn.campaign.ok", {}, "runs that completed successfully");
  auto& failures = registry.counter("tsn.campaign.failures", {}, "runs that failed");
  auto& verify_failures = registry.counter(
      "tsn.campaign.verify_failures", {},
      "points rejected by static verification before simulating");
  auto& p99_hist = registry.histogram(
      "tsn.campaign.ts_p99_us", ts_latency_bucket_bounds(), {},
      "distribution of per-run TS p99 latency across successful runs");

  // Deterministic totals over the successful runs, one series per
  // RunMetrics counter field — byte-stable across worker counts because
  // the summation order follows record order, not completion order.
  for (const RunRecord& record : records) {
    runs.inc();
    if (record.verify_failed) verify_failures.inc();
    if (!record.ok) {
      failures.inc();
      continue;
    }
    ok.inc();
    for (const CounterField& f : counter_fields()) {
      registry
          .counter(std::string("tsn.campaign.total.") + f.name, {},
                   "sum over successful runs")
          .add(static_cast<std::uint64_t>(record.metrics.*f.member));
    }
    p99_hist.observe(record.metrics.ts_p99_us);
  }

  // Host timing: totals, phase split, and per-worker throughput.
  double total_ms = 0.0;
  double setup_ms = 0.0;
  double sim_ms = 0.0;
  double analyze_ms = 0.0;
  std::map<std::size_t, std::pair<std::uint64_t, double>> by_worker;  // runs, busy ms
  for (const RunRecord& record : records) {
    total_ms += record.wall_ms;
    setup_ms += record.wall_setup_ms;
    sim_ms += record.wall_sim_ms;
    analyze_ms += record.wall_analyze_ms;
    auto& [worker_runs, worker_ms] = by_worker[record.worker];
    ++worker_runs;
    worker_ms += record.wall_ms;
  }
  registry.gauge("wall.campaign.total_ms", {}, "summed per-run wall time").set(total_ms);
  registry.gauge("wall.campaign.phase_ms", {{"phase", "setup"}}).set(setup_ms);
  registry.gauge("wall.campaign.phase_ms", {{"phase", "simulate"}}).set(sim_ms);
  registry.gauge("wall.campaign.phase_ms", {{"phase", "analyze"}}).set(analyze_ms);
  for (const auto& [worker, stats] : by_worker) {
    const telemetry::Labels labels = {{"worker", std::to_string(worker)}};
    registry.counter("wall.campaign.worker.runs", labels, "runs executed by this worker")
        .add(stats.first);
    registry.gauge("wall.campaign.worker.busy_ms", labels).set(stats.second);
    if (stats.second > 0.0) {
      registry
          .gauge("wall.campaign.worker.runs_per_s", labels,
                 "this worker's throughput over its busy time")
          .set(static_cast<double>(stats.first) / (stats.second / 1000.0));
    }
  }
}

}  // namespace tsn::campaign
