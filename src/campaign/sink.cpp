#include "campaign/sink.hpp"

#include <fstream>

#include "common/error.hpp"

namespace tsn::campaign {

SinkFormat parse_sink_format(const std::string& name) {
  if (name == "jsonl") return SinkFormat::kJsonl;
  if (name == "csv") return SinkFormat::kCsv;
  throw Error("unknown output format '" + name + "' (jsonl|csv)");
}

std::string serialize(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                      SinkFormat format, bool include_timing) {
  std::string out;
  if (format == SinkFormat::kCsv) {
    out += csv_header(axes) + "\n";
    for (const RunRecord& record : records) out += to_csv(record, axes) + "\n";
    return out;
  }
  for (const RunRecord& record : records) out += to_jsonl(record, include_timing) + "\n";
  for (const PointAggregate& agg : aggregate(records)) out += to_jsonl(agg) + "\n";
  return out;
}

void write_file(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                SinkFormat format, const std::string& path) {
  std::ofstream file(path);
  require(file.good(), "cannot open '" + path + "' for writing");
  file << serialize(records, axes, format);
  require(file.good(), "failed writing campaign results to '" + path + "'");
}

}  // namespace tsn::campaign
