#include "campaign/sink.hpp"

#include <fstream>

#include "common/error.hpp"

namespace tsn::campaign {

SinkFormat parse_sink_format(const std::string& name) {
  if (name == "jsonl") return SinkFormat::kJsonl;
  if (name == "csv") return SinkFormat::kCsv;
  throw Error("unknown output format '" + name + "' (jsonl|csv)");
}

std::string serialize(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                      SinkFormat format, bool include_timing,
                      const telemetry::RunManifest* manifest) {
  std::string out;
  if (format == SinkFormat::kCsv) {
    if (manifest != nullptr) out += "# manifest: " + manifest->to_json() + "\n";
    out += csv_header(axes) + "\n";
    for (const RunRecord& record : records) out += to_csv(record, axes) + "\n";
    return out;
  }
  if (manifest != nullptr) {
    out += "{\"type\":\"manifest\",\"manifest\":" + manifest->to_json() + "}\n";
  }
  for (const RunRecord& record : records) out += to_jsonl(record, include_timing) + "\n";
  for (const PointAggregate& agg : aggregate(records)) out += to_jsonl(agg) + "\n";
  return out;
}

void write_file(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                SinkFormat format, const std::string& path,
                const telemetry::RunManifest* manifest) {
  std::ofstream file(path);
  require(file.good(), "cannot open '" + path + "' for writing");
  file << serialize(records, axes, format, /*include_timing=*/true, manifest);
  require(file.good(), "failed writing campaign results to '" + path + "'");
}

}  // namespace tsn::campaign
