// File sinks: serialize a finished campaign to JSONL or CSV.
//
// JSONL: one "run" object per (point, repeat) in record order, followed
// by one "aggregate" object per point. CSV: a header row plus one row
// per run (aggregates are a JSONL/console concern — CSV stays flat for
// spreadsheet import).
#pragma once

#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/record.hpp"

namespace tsn::campaign {

enum class SinkFormat { kJsonl, kCsv };

/// Parses "jsonl" | "csv"; throws tsn::Error otherwise.
[[nodiscard]] SinkFormat parse_sink_format(const std::string& name);

/// The full serialized campaign (rows + aggregates for JSONL, header +
/// rows for CSV), with trailing newline.
[[nodiscard]] std::string serialize(const std::vector<RunRecord>& records,
                                    const std::vector<Axis>& axes, SinkFormat format,
                                    bool include_timing = true);

/// Writes serialize() to `path`. Throws tsn::Error on I/O failure.
void write_file(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                SinkFormat format, const std::string& path);

}  // namespace tsn::campaign
