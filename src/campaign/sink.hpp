// File sinks: serialize a finished campaign to JSONL or CSV.
//
// JSONL: one "run" object per (point, repeat) in record order, followed
// by one "aggregate" object per point. CSV: a header row plus one row
// per run (aggregates are a JSONL/console concern — CSV stays flat for
// spreadsheet import).
#pragma once

#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/record.hpp"
#include "telemetry/manifest.hpp"

namespace tsn::campaign {

enum class SinkFormat { kJsonl, kCsv };

/// Parses "jsonl" | "csv"; throws tsn::Error otherwise.
[[nodiscard]] SinkFormat parse_sink_format(const std::string& name);

/// The full serialized campaign (rows + aggregates for JSONL, header +
/// rows for CSV), with trailing newline. A non-null `manifest` stamps
/// run provenance as the first line ({"type":"manifest",...} for JSONL,
/// a "# manifest: {...}" comment for CSV).
[[nodiscard]] std::string serialize(const std::vector<RunRecord>& records,
                                    const std::vector<Axis>& axes, SinkFormat format,
                                    bool include_timing = true,
                                    const telemetry::RunManifest* manifest = nullptr);

/// Writes serialize() to `path`. Throws tsn::Error on I/O failure.
void write_file(const std::vector<RunRecord>& records, const std::vector<Axis>& axes,
                SinkFormat format, const std::string& path,
                const telemetry::RunManifest* manifest = nullptr);

}  // namespace tsn::campaign
