// Declarative scenario matrix — the experiment plan of a campaign.
//
// A matrix is an ordered list of named axes, each with one or more
// values; expand() takes the cross product into a flat run list. One
// RunPoint is one cell of the matrix: an ordered (axis, value) binding
// that a scenario factory turns into a concrete simulation. The first
// axis varies slowest, so the expansion order (and hence every
// point_index) is a pure function of the matrix — the anchor for
// deterministic seeding and stable result ordering.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsn::campaign {

struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// Parses "name=v1,v2,v3" into an axis. Throws tsn::Error on an empty
/// name, a missing '=', or an empty value list.
[[nodiscard]] Axis parse_axis(std::string_view spec);

/// Parses a ';'-separated list of axis specs:
/// "bg-mbps=0,100,300;hops=2,3". Whitespace around separators is
/// tolerated; empty segments are rejected.
[[nodiscard]] std::vector<Axis> parse_axes(std::string_view spec);

/// One cell of the expanded matrix.
struct RunPoint {
  std::size_t index = 0;  // position in expansion order
  std::vector<std::pair<std::string, std::string>> params;  // axis order

  /// Value of axis `name`, or nullptr when the point has no such axis.
  [[nodiscard]] const std::string* find(std::string_view name) const;

  /// "bg-mbps=100 hops=2" — for progress lines and error messages.
  [[nodiscard]] std::string label() const;
};

class ScenarioMatrix {
 public:
  /// Appends an axis. Throws tsn::Error on an empty name, an empty value
  /// list, or a duplicate axis name.
  ScenarioMatrix& add_axis(std::string name, std::vector<std::string> values);
  ScenarioMatrix& add_axis(Axis axis);

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// Product of the axis sizes (1 for an empty matrix: the single
  /// all-defaults point).
  [[nodiscard]] std::size_t point_count() const;

  /// The cross product in canonical order: the first axis varies
  /// slowest, the last fastest.
  [[nodiscard]] std::vector<RunPoint> expand() const;

 private:
  std::vector<Axis> axes_;
};

}  // namespace tsn::campaign
