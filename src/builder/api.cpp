#include "builder/api.hpp"

#include "common/error.hpp"

namespace tsn::builder {

CustomizationApi CustomizationApi::from_config(const sw::SwitchResourceConfig& config) {
  config.validate();
  CustomizationApi api;
  api.config_ = config;
  api.bound_ports_ = config.port_count;
  api.bound_queues_ = config.queues_per_port;
  return api;
}

void CustomizationApi::bind_ports(std::int64_t port_num) {
  require(port_num >= 1, "customization: port_num must be >= 1");
  if (bound_ports_) {
    require(*bound_ports_ == port_num,
            "customization: port_num disagrees with an earlier per-port API call");
  } else {
    bound_ports_ = port_num;
    config_.port_count = port_num;
  }
}

void CustomizationApi::bind_queues(std::int64_t queue_num) {
  require(queue_num >= 1 && queue_num <= 8,
          "customization: queue_num must be in [1, 8]");
  if (bound_queues_) {
    require(*bound_queues_ == queue_num,
            "customization: queue_num disagrees with an earlier API call");
  } else {
    bound_queues_ = queue_num;
    config_.queues_per_port = queue_num;
  }
}

CustomizationApi& CustomizationApi::set_switch_tbl(std::int64_t unicast_size,
                                                   std::int64_t multicast_size) {
  require(unicast_size >= 1, "set_switch_tbl: unicast size must be >= 1");
  require(multicast_size >= 0, "set_switch_tbl: multicast size must be >= 0");
  config_.unicast_table_size = unicast_size;
  config_.multicast_table_size = multicast_size;
  return *this;
}

CustomizationApi& CustomizationApi::set_class_tbl(std::int64_t class_size) {
  require(class_size >= 1, "set_class_tbl: size must be >= 1");
  config_.classification_table_size = class_size;
  return *this;
}

CustomizationApi& CustomizationApi::set_meter_tbl(std::int64_t meter_size) {
  require(meter_size >= 1, "set_meter_tbl: size must be >= 1");
  config_.meter_table_size = meter_size;
  return *this;
}

CustomizationApi& CustomizationApi::set_gate_tbl(std::int64_t gate_size,
                                                 std::int64_t queue_num,
                                                 std::int64_t port_num) {
  require(gate_size >= 1, "set_gate_tbl: gate size must be >= 1");
  bind_queues(queue_num);
  bind_ports(port_num);
  config_.gate_table_size = gate_size;
  return *this;
}

CustomizationApi& CustomizationApi::set_cbs_tbl(std::int64_t cbs_map_size,
                                                std::int64_t cbs_size,
                                                std::int64_t port_num) {
  require(cbs_map_size >= 1, "set_cbs_tbl: CBS map size must be >= 1");
  require(cbs_size >= 1, "set_cbs_tbl: CBS size must be >= 1");
  bind_ports(port_num);
  config_.cbs_map_size = cbs_map_size;
  config_.cbs_table_size = cbs_size;
  return *this;
}

CustomizationApi& CustomizationApi::set_queues(std::int64_t queue_depth,
                                               std::int64_t queue_num,
                                               std::int64_t port_num) {
  require(queue_depth >= 1, "set_queues: queue depth must be >= 1");
  bind_queues(queue_num);
  bind_ports(port_num);
  config_.queue_depth = queue_depth;
  return *this;
}

CustomizationApi& CustomizationApi::set_buffers(std::int64_t buffer_num,
                                                std::int64_t port_num) {
  require(buffer_num >= 1, "set_buffers: buffer count must be >= 1");
  bind_ports(port_num);
  config_.buffers_per_port = buffer_num;
  return *this;
}

}  // namespace tsn::builder
