// Textual persistence of SwitchResourceConfig: a canonical "key = value"
// format (comments with '#', blank lines ignored), so planned
// configurations can be saved, reviewed, versioned and re-simulated.
#pragma once

#include <string>

#include "switch/config.hpp"

namespace tsn::builder {

/// Canonical text form: one "key = value" line per parameter, in a fixed
/// order. to_text(config_from_text(t)) is stable.
[[nodiscard]] std::string to_text(const sw::SwitchResourceConfig& config);

/// Parses the text form. Unspecified keys keep SwitchResourceConfig
/// defaults. Throws tsn::Error on unknown keys, malformed lines,
/// non-integer values, or a configuration that fails validate().
[[nodiscard]] sw::SwitchResourceConfig config_from_text(const std::string& text);

/// File variants; throw tsn::Error on I/O failure.
void save_config(const sw::SwitchResourceConfig& config, const std::string& path);
[[nodiscard]] sw::SwitchResourceConfig load_config(const std::string& path);

}  // namespace tsn::builder
