#include "builder/switch_builder.hpp"

#include <utility>

namespace tsn::builder {

SwitchBuilder::SwitchBuilder() : templates_(standard_templates()) {}

SwitchBuilder& SwitchBuilder::with_resources(const sw::SwitchResourceConfig& config) {
  config.validate();
  config_ = config;
  return *this;
}

SwitchBuilder& SwitchBuilder::with_resources(const CustomizationApi& api) {
  return with_resources(api.config());
}

SwitchBuilder& SwitchBuilder::with_runtime(const sw::SwitchRuntimeConfig& runtime) {
  runtime.validate();
  runtime_ = runtime;
  return *this;
}

resource::ResourceReport SwitchBuilder::report() const {
  resource::ResourceReport report;
  for (const auto& tmpl : templates_) {
    for (resource::ComponentUsage& usage : tmpl->resource_usage(config_)) {
      report.add(std::move(usage));
    }
  }
  return report;
}

std::unique_ptr<sw::TsnSwitch> SwitchBuilder::synthesize(
    event::Simulator& sim, std::string name, std::int64_t physical_ports) const {
  return std::make_unique<sw::TsnSwitch>(sim, std::move(name), config_, runtime_,
                                         physical_ports);
}

}  // namespace tsn::builder
