// The paper's Table II customization APIs.
//
// CustomizationApi is the fluent front door of TSN-Builder: each
// set_*_tbl call mirrors one row of Table II and populates the
// corresponding fields of a SwitchResourceConfig. The API enforces the
// cross-parameter consistency the hardware generator would: every
// per-port API (gate tables, CBS tables, queues, buffers) must agree on
// `port_num`, and the gate/queue APIs must agree on `queue_num` — the
// first call binds the value, later conflicting calls throw.
#pragma once

#include <cstdint>
#include <optional>

#include "switch/config.hpp"

namespace tsn::builder {

class CustomizationApi {
 public:
  CustomizationApi() = default;

  /// Seeds the API from an existing configuration; the config's port and
  /// queue counts become bound, as if every API had already been called.
  [[nodiscard]] static CustomizationApi from_config(const sw::SwitchResourceConfig& config);

  /// set_switch_tbl(unicast_size, multicast_size) — multicast 0 means the
  /// multicast table is not instantiated (the paper's "1024, 0").
  CustomizationApi& set_switch_tbl(std::int64_t unicast_size, std::int64_t multicast_size);

  /// set_class_tbl(class_size)
  CustomizationApi& set_class_tbl(std::int64_t class_size);

  /// set_meter_tbl(meter_size)
  CustomizationApi& set_meter_tbl(std::int64_t meter_size);

  /// set_gate_tbl(gate_size, queue_num, port_num) — GCL entries per
  /// direction per port (CQF: 2).
  CustomizationApi& set_gate_tbl(std::int64_t gate_size, std::int64_t queue_num,
                                 std::int64_t port_num);

  /// set_cbs_tbl(cbs_map_size, cbs_size, port_num)
  CustomizationApi& set_cbs_tbl(std::int64_t cbs_map_size, std::int64_t cbs_size,
                                std::int64_t port_num);

  /// set_queues(queue_depth, queue_num, port_num) — metadata entries per
  /// queue (the ITP-derived depth).
  CustomizationApi& set_queues(std::int64_t queue_depth, std::int64_t queue_num,
                               std::int64_t port_num);

  /// set_buffers(buffer_num, port_num)
  CustomizationApi& set_buffers(std::int64_t buffer_num, std::int64_t port_num);

  [[nodiscard]] const sw::SwitchResourceConfig& config() const { return config_; }

 private:
  void bind_ports(std::int64_t port_num);
  void bind_queues(std::int64_t queue_num);

  sw::SwitchResourceConfig config_;
  std::optional<std::int64_t> bound_ports_;
  std::optional<std::int64_t> bound_queues_;
};

}  // namespace tsn::builder
