// SwitchBuilder — TSN-Builder's synthesis stage: select the five standard
// templates, inject the customized resource parameters, price the result
// (ResourceReport, the data behind Tables I/III), and synthesize a
// runnable TsnSwitch for the simulated testbed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "builder/api.hpp"
#include "builder/templates.hpp"
#include "event/simulator.hpp"
#include "resource/report.hpp"
#include "switch/config.hpp"
#include "switch/tsn_switch.hpp"

namespace tsn::builder {

class SwitchBuilder {
 public:
  SwitchBuilder();

  /// Injects a resource configuration (validated).
  SwitchBuilder& with_resources(const sw::SwitchResourceConfig& config);
  SwitchBuilder& with_resources(const CustomizationApi& api);

  /// Overrides the behavioural (non-BRAM) knobs used at synthesis time.
  SwitchBuilder& with_runtime(const sw::SwitchRuntimeConfig& runtime);

  [[nodiscard]] const sw::SwitchResourceConfig& resources() const { return config_; }
  [[nodiscard]] const std::vector<std::unique_ptr<FunctionTemplate>>& templates() const {
    return templates_;
  }

  /// Prices the configuration: one report row per template memory, in
  /// pipeline order (Switch, Class., Meter, Gate, CBS, Queues, Buffers).
  [[nodiscard]] resource::ResourceReport report() const;

  /// Synthesizes a runnable switch with `physical_ports` wired ports.
  [[nodiscard]] std::unique_ptr<sw::TsnSwitch> synthesize(
      event::Simulator& sim, std::string name, std::int64_t physical_ports) const;

 private:
  sw::SwitchResourceConfig config_;
  sw::SwitchRuntimeConfig runtime_;
  std::vector<std::unique_ptr<FunctionTemplate>> templates_;
};

}  // namespace tsn::builder
