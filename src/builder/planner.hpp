// ParameterPlanner — the paper's §III.C configuration guidelines as code:
// from an application description (topology + flows + CQF slot) derive the
// Table II resource parameters, with a human-readable rationale citing the
// guideline behind every choice.
//
//  guideline 1: shared tables (switch / classification / meter) sized by
//               the distinct streams the application carries (path
//               aggregation collapses same-path flows onto one entry);
//  guideline 2: gate table entries — 2 under CQF, scheduling-cycle / slot
//               for a synthesized full-cycle program;
//  guideline 3: CBS map / CBS table sized by the RC queues in use;
//  guideline 4: queue depth from the ITP injection plan's peak per-slot
//               load (plus a skew headroom);
//  guideline 5: buffers per port = queue depth x queue count; enabled TSN
//               ports from the topology's forwarding structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sched/itp.hpp"
#include "switch/config.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::builder {

struct PlannerInput {
  const topo::Topology* topology = nullptr;
  std::vector<traffic::FlowSpec> flows;
  /// CQF slot size (or the Qbv slot granularity when use_cqf is false).
  Duration slot = microseconds(65);
  /// CQF 2-entry ping-pong (the paper's evaluation) vs a synthesized
  /// full-cycle gate program sized by guideline 2's general case.
  bool use_cqf = true;
};

struct PlannerOutput {
  sw::SwitchResourceConfig config;
  sched::ItpPlan itp;
  std::string rationale;
};

class ParameterPlanner {
 public:
  /// Derives the resource configuration for `input`. Throws tsn::Error on
  /// a missing topology or an empty flow set.
  [[nodiscard]] static PlannerOutput plan(const PlannerInput& input);
};

}  // namespace tsn::builder
