// Named resource configurations used across the evaluation:
//  * bcm53154_reference — the commercial COTS baseline (datasheet numbers);
//  * paper_customized(ports) — the §IV customized switch for the star (3),
//    linear (2) and ring (1) scenarios;
//  * table1_case1 / table1_case2 — the two queue/buffer provisioning cases
//    of the paper's motivation experiment (Table I).
#pragma once

#include <cstdint>

#include "switch/config.hpp"

namespace tsn::builder {

/// Broadcom BCM53154 parameterization: 16K MAC entries, 1K classification
/// entries, 512 meters, 8 queues and shapers per port, 256-entry gate
/// lists, 4 TSN ports, 128 packet buffers per port. Totals 10818 Kb.
[[nodiscard]] sw::SwitchResourceConfig bcm53154_reference();

/// The paper's customized switch for `ports` enabled TSN ports (star 3,
/// linear 2, ring 1): 1024-entry shared tables, CQF 2-entry gate lists,
/// 3 RC queues, ITP queue depth 12, 96 buffers per port.
[[nodiscard]] sw::SwitchResourceConfig paper_customized(std::int64_t ports);

/// Table I Case 1: 8 queues x depth 16, 128 buffers (2304 Kb of
/// queue+buffer BRAM on one port).
[[nodiscard]] sw::SwitchResourceConfig table1_case1();

/// Table I Case 2: 8 queues x depth 12, 96 buffers (1764 Kb) — the
/// traffic-sufficient provisioning that saves 540 Kb.
[[nodiscard]] sw::SwitchResourceConfig table1_case2();

}  // namespace tsn::builder
