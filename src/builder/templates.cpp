#include "builder/templates.hpp"

#include "resource/bram.hpp"

namespace tsn::builder {
namespace {

/// Sums `count` copies of one small-instance allocation (policy 2): the
/// report charges per physically independent memory.
resource::Allocation replicate(resource::Allocation one, std::int64_t count) {
  resource::Allocation total = one;
  total.ramb18 = one.ramb18 * count;
  total.ramb36 = one.ramb36 * count;
  total.cost = one.cost * count;
  return total;
}

}  // namespace

// ------------------------------------------------------------- Time Sync
std::vector<std::string> TimeSyncTemplate::submodules() const {
  // The paper's gPTP pipeline: collect timestamps, calculate offset/rate,
  // correct the local clock.
  return {"collect", "calculate", "correct"};
}

std::vector<resource::ComponentUsage> TimeSyncTemplate::resource_usage(
    const sw::SwitchResourceConfig&) const {
  return {};  // registers only; no table memory (paper Table III has no row)
}

// --------------------------------------------------------- Packet Switch
std::vector<std::string> PacketSwitchTemplate::submodules() const {
  return {"unicast lookup", "multicast lookup"};
}

std::vector<resource::ComponentUsage> PacketSwitchTemplate::resource_usage(
    const sw::SwitchResourceConfig& config) const {
  resource::ComponentUsage usage;
  usage.name = "Switch Tbl";
  usage.parameters = format_table_size(config.unicast_table_size) + ", " +
                     format_table_size(config.multicast_table_size);
  usage.entry_width_bits = kSwitchTableEntryBits;
  usage.allocation = resource::allocate_table(config.unicast_table_size,
                                              kSwitchTableEntryBits);
  if (config.multicast_table_size > 0) {
    const resource::Allocation mc = resource::allocate_table(
        config.multicast_table_size, kSwitchTableEntryBits);
    usage.allocation.ramb18 += mc.ramb18;
    usage.allocation.ramb36 += mc.ramb36;
    usage.allocation.cost += mc.cost;
  }
  return {usage};
}

// -------------------------------------------------------- Ingress Filter
std::vector<std::string> IngressFilterTemplate::submodules() const {
  return {"classification", "metering"};
}

std::vector<resource::ComponentUsage> IngressFilterTemplate::resource_usage(
    const sw::SwitchResourceConfig& config) const {
  resource::ComponentUsage cls;
  cls.name = "Class. Tbl";
  cls.parameters = format_table_size(config.classification_table_size);
  cls.entry_width_bits = kClassTableEntryBits;
  cls.allocation =
      resource::allocate_table(config.classification_table_size, kClassTableEntryBits);

  resource::ComponentUsage meter;
  meter.name = "Meter Tbl";
  meter.parameters = format_table_size(config.meter_table_size);
  meter.entry_width_bits = kMeterTableEntryBits;
  meter.allocation =
      resource::allocate_table(config.meter_table_size, kMeterTableEntryBits);
  return {cls, meter};
}

// ------------------------------------------------------------- Gate Ctrl
std::vector<std::string> GateCtrlTemplate::submodules() const {
  return {"ingress gates", "egress gates"};
}

std::vector<resource::ComponentUsage> GateCtrlTemplate::resource_usage(
    const sw::SwitchResourceConfig& config) const {
  resource::ComponentUsage usage;
  usage.name = "Gate Tbl";
  usage.parameters = std::to_string(config.gate_table_size) + ", " +
                     std::to_string(config.queues_per_port) + ", " +
                     std::to_string(config.port_count);
  usage.entry_width_bits = kGateTableEntryBits;
  // One In-GCL and one Out-GCL per enabled TSN port, each an independent
  // small memory (policy 2: one primitive minimum).
  usage.allocation =
      replicate(resource::allocate_instance(config.gate_table_size, kGateTableEntryBits),
                2 * config.port_count);
  return {usage};
}

// ----------------------------------------------------------- Egress Sched
std::vector<std::string> EgressSchedTemplate::submodules() const {
  return {"strict priority", "credit-based shaper", "transmit"};
}

std::vector<resource::ComponentUsage> EgressSchedTemplate::resource_usage(
    const sw::SwitchResourceConfig& config) const {
  resource::ComponentUsage cbs;
  cbs.name = "CBS Tbl";
  cbs.parameters = std::to_string(config.cbs_map_size) + ", " +
                   std::to_string(config.cbs_table_size) + ", " +
                   std::to_string(config.port_count);
  cbs.entry_width_bits = kCbsTableEntryBits;
  // CBS map + CBS table per enabled TSN port; both are one-primitive
  // instances, so the pair costs 2 x 18 Kb per port.
  const resource::Allocation map_one =
      resource::allocate_instance(config.cbs_map_size, kCbsMapEntryBits);
  const resource::Allocation cbs_one =
      resource::allocate_instance(config.cbs_table_size, kCbsTableEntryBits);
  cbs.allocation = replicate(map_one, config.port_count);
  const resource::Allocation cbs_all = replicate(cbs_one, config.port_count);
  cbs.allocation.ramb18 += cbs_all.ramb18;
  cbs.allocation.ramb36 += cbs_all.ramb36;
  cbs.allocation.cost += cbs_all.cost;

  resource::ComponentUsage queues;
  queues.name = "Queues";
  queues.parameters = std::to_string(config.queue_depth) + ", " +
                      std::to_string(config.queues_per_port) + ", " +
                      std::to_string(config.port_count);
  queues.entry_width_bits = kQueueMetadataBits;
  queues.allocation =
      replicate(resource::allocate_instance(config.queue_depth, kQueueMetadataBits),
                config.queues_per_port * config.port_count);

  resource::ComponentUsage buffers;
  buffers.name = "Buffers";
  buffers.parameters = std::to_string(config.buffers_per_port) + ", " +
                       std::to_string(config.port_count);
  buffers.entry_width_bits = resource::kBufferWordBits;
  buffers.allocation = resource::allocate_packet_buffers(
      config.buffers_per_port * config.port_count, config.buffer_bytes);
  return {cbs, queues, buffers};
}

// ---------------------------------------------------------------- library
std::vector<std::unique_ptr<FunctionTemplate>> standard_templates() {
  std::vector<std::unique_ptr<FunctionTemplate>> templates;
  templates.push_back(std::make_unique<TimeSyncTemplate>());
  templates.push_back(std::make_unique<PacketSwitchTemplate>());
  templates.push_back(std::make_unique<IngressFilterTemplate>());
  templates.push_back(std::make_unique<GateCtrlTemplate>());
  templates.push_back(std::make_unique<EgressSchedTemplate>());
  return templates;
}

std::string format_table_size(std::int64_t size) {
  if (size >= 2048 && size % 1024 == 0) return std::to_string(size / 1024) + "K";
  return std::to_string(size);
}

}  // namespace tsn::builder
