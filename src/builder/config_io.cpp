#include "builder/config_io.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <functional>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace tsn::builder {
namespace {

struct Field {
  const char* key;
  std::int64_t sw::SwitchResourceConfig::* member;
};

/// Canonical order of the text form (Table II order).
constexpr Field kFields[] = {
    {"unicast_table_size", &sw::SwitchResourceConfig::unicast_table_size},
    {"multicast_table_size", &sw::SwitchResourceConfig::multicast_table_size},
    {"classification_table_size", &sw::SwitchResourceConfig::classification_table_size},
    {"meter_table_size", &sw::SwitchResourceConfig::meter_table_size},
    {"gate_table_size", &sw::SwitchResourceConfig::gate_table_size},
    {"cbs_map_size", &sw::SwitchResourceConfig::cbs_map_size},
    {"cbs_table_size", &sw::SwitchResourceConfig::cbs_table_size},
    {"queue_depth", &sw::SwitchResourceConfig::queue_depth},
    {"queues_per_port", &sw::SwitchResourceConfig::queues_per_port},
    {"buffers_per_port", &sw::SwitchResourceConfig::buffers_per_port},
    {"buffer_bytes", &sw::SwitchResourceConfig::buffer_bytes},
    {"port_count", &sw::SwitchResourceConfig::port_count},
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

std::string to_text(const sw::SwitchResourceConfig& config) {
  std::string out = "# TSN-Builder resource configuration (Table II parameters)\n";
  for (const Field& f : kFields) {
    out += std::string(f.key) + " = " + std::to_string(config.*f.member) + "\n";
  }
  return out;
}

sw::SwitchResourceConfig config_from_text(const std::string& text) {
  sw::SwitchResourceConfig config;
  std::istringstream in(text);
  std::string raw_line;
  while (std::getline(in, raw_line)) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    require(eq != std::string_view::npos,
            "config: malformed line (expected 'key = value'): " + std::string(line));
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    const Field* field = nullptr;
    for (const Field& f : kFields) {
      if (key == f.key) {
        field = &f;
        break;
      }
    }
    require(field != nullptr, "config: unknown key '" + std::string(key) + "'");

    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    require(ec == std::errc() && ptr == value.data() + value.size(),
            "config: value of '" + std::string(key) + "' is not an integer: '" +
                std::string(value) + "'");
    config.*field->member = parsed;
  }
  config.validate();
  return config;
}

void save_config(const sw::SwitchResourceConfig& config, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "cannot open '" + path + "' for writing");
  out << to_text(config);
  require(out.good(), "failed writing configuration to '" + path + "'");
}

sw::SwitchResourceConfig load_config(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open configuration file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return config_from_text(buffer.str());
}

}  // namespace tsn::builder
