#include "builder/planner.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "sched/cqf_analysis.hpp"

namespace tsn::builder {
namespace {

/// Stream-count inputs of guideline 1: unicast entries are keyed by
/// (dst, vid); classification/meter entries by the full classification
/// tuple. Path aggregation makes same-path flows share one VID, so both
/// counts collapse to one entry per aggregate.
struct StreamCounts {
  std::int64_t unicast = 0;
  std::int64_t classification = 0;
};

StreamCounts count_streams(const std::vector<traffic::FlowSpec>& flows) {
  std::set<std::tuple<topo::NodeId, VlanId>> unicast_keys;
  std::set<std::tuple<topo::NodeId, topo::NodeId, VlanId, Priority>> class_keys;
  for (const traffic::FlowSpec& f : flows) {
    unicast_keys.emplace(f.dst_host, f.vid);
    class_keys.emplace(f.src_host, f.dst_host, f.vid, f.priority);
  }
  return StreamCounts{static_cast<std::int64_t>(unicast_keys.size()),
                      static_cast<std::int64_t>(class_keys.size())};
}

std::int64_t count_rc_queues(const std::vector<traffic::FlowSpec>& flows) {
  std::set<Priority> rc_priorities;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type == net::TrafficClass::kRateConstrained) rc_priorities.insert(f.priority);
  }
  return static_cast<std::int64_t>(rc_priorities.size());
}

/// Headroom over the ITP peak: gate-boundary skew can briefly leave the
/// previous slot's packets in the queue while the next slot's arrive.
constexpr std::int64_t kQueueSkewHeadroom = 2;
constexpr std::int64_t kMinQueueDepth = 4;

}  // namespace

PlannerOutput ParameterPlanner::plan(const PlannerInput& input) {
  require(input.topology != nullptr, "planner: an application topology is required");
  require(!input.flows.empty(), "planner: an application flow set is required");
  require(input.slot.ns() > 0, "planner: slot size must be positive");

  PlannerOutput out;
  sw::SwitchResourceConfig& c = out.config;

  // Guideline 1 — shared tables sized by the application's streams.
  const StreamCounts streams = count_streams(input.flows);
  c.unicast_table_size = streams.unicast;
  c.multicast_table_size = 0;  // the evaluation splits multicast out
  c.classification_table_size = streams.classification;
  c.meter_table_size = streams.classification;

  // Guideline 2 — gate table entries.
  if (input.use_cqf) {
    c.gate_table_size = sched::gate_entries_for_cqf();
  } else {
    const Duration cycle = sched::scheduling_cycle(input.flows);
    c.gate_table_size = sched::gate_entries_for_full_cycle(cycle, input.slot);
  }

  // Guideline 3 — CBS sized by the RC queues in use.
  const std::int64_t rc_queues = count_rc_queues(input.flows);
  c.cbs_map_size = std::max<std::int64_t>(1, rc_queues);
  c.cbs_table_size = c.cbs_map_size;

  // Guideline 4 — queue depth from the ITP injection plan.
  const sched::ItpPlanner itp_planner(*input.topology, input.slot);
  out.itp = itp_planner.plan(input.flows);
  c.queue_depth =
      std::max(out.itp.max_queue_load + kQueueSkewHeadroom, kMinQueueDepth);
  c.queues_per_port = 8;

  // Guideline 5 — buffers and enabled TSN ports.
  c.buffers_per_port = c.queue_depth * c.queues_per_port;
  c.port_count = std::max<std::int64_t>(1, input.topology->max_enabled_tsn_ports());

  c.validate();

  out.rationale =
      "guideline 1: switch/class/meter tables hold " + std::to_string(streams.unicast) +
      " distinct streams (" + std::to_string(input.flows.size()) + " flows; " +
      std::to_string(streams.classification) + " classification keys)\n" +
      (input.use_cqf
           ? "guideline 2: CQF ping-pong needs " + std::to_string(c.gate_table_size) +
                 " gate entries per direction\n"
           : "guideline 2: full-cycle Qbv program needs " +
                 std::to_string(c.gate_table_size) + " gate entries (cycle / slot)\n") +
      "guideline 3: " + std::to_string(rc_queues) + " RC queue(s) in use -> CBS map/table size " +
      std::to_string(c.cbs_map_size) + "\n" +
      "guideline 4: ITP peak per-(link, slot) load " +
      std::to_string(out.itp.max_queue_load) + " -> queue depth " +
      std::to_string(c.queue_depth) + " (load + " + std::to_string(kQueueSkewHeadroom) +
      " skew headroom, min " + std::to_string(kMinQueueDepth) + ")" +
      (out.itp.wire_feasible ? "" : " [warning: peak slot load exceeds the wire]") + "\n" +
      "guideline 5: " + std::to_string(c.buffers_per_port) + " buffers per port (depth x " +
      std::to_string(c.queues_per_port) + " queues); " + std::to_string(c.port_count) +
      " enabled TSN port(s) from the topology\n";
  return out;
}

}  // namespace tsn::builder
