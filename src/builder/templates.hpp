// The five switch function templates (paper §III.A, Fig. 3) with their
// resource accounting. Each template names its submodules and prices the
// BRAM the template consumes under a given resource configuration —
// concatenating the five templates' usages in pipeline order yields the
// paper's Table III rows: Switch Tbl, Class. Tbl, Meter Tbl, Gate Tbl,
// CBS Tbl, Queues, Buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resource/report.hpp"
#include "switch/config.hpp"

namespace tsn::builder {

enum class TemplateKind : std::uint8_t {
  kTimeSync,
  kPacketSwitch,
  kIngressFilter,
  kGateCtrl,
  kEgressSched,
};

/// Entry widths of the memories each template instantiates (bits).
inline constexpr std::int64_t kSwitchTableEntryBits = 72;   // MAC + VID -> port
inline constexpr std::int64_t kClassTableEntryBits = 117;   // 5-tuple -> meter, queue
inline constexpr std::int64_t kMeterTableEntryBits = 68;    // token bucket state
inline constexpr std::int64_t kGateTableEntryBits = 40;     // interval + 8 gate states
inline constexpr std::int64_t kCbsMapEntryBits = 16;        // queue -> CBS entry
inline constexpr std::int64_t kCbsTableEntryBits = 48;      // idle/send slope, credit
inline constexpr std::int64_t kQueueMetadataBits = 32;      // buffer id, length, flags

class FunctionTemplate {
 public:
  virtual ~FunctionTemplate() = default;

  [[nodiscard]] virtual TemplateKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<std::string> submodules() const = 0;

  /// The BRAM components this template instantiates under `config`
  /// (empty when the template holds no table memory, e.g. Time Sync).
  [[nodiscard]] virtual std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const = 0;
};

class TimeSyncTemplate final : public FunctionTemplate {
 public:
  [[nodiscard]] TemplateKind kind() const override { return TemplateKind::kTimeSync; }
  [[nodiscard]] std::string name() const override { return "Time Sync"; }
  [[nodiscard]] std::vector<std::string> submodules() const override;
  [[nodiscard]] std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const override;
};

class PacketSwitchTemplate final : public FunctionTemplate {
 public:
  [[nodiscard]] TemplateKind kind() const override { return TemplateKind::kPacketSwitch; }
  [[nodiscard]] std::string name() const override { return "Packet Switch"; }
  [[nodiscard]] std::vector<std::string> submodules() const override;
  [[nodiscard]] std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const override;
};

class IngressFilterTemplate final : public FunctionTemplate {
 public:
  [[nodiscard]] TemplateKind kind() const override { return TemplateKind::kIngressFilter; }
  [[nodiscard]] std::string name() const override { return "Ingress Filter"; }
  [[nodiscard]] std::vector<std::string> submodules() const override;
  [[nodiscard]] std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const override;
};

class GateCtrlTemplate final : public FunctionTemplate {
 public:
  [[nodiscard]] TemplateKind kind() const override { return TemplateKind::kGateCtrl; }
  [[nodiscard]] std::string name() const override { return "Gate Ctrl"; }
  [[nodiscard]] std::vector<std::string> submodules() const override;
  [[nodiscard]] std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const override;
};

class EgressSchedTemplate final : public FunctionTemplate {
 public:
  [[nodiscard]] TemplateKind kind() const override { return TemplateKind::kEgressSched; }
  [[nodiscard]] std::string name() const override { return "Egress Sched"; }
  [[nodiscard]] std::vector<std::string> submodules() const override;
  [[nodiscard]] std::vector<resource::ComponentUsage> resource_usage(
      const sw::SwitchResourceConfig& config) const override;
};

/// The standard template library, in pipeline order: Time Sync, Packet
/// Switch, Ingress Filter, Gate Ctrl, Egress Sched.
[[nodiscard]] std::vector<std::unique_ptr<FunctionTemplate>> standard_templates();

/// Table-size rendering as the paper prints it: multiples of 1024 from 2K
/// upward use the "K" suffix ("16K"), everything else is decimal ("1024").
[[nodiscard]] std::string format_table_size(std::int64_t size);

}  // namespace tsn::builder
