#include "builder/presets.hpp"

#include "common/error.hpp"

namespace tsn::builder {

sw::SwitchResourceConfig bcm53154_reference() {
  sw::SwitchResourceConfig c;
  c.unicast_table_size = 16384;
  c.multicast_table_size = 0;
  c.classification_table_size = 1024;
  c.meter_table_size = 512;
  c.gate_table_size = 256;
  c.cbs_map_size = 8;
  c.cbs_table_size = 8;
  c.queue_depth = 16;
  c.queues_per_port = 8;
  c.buffers_per_port = 128;
  c.port_count = 4;
  return c;
}

sw::SwitchResourceConfig paper_customized(std::int64_t ports) {
  require(ports >= 1, "paper_customized: ports must be >= 1");
  sw::SwitchResourceConfig c;
  c.unicast_table_size = 1024;
  c.multicast_table_size = 0;
  c.classification_table_size = 1024;
  c.meter_table_size = 1024;
  c.gate_table_size = 2;  // CQF ping-pong
  c.cbs_map_size = 3;
  c.cbs_table_size = 3;
  c.queue_depth = 12;  // ITP analysis, paper guideline 4
  c.queues_per_port = 8;
  c.buffers_per_port = c.queue_depth * c.queues_per_port;  // guideline 5
  c.port_count = ports;
  return c;
}

sw::SwitchResourceConfig table1_case1() {
  sw::SwitchResourceConfig c = paper_customized(1);
  c.queue_depth = 16;
  c.buffers_per_port = 128;
  return c;
}

sw::SwitchResourceConfig table1_case2() {
  sw::SwitchResourceConfig c = paper_customized(1);
  c.queue_depth = 12;
  c.buffers_per_port = 96;
  return c;
}

}  // namespace tsn::builder
