// Error handling policy (C++ Core Guidelines E.2/E.3):
//  * configuration / construction errors throw tsn::Error — they are
//    programming or provisioning mistakes the caller must fix;
//  * dataplane events that the hardware would count (queue-full drop,
//    meter-red drop, buffer exhaustion) are NOT errors: they increment
//    counters and the packet is dropped, exactly as on the FPGA.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace tsn {

/// Base exception for all configuration and usage errors in TSN-Builder.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws tsn::Error with `message` when `condition` is false.
/// Used to validate API arguments and invariants at configuration time.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace tsn
