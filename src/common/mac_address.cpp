#include "common/mac_address.hpp"

#include <cctype>

namespace tsn {
namespace {

std::optional<int> hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expect exactly "xx:xx:xx:xx:xx:xx" (17 chars).
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t base = i * 3;
    const auto hi = hex_digit(text[base]);
    const auto lo = hex_digit(text[base + 1]);
    if (!hi || !lo) return std::nullopt;
    if (i < 5 && text[base + 2] != ':') return std::nullopt;
    octets[i] = static_cast<std::uint8_t>((*hi << 4) | *lo);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (std::size_t i = 0; i < 6; ++i) {
    if (i != 0) out.push_back(':');
    out.push_back(kHex[octets_[i] >> 4]);
    out.push_back(kHex[octets_[i] & 0xF]);
  }
  return out;
}

}  // namespace tsn
