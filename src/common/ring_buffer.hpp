// Fixed-capacity ring buffer.
//
// Models a hardware FIFO: capacity is set once (the "queue depth" resource
// parameter) and push fails — it does not grow — when full, mirroring the
// tail-drop behaviour of the FPGA metadata queues.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace tsn {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    require(capacity > 0, "RingBuffer: capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  /// Appends `value`; returns false (and leaves the buffer unchanged)
  /// when full. This is the hardware tail-drop path.
  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Oldest element. Precondition: !empty().
  [[nodiscard]] const T& front() const {
    require(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_];
  }

  /// Removes and returns the oldest element. Precondition: !empty().
  T pop() {
    require(!empty(), "RingBuffer::pop on empty buffer");
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return out;
  }

  /// Element `i` positions behind the front (0 == front).
  [[nodiscard]] const T& at(std::size_t i) const {
    require(i < size_, "RingBuffer::at out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tsn
