// Formatting helpers shared by the resource report and bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace tsn {

/// Formats a double with `decimals` fractional digits ("16.875").
[[nodiscard]] std::string format_double(double value, int decimals);

/// Formats a double, trimming trailing zeros ("16.875", "72", "46.59").
[[nodiscard]] std::string format_trimmed(double value, int max_decimals = 3);

/// "46.59%"-style percentage with two decimals.
[[nodiscard]] std::string format_percent(double fraction, int decimals = 2);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace tsn
