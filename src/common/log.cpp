#include "common/log.hpp"

#include <cstdio>

namespace tsn {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  const auto idx = static_cast<std::size_t>(level);
  std::fprintf(stderr, "[%s] %.*s\n", kNames[idx],
               static_cast<int>(message.size()), message.data());
}

}  // namespace tsn
