#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace tsn {
namespace {

// One simulation context per thread: campaign workers each drive their
// own simulator, and their log lines must carry their own timeline.
thread_local bool g_sim_time_set = false;
thread_local TimePoint g_sim_now{};

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  return kNames[static_cast<std::size_t>(level)];
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

std::optional<LogLevel> Logger::init_from_env() {
  const char* env = std::getenv("TSNB_LOG");
  if (env == nullptr) return std::nullopt;
  const std::optional<LogLevel> level = parse_log_level(env);
  if (level.has_value()) set_level(*level);
  return level;
}

void Logger::set_sim_now(TimePoint now) {
  g_sim_time_set = true;
  g_sim_now = now;
}

void Logger::clear_sim_now() { g_sim_time_set = false; }

std::optional<TimePoint> Logger::sim_now() {
  if (!g_sim_time_set) return std::nullopt;
  return g_sim_now;
}

void Logger::write(LogLevel level, std::string_view message) {
  if (g_sim_time_set) {
    std::fprintf(stderr, "[%s] [t=%s] %.*s\n", log_level_name(level),
                 to_string(g_sim_now).c_str(), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace tsn
