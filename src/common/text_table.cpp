#include "common/text_table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tsn {
namespace {

void append_row(std::string& out, const std::vector<std::string>& cells,
                const std::vector<std::size_t>& widths) {
  out += "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    out += " ";
    out += cell;
    out.append(widths[c] - cell.size(), ' ');
    out += " |";
  }
  out += "\n";
}

void append_rule(std::string& out, const std::vector<std::size_t>& widths) {
  out += "|";
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += "|";
  }
  out += "\n";
}

}  // namespace

void TextTable::set_header(std::vector<std::string> cells) {
  require(rows_.empty(), "TextTable: set_header must precede add_row");
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { separators_.push_back(rows_.size()); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return {};

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  if (!header_.empty()) {
    append_row(out, header_, widths);
    append_rule(out, widths);
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end()) {
      append_rule(out, widths);
    }
    append_row(out, rows_[r], widths);
  }
  return out;
}

}  // namespace tsn
