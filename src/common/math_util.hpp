// Small integer math helpers used across the planner and resource model.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>

#include "common/error.hpp"
#include "common/time.hpp"

namespace tsn {

/// Ceiling division for positive integers.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) {
  return (num + den - 1) / den;
}

/// Rounds `v` up to the next multiple of `m` (m > 0).
[[nodiscard]] constexpr std::int64_t round_up(std::int64_t v, std::int64_t m) {
  return ceil_div(v, m) * m;
}

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v >= 1).
[[nodiscard]] constexpr std::uint64_t next_power_of_two(std::uint64_t v) {
  if (v <= 1) return 1;
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Least common multiple of a set of durations. The TSN "scheduling cycle"
/// is the LCM of all flow periods (paper §III.C guideline 2).
[[nodiscard]] inline Duration lcm_of_periods(std::span<const Duration> periods) {
  require(!periods.empty(), "lcm_of_periods: empty period set");
  std::int64_t acc = 1;
  for (const Duration p : periods) {
    require(p.ns() > 0, "lcm_of_periods: periods must be positive");
    acc = std::lcm(acc, p.ns());
  }
  return Duration(acc);
}

}  // namespace tsn
