#include "common/string_util.hpp"

#include <cstdio>

#include "common/time.hpp"
#include "common/units.hpp"

namespace tsn {

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_trimmed(double value, int max_decimals) {
  std::string s = format_double(value, max_decimals);
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string format_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_string(Duration d) {
  const std::int64_t ns = d.ns();
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns >= 1'000'000'000 && abs_ns % 1'000'000 == 0) {
    return format_trimmed(d.sec(), 3) + "s";
  }
  if (abs_ns >= 1'000'000 && abs_ns % 1'000 == 0) {
    return format_trimmed(d.ms(), 3) + "ms";
  }
  if (abs_ns >= 1'000) {
    return format_trimmed(d.us(), 3) + "us";
  }
  return std::to_string(ns) + "ns";
}

std::string to_string(TimePoint t) { return to_string(t - TimePoint(0)); }

std::string to_string(BitCount b) {
  const double kb = b.kilobits();
  if (kb >= 1.0) return format_trimmed(kb, 3) + "Kb";
  return std::to_string(b.bits()) + "b";
}

std::string to_string(DataRate r) {
  if (r.bps() >= 1'000'000'000 && r.bps() % 1'000'000'000 == 0) {
    return std::to_string(r.bps() / 1'000'000'000) + "Gbps";
  }
  if (r.bps() >= 1'000'000) {
    return format_trimmed(static_cast<double>(r.bps()) / 1e6, 3) + "Mbps";
  }
  return std::to_string(r.bps()) + "bps";
}

}  // namespace tsn
