// Simulation time types.
//
// All simulation time in TSN-Builder is expressed in integer nanoseconds.
// A nanosecond grid is exact for every quantity in the paper's evaluation:
// 64 B at 1 Gbps serializes in 512 ns, the CQF slot is 65 us, gPTP errors
// are tens of ns. Using a strong type (rather than raw int64_t) prevents
// accidental mixing of durations, absolute times, and other integers.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tsn {

/// A span of simulated time in nanoseconds. Signed so that differences and
/// clock offsets (which may be negative) are representable.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }
  constexpr Duration& operator*=(std::int64_t k) { ns_ *= k; return *this; }

  [[nodiscard]] constexpr Duration operator-() const { return Duration(-ns_); }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration(k * a.ns_); }
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ns_ / k); }
  friend constexpr Duration operator%(Duration a, Duration b) { return Duration(a.ns_ % b.ns_); }

  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }

 private:
  std::int64_t ns_ = 0;
};

constexpr Duration nanoseconds(std::int64_t n) { return Duration(n); }
constexpr Duration microseconds(std::int64_t n) { return Duration(n * 1'000); }
constexpr Duration milliseconds(std::int64_t n) { return Duration(n * 1'000'000); }
constexpr Duration seconds(std::int64_t n) { return Duration(n * 1'000'000'000); }

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) { return Duration(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_us(unsigned long long n) { return microseconds(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_ms(unsigned long long n) { return milliseconds(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_s(unsigned long long n) { return seconds(static_cast<std::int64_t>(n)); }
}  // namespace literals

/// An absolute point on the simulation timeline (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.ns_ + d.ns()); }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.ns_ - d.ns()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration(a.ns_ - b.ns_); }

  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { ns_ -= d.ns(); return *this; }

  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

 private:
  std::int64_t ns_ = 0;
};

/// Index of the time slot containing `t` for a given slot size.
/// Slots are half-open intervals [k*slot, (k+1)*slot).
[[nodiscard]] constexpr std::int64_t slot_index(TimePoint t, Duration slot) {
  // Floor division that is correct for negative times (clock offsets can
  // momentarily place a synchronized time before simulation start).
  const std::int64_t q = t.ns() / slot.ns();
  const std::int64_t r = t.ns() % slot.ns();
  return (r < 0) ? q - 1 : q;
}

/// Start of the slot following the one containing `t`.
[[nodiscard]] constexpr TimePoint next_slot_boundary(TimePoint t, Duration slot) {
  return TimePoint((slot_index(t, slot) + 1) * slot.ns());
}

[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);

}  // namespace tsn
