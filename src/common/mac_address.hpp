// IEEE 802 MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace tsn {

/// 48-bit IEEE 802 MAC address. Stored in network (transmission) byte order.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Builds an address from the low 48 bits of `value` (big-endian layout:
  /// bits 47..40 become the first octet). Convenient for tests and for
  /// assigning dense addresses to simulated hosts.
  [[nodiscard]] static constexpr MacAddress from_u64(std::uint64_t value) {
    std::array<std::uint8_t, 6> o{};
    for (int i = 5; i >= 0; --i) {
      o[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xFF);
      value >>= 8;
    }
    return MacAddress(o);
  }

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on
  /// malformed input.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (const std::uint8_t o : octets_) v = (v << 8) | o;
    return v;
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const { return octets_; }

  /// Group (multicast/broadcast) addresses have the I/G bit of the first
  /// octet set. TSN-Builder splits multicast flows into unicast flows, but
  /// the Packet Switch template still distinguishes them (paper Fig. 4).
  [[nodiscard]] constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    for (const std::uint8_t o : octets_) {
      if (o != 0xFF) return false;
    }
    return true;
  }

  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  constexpr auto operator<=>(const MacAddress&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// VLAN identifier (12 bits, 1..4094 usable; 0 means priority-tagged).
using VlanId = std::uint16_t;
inline constexpr VlanId kMaxVlanId = 4095;

/// 802.1Q Priority Code Point (3 bits, 0 lowest .. 7 highest).
using Priority = std::uint8_t;
inline constexpr Priority kMaxPriority = 7;
inline constexpr std::size_t kPriorityLevels = 8;

}  // namespace tsn

template <>
struct std::hash<tsn::MacAddress> {
  std::size_t operator()(const tsn::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};
