// Plain-text table renderer used to print paper-style tables
// (Table I / Table III) from the bench harnesses and ResourceReport.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsn {

/// Accumulates rows of cells and renders them with aligned columns:
///
///   | Resource Type | Parameters | BRAMs  |
///   |---------------|------------|--------|
///   | Switch Tbl    | 16K, 0     | 1152Kb |
class TextTable {
 public:
  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> cells);

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row (used to separate
  /// a totals row, as the paper tables do).
  void add_separator();

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

}  // namespace tsn
