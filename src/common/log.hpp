// Minimal leveled logger.
//
// Simulations are quiet by default (Info); set the level to Debug/Trace to
// watch per-packet dataplane decisions. The logger is a process-wide
// singleton because log level is an operator concern, not a per-object
// one; it is settable from outside the process via the TSNB_LOG
// environment variable (init_from_env) and the `tsnb --log-level` flag.
//
// Each line is prefixed with its level tag, and — when the emitting
// thread is inside a simulation (the event loop publishes its clock via
// set_sim_now, thread-locally so parallel campaign workers don't mix
// timelines) — with the current simulated time.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace tsn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// "trace" | "debug" | "info" | "warn" | "error" | "off" (case-sensitive);
/// nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

[[nodiscard]] const char* log_level_name(LogLevel level);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Applies the TSNB_LOG environment variable (a level name) when set
  /// and valid; unknown values are ignored. Returns the level applied.
  std::optional<LogLevel> init_from_env();

  /// Publishes the simulated time of the calling thread; subsequent
  /// write() calls from this thread prefix it. The event simulator calls
  /// this as it executes events.
  static void set_sim_now(TimePoint now);
  /// Ends the calling thread's simulation context (no more time prefix).
  static void clear_sim_now();
  [[nodiscard]] static std::optional<TimePoint> sim_now();

  void write(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  logger.write(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace tsn
