// Minimal leveled logger.
//
// Simulations are quiet by default (Info); set the level to Debug/Trace to
// watch per-packet dataplane decisions. The logger is a process-wide
// singleton because log level is an operator concern, not a per-object one.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace tsn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  logger.write(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace tsn
