// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and trivially
// seedable so every experiment in this repository is reproducible from a
// single seed. std::mt19937 would also work but its state is bulky and its
// seeding across standard libraries is a portability hazard.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "common/error.hpp"

namespace tsn {

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-seeds via SplitMix64 so that nearby seeds give unrelated streams.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection-free Lemire
  /// reduction; the tiny modulo bias is irrelevant at 64-bit width.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    require(lo <= hi, "Rng::uniform: empty range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    __extension__ using U128 = unsigned __int128;
    const U128 wide = static_cast<U128>((*this)()) * static_cast<U128>(span);
    return lo + static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson inter-arrival times of best-effort background traffic.
  [[nodiscard]] double exponential(double mean) {
    require(mean > 0.0, "Rng::exponential: mean must be positive");
    // 1 - uniform01() is in (0, 1], so the log argument never hits zero.
    return -mean * std::log(1.0 - uniform01());
  }

  /// Picks an index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    require(n > 0, "Rng::index: n must be positive");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derives the seed of a named per-subsystem random stream from a base
/// experiment seed. Streams ("traffic", "fault", "timesync", ...) are
/// decorrelated from each other and from the base seed, so adding draws
/// to one subsystem — e.g. turning fault injection on — cannot perturb
/// another subsystem's sequence. `instance` separates per-entity streams
/// within a subsystem (one per NIC, one per link, ...).
[[nodiscard]] inline std::uint64_t stream_seed(std::uint64_t base,
                                               std::string_view stream,
                                               std::uint64_t instance = 0) {
  // FNV-1a over the stream name: stable across platforms and standard
  // libraries, unlike std::hash.
  std::uint64_t name_hash = 0xCBF29CE484222325ULL;
  for (const char c : stream) {
    name_hash ^= static_cast<std::uint8_t>(c);
    name_hash *= 0x100000001B3ULL;
  }
  // SplitMix64 finalizer decorrelates (base, stream, instance) triples.
  std::uint64_t z = base ^ name_hash ^ (instance + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Convenience: an Rng seeded for the named stream.
[[nodiscard]] inline Rng make_stream(std::uint64_t base, std::string_view stream,
                                     std::uint64_t instance = 0) {
  return Rng(stream_seed(base, stream, instance));
}

}  // namespace tsn
