// Data-size and data-rate units.
//
// Resource accounting in the paper is in Kb (1 Kb = 1024 bits) of on-chip
// BRAM; link speeds are bits/second. Strong types keep bit/byte and
// rate/size confusion out of the dataplane and the resource model.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/time.hpp"

namespace tsn {

/// A quantity of memory or payload measured in bits.
class BitCount {
 public:
  constexpr BitCount() = default;
  constexpr explicit BitCount(std::int64_t bits) : bits_(bits) {}

  [[nodiscard]] static constexpr BitCount from_bytes(std::int64_t bytes) {
    return BitCount(bytes * 8);
  }
  [[nodiscard]] static constexpr BitCount from_kilobits(std::int64_t kb) {
    return BitCount(kb * 1024);
  }

  [[nodiscard]] constexpr std::int64_t bits() const { return bits_; }
  [[nodiscard]] constexpr std::int64_t bytes() const { return bits_ / 8; }
  /// Kb as the paper reports it (1 Kb = 1024 bits); may be fractional
  /// (the per-buffer cost is 16.875 Kb).
  [[nodiscard]] constexpr double kilobits() const {
    return static_cast<double>(bits_) / 1024.0;
  }

  constexpr auto operator<=>(const BitCount&) const = default;

  constexpr BitCount& operator+=(BitCount o) { bits_ += o.bits_; return *this; }
  constexpr BitCount& operator-=(BitCount o) { bits_ -= o.bits_; return *this; }

  friend constexpr BitCount operator+(BitCount a, BitCount b) { return BitCount(a.bits_ + b.bits_); }
  friend constexpr BitCount operator-(BitCount a, BitCount b) { return BitCount(a.bits_ - b.bits_); }
  friend constexpr BitCount operator*(BitCount a, std::int64_t k) { return BitCount(a.bits_ * k); }
  friend constexpr BitCount operator*(std::int64_t k, BitCount a) { return a * k; }

 private:
  std::int64_t bits_ = 0;
};

namespace literals {
constexpr BitCount operator""_bits(unsigned long long n) { return BitCount(static_cast<std::int64_t>(n)); }
constexpr BitCount operator""_bytes(unsigned long long n) { return BitCount::from_bytes(static_cast<std::int64_t>(n)); }
constexpr BitCount operator""_Kb(unsigned long long n) { return BitCount::from_kilobits(static_cast<std::int64_t>(n)); }
}  // namespace literals

/// A transmission or policing rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::int64_t bps) : bps_(bps) {}

  [[nodiscard]] static constexpr DataRate bits_per_sec(std::int64_t bps) { return DataRate(bps); }
  [[nodiscard]] static constexpr DataRate kilobits_per_sec(std::int64_t kbps) { return DataRate(kbps * 1'000); }
  [[nodiscard]] static constexpr DataRate megabits_per_sec(std::int64_t mbps) { return DataRate(mbps * 1'000'000); }
  [[nodiscard]] static constexpr DataRate gigabits_per_sec(std::int64_t gbps) { return DataRate(gbps * 1'000'000'000); }

  [[nodiscard]] constexpr std::int64_t bps() const { return bps_; }
  [[nodiscard]] constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }

  constexpr auto operator<=>(const DataRate&) const = default;

  /// Time to serialize `size` at this rate, rounded up to whole ns.
  /// 64 B at 1 Gbps -> exactly 512 ns.
  [[nodiscard]] constexpr Duration transmission_time(BitCount size) const {
    const std::int64_t num = size.bits() * 1'000'000'000;
    return Duration((num + bps_ - 1) / bps_);
  }

  /// Number of bits that pass in `d` (floor).
  [[nodiscard]] constexpr BitCount bits_in(Duration d) const {
    // bps * ns / 1e9 without overflow for rates <= ~9.2 Tbps and d <= ~1e6 s:
    // split ns into seconds and remainder.
    const std::int64_t s = d.ns() / 1'000'000'000;
    const std::int64_t rem = d.ns() % 1'000'000'000;
    return BitCount(bps_ * s + bps_ * rem / 1'000'000'000);
  }

  [[nodiscard]] constexpr DataRate scaled_percent(std::int64_t pct) const {
    return DataRate(bps_ * pct / 100);
  }

 private:
  std::int64_t bps_ = 0;
};

/// Ethernet physical-layer overheads that occupy the wire in addition to the
/// frame itself (IEEE 802.3): 7 B preamble + 1 B SFD, and the minimum
/// inter-frame gap of 12 B.
inline constexpr BitCount kEthernetPreambleSfd = BitCount::from_bytes(8);
inline constexpr BitCount kEthernetInterFrameGap = BitCount::from_bytes(12);
inline constexpr std::int64_t kEthernetMinFrameBytes = 64;    // incl. FCS
inline constexpr std::int64_t kEthernetMaxFrameBytes = 1518;  // untagged, incl. FCS

[[nodiscard]] std::string to_string(BitCount b);
[[nodiscard]] std::string to_string(DataRate r);

}  // namespace tsn
