#include "traffic/flow.hpp"

#include "common/error.hpp"

namespace tsn::traffic {

void FlowSpec::validate() const {
  require(src_host != topo::kInvalidNode && dst_host != topo::kInvalidNode,
          "FlowSpec: endpoints required");
  require(src_host != dst_host, "FlowSpec: src and dst must differ");
  require(frame_bytes >= kEthernetMinFrameBytes && frame_bytes <= kEthernetMaxFrameBytes + 4,
          "FlowSpec: frame size out of range");
  require(vid >= 1 && vid <= 4094, "FlowSpec: VID out of range");
  if (type == net::TrafficClass::kTimeSensitive) {
    require(period.ns() > 0, "FlowSpec: TS flow needs a period");
    require(deadline.ns() > 0, "FlowSpec: TS flow needs a deadline");
  } else {
    require(rate.bps() > 0, "FlowSpec: RC/BE flow needs a rate");
  }
}

MacAddress host_mac(topo::NodeId host) {
  // 02:... = locally administered unicast.
  return MacAddress::from_u64(0x020000000000ULL | (static_cast<std::uint64_t>(host) + 1));
}

net::Packet make_flow_packet(const FlowSpec& flow) {
  net::Packet p = net::packet_with_frame_size(flow.frame_bytes);
  p.src = host_mac(flow.src_host);
  p.dst = host_mac(flow.dst_host);
  p.vlan = net::VlanTag{flow.priority, false, flow.vid};
  p.ethertype = net::kEtherTypeTsnData;
  return p;
}

}  // namespace tsn::traffic
