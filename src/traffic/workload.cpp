#include "traffic/workload.hpp"

#include <map>
#include <tuple>

#include "common/error.hpp"

namespace tsn::traffic {

std::vector<FlowSpec> make_ts_flows(topo::NodeId src, topo::NodeId dst,
                                    const TsWorkloadParams& params, net::FlowId first_id) {
  require(params.flow_count > 0, "make_ts_flows: need at least one flow");
  require(!params.deadline_choices.empty(), "make_ts_flows: empty deadline set");
  // params.seed is the campaign's raw base seed; draw from a named stream
  // so the deadline assignment is decorrelated from every other consumer
  // of that base seed (NIC jitter, fault plans, ...).
  Rng rng = make_stream(params.seed, "traffic.workload");
  std::vector<FlowSpec> flows;
  flows.reserve(params.flow_count);
  for (std::size_t i = 0; i < params.flow_count; ++i) {
    FlowSpec f;
    f.id = first_id + static_cast<net::FlowId>(i);
    f.type = net::TrafficClass::kTimeSensitive;
    f.src_host = src;
    f.dst_host = dst;
    f.frame_bytes = params.frame_bytes;
    f.period = params.period;
    f.deadline = params.deadline_choices[rng.index(params.deadline_choices.size())];
    f.priority = kTsPriority;
    f.vid = static_cast<VlanId>(params.first_vid + (i % 3994));
    f.validate();
    flows.push_back(f);
  }
  return flows;
}

FlowSpec make_rc_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, DataRate rate,
                      std::int64_t frame_bytes, Priority priority, VlanId vid) {
  FlowSpec f;
  f.id = id;
  f.type = net::TrafficClass::kRateConstrained;
  f.src_host = src;
  f.dst_host = dst;
  f.frame_bytes = frame_bytes;
  f.rate = rate;
  f.priority = priority;
  f.vid = vid;
  f.validate();
  return f;
}

FlowSpec make_be_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, DataRate rate,
                      std::int64_t frame_bytes, VlanId vid) {
  FlowSpec f;
  f.id = id;
  f.type = net::TrafficClass::kBestEffort;
  f.src_host = src;
  f.dst_host = dst;
  f.frame_bytes = frame_bytes;
  f.rate = rate;
  f.priority = kBePriority;
  f.vid = vid;
  f.validate();
  return f;
}

std::size_t aggregate_flows_by_path(std::vector<FlowSpec>& flows, VlanId first_vid) {
  require(first_vid >= 1, "aggregate_flows_by_path: VIDs start at 1");
  std::map<std::tuple<topo::NodeId, topo::NodeId, Priority>, VlanId> groups;
  VlanId next = first_vid;
  for (FlowSpec& f : flows) {
    const auto key = std::make_tuple(f.src_host, f.dst_host, f.priority);
    const auto it = groups.find(key);
    if (it != groups.end()) {
      f.vid = it->second;
      continue;
    }
    require(next <= 4094, "aggregate_flows_by_path: more aggregates than VIDs");
    groups.emplace(key, next);
    f.vid = next++;
  }
  return groups.size();
}

DataRate aggregate_ts_rate(const std::vector<FlowSpec>& flows) {
  double bps = 0.0;
  for (const FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    bps += static_cast<double>(net::wire_bits(f.frame_bytes).bits()) /
           f.period.sec();
  }
  return DataRate(static_cast<std::int64_t>(bps));
}

}  // namespace tsn::traffic
