// Flow specifications (paper §II.A): Time-Sensitive (periodic, deadline,
// highest priority), Rate-Constrained (reserved bandwidth, medium
// priority), Best-Effort (leftover bandwidth, lowest priority).
#pragma once

#include <cstdint>
#include <string>

#include "common/mac_address.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"
#include "topo/topology.hpp"

namespace tsn::traffic {

/// PCP / egress-queue assignment used across the repository:
/// queue 7 & 6 — the CQF pair for TS traffic (classification targets 7;
/// Gate Ctrl redirects into whichever of the pair is filling);
/// queues 5..3 — the three RC queues (paper: cbs_size = 3);
/// queues 2..0 — best effort.
inline constexpr Priority kTsPriority = 7;
inline constexpr Priority kRcPriorityHigh = 5;
inline constexpr Priority kRcPriorityMid = 4;
inline constexpr Priority kRcPriorityLow = 3;
inline constexpr Priority kBePriority = 0;

struct FlowSpec {
  net::FlowId id = 0;
  net::TrafficClass type = net::TrafficClass::kBestEffort;
  topo::NodeId src_host = topo::kInvalidNode;
  topo::NodeId dst_host = topo::kInvalidNode;

  /// Full Ethernet frame size (incl. tag + FCS), 64..1518 B.
  std::int64_t frame_bytes = 64;

  // TS flows.
  Duration period{};    // injection period (10 ms in the evaluation)
  Duration deadline{};  // relative end-to-end deadline
  /// ITP-assigned injection offset within the period (sched::ItpPlanner).
  Duration injection_offset{};

  // RC / BE flows.
  DataRate rate{};  // mean offered rate

  Priority priority = kBePriority;
  VlanId vid = 1;

  [[nodiscard]] net::PacketMeta meta_for(std::uint64_t sequence, TimePoint now) const {
    return net::PacketMeta{id, sequence, now, deadline, type};
  }

  void validate() const;
};

/// Deterministic locally-administered MAC for a topology host node.
[[nodiscard]] MacAddress host_mac(topo::NodeId host);

/// The packet a talker emits for `flow` (headers populated; metadata
/// stamped by the caller).
[[nodiscard]] net::Packet make_flow_packet(const FlowSpec& flow);

}  // namespace tsn::traffic
