// Workload builders guided by IEC 60802 traffic types (paper §IV.A):
// periodic TS flows with deadlines from {1, 2, 4, 8} ms, plus RC / BE
// background flows of a configurable aggregate bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "traffic/flow.hpp"

namespace tsn::traffic {

struct TsWorkloadParams {
  std::size_t flow_count = 1024;
  std::int64_t frame_bytes = 64;
  Duration period = milliseconds(10);
  /// Deadlines drawn uniformly from this set (IEC 60802 production cell).
  std::vector<Duration> deadline_choices = {milliseconds(1), milliseconds(2),
                                            milliseconds(4), milliseconds(8)};
  VlanId first_vid = 1;
  std::uint64_t seed = 42;
};

/// `first_id` gives the flows dense ids starting there.
[[nodiscard]] std::vector<FlowSpec> make_ts_flows(topo::NodeId src, topo::NodeId dst,
                                                  const TsWorkloadParams& params,
                                                  net::FlowId first_id = 0);

/// One RC background flow of the given mean rate (paper: 1024 B frames).
[[nodiscard]] FlowSpec make_rc_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
                                    DataRate rate, std::int64_t frame_bytes = 1024,
                                    Priority priority = kRcPriorityHigh, VlanId vid = 4000);

/// One BE background flow of the given mean rate.
[[nodiscard]] FlowSpec make_be_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
                                    DataRate rate, std::int64_t frame_bytes = 1024,
                                    VlanId vid = 4001);

/// Total offered TS bandwidth of a flow set (sanity checks / reports).
[[nodiscard]] DataRate aggregate_ts_rate(const std::vector<FlowSpec>& flows);

/// Path aggregation — the optimization the paper sketches under guideline
/// (1): "some table entries could be aggregated according to the
/// transmission path". Flows sharing (src, dst, priority) collapse onto
/// one VLAN id, so the unicast/classification/meter tables need one entry
/// per aggregate instead of one per flow. Rewrites the VIDs in place and
/// returns the number of aggregates.
///
/// Caveat (documented, inherent): aggregated RC flows share one meter, so
/// policing applies to the aggregate rather than per flow.
std::size_t aggregate_flows_by_path(std::vector<FlowSpec>& flows, VlanId first_vid = 1);

}  // namespace tsn::traffic
