// Dataplane counters. Drops are normal hardware behaviour, not C++ errors
// (see common/error.hpp) — every drop reason has its own counter, exactly
// like the MIB counters of a real switch.
#pragma once

#include <cstdint>
#include <string>

namespace tsn::sw {

enum class DropReason : std::uint8_t {
  kClassificationMiss,  // no classification entry (unprovisioned flow)
  kMeterViolation,      // token bucket marked the packet red
  kMaxSduExceeded,      // 802.1Qci per-stream filter: frame over max SDU
  kLookupMiss,          // no unicast/multicast forwarding entry
  kIngressGateClosed,   // 802.1Qci-style in-gate closed for the queue
  kQueueFull,           // metadata queue at configured depth
  kBufferExhausted,     // no free packet buffer in the port's pool
  kCount
};

[[nodiscard]] inline std::string to_string(DropReason r) {
  switch (r) {
    case DropReason::kClassificationMiss: return "classification_miss";
    case DropReason::kMeterViolation: return "meter_violation";
    case DropReason::kMaxSduExceeded: return "max_sdu_exceeded";
    case DropReason::kLookupMiss: return "lookup_miss";
    case DropReason::kIngressGateClosed: return "ingress_gate_closed";
    case DropReason::kQueueFull: return "queue_full";
    case DropReason::kBufferExhausted: return "buffer_exhausted";
    case DropReason::kCount: break;
  }
  return "?";
}

struct SwitchCounters {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops[static_cast<std::size_t>(DropReason::kCount)] = {};
  std::uint64_t guard_band_holds = 0;  // frames delayed by the length-aware guard
  std::uint64_t preemptions = 0;       // frames interrupted by an express frame

  void drop(DropReason r) { ++drops[static_cast<std::size_t>(r)]; }

  [[nodiscard]] std::uint64_t drop_count(DropReason r) const {
    return drops[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] std::uint64_t total_drops() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t d : drops) sum += d;
    return sum;
  }
};

}  // namespace tsn::sw
