// Gate Ctrl template (paper Fig. 3/5): augments queue management with the
// 802.1Qbv gate mechanism. Each port carries an ingress GCL and an egress
// GCL; an update submodule walks the cyclic programs and flips the gate
// bitmaps at entry boundaries.
//
// Boundaries are defined on the device's SYNCHRONIZED clock: the update
// events are scheduled at the true instants where the disciplined clock
// crosses each boundary, so residual gPTP error skews gates between
// neighbouring switches exactly as on real hardware.
#pragma once

#include <cstdint>
#include <optional>

#include "common/time.hpp"
#include "event/simulator.hpp"
#include "switch/clock_source.hpp"
#include "tables/classification_table.hpp"
#include "tables/gcl.hpp"

namespace tsn::sw {

class GateCtrl {
 public:
  /// `gate_table_size` bounds the capacity of each direction's GCL.
  GateCtrl(event::Simulator& sim, const ClockSource& clock, std::int64_t gate_table_size);

  /// Installs the cyclic programs. `cycle_base_synced` is the synchronized
  /// time at which entry 0 of both lists begins. Both lists must fit the
  /// configured gate table size and have equal cycle times.
  void program(const tables::GateControlList& ingress, const tables::GateControlList& egress,
               TimePoint cycle_base_synced);

  /// Arms the update events. Without a program all gates stay open.
  void start();
  void stop();

  /// Swaps the clock the gate engine reads (e.g. after gPTP is attached).
  /// Only valid while stopped; `clock` must outlive this object.
  void set_clock(const ClockSource& clock);

  [[nodiscard]] bool programmed() const { return in_gcl_.has_value(); }

  [[nodiscard]] tables::GateBitmap in_gates() const { return in_gates_; }
  [[nodiscard]] tables::GateBitmap out_gates() const { return out_gates_; }
  [[nodiscard]] bool in_open(tables::QueueId q) const { return (in_gates_ >> q) & 1u; }
  [[nodiscard]] bool out_open(tables::QueueId q) const { return (out_gates_ >> q) & 1u; }

  /// True instant of the next gate update, or TimePoint::max() when no
  /// program is running. The egress scheduler's guard band measures the
  /// remaining transmission window against this.
  [[nodiscard]] TimePoint next_update_true() const;

  /// Longest entry interval in the egress program (the guard band's
  /// livelock escape: frames longer than this may start regardless).
  [[nodiscard]] Duration max_egress_interval() const { return max_egress_interval_; }

  /// Invoked after every gate-state change (the scheduler re-evaluates
  /// transmission opportunities).
  void set_on_change(event::Callback callback) { on_change_ = std::move(callback); }

  [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }

 private:
  struct Walker {
    const tables::GateControlList* gcl = nullptr;
    std::size_t index = 0;              // entry currently active
    TimePoint next_boundary_synced{};   // synced time the next entry starts
  };

  void arm(Walker& walker);
  void apply_next(Walker& walker, tables::GateBitmap& gates);

  event::Simulator& sim_;
  const ClockSource* clock_;
  std::int64_t gate_table_size_;

  std::optional<tables::GateControlList> in_gcl_;
  std::optional<tables::GateControlList> out_gcl_;
  TimePoint cycle_base_synced_{};
  Duration max_egress_interval_{};

  Walker in_walker_;
  Walker out_walker_;
  event::EventId in_event_{};
  event::EventId out_event_{};
  bool running_ = false;

  tables::GateBitmap in_gates_ = tables::kAllGatesOpen;
  tables::GateBitmap out_gates_ = tables::kAllGatesOpen;
  event::Callback on_change_;
  std::uint64_t updates_applied_ = 0;
};

}  // namespace tsn::sw
