// Packet Switch template (paper Fig. 5): a parser submodule plus a lookup
// submodule executing the unicast/multicast forwarding decision.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "tables/switch_table.hpp"

namespace tsn::sw {

class PacketSwitch {
 public:
  /// `unicast_size` entries; `multicast_size` may be 0 (table absent —
  /// the paper's customized switches split multicast into unicast flows).
  PacketSwitch(std::int64_t unicast_size, std::int64_t multicast_size);

  /// Provisions a unicast forwarding entry. False when the table is full.
  [[nodiscard]] bool add_unicast(const MacAddress& dst, VlanId vid, tables::PortIndex out_port);

  /// Provisions a multicast group. False when absent/full.
  [[nodiscard]] bool add_multicast(std::uint16_t group, std::uint32_t port_bitmap);

  /// Forwarding decision. Unicast DA -> at most one port; multicast DA ->
  /// the group's member set (group id = low 16 bits of the DA, the common
  /// ASIC convention); miss -> empty (counted as a lookup-miss drop).
  [[nodiscard]] std::vector<tables::PortIndex> lookup(const net::Packet& packet) const;

  /// Parser submodule: byte-accurate frame -> dataplane packet view.
  /// Returns nullopt on malformed/truncated frames or bad FCS.
  [[nodiscard]] static std::optional<net::Packet> parse(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::size_t unicast_size() const { return unicast_.size(); }
  [[nodiscard]] std::size_t unicast_capacity() const { return unicast_.capacity(); }
  [[nodiscard]] bool has_multicast_table() const { return multicast_.has_value(); }

 private:
  tables::UnicastTable unicast_;
  std::optional<tables::MulticastTable> multicast_;
};

}  // namespace tsn::sw
