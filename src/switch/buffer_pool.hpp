// Per-port packet buffer pool.
//
// Hardware splits a packet into a 32 b metadata word (into the queue) and
// its payload (into a fixed-size buffer from the port's pool). We keep the
// simulated Packet object in the buffer slot; what matters architecturally
// is the *fixed buffer count* — when the pool is exhausted the packet is
// dropped, which is the resource pressure the paper's Table I explores.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "net/packet.hpp"

namespace tsn::sw {

using BufferHandle = std::uint32_t;
inline constexpr BufferHandle kInvalidBuffer = 0xFFFFFFFFu;

class BufferPool {
 public:
  /// `count` buffers of `buffer_bytes` each.
  BufferPool(std::int64_t count, std::int64_t buffer_bytes);

  [[nodiscard]] std::int64_t capacity() const { return static_cast<std::int64_t>(slots_.size()); }
  [[nodiscard]] std::int64_t in_use() const { return in_use_; }
  [[nodiscard]] std::int64_t free_count() const { return capacity() - in_use_; }
  [[nodiscard]] std::int64_t buffer_bytes() const { return buffer_bytes_; }

  /// High-water mark of concurrently used buffers since construction —
  /// directly comparable to the provisioned buffer count when exploring
  /// Table I style configurations.
  [[nodiscard]] std::int64_t peak_in_use() const { return peak_in_use_; }

  /// Stores a packet; returns the handle or kInvalidBuffer when the pool
  /// is exhausted or the frame exceeds the buffer size.
  [[nodiscard]] BufferHandle store(const net::Packet& packet);

  /// Retrieves the packet held in `handle` (handle must be live).
  [[nodiscard]] const net::Packet& packet(BufferHandle handle) const;

  /// Releases a buffer back to the free list.
  void release(BufferHandle handle);

 private:
  struct Slot {
    net::Packet packet;
    bool live = false;
  };

  std::int64_t buffer_bytes_;
  std::vector<Slot> slots_;
  std::vector<BufferHandle> free_list_;
  std::int64_t in_use_ = 0;
  std::int64_t peak_in_use_ = 0;
};

}  // namespace tsn::sw
