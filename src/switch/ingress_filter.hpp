// Ingress Filter template (paper Fig. 5): classifier + meters.
//
// The classifier maps (Src MAC, Dst MAC, VID, PRI) onto (Meter ID,
// Queue ID); the meter polices the flow with a token bucket (802.1Qci
// flow metering). TS flows are provisioned with kNoMeter — their rate is
// guaranteed by scheduling, not policing.
#pragma once

#include <cstdint>
#include <optional>

#include "common/time.hpp"
#include "net/packet.hpp"
#include "tables/classification_table.hpp"
#include "tables/token_bucket.hpp"

namespace tsn::sw {

class IngressFilter {
 public:
  IngressFilter(std::int64_t class_size, std::int64_t meter_size);

  /// Provisions a classification entry. False when the table is full.
  [[nodiscard]] bool add_class_entry(const tables::ClassificationKey& key,
                                     tables::ClassificationResult result);

  /// Installs a meter; kNoMeter when the meter table is full.
  [[nodiscard]] tables::MeterId install_meter(DataRate rate, std::int64_t burst_bytes);

  /// Outcome of running the ingress pipeline stage on one packet.
  struct Verdict {
    enum class Action : std::uint8_t {
      kAccept,
      kClassificationMiss,
      kMaxSduDrop,  // 802.1Qci: frame larger than the stream's max SDU
      kMeterDrop,
    };
    Action action = Action::kClassificationMiss;
    tables::QueueId queue = 0;
  };

  /// Classifies and polices `packet` arriving at `now`.
  [[nodiscard]] Verdict process(const net::Packet& packet, TimePoint now);

  [[nodiscard]] const tables::ClassificationTable& classification() const { return class_table_; }
  [[nodiscard]] tables::MeterTable& meters() { return meter_table_; }

 private:
  tables::ClassificationTable class_table_;
  tables::MeterTable meter_table_;
};

}  // namespace tsn::sw
