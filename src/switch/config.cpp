#include "switch/config.hpp"

#include "common/error.hpp"

namespace tsn::sw {

void SwitchResourceConfig::validate() const {
  require(unicast_table_size > 0, "config: unicast table size must be positive");
  require(multicast_table_size >= 0, "config: multicast table size must be >= 0");
  require(classification_table_size > 0, "config: classification table size must be positive");
  require(meter_table_size > 0, "config: meter table size must be positive");
  require(gate_table_size > 0, "config: gate table size must be positive");
  require(cbs_map_size > 0, "config: CBS map size must be positive");
  require(cbs_table_size > 0, "config: CBS table size must be positive");
  require(queue_depth > 0, "config: queue depth must be positive");
  require(queues_per_port > 0 && queues_per_port <= 8,
          "config: queues per port must be in [1, 8]");
  require(buffers_per_port > 0, "config: buffers per port must be positive");
  require(buffer_bytes >= 64, "config: buffer must hold at least a minimum frame");
  require(port_count > 0, "config: port count must be positive");
}

void SwitchRuntimeConfig::validate() const {
  require(link_rate.bps() > 0, "runtime config: link rate must be positive");
  require(processing_delay.ns() >= 0, "runtime config: processing delay must be >= 0");
  require(slot_size.ns() > 0, "runtime config: slot size must be positive");
  require(cqf_queue_a < 8 && cqf_queue_b < 8 && cqf_queue_a != cqf_queue_b,
          "runtime config: CQF needs two distinct queues in [0,8)");
}

}  // namespace tsn::sw
