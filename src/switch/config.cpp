#include "switch/config.hpp"

#include <string>

#include "common/error.hpp"

namespace tsn::sw {

void SwitchResourceConfig::validate() const {
  const auto table = [](std::int64_t size, const char* what) {
    require(size > 0, std::string("config: ") + what + " must be positive");
    require(size <= kMaxTableEntries,
            std::string("config: ") + what + " exceeds the hardware ceiling");
  };
  table(unicast_table_size, "unicast table size");
  require(multicast_table_size >= 0, "config: multicast table size must be >= 0");
  require(multicast_table_size <= kMaxTableEntries,
          "config: multicast table size exceeds the hardware ceiling");
  table(classification_table_size, "classification table size");
  table(meter_table_size, "meter table size");
  table(gate_table_size, "gate table size");
  table(cbs_map_size, "CBS map size");
  table(cbs_table_size, "CBS table size");
  require(queue_depth > 0 && queue_depth <= kMaxQueueDepth,
          "config: queue depth must be in [1, 65536]");
  require(queues_per_port > 0 && queues_per_port <= 8,
          "config: queues per port must be in [1, 8]");
  require(buffers_per_port > 0 && buffers_per_port <= kMaxBuffersPerPort,
          "config: buffers per port must be positive and below the hardware ceiling");
  require(buffer_bytes >= 64 && buffer_bytes <= kMaxBufferBytes,
          "config: buffer must hold a minimum frame and fit the hardware ceiling");
  require(port_count > 0 && port_count <= kMaxPortCount,
          "config: port count must be positive and below the hardware ceiling");
}

void SwitchRuntimeConfig::validate() const {
  require(link_rate.bps() > 0, "runtime config: link rate must be positive");
  require(processing_delay.ns() >= 0, "runtime config: processing delay must be >= 0");
  require(slot_size.ns() > 0, "runtime config: slot size must be positive");
  require(cqf_queue_a < 8 && cqf_queue_b < 8 && cqf_queue_a != cqf_queue_b,
          "runtime config: CQF needs two distinct queues in [0,8)");
}

}  // namespace tsn::sw
