// Clock abstraction consumed by Gate Ctrl.
//
// A switch schedules its gate updates on its own *synchronized* clock.
// With gPTP enabled the source wraps the node's disciplined LocalClock;
// without it, an identity source makes gate boundaries exact (useful for
// unit tests and for isolating sync error in ablations).
#pragma once

#include "common/time.hpp"
#include "timesync/clock.hpp"

namespace tsn::sw {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// The device's synchronized time at true instant `true_now`.
  [[nodiscard]] virtual TimePoint synced(TimePoint true_now) const = 0;

  /// True instant at which the synchronized time will read `target`.
  [[nodiscard]] virtual TimePoint true_for_synced(TimePoint target) const = 0;
};

/// Perfect clock: synchronized time == true time.
class IdentityClock final : public ClockSource {
 public:
  [[nodiscard]] TimePoint synced(TimePoint true_now) const override { return true_now; }
  [[nodiscard]] TimePoint true_for_synced(TimePoint target) const override { return target; }
};

/// Adapts a gPTP-disciplined LocalClock. The clock must outlive the source.
class DisciplinedClock final : public ClockSource {
 public:
  explicit DisciplinedClock(const timesync::LocalClock& clock) : clock_(&clock) {}

  [[nodiscard]] TimePoint synced(TimePoint true_now) const override {
    return clock_->synced(true_now);
  }
  [[nodiscard]] TimePoint true_for_synced(TimePoint target) const override {
    return clock_->true_for_synced(target);
  }

 private:
  const timesync::LocalClock* clock_;
};

}  // namespace tsn::sw
