#include "switch/ingress_filter.hpp"

namespace tsn::sw {

IngressFilter::IngressFilter(std::int64_t class_size, std::int64_t meter_size)
    : class_table_(static_cast<std::size_t>(class_size)),
      meter_table_(static_cast<std::size_t>(meter_size)) {}

bool IngressFilter::add_class_entry(const tables::ClassificationKey& key,
                                    tables::ClassificationResult result) {
  return class_table_.insert(key, result);
}

tables::MeterId IngressFilter::install_meter(DataRate rate, std::int64_t burst_bytes) {
  return meter_table_.install(rate, burst_bytes);
}

IngressFilter::Verdict IngressFilter::process(const net::Packet& packet, TimePoint now) {
  const auto result = class_table_.lookup(tables::ClassificationKey::from_packet(packet));
  if (!result) {
    return Verdict{Verdict::Action::kClassificationMiss, 0};
  }
  // 802.1Qci per-stream filtering precedes metering: oversized frames are
  // discarded without consuming tokens.
  if (result->max_sdu_bytes > 0 && packet.frame_bytes() > result->max_sdu_bytes) {
    return Verdict{Verdict::Action::kMaxSduDrop, result->queue};
  }
  if (!meter_table_.offer(result->meter, now, packet.frame_bytes())) {
    return Verdict{Verdict::Action::kMeterDrop, result->queue};
  }
  return Verdict{Verdict::Action::kAccept, result->queue};
}

}  // namespace tsn::sw
