// Switch configuration structures.
//
// SwitchResourceConfig carries exactly the parameters of the paper's
// Table II customization APIs — the memory-determining knobs. The
// TSN-Builder customization layer (src/builder) populates it; the switch
// dataplane consumes it; the resource model prices it.
//
// SwitchRuntimeConfig carries behavioural knobs that do not consume BRAM
// (link rate, pipeline latency, the CQF queue pair and slot size).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace tsn::sw {

/// Magnitude ceilings for SwitchResourceConfig. No synthesizable FPGA
/// design approaches these; their real job is to keep every downstream
/// product (BRAM tiling in resource/bram.cpp multiplies depth x width and
/// buffer_bytes x 8) comfortably inside int64 so hostile or corrupted
/// config files cannot drive the resource model into signed overflow.
inline constexpr std::int64_t kMaxTableEntries = 1 << 24;   // any table/map
inline constexpr std::int64_t kMaxQueueDepth = 1 << 16;     // metadata slots
inline constexpr std::int64_t kMaxBuffersPerPort = 1 << 20;
inline constexpr std::int64_t kMaxBufferBytes = 1 << 24;    // 16 MiB
inline constexpr std::int64_t kMaxPortCount = 1 << 10;

struct SwitchResourceConfig {
  // set_switch_tbl(unicast_size, multicast_size)
  std::int64_t unicast_table_size = 1024;
  std::int64_t multicast_table_size = 0;  // 0 = not instantiated (paper: "1024, 0")

  // set_class_tbl(class_size)
  std::int64_t classification_table_size = 1024;

  // set_meter_tbl(meter_size)
  std::int64_t meter_table_size = 1024;

  // set_gate_tbl(gate_size, queue_num, port_num)
  std::int64_t gate_table_size = 2;  // GCL entries per direction per port

  // set_cbs_tbl(cbs_map_size, cbs_size, port_num)
  std::int64_t cbs_map_size = 3;
  std::int64_t cbs_table_size = 3;

  // set_queues(queue_depth, queue_num, port_num)
  std::int64_t queue_depth = 12;     // metadata entries per queue
  std::int64_t queues_per_port = 8;

  // set_buffers(buffer_num, port_num)
  std::int64_t buffers_per_port = 96;
  std::int64_t buffer_bytes = 2048;  // one MTU packet per buffer

  // Shared port_num of the per-port APIs: the enabled TSN ports.
  std::int64_t port_count = 1;

  /// Throws tsn::Error when any parameter is out of its hardware range.
  void validate() const;
};

struct SwitchRuntimeConfig {
  DataRate link_rate = DataRate::gigabits_per_sec(1);
  /// Fixed ingress pipeline latency (parse + classify + lookup); the
  /// FPGA prototype's pipeline depth at 125 MHz is sub-microsecond.
  Duration processing_delay = Duration(680);
  /// CQF slot size (65 us in the paper's evaluation).
  Duration slot_size = microseconds(65);
  /// The two TS queues that alternate under CQF.
  std::uint8_t cqf_queue_a = 7;
  std::uint8_t cqf_queue_b = 6;
  /// Enable CQF gate programs on all ports at start-up.
  bool enable_cqf = true;
  /// Length-aware guard band: never start a frame that cannot finish
  /// before the next gate boundary (802.1Qbv Annex Q style). Protects TS
  /// slots from interference by in-flight best-effort frames.
  bool guard_band = true;
  /// 802.1Qbu/802.3br frame preemption: frames from express queues may
  /// interrupt an in-flight preemptable frame at a 64 B fragment
  /// boundary; the remainder resumes afterwards (with per-fragment
  /// preamble/IFG/mCRC overhead). An alternative to the guard band for
  /// protecting TS windows.
  bool preemption = false;
  /// Queues served by the express MAC (default: the CQF pair).
  std::uint8_t express_queues = 0b1100'0000;

  void validate() const;
};

}  // namespace tsn::sw
