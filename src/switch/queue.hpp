// Per-queue metadata FIFO.
//
// The hardware queue stores a 32 b metadata word per packet (paper: "queue
// stores packet descriptor ... while buffer stores packet payload"). The
// configured depth is the `queue_depth` resource parameter — a full queue
// tail-drops.
#pragma once

#include <cstdint>

#include "common/ring_buffer.hpp"
#include "common/time.hpp"
#include "switch/buffer_pool.hpp"

namespace tsn::sw {

/// 32-bit hardware metadata word (buffer id + length + flags).
inline constexpr std::int64_t kQueueMetadataBits = 32;

struct QueueMetadata {
  BufferHandle buffer = kInvalidBuffer;
  std::int32_t frame_bytes = 0;
  TimePoint enqueued_at{};
};

class MetadataQueue {
 public:
  explicit MetadataQueue(std::int64_t depth)
      : fifo_(static_cast<std::size_t>(depth)) {}

  [[nodiscard]] std::size_t depth() const { return fifo_.capacity(); }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] bool full() const { return fifo_.full(); }

  /// Tail-drop semantics: false when the queue is at depth.
  [[nodiscard]] bool enqueue(QueueMetadata md) {
    if (!fifo_.push(md)) return false;
    if (fifo_.size() > peak_occupancy_) peak_occupancy_ = fifo_.size();
    return true;
  }

  [[nodiscard]] const QueueMetadata& head() const { return fifo_.front(); }
  QueueMetadata dequeue() { return fifo_.pop(); }

  /// High-water mark — the measured counterpart of the provisioned depth
  /// (what the ITP planner's worst-case analysis predicts).
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_occupancy_; }

  void clear() { fifo_.clear(); }

 private:
  RingBuffer<QueueMetadata> fifo_;
  std::size_t peak_occupancy_ = 0;
};

}  // namespace tsn::sw
