#include "switch/packet_switch.hpp"

#include "common/error.hpp"
#include "net/ethernet.hpp"

namespace tsn::sw {

PacketSwitch::PacketSwitch(std::int64_t unicast_size, std::int64_t multicast_size)
    : unicast_(static_cast<std::size_t>(unicast_size)) {
  require(unicast_size > 0, "PacketSwitch: unicast table size must be positive");
  require(multicast_size >= 0, "PacketSwitch: multicast table size must be >= 0");
  if (multicast_size > 0) {
    multicast_.emplace(static_cast<std::size_t>(multicast_size));
  }
}

bool PacketSwitch::add_unicast(const MacAddress& dst, VlanId vid, tables::PortIndex out_port) {
  return unicast_.insert(tables::UnicastKey{dst, vid}, out_port);
}

bool PacketSwitch::add_multicast(std::uint16_t group, std::uint32_t port_bitmap) {
  if (!multicast_) return false;
  return multicast_->insert(group, port_bitmap);
}

std::vector<tables::PortIndex> PacketSwitch::lookup(const net::Packet& packet) const {
  if (packet.dst.is_multicast()) {
    if (!multicast_) return {};
    const auto group = static_cast<std::uint16_t>(packet.dst.to_u64() & 0xFFFF);
    const auto bitmap = multicast_->lookup(group);
    if (!bitmap) return {};
    return tables::ports_from_bitmap(*bitmap);
  }
  const auto port = unicast_.lookup(tables::UnicastKey{packet.dst, packet.vlan.vid});
  if (!port) return {};
  return {*port};
}

std::optional<net::Packet> PacketSwitch::parse(std::span<const std::uint8_t> bytes) {
  const auto parsed = net::parse_frame(bytes);
  if (!parsed || !parsed->fcs_ok) return std::nullopt;
  return net::from_frame(parsed->frame);
}

}  // namespace tsn::sw
