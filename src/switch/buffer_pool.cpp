#include "switch/buffer_pool.hpp"

namespace tsn::sw {

BufferPool::BufferPool(std::int64_t count, std::int64_t buffer_bytes)
    : buffer_bytes_(buffer_bytes) {
  require(count > 0, "BufferPool: count must be positive");
  require(buffer_bytes >= 64, "BufferPool: buffers must hold a minimum frame");
  slots_.resize(static_cast<std::size_t>(count));
  free_list_.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = count - 1; i >= 0; --i) {
    free_list_.push_back(static_cast<BufferHandle>(i));
  }
}

BufferHandle BufferPool::store(const net::Packet& packet) {
  if (free_list_.empty()) return kInvalidBuffer;
  if (packet.frame_bytes() > buffer_bytes_) return kInvalidBuffer;
  const BufferHandle h = free_list_.back();
  free_list_.pop_back();
  Slot& slot = slots_[h];
  slot.packet = packet;
  slot.live = true;
  ++in_use_;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return h;
}

const net::Packet& BufferPool::packet(BufferHandle handle) const {
  require(handle < slots_.size() && slots_[handle].live,
          "BufferPool::packet: stale or invalid handle");
  return slots_[handle].packet;
}

void BufferPool::release(BufferHandle handle) {
  require(handle < slots_.size() && slots_[handle].live,
          "BufferPool::release: stale or invalid handle");
  slots_[handle].live = false;
  free_list_.push_back(handle);
  --in_use_;
}

}  // namespace tsn::sw
