// Mapping from the switch MIB drop taxonomy to flight-recorder causes.
//
// The switch is exhaustive by construction: -Werror=switch turns a new
// DropReason without a mapping into a compile error, and the flight
// tests additionally walk every enumerator at runtime.
#pragma once

#include "flight/recorder.hpp"
#include "switch/counters.hpp"

namespace tsn::sw {

[[nodiscard]] constexpr flight::Cause flight_cause(DropReason reason) {
  switch (reason) {
    case DropReason::kClassificationMiss: return flight::Cause::kClassificationMiss;
    case DropReason::kMeterViolation: return flight::Cause::kMeterViolation;
    case DropReason::kMaxSduExceeded: return flight::Cause::kMaxSduExceeded;
    case DropReason::kLookupMiss: return flight::Cause::kLookupMiss;
    case DropReason::kIngressGateClosed: return flight::Cause::kIngressGateClosed;
    case DropReason::kQueueFull: return flight::Cause::kQueueFull;
    case DropReason::kBufferExhausted: return flight::Cause::kBufferExhausted;
    case DropReason::kCount: break;
  }
  return flight::Cause::kInFlight;  // unreachable for valid reasons
}

}  // namespace tsn::sw
