#include "switch/egress_sched.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "flight/recorder.hpp"
#include "switch/flight_map.hpp"

namespace tsn::sw {

EgressScheduler::EgressScheduler(event::Simulator& sim, GateCtrl& gates,
                                 const SwitchResourceConfig& res,
                                 const SwitchRuntimeConfig& rt, SwitchCounters& counters)
    : sim_(sim),
      gates_(gates),
      rt_(rt),
      counters_(counters),
      pool_(res.buffers_per_port, res.buffer_bytes),
      cbs_map_(static_cast<std::size_t>(res.cbs_map_size)),
      cbs_table_(static_cast<std::size_t>(res.cbs_table_size)) {
  queues_.reserve(static_cast<std::size_t>(res.queues_per_port));
  for (std::int64_t q = 0; q < res.queues_per_port; ++q) {
    queues_.emplace_back(res.queue_depth);
  }
  shaper_of_queue_.resize(queues_.size());
  tx_frames_per_queue_.assign(queues_.size(), 0);
  tx_bytes_per_queue_.assign(queues_.size(), 0);
  gate_closed_skips_.assign(queues_.size(), 0);
}

std::uint64_t EgressScheduler::tx_frames(tables::QueueId q) const {
  require(q < queues_.size(), "tx_frames: queue id out of range");
  return tx_frames_per_queue_[q];
}

std::uint64_t EgressScheduler::tx_bytes(tables::QueueId q) const {
  require(q < queues_.size(), "tx_bytes: queue id out of range");
  return tx_bytes_per_queue_[q];
}

std::uint64_t EgressScheduler::gate_closed_skips(tables::QueueId q) const {
  require(q < queues_.size(), "gate_closed_skips: queue id out of range");
  return gate_closed_skips_[q];
}

bool EgressScheduler::bind_shaper(tables::QueueId queue, tables::CbsConfig config) {
  require(queue < queues_.size(), "bind_shaper: queue id beyond synthesized queues");
  const tables::CbsIndex idx = cbs_table_.install(config);
  if (idx == tables::kNoCbs) return false;
  if (!cbs_map_.bind(queue, idx)) return false;
  // Mirror the table contents into runtime credit state.
  if (shapers_.size() <= idx) shapers_.resize(idx + 1u);
  shapers_[idx] = ShaperRuntime{config, 0.0, sim_.now(), ShaperMode::kIdle};
  shaper_of_queue_[queue] = idx;
  return true;
}

const MetadataQueue& EgressScheduler::queue(tables::QueueId q) const {
  require(q < queues_.size(), "EgressScheduler::queue: id out of range");
  return queues_[q];
}

std::optional<double> EgressScheduler::credit_bits(tables::QueueId q) const {
  if (q >= queues_.size() || !shaper_of_queue_[q]) return std::nullopt;
  return shapers_[*shaper_of_queue_[q]].credit_bits;
}

void EgressScheduler::ingress_enqueue(const net::Packet& packet, tables::QueueId q) {
  require(q < queues_.size(), "ingress_enqueue: queue id beyond synthesized queues");
  const BufferHandle handle = pool_.store(packet);
  if (handle == kInvalidBuffer) {
    counters_.drop(DropReason::kBufferExhausted);
    if (flight_ != nullptr) {
      flight_->on_switch_drop(packet, flight_node_,
                              flight_cause(DropReason::kBufferExhausted), sim_.now());
    }
    return;
  }
  const QueueMetadata md{handle, static_cast<std::int32_t>(packet.frame_bytes()), sim_.now()};
  if (!queues_[q].enqueue(md)) {
    pool_.release(handle);
    counters_.drop(DropReason::kQueueFull);
    if (flight_ != nullptr) {
      flight_->on_switch_drop(packet, flight_node_,
                              flight_cause(DropReason::kQueueFull), sim_.now());
    }
    return;
  }
  if (flight_ != nullptr) {
    flight_->on_enqueue(packet, flight_node_, flight_port_, q,
                        static_cast<std::int64_t>(queues_[q].size()) - 1, sim_.now());
  }
  sync_shaper_mode(q, sim_.now());
  try_transmit();
}

void EgressScheduler::advance_shaper(ShaperRuntime& s, TimePoint now) const {
  const Duration elapsed = now - s.last_update;
  s.last_update = now;
  if (elapsed.ns() <= 0) return;
  const double sec = elapsed.sec();
  switch (s.mode) {
    case ShaperMode::kTransmitting:
      s.credit_bits += static_cast<double>(s.cfg.send_slope.bps()) * sec;
      break;
    case ShaperMode::kWaiting:
      s.credit_bits += static_cast<double>(s.cfg.idle_slope.bps()) * sec;
      if (s.cfg.hi_credit_bits > 0) {
        s.credit_bits = std::min(s.credit_bits, static_cast<double>(s.cfg.hi_credit_bits));
      }
      break;
    case ShaperMode::kIdle:
      // 802.1Qav: with the queue empty, positive credit is discarded and
      // negative credit recovers at idleSlope toward zero.
      if (s.credit_bits < 0.0) {
        s.credit_bits = std::min(
            0.0, s.credit_bits + static_cast<double>(s.cfg.idle_slope.bps()) * sec);
      } else {
        s.credit_bits = 0.0;
      }
      break;
  }
  if (s.cfg.lo_credit_bits < 0) {
    s.credit_bits = std::max(s.credit_bits, static_cast<double>(s.cfg.lo_credit_bits));
  }
}

void EgressScheduler::advance_all_shapers(TimePoint now) {
  for (ShaperRuntime& s : shapers_) advance_shaper(s, now);
}

void EgressScheduler::sync_shaper_mode(tables::QueueId q, TimePoint now) {
  if (!shaper_of_queue_[q]) return;
  ShaperRuntime& s = shapers_[*shaper_of_queue_[q]];
  advance_shaper(s, now);
  if (tx_ && tx_->queue == q) {
    s.mode = ShaperMode::kTransmitting;
  } else if (!queues_[q].empty()) {
    s.mode = ShaperMode::kWaiting;
  } else {
    s.mode = ShaperMode::kIdle;
  }
}

std::optional<tables::QueueId> EgressScheduler::select_queue(bool express_only,
                                                             bool& credit_blocked,
                                                             TimePoint now) {
  for (int qi = static_cast<int>(queues_.size()) - 1; qi >= 0; --qi) {
    const auto q = static_cast<tables::QueueId>(qi);
    if (express_only && !is_express(q)) continue;
    const MetadataQueue& queue = queues_[q];
    const bool resumable = suspended_ && suspended_->queue == q;
    if (queue.empty() && !resumable) continue;
    if (!gates_.out_open(q)) {
      ++gate_closed_skips_[q];
      continue;
    }
    if (shaper_of_queue_[q] && shapers_[*shaper_of_queue_[q]].credit_bits < 0.0) {
      credit_blocked = true;
      continue;
    }
    if (rt_.guard_band && gates_.programmed()) {
      const TimePoint boundary = gates_.next_update_true();
      if (boundary != TimePoint::max()) {
        const std::int64_t wire_bytes = resumable
                                            ? suspended_->wire_bytes_remaining
                                            : frame_wire_bytes(queue.head().frame_bytes);
        const Duration wire = wire_time_bytes(wire_bytes);
        const Duration remaining = boundary - now;
        // Hold frames that cannot finish before the boundary — unless the
        // frame could never fit in a full window (livelock escape).
        if (wire > remaining && wire <= gates_.max_egress_interval()) {
          ++counters_.guard_band_holds;
          continue;
        }
      }
    }
    return q;
  }
  return std::nullopt;
}

bool EgressScheduler::express_frame_eligible(TimePoint now) {
  bool credit_blocked = false;
  return select_queue(/*express_only=*/true, credit_blocked, now).has_value();
}

void EgressScheduler::maybe_preempt(TimePoint now) {
  if (!rt_.preemption || !tx_ || is_express(tx_->queue)) return;
  if (!express_frame_eligible(now)) return;

  // Legal preemption point: at least one minimum fragment already on the
  // wire and at least one minimum fragment left (802.3br).
  const std::int64_t sent_bytes = rt_.link_rate.bits_in(now - tx_->started).bits() / 8;
  const std::int64_t remaining = tx_->segment_wire_bytes - sent_bytes;
  if (remaining < kMinFragmentWireBytes) return;  // almost done; let it finish
  if (sent_bytes < kMinFragmentWireBytes) {
    // Too early: re-check exactly when the first fragment becomes legal.
    if (!preempt_check_.valid()) {
      const Duration until =
          wire_time_bytes(kMinFragmentWireBytes - sent_bytes);
      preempt_check_ = sim_.schedule_in(until, [this] {
        preempt_check_ = event::EventId{};
        maybe_preempt(sim_.now());
      });
    }
    return;
  }

  // Cut the frame here: the current fragment ends now, the remainder
  // (plus per-fragment resume overhead) waits for the express burst.
  sim_.cancel(tx_->done);
  ++counters_.preemptions;
  suspended_ = Suspended{tx_->queue, tx_->md, remaining + kFragmentResumeOverheadBytes};
  const tables::QueueId q = tx_->queue;
  tx_.reset();
  sync_shaper_mode(q, now);
  try_transmit();
}

void EgressScheduler::try_transmit() {
  const TimePoint now = sim_.now();
  if (tx_) {
    maybe_preempt(now);
    return;
  }
  advance_all_shapers(now);

  if (credit_wakeup_.valid()) {
    sim_.cancel(credit_wakeup_);
    credit_wakeup_ = event::EventId{};
  }

  bool credit_blocked = false;
  // A preempted frame resumes before any NEW preemptable frame starts
  // (the pMAC is mid-frame), but an eligible express frame goes first.
  if (suspended_) {
    const auto express = select_queue(/*express_only=*/true, credit_blocked, now);
    if (express) {
      start_frame(*express);
      return;
    }
    // Resumption looks only at the suspended queue's own gate and the
    // guard band — priorities of other preemptable queues are irrelevant
    // while their MAC has a frame in flight.
    const tables::QueueId q = suspended_->queue;
    bool resume_ok = gates_.out_open(q);
    if (resume_ok && rt_.guard_band && gates_.programmed()) {
      const TimePoint boundary = gates_.next_update_true();
      if (boundary != TimePoint::max()) {
        const Duration wire = wire_time_bytes(suspended_->wire_bytes_remaining);
        if (wire > boundary - now && wire <= gates_.max_egress_interval()) {
          ++counters_.guard_band_holds;
          resume_ok = false;  // a gate event re-kicks the scheduler
        }
      }
    }
    if (resume_ok) {
      const Suspended s = *suspended_;
      suspended_.reset();
      start_segment(s.queue, s.md, s.wire_bytes_remaining, /*final_segment=*/true);
    }
    return;
  }

  const auto pick = select_queue(/*express_only=*/false, credit_blocked, now);
  if (pick) {
    start_frame(*pick);
    return;
  }
  if (credit_blocked) arm_credit_wakeup();
}

void EgressScheduler::start_frame(tables::QueueId q) {
  QueueMetadata md = queues_[q].dequeue();
  if (flight_ != nullptr) {
    // Gate-wait span: admission to this dequeue, with the egress gate
    // state that finally let the frame through.
    flight_->on_dequeue(pool_.packet(md.buffer), flight_node_, flight_port_, q,
                        md.enqueued_at, sim_.now(), gates_.out_gates());
  }
  const std::int64_t wire_bytes = frame_wire_bytes(md.frame_bytes);
  start_segment(q, md, wire_bytes, /*final_segment=*/true);
}

void EgressScheduler::start_segment(tables::QueueId q, QueueMetadata md,
                                    std::int64_t wire_bytes, bool final_segment) {
  tx_ = ActiveTx{q, md, sim_.now(), wire_bytes, final_segment, event::EventId{}};
  sync_shaper_mode(q, sim_.now());
  tx_->done = sim_.schedule_in(wire_time_bytes(wire_bytes), [this] { finish_segment(); });
}

void EgressScheduler::finish_segment() {
  require(tx_.has_value(), "finish_segment: no transmission in flight");
  const ActiveTx done = *tx_;
  tx_.reset();
  if (preempt_check_.valid()) {
    sim_.cancel(preempt_check_);
    preempt_check_ = event::EventId{};
  }
  // Copy out before releasing the buffer.
  const net::Packet packet = pool_.packet(done.md.buffer);
  pool_.release(done.md.buffer);
  ++counters_.tx_packets;
  counters_.tx_bytes += static_cast<std::uint64_t>(done.md.frame_bytes);
  if (done.final_segment) {
    ++tx_frames_per_queue_[done.queue];
    tx_bytes_per_queue_[done.queue] += static_cast<std::uint64_t>(done.md.frame_bytes);
    if (flight_ != nullptr) {
      // For a preempted frame `done.started` is the last fragment's start;
      // the gate-wait span already covers everything before it.
      flight_->on_serialize(packet, flight_node_, flight_port_, done.queue,
                            done.started, sim_.now());
    }
  }
  sync_shaper_mode(done.queue, sim_.now());
  if (tx_cb_) tx_cb_(packet);
  try_transmit();
}

void EgressScheduler::arm_credit_wakeup() {
  // Earliest instant any gate-open, non-empty, credit-blocked shaper
  // recovers to zero.
  Duration soonest = Duration::max();
  for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
    const auto q = static_cast<tables::QueueId>(qi);
    if (queues_[q].empty() || !gates_.out_open(q) || !shaper_of_queue_[q]) continue;
    const ShaperRuntime& s = shapers_[*shaper_of_queue_[q]];
    if (s.credit_bits >= 0.0) continue;
    const double sec = -s.credit_bits / static_cast<double>(s.cfg.idle_slope.bps());
    const Duration d(static_cast<std::int64_t>(sec * 1e9) + 1);
    soonest = std::min(soonest, d);
  }
  if (soonest == Duration::max()) return;
  credit_wakeup_ = sim_.schedule_in(soonest, [this] {
    credit_wakeup_ = event::EventId{};
    try_transmit();
  });
}

}  // namespace tsn::sw
