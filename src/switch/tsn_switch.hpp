// The integrated TSN switch: the five templates wired together
// (paper Fig. 3) behind a single dataplane entry point.
//
//        +-> Ingress Filter -> Packet Switch -> Gate Ctrl -> Egress Sched
//  rx ---+        (classify+meter)   (lookup)     (in-gate,     (strict prio
//                                                  queues)       + CBS) --> tx
//  Time Sync disciplines the clock that Gate Ctrl reads.
//
// The switch is resource-parameterized by SwitchResourceConfig (the
// Table II API arguments); TSN-Builder's synthesis stage constructs it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/simulator.hpp"
#include "net/packet.hpp"
#include "telemetry/metrics.hpp"
#include "switch/clock_source.hpp"
#include "switch/config.hpp"
#include "switch/counters.hpp"
#include "switch/egress_sched.hpp"
#include "switch/gate_ctrl.hpp"
#include "switch/ingress_filter.hpp"
#include "switch/packet_switch.hpp"
#include "tables/cbs_table.hpp"

namespace tsn::sw {

class TsnSwitch {
 public:
  /// Called at the end of a frame's serialization on `port`; the network
  /// layer adds propagation delay and hands the packet to the peer.
  using TxCallback = event::Function<void(tables::PortIndex, const net::Packet&)>;

  /// `physical_ports` — how many ports are wired in the simulated
  /// topology (each gets queues, gates, a buffer pool). The resource
  /// accounting of the paper uses the *enabled TSN port* count inside
  /// `res` independently.
  TsnSwitch(event::Simulator& sim, std::string name, SwitchResourceConfig res,
            SwitchRuntimeConfig rt, std::int64_t physical_ports);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t port_count() const { return static_cast<std::int64_t>(ports_.size()); }
  [[nodiscard]] const SwitchResourceConfig& resource_config() const { return res_; }
  [[nodiscard]] const SwitchRuntimeConfig& runtime_config() const { return rt_; }

  // --- Time Sync ------------------------------------------------------
  /// Replaces the (default, perfect) clock with a gPTP-disciplined one.
  /// Must be called before start(); `clock` must outlive the switch.
  void use_clock(const timesync::LocalClock& clock);

  // --- control plane ---------------------------------------------------
  [[nodiscard]] bool add_unicast(const MacAddress& dst, VlanId vid, tables::PortIndex out_port);
  [[nodiscard]] bool add_multicast(std::uint16_t group, std::uint32_t port_bitmap);
  /// Validates the result's queue id against the synthesized queue count.
  [[nodiscard]] bool add_class_entry(const tables::ClassificationKey& key,
                                     tables::ClassificationResult result);
  [[nodiscard]] tables::MeterId install_meter(DataRate rate, std::int64_t burst_bytes);
  [[nodiscard]] bool bind_shaper(tables::PortIndex port, tables::QueueId queue,
                                 tables::CbsConfig config);

  /// Installs explicit gate programs on one port.
  void program_gates(tables::PortIndex port, const tables::GateControlList& ingress,
                     const tables::GateControlList& egress, TimePoint cycle_base_synced);

  /// Installs the 2-entry CQF program (runtime config's slot and queue
  /// pair) on every port, with cycle base `base_synced` (synchronized
  /// time; slot boundaries then fall at base + k*slot network-wide).
  void program_cqf(TimePoint base_synced);

  /// Arms the gate engines. Idempotent.
  void start();

  // --- dataplane -------------------------------------------------------
  void set_tx_callback(TxCallback cb) { tx_cb_ = std::move(cb); }

  /// Attaches the flight recorder (pure observer; nullptr detaches).
  /// `node` is this switch's topology node id; the hook is forwarded to
  /// every per-port egress scheduler.
  void set_flight(flight::FlightRecorder* recorder, std::uint32_t node);

  /// A frame has been fully received on `in_port` at the current instant.
  void receive(tables::PortIndex in_port, const net::Packet& packet);

  // --- introspection ---------------------------------------------------
  /// Exports this switch's dataplane state into `registry` under
  /// "tsn.switch.*": the MIB-style counters (rx/tx, one series per drop
  /// reason, guard-band holds, preemptions) labelled {switch=}, plus
  /// per-port gate/buffer series {switch=,port=} and per-queue
  /// depth/occupancy/tx series {switch=,port=,queue=}.
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }
  [[nodiscard]] SwitchCounters& counters() { return counters_; }
  [[nodiscard]] EgressScheduler& scheduler(tables::PortIndex port);
  [[nodiscard]] GateCtrl& gates(tables::PortIndex port);
  [[nodiscard]] const PacketSwitch& packet_switch() const { return switch_; }
  [[nodiscard]] const IngressFilter& ingress_filter() const { return filter_; }
  [[nodiscard]] IngressFilter& ingress_filter() { return filter_; }

 private:
  struct Port {
    // GateCtrl must outlive the scheduler that references it.
    std::unique_ptr<GateCtrl> gate_ctrl;
    std::unique_ptr<EgressScheduler> scheduler;
  };

  void deliver_to_port(tables::PortIndex port, const net::Packet& packet,
                       tables::QueueId queue);
  /// Counts the drop and, when a recorder is attached, records its cause.
  void drop_with_flight(const net::Packet& packet, DropReason reason);

  event::Simulator& sim_;
  std::string name_;
  SwitchResourceConfig res_;
  SwitchRuntimeConfig rt_;

  IdentityClock identity_clock_;
  const ClockSource* clock_;
  std::unique_ptr<DisciplinedClock> disciplined_;

  IngressFilter filter_;
  PacketSwitch switch_;
  std::vector<Port> ports_;
  SwitchCounters counters_;
  TxCallback tx_cb_;
  flight::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_node_ = 0;
  bool started_ = false;
};

}  // namespace tsn::sw
