// Egress Sched template (paper Fig. 5): a strict-priority scheduler over
// the port's queues plus credit-based shapers (802.1Qav) on the RC queues.
//
// Transmission selection runs whenever something changes (enqueue, transmit
// completion, gate flip, credit recovery):
//   * only queues whose egress gate is open participate;
//   * a queue bound to a shaper is eligible only with credit >= 0;
//   * among eligible queues, strict priority (7 highest) wins;
//   * with the guard band enabled, a frame that cannot finish before the
//     next gate boundary is held (length-aware scheduling), which keeps
//     in-flight best-effort frames from leaking into the next CQF slot;
//   * with 802.1Qbu frame preemption enabled, an eligible express frame
//     interrupts an in-flight preemptable frame at a legal 64 B fragment
//     boundary; the remainder resumes afterwards, paying per-fragment
//     preamble/IFG/mCRC overhead (802.3br interspersing).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "event/simulator.hpp"
#include "net/packet.hpp"
#include "switch/buffer_pool.hpp"
#include "switch/config.hpp"
#include "switch/counters.hpp"
#include "switch/gate_ctrl.hpp"
#include "switch/queue.hpp"
#include "tables/cbs_table.hpp"

namespace tsn::flight {
class FlightRecorder;
}  // namespace tsn::flight

namespace tsn::sw {

/// Non-final and final fragments must carry at least 64 B of frame data
/// (802.3br minimum fragment size), plus 8 B preamble and 12 B IFG on the
/// wire around every fragment.
inline constexpr std::int64_t kMinFragmentWireBytes = 64 + 8 + 12;
/// Extra wire bytes per resumed fragment: preamble (8) + IFG (12) + mCRC (4).
inline constexpr std::int64_t kFragmentResumeOverheadBytes = 24;

class EgressScheduler {
 public:
  /// Invoked at the end of a frame's serialization with the transmitted
  /// packet (the link adds propagation delay before the peer receives it).
  using TxCallback = event::Function<void(const net::Packet&)>;

  EgressScheduler(event::Simulator& sim, GateCtrl& gates,
                  const SwitchResourceConfig& res, const SwitchRuntimeConfig& rt,
                  SwitchCounters& counters);

  // --- control plane -------------------------------------------------
  /// Binds `queue` to a new credit-based shaper. Consumes one CBS MAP and
  /// one CBS table entry; false when either table is full.
  [[nodiscard]] bool bind_shaper(tables::QueueId queue, tables::CbsConfig config);

  void set_tx_callback(TxCallback cb) { tx_cb_ = std::move(cb); }

  /// Attaches the flight recorder (pure observer; nullptr detaches).
  /// `node` is the owning switch's topology node id, `port` this
  /// scheduler's port index. With no recorder attached the dataplane
  /// pays one pointer compare per hook site and allocates nothing.
  void set_flight(flight::FlightRecorder* recorder, std::uint32_t node,
                  std::uint8_t port) {
    flight_ = recorder;
    flight_node_ = node;
    flight_port_ = port;
  }

  // --- dataplane ------------------------------------------------------
  /// Admits a packet into `queue`: allocates a buffer, pushes metadata,
  /// and kicks the scheduler. Drops (pool exhausted / queue full) are
  /// counted, not raised.
  void ingress_enqueue(const net::Packet& packet, tables::QueueId queue);

  /// Re-evaluates transmission opportunities (called on gate changes).
  void kick() { try_transmit(); }

  // --- introspection ---------------------------------------------------
  [[nodiscard]] std::size_t queue_count() const { return queues_.size(); }
  [[nodiscard]] const MetadataQueue& queue(tables::QueueId q) const;
  [[nodiscard]] const BufferPool& pool() const { return pool_; }
  [[nodiscard]] bool transmitting() const { return tx_.has_value(); }
  [[nodiscard]] bool has_suspended_frame() const { return suspended_.has_value(); }
  /// Credit (bits) of the shaper bound to `queue`; nullopt if unshaped.
  [[nodiscard]] std::optional<double> credit_bits(tables::QueueId q) const;

  // --- per-queue telemetry ---------------------------------------------
  /// Frames fully transmitted from `q` (a preempted frame counts once,
  /// on its final fragment).
  [[nodiscard]] std::uint64_t tx_frames(tables::QueueId q) const;
  [[nodiscard]] std::uint64_t tx_bytes(tables::QueueId q) const;
  /// Times a non-empty `q` was passed over during transmission selection
  /// because its egress gate was closed — the per-queue face of the
  /// gate-hold behaviour the guard band counter only shows in aggregate.
  [[nodiscard]] std::uint64_t gate_closed_skips(tables::QueueId q) const;

 private:
  enum class ShaperMode : std::uint8_t { kIdle, kWaiting, kTransmitting };

  struct ShaperRuntime {
    tables::CbsConfig cfg;
    double credit_bits = 0.0;
    TimePoint last_update{};
    ShaperMode mode = ShaperMode::kIdle;
  };

  /// One transmission segment in flight (a whole frame, or one fragment
  /// of a preempted frame).
  struct ActiveTx {
    tables::QueueId queue = 0;
    QueueMetadata md;
    TimePoint started{};
    std::int64_t segment_wire_bytes = 0;  // this segment, incl. overheads
    bool final_segment = true;            // completes the frame
    event::EventId done{};
  };

  /// Remainder of a preempted frame awaiting resumption.
  struct Suspended {
    tables::QueueId queue = 0;
    QueueMetadata md;
    std::int64_t wire_bytes_remaining = 0;  // incl. resume overhead
  };

  void try_transmit();
  /// Candidate selection over [lo, hi] priority range; returns the chosen
  /// queue or nullopt (setting credit_blocked when that was the obstacle).
  [[nodiscard]] std::optional<tables::QueueId> select_queue(bool express_only,
                                                            bool& credit_blocked,
                                                            TimePoint now);
  [[nodiscard]] bool express_frame_eligible(TimePoint now);
  void maybe_preempt(TimePoint now);
  void start_frame(tables::QueueId q);
  void start_segment(tables::QueueId q, QueueMetadata md, std::int64_t wire_bytes,
                     bool final_segment);
  void finish_segment();

  void advance_shaper(ShaperRuntime& s, TimePoint now) const;
  void advance_all_shapers(TimePoint now);
  /// Recomputes a shaper's mode from the transmit state and queue depth.
  void sync_shaper_mode(tables::QueueId q, TimePoint now);
  void arm_credit_wakeup();

  [[nodiscard]] bool is_express(tables::QueueId q) const {
    return (rt_.express_queues >> q) & 1u;
  }
  [[nodiscard]] Duration wire_time_bytes(std::int64_t wire_bytes) const {
    return rt_.link_rate.transmission_time(BitCount::from_bytes(wire_bytes));
  }
  [[nodiscard]] std::int64_t frame_wire_bytes(std::int64_t frame_bytes) const {
    return net::wire_bits(frame_bytes).bits() / 8;
  }

  event::Simulator& sim_;
  GateCtrl& gates_;
  const SwitchRuntimeConfig rt_;
  SwitchCounters& counters_;

  std::vector<MetadataQueue> queues_;
  BufferPool pool_;

  // Per-queue telemetry, indexed by QueueId.
  std::vector<std::uint64_t> tx_frames_per_queue_;
  std::vector<std::uint64_t> tx_bytes_per_queue_;
  std::vector<std::uint64_t> gate_closed_skips_;

  tables::CbsMapTable cbs_map_;
  tables::CbsTable cbs_table_;
  std::vector<std::optional<std::size_t>> shaper_of_queue_;
  std::vector<ShaperRuntime> shapers_;

  flight::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_node_ = 0;
  std::uint8_t flight_port_ = 0;

  TxCallback tx_cb_;
  std::optional<ActiveTx> tx_;
  std::optional<Suspended> suspended_;
  event::EventId credit_wakeup_{};
  event::EventId preempt_check_{};
};

}  // namespace tsn::sw
