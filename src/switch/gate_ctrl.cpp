#include "switch/gate_ctrl.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tsn::sw {

GateCtrl::GateCtrl(event::Simulator& sim, const ClockSource& clock,
                   std::int64_t gate_table_size)
    : sim_(sim), clock_(&clock), gate_table_size_(gate_table_size) {
  require(gate_table_size > 0, "GateCtrl: gate table size must be positive");
}

void GateCtrl::program(const tables::GateControlList& ingress,
                       const tables::GateControlList& egress,
                       TimePoint cycle_base_synced) {
  require(!running_, "GateCtrl::program: stop before reprogramming");
  require(!ingress.empty() && !egress.empty(), "GateCtrl::program: empty GCL");
  require(ingress.size() <= static_cast<std::size_t>(gate_table_size_) &&
              egress.size() <= static_cast<std::size_t>(gate_table_size_),
          "GateCtrl::program: GCL exceeds the synthesized gate table size");
  require(ingress.cycle_time() == egress.cycle_time(),
          "GateCtrl::program: ingress/egress cycle times must match");
  in_gcl_ = ingress;
  out_gcl_ = egress;
  cycle_base_synced_ = cycle_base_synced;
  max_egress_interval_ = Duration::zero();
  for (std::size_t i = 0; i < egress.size(); ++i) {
    max_egress_interval_ = std::max(max_egress_interval_, egress.entry(i).interval);
  }
}

void GateCtrl::start() {
  if (!programmed() || running_) return;
  running_ = true;

  // Establish the current entry of each program from the synchronized time
  // and schedule the first boundary.
  const TimePoint synced_now = clock_->synced(sim_.now());
  auto init = [&](Walker& walker, const tables::GateControlList& gcl,
                  tables::GateBitmap& gates) {
    walker.gcl = &gcl;
    const Duration offset = synced_now - cycle_base_synced_;
    const auto pos = gcl.position_at(offset);
    walker.index = pos.index;
    walker.next_boundary_synced = synced_now + pos.remaining;
    gates = gcl.entry(pos.index).gate_states;
  };
  init(in_walker_, *in_gcl_, in_gates_);
  init(out_walker_, *out_gcl_, out_gates_);

  arm(in_walker_);
  arm(out_walker_);
  if (on_change_) on_change_();
}

void GateCtrl::set_clock(const ClockSource& clock) {
  require(!running_, "GateCtrl::set_clock: stop the gate engine first");
  clock_ = &clock;
}

void GateCtrl::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(in_event_);
  sim_.cancel(out_event_);
  in_gates_ = tables::kAllGatesOpen;
  out_gates_ = tables::kAllGatesOpen;
}

void GateCtrl::arm(Walker& walker) {
  // Map the synchronized boundary onto true time through the disciplined
  // clock. A servo step can momentarily place the boundary in the past;
  // clamp to "now" so the program never stalls.
  TimePoint due = clock_->true_for_synced(walker.next_boundary_synced);
  if (due < sim_.now()) due = sim_.now();
  // The callback fires long after this frame is gone, so it must not hold
  // references to the parameters — it re-resolves the member pair from a
  // captured direction flag instead.
  const bool ingress = &walker == &in_walker_;
  event::EventId& slot = ingress ? in_event_ : out_event_;
  slot = sim_.schedule_at(due, [this, ingress] {
    if (!running_) return;
    Walker& w = ingress ? in_walker_ : out_walker_;
    tables::GateBitmap& g = ingress ? in_gates_ : out_gates_;
    apply_next(w, g);
    arm(w);
    if (on_change_) on_change_();
  });
}

void GateCtrl::apply_next(Walker& walker, tables::GateBitmap& gates) {
  const tables::GateControlList& gcl = *walker.gcl;
  walker.index = (walker.index + 1) % gcl.size();
  gates = gcl.entry(walker.index).gate_states;
  walker.next_boundary_synced += gcl.entry(walker.index).interval;
  ++updates_applied_;
}

TimePoint GateCtrl::next_update_true() const {
  if (!running_ || !programmed()) return TimePoint::max();
  const TimePoint a = clock_->true_for_synced(in_walker_.next_boundary_synced);
  const TimePoint b = clock_->true_for_synced(out_walker_.next_boundary_synced);
  return std::min(a, b);
}

}  // namespace tsn::sw
