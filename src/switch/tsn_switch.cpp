#include "switch/tsn_switch.hpp"

#include "common/error.hpp"
#include "flight/recorder.hpp"
#include "switch/flight_map.hpp"
#include "tables/gcl.hpp"

namespace tsn::sw {

TsnSwitch::TsnSwitch(event::Simulator& sim, std::string name, SwitchResourceConfig res,
                     SwitchRuntimeConfig rt, std::int64_t physical_ports)
    : sim_(sim),
      name_(std::move(name)),
      res_(res),
      rt_(rt),
      clock_(&identity_clock_),
      filter_(res.classification_table_size, res.meter_table_size),
      switch_(res.unicast_table_size, res.multicast_table_size) {
  res_.validate();
  rt_.validate();
  require(physical_ports > 0 && physical_ports <= 32,
          "TsnSwitch: physical ports must be in [1, 32]");

  ports_.reserve(static_cast<std::size_t>(physical_ports));
  for (std::int64_t p = 0; p < physical_ports; ++p) {
    Port port;
    port.gate_ctrl = std::make_unique<GateCtrl>(sim_, *clock_, res_.gate_table_size);
    port.scheduler =
        std::make_unique<EgressScheduler>(sim_, *port.gate_ctrl, res_, rt_, counters_);
    ports_.push_back(std::move(port));
  }
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    Port& port = ports_[p];
    GateCtrl* gc = port.gate_ctrl.get();
    EgressScheduler* sched = port.scheduler.get();
    gc->set_on_change([sched] { sched->kick(); });
    const auto port_index = static_cast<tables::PortIndex>(p);
    sched->set_tx_callback([this, port_index](const net::Packet& packet) {
      if (tx_cb_) tx_cb_(port_index, packet);
    });
  }
}

void TsnSwitch::use_clock(const timesync::LocalClock& clock) {
  require(!started_, "TsnSwitch::use_clock: switch already started");
  disciplined_ = std::make_unique<DisciplinedClock>(clock);
  clock_ = disciplined_.get();
  for (Port& port : ports_) port.gate_ctrl->set_clock(*clock_);
}

bool TsnSwitch::add_unicast(const MacAddress& dst, VlanId vid, tables::PortIndex out_port) {
  require(out_port < ports_.size(), "add_unicast: out port beyond wired ports");
  return switch_.add_unicast(dst, vid, out_port);
}

bool TsnSwitch::add_multicast(std::uint16_t group, std::uint32_t port_bitmap) {
  return switch_.add_multicast(group, port_bitmap);
}

bool TsnSwitch::add_class_entry(const tables::ClassificationKey& key,
                                tables::ClassificationResult result) {
  require(result.queue < res_.queues_per_port,
          "add_class_entry: queue id beyond synthesized queues");
  return filter_.add_class_entry(key, result);
}

tables::MeterId TsnSwitch::install_meter(DataRate rate, std::int64_t burst_bytes) {
  return filter_.install_meter(rate, burst_bytes);
}

bool TsnSwitch::bind_shaper(tables::PortIndex port, tables::QueueId queue,
                            tables::CbsConfig config) {
  require(port < ports_.size(), "bind_shaper: port beyond wired ports");
  return ports_[port].scheduler->bind_shaper(queue, config);
}

void TsnSwitch::program_gates(tables::PortIndex port, const tables::GateControlList& ingress,
                              const tables::GateControlList& egress,
                              TimePoint cycle_base_synced) {
  require(port < ports_.size(), "program_gates: port beyond wired ports");
  ports_[port].gate_ctrl->program(ingress, egress, cycle_base_synced);
}

void TsnSwitch::program_cqf(TimePoint base_synced) {
  const tables::CqfGclPair pair =
      tables::make_cqf_gcl(rt_.slot_size, rt_.cqf_queue_a, rt_.cqf_queue_b,
                           tables::kAllGatesOpen,
                           static_cast<std::size_t>(res_.gate_table_size));
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    program_gates(static_cast<tables::PortIndex>(p), pair.ingress, pair.egress, base_synced);
  }
}

void TsnSwitch::start() {
  if (started_) return;
  started_ = true;
  if (rt_.enable_cqf) {
    bool any_programmed = false;
    for (const Port& port : ports_) any_programmed |= port.gate_ctrl->programmed();
    if (!any_programmed) program_cqf(TimePoint(0));
  }
  for (Port& port : ports_) port.gate_ctrl->start();
}

void TsnSwitch::set_flight(flight::FlightRecorder* recorder, std::uint32_t node) {
  flight_ = recorder;
  flight_node_ = node;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    ports_[p].scheduler->set_flight(recorder, node, static_cast<std::uint8_t>(p));
  }
}

void TsnSwitch::drop_with_flight(const net::Packet& packet, DropReason reason) {
  counters_.drop(reason);
  if (flight_ != nullptr) {
    flight_->on_switch_drop(packet, flight_node_, flight_cause(reason), sim_.now());
  }
}

void TsnSwitch::receive(tables::PortIndex in_port, const net::Packet& packet) {
  require(in_port < ports_.size(), "receive: port beyond wired ports");
  ++counters_.rx_packets;
  counters_.rx_bytes += static_cast<std::uint64_t>(packet.frame_bytes());
  if (flight_ != nullptr) flight_->on_switch_ingress(packet, flight_node_, sim_.now());

  const IngressFilter::Verdict verdict = filter_.process(packet, sim_.now());
  switch (verdict.action) {
    case IngressFilter::Verdict::Action::kClassificationMiss:
      drop_with_flight(packet, DropReason::kClassificationMiss);
      return;
    case IngressFilter::Verdict::Action::kMaxSduDrop:
      drop_with_flight(packet, DropReason::kMaxSduExceeded);
      return;
    case IngressFilter::Verdict::Action::kMeterDrop:
      drop_with_flight(packet, DropReason::kMeterViolation);
      return;
    case IngressFilter::Verdict::Action::kAccept:
      break;
  }

  const std::vector<tables::PortIndex> out_ports = switch_.lookup(packet);
  if (out_ports.empty()) {
    drop_with_flight(packet, DropReason::kLookupMiss);
    return;
  }

  // The ingress pipeline (parse, classify, lookup) takes a fixed number of
  // cycles before the packet reaches the queueing stage.
  const tables::QueueId queue = verdict.queue;
  sim_.schedule_in(rt_.processing_delay, [this, packet, out_ports, queue] {
    for (const tables::PortIndex p : out_ports) {
      deliver_to_port(p, packet, queue);
    }
  });
}

void TsnSwitch::deliver_to_port(tables::PortIndex port, const net::Packet& packet,
                                tables::QueueId queue) {
  if (port >= ports_.size()) return;  // stale forwarding entry
  Port& pt = ports_[port];
  tables::QueueId target = queue;
  const std::uint8_t a = rt_.cqf_queue_a;
  const std::uint8_t b = rt_.cqf_queue_b;
  if (rt_.enable_cqf && (queue == a || queue == b) && pt.gate_ctrl->programmed()) {
    // CQF: a TS packet joins whichever of the queue pair is filling.
    if (pt.gate_ctrl->in_open(a)) {
      target = a;
    } else if (pt.gate_ctrl->in_open(b)) {
      target = b;
    } else {
      drop_with_flight(packet, DropReason::kIngressGateClosed);
      return;
    }
  } else if (!pt.gate_ctrl->in_open(target)) {
    drop_with_flight(packet, DropReason::kIngressGateClosed);
    return;
  }
  pt.scheduler->ingress_enqueue(packet, target);
}

EgressScheduler& TsnSwitch::scheduler(tables::PortIndex port) {
  require(port < ports_.size(), "scheduler: port beyond wired ports");
  return *ports_[port].scheduler;
}

GateCtrl& TsnSwitch::gates(tables::PortIndex port) {
  require(port < ports_.size(), "gates: port beyond wired ports");
  return *ports_[port].gate_ctrl;
}

void TsnSwitch::collect_metrics(telemetry::MetricsRegistry& registry) const {
  using telemetry::Labels;
  const Labels sw_label = {{"switch", name_}};
  registry.counter("tsn.switch.rx_packets", sw_label, "frames received").add(counters_.rx_packets);
  registry.counter("tsn.switch.tx_packets", sw_label, "frames transmitted").add(counters_.tx_packets);
  registry.counter("tsn.switch.rx_bytes", sw_label).add(counters_.rx_bytes);
  registry.counter("tsn.switch.tx_bytes", sw_label).add(counters_.tx_bytes);
  for (std::size_t r = 0; r < static_cast<std::size_t>(DropReason::kCount); ++r) {
    const auto reason = static_cast<DropReason>(r);
    registry
        .counter("tsn.switch.drops",
                 {{"switch", name_}, {"reason", to_string(reason)}},
                 "frames dropped, one series per MIB drop reason")
        .add(counters_.drop_count(reason));
  }
  registry
      .counter("tsn.switch.guard_band_holds", sw_label,
               "frames held by the length-aware guard band")
      .add(counters_.guard_band_holds);
  registry.counter("tsn.switch.preemptions", sw_label, "frames preempted by express traffic")
      .add(counters_.preemptions);

  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const std::string port = std::to_string(p);
    const Labels port_label = {{"switch", name_}, {"port", port}};
    const Port& pt = ports_[p];
    registry
        .counter("tsn.switch.port.gate_updates", port_label,
                 "GCL entry boundaries applied by the gate engine")
        .add(pt.gate_ctrl->updates_applied());
    registry
        .gauge("tsn.switch.port.peak_buffers", port_label,
               "buffer pool high-water mark")
        .set(static_cast<double>(pt.scheduler->pool().peak_in_use()));
    for (std::size_t q = 0; q < pt.scheduler->queue_count(); ++q) {
      const auto queue_id = static_cast<tables::QueueId>(q);
      const Labels queue_label = {
          {"switch", name_}, {"port", port}, {"queue", std::to_string(q)}};
      registry
          .gauge("tsn.switch.queue.peak_occupancy", queue_label,
                 "metadata queue high-water mark")
          .set(static_cast<double>(pt.scheduler->queue(queue_id).peak_occupancy()));
      registry.counter("tsn.switch.queue.tx_frames", queue_label).add(
          pt.scheduler->tx_frames(queue_id));
      registry.counter("tsn.switch.queue.tx_bytes", queue_label).add(
          pt.scheduler->tx_bytes(queue_id));
      registry
          .counter("tsn.switch.queue.gate_closed_skips", queue_label,
                   "selection passes skipping this non-empty queue on a closed gate")
          .add(pt.scheduler->gate_closed_skips(queue_id));
    }
  }
}

}  // namespace tsn::sw
