// 802.1CB FRER sequence recovery — the "flow integrity" member of the TSN
// standard family the paper's introduction lists.
//
// A replicated stream reaches the listener over two (or more) disjoint
// paths; the sequence recovery function passes the first copy of each
// sequence number and discards the rest. This implementation follows the
// standard's vector recovery algorithm: a sliding window of
// `history_length` sequence numbers around the highest accepted number,
// with counters for passed / discarded / rogue packets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace tsn::frer {

class SequenceRecovery {
 public:
  /// `history_length` — how many sequence numbers around the latest one
  /// are tracked (the standard's frerSeqRcvyHistoryLength, default 64).
  explicit SequenceRecovery(std::size_t history_length = 64);

  /// Offers a received sequence number. True = first copy, deliver;
  /// false = duplicate or outside the window (discard).
  [[nodiscard]] bool accept(std::uint64_t sequence);

  [[nodiscard]] std::uint64_t passed() const { return passed_; }
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }
  /// Packets so far behind the window that they are treated as rogue
  /// (counted inside discarded() as well).
  [[nodiscard]] std::uint64_t rogue() const { return rogue_; }
  [[nodiscard]] std::size_t history_length() const { return seen_.size(); }

  void reset();

 private:
  std::vector<bool> seen_;  // ring indexed by sequence % history
  std::uint64_t highest_ = 0;
  bool started_ = false;
  std::uint64_t passed_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t rogue_ = 0;
};

}  // namespace tsn::frer
