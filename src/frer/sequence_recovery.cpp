#include "frer/sequence_recovery.hpp"

#include <algorithm>

namespace tsn::frer {

SequenceRecovery::SequenceRecovery(std::size_t history_length) {
  require(history_length >= 1, "SequenceRecovery: history length must be >= 1");
  seen_.assign(history_length, false);
}

bool SequenceRecovery::accept(std::uint64_t sequence) {
  const std::uint64_t window = seen_.size();
  if (!started_) {
    started_ = true;
    highest_ = sequence;
    std::fill(seen_.begin(), seen_.end(), false);
    seen_[sequence % window] = true;
    ++passed_;
    return true;
  }

  if (sequence > highest_) {
    // Advancing the window: clear the slots the window slides past.
    const std::uint64_t advance = sequence - highest_;
    if (advance >= window) {
      std::fill(seen_.begin(), seen_.end(), false);
    } else {
      for (std::uint64_t s = highest_ + 1; s <= sequence; ++s) {
        seen_[s % window] = false;
      }
    }
    highest_ = sequence;
    seen_[sequence % window] = true;
    ++passed_;
    return true;
  }

  // At or behind the highest: inside the window it may be a late first
  // copy; behind the window it is rogue.
  if (highest_ - sequence >= window) {
    ++discarded_;
    ++rogue_;
    return false;
  }
  if (seen_[sequence % window]) {
    ++discarded_;  // duplicate from the other path
    return false;
  }
  seen_[sequence % window] = true;
  ++passed_;  // late first copy (reordered across paths)
  return true;
}

void SequenceRecovery::reset() {
  std::fill(seen_.begin(), seen_.end(), false);
  started_ = false;
  highest_ = 0;
  passed_ = 0;
  discarded_ = 0;
  rogue_ = 0;
}

}  // namespace tsn::frer
