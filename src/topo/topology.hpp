// Network topology graph.
//
// Nodes are switches or hosts; edges are Ethernet links with a propagation
// delay. Links may be directed — the paper's ring scenario uses
// unidirectional deterministic transmission (each switch enables exactly
// one TSN port), which the enabled-TSN-port count reflects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace tsn::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : std::uint8_t { kSwitch, kHost };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kSwitch;
  std::string name;
  std::uint8_t port_count = 0;  // ports assigned so far by connect()
};

struct Link {
  LinkId id = 0;
  NodeId node_a = kInvalidNode;
  std::uint8_t port_a = 0;
  NodeId node_b = kInvalidNode;
  std::uint8_t port_b = 0;
  Duration propagation{50};  // ~10 m of cable
  DataRate rate = DataRate::gigabits_per_sec(1);
  bool directed = false;  // true: forwarding a -> b only
};

/// One forwarding step: leave `node` through `out_port` across `link`.
struct Hop {
  NodeId node = kInvalidNode;
  std::uint8_t out_port = 0;
  LinkId link = 0;
};

class Topology {
 public:
  NodeId add_switch(std::string name);
  NodeId add_host(std::string name);

  /// Connects two nodes; ports are auto-assigned in order of connection.
  /// `directed` restricts *forwarding* to a->b (gPTP and control traffic
  /// still traverse both ways physically).
  LinkId connect(NodeId a, NodeId b, Duration propagation = Duration(50),
                 DataRate rate = DataRate::gigabits_per_sec(1), bool directed = false);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] std::vector<NodeId> switches() const;
  [[nodiscard]] std::vector<NodeId> hosts() const;

  /// The far end of `link` as seen from `from`.
  [[nodiscard]] NodeId peer(LinkId link, NodeId from) const;

  /// Links usable to forward *out of* `node` (directed links only when the
  /// node is their source).
  [[nodiscard]] std::vector<LinkId> egress_links(NodeId node) const;

  /// Out port on `node` for `link`; requires the node to touch the link.
  [[nodiscard]] std::uint8_t port_on(LinkId link, NodeId node) const;

  /// Shortest forwarding path (BFS over egress links) from `src` to `dst`,
  /// as the hop sequence excluding the destination node. nullopt when
  /// unreachable.
  [[nodiscard]] std::optional<std::vector<Hop>> route(NodeId src, NodeId dst) const;

  /// Like route(), but refusing to traverse `avoid` links. Used to find a
  /// link-disjoint secondary path for FRER stream replication.
  [[nodiscard]] std::optional<std::vector<Hop>> route_avoiding(
      NodeId src, NodeId dst, const std::vector<LinkId>& avoid) const;

  /// Number of *switch-to-switch* egress links of a switch — the paper's
  /// "enabled TSN ports" (star core: 3, linear middle: 2, ring: 1).
  [[nodiscard]] std::int64_t enabled_tsn_ports(NodeId switch_node) const;

  /// Maximum enabled-TSN-port count over all switches — the `port_num`
  /// the resource customization uses for a homogeneous deployment.
  [[nodiscard]] std::int64_t max_enabled_tsn_ports() const;

 private:
  NodeId add_node(NodeKind kind, std::string name);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

}  // namespace tsn::topo
