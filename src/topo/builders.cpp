#include "topo/builders.hpp"

#include "common/error.hpp"

namespace tsn::topo {
namespace {

void attach_hosts(BuiltTopology& built, Duration propagation) {
  for (std::size_t i = 0; i < built.switch_nodes.size(); ++i) {
    const NodeId host = built.topology.add_host("h" + std::to_string(i));
    built.topology.connect(built.switch_nodes[i], host, propagation);
    built.host_nodes.push_back(host);
  }
}

}  // namespace

BuiltTopology make_star(std::size_t leaves, Duration propagation) {
  require(leaves >= 1, "make_star: need at least one leaf");
  BuiltTopology built;
  const NodeId core = built.topology.add_switch("core");
  built.switch_nodes.push_back(core);
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId leaf = built.topology.add_switch("leaf" + std::to_string(i));
    built.topology.connect(core, leaf, propagation);
    built.switch_nodes.push_back(leaf);
  }
  attach_hosts(built, propagation);
  return built;
}

BuiltTopology make_linear(std::size_t switches, Duration propagation) {
  require(switches >= 2, "make_linear: need at least two switches");
  BuiltTopology built;
  for (std::size_t i = 0; i < switches; ++i) {
    built.switch_nodes.push_back(built.topology.add_switch("s" + std::to_string(i)));
  }
  for (std::size_t i = 0; i + 1 < switches; ++i) {
    built.topology.connect(built.switch_nodes[i], built.switch_nodes[i + 1], propagation);
  }
  attach_hosts(built, propagation);
  return built;
}

BuiltTopology make_ring_bidirectional(std::size_t switches, Duration propagation) {
  require(switches >= 3, "make_ring_bidirectional: need at least three switches");
  BuiltTopology built;
  for (std::size_t i = 0; i < switches; ++i) {
    built.switch_nodes.push_back(built.topology.add_switch("s" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < switches; ++i) {
    built.topology.connect(built.switch_nodes[i], built.switch_nodes[(i + 1) % switches],
                           propagation);
  }
  attach_hosts(built, propagation);
  return built;
}

BuiltTopology make_ring(std::size_t switches, Duration propagation) {
  require(switches >= 3, "make_ring: need at least three switches");
  BuiltTopology built;
  for (std::size_t i = 0; i < switches; ++i) {
    built.switch_nodes.push_back(built.topology.add_switch("s" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < switches; ++i) {
    // Unidirectional deterministic forwarding around the ring.
    built.topology.connect(built.switch_nodes[i], built.switch_nodes[(i + 1) % switches],
                           propagation, DataRate::gigabits_per_sec(1), /*directed=*/true);
  }
  attach_hosts(built, propagation);
  return built;
}

}  // namespace tsn::topo
