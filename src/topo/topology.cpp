#include "topo/topology.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace tsn::topo {

NodeId Topology::add_node(NodeKind kind, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, std::move(name), 0});
  return id;
}

NodeId Topology::add_switch(std::string name) { return add_node(NodeKind::kSwitch, std::move(name)); }
NodeId Topology::add_host(std::string name) { return add_node(NodeKind::kHost, std::move(name)); }

LinkId Topology::connect(NodeId a, NodeId b, Duration propagation, DataRate rate,
                         bool directed) {
  require(a < nodes_.size() && b < nodes_.size(), "Topology::connect: unknown node");
  require(a != b, "Topology::connect: self-loop");
  require(propagation.ns() > 0, "Topology::connect: propagation must be positive");
  const LinkId id = static_cast<LinkId>(links_.size());
  Link link;
  link.id = id;
  link.node_a = a;
  link.port_a = nodes_[a].port_count++;
  link.node_b = b;
  link.port_b = nodes_[b].port_count++;
  link.propagation = propagation;
  link.rate = rate;
  link.directed = directed;
  links_.push_back(link);
  return id;
}

const Node& Topology::node(NodeId id) const {
  require(id < nodes_.size(), "Topology::node: unknown node");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  require(id < links_.size(), "Topology::link: unknown link");
  return links_[id];
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kSwitch) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kHost) out.push_back(n.id);
  }
  return out;
}

NodeId Topology::peer(LinkId link_id, NodeId from) const {
  const Link& l = link(link_id);
  require(l.node_a == from || l.node_b == from, "Topology::peer: node not on link");
  return l.node_a == from ? l.node_b : l.node_a;
}

std::vector<LinkId> Topology::egress_links(NodeId node_id) const {
  std::vector<LinkId> out;
  for (const Link& l : links_) {
    if (l.node_a == node_id) out.push_back(l.id);
    if (l.node_b == node_id && !l.directed) out.push_back(l.id);
  }
  return out;
}

std::uint8_t Topology::port_on(LinkId link_id, NodeId node_id) const {
  const Link& l = link(link_id);
  require(l.node_a == node_id || l.node_b == node_id, "Topology::port_on: node not on link");
  return l.node_a == node_id ? l.port_a : l.port_b;
}

std::optional<std::vector<Hop>> Topology::route(NodeId src, NodeId dst) const {
  return route_avoiding(src, dst, {});
}

std::optional<std::vector<Hop>> Topology::route_avoiding(
    NodeId src, NodeId dst, const std::vector<LinkId>& avoid) const {
  require(src < nodes_.size() && dst < nodes_.size(), "Topology::route: unknown node");
  if (src == dst) return std::vector<Hop>{};

  auto avoided = [&avoid](LinkId lid) {
    return std::find(avoid.begin(), avoid.end(), lid) != avoid.end();
  };

  // BFS over forwarding-usable links.
  std::vector<std::optional<LinkId>> via(nodes_.size());
  std::vector<NodeId> from(nodes_.size(), kInvalidNode);
  std::deque<NodeId> frontier{src};
  from[src] = src;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    if (cur == dst) break;
    // Packets do not transit through hosts.
    if (cur != src && nodes_[cur].kind == NodeKind::kHost) continue;
    for (const LinkId lid : egress_links(cur)) {
      if (avoided(lid)) continue;
      const NodeId next = peer(lid, cur);
      if (from[next] != kInvalidNode) continue;
      from[next] = cur;
      via[next] = lid;
      frontier.push_back(next);
    }
  }
  if (from[dst] == kInvalidNode) return std::nullopt;

  std::vector<Hop> hops;
  for (NodeId cur = dst; cur != src; cur = from[cur]) {
    const LinkId lid = *via[cur];
    const NodeId prev = from[cur];
    hops.push_back(Hop{prev, port_on(lid, prev), lid});
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

std::int64_t Topology::enabled_tsn_ports(NodeId switch_node) const {
  require(node(switch_node).kind == NodeKind::kSwitch,
          "enabled_tsn_ports: node is not a switch");
  std::int64_t count = 0;
  for (const LinkId lid : egress_links(switch_node)) {
    const NodeId other = peer(lid, switch_node);
    if (nodes_[other].kind == NodeKind::kSwitch) ++count;
  }
  return count;
}

std::int64_t Topology::max_enabled_tsn_ports() const {
  std::int64_t best = 0;
  for (const Node& n : nodes_) {
    if (n.kind != NodeKind::kSwitch) continue;
    best = std::max(best, enabled_tsn_ports(n.id));
  }
  return best;
}

}  // namespace tsn::topo
