// Canonical industrial-control topologies (paper §IV.A):
//  * star — a core switch with `leaves` child switches (paper: 3 children,
//    4 switches, core enables 3 TSN ports);
//  * linear — a chain of `switches` (paper: 6 switches, middle nodes enable
//    2 TSN ports, bidirectional forwarding);
//  * ring — a unidirectional cycle of `switches` (paper: 6 switches, each
//    enables 1 TSN port).
//
// Each switch gets one attached host ("h<i>") usable as talker/listener
// (the TSNNic and analyzer endpoints of the paper's demo).
#pragma once

#include "topo/topology.hpp"

namespace tsn::topo {

struct BuiltTopology {
  Topology topology;
  std::vector<NodeId> switch_nodes;
  std::vector<NodeId> host_nodes;  // host_nodes[i] hangs off switch_nodes[i]
};

[[nodiscard]] BuiltTopology make_star(std::size_t leaves = 3,
                                      Duration propagation = Duration(50));
[[nodiscard]] BuiltTopology make_linear(std::size_t switches = 6,
                                        Duration propagation = Duration(50));
[[nodiscard]] BuiltTopology make_ring(std::size_t switches = 6,
                                      Duration propagation = Duration(50));

/// Ring with bidirectional forwarding: every switch enables 2 TSN ports
/// and each host pair has two link-disjoint paths (clockwise and
/// counter-clockwise) — the substrate for FRER stream replication.
[[nodiscard]] BuiltTopology make_ring_bidirectional(std::size_t switches = 6,
                                                    Duration propagation = Duration(50));

}  // namespace tsn::topo
