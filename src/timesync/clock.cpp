#include "timesync/clock.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tsn::timesync {

LocalClock::LocalClock(double drift_ppm, Duration timestamp_granularity)
    : drift_ppm_(drift_ppm),
      drift_factor_(1.0 + drift_ppm * 1e-6),
      granularity_(timestamp_granularity) {
  require(drift_factor_ > 0.0, "LocalClock: drift must keep the oscillator running forward");
  require(granularity_.ns() > 0, "LocalClock: granularity must be positive");
}

double LocalClock::raw_ns(double true_ns) const { return true_ns * drift_factor_; }

TimePoint LocalClock::raw(TimePoint true_now) const {
  return TimePoint(static_cast<std::int64_t>(std::llround(raw_ns(static_cast<double>(true_now.ns())))));
}

TimePoint LocalClock::synced(TimePoint true_now) const {
  const double raw_now = raw_ns(static_cast<double>(true_now.ns()));
  const double synced_ns = base_synced_ + (raw_now - base_raw_) * corr_slope_;
  return TimePoint(static_cast<std::int64_t>(std::llround(synced_ns)));
}

TimePoint LocalClock::true_for_synced(TimePoint target) const {
  // Invert synced = base_synced + (true*drift - base_raw) * slope.
  const double raw_target =
      base_raw_ + (static_cast<double>(target.ns()) - base_synced_) / corr_slope_;
  const double true_ns = raw_target / drift_factor_;
  return TimePoint(static_cast<std::int64_t>(std::llround(true_ns)));
}

TimePoint LocalClock::timestamp(TimePoint true_now) const {
  const std::int64_t s = synced(true_now).ns();
  const std::int64_t g = granularity_.ns();
  // Floor toward negative infinity so quantization is shift-invariant.
  std::int64_t q = s / g;
  if (s % g < 0) --q;
  return TimePoint(q * g);
}

void LocalClock::discipline(TimePoint true_now, Duration step, double rate_ratio) {
  require(rate_ratio > 0.0, "LocalClock::discipline: rate ratio must be positive");
  const double raw_now = raw_ns(static_cast<double>(true_now.ns()));
  const double synced_now = base_synced_ + (raw_now - base_raw_) * corr_slope_;
  base_raw_ = raw_now;
  base_synced_ = synced_now + static_cast<double>(step.ns());
  corr_slope_ = rate_ratio;
}

}  // namespace tsn::timesync
