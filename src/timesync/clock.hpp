// Local oscillator model for gPTP simulation.
//
// Every device owns a free-running oscillator with a fixed frequency error
// (ppm) relative to ideal time. The Time Sync template disciplines it with
// an offset + rate correction. Gate Control reads the *synchronized* time,
// so any residual sync error skews gate boundaries between neighboring
// switches — which is precisely the physical source of CQF jitter the
// paper's <50 ns synchronization bound keeps small.
#pragma once

#include "common/time.hpp"

namespace tsn::timesync {

class LocalClock {
 public:
  /// `drift_ppm` — oscillator frequency error (e.g. +35.2 means the local
  /// oscillator runs 35.2 ppm fast). `timestamp_granularity` — hardware
  /// timestamping quantum (8 ns for the paper's 125 MHz FPGA clock).
  explicit LocalClock(double drift_ppm = 0.0,
                      Duration timestamp_granularity = Duration(8));

  /// Free-running local time as a function of true (simulation) time.
  [[nodiscard]] TimePoint raw(TimePoint true_now) const;

  /// Disciplined (synchronized) time: raw time through the correction map.
  [[nodiscard]] TimePoint synced(TimePoint true_now) const;

  /// Inverse of synced(): the true instant at which this clock's
  /// synchronized time will read `target`. Used by Gate Ctrl to schedule
  /// gate updates at synchronized slot boundaries.
  [[nodiscard]] TimePoint true_for_synced(TimePoint target) const;

  /// Hardware timestamp of the current synchronized time: quantized to the
  /// timestamping granularity.
  [[nodiscard]] TimePoint timestamp(TimePoint true_now) const;

  /// Servo interface — fold the correction map so that from `true_now` on,
  /// synchronized time is stepped by `step` and advances at
  /// `rate_ratio` × (raw rate).
  void discipline(TimePoint true_now, Duration step, double rate_ratio);

  [[nodiscard]] double drift_ppm() const { return drift_ppm_; }
  [[nodiscard]] double correction_rate_ratio() const { return corr_slope_; }
  [[nodiscard]] Duration granularity() const { return granularity_; }

 private:
  [[nodiscard]] double raw_ns(double true_ns) const;

  double drift_ppm_;
  double drift_factor_;  // d(raw)/d(true)
  Duration granularity_;
  // Correction map: synced = base_synced_ + (raw - base_raw_) * corr_slope_.
  double base_raw_ = 0.0;
  double base_synced_ = 0.0;
  double corr_slope_ = 1.0;
};

}  // namespace tsn::timesync
