// gPTP (IEEE 802.1AS) time-synchronization simulation — the Time Sync
// template (paper Fig. 5: collection of clock time, calculation of
// correction time, clock correction).
//
// The domain is a tree rooted at the grandmaster. Each node measures the
// propagation delay to its parent with Pdelay_Req/Resp exchanges, receives
// two-step Sync/Follow_Up messages, and disciplines its LocalClock with an
// offset step plus a neighbor-rate-ratio correction. Non-leaf nodes
// regenerate Sync downstream from their own disciplined clock, so sync
// error accumulates per hop exactly as in a boundary-clock 802.1AS chain.
//
// All timestamps pass through the hardware timestamping model
// (LocalClock::timestamp: 8 ns quantization for a 125 MHz FPGA) and links
// add a configurable per-message jitter, so the residual error is tens of
// nanoseconds — matching the paper's "<50 ns" prototype figure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "event/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "timesync/clock.hpp"

namespace tsn::timesync {

struct GptpConfig {
  Duration sync_interval = milliseconds(125);
  Duration pdelay_interval = milliseconds(250);
  /// EWMA weight for new neighbor-rate-ratio samples (0..1].
  double ratio_smoothing = 0.25;
  /// EWMA weight for new link-delay samples.
  double delay_smoothing = 0.25;
  /// Fixed responder turnaround inside Pdelay_Resp generation.
  Duration pdelay_turnaround = microseconds(1);
};

/// Accelerated message intervals (802.1AS permits faster initial rates).
/// A fresh domain converges to <50 ns within ~150 ms of simulated time,
/// which keeps scenario warm-ups short.
[[nodiscard]] inline GptpConfig fast_startup_profile() {
  GptpConfig cfg;
  cfg.sync_interval = milliseconds(8);
  cfg.pdelay_interval = milliseconds(40);
  return cfg;
}

class GptpDomain;

/// Clock quality advertised in Announce — the BMCA comparison key:
/// lower (priority1, identity) wins, as in 802.1AS's defaultDS subset.
struct ClockQuality {
  std::uint8_t priority1 = 128;
  std::uint64_t identity = 0;  // EUI-64-style tiebreak (we use the index)

  [[nodiscard]] bool better_than(const ClockQuality& o) const {
    if (priority1 != o.priority1) return priority1 < o.priority1;
    return identity < o.identity;
  }
};

/// One clock-bearing device (switch or end station) in the sync tree.
class GptpNode {
 public:
  GptpNode(GptpDomain& domain, std::size_t index, std::string name, LocalClock clock);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] bool is_grandmaster() const { return uplink_.parent == nullptr; }

  [[nodiscard]] const LocalClock& clock() const { return clock_; }
  [[nodiscard]] LocalClock& clock() { return clock_; }

  /// This node's synchronized time at the current simulation instant.
  [[nodiscard]] TimePoint synced_now() const;

  /// Latest measured master offset (0 until the first Sync is processed).
  [[nodiscard]] Duration last_offset() const { return last_offset_; }

  /// Smoothed Pdelay estimate toward the parent.
  [[nodiscard]] Duration link_delay_estimate() const { return Duration(static_cast<std::int64_t>(delay_estimate_ns_)); }

  /// Number of Sync messages processed.
  [[nodiscard]] std::uint64_t syncs_received() const { return syncs_received_; }

  [[nodiscard]] const ClockQuality& quality() const { return quality_; }
  void set_quality(ClockQuality q) { quality_ = q; }

  /// Alive nodes participate in elections and message exchange; a failed
  /// node is silent (its clock free-runs — holdover for its old slaves).
  [[nodiscard]] bool alive() const { return alive_; }

 private:
  friend class GptpDomain;

  struct LinkToParent {
    GptpNode* parent = nullptr;
    Duration delay{};
    Duration jitter{};
  };

  void start(const GptpConfig& config);
  void stop();
  void detach();
  void send_sync_to_children();
  void run_pdelay();
  void on_sync(TimePoint origin_timestamp);

  [[nodiscard]] Duration jittered_delay(Duration base, Duration jitter);

  GptpDomain& domain_;
  std::size_t index_;
  std::string name_;
  LocalClock clock_;

  LinkToParent uplink_;
  std::vector<GptpNode*> children_;

  GptpConfig config_;
  std::unique_ptr<event::PeriodicTask> sync_task_;
  std::unique_ptr<event::PeriodicTask> pdelay_task_;

  // Servo state.
  double delay_estimate_ns_ = 0.0;
  bool have_delay_ = false;
  bool have_prev_sync_ = false;
  double prev_origin_ns_ = 0.0;
  double prev_raw_rx_ns_ = 0.0;
  double ratio_estimate_ = 1.0;
  bool have_ratio_ = false;
  Duration last_offset_{};
  std::uint64_t syncs_received_ = 0;
  ClockQuality quality_{};
  bool alive_ = true;
};

/// Owns the nodes of one gPTP domain and wires them into a tree.
class GptpDomain {
 public:
  GptpDomain(event::Simulator& sim, std::uint64_t seed = 1);

  /// Adds a node; the first node added becomes the grandmaster unless
  /// connect() later re-roots it.
  GptpNode& add_node(std::string name, double drift_ppm,
                     Duration timestamp_granularity = Duration(8));

  /// Makes `child` sync from `parent` over a link with the given one-way
  /// delay and uniform ±jitter.
  void connect(GptpNode& parent, GptpNode& child, Duration link_delay,
               Duration jitter = Duration(4));

  /// Starts Pdelay and Sync machinery on every node.
  void start(const GptpConfig& config = {});

  /// BMCA: elects the best alive clock (lowest (priority1, identity)) and
  /// rebuilds the sync tree by BFS from it over `edges` (undirected node
  /// index pairs with link delays). Existing parent/child relations and
  /// message tasks are torn down first; each node's clock keeps its last
  /// discipline (holdover) until the new tree re-synchronizes it.
  /// Call start() afterwards to arm the new tree. Returns the GM's index.
  struct Edge {
    std::size_t a = 0;
    std::size_t b = 0;
    Duration delay{Duration(50)};
    Duration jitter{Duration(4)};
  };
  std::size_t elect_and_build_tree(const std::vector<Edge>& edges);

  /// Failure injection: the node stops sending and answering (its old
  /// slaves free-run in holdover until a new tree is elected).
  void fail_node(std::size_t index);

  [[nodiscard]] event::Simulator& simulator() { return sim_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] GptpNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] const GptpNode& node(std::size_t i) const { return *nodes_.at(i); }

  [[nodiscard]] GptpNode& grandmaster();

  /// Signed sync error of `n` against the grandmaster at the current
  /// simulation instant.
  [[nodiscard]] Duration sync_error(const GptpNode& n) const;

  /// max |sync error| across all nodes right now.
  [[nodiscard]] Duration max_abs_sync_error() const;

  /// Exports per-node servo state ("tsn.timesync.*" {node=}: last master
  /// offset, smoothed path delay, Sync count, signed error against the
  /// grandmaster) plus the domain-wide max |sync error| into `registry`.
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  event::Simulator& sim_;
  Rng rng_;
  std::vector<std::unique_ptr<GptpNode>> nodes_;
};

}  // namespace tsn::timesync
