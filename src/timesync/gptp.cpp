#include "timesync/gptp.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace tsn::timesync {

GptpNode::GptpNode(GptpDomain& domain, std::size_t index, std::string name, LocalClock clock)
    : domain_(domain), index_(index), name_(std::move(name)), clock_(clock) {
  quality_ = ClockQuality{128, static_cast<std::uint64_t>(index)};
}

void GptpNode::stop() {
  sync_task_.reset();
  pdelay_task_.reset();
}

void GptpNode::detach() {
  stop();
  uplink_ = LinkToParent{};
  children_.clear();
  // Servo state resets; the clock itself keeps its last discipline
  // (holdover), exactly like hardware after losing its master.
  have_delay_ = false;
  delay_estimate_ns_ = 0.0;
  have_prev_sync_ = false;
  have_ratio_ = false;
}

TimePoint GptpNode::synced_now() const {
  return clock_.synced(domain_.simulator().now());
}

Duration GptpNode::jittered_delay(Duration base, Duration jitter) {
  if (jitter.ns() <= 0) return base;
  const std::int64_t j = static_cast<std::int64_t>(
      domain_.rng().uniform(0, static_cast<std::uint64_t>(2 * jitter.ns()))) - jitter.ns();
  Duration d = base + Duration(j);
  return d.ns() > 0 ? d : Duration(1);
}

void GptpNode::start(const GptpConfig& config) {
  config_ = config;
  event::Simulator& sim = domain_.simulator();
  // Stagger per-node phases so message processing order is not degenerate.
  const Duration phase = microseconds(37) * static_cast<std::int64_t>(index_ + 1);

  if (!is_grandmaster()) {
    // Measure the link before the first Sync arrives: run one Pdelay
    // exchange immediately, then periodically.
    pdelay_task_ = std::make_unique<event::PeriodicTask>(
        sim, sim.now() + phase, config_.pdelay_interval, [this] { run_pdelay(); });
  }
  if (!children_.empty()) {
    sync_task_ = std::make_unique<event::PeriodicTask>(
        sim, sim.now() + phase + config_.sync_interval / 4, config_.sync_interval,
        [this] { send_sync_to_children(); });
  }
}

void GptpNode::send_sync_to_children() {
  if (!alive_) return;
  event::Simulator& sim = domain_.simulator();
  for (GptpNode* child : children_) {
    // Two-step Sync: the precise origin timestamp travels in Follow_Up;
    // we deliver both as one event carrying the hardware timestamp taken
    // at transmission.
    const TimePoint origin = clock_.timestamp(sim.now());
    const Duration delay = child->jittered_delay(child->uplink_.delay, child->uplink_.jitter);
    sim.schedule_in(delay, [child, origin] { child->on_sync(origin); });
  }
}

void GptpNode::run_pdelay() {
  // Pdelay_Req/Resp with hardware timestamps on both ends. The exchange
  // is compressed into one event chain; timestamps honour each clock's
  // quantization, so the estimate carries realistic error.
  event::Simulator& sim = domain_.simulator();
  GptpNode* peer = uplink_.parent;
  if (peer == nullptr || !alive_ || !peer->alive()) return;

  const TimePoint t1 = clock_.timestamp(sim.now());
  const Duration req_delay = jittered_delay(uplink_.delay, uplink_.jitter);
  sim.schedule_in(req_delay, [this, peer, t1] {
    event::Simulator& s = domain_.simulator();
    const TimePoint t2 = peer->clock_.timestamp(s.now());
    s.schedule_in(config_.pdelay_turnaround, [this, peer, t1, t2] {
      event::Simulator& s2 = domain_.simulator();
      const TimePoint t3 = peer->clock_.timestamp(s2.now());
      const Duration resp_delay = jittered_delay(uplink_.delay, uplink_.jitter);
      s2.schedule_in(resp_delay, [this, t1, t2, t3] {
        const TimePoint t4 = clock_.timestamp(domain_.simulator().now());
        const Duration round = (t4 - t1) - (t3 - t2);
        const double sample_ns = static_cast<double>(round.ns()) / 2.0;
        if (sample_ns <= 0.0) return;  // quantization artifact; skip
        if (!have_delay_) {
          delay_estimate_ns_ = sample_ns;
          have_delay_ = true;
        } else {
          delay_estimate_ns_ +=
              config_.delay_smoothing * (sample_ns - delay_estimate_ns_);
        }
      });
    });
  });
}

void GptpNode::on_sync(TimePoint origin_timestamp) {
  if (!alive_) return;
  if (!have_delay_) return;  // cannot correct without a link-delay estimate
  event::Simulator& sim = domain_.simulator();
  const TimePoint now = sim.now();
  ++syncs_received_;

  const double raw_rx_ns = static_cast<double>(clock_.raw(now).ns());
  const double origin_ns = static_cast<double>(origin_timestamp.ns());

  // Neighbor rate ratio from consecutive origin timestamps vs local raw
  // receive times: d(master time) / d(raw time).
  if (have_prev_sync_) {
    const double d_master = origin_ns - prev_origin_ns_;
    const double d_raw = raw_rx_ns - prev_raw_rx_ns_;
    if (d_raw > 0.0 && d_master > 0.0) {
      const double sample = d_master / d_raw;
      if (!have_ratio_) {
        ratio_estimate_ = sample;
        have_ratio_ = true;
      } else {
        ratio_estimate_ += config_.ratio_smoothing * (sample - ratio_estimate_);
      }
    }
  }
  prev_origin_ns_ = origin_ns;
  prev_raw_rx_ns_ = raw_rx_ns;
  have_prev_sync_ = true;

  // Offset: master's time when the Sync left, plus the propagation delay,
  // is what our synchronized clock should read right now.
  const TimePoint master_now =
      origin_timestamp + Duration(static_cast<std::int64_t>(std::llround(delay_estimate_ns_)));
  const Duration offset = master_now - clock_.synced(now);
  last_offset_ = offset;

  clock_.discipline(now, offset, have_ratio_ ? ratio_estimate_ : 1.0);
}

GptpDomain::GptpDomain(event::Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

GptpNode& GptpDomain::add_node(std::string name, double drift_ppm,
                               Duration timestamp_granularity) {
  nodes_.push_back(std::make_unique<GptpNode>(
      *this, nodes_.size(), std::move(name), LocalClock(drift_ppm, timestamp_granularity)));
  return *nodes_.back();
}

void GptpDomain::connect(GptpNode& parent, GptpNode& child, Duration link_delay,
                         Duration jitter) {
  require(child.uplink_.parent == nullptr, "GptpDomain::connect: child already has a parent");
  require(&parent != &child, "GptpDomain::connect: self-loop");
  require(link_delay.ns() > 0, "GptpDomain::connect: link delay must be positive");
  child.uplink_ = GptpNode::LinkToParent{&parent, link_delay, jitter};
  parent.children_.push_back(&child);
}

void GptpDomain::start(const GptpConfig& config) {
  for (auto& node : nodes_) node->start(config);
}

GptpNode& GptpDomain::grandmaster() {
  for (auto& node : nodes_) {
    if (node->alive() && node->is_grandmaster() && !node->children_.empty()) return *node;
  }
  require(!nodes_.empty(), "GptpDomain::grandmaster: empty domain");
  return *nodes_.front();
}

std::size_t GptpDomain::elect_and_build_tree(const std::vector<Edge>& edges) {
  require(!nodes_.empty(), "elect_and_build_tree: empty domain");
  // BMCA: best alive clock wins.
  const GptpNode* best = nullptr;
  for (const auto& node : nodes_) {
    if (!node->alive()) continue;
    if (best == nullptr || node->quality().better_than(best->quality())) best = node.get();
  }
  require(best != nullptr, "elect_and_build_tree: no alive clock");

  for (auto& node : nodes_) node->detach();

  // BFS over alive-to-alive edges from the elected grandmaster.
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<std::size_t> frontier{best->index()};
  visited[best->index()] = true;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.erase(frontier.begin());
    for (const Edge& e : edges) {
      std::size_t other = nodes_.size();
      if (e.a == cur) other = e.b;
      if (e.b == cur) other = e.a;
      if (other >= nodes_.size() || visited[other]) continue;
      if (!nodes_[other]->alive()) continue;
      visited[other] = true;
      connect(*nodes_[cur], *nodes_[other], e.delay, e.jitter);
      frontier.push_back(other);
    }
  }
  return best->index();
}

void GptpDomain::fail_node(std::size_t index) {
  GptpNode& node = this->node(index);
  node.alive_ = false;
  node.stop();
}

Duration GptpDomain::sync_error(const GptpNode& n) const {
  const TimePoint now = sim_.now();
  // Error against the (alive, serving) grandmaster's synchronized time.
  const GptpNode* gm = nullptr;
  for (const auto& node : nodes_) {
    if (!node->alive() || !node->is_grandmaster()) continue;
    gm = node.get();
    if (!node->children_.empty()) break;  // prefer a GM that actually serves
  }
  if (gm == nullptr || gm == &n) return Duration::zero();
  return n.clock().synced(now) - gm->clock().synced(now);
}

Duration GptpDomain::max_abs_sync_error() const {
  Duration worst{};
  for (const auto& node : nodes_) {
    if (!node->alive()) continue;  // failed nodes free-run in holdover
    const Duration e = sync_error(*node);
    const Duration a = e.ns() < 0 ? -e : e;
    if (a > worst) worst = a;
  }
  return worst;
}

void GptpDomain::collect_metrics(telemetry::MetricsRegistry& registry) const {
  for (const auto& node : nodes_) {
    const telemetry::Labels labels = {{"node", node->name()}};
    registry
        .gauge("tsn.timesync.offset_ns", labels,
               "latest measured offset to the sync master")
        .set(static_cast<double>(node->last_offset().ns()));
    registry
        .gauge("tsn.timesync.path_delay_ns", labels,
               "smoothed Pdelay estimate toward the parent")
        .set(static_cast<double>(node->link_delay_estimate().ns()));
    registry.counter("tsn.timesync.syncs_received", labels).add(node->syncs_received());
    registry
        .gauge("tsn.timesync.sync_error_ns", labels,
               "signed error against the grandmaster's synchronized time")
        .set(static_cast<double>(sync_error(*node).ns()));
  }
  registry
      .gauge("tsn.timesync.max_abs_sync_error_ns", {},
             "worst |sync error| across alive nodes at collection time")
      .set(static_cast<double>(max_abs_sync_error().ns()));
}

}  // namespace tsn::timesync
