// IEEE 802.3 CRC-32 (the Ethernet FCS).
#pragma once

#include <cstdint>
#include <span>

namespace tsn::net {

/// CRC-32 as used by the Ethernet FCS: polynomial 0x04C11DB7 (reflected
/// 0xEDB88320), initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF, reflected
/// input and output.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed successive chunks with the previous return value
/// (start from crc32_init()) then finalize.
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data);
[[nodiscard]] constexpr std::uint32_t crc32_finalize(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace tsn::net
