// Byte-level IEEE 802.3 / 802.1Q Ethernet frame model.
//
// The switch dataplane operates on the lighter tsn::net::Packet, but the
// parser submodule of the Packet Switch template (paper Fig. 5) is exercised
// against real frame bytes produced and consumed here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mac_address.hpp"
#include "common/units.hpp"

namespace tsn::net {

/// 802.1Q tag contents (TPID 0x8100 implied).
struct VlanTag {
  Priority pcp = 0;   // Priority Code Point, 3 bits
  bool dei = false;   // Drop Eligible Indicator
  VlanId vid = 0;     // VLAN identifier, 12 bits

  [[nodiscard]] std::uint16_t tci() const {
    return static_cast<std::uint16_t>((pcp << 13) | (dei ? 0x1000 : 0) | (vid & 0x0FFF));
  }
  [[nodiscard]] static VlanTag from_tci(std::uint16_t tci) {
    return VlanTag{static_cast<Priority>((tci >> 13) & 0x7), (tci & 0x1000) != 0,
                   static_cast<VlanId>(tci & 0x0FFF)};
  }
  auto operator<=>(const VlanTag&) const = default;
};

inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeGptp = 0x88F7;  // IEEE 802.1AS / PTP
inline constexpr std::uint16_t kEtherTypeTsnData = 0xB62C;  // experimental payload

/// A complete Ethernet frame. `payload` excludes headers and FCS.
struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  std::optional<VlanTag> vlan;
  std::uint16_t ethertype = kEtherTypeTsnData;
  std::vector<std::uint8_t> payload;

  /// Frame length on the wire excluding preamble/IFG but including the
  /// 4-byte FCS and any padding needed to reach the 64-byte minimum.
  [[nodiscard]] std::int64_t frame_bytes() const;

  /// Serializes to bytes including padding and a correct FCS.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  bool operator==(const EthernetFrame&) const = default;
};

/// Result of parsing raw bytes back into a frame.
struct ParseResult {
  EthernetFrame frame;
  bool fcs_ok = false;
};

/// Parses a serialized frame (as produced by serialize(), i.e. including
/// FCS). Returns nullopt for frames shorter than the minimal header or
/// truncated tags. A bad FCS parses but reports fcs_ok == false — real
/// switches count those frames rather than crash.
[[nodiscard]] std::optional<ParseResult> parse_frame(std::span<const std::uint8_t> bytes);

/// Total wire occupancy (preamble + SFD + frame + IFG) in bits; this is
/// what the link model charges per transmission.
[[nodiscard]] BitCount wire_bits(std::int64_t frame_bytes);

}  // namespace tsn::net
