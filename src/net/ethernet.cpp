#include "net/ethernet.hpp"

#include <algorithm>

#include "net/crc32.hpp"

namespace tsn::net {
namespace {

constexpr std::int64_t kHeaderBytes = 14;  // dst + src + ethertype
constexpr std::int64_t kVlanTagBytes = 4;
constexpr std::int64_t kFcsBytes = 4;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

}  // namespace

std::int64_t EthernetFrame::frame_bytes() const {
  std::int64_t len = kHeaderBytes + static_cast<std::int64_t>(payload.size()) + kFcsBytes;
  if (vlan) len += kVlanTagBytes;
  // 802.3 minimum frame size: pad the payload. (Tagged frames may be 68 B;
  // we follow the common practice of padding to 64 B total either way.)
  return std::max<std::int64_t>(len, kEthernetMinFrameBytes);
}

std::vector<std::uint8_t> EthernetFrame::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(frame_bytes()));
  out.insert(out.end(), dst.octets().begin(), dst.octets().end());
  out.insert(out.end(), src.octets().begin(), src.octets().end());
  if (vlan) {
    put_u16(out, kEtherTypeVlan);
    put_u16(out, vlan->tci());
  }
  put_u16(out, ethertype);
  out.insert(out.end(), payload.begin(), payload.end());
  // Pad to minimum size (before FCS).
  const auto target = static_cast<std::size_t>(frame_bytes() - kFcsBytes);
  if (out.size() < target) out.resize(target, 0);
  const std::uint32_t fcs = crc32(out);
  // FCS is transmitted least-significant byte first.
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 24) & 0xFF));
  return out;
}

std::optional<ParseResult> parse_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < static_cast<std::size_t>(kEthernetMinFrameBytes)) return std::nullopt;

  ParseResult result;
  std::array<std::uint8_t, 6> mac{};
  std::copy_n(bytes.begin(), 6, mac.begin());
  result.frame.dst = MacAddress(mac);
  std::copy_n(bytes.begin() + 6, 6, mac.begin());
  result.frame.src = MacAddress(mac);

  std::size_t offset = 12;
  std::uint16_t ethertype = get_u16(bytes, offset);
  offset += 2;
  if (ethertype == kEtherTypeVlan) {
    if (bytes.size() < offset + 4) return std::nullopt;
    result.frame.vlan = VlanTag::from_tci(get_u16(bytes, offset));
    offset += 2;
    ethertype = get_u16(bytes, offset);
    offset += 2;
  }
  result.frame.ethertype = ethertype;

  if (bytes.size() < offset + static_cast<std::size_t>(kFcsBytes)) return std::nullopt;
  const std::size_t payload_len = bytes.size() - offset - kFcsBytes;
  result.frame.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                              bytes.begin() + static_cast<std::ptrdiff_t>(offset + payload_len));

  const std::uint32_t computed = crc32(bytes.first(bytes.size() - kFcsBytes));
  const std::size_t f = bytes.size() - kFcsBytes;
  const std::uint32_t stored = static_cast<std::uint32_t>(bytes[f]) |
                               (static_cast<std::uint32_t>(bytes[f + 1]) << 8) |
                               (static_cast<std::uint32_t>(bytes[f + 2]) << 16) |
                               (static_cast<std::uint32_t>(bytes[f + 3]) << 24);
  result.fcs_ok = computed == stored;
  return result;
}

BitCount wire_bits(std::int64_t frame_bytes) {
  return BitCount::from_bytes(frame_bytes) + kEthernetPreambleSfd + kEthernetInterFrameGap;
}

}  // namespace tsn::net
