#include "net/crc32.hpp"

#include <array>

namespace tsn::net {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  for (const std::uint8_t byte : data) {
    state = kTable[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_finalize(crc32_update(crc32_init(), data));
}

}  // namespace tsn::net
