#include "net/packet.hpp"

#include "common/error.hpp"

namespace tsn::net {

std::string to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kTimeSensitive: return "TS";
    case TrafficClass::kRateConstrained: return "RC";
    case TrafficClass::kBestEffort: return "BE";
  }
  return "?";
}

Packet packet_with_frame_size(std::int64_t total_frame_bytes) {
  require(total_frame_bytes >= kEthernetMinFrameBytes &&
              total_frame_bytes <= kEthernetMaxFrameBytes + 4,
          "packet_with_frame_size: frame size out of [64, 1522]");
  Packet p;
  // frame = 14 header + 4 vlan + payload + 4 fcs.
  p.payload_bytes = total_frame_bytes - 22;
  if (p.payload_bytes < 42) p.payload_bytes = 42;  // min-padded frame
  return p;
}

EthernetFrame to_frame(const Packet& p) {
  EthernetFrame f;
  f.dst = p.dst;
  f.src = p.src;
  f.vlan = p.vlan;
  f.ethertype = p.ethertype;
  f.payload.assign(static_cast<std::size_t>(p.payload_bytes), 0);
  return f;
}

Packet from_frame(const EthernetFrame& f) {
  Packet p;
  p.dst = f.dst;
  p.src = f.src;
  p.vlan = f.vlan.value_or(VlanTag{});
  p.ethertype = f.ethertype;
  p.payload_bytes = static_cast<std::int64_t>(f.payload.size());
  return p;
}

}  // namespace tsn::net
