// The simulation packet: the unit the switch dataplane operates on.
//
// Header fields are kept unpacked (parsing happened at the ingress parser),
// and the payload is represented by its length only — the paper's switches
// never inspect payload bytes, so carrying them through every hop would
// only slow the simulation down. Byte-accurate frames are available via
// to_frame()/from_frame() for parser-path tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/mac_address.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "net/ethernet.hpp"

namespace tsn::net {

/// TSN traffic classes (paper §II.A): Time-Sensitive (highest priority),
/// Rate-Constrained (medium), Best-Effort (lowest).
enum class TrafficClass : std::uint8_t { kTimeSensitive, kRateConstrained, kBestEffort };

[[nodiscard]] std::string to_string(TrafficClass c);

using FlowId = std::uint32_t;
inline constexpr FlowId kInvalidFlowId = 0xFFFFFFFFu;

/// Measurement metadata stamped by the traffic generator (TSNNic) and read
/// by the analyzer. A real tester carries this inside the payload; we keep
/// it beside the packet for convenience — the switches never read it.
struct PacketMeta {
  FlowId flow_id = kInvalidFlowId;
  std::uint64_t sequence = 0;
  TimePoint injected_at{};      // talker timestamp
  Duration deadline{};          // TS flows: relative end-to-end deadline
  TrafficClass traffic_class = TrafficClass::kBestEffort;
};

struct Packet {
  MacAddress dst;
  MacAddress src;
  VlanTag vlan;                        // the evaluation always VLAN-tags
  std::uint16_t ethertype = kEtherTypeTsnData;
  std::int64_t payload_bytes = 46;     // Ethernet payload length
  PacketMeta meta;

  /// Wire frame length incl. tag + FCS, min-padded (>= 64 B).
  [[nodiscard]] std::int64_t frame_bytes() const {
    const std::int64_t len = 14 + 4 + payload_bytes + 4;
    return len < kEthernetMinFrameBytes ? kEthernetMinFrameBytes : len;
  }

  /// Bits occupied on the link per transmission (preamble + frame + IFG).
  [[nodiscard]] BitCount wire_bits() const { return net::wire_bits(frame_bytes()); }
};

/// Returns a Packet whose payload length makes frame_bytes() == total
/// (total in [64, 1518]). The paper sweeps "packet size" as the full frame
/// size {64, 128, ..., 1500} B.
[[nodiscard]] Packet packet_with_frame_size(std::int64_t total_frame_bytes);

/// Converts to a byte-accurate frame (payload zero-filled to length).
[[nodiscard]] EthernetFrame to_frame(const Packet& p);

/// Extracts the dataplane view from a parsed frame. Untagged frames map to
/// vlan {pcp=0, vid=0}. Measurement metadata is default-initialized.
[[nodiscard]] Packet from_frame(const EthernetFrame& f);

}  // namespace tsn::net
