// Named fault profiles — the vocabulary of the `faults` campaign axis.
//
// A profile is a recipe that, given the concrete topology and traffic
// window of a scenario point, produces a FaultPlan. Timing is expressed
// as fractions of the traffic window so one profile name means the same
// thing across points with different durations:
//
//   none       empty plan (the control row of a resilience matrix)
//   link-down  first backbone link down at 30% of the window, restored
//              at 60% — the canonical FRER failover experiment
//   link-flap  3 x (5 ms down, 5 ms up) on the first backbone link,
//              starting at 30% — exercises repeated reroute/recovery
//   reboot     middle switch silently dead for 20 ms at 30%
//   gm-loss    serving grandmaster dies at 30%; BMCA re-elects after a
//              20 ms detection delay — sync excursion study
//   corrupt    bit-error rate 1e-6 on the first backbone link from 30%
//              to 70% — FCS-drop loss without topology change
//   random     3 seeded stochastic backbone outages (5-15 ms) drawn in
//              [20%, 80%] of the window
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "fault/plan.hpp"
#include "topo/topology.hpp"

namespace tsn::fault {

/// Every known profile name, in the order documented above.
[[nodiscard]] const std::vector<std::string>& profile_names();

[[nodiscard]] bool is_profile(std::string_view name);

/// Builds the plan for `name`. Throws tsn::Error for an unknown profile
/// or a topology the profile cannot target (e.g. no backbone link).
[[nodiscard]] FaultPlan profile_plan(std::string_view name,
                                     const topo::Topology& topology,
                                     Duration traffic_window);

}  // namespace tsn::fault
