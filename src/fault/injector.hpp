// FaultInjector — executes an expanded fault schedule through the
// event kernel.
//
// The injector is deliberately dumb: expand() already lowered the plan
// into atomic, time-sorted actions, so arming is one schedule_at() per
// action and every application is a single virtual call on the
// FaultSurface. netsim::Network implements FaultSurface; the interface
// exists so tsn_fault never depends on tsn_netsim (netsim links fault,
// not the other way around) and so unit tests can record applications
// against a mock surface.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "event/simulator.hpp"
#include "fault/plan.hpp"

namespace tsn::telemetry {
class MetricsRegistry;
}  // namespace tsn::telemetry

namespace tsn::fault {

class RecoveryTracker;

/// What a network must expose for faults to be injected into it.
class FaultSurface {
 public:
  virtual ~FaultSurface() = default;

  virtual void set_link_state(topo::LinkId link, bool up) = 0;
  /// Per-bit error probability; 0 restores a clean link.
  virtual void set_link_corruption(topo::LinkId link, double bit_error_rate) = 0;
  /// A down switch silently drops every frame it would receive or send.
  virtual void set_switch_state(topo::NodeId node, bool up) = 0;
  /// Kills the serving gPTP grandmaster; slaves hold over on their last
  /// discipline until rebuild_sync_tree() re-runs the BMCA.
  virtual void fail_grandmaster() = 0;
  virtual void rebuild_sync_tree() = 0;
};

class FaultInjector {
 public:
  /// `surface` must outlive the injector; `tracker` may be null (no
  /// recovery bookkeeping, e.g. pure corruption studies).
  FaultInjector(event::Simulator& sim, FaultSurface& surface,
                RecoveryTracker* tracker);

  /// Schedules every action of `schedule` at `base + action.at`.
  /// `base` (traffic start) must not be in the simulator's past.
  void arm(std::vector<FaultAction> schedule, TimePoint base);

  [[nodiscard]] std::uint64_t actions_applied() const { return applied_; }
  [[nodiscard]] const std::vector<FaultAction>& schedule() const { return schedule_; }

  /// Exports "tsn.fault.*" series: actions armed/applied and a per-kind
  /// breakdown.
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  void apply(const FaultAction& action);

  event::Simulator& sim_;
  FaultSurface& surface_;
  RecoveryTracker* tracker_;
  std::vector<FaultAction> schedule_;
  std::uint64_t applied_ = 0;
};

}  // namespace tsn::fault
