#include "fault/profiles.hpp"

#include "common/error.hpp"

namespace tsn::fault {
namespace {

Duration fraction(Duration window, int percent) {
  return Duration(window.ns() * percent / 100);
}

topo::LinkId victim_link(const topo::Topology& topology, std::string_view name) {
  const std::vector<topo::LinkId> pool = backbone_links(topology);
  require(!pool.empty(), "fault profile '" + std::string(name) +
                             "': topology has no switch-to-switch link");
  return pool.front();
}

topo::NodeId victim_switch(const topo::Topology& topology, std::string_view name) {
  const std::vector<topo::NodeId> switches = topology.switches();
  require(!switches.empty(), "fault profile '" + std::string(name) +
                                 "': topology has no switch");
  return switches[switches.size() / 2];
}

}  // namespace

const std::vector<std::string>& profile_names() {
  static const std::vector<std::string> kNames = {
      "none", "link-down", "link-flap", "reboot", "gm-loss", "corrupt", "random",
  };
  return kNames;
}

bool is_profile(std::string_view name) {
  for (const std::string& known : profile_names()) {
    if (known == name) return true;
  }
  return false;
}

FaultPlan profile_plan(std::string_view name, const topo::Topology& topology,
                       Duration traffic_window) {
  require(traffic_window > Duration::zero(),
          "fault profile: traffic window must be positive");
  FaultPlan plan;
  if (name == "none") return plan;
  if (name == "link-down") {
    FaultEvent event;
    event.kind = FaultKind::kLinkDown;
    event.link = victim_link(topology, name);
    event.at = fraction(traffic_window, 30);
    event.down_for = fraction(traffic_window, 30);
    plan.scheduled.push_back(event);
    return plan;
  }
  if (name == "link-flap") {
    FaultEvent event;
    event.kind = FaultKind::kLinkFlap;
    event.link = victim_link(topology, name);
    event.at = fraction(traffic_window, 30);
    event.down_for = milliseconds(5);
    event.up_for = milliseconds(5);
    event.flaps = 3;
    plan.scheduled.push_back(event);
    return plan;
  }
  if (name == "reboot") {
    FaultEvent event;
    event.kind = FaultKind::kSwitchReboot;
    event.node = victim_switch(topology, name);
    event.at = fraction(traffic_window, 30);
    event.down_for = milliseconds(20);
    plan.scheduled.push_back(event);
    return plan;
  }
  if (name == "gm-loss") {
    FaultEvent event;
    event.kind = FaultKind::kGrandmasterLoss;
    event.at = fraction(traffic_window, 30);
    event.down_for = milliseconds(20);  // BMCA detection + re-election delay
    plan.scheduled.push_back(event);
    return plan;
  }
  if (name == "corrupt") {
    FaultEvent event;
    event.kind = FaultKind::kLinkCorruption;
    event.link = victim_link(topology, name);
    event.at = fraction(traffic_window, 30);
    event.down_for = fraction(traffic_window, 40);
    event.bit_error_rate = 1e-6;
    plan.scheduled.push_back(event);
    return plan;
  }
  if (name == "random") {
    plan.stochastic.count = 3;
    plan.stochastic.window_start = fraction(traffic_window, 20);
    plan.stochastic.window_end = fraction(traffic_window, 80);
    plan.stochastic.min_down = milliseconds(5);
    plan.stochastic.max_down = milliseconds(15);
    return plan;
  }
  throw Error("fault profile: unknown profile '" + std::string(name) +
              "' (known: none, link-down, link-flap, reboot, gm-loss, corrupt, random)");
}

}  // namespace tsn::fault
