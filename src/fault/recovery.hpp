// Per-flow recovery instrumentation for fault campaigns.
//
// A RecoveryTracker observes every logical injection and every delivery
// (post-FRER-elimination) of the flows it tracks, plus the instants at
// which dataplane faults strike. From those it derives the metrics that
// matter for resilience evaluation:
//
//   recovery time        for each fault, the gap until the flow's next
//                        delivery — how long the listener was starved
//   frames lost in failover
//                        injections at/after the first fault that never
//                        arrived (zero when a redundant path survived)
//   duplicate deliveries FRER elimination escapes: the same (flow, seq)
//                        delivered twice (zero means 802.1CB recovery
//                        is doing its job)
//   max delivery gap     worst inter-delivery spacing, fault or not
//
// The tracker is pure bookkeeping driven by simulator callbacks — it
// performs no draws and schedules no events, so attaching it never
// perturbs the simulation it measures.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "net/packet.hpp"

namespace tsn::telemetry {
class MetricsRegistry;
}  // namespace tsn::telemetry

namespace tsn::fault {

class RecoveryTracker {
 public:
  struct FlowRecovery {
    Duration period{};
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    /// Deliveries of a (flow, sequence) pair already delivered — FRER
    /// duplicate-elimination escapes.
    std::uint64_t duplicates = 0;
    /// Injections at/after the first dataplane fault that never arrived.
    /// Resolved by finalize().
    std::uint64_t lost_in_failover = 0;
    /// Worst starvation across faults: max over faults of (first
    /// delivery after the fault - fault time). A fault the flow never
    /// recovers from counts as (run end - fault time).
    Duration worst_recovery{};
    /// Worst spacing between consecutive deliveries.
    Duration max_gap{};

    // -- internal bookkeeping (public for the tracker's own use) --------
    TimePoint last_delivery{};
    bool saw_delivery = false;
    std::map<std::uint64_t, TimePoint> pending;  // sequence -> injected at
    std::vector<TimePoint> open_faults;          // faults awaiting a delivery
  };

  /// Registers a flow to observe. Hooks for untracked flows are ignored.
  void track_flow(net::FlowId flow, Duration period);

  /// Wire these into the NIC injection/delivery paths.
  void on_injection(net::FlowId flow, std::uint64_t sequence, TimePoint at);
  void on_delivery(net::FlowId flow, std::uint64_t sequence, TimePoint at);

  /// Marks a dataplane service fault (link/switch down) at `at`. Every
  /// tracked flow's next delivery closes the recovery interval.
  void note_service_fault(TimePoint at);

  /// Resolves still-open faults (never recovered: charged until `end`)
  /// and counts frames lost in failover. Call once, after the drain.
  void finalize(TimePoint end);

  [[nodiscard]] bool tracking() const { return !flows_.empty(); }
  [[nodiscard]] std::size_t fault_count() const { return fault_times_.size(); }
  /// Ascending flow ids.
  [[nodiscard]] std::vector<net::FlowId> flow_ids() const;
  [[nodiscard]] const FlowRecovery& flow(net::FlowId id) const;

  // -- aggregates over all tracked flows ---------------------------------
  [[nodiscard]] Duration worst_recovery() const;
  [[nodiscard]] std::uint64_t total_lost_in_failover() const;
  [[nodiscard]] std::uint64_t total_duplicates() const;

  /// Exports "tsn.fault.recovery.*" series: per-flow recovery time,
  /// frames lost, duplicates, plus the aggregates.
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  std::map<net::FlowId, FlowRecovery> flows_;
  std::vector<TimePoint> fault_times_;
  bool finalized_ = false;
};

}  // namespace tsn::fault
