// tsn::fault — declarative, seeded fault plans.
//
// A FaultPlan describes WHAT goes wrong and WHEN, independent of any
// simulator state: scheduled events (link-down at t=100ms for 20ms) and
// stochastic specs (3 link-downs drawn uniformly inside a window from a
// named RNG stream). expand() lowers a plan into a flat, time-sorted
// list of atomic FaultActions — a pure function of (plan, topology,
// seed), so the schedule a campaign worker executes is byte-identical
// whether the campaign runs with 1 job or 16 (the same determinism
// contract the event kernel gives traffic).
//
// Times in a plan are RELATIVE TO TRAFFIC START: warm-up length is a
// runner concern, and anchoring faults to the traffic window keeps one
// plan meaningful across scenario points with different warm-ups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "topo/topology.hpp"

namespace tsn::fault {

/// Declarative event kinds (what the user writes down).
enum class FaultKind : std::uint8_t {
  kLinkDown,         // take a link down, optionally restore after down_for
  kLinkFlap,         // `flaps` x (down_for down, up_for up) cycles
  kSwitchReboot,     // switch silently drops everything for down_for
  kGrandmasterLoss,  // kill the serving gPTP grandmaster; re-elect after down_for
  kLinkCorruption,   // per-link bit-error frame corruption for down_for
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One scheduled entry of a FaultPlan.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDown;
  /// Offset from traffic start.
  Duration at{};

  /// Target link (kLinkDown / kLinkFlap / kLinkCorruption).
  topo::LinkId link = 0;
  /// Target switch node (kSwitchReboot).
  topo::NodeId node = topo::kInvalidNode;

  /// Outage / corruption-window length. Duration::zero() on kLinkDown
  /// means "down for the rest of the run" (no restore is emitted).
  Duration down_for{};
  /// kLinkFlap only: up-time between consecutive downs and cycle count.
  Duration up_for{};
  std::uint32_t flaps = 1;

  /// kLinkCorruption only: per-bit error probability; a frame is dropped
  /// (FCS failure at the receiver) with 1 - (1-ber)^wire_bits.
  double bit_error_rate = 0.0;
};

/// Stochastic-but-deterministic link outages: `count` down/restore pairs
/// with start times drawn uniformly in [window_start, window_end) and
/// outage lengths uniform in [min_down, max_down], targets drawn from
/// `candidate_links` (or every switch-switch link when empty). All draws
/// come from the "fault" RNG stream of the experiment seed.
struct StochasticLinkFaults {
  std::uint32_t count = 0;
  Duration window_start{};
  Duration window_end{};
  Duration min_down = milliseconds(5);
  Duration max_down = milliseconds(20);
  std::vector<topo::LinkId> candidate_links;
};

/// The full declarative plan for one scenario run.
struct FaultPlan {
  std::vector<FaultEvent> scheduled;
  StochasticLinkFaults stochastic;

  [[nodiscard]] bool empty() const {
    return scheduled.empty() && stochastic.count == 0;
  }
};

/// Atomic actions expand() lowers a plan into — exactly what the
/// injector executes, one simulator event each.
enum class ActionKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
  kGmLoss,       // fail the serving grandmaster (slaves hold over)
  kGmRebuild,    // re-run BMCA and rebuild the sync spanning tree
  kCorruptStart, // enable bit-error corruption on a link
  kCorruptStop,
};

[[nodiscard]] const char* action_kind_name(ActionKind kind);

struct FaultAction {
  Duration at{};  // relative to traffic start
  ActionKind kind = ActionKind::kLinkDown;
  topo::LinkId link = 0;
  topo::NodeId node = topo::kInvalidNode;
  double bit_error_rate = 0.0;
};

/// Lowers `plan` into a time-sorted action schedule. Pure: the result
/// depends only on (plan, topology, seed) — stochastic draws use a
/// dedicated Rng seeded from `seed`, never shared simulator state.
/// Validates targets against `topology` (throws tsn::Error on a link id
/// out of range, a reboot target that is not a switch-attached node, or
/// an inverted stochastic window).
[[nodiscard]] std::vector<FaultAction> expand(const FaultPlan& plan,
                                              const topo::Topology& topology,
                                              std::uint64_t seed);

/// Byte-stable text rendering of an action schedule ("+100.000ms
/// link-down link[3]" lines) — what determinism tests compare and
/// `tsnb campaign` manifests embed.
[[nodiscard]] std::string render_schedule(const std::vector<FaultAction>& schedule);

/// Every switch-to-switch link in `topology`, ascending id — the default
/// stochastic candidate set and the profile victim pool.
[[nodiscard]] std::vector<topo::LinkId> backbone_links(const topo::Topology& topology);

}  // namespace tsn::fault
