#include "fault/injector.hpp"

#include <array>

#include "fault/recovery.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::fault {

FaultInjector::FaultInjector(event::Simulator& sim, FaultSurface& surface,
                             RecoveryTracker* tracker)
    : sim_(sim), surface_(surface), tracker_(tracker) {}

void FaultInjector::arm(std::vector<FaultAction> schedule, TimePoint base) {
  schedule_ = std::move(schedule);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    sim_.schedule_at(base + schedule_[i].at,
                     [this, i] { apply(schedule_[i]); });
  }
}

void FaultInjector::apply(const FaultAction& action) {
  ++applied_;
  switch (action.kind) {
    case ActionKind::kLinkDown:
      surface_.set_link_state(action.link, false);
      if (tracker_ != nullptr) tracker_->note_service_fault(sim_.now());
      break;
    case ActionKind::kLinkUp:
      surface_.set_link_state(action.link, true);
      break;
    case ActionKind::kSwitchDown:
      surface_.set_switch_state(action.node, false);
      if (tracker_ != nullptr) tracker_->note_service_fault(sim_.now());
      break;
    case ActionKind::kSwitchUp:
      surface_.set_switch_state(action.node, true);
      break;
    case ActionKind::kGmLoss:
      // Sync degradation, not a dataplane outage: excursions show up in
      // sync-error series, so no service fault is recorded here.
      surface_.fail_grandmaster();
      break;
    case ActionKind::kGmRebuild:
      surface_.rebuild_sync_tree();
      break;
    case ActionKind::kCorruptStart:
      surface_.set_link_corruption(action.link, action.bit_error_rate);
      break;
    case ActionKind::kCorruptStop:
      surface_.set_link_corruption(action.link, 0.0);
      break;
  }
}

void FaultInjector::collect_metrics(telemetry::MetricsRegistry& registry) const {
  registry
      .counter("tsn.fault.actions_armed", {},
               "atomic fault actions in the expanded schedule")
      .add(schedule_.size());
  registry
      .counter("tsn.fault.actions_applied", {},
               "fault actions executed so far")
      .add(applied_);
  // Per-kind breakdown, in enum order so label sets are stable.
  std::array<std::uint64_t, 8> by_kind{};
  for (const FaultAction& action : schedule_) {
    by_kind[static_cast<std::size_t>(action.kind)] += 1;
  }
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    registry
        .counter("tsn.fault.actions", {{"kind", action_kind_name(static_cast<ActionKind>(k))}},
                 "fault actions by kind")
        .add(by_kind[k]);
  }
}

}  // namespace tsn::fault
