#include "fault/plan.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tsn::fault {
namespace {

void require_link(const topo::Topology& topology, topo::LinkId link,
                  const char* what) {
  require(link < topology.link_count(), std::string(what) + ": link id out of range");
}

void require_switch(const topo::Topology& topology, topo::NodeId node,
                    const char* what) {
  require(node < topology.node_count(),
          std::string(what) + ": node id out of range");
  require(topology.node(node).kind == topo::NodeKind::kSwitch,
          std::string(what) + ": reboot target is not a switch");
}

void push(std::vector<FaultAction>& out, Duration at, ActionKind kind,
          topo::LinkId link = 0, topo::NodeId node = topo::kInvalidNode,
          double ber = 0.0) {
  FaultAction action;
  action.at = at;
  action.kind = kind;
  action.link = link;
  action.node = node;
  action.bit_error_rate = ber;
  out.push_back(action);
}

void expand_event(const FaultEvent& event, const topo::Topology& topology,
                  std::vector<FaultAction>& out) {
  switch (event.kind) {
    case FaultKind::kLinkDown:
      require_link(topology, event.link, "fault: link-down");
      push(out, event.at, ActionKind::kLinkDown, event.link);
      if (event.down_for > Duration::zero()) {
        push(out, event.at + event.down_for, ActionKind::kLinkUp, event.link);
      }
      break;
    case FaultKind::kLinkFlap: {
      require_link(topology, event.link, "fault: link-flap");
      require(event.flaps > 0, "fault: link-flap needs at least one cycle");
      require(event.down_for > Duration::zero(),
              "fault: link-flap needs a positive down time");
      require(event.up_for > Duration::zero(),
              "fault: link-flap needs a positive up time");
      Duration t = event.at;
      for (std::uint32_t i = 0; i < event.flaps; ++i) {
        push(out, t, ActionKind::kLinkDown, event.link);
        push(out, t + event.down_for, ActionKind::kLinkUp, event.link);
        t += event.down_for + event.up_for;
      }
      break;
    }
    case FaultKind::kSwitchReboot:
      require_switch(topology, event.node, "fault: switch-reboot");
      require(event.down_for > Duration::zero(),
              "fault: switch-reboot needs a positive down time");
      push(out, event.at, ActionKind::kSwitchDown, 0, event.node);
      push(out, event.at + event.down_for, ActionKind::kSwitchUp, 0, event.node);
      break;
    case FaultKind::kGrandmasterLoss:
      require(event.down_for > Duration::zero(),
              "fault: grandmaster-loss needs a positive detection delay");
      push(out, event.at, ActionKind::kGmLoss);
      push(out, event.at + event.down_for, ActionKind::kGmRebuild);
      break;
    case FaultKind::kLinkCorruption:
      require_link(topology, event.link, "fault: link-corruption");
      require(event.bit_error_rate > 0.0 && event.bit_error_rate < 1.0,
              "fault: bit error rate must be in (0, 1)");
      require(event.down_for > Duration::zero(),
              "fault: link-corruption needs a positive window");
      push(out, event.at, ActionKind::kCorruptStart, event.link,
           topo::kInvalidNode, event.bit_error_rate);
      push(out, event.at + event.down_for, ActionKind::kCorruptStop, event.link);
      break;
  }
}

void expand_stochastic(const StochasticLinkFaults& spec,
                       const topo::Topology& topology, std::uint64_t seed,
                       std::vector<FaultAction>& out) {
  if (spec.count == 0) return;
  require(spec.window_end > spec.window_start,
          "fault: stochastic window must have positive length");
  require(spec.max_down >= spec.min_down && spec.min_down > Duration::zero(),
          "fault: stochastic outage range is inverted or non-positive");
  std::vector<topo::LinkId> pool = spec.candidate_links;
  if (pool.empty()) pool = backbone_links(topology);
  require(!pool.empty(), "fault: no candidate links for stochastic outages");
  for (const topo::LinkId link : pool) {
    require_link(topology, link, "fault: stochastic candidate");
  }
  // Dedicated stream: draws here can never perturb traffic (or any other
  // subsystem) because no Rng is shared across streams.
  Rng rng = make_stream(seed, "fault");
  for (std::uint32_t i = 0; i < spec.count; ++i) {
    const auto window = static_cast<std::uint64_t>(
        (spec.window_end - spec.window_start).ns());
    const Duration start =
        spec.window_start + Duration(static_cast<std::int64_t>(rng.uniform(0, window - 1)));
    const auto span = static_cast<std::uint64_t>((spec.max_down - spec.min_down).ns());
    const Duration down =
        spec.min_down + Duration(static_cast<std::int64_t>(span == 0 ? 0 : rng.uniform(0, span)));
    const topo::LinkId link = pool[rng.index(pool.size())];
    push(out, start, ActionKind::kLinkDown, link);
    push(out, start + down, ActionKind::kLinkUp, link);
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kSwitchReboot: return "switch-reboot";
    case FaultKind::kGrandmasterLoss: return "grandmaster-loss";
    case FaultKind::kLinkCorruption: return "link-corruption";
  }
  return "unknown";
}

const char* action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kLinkDown: return "link-down";
    case ActionKind::kLinkUp: return "link-up";
    case ActionKind::kSwitchDown: return "switch-down";
    case ActionKind::kSwitchUp: return "switch-up";
    case ActionKind::kGmLoss: return "gm-loss";
    case ActionKind::kGmRebuild: return "gm-rebuild";
    case ActionKind::kCorruptStart: return "corrupt-start";
    case ActionKind::kCorruptStop: return "corrupt-stop";
  }
  return "unknown";
}

std::vector<FaultAction> expand(const FaultPlan& plan,
                                const topo::Topology& topology,
                                std::uint64_t seed) {
  std::vector<FaultAction> out;
  for (const FaultEvent& event : plan.scheduled) {
    require(event.at >= Duration::zero(), "fault: negative event offset");
    expand_event(event, topology, out);
  }
  expand_stochastic(plan.stochastic, topology, seed, out);
  // Total order: (time, kind, link, node). Down sorts before up at equal
  // times because of enum order, which keeps e.g. a zero-gap flap cycle
  // from cancelling itself out.
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     if (a.link != b.link) return a.link < b.link;
                     return a.node < b.node;
                   });
  return out;
}

std::string render_schedule(const std::vector<FaultAction>& schedule) {
  std::string out;
  char line[160];
  for (const FaultAction& action : schedule) {
    const std::int64_t ns = action.at.ns();
    std::snprintf(line, sizeof(line), "+%" PRId64 ".%06" PRId64 "ms %s",
                  ns / 1'000'000, ns % 1'000'000, action_kind_name(action.kind));
    out += line;
    switch (action.kind) {
      case ActionKind::kLinkDown:
      case ActionKind::kLinkUp:
      case ActionKind::kCorruptStop:
        std::snprintf(line, sizeof(line), " link[%u]", action.link);
        out += line;
        break;
      case ActionKind::kCorruptStart:
        std::snprintf(line, sizeof(line), " link[%u] ber=%.3g", action.link,
                      action.bit_error_rate);
        out += line;
        break;
      case ActionKind::kSwitchDown:
      case ActionKind::kSwitchUp:
        std::snprintf(line, sizeof(line), " switch[%u]", action.node);
        out += line;
        break;
      case ActionKind::kGmLoss:
      case ActionKind::kGmRebuild:
        break;
    }
    out += '\n';
  }
  return out;
}

std::vector<topo::LinkId> backbone_links(const topo::Topology& topology) {
  std::vector<topo::LinkId> out;
  for (const topo::Link& link : topology.links()) {
    if (topology.node(link.node_a).kind == topo::NodeKind::kSwitch &&
        topology.node(link.node_b).kind == topo::NodeKind::kSwitch) {
      out.push_back(link.id);
    }
  }
  return out;
}

}  // namespace tsn::fault
