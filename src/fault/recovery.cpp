#include "fault/recovery.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::fault {

void RecoveryTracker::track_flow(net::FlowId flow, Duration period) {
  require(!finalized_, "RecoveryTracker: track_flow after finalize");
  FlowRecovery& record = flows_[flow];
  record.period = period;
}

void RecoveryTracker::on_injection(net::FlowId flow, std::uint64_t sequence,
                                   TimePoint at) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowRecovery& record = it->second;
  ++record.injected;
  record.pending.emplace(sequence, at);
}

void RecoveryTracker::on_delivery(net::FlowId flow, std::uint64_t sequence,
                                  TimePoint at) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowRecovery& record = it->second;
  if (record.pending.erase(sequence) == 0) {
    // Already delivered once: a duplicate that slipped past elimination.
    ++record.duplicates;
    return;
  }
  ++record.delivered;
  if (record.saw_delivery && at > record.last_delivery) {
    record.max_gap = std::max(record.max_gap, at - record.last_delivery);
  }
  record.saw_delivery = true;
  record.last_delivery = at;
  if (!record.open_faults.empty()) {
    // This delivery closes every fault interval still awaiting one.
    for (const TimePoint fault_at : record.open_faults) {
      if (at >= fault_at) {
        record.worst_recovery = std::max(record.worst_recovery, at - fault_at);
      }
    }
    record.open_faults.clear();
  }
}

void RecoveryTracker::note_service_fault(TimePoint at) {
  require(!finalized_, "RecoveryTracker: fault after finalize");
  fault_times_.push_back(at);
  for (auto& [id, record] : flows_) {
    (void)id;
    record.open_faults.push_back(at);
  }
}

void RecoveryTracker::finalize(TimePoint end) {
  if (finalized_) return;
  finalized_ = true;
  const TimePoint first_fault =
      fault_times_.empty() ? TimePoint::max() : fault_times_.front();
  for (auto& [id, record] : flows_) {
    (void)id;
    for (const TimePoint fault_at : record.open_faults) {
      if (end >= fault_at) {
        record.worst_recovery = std::max(record.worst_recovery, end - fault_at);
      }
    }
    record.open_faults.clear();
    for (const auto& [sequence, injected_at] : record.pending) {
      (void)sequence;
      if (injected_at >= first_fault) ++record.lost_in_failover;
    }
  }
}

std::vector<net::FlowId> RecoveryTracker::flow_ids() const {
  std::vector<net::FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, record] : flows_) {
    (void)record;
    ids.push_back(id);
  }
  return ids;
}

const RecoveryTracker::FlowRecovery& RecoveryTracker::flow(net::FlowId id) const {
  const auto it = flows_.find(id);
  require(it != flows_.end(), "RecoveryTracker: unknown flow");
  return it->second;
}

Duration RecoveryTracker::worst_recovery() const {
  Duration worst{};
  for (const auto& [id, record] : flows_) {
    (void)id;
    worst = std::max(worst, record.worst_recovery);
  }
  return worst;
}

std::uint64_t RecoveryTracker::total_lost_in_failover() const {
  std::uint64_t total = 0;
  for (const auto& [id, record] : flows_) {
    (void)id;
    total += record.lost_in_failover;
  }
  return total;
}

std::uint64_t RecoveryTracker::total_duplicates() const {
  std::uint64_t total = 0;
  for (const auto& [id, record] : flows_) {
    (void)id;
    total += record.duplicates;
  }
  return total;
}

void RecoveryTracker::collect_metrics(telemetry::MetricsRegistry& registry) const {
  for (const auto& [id, record] : flows_) {
    const telemetry::Labels labels{{"flow", std::to_string(id)}};
    registry
        .gauge("tsn.fault.recovery.worst_ms", labels,
               "worst fault-to-next-delivery gap of the flow")
        .set(record.worst_recovery.ms());
    registry
        .counter("tsn.fault.recovery.lost_in_failover", labels,
                 "frames injected after the first fault that never arrived")
        .add(record.lost_in_failover);
    registry
        .counter("tsn.fault.recovery.duplicates", labels,
                 "deliveries that escaped FRER duplicate elimination")
        .add(record.duplicates);
    registry
        .gauge("tsn.fault.recovery.max_gap_ms", labels,
               "worst inter-delivery spacing of the flow")
        .set(record.max_gap.ms());
  }
  registry
      .counter("tsn.fault.service_faults", {},
               "dataplane faults (link/switch outages) injected")
      .add(fault_times_.size());
  registry
      .gauge("tsn.fault.worst_recovery_ms", {},
             "worst recovery time over all tracked flows")
      .set(worst_recovery().ms());
  registry
      .counter("tsn.fault.frames_lost_failover", {},
               "frames lost in failover over all tracked flows")
      .add(total_lost_in_failover());
  registry
      .counter("tsn.fault.duplicate_escapes", {},
               "FRER duplicate-elimination escapes over all tracked flows")
      .add(total_duplicates());
}

}  // namespace tsn::fault
