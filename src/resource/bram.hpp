// Xilinx 7-series block RAM model.
//
// The paper reports on-chip memory in "BRAMs" (Kb). Its accounting — which
// this model reproduces exactly for every row of Tables I and III — uses
// three policies:
//
//  1. Best-fit tiling for the large shared tables (switch / classification /
//     meter): choose the legal RAMB18/RAMB36 aspect ratio minimizing total
//     Kb for a depth x width memory.
//  2. One primitive minimum for small per-port / per-queue memories (gate
//     tables, CBS tables, metadata FIFOs): anything that fits in 18 Kb
//     costs one RAMB18, since the hardware cannot allocate less than one
//     block per physically independent memory.
//  3. Raw word-granular accounting for the packet buffer pool: the FAST
//     datapath word is 128 data bits + 7 sideband bits = 135 b, so one
//     2048 B buffer costs 128 words x 135 b = 16.875 Kb.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/units.hpp"

namespace tsn::resource {

enum class BramPrimitive : std::uint8_t { kRamb18, kRamb36 };

[[nodiscard]] constexpr BitCount primitive_capacity(BramPrimitive p) {
  return BitCount::from_kilobits(p == BramPrimitive::kRamb18 ? 18 : 36);
}

/// One legal (depth x width) configuration of a BRAM primitive.
struct BramShape {
  BramPrimitive primitive = BramPrimitive::kRamb18;
  std::int64_t depth = 0;
  std::int64_t width = 0;

  [[nodiscard]] BitCount capacity() const { return primitive_capacity(primitive); }
  [[nodiscard]] std::string to_string() const;
};

/// All legal RAMB18E1 / RAMB36E1 port aspect ratios (UG473), widest mode is
/// simple-dual-port (x36 / x72).
[[nodiscard]] std::span<const BramShape> legal_shapes();

/// Result of mapping a logical memory onto BRAM primitives.
struct Allocation {
  std::int64_t ramb18 = 0;
  std::int64_t ramb36 = 0;
  BitCount cost;              // what the report charges (block Kb, or raw bits for pools)
  BramShape shape;            // chosen shape (block policies only)
  std::int64_t tiles_wide = 0;
  std::int64_t tiles_deep = 0;

  /// Equivalent RAMB18 count (a RAMB36 splits into two RAMB18).
  [[nodiscard]] std::int64_t ramb18_equivalent() const { return ramb18 + 2 * ramb36; }
};

/// Policy 1: best-fit tiling of a `depth x width` table over legal shapes.
/// Minimizes total Kb; ties broken toward fewer primitives.
[[nodiscard]] Allocation allocate_table(std::int64_t depth, std::int64_t width);

/// Policy 2: a small independent memory (per-port table, per-queue FIFO).
/// Costs one RAMB18 when depth*width fits in 18 Kb (content folding),
/// otherwise falls back to best-fit tiling.
[[nodiscard]] Allocation allocate_instance(std::int64_t depth, std::int64_t width);

/// Policy 3: raw word pool of `words` entries of `width` bits; cost is the
/// exact bit volume (the paper's packet-buffer accounting). The primitive
/// counts are informational (ceil over RAMB36 capacity).
[[nodiscard]] Allocation allocate_raw_pool(std::int64_t words, std::int64_t width);

/// FAST datapath word layout used by the packet buffer pool.
inline constexpr std::int64_t kBufferWordDataBits = 128;
inline constexpr std::int64_t kBufferWordSidebandBits = 7;
inline constexpr std::int64_t kBufferWordBits = kBufferWordDataBits + kBufferWordSidebandBits;

/// Cost of one packet buffer of `buffer_bytes` payload capacity:
/// ceil(buffer_bytes*8 / 128) words x 135 b. 2048 B -> 16.875 Kb.
[[nodiscard]] Allocation allocate_packet_buffers(std::int64_t buffer_count,
                                                 std::int64_t buffer_bytes);

/// An FPGA part's BRAM inventory, for utilization reporting.
struct DevicePart {
  std::string name;
  std::int64_t ramb36_total = 0;

  [[nodiscard]] std::int64_t ramb18_total() const { return 2 * ramb36_total; }
  [[nodiscard]] BitCount total_bram() const {
    return BitCount::from_kilobits(36 * ramb36_total);
  }
};

/// Xilinx Zynq-7020 (the paper's prototyping SoC): 140 RAMB36 = 4.9 Mb.
[[nodiscard]] DevicePart zynq7020();

}  // namespace tsn::resource
