#include "resource/report.hpp"

#include "common/string_util.hpp"
#include "common/text_table.hpp"

namespace tsn::resource {

BitCount ResourceReport::total() const {
  BitCount sum;
  for (const ComponentUsage& c : components_) sum += c.allocation.cost;
  return sum;
}

std::int64_t ResourceReport::total_ramb18_equivalent() const {
  std::int64_t sum = 0;
  for (const ComponentUsage& c : components_) sum += c.allocation.ramb18_equivalent();
  return sum;
}

double ResourceReport::reduction_vs(const ResourceReport& baseline) const {
  const double base = static_cast<double>(baseline.total().bits());
  if (base <= 0.0) return 0.0;
  return 1.0 - static_cast<double>(total().bits()) / base;
}

double ResourceReport::utilization_on(const DevicePart& part) const {
  const double capacity = static_cast<double>(part.total_bram().bits());
  if (capacity <= 0.0) return 0.0;
  return static_cast<double>(total().bits()) / capacity;
}

std::string ResourceReport::render(const std::optional<ResourceReport>& baseline) const {
  TextTable table;
  table.set_header({"Resource Type", "Bit/Byte Width", "Parameters", "BRAMs"});
  for (const ComponentUsage& c : components_) {
    table.add_row({c.name, std::to_string(c.entry_width_bits) + "b", c.parameters,
                   format_trimmed(c.allocation.cost.kilobits(), 3) + "Kb"});
  }
  table.add_separator();
  std::string total_cell = format_trimmed(total().kilobits(), 3) + "Kb";
  if (baseline) {
    const double red = reduction_vs(*baseline);
    total_cell += " (-" + format_percent(red) + ")";
  }
  table.add_row({"Total", "", "", total_cell});
  return table.render();
}

}  // namespace tsn::resource
