// Resource report: the per-component BRAM usage summary TSN-Builder emits
// at synthesis time (the data behind the paper's Tables I and III).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "resource/bram.hpp"

namespace tsn::resource {

/// One row of the report: a resource type and its BRAM allocation.
struct ComponentUsage {
  std::string name;        // e.g. "Switch Tbl"
  std::string parameters;  // e.g. "16K, 0" — the API arguments
  std::int64_t entry_width_bits = 0;
  Allocation allocation;
};

class ResourceReport {
 public:
  void add(ComponentUsage usage) { components_.push_back(std::move(usage)); }

  [[nodiscard]] const std::vector<ComponentUsage>& components() const { return components_; }

  [[nodiscard]] BitCount total() const;
  [[nodiscard]] std::int64_t total_ramb18_equivalent() const;

  /// Fraction saved relative to `baseline` (0.8053 for the ring scenario).
  [[nodiscard]] double reduction_vs(const ResourceReport& baseline) const;

  /// Utilization of a device's BRAM inventory, in [0, 1+).
  [[nodiscard]] double utilization_on(const DevicePart& part) const;

  /// Renders a Table III-style text table. When `baseline` is given, the
  /// total row is annotated with the percentage reduction.
  [[nodiscard]] std::string render(
      const std::optional<ResourceReport>& baseline = std::nullopt) const;

 private:
  std::vector<ComponentUsage> components_;
};

}  // namespace tsn::resource
