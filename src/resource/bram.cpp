#include "resource/bram.hpp"

#include <array>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace tsn::resource {
namespace {

constexpr std::array<BramShape, 13> kShapes = {{
    // RAMB18E1 (18 Kb), TDP up to x18, SDP x36.
    {BramPrimitive::kRamb18, 16384, 1},
    {BramPrimitive::kRamb18, 8192, 2},
    {BramPrimitive::kRamb18, 4096, 4},
    {BramPrimitive::kRamb18, 2048, 9},
    {BramPrimitive::kRamb18, 1024, 18},
    {BramPrimitive::kRamb18, 512, 36},
    // RAMB36E1 (36 Kb), TDP up to x36, SDP x72.
    {BramPrimitive::kRamb36, 32768, 1},
    {BramPrimitive::kRamb36, 16384, 2},
    {BramPrimitive::kRamb36, 8192, 4},
    {BramPrimitive::kRamb36, 4096, 9},
    {BramPrimitive::kRamb36, 2048, 18},
    {BramPrimitive::kRamb36, 1024, 36},
    {BramPrimitive::kRamb36, 512, 72},
}};

Allocation tile_with(const BramShape& shape, std::int64_t depth, std::int64_t width) {
  Allocation a;
  a.shape = shape;
  a.tiles_wide = ceil_div(width, shape.width);
  a.tiles_deep = ceil_div(depth, shape.depth);
  const std::int64_t count = a.tiles_wide * a.tiles_deep;
  if (shape.primitive == BramPrimitive::kRamb18) {
    a.ramb18 = count;
  } else {
    a.ramb36 = count;
  }
  a.cost = count * primitive_capacity(shape.primitive);
  return a;
}

}  // namespace

std::string BramShape::to_string() const {
  const char* prim = primitive == BramPrimitive::kRamb18 ? "RAMB18" : "RAMB36";
  return std::string(prim) + "(" + std::to_string(depth) + "x" + std::to_string(width) + ")";
}

std::span<const BramShape> legal_shapes() { return kShapes; }

Allocation allocate_table(std::int64_t depth, std::int64_t width) {
  require(depth > 0 && width > 0, "allocate_table: depth and width must be positive");
  bool found = false;
  Allocation best;
  for (const BramShape& shape : kShapes) {
    const Allocation candidate = tile_with(shape, depth, width);
    const bool better =
        !found || candidate.cost < best.cost ||
        (candidate.cost == best.cost &&
         candidate.ramb18 + candidate.ramb36 < best.ramb18 + best.ramb36);
    if (better) {
      best = candidate;
      found = true;
    }
  }
  return best;
}

Allocation allocate_instance(std::int64_t depth, std::int64_t width) {
  require(depth > 0 && width > 0, "allocate_instance: depth and width must be positive");
  const std::int64_t bits = depth * width;
  if (bits <= primitive_capacity(BramPrimitive::kRamb18).bits()) {
    Allocation a;
    a.ramb18 = 1;
    a.cost = primitive_capacity(BramPrimitive::kRamb18);
    // Report the narrowest RAMB18 shape that covers the folded contents.
    a.shape = BramShape{BramPrimitive::kRamb18, 1024, 18};
    a.tiles_wide = 1;
    a.tiles_deep = 1;
    return a;
  }
  return allocate_table(depth, width);
}

Allocation allocate_raw_pool(std::int64_t words, std::int64_t width) {
  require(words > 0 && width > 0, "allocate_raw_pool: words and width must be positive");
  Allocation a;
  a.cost = BitCount(words * width);
  a.ramb36 = ceil_div(a.cost.bits(), primitive_capacity(BramPrimitive::kRamb36).bits());
  a.shape = BramShape{BramPrimitive::kRamb36, 512, 72};
  a.tiles_wide = ceil_div(width, 72);
  a.tiles_deep = ceil_div(words, 512);
  return a;
}

Allocation allocate_packet_buffers(std::int64_t buffer_count, std::int64_t buffer_bytes) {
  require(buffer_count > 0 && buffer_bytes > 0,
          "allocate_packet_buffers: counts must be positive");
  const std::int64_t words_per_buffer = ceil_div(buffer_bytes * 8, kBufferWordDataBits);
  return allocate_raw_pool(buffer_count * words_per_buffer, kBufferWordBits);
}

DevicePart zynq7020() { return DevicePart{"xc7z020", 140}; }

}  // namespace tsn::resource
