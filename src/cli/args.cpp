#include "cli/args.hpp"

#include <cstdlib>

namespace tsn::cli {

void ArgParser::add_option(std::string name, std::string help, std::string default_value) {
  values_[name] = default_value;
  options_.emplace_back(std::move(name), Option{std::move(help), std::move(default_value), false});
}

void ArgParser::add_flag(std::string name, std::string help) {
  values_[name] = "false";
  options_.emplace_back(std::move(name), Option{std::move(help), "false", true});
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& [n, opt] : options_) {
    if (n == name) return &opt;
  }
  return nullptr;
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      error_ = "expected --option, got '" + arg + "'";
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const Option* opt = find(arg);
    if (opt == nullptr) {
      error_ = "unknown option --" + arg;
      return false;
    }
    if (opt->is_flag) {
      if (has_inline) {
        error_ = "--" + arg + " takes no value";
        return false;
      }
      values_[arg] = "true";
    } else if (has_inline) {
      values_[arg] = value;
    } else {
      if (i + 1 >= args.size()) {
        error_ = "--" + arg + " needs a value";
        return false;
      }
      values_[arg] = args[++i];
    }
    set_[arg] = true;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string() : it->second;
}

std::optional<std::int64_t> ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<double> ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

bool ArgParser::get_bool(const std::string& name) const { return get(name) == "true"; }

std::string ArgParser::usage() const {
  std::string out;
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (!opt.is_flag) {
      out += " <value>";
      if (!opt.default_value.empty()) out += " (default: " + opt.default_value + ")";
    }
    out += "\n      " + opt.help + "\n";
  }
  return out;
}

}  // namespace tsn::cli
