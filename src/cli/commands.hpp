// tsnb subcommands: plan / simulate / report.
//
// The CLI is the "rapid customization" workflow without writing C++:
// describe the application (topology, flows, slot) on the command line,
// get the planned resource parameters, the Table III-style BRAM report,
// and a simulated verification run.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace tsn::cli {

/// A usage-class mistake: unknown option values, out-of-range arguments,
/// missing required options. run_tsnb() maps these to exit code 2,
/// distinct from runtime failures (exit 1), so scripts can tell "fix the
/// command line" from "the run itself failed".
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Throws UsageError when `condition` is false.
inline void usage_require(bool condition, const std::string& message) {
  if (!condition) throw UsageError(message);
}

/// Entry point used by the tsnb binary and by tests.
/// argv-style: args[0] is the subcommand ("plan", "simulate", "report",
/// "help"). Output goes to `out` so tests can capture it.
///
/// Exit codes: 0 success; 1 runtime/simulation failure; 2 usage or
/// argument-parse error. `verify` additionally exits 1 when diagnostics
/// reach error severity (or warning severity under --strict).
int run_tsnb(const std::vector<std::string>& args, std::string& out);

}  // namespace tsn::cli
