// tsnb subcommands: plan / simulate / report.
//
// The CLI is the "rapid customization" workflow without writing C++:
// describe the application (topology, flows, slot) on the command line,
// get the planned resource parameters, the Table III-style BRAM report,
// and a simulated verification run.
#pragma once

#include <string>
#include <vector>

namespace tsn::cli {

/// Entry point used by the tsnb binary and by tests.
/// argv-style: args[0] is the subcommand ("plan", "simulate", "report",
/// "help"). Output goes to `out` so tests can capture it.
int run_tsnb(const std::vector<std::string>& args, std::string& out);

}  // namespace tsn::cli
