#include "cli/bench.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "builder/presets.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "event/simulator.hpp"
#include "netsim/scenario.hpp"
#include "telemetry/manifest.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"

namespace tsn::cli {
namespace {

using namespace tsn::literals;

// The bench harness is the one place in src/ whose *product* is host
// timing: it measures how fast the kernel executes simulated work. The
// measured values flow only into BENCH_kernel.json / the printed table,
// never into simulation state, so determinism is unaffected.
// tsnlint:allow(wall-clock): bench harness measures host throughput; results are reporting-only
using BenchClock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(BenchClock::time_point start) {
  return std::chrono::duration<double, std::milli>(BenchClock::now() - start).count();
}

/// One timed repetition's facts, produced by a workload body.
struct RepStats {
  std::uint64_t events = 0;
  std::size_t peak_heap_depth = 0;
  std::int64_t sim_ns = 0;  // simulated span covered (0 = not meaningful)
};

struct WorkloadResult {
  std::string name;
  std::string detail;
  int reps = 0;
  std::uint64_t events = 0;  // per repetition
  double best_wall_ms = 0.0;
  double mean_wall_ms = 0.0;
  std::size_t peak_heap_depth = 0;
  double sim_to_wall_ratio = 0.0;  // simulated ms per host ms, best rep

  [[nodiscard]] double events_per_sec() const {
    return best_wall_ms > 0.0 ? static_cast<double>(events) / (best_wall_ms / 1e3) : 0.0;
  }
  [[nodiscard]] double ns_per_event() const {
    return events > 0 ? best_wall_ms * 1e6 / static_cast<double>(events) : 0.0;
  }
};

/// Times `body` `reps` times and folds the per-rep facts into a result.
/// Best-of-reps is the headline number (least scheduler noise); the mean
/// is kept so outliers remain visible in the artifact.
template <typename Body>
WorkloadResult run_workload(std::string name, std::string detail, int reps, Body&& body) {
  WorkloadResult r;
  r.name = std::move(name);
  r.detail = std::move(detail);
  r.reps = reps;
  double total_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    const BenchClock::time_point start = BenchClock::now();
    const RepStats stats = body();
    const double wall_ms = ms_since(start);
    total_ms += wall_ms;
    if (i == 0 || wall_ms < r.best_wall_ms) {
      r.best_wall_ms = wall_ms;
      if (wall_ms > 0.0 && stats.sim_ns > 0) {
        r.sim_to_wall_ratio = (static_cast<double>(stats.sim_ns) / 1e6) / wall_ms;
      }
    }
    r.events = stats.events;
    if (stats.peak_heap_depth > r.peak_heap_depth) r.peak_heap_depth = stats.peak_heap_depth;
  }
  r.mean_wall_ms = total_ms / static_cast<double>(reps);
  return r;
}

/// bench/micro_simulator BM_ScheduleAndRun shape: a flat batch of events
/// at uniformly random timestamps, scheduled then drained.
RepStats schedule_run_rep(std::int64_t batch, std::uint64_t seed) {
  event::Simulator sim;
  Rng rng = make_stream(seed, "bench.kernel");
  std::uint64_t sink = 0;
  for (std::int64_t i = 0; i < batch; ++i) {
    sim.schedule_at(TimePoint(static_cast<std::int64_t>(rng.uniform(0, 1'000'000))),
                    [s = &sink] { ++*s; });
  }
  (void)sim.run();
  require(sink == static_cast<std::uint64_t>(batch), "bench: schedule_run lost events");
  return {sim.events_executed(), sim.peak_heap_depth(), 0};
}

/// BM_EventCascade shape: self-rescheduling chains — the pattern of gate
/// updates and tx-complete events in the switch.
RepStats cascade_rep(std::int64_t hops) {
  event::Simulator sim;
  struct Chain {
    event::Simulator& sim;
    std::int64_t remaining;
    void arm() {
      sim.schedule_in(Duration(100), [this] { hop(); });
    }
    void hop() {
      if (--remaining > 0) arm();
    }
  };
  Chain chain{sim, hops};
  chain.arm();
  (void)sim.run();
  return {sim.events_executed(), sim.peak_heap_depth(), 0};
}

/// BM_CancelHeavy shape plus slot churn: schedule a wave, cancel every
/// other event, drain, repeat — exercises tombstone skimming and
/// free-list slot reuse across generations.
RepStats cancel_churn_rep(std::int64_t wave, std::int64_t cycles) {
  event::Simulator sim;
  std::vector<event::EventId> ids;
  ids.reserve(static_cast<std::size_t>(wave));
  for (std::int64_t c = 0; c < cycles; ++c) {
    ids.clear();
    const TimePoint base = sim.now();
    for (std::int64_t i = 0; i < wave; ++i) {
      ids.push_back(sim.schedule_at(base + Duration(i + 1), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) (void)sim.cancel(ids[i]);
    (void)sim.run();
  }
  return {sim.events_executed(), sim.peak_heap_depth(), 0};
}

/// End-to-end netsim throughput: a complete ring scenario (gPTP warmup,
/// ITP-planned TS flows, switch pipelines, link serialization) — the
/// number that bounds every paper experiment.
RepStats netsim_rep(std::size_t flows, Duration traffic, std::uint64_t seed) {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(6);
  cfg.options.resource = builder::paper_customized(1);
  cfg.options.resource.classification_table_size = static_cast<std::int64_t>(flows) + 8;
  cfg.options.resource.unicast_table_size = static_cast<std::int64_t>(flows) + 8;
  cfg.options.seed = seed;
  traffic::TsWorkloadParams params;
  params.flow_count = flows;
  cfg.flows =
      traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[3], params);
  cfg.warmup = 100_ms;
  cfg.traffic_duration = traffic;
  const netsim::ScenarioResult r = netsim::run_scenario(std::move(cfg));
  require(r.ts.received > 0, "bench: netsim workload delivered nothing");
  return {r.events_executed, 0, r.sim_end.ns()};
}

[[nodiscard]] std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string to_json(const std::vector<WorkloadResult>& results,
                    const telemetry::RunManifest& manifest, bool quick) {
  std::string out = "{\"manifest\":" + manifest.to_json();
  out += ",\"schema\":\"tsnb.bench/1\"";
  out += std::string(",\"quick\":") + (quick ? "true" : "false");
  out += ",\"workloads\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + r.name + "\"";
    out += ",\"detail\":\"" + r.detail + "\"";
    out += ",\"reps\":" + std::to_string(r.reps);
    out += ",\"events\":" + std::to_string(r.events);
    out += ",\"best_wall_ms\":" + json_number(r.best_wall_ms);
    out += ",\"mean_wall_ms\":" + json_number(r.mean_wall_ms);
    out += ",\"events_per_sec\":" + json_number(r.events_per_sec());
    out += ",\"ns_per_event\":" + json_number(r.ns_per_event());
    out += ",\"peak_heap_depth\":" + std::to_string(r.peak_heap_depth);
    out += ",\"sim_to_wall_ratio\":" + json_number(r.sim_to_wall_ratio);
    out += "}";
  }
  out += "]}\n";
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  require(file != nullptr, "cannot open '" + path + "' for writing");
  std::fputs(content.c_str(), file);
  std::fclose(file);
}

/// {workload name -> events_per_sec} from a tsnb.bench/1 artifact.
/// Hand-rolled like the writer: each workload object leads with
/// "name":"..." and carries one "events_per_sec": field after it.
std::map<std::string, double> baseline_rates(const std::string& json) {
  std::map<std::string, double> rates;
  const std::string name_key = "\"name\":\"";
  const std::string rate_key = "\"events_per_sec\":";
  std::size_t pos = 0;
  while ((pos = json.find(name_key, pos)) != std::string::npos) {
    pos += name_key.size();
    const std::size_t name_end = json.find('"', pos);
    if (name_end == std::string::npos) break;
    const std::string name = json.substr(pos, name_end - pos);
    const std::size_t rate_pos = json.find(rate_key, name_end);
    if (rate_pos == std::string::npos) break;
    rates[name] = std::strtod(json.c_str() + rate_pos + rate_key.size(), nullptr);
    pos = name_end;
  }
  return rates;
}

std::map<std::string, double> load_baseline(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open baseline '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::map<std::string, double> rates = baseline_rates(buffer.str());
  require(!rates.empty(), "baseline '" + path + "' has no workload results");
  return rates;
}

}  // namespace

int cmd_bench(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  parser.add_option("out", "write the machine-readable results here", "BENCH_kernel.json");
  parser.add_option("reps", "timed repetitions per workload (best-of wins)", "3");
  parser.add_option("seed", "workload seed", "42");
  parser.add_flag("quick", "smaller workloads for CI smoke runs");
  parser.add_option("against",
                    "baseline BENCH json; fail (exit 1) if any shared workload's "
                    "events/sec regresses past --tolerance", "");
  parser.add_option("tolerance", "allowed events/sec regression vs --against, percent",
                    "5");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb bench [options]\n" + parser.usage();
    return 2;
  }
  const auto reps_opt = parser.get_int("reps");
  usage_require(reps_opt.has_value() && *reps_opt >= 1, "invalid --reps");
  const int reps = static_cast<int>(*reps_opt);
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed").value_or(42));
  const bool quick = parser.get_bool("quick");
  const auto tolerance = parser.get_double("tolerance");
  usage_require(tolerance.has_value() && *tolerance >= 0.0, "invalid --tolerance");
  // Load the baseline before spending any bench time: a bad path should
  // fail immediately, not after minutes of timed repetitions.
  const std::string against_path = parser.get("against");
  std::map<std::string, double> baseline;
  if (!against_path.empty()) baseline = load_baseline(against_path);

  const std::int64_t batch = quick ? 131'072 : 1'048'576;
  const std::int64_t hops = quick ? 100'000 : 1'000'000;
  const std::int64_t wave = quick ? 20'000 : 100'000;
  const std::int64_t cycles = 5;
  const std::size_t flows = quick ? 64 : 256;
  const Duration traffic = quick ? 20_ms : 50_ms;

  std::vector<WorkloadResult> results;
  results.push_back(run_workload(
      "kernel.schedule_run", std::to_string(batch) + " events, random timestamps", reps,
      [&] { return schedule_run_rep(batch, seed); }));
  results.push_back(run_workload("kernel.cascade",
                                 std::to_string(hops) + " self-rescheduling hops", reps,
                                 [&] { return cascade_rep(hops); }));
  results.push_back(run_workload(
      "kernel.cancel_churn",
      std::to_string(cycles) + " waves of " + std::to_string(wave) + ", half cancelled",
      reps, [&] { return cancel_churn_rep(wave, cycles); }));
  results.push_back(run_workload(
      "netsim.ring_e2e",
      "6-switch ring, " + std::to_string(flows) + " TS flows, " +
          std::to_string(traffic.ns() / 1'000'000) + " ms traffic",
      reps, [&] { return netsim_rep(flows, traffic, seed); }));

  const telemetry::RunManifest manifest = telemetry::make_manifest(
      std::string("bench") + (quick ? " quick" : "") + " reps=" + std::to_string(reps),
      "bench", seed);
  const std::string path = parser.get("out");
  write_text_file(path, to_json(results, manifest, quick));

  out += "kernel & dataplane bench (" + std::string(quick ? "quick" : "full") + ", best of " +
         std::to_string(reps) + "):\n";
  for (const WorkloadResult& r : results) {
    out += "  " + r.name + ": " +
           format_double(r.events_per_sec() / 1e6, 2) + " M events/s, " +
           format_double(r.ns_per_event(), 1) + " ns/event";
    if (r.sim_to_wall_ratio > 0.0) {
      out += ", sim-to-wall " + format_double(r.sim_to_wall_ratio, 1) + "x";
    }
    if (r.peak_heap_depth > 0) {
      out += ", peak heap " + std::to_string(r.peak_heap_depth);
    }
    out += "  (" + r.detail + ")\n";
  }
  out += "results written to " + path + "\n";

  if (!baseline.empty()) {
    // The regression gate: each workload present in both runs must keep
    // events/sec within --tolerance of the baseline. Workloads only in
    // one artifact are ignored (quick vs full runs share the names, so
    // in practice everything is compared).
    std::string regressions;
    out += "against " + against_path + " (tolerance " +
           format_double(*tolerance, 1) + "%):\n";
    for (const WorkloadResult& r : results) {
      const auto it = baseline.find(r.name);
      if (it == baseline.end()) continue;
      const double measured = r.events_per_sec();
      const double delta_pct =
          it->second > 0.0 ? (measured / it->second - 1.0) * 100.0 : 0.0;
      const bool regressed = measured < it->second * (1.0 - *tolerance / 100.0);
      out += "  " + r.name + ": " + (delta_pct >= 0.0 ? "+" : "") +
             format_double(delta_pct, 1) + "% (" +
             format_double(measured / 1e6, 2) + " vs " +
             format_double(it->second / 1e6, 2) + " M events/s)" +
             (regressed ? "  REGRESSED" : "") + "\n";
      if (regressed) {
        if (!regressions.empty()) regressions += ", ";
        regressions += r.name + " " + format_double(-delta_pct, 1) + "%";
      }
    }
    if (!regressions.empty()) {
      throw Error("bench regression vs '" + against_path + "': " + regressions);
    }
    out += "no regression beyond tolerance\n";
  }
  return 0;
}

}  // namespace tsn::cli
