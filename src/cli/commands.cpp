#include "cli/commands.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "bound/analyzer.hpp"
#include "bound/soundness.hpp"
#include "builder/api.hpp"
#include "builder/config_io.hpp"
#include "builder/planner.hpp"
#include "builder/presets.hpp"
#include "builder/switch_builder.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario_space.hpp"
#include "campaign/sink.hpp"
#include "campaign/telemetry.hpp"
#include "cli/args.hpp"
#include "cli/bench.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"
#include "fault/profiles.hpp"
#include "flight/explain.hpp"
#include "flight/recorder.hpp"
#include "netsim/network.hpp"
#include "netsim/scenario.hpp"
#include "netsim/trace.hpp"
#include "resource/bram.hpp"
#include "sched/cqf_analysis.hpp"
#include "sched/itp.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "topo/builders.hpp"
#include "traffic/workload.hpp"
#include "verify/verifier.hpp"

namespace tsn::cli {
namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  require(file != nullptr, "cannot open '" + path + "' for writing");
  std::fputs(content.c_str(), file);
  std::fclose(file);
}

[[nodiscard]] bool has_json_extension(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

/// Canonical scenario description for the run manifest — a pure function
/// of the parsed options, so identical invocations hash identically.
std::string scenario_label(const ArgParser& parser) {
  std::string out = "topology=" + parser.get("topology");
  for (const char* key : {"switches", "flows", "frame", "period-ms", "slot-us", "hops",
                          "background-mbps"}) {
    out += std::string(" ") + key + "=" + parser.get(key);
  }
  if (parser.get_bool("aggregate")) out += " aggregate";
  return out;
}

struct ScenarioSpec {
  topo::BuiltTopology built;
  std::vector<traffic::FlowSpec> flows;
  Duration slot{};
  bool aggregated = false;
};

/// `frame_key` renames the frame-size option for subcommands where
/// "--frame" means something else (explain's occurrence filter).
void add_scenario_options(ArgParser& parser, const char* frame_key = "frame") {
  parser.add_option("topology", "ring | linear | star", "ring");
  parser.add_option("switches", "switch count (ring/linear) or star leaves", "6");
  parser.add_option("flows", "number of periodic TS flows", "1024");
  parser.add_option(frame_key, "TS frame size in bytes", "64");
  parser.add_option("period-ms", "TS flow period in milliseconds", "10");
  parser.add_option("slot-us", "CQF slot size in microseconds", "65");
  parser.add_option("hops", "switches each TS flow traverses", "4");
  parser.add_option("background-mbps", "RC + BE background rate (each)", "0");
  parser.add_flag("aggregate", "collapse same-path flows onto one table entry");
}

ScenarioSpec build_scenario(const ArgParser& parser, const char* frame_key = "frame") {
  ScenarioSpec spec;
  const std::string topology = parser.get("topology");
  const auto switches = parser.get_int("switches");
  usage_require(switches.has_value() && *switches >= 1, "invalid --switches");
  if (topology == "ring") {
    spec.built = topo::make_ring(static_cast<std::size_t>(*switches));
  } else if (topology == "linear") {
    spec.built = topo::make_linear(static_cast<std::size_t>(*switches));
  } else if (topology == "star") {
    spec.built = topo::make_star(static_cast<std::size_t>(*switches));
  } else {
    throw UsageError("unknown --topology '" + topology + "' (ring|linear|star)");
  }

  const auto flows = parser.get_int("flows");
  const auto frame = parser.get_int(frame_key);
  const auto period = parser.get_int("period-ms");
  const auto slot_us = parser.get_double("slot-us");
  const auto hops = parser.get_int("hops");
  usage_require(flows.has_value() && *flows >= 1, "invalid --flows");
  usage_require(frame.has_value(), "invalid --frame");
  usage_require(period.has_value() && *period >= 1, "invalid --period-ms");
  usage_require(slot_us.has_value() && *slot_us > 0, "invalid --slot-us");
  usage_require(hops.has_value() && *hops >= 1 &&
                    *hops <= static_cast<std::int64_t>(spec.built.switch_nodes.size()),
                "invalid --hops for this topology");
  spec.slot = Duration(static_cast<std::int64_t>(*slot_us * 1000.0));

  traffic::TsWorkloadParams params;
  params.flow_count = static_cast<std::size_t>(*flows);
  params.frame_bytes = *frame;
  params.period = milliseconds(*period);
  const topo::NodeId src = spec.built.host_nodes.front();
  const topo::NodeId dst = spec.built.host_nodes[static_cast<std::size_t>(*hops - 1)];
  usage_require(src != dst, "--hops 1 is not supported from the CLI (shared switch)");
  spec.flows = traffic::make_ts_flows(src, dst, params);

  const auto bg = parser.get_int("background-mbps").value_or(0);
  if (bg > 0) {
    const topo::NodeId bg_host = spec.built.topology.add_host("bg");
    spec.built.topology.connect(spec.built.switch_nodes[0], bg_host, Duration(50));
    spec.flows.push_back(
        traffic::make_rc_flow(900'000, bg_host, dst, DataRate::megabits_per_sec(bg)));
    spec.flows.push_back(
        traffic::make_be_flow(900'001, bg_host, dst, DataRate::megabits_per_sec(bg)));
  }
  if (parser.get_bool("aggregate")) {
    (void)traffic::aggregate_flows_by_path(spec.flows);
    spec.aggregated = true;
  }
  return spec;
}

builder::PlannerOutput plan_for(const ScenarioSpec& spec) {
  builder::PlannerInput input;
  input.topology = &spec.built.topology;
  input.flows = spec.flows;
  input.slot = spec.slot;
  return builder::ParameterPlanner::plan(input);
}

std::string baseline_comparison(const sw::SwitchResourceConfig& config) {
  builder::SwitchBuilder bld;
  bld.with_resources(config);
  builder::SwitchBuilder commercial;
  commercial.with_resources(builder::bcm53154_reference());
  return bld.report().render(commercial.report());
}

int cmd_plan(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  add_scenario_options(parser);
  parser.add_option("save", "write the planned configuration to this file", "");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb plan [options]\n" + parser.usage();
    return 2;
  }
  const ScenarioSpec spec = build_scenario(parser);
  const builder::PlannerOutput plan = plan_for(spec);
  out += "planner rationale:\n" + plan.rationale + "\n";
  out += "resource report (vs BCM53154 commercial baseline):\n";
  out += baseline_comparison(plan.config);
  const std::string save_path = parser.get("save");
  if (!save_path.empty()) {
    builder::save_config(plan.config, save_path);
    out += "\nconfiguration written to " + save_path + "\n";
  }
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  add_scenario_options(parser);
  parser.add_option("duration-ms", "traffic duration in milliseconds", "200");
  parser.add_option("seed", "simulation seed", "7");
  parser.add_option("csv", "write per-flow results to this CSV file", "");
  parser.add_option("config", "use this saved resource configuration instead of planning",
                    "");
  parser.add_option("metrics-out",
                    "write the metrics snapshot here (.json = JSON, else "
                    "Prometheus text exposition)", "");
  parser.add_option("timeline-out",
                    "write a Chrome trace-event JSON timeline here "
                    "(load in Perfetto / chrome://tracing)", "");
  parser.add_option("trace-out",
                    "write the link-level packet trace here (.json = JSON, "
                    "else CSV)", "");
  parser.add_option("trace-limit", "packet-trace ring capacity (0 = unlimited)", "4096");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb simulate [options]\n" + parser.usage();
    return 2;
  }
  ScenarioSpec spec = build_scenario(parser);
  builder::PlannerOutput plan;
  const std::string config_path = parser.get("config");
  if (config_path.empty()) {
    plan = plan_for(spec);
  } else {
    plan.config = builder::load_config(config_path);
    plan.rationale = "loaded from " + config_path + "\n";
  }

  netsim::ScenarioConfig cfg;
  cfg.built = std::move(spec.built);
  cfg.options.resource = plan.config;
  cfg.options.runtime.slot_size = spec.slot;
  cfg.options.seed = static_cast<std::uint64_t>(parser.get_int("seed").value_or(7));
  cfg.flows = std::move(spec.flows);
  cfg.warmup = milliseconds(200);
  cfg.traffic_duration = milliseconds(parser.get_int("duration-ms").value_or(200));
  const std::string csv_path = parser.get("csv");
  cfg.export_flow_csv = !csv_path.empty();

  // Observability sinks, filled by the scenario runner.
  const std::string metrics_path = parser.get("metrics-out");
  const std::string timeline_path = parser.get("timeline-out");
  const std::string trace_path = parser.get("trace-out");
  telemetry::MetricsRegistry registry;
  telemetry::TimelineBuilder timeline;
  std::unique_ptr<netsim::TraceRecorder> trace;
  if (!metrics_path.empty()) cfg.observe.metrics = &registry;
  if (!timeline_path.empty()) cfg.observe.timeline = &timeline;
  if (!trace_path.empty()) {
    const auto trace_limit = parser.get_int("trace-limit");
    usage_require(trace_limit.has_value() && *trace_limit >= 0, "invalid --trace-limit");
    trace = std::make_unique<netsim::TraceRecorder>(
        *trace_limit == 0 ? netsim::TraceRecorder::kUnlimited
                          : static_cast<std::size_t>(*trace_limit));
    cfg.observe.trace = trace.get();
  }
  const telemetry::RunManifest manifest = telemetry::make_manifest(
      "simulate " + scenario_label(parser),
      config_path.empty() ? "planned" : config_path, cfg.options.seed);

  const netsim::ScenarioResult r = netsim::run_scenario(std::move(cfg));

  if (!csv_path.empty()) {
    write_text_file(csv_path, r.flow_csv);
    out += "per-flow results written to " + csv_path + "\n";
  }
  if (!metrics_path.empty()) {
    telemetry::RenderOptions render;
    render.manifest = &manifest;
    write_text_file(metrics_path, has_json_extension(metrics_path)
                                      ? registry.to_json(render)
                                      : registry.to_prometheus(render));
    out += "metrics snapshot written to " + metrics_path + "\n";
  }
  if (!timeline_path.empty()) {
    write_text_file(timeline_path, timeline.to_json(&manifest));
    out += "timeline written to " + timeline_path + "\n";
  }
  if (!trace_path.empty()) {
    write_text_file(trace_path, has_json_extension(trace_path) ? trace->to_json()
                                                               : trace->to_csv());
    out += "packet trace written to " + trace_path + "\n";
  }

  out += "planned config: queue depth " + std::to_string(plan.config.queue_depth) +
         ", buffers/port " + std::to_string(plan.config.buffers_per_port) +
         ", enabled ports " + std::to_string(plan.config.port_count) + "\n\n";
  auto line = [&out](const char* label, const analysis::ClassSummary& s) {
    if (s.injected == 0) return;
    out += std::string(label) + ": received " + std::to_string(s.received) + ", loss " +
           format_percent(s.loss_rate()) + ", avg " +
           format_double(s.avg_latency_us(), 1) + "us, jitter " +
           format_double(s.jitter_us(), 2) + "us, deadline misses " +
           std::to_string(s.deadline_misses) + "\n";
  };
  line("TS", r.ts);
  line("RC", r.rc);
  line("BE", r.be);
  out += "switch drops " + std::to_string(r.switch_drops) + ", peak TS queue " +
         std::to_string(r.peak_ts_queue) + "/" + std::to_string(plan.config.queue_depth) +
         ", peak buffers " + std::to_string(r.peak_buffer_in_use) + "/" +
         std::to_string(plan.config.buffers_per_port) + ", max sync error " +
         std::to_string(r.max_sync_error.ns()) + "ns\n";
  return 0;
}

int cmd_report(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  parser.add_option("scenario", "commercial | star | linear | ring", "ring");
  parser.add_option("config", "price a saved configuration file instead of a preset", "");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb report [options]\n" + parser.usage();
    return 2;
  }
  const std::string config_path = parser.get("config");
  if (!config_path.empty()) {
    out += baseline_comparison(builder::load_config(config_path));
    return 0;
  }
  const std::string scenario = parser.get("scenario");
  sw::SwitchResourceConfig config;
  if (scenario == "commercial") {
    config = builder::bcm53154_reference();
  } else if (scenario == "star") {
    config = builder::paper_customized(3);
  } else if (scenario == "linear") {
    config = builder::paper_customized(2);
  } else if (scenario == "ring") {
    config = builder::paper_customized(1);
  } else {
    throw UsageError("unknown --scenario '" + scenario + "'");
  }
  out += baseline_comparison(config);
  return 0;
}

int cmd_frer(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  parser.add_option("switches", "bidirectional ring size", "6");
  parser.add_option("flows", "replicated TS streams", "128");
  parser.add_option("duration-ms", "traffic before and after the link cut", "100");
  parser.add_option("seed", "simulation seed", "99");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb frer [options]\n" + parser.usage();
    return 2;
  }
  const auto switches = parser.get_int("switches").value_or(6);
  const auto flow_count = parser.get_int("flows").value_or(128);
  const Duration window = milliseconds(parser.get_int("duration-ms").value_or(100));
  usage_require(switches >= 3 && flow_count >= 1, "invalid --switches / --flows");

  event::Simulator sim;
  topo::BuiltTopology built =
      topo::make_ring_bidirectional(static_cast<std::size_t>(switches));
  netsim::NetworkOptions opts;
  opts.seed = static_cast<std::uint64_t>(parser.get_int("seed").value_or(99));
  opts.resource.classification_table_size = 2 * flow_count + 8;
  opts.resource.unicast_table_size = 2 * flow_count + 8;
  traffic::TsWorkloadParams params;
  params.flow_count = static_cast<std::size_t>(flow_count);
  std::vector<traffic::FlowSpec> flows =
      traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], params);
  sched::ItpPlanner planner(built.topology, opts.runtime.slot_size);
  planner.plan(flows).apply(flows);

  netsim::Network net(sim, built.topology, opts);
  std::int64_t failures = 0;
  for (const traffic::FlowSpec& f : flows) {
    failures += net.provision_frer(f, static_cast<VlanId>(2000 + f.id));
  }
  require(failures == 0, "FRER provisioning failed");
  net.start_network();
  (void)sim.run_until(TimePoint(0) + milliseconds(150));
  net.start_traffic(TimePoint(0) + milliseconds(151));
  (void)sim.run_until(TimePoint(0) + milliseconds(152) + window);

  const auto hops = *built.topology.route(built.host_nodes[0], built.host_nodes[2]);
  for (const topo::Hop& hop : hops) {
    const topo::Link& l = built.topology.link(hop.link);
    if (built.topology.node(l.node_a).kind == topo::NodeKind::kSwitch &&
        built.topology.node(l.node_b).kind == topo::NodeKind::kSwitch) {
      net.set_link_state(hop.link, false);
      out += "cut ring link " + built.topology.node(l.node_a).name + " <-> " +
             built.topology.node(l.node_b).name + " mid-run\n";
      break;
    }
  }
  (void)sim.run_until(sim.now() + window);
  net.stop_traffic();
  (void)sim.run_until(sim.now() + milliseconds(20));

  const auto ts = net.analyzer().summary(net::TrafficClass::kTimeSensitive);
  out += "TS: injected " + std::to_string(ts.injected) + ", delivered " +
         std::to_string(ts.received) + ", loss " + format_percent(ts.loss_rate()) +
         ", duplicates eliminated " +
         std::to_string(net.nic_at(built.host_nodes[2]).frer_discarded()) +
         ", frames eaten by the dead link " + std::to_string(net.link_drops()) + "\n";
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  parser.add_option("axes",
                    "scenario matrix: 'name=v1,v2;name2=...' (axes: topology, "
                    "switches, flows, frame, period-ms, slot-us, hops, rc-mbps, "
                    "be-mbps, config, itp, frer, faults, duration-ms, warmup-ms)",
                    "");
  parser.add_option("faults",
                    "fault profiles to sweep; shorthand for a 'faults=...' axis "
                    "(none|link-down|link-flap|reboot|gm-loss|corrupt|random)", "");
  parser.add_flag("frer",
                  "replicate TS flows over a disjoint secondary path "
                  "(shorthand for the 'frer=on' axis; needs e.g. topology=ring2)");
  parser.add_option("jobs", "worker threads (0 = hardware concurrency)", "1");
  parser.add_option("repeats", "repeats per matrix point", "1");
  parser.add_option("seed", "campaign base seed", "7");
  parser.add_option("out", "result file (JSONL or CSV)", "campaign.jsonl");
  parser.add_option("format", "jsonl | csv", "jsonl");
  parser.add_option("metrics-out",
                    "write the campaign metrics snapshot here (.json = JSON, "
                    "else Prometheus text exposition)", "");
  parser.add_flag("quiet", "suppress per-run progress lines");
  parser.add_flag("no-verify", "skip the static verification fail-fast gate");
  parser.add_flag("worst-frame",
                  "record each run's worst-latency frame (tsn::flight): "
                  "worst_frame_latency_ns/_hop columns plus per-row explain JSON");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb campaign [options]\n" + parser.usage();
    return 2;
  }
  const std::string axes_spec = parser.get("axes");
  usage_require(!axes_spec.empty(),
                "--axes is required (e.g. --axes 'be-mbps=0,300;hops=2,3')");
  const auto jobs = parser.get_int("jobs");
  const auto repeats = parser.get_int("repeats");
  const auto seed = parser.get_int("seed");
  usage_require(jobs.has_value() && *jobs >= 0, "invalid --jobs");
  usage_require(repeats.has_value() && *repeats >= 1, "invalid --repeats");
  usage_require(seed.has_value(), "invalid --seed");
  // Validate the sink before spending any simulation time. A malformed
  // --format / --axes value is a command-line mistake, not a run failure.
  campaign::SinkFormat format = campaign::SinkFormat::kJsonl;
  campaign::ScenarioMatrix matrix;
  try {
    format = campaign::parse_sink_format(parser.get("format"));
    for (campaign::Axis& axis : campaign::parse_axes(axes_spec)) {
      matrix.add_axis(std::move(axis));
    }
    const std::string faults_spec = parser.get("faults");
    if (!faults_spec.empty()) {
      for (campaign::Axis& axis : campaign::parse_axes("faults=" + faults_spec)) {
        for (const std::string& name : axis.values) {
          usage_require(fault::is_profile(name),
                        "--faults: unknown profile '" + name + "'");
        }
        matrix.add_axis(std::move(axis));
      }
    }
    if (parser.get_bool("frer")) {
      for (campaign::Axis& axis : campaign::parse_axes("frer=on")) {
        matrix.add_axis(std::move(axis));
      }
    }
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
  campaign::CampaignOptions options;
  options.jobs = static_cast<std::size_t>(*jobs);
  options.repeats = static_cast<std::size_t>(*repeats);
  options.base_seed = static_cast<std::uint64_t>(*seed);
  options.verify = !parser.get_bool("no-verify");
  options.capture_worst_frame = parser.get_bool("worst-frame");

  campaign::CampaignRunner runner(std::move(matrix), options);
  const bool quiet = parser.get_bool("quiet");
  out += "campaign: " + std::to_string(runner.matrix().point_count()) + " points x " +
         std::to_string(*repeats) + " repeat(s) = " + std::to_string(runner.total_runs()) +
         " runs\n";

  const auto progress = [quiet](const campaign::RunRecord& record, std::size_t done,
                                std::size_t total) {
    if (quiet) return;
    campaign::RunPoint point;
    point.params = record.params;
    std::fprintf(stderr, "[%zu/%zu] %s %s\n", done, total,
                 record.ok ? "ok" : (record.verify_failed ? "REJECTED" : "FAILED"),
                 point.label().c_str());
  };
  const std::vector<campaign::RunRecord> records =
      runner.run([](const campaign::RunPoint& point, std::uint64_t run_seed) {
        return campaign::scenario_for_point(point, run_seed);
      }, progress);

  const telemetry::RunManifest manifest = telemetry::make_manifest(
      "campaign " + axes_spec, "campaign", options.base_seed);
  const std::string path = parser.get("out");
  campaign::write_file(records, runner.matrix().axes(), format, path, &manifest);

  const std::string metrics_path = parser.get("metrics-out");
  if (!metrics_path.empty()) {
    telemetry::MetricsRegistry registry;
    campaign::collect_metrics(records, registry);
    telemetry::RenderOptions render;
    render.manifest = &manifest;
    write_text_file(metrics_path, has_json_extension(metrics_path)
                                      ? registry.to_json(render)
                                      : registry.to_prometheus(render));
    out += "campaign metrics written to " + metrics_path + "\n";
  }

  std::size_t failed = 0;
  for (const campaign::RunRecord& record : records) {
    if (!record.ok) ++failed;
  }
  out += std::to_string(records.size()) + " rows written to " + path + " (" +
         std::to_string(failed) + " failed)\n\n";
  out += campaign::render_summary(campaign::aggregate(records));
  return failed == records.size() ? 1 : 0;
}

// --- tsnb verify ----------------------------------------------------

using NamedReport = std::pair<std::string, verify::Report>;

/// Mirrors examples/quickstart.cpp: Table II customization on a 3-ring.
verify::Report verify_quickstart() {
  topo::BuiltTopology built = topo::make_ring(3);
  builder::CustomizationApi api;
  api.set_switch_tbl(1024, 0)
      .set_class_tbl(1024)
      .set_meter_tbl(1024)
      .set_gate_tbl(2, 8, 1)
      .set_cbs_tbl(3, 3, 1)
      .set_queues(12, 8, 1)
      .set_buffers(96, 1);
  verify::VerifyInput input;
  input.topology = &built.topology;
  traffic::TsWorkloadParams ts;
  ts.flow_count = 64;
  input.flows = traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], ts);
  input.resource = api.config();
  input.runtime.slot_size = microseconds(65);
  return verify::run(input);
}

/// Mirrors examples/ring_demo.cpp: the paper's 1024-flow ring workload.
verify::Report verify_ring_demo() {
  topo::BuiltTopology built = topo::make_ring(6);
  verify::VerifyInput input;
  input.resource = builder::paper_customized(1);
  input.resource.classification_table_size = 1040;
  input.resource.unicast_table_size = 1040;
  input.resource.meter_table_size = 1040;
  // Drifting 10 ms periods can slip a frame into the adjacent CQF cell:
  // the pair backlog bound is 14 frames, beyond the 12-deep default.
  input.resource.queue_depth = 16;
  input.resource.buffers_per_port =
      input.resource.queue_depth * input.resource.queues_per_port;
  input.runtime.slot_size = microseconds(65);
  traffic::TsWorkloadParams params;
  params.flow_count = 1024;
  input.flows = traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[3], params);
  const topo::NodeId bg_host = built.topology.add_host("tester-bg");
  built.topology.connect(built.switch_nodes[0], bg_host, Duration(50));
  input.flows.push_back(traffic::make_rc_flow(9000, bg_host, built.host_nodes[3],
                                              DataRate::megabits_per_sec(200)));
  input.flows.push_back(traffic::make_be_flow(9001, bg_host, built.host_nodes[3],
                                              DataRate::megabits_per_sec(200)));
  input.topology = &built.topology;
  return verify::run(input);
}

/// Mirrors examples/industrial_star.cpp: cross-cell TS + RC aggregation.
verify::Report verify_industrial_star() {
  topo::BuiltTopology built = topo::make_star(3);
  verify::VerifyInput input;
  input.resource = builder::paper_customized(3);
  input.resource.classification_table_size = 1024;
  input.resource.unicast_table_size = 1024;
  input.resource.meter_table_size = 1024;
  // Drifting 10 ms periods can slip a frame into the adjacent CQF cell:
  // the pair backlog bound is 14 frames, beyond the 12-deep default.
  input.resource.queue_depth = 16;
  input.resource.buffers_per_port =
      input.resource.queue_depth * input.resource.queues_per_port;
  traffic::TsWorkloadParams params;
  params.flow_count = 256;
  for (std::size_t cell = 1; cell <= 3; ++cell) {
    const std::size_t next = cell == 3 ? 1 : cell + 1;
    params.seed = 100 + cell;
    params.first_vid = static_cast<VlanId>(cell * 300);
    auto flows = traffic::make_ts_flows(built.host_nodes[cell], built.host_nodes[next],
                                        params, static_cast<net::FlowId>(cell * 1000));
    input.flows.insert(input.flows.end(), flows.begin(), flows.end());
  }
  for (std::size_t cell = 2; cell <= 3; ++cell) {
    input.flows.push_back(traffic::make_rc_flow(
        static_cast<net::FlowId>(9000 + cell), built.host_nodes[cell],
        built.host_nodes[1], DataRate::megabits_per_sec(100), 1024,
        traffic::kRcPriorityHigh, static_cast<VlanId>(3900 + cell)));
  }
  input.topology = &built.topology;
  return verify::run(input);
}

/// Mirrors examples/custom_planner.cpp: planner-derived parameters.
verify::Report verify_custom_planner() {
  topo::BuiltTopology built = topo::make_linear(4);
  traffic::TsWorkloadParams params;
  params.flow_count = 600;
  params.frame_bytes = 128;
  std::vector<traffic::FlowSpec> flows =
      traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[3], params);
  flows.push_back(traffic::make_rc_flow(8000, built.host_nodes[1], built.host_nodes[3],
                                        DataRate::megabits_per_sec(150), 1024,
                                        traffic::kRcPriorityHigh, 4001));
  flows.push_back(traffic::make_rc_flow(8001, built.host_nodes[2], built.host_nodes[3],
                                        DataRate::megabits_per_sec(150), 1024,
                                        traffic::kRcPriorityMid, 4002));
  builder::PlannerInput planner_input;
  planner_input.topology = &built.topology;
  planner_input.flows = flows;
  planner_input.slot =
      sched::max_feasible_slot(built.topology, flows).value_or(microseconds(65));
  const builder::PlannerOutput plan = builder::ParameterPlanner::plan(planner_input);

  verify::VerifyInput input;
  input.topology = &built.topology;
  input.flows = std::move(flows);
  input.resource = plan.config;
  input.runtime.slot_size = planner_input.slot;
  return verify::run(input);
}

/// Mirrors examples/frer_failover.cpp (primary paths; FRER's secondary
/// routes only add table entries the example already over-provisions).
verify::Report verify_frer_failover() {
  topo::BuiltTopology built = topo::make_ring_bidirectional(6);
  verify::VerifyInput input;
  input.resource.classification_table_size = 2 * 128 + 8;
  input.resource.unicast_table_size = 2 * 128 + 8;
  traffic::TsWorkloadParams params;
  params.flow_count = 128;
  input.flows = traffic::make_ts_flows(built.host_nodes[0], built.host_nodes[2], params);
  input.topology = &built.topology;
  return verify::run(input);
}

/// Every example scenario and shipped preset — the `verify.examples_clean`
/// meta-test asserts all of these verify clean.
std::vector<NamedReport> verify_examples_suite() {
  std::vector<NamedReport> results;
  results.emplace_back("preset:bcm53154-reference",
                       verify::verify_config(builder::bcm53154_reference()));
  for (std::int64_t ports = 1; ports <= 3; ++ports) {
    results.emplace_back("preset:paper-customized-" + std::to_string(ports),
                         verify::verify_config(builder::paper_customized(ports)));
  }
  results.emplace_back("preset:table1-case1",
                       verify::verify_config(builder::table1_case1()));
  results.emplace_back("preset:table1-case2",
                       verify::verify_config(builder::table1_case2()));
  results.emplace_back("example:quickstart", verify_quickstart());
  results.emplace_back("example:ring_demo", verify_ring_demo());
  results.emplace_back("example:industrial_star", verify_industrial_star());
  results.emplace_back("example:custom_planner", verify_custom_planner());
  results.emplace_back("example:frer_failover", verify_frer_failover());
  return results;
}

int cmd_verify(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  add_scenario_options(parser);
  parser.add_option("config", "verify this saved resource configuration", "");
  parser.add_option("preset",
                    "verify a preset instead of planning: commercial | star | "
                    "linear | ring | case1 | case2",
                    "");
  parser.add_option("suite", "verify a named set: 'examples' covers every "
                    "example scenario and shipped preset", "");
  parser.add_option("format", "text | json", "text");
  parser.add_option("device", "also check the BRAM budget against this FPGA "
                    "part (zynq7020)", "");
  parser.add_flag("qbv", "check a synthesized 802.1Qbv program instead of CQF");
  parser.add_flag("no-itp", "verify the naive period-start injection plan");
  parser.add_flag("strict", "exit nonzero on warnings too");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb verify [options]\n" + parser.usage();
    return 2;
  }

  const std::string format = parser.get("format");
  usage_require(format == "text" || format == "json",
                "unknown --format '" + format + "' (text|json)");
  std::optional<resource::DevicePart> device;
  const std::string device_name = parser.get("device");
  if (device_name == "zynq7020") {
    device = resource::zynq7020();
  } else {
    usage_require(device_name.empty(),
                  "unknown --device '" + device_name + "' (zynq7020)");
  }

  std::vector<NamedReport> results;
  const std::string suite = parser.get("suite");
  if (!suite.empty()) {
    usage_require(suite == "examples", "unknown --suite '" + suite + "' (examples)");
    results = verify_examples_suite();
  } else {
    ScenarioSpec spec = build_scenario(parser);
    const std::string config_path = parser.get("config");
    const std::string preset = parser.get("preset");
    usage_require(config_path.empty() || preset.empty(),
                  "--config and --preset are mutually exclusive");

    verify::VerifyInput input;
    if (!config_path.empty()) {
      input.resource = builder::load_config(config_path);
    } else if (preset == "commercial") {
      input.resource = builder::bcm53154_reference();
    } else if (preset == "star") {
      input.resource = builder::paper_customized(3);
    } else if (preset == "linear") {
      input.resource = builder::paper_customized(2);
    } else if (preset == "ring") {
      input.resource = builder::paper_customized(1);
    } else if (preset == "case1") {
      input.resource = builder::table1_case1();
    } else if (preset == "case2") {
      input.resource = builder::table1_case2();
    } else if (preset.empty()) {
      input.resource = plan_for(spec).config;
    } else {
      throw UsageError("unknown --preset '" + preset + "'");
    }

    input.topology = &spec.built.topology;
    input.flows = spec.flows;
    input.runtime.slot_size = spec.slot;
    input.device = device;
    if (parser.get_bool("qbv")) input.gate_mode = verify::VerifyInput::GateMode::kQbv;
    if (parser.get_bool("no-itp")) {
      try {
        input.plan =
            sched::ItpPlanner(spec.built.topology, spec.slot).plan_naive(spec.flows);
      } catch (const Error&) {
        // Unroutable flows surface through the topology rules instead.
      }
    }
    results.emplace_back("scenario", verify::run(input));
  }

  bool errors = false;
  bool warnings = false;
  for (const NamedReport& r : results) {
    errors = errors || r.second.has_errors();
    warnings = warnings || r.second.count(verify::Severity::kWarning) > 0;
  }

  if (format == "json") {
    if (results.size() == 1) {
      out += results.front().second.to_json() + "\n";
    } else {
      out += "{\"targets\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"name\":\"" + results[i].first +
               "\",\"report\":" + results[i].second.to_json() + "}";
      }
      out += "]}\n";
    }
  } else {
    for (const NamedReport& r : results) {
      if (results.size() > 1) out += "== " + r.first + " ==\n";
      out += r.second.render_text();
    }
  }
  const bool strict = parser.get_bool("strict");
  return errors || (strict && warnings) ? 1 : 0;
}

// --- tsnb bound -----------------------------------------------------

/// One analysis target: a full ScenarioConfig, so --soundness can run the
/// very same scenario through the simulator and compare measured against
/// bound. Durations are shortened relative to the example programs — the
/// static analysis ignores them and the soundness run only needs a few
/// injection periods per flow.
struct BoundTarget {
  std::string name;
  netsim::ScenarioConfig cfg;
};

void shorten_for_soundness(netsim::ScenarioConfig& cfg) {
  cfg.warmup = milliseconds(150);
  cfg.traffic_duration = milliseconds(25);
}

/// The example scenarios as runnable configs. These mirror the
/// verify_* example builders above (same topologies, workloads, and
/// resource configurations), packaged as ScenarioConfig so one
/// description serves both the analyzer and the soundness run.
netsim::ScenarioConfig bound_example_quickstart() {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(3);
  builder::CustomizationApi api;
  api.set_switch_tbl(1024, 0)
      .set_class_tbl(1024)
      .set_meter_tbl(1024)
      .set_gate_tbl(2, 8, 1)
      .set_cbs_tbl(3, 3, 1)
      .set_queues(12, 8, 1)
      .set_buffers(96, 1);
  cfg.options.resource = api.config();
  cfg.options.runtime.slot_size = microseconds(65);
  traffic::TsWorkloadParams ts;
  ts.flow_count = 64;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2], ts);
  shorten_for_soundness(cfg);
  return cfg;
}

netsim::ScenarioConfig bound_example_ring_demo() {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring(6);
  cfg.options.resource = builder::paper_customized(1);
  cfg.options.resource.classification_table_size = 1040;
  cfg.options.resource.unicast_table_size = 1040;
  // Matches examples/ring_demo.cpp: the CQF pair backlog bound is 14
  // frames, beyond the 12-deep paper default.
  cfg.options.resource.queue_depth = 16;
  cfg.options.resource.buffers_per_port =
      cfg.options.resource.queue_depth * cfg.options.resource.queues_per_port;
  cfg.options.runtime.slot_size = microseconds(65);
  traffic::TsWorkloadParams params;
  params.flow_count = 1024;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[3], params);
  const topo::NodeId bg_host = cfg.built.topology.add_host("tester-bg");
  cfg.built.topology.connect(cfg.built.switch_nodes[0], bg_host, Duration(50));
  cfg.flows.push_back(traffic::make_rc_flow(9000, bg_host, cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(200)));
  cfg.flows.push_back(traffic::make_be_flow(9001, bg_host, cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(200)));
  shorten_for_soundness(cfg);
  return cfg;
}

netsim::ScenarioConfig bound_example_industrial_star() {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_star(3);
  cfg.options.resource = builder::paper_customized(3);
  cfg.options.resource.classification_table_size = 1024;
  cfg.options.resource.unicast_table_size = 1024;
  cfg.options.resource.meter_table_size = 1024;
  // Matches examples/industrial_star.cpp: the CQF pair backlog bound is
  // 14 frames, beyond the 12-deep paper default.
  cfg.options.resource.queue_depth = 16;
  cfg.options.resource.buffers_per_port =
      cfg.options.resource.queue_depth * cfg.options.resource.queues_per_port;
  cfg.options.runtime.slot_size = microseconds(65);
  traffic::TsWorkloadParams params;
  params.flow_count = 256;
  for (std::size_t cell = 1; cell <= 3; ++cell) {
    const std::size_t next = cell == 3 ? 1 : cell + 1;
    params.seed = 100 + cell;
    params.first_vid = static_cast<VlanId>(cell * 300);
    auto flows = traffic::make_ts_flows(cfg.built.host_nodes[cell], cfg.built.host_nodes[next],
                                        params, static_cast<net::FlowId>(cell * 1000));
    cfg.flows.insert(cfg.flows.end(), flows.begin(), flows.end());
  }
  for (std::size_t cell = 2; cell <= 3; ++cell) {
    cfg.flows.push_back(traffic::make_rc_flow(
        static_cast<net::FlowId>(9000 + cell), cfg.built.host_nodes[cell],
        cfg.built.host_nodes[1], DataRate::megabits_per_sec(100), 1024,
        traffic::kRcPriorityHigh, static_cast<VlanId>(3900 + cell)));
  }
  shorten_for_soundness(cfg);
  return cfg;
}

netsim::ScenarioConfig bound_example_custom_planner() {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_linear(4);
  traffic::TsWorkloadParams params;
  params.flow_count = 600;
  params.frame_bytes = 128;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[3], params);
  cfg.flows.push_back(traffic::make_rc_flow(8000, cfg.built.host_nodes[1],
                                            cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(150), 1024,
                                            traffic::kRcPriorityHigh, 4001));
  cfg.flows.push_back(traffic::make_rc_flow(8001, cfg.built.host_nodes[2],
                                            cfg.built.host_nodes[3],
                                            DataRate::megabits_per_sec(150), 1024,
                                            traffic::kRcPriorityMid, 4002));
  builder::PlannerInput planner_input;
  planner_input.topology = &cfg.built.topology;
  planner_input.flows = cfg.flows;
  planner_input.slot =
      sched::max_feasible_slot(cfg.built.topology, cfg.flows).value_or(microseconds(65));
  const builder::PlannerOutput plan = builder::ParameterPlanner::plan(planner_input);
  cfg.options.resource = plan.config;
  cfg.options.runtime.slot_size = planner_input.slot;
  shorten_for_soundness(cfg);
  return cfg;
}

netsim::ScenarioConfig bound_example_frer_failover() {
  netsim::ScenarioConfig cfg;
  cfg.built = topo::make_ring_bidirectional(6);
  // The FRER example's sizing (both member paths need table entries).
  cfg.options.resource.classification_table_size = 300;
  cfg.options.resource.unicast_table_size = 300;
  traffic::TsWorkloadParams params;
  params.flow_count = 128;
  cfg.flows = traffic::make_ts_flows(cfg.built.host_nodes[0], cfg.built.host_nodes[2], params);
  cfg.use_frer = true;
  shorten_for_soundness(cfg);
  return cfg;
}

std::vector<BoundTarget> bound_examples_suite() {
  std::vector<BoundTarget> targets;
  targets.push_back({"example:quickstart", bound_example_quickstart()});
  targets.push_back({"example:ring_demo", bound_example_ring_demo()});
  targets.push_back({"example:industrial_star", bound_example_industrial_star()});
  targets.push_back({"example:custom_planner", bound_example_custom_planner()});
  targets.push_back({"example:frer_failover", bound_example_frer_failover()});
  return targets;
}

int cmd_bound(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  add_scenario_options(parser);
  parser.add_option("config", "analyze this saved resource configuration", "");
  parser.add_option("preset",
                    "analyze a preset instead of planning: commercial | star | "
                    "linear | ring | case1 | case2",
                    "");
  parser.add_option("suite", "analyze a named set: 'examples' bounds every "
                    "example scenario", "");
  parser.add_option("format", "text | json", "text");
  parser.add_flag("per-hop", "include each TS flow's per-hop breakdown");
  parser.add_flag("no-itp", "bound the naive period-start injection plan");
  parser.add_flag("soundness",
                  "also run each target through the simulator (shortened) and "
                  "exit 1 when a measured observable exceeds its bound");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb bound [options]\n" + parser.usage();
    return 2;
  }

  const std::string format = parser.get("format");
  usage_require(format == "text" || format == "json",
                "unknown --format '" + format + "' (text|json)");
  const bool per_hop = parser.get_bool("per-hop");
  const bool soundness = parser.get_bool("soundness");

  std::vector<BoundTarget> targets;
  std::string preset_label = "planned";
  const std::string suite = parser.get("suite");
  if (!suite.empty()) {
    usage_require(suite == "examples", "unknown --suite '" + suite + "' (examples)");
    targets = bound_examples_suite();
    preset_label = "examples";
  } else {
    ScenarioSpec spec = build_scenario(parser);
    const std::string config_path = parser.get("config");
    const std::string preset = parser.get("preset");
    usage_require(config_path.empty() || preset.empty(),
                  "--config and --preset are mutually exclusive");
    netsim::ScenarioConfig cfg;
    if (!config_path.empty()) {
      cfg.options.resource = builder::load_config(config_path);
      preset_label = config_path;
    } else if (preset == "commercial") {
      cfg.options.resource = builder::bcm53154_reference();
    } else if (preset == "star") {
      cfg.options.resource = builder::paper_customized(3);
    } else if (preset == "linear") {
      cfg.options.resource = builder::paper_customized(2);
    } else if (preset == "ring") {
      cfg.options.resource = builder::paper_customized(1);
    } else if (preset == "case1") {
      cfg.options.resource = builder::table1_case1();
    } else if (preset == "case2") {
      cfg.options.resource = builder::table1_case2();
    } else if (preset.empty()) {
      cfg.options.resource = plan_for(spec).config;
    } else {
      throw UsageError("unknown --preset '" + preset + "'");
    }
    if (!preset.empty()) preset_label = preset;
    cfg.options.runtime.slot_size = spec.slot;
    cfg.use_itp = !parser.get_bool("no-itp");
    cfg.built = std::move(spec.built);
    cfg.flows = std::move(spec.flows);
    shorten_for_soundness(cfg);
    targets.push_back({"scenario", std::move(cfg)});
  }

  const telemetry::RunManifest manifest = telemetry::make_manifest(
      "bound " + (suite.empty() ? scenario_label(parser) : "suite=" + suite),
      preset_label, targets.front().cfg.options.seed);

  bool violated = false;
  std::string json_targets;
  for (BoundTarget& target : targets) {
    const verify::VerifyInput vin = verify::verify_input_from(target.cfg);
    bound::BoundInput bin = verify::bound_input_for(vin);
    if (vin.plan.has_value()) bin.plan = &*vin.plan;
    const bound::BoundReport report = bound::analyze(bin);

    std::optional<bound::MeasuredObservables> measured;
    std::vector<std::string> violations;
    if (soundness) {
      const netsim::ScenarioResult result = netsim::run_scenario(std::move(target.cfg));
      bound::MeasuredObservables m;
      m.ts_latency_max_us = result.ts.latency_us.max();
      m.peak_ts_queue = result.peak_ts_queue;
      m.peak_buffer_in_use = result.peak_buffer_in_use;
      m.faults_active = result.fault_actions > 0;
      measured = m;
      violations = bound::check_soundness(report, m);
      if (!violations.empty()) violated = true;
    }

    if (format == "json") {
      if (!json_targets.empty()) json_targets += ',';
      json_targets += "{\"name\":\"" + target.name +
                      "\",\"report\":" + report.to_json(per_hop);
      if (measured.has_value()) {
        std::ostringstream os;
        os << ",\"soundness\":{\"ts_latency_max_us\":" << measured->ts_latency_max_us
           << ",\"peak_ts_queue\":" << measured->peak_ts_queue
           << ",\"peak_buffer_in_use\":" << measured->peak_buffer_in_use
           << ",\"violations\":[";
        for (std::size_t i = 0; i < violations.size(); ++i) {
          if (i > 0) os << ',';
          os << '"' << violations[i] << '"';
        }
        os << "]}";
        json_targets += os.str();
      }
      json_targets += '}';
    } else {
      if (targets.size() > 1) out += "== " + target.name + " ==\n";
      out += report.render_text(per_hop);
      if (measured.has_value()) {
        std::ostringstream os;
        os << "soundness: measured TS max " << measured->ts_latency_max_us
           << " us, peak TS queue " << measured->peak_ts_queue
           << " frame(s), peak buffers " << measured->peak_buffer_in_use << "\n";
        out += os.str();
        if (violations.empty()) {
          out += "soundness: every measured observable is within its bound\n";
        } else {
          for (const std::string& v : violations) out += "VIOLATION: " + v + "\n";
        }
      }
    }
  }

  if (format == "json") {
    out += "{\"manifest\":" + manifest.to_json() + ",\"targets\":[" + json_targets + "]}\n";
  } else {
    out += "# manifest: " + manifest.to_json() + "\n";
  }
  return violated ? 1 : 0;
}

// --- tsnb explain ---------------------------------------------------

int cmd_explain(const std::vector<std::string>& args, std::string& out) {
  ArgParser parser;
  // "--frame" filters by sequence number here; the scenario's frame size
  // moves to "--frame-bytes".
  add_scenario_options(parser, "frame-bytes");
  parser.add_option("duration-ms", "traffic duration in milliseconds", "25");
  parser.add_option("seed", "simulation seed", "7");
  parser.add_option("config", "use this saved resource configuration instead of planning",
                    "");
  parser.add_option("suite", "explain a named set: 'examples' runs and explains "
                    "every example scenario", "");
  parser.add_option("faults",
                    "fault profile injected during the run: none | link-down | "
                    "link-flap | reboot | gm-loss | corrupt | random", "none");
  parser.add_option("flow", "restrict to this flow id", "");
  parser.add_option("frame", "restrict to this sequence number (requires --flow)", "");
  parser.add_option("worst-k", "delivered occurrences retained per flow", "4");
  parser.add_option("limit", "frames rendered per target (0 = all retained)", "16");
  parser.add_option("format", "text | json", "text");
  parser.add_option("out", "write the report to this file as well", "");
  parser.add_flag("drops", "only dropped or deadline-missed frames");
  if (!parser.parse(args)) {
    out = parser.error() + "\n\nusage: tsnb explain [options]\n" + parser.usage();
    return 2;
  }

  const std::string format = parser.get("format");
  usage_require(format == "text" || format == "json",
                "unknown --format '" + format + "' (text|json)");
  flight::ExplainFilter filter;
  const std::string flow_arg = parser.get("flow");
  if (!flow_arg.empty()) {
    const auto flow = parser.get_int("flow");
    usage_require(flow.has_value() && *flow >= 0, "invalid --flow");
    filter.flow = static_cast<net::FlowId>(*flow);
  }
  const std::string frame_arg = parser.get("frame");
  if (!frame_arg.empty()) {
    usage_require(filter.flow.has_value(), "--frame requires --flow");
    const auto frame = parser.get_int("frame");
    usage_require(frame.has_value() && *frame >= 0, "invalid --frame");
    filter.sequence = static_cast<std::uint64_t>(*frame);
  }
  filter.drops_only = parser.get_bool("drops");
  const auto limit = parser.get_int("limit");
  usage_require(limit.has_value() && *limit >= 0, "invalid --limit");
  filter.limit = static_cast<std::size_t>(*limit);
  const auto worst_k = parser.get_int("worst-k");
  usage_require(worst_k.has_value() && *worst_k >= 1, "invalid --worst-k");

  const std::string fault_profile = parser.get("faults");
  usage_require(fault_profile == "none" || fault::is_profile(fault_profile),
                "unknown --faults profile '" + fault_profile + "'");

  std::vector<BoundTarget> targets;
  const std::string suite = parser.get("suite");
  if (!suite.empty()) {
    usage_require(suite == "examples", "unknown --suite '" + suite + "' (examples)");
    targets = bound_examples_suite();
  } else {
    ScenarioSpec spec = build_scenario(parser, "frame-bytes");
    netsim::ScenarioConfig cfg;
    const std::string config_path = parser.get("config");
    if (config_path.empty()) {
      cfg.options.resource = plan_for(spec).config;
    } else {
      cfg.options.resource = builder::load_config(config_path);
    }
    cfg.options.runtime.slot_size = spec.slot;
    cfg.options.seed = static_cast<std::uint64_t>(parser.get_int("seed").value_or(7));
    cfg.built = std::move(spec.built);
    cfg.flows = std::move(spec.flows);
    cfg.warmup = milliseconds(200);
    cfg.traffic_duration = milliseconds(parser.get_int("duration-ms").value_or(25));
    targets.push_back({"scenario", std::move(cfg)});
  }
  if (fault_profile != "none") {
    for (BoundTarget& target : targets) {
      target.cfg.faults = fault::profile_plan(fault_profile, target.cfg.built.topology,
                                              target.cfg.traffic_duration);
    }
  }

  std::string report_out;
  std::string json_targets;
  for (BoundTarget& target : targets) {
    // The static bound is the budget column of the waterfall; compute it
    // from the same config the simulation consumes.
    const verify::VerifyInput vin = verify::verify_input_from(target.cfg);
    bound::BoundInput bin = verify::bound_input_for(vin);
    if (vin.plan.has_value()) bin.plan = &*vin.plan;
    const bound::BoundReport bounds = bound::analyze(bin);

    flight::FlightRecorder::Options rec_options;
    rec_options.worst_k = static_cast<std::size_t>(*worst_k);
    flight::FlightRecorder recorder(rec_options);
    target.cfg.observe.flight = &recorder;
    // run_scenario consumes the config; keep what the renderer needs.
    const topo::Topology topology = target.cfg.built.topology;
    const Duration slot = target.cfg.options.runtime.slot_size;
    const netsim::ScenarioResult result = netsim::run_scenario(std::move(target.cfg));
    const flight::FlightReport report = recorder.report(result.sim_end);

    flight::ExplainContext ctx;
    ctx.topology = &topology;
    ctx.bounds = &bounds;
    ctx.slot = slot;
    if (format == "json") {
      if (!json_targets.empty()) json_targets += ',';
      json_targets += "{\"name\":\"" + target.name +
                      "\",\"explain\":" + flight::render_json(report, ctx, filter) + "}";
    } else {
      if (targets.size() > 1) report_out += "== " + target.name + " ==\n";
      report_out += flight::render_text(report, ctx, filter);
    }
  }
  if (format == "json") {
    report_out = "{\"targets\":[" + json_targets + "]}\n";
  }

  out += report_out;
  const std::string out_path = parser.get("out");
  if (!out_path.empty()) write_text_file(out_path, report_out);
  return 0;
}

const char kTopUsage[] =
    "tsnb — TSN-Builder command line\n"
    "\n"
    "subcommands:\n"
    "  plan      derive resource parameters for an application (guidelines 1-5)\n"
    "  simulate  plan (or --config), then verify by discrete-event simulation\n"
    "            (alias: run; --metrics-out/--timeline-out/--trace-out export\n"
    "            the run's observability artifacts)\n"
    "  verify    static configuration & schedule checks, no simulation\n"
    "  bound     static worst-case latency & backlog bounds (network\n"
    "            calculus; --soundness cross-checks against a simulation)\n"
    "  explain   per-frame forensics: run with the flight recorder attached\n"
    "            and print each retained frame's causal waterfall (per-hop\n"
    "            spent vs bound budget, drop causes, fault annotations)\n"
    "  report    print a preset's or saved config's Table III-style report\n"
    "  campaign  run a scenario matrix in parallel, exporting JSONL/CSV rows\n"
    "  frer      802.1CB replication + mid-run link-cut failover demo\n"
    "  bench     kernel & dataplane throughput baseline (BENCH_kernel.json)\n"
    "  help      this message\n"
    "\n"
    "global options:\n"
    "  --log-level trace|debug|info|warn|error|off   (or env TSNB_LOG)\n"
    "\n"
    "exit codes: 0 success, 1 runtime/verification failure, 2 usage error.\n"
    "run 'tsnb <subcommand> --help' equivalent: invalid options print usage.\n";

}  // namespace

int run_tsnb(const std::vector<std::string>& args_in, std::string& out) {
  try {
    // TSNB_LOG first; an explicit --log-level (anywhere on the line) wins.
    (void)Logger::instance().init_from_env();
    std::vector<std::string> args;
    args.reserve(args_in.size());
    for (std::size_t i = 0; i < args_in.size(); ++i) {
      const std::string& arg = args_in[i];
      std::string value;
      if (arg == "--log-level") {
        usage_require(i + 1 < args_in.size(), "--log-level needs a value");
        value = args_in[++i];
      } else if (arg.rfind("--log-level=", 0) == 0) {
        value = arg.substr(sizeof("--log-level=") - 1);
      } else {
        args.push_back(arg);
        continue;
      }
      const std::optional<LogLevel> level = parse_log_level(value);
      usage_require(level.has_value(), "unknown --log-level '" + value +
                                           "' (trace|debug|info|warn|error|off)");
      Logger::instance().set_level(*level);
    }

    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out = kTopUsage;
      return args.empty() ? 2 : 0;
    }
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "plan") return cmd_plan(rest, out);
    if (args[0] == "simulate" || args[0] == "run") return cmd_simulate(rest, out);
    if (args[0] == "verify") return cmd_verify(rest, out);
    if (args[0] == "bound") return cmd_bound(rest, out);
    if (args[0] == "explain") return cmd_explain(rest, out);
    if (args[0] == "report") return cmd_report(rest, out);
    if (args[0] == "campaign") return cmd_campaign(rest, out);
    if (args[0] == "frer") return cmd_frer(rest, out);
    if (args[0] == "bench") return cmd_bench(rest, out);
    out = "unknown subcommand '" + args[0] + "'\n\n" + kTopUsage;
    return 2;
  } catch (const UsageError& e) {
    out += std::string("usage error: ") + e.what() + "\n";
    return 2;
  } catch (const Error& e) {
    out += std::string("error: ") + e.what() + "\n";
    return 1;
  }
}

}  // namespace tsn::cli
