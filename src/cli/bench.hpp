// `tsnb bench` — the repository's performance baseline harness.
//
// Runs the discrete-event kernel microbench workloads (the same shapes as
// bench/micro_simulator) plus an end-to-end netsim throughput workload,
// and writes a machine-readable BENCH_kernel.json (events/sec, ns/event,
// sim-to-wall ratio, peak heap depth, manifest-stamped). CI runs
// `tsnb bench --quick` as a non-gating smoke; the JSON artifact is the
// trajectory future optimization PRs are measured against.
#pragma once

#include <string>
#include <vector>

namespace tsn::cli {

int cmd_bench(const std::vector<std::string>& args, std::string& out);

}  // namespace tsn::cli
