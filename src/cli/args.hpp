// Minimal command-line argument parser for the tsnb tool.
//
// Supports "--flag value", "--flag=value" and boolean "--flag" forms,
// with typed accessors, defaults, and an auto-generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tsn::cli {

class ArgParser {
 public:
  /// Declares an option (without the leading "--"). Declared options are
  /// listed in usage(); parse() rejects undeclared ones.
  void add_option(std::string name, std::string help, std::string default_value = "");
  void add_flag(std::string name, std::string help);

  /// Parses argv after the subcommand. Returns false (with a message in
  /// error()) on unknown options or missing values.
  [[nodiscard]] bool parse(const std::vector<std::string>& args);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(const std::string& name) const;
  [[nodiscard]] std::optional<double> get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] bool was_set(const std::string& name) const { return set_.contains(name); }

  [[nodiscard]] std::string usage() const;
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  std::vector<std::pair<std::string, Option>> options_;  // declaration order
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> set_;
  std::string error_;

  [[nodiscard]] const Option* find(const std::string& name) const;
};

}  // namespace tsn::cli
