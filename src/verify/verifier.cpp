#include "verify/verifier.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify {
namespace {

/// Derives the ITP plan the scenario runner would compute, so the
/// schedule rules always have one to check. Planning failures (no route,
/// bad slot) are already reported by the topology/resource passes, so a
/// throwing planner simply leaves the plan absent.
std::optional<sched::ItpPlan> derive_plan(const VerifyInput& input) {
  if (input.topology == nullptr || input.runtime.slot_size.ns() <= 0) return std::nullopt;
  const bool has_ts = std::any_of(
      input.flows.begin(), input.flows.end(), [](const traffic::FlowSpec& f) {
        return f.type == net::TrafficClass::kTimeSensitive;
      });
  if (!has_ts) return std::nullopt;
  try {
    return sched::ItpPlanner(*input.topology, input.runtime.slot_size).plan(input.flows);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

Report run(const VerifyInput& input) {
  Report report;
  internal::check_topology(input, report);

  const sched::ItpPlan* plan = nullptr;
  std::optional<sched::ItpPlan> derived;
  if (input.plan.has_value()) {
    plan = &*input.plan;
  } else if ((derived = derive_plan(input))) {
    plan = &*derived;
  }

  internal::check_schedule(input, plan, report);
  internal::check_bounds(input, plan, report);
  internal::check_resources(input, plan, report);
  internal::check_templates(input, report);
  internal::check_redundancy(input, report);

  report.sort();
  return report;
}

Report verify_scenario(const netsim::ScenarioConfig& config) {
  return run(verify_input_from(config));
}

VerifyInput verify_input_from(const netsim::ScenarioConfig& config) {
  VerifyInput input;
  input.topology = &config.built.topology;
  input.flows = config.flows;
  input.resource = config.options.resource;
  input.runtime = config.options.runtime;
  input.enable_gptp = config.options.enable_gptp;
  input.free_run_drift = config.options.free_run_drift;
  input.injection_margin = config.injection_margin;
  input.cbs_headroom = config.options.cbs_headroom;
  input.gate_mode = config.gate_mode == netsim::ScenarioConfig::GateMode::kQbv
                        ? VerifyInput::GateMode::kQbv
                        : VerifyInput::GateMode::kCqf;
  if (config.use_frer) {
    // Mirror the runner's FRER provisioning: every TS flow becomes a
    // replicated member stream under base + flow.id.
    for (const traffic::FlowSpec& flow : config.flows) {
      if (flow.type != net::TrafficClass::kTimeSensitive) continue;
      VerifyInput::FrerStream stream;
      stream.flow = flow.id;
      stream.secondary_vid = static_cast<VlanId>(
          static_cast<std::uint32_t>(config.frer_secondary_base_vid) + flow.id);
      stream.history_length = config.frer_history_length;
      input.frer_streams.push_back(stream);
    }
  }
  if (!config.use_itp && config.built.topology.node_count() > 0 &&
      config.options.runtime.slot_size.ns() > 0) {
    // Mirror the runner's ablation baseline: everything injects at period
    // start, so the schedule rules see the real (unbalanced) load.
    try {
      input.plan = sched::ItpPlanner(config.built.topology,
                                     config.options.runtime.slot_size)
                       .plan_naive(config.flows);
    } catch (const Error&) {
      // Unroutable flows are reported by the topology pass.
    }
  }
  return input;
}

bound::BoundInput bound_input_for(const VerifyInput& input) {
  bound::BoundInput bin;
  bin.topology = input.topology;
  bin.flows = input.flows;
  bin.slot = input.runtime.slot_size;
  bin.link_rate = input.runtime.link_rate;
  bin.processing_delay = input.runtime.processing_delay;
  bin.guard_band = input.runtime.guard_band;
  bin.preemption = input.runtime.preemption;
  bin.queue_depth = input.resource.queue_depth;
  bin.buffers_per_port = input.resource.buffers_per_port;
  bin.buffer_bytes = input.resource.buffer_bytes;
  bin.gate_mode = input.gate_mode == VerifyInput::GateMode::kQbv
                      ? bound::BoundInput::GateMode::kQbv
                      : bound::BoundInput::GateMode::kCqf;
  bin.injection_margin = input.injection_margin;
  bin.cbs_headroom = input.cbs_headroom;
  bin.frer = !input.frer_streams.empty();
  return bin;
}

Report verify_config(const sw::SwitchResourceConfig& resource,
                     const sw::SwitchRuntimeConfig& runtime) {
  VerifyInput input;
  input.resource = resource;
  input.runtime = runtime;
  return run(input);
}

}  // namespace tsn::verify
