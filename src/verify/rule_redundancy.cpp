// frer.* — FRER (802.1CB) member-stream configuration rules: talker and
// listener consistency, link-disjoint secondary paths, and sequence-
// recovery window sanity. Run whenever VerifyInput::frer_streams is
// non-empty (the campaign fail-fast populates it from use_frer).
#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>

#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

std::string stream_subject(net::FlowId flow) {
  return "flow[" + std::to_string(flow) + "].frer";
}

/// Switch-to-switch links of a route — what the secondary member must
/// avoid (host attachment links are shared by construction).
std::vector<topo::LinkId> backbone_of(const topo::Topology& topology,
                                      const std::vector<topo::Hop>& hops) {
  std::vector<topo::LinkId> used;
  for (const topo::Hop& hop : hops) {
    const topo::Link& link = topology.link(hop.link);
    if (topology.node(link.node_a).kind == topo::NodeKind::kSwitch &&
        topology.node(link.node_b).kind == topo::NodeKind::kSwitch) {
      used.push_back(hop.link);
    }
  }
  return used;
}

}  // namespace

void check_redundancy(const VerifyInput& input, Report& report) {
  if (input.frer_streams.empty()) return;

  // Index the flow set once; VID collision checks scan all flows.
  std::map<net::FlowId, const traffic::FlowSpec*> by_id;
  for (const traffic::FlowSpec& flow : input.flows) by_id.emplace(flow.id, &flow);

  std::map<net::FlowId, std::size_t> stream_count;
  std::map<VlanId, net::FlowId> secondary_owner;
  for (const VerifyInput::FrerStream& stream : input.frer_streams) {
    stream_count[stream.flow] += 1;
  }

  for (const VerifyInput::FrerStream& stream : input.frer_streams) {
    const std::string subject = stream_subject(stream.flow);

    const auto flow_it = by_id.find(stream.flow);
    if (flow_it == by_id.end()) {
      report.add("frer.member-flow", Severity::kError, subject,
                 "redundancy configured for a flow id that is not in the flow set");
      continue;
    }
    const traffic::FlowSpec& flow = *flow_it->second;
    if (stream_count.at(stream.flow) > 1) {
      report.add("frer.member-flow", Severity::kError, subject,
                 "flow has more than one FRER stream entry — talker "
                 "replication state would be ambiguous");
    }
    if (flow.type != net::TrafficClass::kTimeSensitive) {
      report.add("frer.member-flow", Severity::kError, subject,
                 "802.1CB replication is configured for a non-TS flow; only "
                 "time-sensitive streams are replicated");
    }

    // Talker/listener config consistency: the secondary member must be a
    // valid VID, distinct from the primary, and unique network-wide —
    // classification tables key on (MACs, VID, priority), so a reused
    // VID would merge member streams.
    bool vid_ok = true;
    if (stream.secondary_vid < 1 || stream.secondary_vid > kMaxVlanId - 1) {
      report.add("frer.config", Severity::kError, subject,
                 "secondary VID " + std::to_string(stream.secondary_vid) +
                     " is outside the valid VLAN range [1, 4094]");
      vid_ok = false;
    }
    if (vid_ok && stream.secondary_vid == flow.vid) {
      report.add("frer.config", Severity::kError, subject,
                 "secondary VID equals the primary VID — both members would "
                 "follow the same forwarding entries");
      vid_ok = false;
    }
    if (vid_ok) {
      for (const traffic::FlowSpec& other : input.flows) {
        if (other.vid == stream.secondary_vid) {
          report.add("frer.config", Severity::kError, subject,
                     "secondary VID " + std::to_string(stream.secondary_vid) +
                         " collides with the primary VID of flow " +
                         std::to_string(other.id));
          vid_ok = false;
          break;
        }
      }
    }
    if (vid_ok) {
      const auto [owner, inserted] =
          secondary_owner.emplace(stream.secondary_vid, stream.flow);
      if (!inserted) {
        report.add("frer.config", Severity::kError, subject,
                   "secondary VID " + std::to_string(stream.secondary_vid) +
                       " is already the secondary of flow " +
                       std::to_string(owner->second));
      }
    }
    if (stream.history_length < 1) {
      report.add("frer.config", Severity::kError, subject,
                 "sequence-recovery history window must hold at least one entry");
    }

    // Disjoint-path check mirrors Network::provision_frer exactly: the
    // secondary must avoid every switch-to-switch link of the primary.
    if (input.topology == nullptr) continue;
    const topo::Topology& topology = *input.topology;
    if (flow.src_host >= topology.node_count() ||
        flow.dst_host >= topology.node_count()) {
      continue;  // topo.endpoint already reported
    }
    const auto primary = topology.route(flow.src_host, flow.dst_host);
    if (!primary.has_value()) continue;  // topo.no-route already reported
    const std::vector<topo::LinkId> used = backbone_of(topology, *primary);
    const auto secondary =
        topology.route_avoiding(flow.src_host, flow.dst_host, used);
    if (!secondary.has_value()) {
      report.add("frer.disjoint-path", Severity::kError, subject,
                 "no link-disjoint secondary path exists — replication "
                 "would ride the primary links and share their fate "
                 "(use a topology with redundant paths, e.g. a "
                 "bidirectional ring)");
      continue;
    }

    // Elimination-window sanity: under CQF each hop adds roughly one
    // slot, so member-path skew is |hops| difference x slot. The window
    // must cover the frames the fast member delivers while the slow
    // member's copy of an older sequence is still in flight.
    if (flow.period <= Duration::zero() || input.runtime.slot_size.ns() <= 0 ||
        stream.history_length < 1) {
      continue;
    }
    const auto hop_gap = static_cast<std::int64_t>(
        std::llabs(static_cast<long long>(secondary->size()) -
                   static_cast<long long>(primary->size())));
    const Duration skew = input.runtime.slot_size * hop_gap;
    const std::int64_t late_frames = (skew + flow.period - Duration(1)) / flow.period;
    const std::int64_t needed = late_frames + 2;
    if (static_cast<std::int64_t>(stream.history_length) < needed) {
      report.add("frer.elimination-window", Severity::kWarning, subject,
                 "history window of " + std::to_string(stream.history_length) +
                     " frames is smaller than the member-path skew needs (~" +
                     std::to_string(needed) +
                     "): late duplicates of the slow member would be "
                     "mistaken for fresh sequences");
    }
  }
}

}  // namespace tsn::verify::internal
