// Structured diagnostics for the static configuration verifier.
//
// Every finding carries a stable rule id ("cqf.slot-capacity"), a
// severity, a subject path naming the offending entity
// ("switch[2].port[1].queue[5]", "flow[12]", "config.queue_depth") and a
// human-readable message. Reports render as text ("error:
// rule: subject: message" lines) and as a machine-readable JSON object,
// so campaigns and CI can consume verification results without parsing
// prose.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::verify {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] std::string_view severity_name(Severity severity);

struct Diagnostic {
  std::string rule;     // stable rule id, e.g. "gcl.zero-interval"
  Severity severity = Severity::kError;
  std::string subject;  // entity path, e.g. "switch[2].port[1].queue[5]"
  std::string message;

  /// "error: cqf.slot-capacity: link[3].slot[7]: committed 9000 B ..."
  [[nodiscard]] std::string to_text() const;
  /// {"rule":"...","severity":"error","subject":"...","message":"..."}
  [[nodiscard]] std::string to_json() const;
};

/// An ordered collection of diagnostics from one verification pass.
class Report {
 public:
  void add(Diagnostic diagnostic);
  void add(std::string rule, Severity severity, std::string subject, std::string message);

  /// Appends every diagnostic of `other`, keeping order.
  void merge(Report other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t count(Severity severity) const;

  /// Highest severity present; kInfo for an empty report.
  [[nodiscard]] Severity max_severity() const;
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }
  /// Clean = free of errors AND warnings (info advice is allowed).
  [[nodiscard]] bool clean() const {
    return !has_errors() && count(Severity::kWarning) == 0;
  }

  /// True when any diagnostic carries this rule id.
  [[nodiscard]] bool has_rule(std::string_view rule) const;

  /// Sorts by (descending severity, rule, subject, message) — errors
  /// first, then a deterministic order within each severity.
  void sort();

  /// One line per diagnostic plus a "N error(s), M warning(s)" footer;
  /// "configuration verifies clean\n" for an empty report.
  [[nodiscard]] std::string render_text() const;

  /// {"diagnostics":[...],"errors":N,"warnings":N,"infos":N,
  ///  "max_severity":"error"|"warning"|"info"|"clean"}
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace tsn::verify
