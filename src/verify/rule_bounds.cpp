// bound.* rules — the error-level worst-case checks that replaced the
// Eq. 1 approximation: run the tsn::bound network-calculus analyzer over
// the verified scenario and fail flows whose *proved* worst-case latency
// exceeds their deadline, and configurations whose *proved* worst-case
// backlog exceeds the provisioned queue depth or per-port buffer pool.
#include <string>

#include "bound/analyzer.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

std::string flow_subject(net::FlowId id) { return "flow[" + std::to_string(id) + "]"; }

std::string us_str(Duration d) { return std::to_string(d.ns() / 1000) + " us"; }

std::string queue_subject(const bound::QueueBound& qb) {
  return "node[" + std::to_string(qb.node) + "].port[" + std::to_string(qb.port) +
         "].queue[" + std::to_string(qb.queue) + "]";
}

}  // namespace

void check_bounds(const VerifyInput& input, const sched::ItpPlan* plan, Report& report) {
  if (input.topology == nullptr || input.flows.empty()) return;
  if (input.runtime.slot_size.ns() <= 0) return;  // gcl.zero-interval owns this

  bound::BoundInput bin = bound_input_for(input);
  bin.plan = plan;
  const bound::BoundReport bounds = bound::analyze(bin);

  for (const bound::FlowBound& fb : bounds.flows) {
    if (fb.deadline.ns() <= 0) continue;
    if (!fb.bounded) {
      // A deadline without a provable bound is worth knowing about, but
      // BE flows legitimately have none — don't fail the scenario.
      report.add("bound.latency-deadline", Severity::kInfo, flow_subject(fb.flow),
                 "deadline " + us_str(fb.deadline) +
                     " declared but no finite worst-case latency bound exists: " + fb.note);
      continue;
    }
    if (fb.latency > fb.deadline) {
      std::string detail = "static worst-case latency " + us_str(fb.latency) + " (" +
                           std::to_string(fb.switch_hops) + " switch hops";
      if (fb.penalty_slots > 0) {
        detail += ", " + std::to_string(fb.penalty_slots) + " penalty slot(s)";
      }
      detail += ") exceeds the " + us_str(fb.deadline) + " deadline";
      report.add("bound.latency-deadline", Severity::kError, flow_subject(fb.flow), detail);
    }
  }

  for (const bound::QueueBound& qb : bounds.queues) {
    if (!qb.bounded) {
      report.add("bound.backlog-overflow", Severity::kError, queue_subject(qb),
                 "worst-case backlog diverges: the queue's arrivals exceed its "
                 "guaranteed service");
      continue;
    }
    if (qb.frames > input.resource.queue_depth) {
      report.add("bound.backlog-overflow", Severity::kError, queue_subject(qb),
                 "worst-case backlog of " + std::to_string(qb.frames) +
                     " frame(s) exceeds the provisioned queue depth of " +
                     std::to_string(input.resource.queue_depth));
    }
  }

  for (const bound::PortBound& pb : bounds.ports) {
    if (pb.bounded && pb.buffers > input.resource.buffers_per_port) {
      report.add("bound.backlog-overflow", Severity::kError,
                 "node[" + std::to_string(pb.node) + "].port[" + std::to_string(pb.port) +
                     "]",
                 "worst-case buffer demand of " + std::to_string(pb.buffers) +
                     " exceeds the provisioned " +
                     std::to_string(input.resource.buffers_per_port) + " buffers per port");
    }
  }
}

}  // namespace tsn::verify::internal
