// tsn::verify — static configuration & schedule verification.
//
// Runs BEFORE any simulation: takes the application description
// (topology + flows), the customized resource configuration, the runtime
// knobs and (optionally) an ITP injection plan, and checks that the
// whole stack is consistent — the fail-fast gate the campaign runner and
// the `tsnb verify` CLI use to reject invalid scenario points without
// burning simulation time.
//
// Rule catalog (stable ids; severity in parentheses):
//   topo.endpoint            (error)   flow src/dst is not an existing host node
//   topo.no-route            (error)   flow has no forwarding path
//   topo.flow-spec           (error)   FlowSpec fails its own validation
//   topo.unsynced            (error)   scheduled TS path without time sync
//                                      (gPTP off + free-running drift)
//   cqf.slot-capacity        (error)   per-(link, slot) committed wire bytes
//                                      exceed slot x link rate
//   cqf.deadline             (info)    (hops+1) x slot > deadline — the Eq. 1
//                                      approximation, kept as a cross-check
//                                      against the tighter bound.* analysis
//   cqf.period-alignment     (info)    TS period not a slot multiple (covered
//                                      by the hyperperiod ring, but offsets
//                                      drift across the slot grid)
//   bound.latency-deadline   (error)   static worst-case latency bound
//                                      (tsn::bound network-calculus analyzer)
//                                      exceeds the flow deadline; info when a
//                                      deadline flow admits no finite bound
//   bound.backlog-overflow   (error)   static worst-case backlog exceeds the
//                                      provisioned queue depth, or per-port
//                                      buffer demand exceeds buffers_per_port
//   itp.unknown-flow         (error)   plan references a flow id not in the set
//   itp.slot-range           (error)   injection slot outside [0, period/slot)
//   itp.wire-infeasible      (error)   plan's own peak load cannot serialize
//                                      within one slot
//   gcl.capacity             (error)   gate program needs more entries than
//                                      gate_table_size provisions
//   gcl.zero-interval        (error)   gate entry with a non-positive interval
//   gcl.cycle-mismatch       (warning) gate cycle does not tile the TS
//                                      hyperperiod
//   gcl.guard-band           (warning) no guard band / preemption while
//                                      best-effort frames can straddle a TS
//                                      slot boundary
//   resource.invalid         (error)   SwitchResourceConfig::validate() fails
//   resource.table-overflow  (error)   unicast/classification/meter entries
//                                      needed on some switch exceed the table
//   resource.queue-depth     (error)   queue_depth below the ITP peak load
//   resource.buffer-size     (error)   buffer_bytes below the largest frame
//   resource.buffer-budget   (warning) buffers_per_port below queue_depth x
//                                      queues_per_port (guideline 5 floor)
//   resource.bram-overflow   (error)   BRAM cost exceeds the target device
//                                      (warning above 90% utilization);
//                                      checked only when a device is given
//   frer.member-flow         (error)   FRER stream names an unknown/duplicate
//                                      flow id or a non-TS flow
//   frer.config              (error)   secondary VID invalid, equal to the
//                                      primary, or colliding with another
//                                      member/primary VID; empty recovery
//                                      window
//   frer.disjoint-path       (error)   no link-disjoint secondary path for a
//                                      replicated stream
//   frer.elimination-window  (warning) recovery history window smaller than
//                                      the member-path skew requires
//   template.cqf-queues      (error)   CQF queue pair outside the instantiated
//                                      queues_per_port range
//   template.cbs-underprovision (error) RC classes in use exceed cbs_table_size
//                                      (or cbs_map_size < cbs_table_size)
//   template.express-queues  (warning) preemption enabled but the CQF pair is
//                                      not express — TS frames are preemptable
//   template.redundant-guard (info)    guard band AND preemption both enabled
//                                      (the paper presents them as alternatives)
//   template.unused-multicast (info)   multicast table instantiated with no
//                                      multicast traffic (BRAM left on the table)
#pragma once

#include <optional>
#include <vector>

#include "bound/analyzer.hpp"
#include "netsim/scenario.hpp"
#include "resource/bram.hpp"
#include "sched/itp.hpp"
#include "switch/config.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"
#include "verify/diagnostic.hpp"

namespace tsn::verify {

/// Everything the verifier may inspect. `topology`/`flows` may be empty
/// for config-only verification (resource + template rules still run).
struct VerifyInput {
  const topo::Topology* topology = nullptr;
  std::vector<traffic::FlowSpec> flows;

  sw::SwitchResourceConfig resource;
  sw::SwitchRuntimeConfig runtime;

  /// Mirror of netsim::NetworkOptions time-sync knobs.
  bool enable_gptp = true;
  bool free_run_drift = false;

  enum class GateMode : std::uint8_t { kCqf, kQbv };
  GateMode gate_mode = GateMode::kCqf;

  /// ScenarioConfig/NetworkOptions mirrors the bound.* rules need: talker
  /// placement inside the planned slot and the CBS policing headroom.
  Duration injection_margin = microseconds(2);
  double cbs_headroom = 0.10;

  /// Injection plan to check. When absent and a topology + TS flows are
  /// given, the verifier plans one itself (ItpPlanner) so the schedule
  /// rules always run.
  std::optional<sched::ItpPlan> plan;

  /// Target FPGA part for the BRAM budget rule; nullopt skips the check
  /// (a customized switch need not target the paper's Zynq-7020).
  std::optional<resource::DevicePart> device;

  /// FRER (802.1CB) member-stream configuration, one entry per
  /// replicated flow — what the frer.* rules check. Empty when
  /// redundancy is unused.
  struct FrerStream {
    net::FlowId flow = 0;
    VlanId secondary_vid = 0;
    std::size_t history_length = 64;
  };
  std::vector<FrerStream> frer_streams;
};

/// Runs every applicable rule and returns the sorted report.
[[nodiscard]] Report run(const VerifyInput& input);

/// Convenience: verifies a fully assembled scenario (what the campaign
/// fail-fast hook and `tsnb verify` call).
[[nodiscard]] Report verify_scenario(const netsim::ScenarioConfig& config);

/// The VerifyInput verify_scenario builds, exposed so other consumers of
/// a scenario (the bound analyzer behind `tsnb bound` and the campaign's
/// bound_* columns) see exactly the verified configuration. The returned
/// input points into `config`; keep the scenario alive while using it.
[[nodiscard]] VerifyInput verify_input_from(const netsim::ScenarioConfig& config);

/// Adapts a VerifyInput for the network-calculus analyzer (the same
/// translation the bound.* rules use). `plan` is NOT populated — pass the
/// effective plan separately (BoundInput::plan) or let analyze() derive
/// one. Pointers reference `input`; keep it alive.
[[nodiscard]] bound::BoundInput bound_input_for(const VerifyInput& input);

/// Config-only verification: resource + template rules, no workload.
[[nodiscard]] Report verify_config(const sw::SwitchResourceConfig& resource,
                                   const sw::SwitchRuntimeConfig& runtime = {});

}  // namespace tsn::verify
