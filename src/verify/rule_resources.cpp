#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "builder/switch_builder.hpp"
#include "common/error.hpp"
#include "resource/report.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

/// What each provisioned flow costs in table entries on every switch of
/// its route — mirrors netsim::Network::provision(): one unicast entry
/// per distinct (dst, vid), one classification entry per distinct
/// (src, dst, vid, priority), one meter per RC flow.
struct SwitchDemand {
  std::set<std::pair<topo::NodeId, VlanId>> unicast;
  std::set<std::tuple<topo::NodeId, topo::NodeId, VlanId, Priority>> classification;
  std::int64_t meters = 0;
};

void overflow(Report& report, topo::NodeId node, const std::string& table,
              std::int64_t needed, std::int64_t size) {
  report.add("resource.table-overflow", Severity::kError,
             "switch[" + std::to_string(node) + "]." + table,
             "provisioning needs " + std::to_string(needed) + " " + table +
                 " entries but the table holds " + std::to_string(size));
}

void check_table_demand(const VerifyInput& input, Report& report) {
  if (input.topology == nullptr) return;
  std::map<topo::NodeId, SwitchDemand> demand;
  const std::size_t nodes = input.topology->node_count();
  for (const traffic::FlowSpec& flow : input.flows) {
    if (flow.src_host >= nodes || flow.dst_host >= nodes) continue;  // topo.endpoint
    const auto route = input.topology->route(flow.src_host, flow.dst_host);
    if (!route) continue;  // topo.no-route already reported
    for (const topo::Hop& hop : *route) {
      if (input.topology->node(hop.node).kind != topo::NodeKind::kSwitch) continue;
      SwitchDemand& d = demand[hop.node];
      d.unicast.emplace(flow.dst_host, flow.vid);
      d.classification.emplace(flow.src_host, flow.dst_host, flow.vid, flow.priority);
      if (flow.type == net::TrafficClass::kRateConstrained) ++d.meters;
    }
  }

  for (const auto& [node, d] : demand) {
    const auto unicast = static_cast<std::int64_t>(d.unicast.size());
    const auto classes = static_cast<std::int64_t>(d.classification.size());
    if (unicast > input.resource.unicast_table_size) {
      overflow(report, node, "unicast_table", unicast, input.resource.unicast_table_size);
    }
    if (classes > input.resource.classification_table_size) {
      overflow(report, node, "classification_table", classes,
               input.resource.classification_table_size);
    }
    if (d.meters > input.resource.meter_table_size) {
      overflow(report, node, "meter_table", d.meters, input.resource.meter_table_size);
    }
  }
}

void check_provisioning(const VerifyInput& input, const sched::ItpPlan* plan,
                        Report& report) {
  const sw::SwitchResourceConfig& res = input.resource;

  if (plan != nullptr && plan->max_queue_load > res.queue_depth) {
    report.add("resource.queue-depth", Severity::kError, "config.queue_depth",
               "ITP peak per-(link, slot) load is " + std::to_string(plan->max_queue_load) +
                   " frames but queue_depth provisions " + std::to_string(res.queue_depth) +
                   " (paper guideline 4)");
  }

  std::int64_t worst_frame = 0;
  for (const traffic::FlowSpec& f : input.flows) {
    worst_frame = std::max(worst_frame, f.frame_bytes);
  }
  if (worst_frame > res.buffer_bytes) {
    report.add("resource.buffer-size", Severity::kError, "config.buffer_bytes",
               "largest provisioned frame is " + std::to_string(worst_frame) +
                   " B but each buffer holds " + std::to_string(res.buffer_bytes) + " B");
  }

  const std::int64_t budget = res.queue_depth * res.queues_per_port;
  if (res.buffers_per_port < budget && res.queue_depth > 0 && res.queues_per_port > 0) {
    report.add("resource.buffer-budget", Severity::kWarning, "config.buffers_per_port",
               std::to_string(res.buffers_per_port) + " buffers per port cannot back " +
                   std::to_string(res.queues_per_port) + " queues x " +
                   std::to_string(res.queue_depth) + " depth = " + std::to_string(budget) +
                   " metadata slots (paper guideline 5 floor)");
  }
}

void check_bram(const VerifyInput& input, Report& report) {
  if (!input.device.has_value()) return;
  double util = 0.0;
  try {
    util = builder::SwitchBuilder()
               .with_resources(input.resource)
               .report()
               .utilization_on(*input.device);
  } catch (const Error&) {
    return;  // invalid config already reported by resource.invalid
  }
  if (util <= 0.9) return;
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%.1f%%", util * 100.0);
  const std::string subject = "device[" + input.device->name + "]";
  if (util > 1.0) {
    report.add("resource.bram-overflow", Severity::kError, subject,
               "configuration prices at " + std::string(pct) + " of the device's BRAM — "
                   "it does not fit");
  } else {
    report.add("resource.bram-overflow", Severity::kWarning, subject,
               "configuration prices at " + std::string(pct) + " of the device's BRAM — "
                   "little headroom for the surrounding design");
  }
}

}  // namespace

void check_resources(const VerifyInput& input, const sched::ItpPlan* plan, Report& report) {
  bool valid = true;
  try {
    input.resource.validate();
  } catch (const Error& e) {
    report.add("resource.invalid", Severity::kError, "config", e.what());
    valid = false;
  }
  try {
    input.runtime.validate();
  } catch (const Error& e) {
    report.add("resource.invalid", Severity::kError, "runtime", e.what());
  }

  check_table_demand(input, report);
  check_provisioning(input, plan, report);
  if (valid) check_bram(input, report);
}

}  // namespace tsn::verify::internal
