#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/ethernet.hpp"
#include "sched/cqf_analysis.hpp"
#include "sched/qbv.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

std::string flow_subject(net::FlowId id) { return "flow[" + std::to_string(id) + "]"; }

std::string us_str(Duration d) { return std::to_string(d.ns() / 1000) + " us"; }

/// TS flows that passed their own validation and have a route — the only
/// ones the schedule rules can reason about (the rest are already
/// reported by the topology pass).
struct TsEntry {
  const traffic::FlowSpec* flow;
  std::vector<topo::Hop> hops;
};

std::vector<TsEntry> plannable_ts_flows(const VerifyInput& input) {
  std::vector<TsEntry> out;
  if (input.topology == nullptr) return out;
  const std::size_t nodes = input.topology->node_count();
  for (const traffic::FlowSpec& f : input.flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    if (f.period.ns() <= 0) continue;
    // Nonexistent endpoints are topo.endpoint findings, not plannable flows.
    if (f.src_host >= nodes || f.dst_host >= nodes) continue;
    auto hops = input.topology->route(f.src_host, f.dst_host);
    if (!hops.has_value()) continue;
    out.push_back(TsEntry{&f, std::move(*hops)});
  }
  return out;
}

void check_deadlines(const VerifyInput& input, const std::vector<TsEntry>& ts,
                     Report& report) {
  const Duration slot = input.runtime.slot_size;
  for (const TsEntry& e : ts) {
    if (e.flow->deadline.ns() <= 0) continue;
    std::int64_t hops = 0;  // switches traversed, as sched::hop_count counts them
    for (const topo::Hop& h : e.hops) {
      if (input.topology->node(h.node).kind == topo::NodeKind::kSwitch) ++hops;
    }
    const Duration worst = sched::cqf_bounds(hops, slot).max;
    if (worst > e.flow->deadline) {
      // Cross-check only: the error-level deadline gate is the tighter
      // bound.latency-deadline rule (tsn::bound analyzer); Eq. 1 ignores
      // the injection margin and per-slot drain and over-approximates.
      report.add("cqf.deadline", Severity::kInfo, flow_subject(e.flow->id),
                 "Eq. 1 approximation (" + std::to_string(hops) + " hops + 1) x " +
                     us_str(slot) + " slot = " + us_str(worst) + " exceeds the " +
                     us_str(e.flow->deadline) + " deadline; see bound.latency-deadline "
                     "for the exact pipeline bound");
    }
  }
}

void check_period_alignment(const VerifyInput& input, const std::vector<TsEntry>& ts,
                            Report& report) {
  const Duration slot = input.runtime.slot_size;
  const bool qbv = input.gate_mode == VerifyInput::GateMode::kQbv;
  std::set<std::int64_t> seen;
  for (const TsEntry& e : ts) {
    const std::int64_t period = e.flow->period.ns();
    if (period % slot.ns() == 0 || !seen.insert(period).second) continue;
    if (qbv) {
      // QbvSynthesizer requires slot-aligned periods: windows would not
      // repeat within the scheduling cycle.
      report.add("gcl.cycle-mismatch", Severity::kWarning, flow_subject(e.flow->id),
                 "TS period " + us_str(e.flow->period) + " is not a multiple of the " +
                     us_str(slot) + " slot — Qbv gate windows cannot tile the "
                     "scheduling cycle");
    } else {
      report.add("cqf.period-alignment", Severity::kInfo, flow_subject(e.flow->id),
                 "TS period " + us_str(e.flow->period) + " is not a multiple of the " +
                     us_str(slot) + " slot; injections drift across the slot grid "
                     "(covered by the hyperperiod ring, but bounds are per-slot)");
    }
  }
}

void check_plan(const VerifyInput& input, const std::vector<TsEntry>& ts,
                const sched::ItpPlan& plan, Report& report) {
  const Duration slot = plan.slot.ns() > 0 ? plan.slot : input.runtime.slot_size;

  std::map<net::FlowId, const TsEntry*> by_id;
  for (const TsEntry& e : ts) by_id.emplace(e.flow->id, &e);

  for (const auto& [id, inj_slot] : plan.injection_slot) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      report.add("itp.unknown-flow", Severity::kError, flow_subject(id),
                 "injection plan references flow " + std::to_string(id) +
                     " which is not a plannable TS flow of this scenario");
      continue;
    }
    const std::int64_t period_slots =
        std::max<std::int64_t>(1, it->second->flow->period / slot);
    if (inj_slot < 0 || inj_slot >= period_slots) {
      report.add("itp.slot-range", Severity::kError, flow_subject(id),
                 "injection slot " + std::to_string(inj_slot) + " outside [0, " +
                     std::to_string(period_slots) + ") for a " +
                     us_str(it->second->flow->period) + " period on a " + us_str(slot) +
                     " slot grid");
    }
  }

  if (!plan.wire_feasible) {
    report.add("itp.wire-infeasible", Severity::kError, "plan",
               "peak per-slot load of " + std::to_string(plan.max_queue_load) +
                   " frames cannot serialize within one " + us_str(slot) +
                   " slot on the wire");
  }

  // Per-(link, slot) committed wire bits over the hyperperiod ring — the
  // same cells the planner balances, weighted by frame size instead of
  // frame count, compared against what each link can carry in one slot.
  if (plan.slots_per_hyperperiod <= 0 || slot.ns() <= 0 || input.topology == nullptr) {
    return;
  }
  const std::int64_t ring = plan.slots_per_hyperperiod;
  std::map<std::pair<topo::LinkId, std::int64_t>, std::int64_t> committed_bits;
  for (const TsEntry& e : ts) {
    const auto it = plan.injection_slot.find(e.flow->id);
    if (it == plan.injection_slot.end()) continue;
    const std::int64_t bits = net::wire_bits(e.flow->frame_bytes).bits();
    const std::int64_t occurrences =
        std::max<std::int64_t>(1, plan.hyperperiod / e.flow->period);
    for (std::int64_t k = 0; k < occurrences; ++k) {
      const std::int64_t inject_ns = k * e.flow->period.ns() + it->second * slot.ns();
      const std::int64_t base_slot = inject_ns / slot.ns();
      for (std::size_t j = 0; j < e.hops.size(); ++j) {
        const std::int64_t s = (base_slot + static_cast<std::int64_t>(j)) % ring;
        committed_bits[{e.hops[j].link, s}] += bits;
      }
    }
  }

  // Report only the worst cell per link: one overloaded link tends to
  // overflow many of its slots and a diagnostic per cell would drown the
  // signal.
  std::map<topo::LinkId, std::pair<std::int64_t, std::int64_t>> worst;  // link -> (slot, bits)
  for (const auto& [cell, bits] : committed_bits) {
    auto& w = worst[cell.first];
    if (bits > w.second) w = {cell.second, bits};
  }
  for (const auto& [link_id, cell] : worst) {
    const std::int64_t capacity = input.topology->link(link_id).rate.bits_in(slot).bits();
    if (cell.second <= capacity) continue;
    report.add("cqf.slot-capacity", Severity::kError,
               "link[" + std::to_string(link_id) + "].slot[" + std::to_string(cell.first) +
                   "]",
               "committed " + std::to_string(cell.second / 8) + " B of wire time but the "
                   "link carries at most " + std::to_string(capacity / 8) + " B per " +
                   us_str(slot) + " slot");
  }
}

void check_gates(const VerifyInput& input, const std::vector<TsEntry>& ts,
                 const sched::ItpPlan* plan, Report& report) {
  const Duration slot = input.runtime.slot_size;
  if (slot.ns() <= 0) {
    report.add("gcl.zero-interval", Severity::kError, "runtime.slot_size",
               "slot size " + std::to_string(slot.ns()) + " ns would synthesize "
                   "gate entries with non-positive intervals");
    return;  // every other gate rule divides by the slot
  }

  if (input.gate_mode == VerifyInput::GateMode::kCqf) {
    const std::int64_t needed = sched::gate_entries_for_cqf();
    if (input.resource.gate_table_size < needed) {
      report.add("gcl.capacity", Severity::kError, "config.gate_table_size",
                 "CQF ping-pong program needs " + std::to_string(needed) +
                     " gate entries but gate_table_size provisions " +
                     std::to_string(input.resource.gate_table_size));
    }
  } else if (input.topology != nullptr && !ts.empty()) {
    // Synthesize the per-slot Qbv program the switches would run and
    // compare its largest egress GCL against the provisioned table.
    std::vector<traffic::FlowSpec> flows = input.flows;
    if (plan != nullptr) plan->apply(flows);
    try {
      const sched::QbvProgram program =
          sched::QbvSynthesizer(*input.topology, slot).synthesize(flows);
      if (program.required_gate_entries() > input.resource.gate_table_size) {
        report.add("gcl.capacity", Severity::kError, "config.gate_table_size",
                   "synthesized Qbv program needs " +
                       std::to_string(program.required_gate_entries()) +
                       " gate entries on its busiest port but gate_table_size "
                       "provisions " + std::to_string(input.resource.gate_table_size));
      }
    } catch (const Error&) {
      // Unsatisfiable synthesis preconditions (misaligned periods, missing
      // routes) are already reported by cycle-mismatch / topo rules.
    }
  }

  // Guard bands and preemption are the two slot-boundary protections the
  // paper offers; with neither, a background frame serialized late in a
  // slot straddles into the next TS window.
  if (!input.runtime.guard_band && !input.runtime.preemption && !ts.empty()) {
    std::int64_t worst_bg = 0;
    for (const traffic::FlowSpec& f : input.flows) {
      if (f.type == net::TrafficClass::kTimeSensitive) continue;
      worst_bg = std::max(worst_bg, f.frame_bytes);
    }
    if (worst_bg > 0) {
      const Duration straddle =
          input.runtime.link_rate.transmission_time(net::wire_bits(worst_bg));
      report.add("gcl.guard-band", Severity::kWarning, "runtime.guard_band",
                 "no guard band and no preemption: a " + std::to_string(worst_bg) +
                     " B background frame started at a slot boundary occupies " +
                     us_str(straddle) + " of the next " + us_str(slot) + " TS slot");
    }
  }
}

}  // namespace

void check_schedule(const VerifyInput& input, const sched::ItpPlan* plan, Report& report) {
  if (input.runtime.slot_size.ns() <= 0) {
    // check_gates reports the defect; nothing else is computable.
    check_gates(input, {}, plan, report);
    return;
  }
  const std::vector<TsEntry> ts = plannable_ts_flows(input);
  check_deadlines(input, ts, report);
  check_period_alignment(input, ts, report);
  if (plan != nullptr) check_plan(input, ts, *plan, report);
  check_gates(input, ts, plan, report);
}

}  // namespace tsn::verify::internal
