// Internal interface between the verifier driver and its rule passes.
// Each pass appends diagnostics for one concern; verifier.cpp owns the
// orchestration (plan derivation, pass ordering, final sort).
#pragma once

#include "sched/itp.hpp"
#include "verify/diagnostic.hpp"
#include "verify/verifier.hpp"

namespace tsn::verify::internal {

/// topo.* — endpoints, routes, per-flow validation, time-sync sanity.
void check_topology(const VerifyInput& input, Report& report);

/// cqf.* / itp.* / gcl.* — slot capacity, deadlines, injection plan
/// feasibility, gate-control-list consistency. `plan` is the effective
/// plan (caller-provided or verifier-derived); may be nullptr when no
/// topology/TS flows exist to plan against.
void check_schedule(const VerifyInput& input, const sched::ItpPlan* plan, Report& report);

/// bound.* — static worst-case latency vs deadlines and worst-case
/// backlog vs provisioned queues/buffers, from the tsn::bound
/// network-calculus analyzer. Same `plan` contract as check_schedule.
void check_bounds(const VerifyInput& input, const sched::ItpPlan* plan, Report& report);

/// resource.* — parameter ranges, per-switch table demand, queue/buffer
/// provisioning, BRAM budget vs the target device.
void check_resources(const VerifyInput& input, const sched::ItpPlan* plan, Report& report);

/// template.* — Table II composition rules between enabled features.
void check_templates(const VerifyInput& input, Report& report);

/// frer.* — 802.1CB member-stream consistency, disjoint secondary
/// paths, and sequence-recovery window sanity.
void check_redundancy(const VerifyInput& input, Report& report);

}  // namespace tsn::verify::internal
