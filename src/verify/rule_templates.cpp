#include <algorithm>
#include <set>
#include <string>

#include "traffic/flow.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

bool is_express(const sw::SwitchRuntimeConfig& rt, std::uint8_t queue) {
  return (rt.express_queues & (1u << queue)) != 0;
}

}  // namespace

void check_templates(const VerifyInput& input, Report& report) {
  const sw::SwitchResourceConfig& res = input.resource;
  const sw::SwitchRuntimeConfig& rt = input.runtime;

  // The CQF redirection targets two concrete queue ids; a customization
  // that trims queues_per_port below them synthesizes a Gate Ctrl whose
  // program names queues the egress stage never instantiated.
  if (rt.enable_cqf && rt.cqf_queue_a < 8 && rt.cqf_queue_b < 8) {
    const std::uint8_t top = std::max(rt.cqf_queue_a, rt.cqf_queue_b);
    if (top >= res.queues_per_port) {
      report.add("template.cqf-queues", Severity::kError, "config.queues_per_port",
                 "CQF queue pair (" + std::to_string(rt.cqf_queue_a) + ", " +
                     std::to_string(rt.cqf_queue_b) + ") requires queues_per_port >= " +
                     std::to_string(top + 1) + " but only " +
                     std::to_string(res.queues_per_port) + " are instantiated");
    }
  }

  // One CBS shaper is bound per RC queue in use; both the shaper table
  // and the queue->shaper map must cover that count.
  std::set<Priority> rc_queues;
  bool has_ts = false;
  for (const traffic::FlowSpec& f : input.flows) {
    if (f.type == net::TrafficClass::kRateConstrained) rc_queues.insert(f.priority);
    if (f.type == net::TrafficClass::kTimeSensitive) has_ts = true;
  }
  const auto rc_needed = static_cast<std::int64_t>(rc_queues.size());
  if (rc_needed > res.cbs_table_size || rc_needed > res.cbs_map_size) {
    report.add("template.cbs-underprovision", Severity::kError, "config.cbs_table_size",
               std::to_string(rc_needed) + " RC classes in use but the CBS template "
                   "provisions " + std::to_string(res.cbs_table_size) + " shaper entries / " +
                   std::to_string(res.cbs_map_size) + " map slots");
  }

  if (rt.preemption && rt.enable_cqf && has_ts &&
      (!is_express(rt, rt.cqf_queue_a) || !is_express(rt, rt.cqf_queue_b))) {
    report.add("template.express-queues", Severity::kWarning, "runtime.express_queues",
               "preemption is enabled but the CQF queue pair is not fully express — "
               "TS frames themselves become preemptable");
  }

  if (rt.guard_band && rt.preemption) {
    report.add("template.redundant-guard", Severity::kInfo, "runtime.guard_band",
               "guard band and frame preemption both enabled; the paper offers them "
               "as alternative slot-boundary protections — one of the two is "
               "redundant overhead");
  }

  // The flow model is unicast-only; a nonzero multicast table is BRAM the
  // paper's customization would reclaim (Table I row 2).
  if (res.multicast_table_size > 0) {
    report.add("template.unused-multicast", Severity::kInfo, "config.multicast_table_size",
               std::to_string(res.multicast_table_size) + " multicast entries "
                   "instantiated but no multicast traffic exists in the workload");
  }
}

}  // namespace tsn::verify::internal
