#include "verify/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <utility>

namespace tsn::verify {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

std::string Diagnostic::to_text() const {
  std::string out(severity_name(severity));
  out += ": " + rule + ": ";
  if (!subject.empty()) out += subject + ": ";
  out += message;
  return out;
}

std::string Diagnostic::to_json() const {
  return "{\"rule\":\"" + json_escape(rule) + "\",\"severity\":\"" +
         std::string(severity_name(severity)) + "\",\"subject\":\"" +
         json_escape(subject) + "\",\"message\":\"" + json_escape(message) + "\"}";
}

void Report::add(Diagnostic diagnostic) { diagnostics_.push_back(std::move(diagnostic)); }

void Report::add(std::string rule, Severity severity, std::string subject,
                 std::string message) {
  diagnostics_.push_back(
      Diagnostic{std::move(rule), severity, std::move(subject), std::move(message)});
}

void Report::merge(Report other) {
  for (Diagnostic& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

Severity Report::max_severity() const {
  Severity worst = Severity::kInfo;
  for (const Diagnostic& d : diagnostics_) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

bool Report::has_rule(std::string_view rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

void Report::sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) > static_cast<int>(b.severity);
                     }
                     return std::tie(a.rule, a.subject, a.message) <
                            std::tie(b.rule, b.subject, b.message);
                   });
}

std::string Report::render_text() const {
  if (diagnostics_.empty()) return "configuration verifies clean\n";
  std::string out;
  for (const Diagnostic& d : diagnostics_) out += d.to_text() + "\n";
  out += std::to_string(count(Severity::kError)) + " error(s), " +
         std::to_string(count(Severity::kWarning)) + " warning(s), " +
         std::to_string(count(Severity::kInfo)) + " info(s)\n";
  return out;
}

std::string Report::to_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) out += ',';
    out += diagnostics_[i].to_json();
  }
  out += "],\"errors\":" + std::to_string(count(Severity::kError));
  out += ",\"warnings\":" + std::to_string(count(Severity::kWarning));
  out += ",\"infos\":" + std::to_string(count(Severity::kInfo));
  out += ",\"max_severity\":\"";
  out += diagnostics_.empty() ? "clean" : std::string(severity_name(max_severity()));
  return out + "\"}";
}

}  // namespace tsn::verify
