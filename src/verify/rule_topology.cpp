#include <string>

#include "common/error.hpp"
#include "verify/rules_internal.hpp"

namespace tsn::verify::internal {
namespace {

std::string flow_subject(const traffic::FlowSpec& flow) {
  return "flow[" + std::to_string(flow.id) + "]";
}

/// True when `node` names an existing host of `topology`.
bool is_host(const topo::Topology& topology, topo::NodeId node) {
  return node < topology.node_count() &&
         topology.node(node).kind == topo::NodeKind::kHost;
}

}  // namespace

void check_topology(const VerifyInput& input, Report& report) {
  if (input.topology == nullptr) return;
  const topo::Topology& topology = *input.topology;

  bool has_ts = false;
  for (const traffic::FlowSpec& flow : input.flows) {
    if (flow.type == net::TrafficClass::kTimeSensitive) has_ts = true;

    try {
      flow.validate();
    } catch (const Error& e) {
      report.add("topo.flow-spec", Severity::kError, flow_subject(flow), e.what());
      continue;  // endpoint/route checks would cascade off the same defect
    }

    bool endpoints_ok = true;
    for (const auto& [label, node] :
         {std::pair<const char*, topo::NodeId>{"src", flow.src_host},
          std::pair<const char*, topo::NodeId>{"dst", flow.dst_host}}) {
      if (!is_host(topology, node)) {
        report.add("topo.endpoint", Severity::kError, flow_subject(flow),
                   std::string(label) + " node " + std::to_string(node) +
                       " is not an existing host in the topology");
        endpoints_ok = false;
      }
    }
    if (!endpoints_ok) continue;

    if (!topology.route(flow.src_host, flow.dst_host).has_value()) {
      report.add("topo.no-route", Severity::kError, flow_subject(flow),
                 "no forwarding path from " + topology.node(flow.src_host).name +
                     " to " + topology.node(flow.dst_host).name +
                     " — the flow cannot be provisioned");
    }
  }

  // A time-triggered schedule is only meaningful on synchronized clocks:
  // CQF slots and Qbv windows are phases of *network* time.
  if (has_ts && !input.enable_gptp) {
    if (input.free_run_drift) {
      report.add("topo.unsynced", Severity::kError, "network.gptp",
                 "TS flows are scheduled onto gate windows but gPTP is disabled "
                 "and clocks free-run — injection offsets drift out of their "
                 "slots within milliseconds");
    } else {
      report.add("topo.ideal-clocks", Severity::kInfo, "network.gptp",
                 "gPTP disabled with perfect clocks — valid for unit-test "
                 "determinism, unbuildable in hardware");
    }
  }
}

}  // namespace tsn::verify::internal
