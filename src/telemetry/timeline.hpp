// Sim-time timeline export in Chrome trace-event JSON.
//
// The builder collects complete/instant/counter events on the simulated
// timeline and renders the JSON object format Perfetto and
// chrome://tracing load directly ({"traceEvents":[...]}). Timestamps are
// integer simulation nanoseconds rendered as fractional microseconds
// (the trace-event unit), which is exact: 1 ns = 0.001 us.
//
// Grouping follows the trace-event process/thread model: a "process"
// (pid) is a lane group ("flows", "gates", "queues"), a "thread" (tid) is
// one lane within it (one flow, one switch). Events are rendered in
// insertion order after the naming metadata — callers that insert in a
// deterministic order get byte-identical JSON.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace tsn::telemetry {

struct RunManifest;  // manifest.hpp

class TimelineBuilder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Names a lane group (trace-event process). Idempotent per pid.
  void set_process_name(std::uint32_t pid, const std::string& name);
  /// Names one lane (trace-event thread) within a group.
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, const std::string& name);

  /// Complete event ("X"): a bar spanning [start, start + duration).
  void add_complete(const std::string& name, const std::string& category,
                    std::uint32_t pid, std::uint32_t tid, TimePoint start,
                    Duration duration, const Args& args = {});

  /// Instant event ("i", thread scope): a marker at one instant.
  void add_instant(const std::string& name, const std::string& category,
                   std::uint32_t pid, std::uint32_t tid, TimePoint at,
                   const Args& args = {});

  /// Counter event ("C"): one sample of the series `series` at `at`;
  /// the viewer renders all samples of `name` as a stacked area chart.
  void add_counter(const std::string& name, std::uint32_t pid, TimePoint at,
                   const std::string& series, double value);

  /// Async span begin/end ("b"/"e"): nestable spans correlated by `id`
  /// within (category, pid) — Perfetto stacks concurrent spans of one
  /// lane. Begin and end must use matching name/category/pid/tid/id.
  void add_async_begin(const std::string& name, const std::string& category,
                       std::uint32_t pid, std::uint32_t tid, std::uint64_t id,
                       TimePoint at, const Args& args = {});
  void add_async_end(const std::string& name, const std::string& category,
                     std::uint32_t pid, std::uint32_t tid, std::uint64_t id,
                     TimePoint at, const Args& args = {});

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// {"traceEvents":[...],"displayTimeUnit":"ns","metadata":{...}}.
  /// The manifest (when given) lands in "metadata".
  [[nodiscard]] std::string to_json(const RunManifest* manifest = nullptr) const;

 private:
  std::vector<std::string> metadata_;  // naming events, rendered first
  std::vector<std::string> events_;
};

}  // namespace tsn::telemetry
