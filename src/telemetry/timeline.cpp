#include "telemetry/timeline.hpp"

#include <cstdio>

#include "telemetry/manifest.hpp"

namespace tsn::telemetry {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Integer ns as exact fractional microseconds ("123.456"); trace-event
/// timestamps are in microseconds.
std::string ts_us(std::int64_t ns) {
  const bool negative = ns < 0;
  const std::int64_t abs_ns = negative ? -ns : ns;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld.%03lld", negative ? "-" : "",
                static_cast<long long>(abs_ns / 1000),
                static_cast<long long>(abs_ns % 1000));
  return buf;
}

std::string fmt_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string args_json(const TimelineBuilder::Args& args) {
  std::string out = "{";
  for (const auto& [key, value] : args) {
    if (out.size() > 1) out += ',';
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  return out + "}";
}

}  // namespace

void TimelineBuilder::set_process_name(std::uint32_t pid, const std::string& name) {
  metadata_.push_back("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                      std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
                      json_escape(name) + "\"}}");
}

void TimelineBuilder::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                      const std::string& name) {
  metadata_.push_back("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                      std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                      ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
}

void TimelineBuilder::add_complete(const std::string& name, const std::string& category,
                                   std::uint32_t pid, std::uint32_t tid, TimePoint start,
                                   Duration duration, const Args& args) {
  events_.push_back("{\"ph\":\"X\",\"name\":\"" + json_escape(name) + "\",\"cat\":\"" +
                    json_escape(category) + "\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + ts_us(start.ns()) +
                    ",\"dur\":" + ts_us(duration.ns()) + ",\"args\":" + args_json(args) +
                    "}");
}

void TimelineBuilder::add_instant(const std::string& name, const std::string& category,
                                  std::uint32_t pid, std::uint32_t tid, TimePoint at,
                                  const Args& args) {
  events_.push_back("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + json_escape(name) +
                    "\",\"cat\":\"" + json_escape(category) +
                    "\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + ts_us(at.ns()) +
                    ",\"args\":" + args_json(args) + "}");
}

void TimelineBuilder::add_counter(const std::string& name, std::uint32_t pid, TimePoint at,
                                  const std::string& series, double value) {
  events_.push_back("{\"ph\":\"C\",\"name\":\"" + json_escape(name) +
                    "\",\"pid\":" + std::to_string(pid) + ",\"tid\":0,\"ts\":" +
                    ts_us(at.ns()) + ",\"args\":{\"" + json_escape(series) +
                    "\":" + fmt_number(value) + "}}");
}

void TimelineBuilder::add_async_begin(const std::string& name, const std::string& category,
                                      std::uint32_t pid, std::uint32_t tid,
                                      std::uint64_t id, TimePoint at, const Args& args) {
  events_.push_back("{\"ph\":\"b\",\"name\":\"" + json_escape(name) + "\",\"cat\":\"" +
                    json_escape(category) + "\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) + ",\"id\":\"" + std::to_string(id) +
                    "\",\"ts\":" + ts_us(at.ns()) + ",\"args\":" + args_json(args) + "}");
}

void TimelineBuilder::add_async_end(const std::string& name, const std::string& category,
                                    std::uint32_t pid, std::uint32_t tid,
                                    std::uint64_t id, TimePoint at, const Args& args) {
  events_.push_back("{\"ph\":\"e\",\"name\":\"" + json_escape(name) + "\",\"cat\":\"" +
                    json_escape(category) + "\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) + ",\"id\":\"" + std::to_string(id) +
                    "\",\"ts\":" + ts_us(at.ns()) + ",\"args\":" + args_json(args) + "}");
}

std::string TimelineBuilder::to_json(const RunManifest* manifest) const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& e : metadata_) {
    if (!first) out += ',';
    first = false;
    out += e;
  }
  for (const std::string& e : events_) {
    if (!first) out += ',';
    first = false;
    out += e;
  }
  out += "],\"displayTimeUnit\":\"ns\"";
  if (manifest != nullptr) out += ",\"metadata\":{\"manifest\":" + manifest->to_json() + "}";
  out += "}";
  return out;
}

}  // namespace tsn::telemetry
