#include "telemetry/metrics.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "telemetry/manifest.hpp"

namespace tsn::telemetry {
namespace {

/// Shortest round-trippable decimal form — identical doubles always
/// format identically, the anchor of byte-identical snapshots.
std::string fmt_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

bool valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

bool valid_label_key(std::string_view key) {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Canonical '{k="v",...}' rendering — doubles as the series map key, so
/// the stored order is independent of registration order.
std::string label_string(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (const Label& l : labels) {
    if (out.size() > 1) out += ',';
    out += l.key + "=\"" + prom_escape(l.value) + "\"";
  }
  return out + "}";
}

std::string prom_name(const std::string& dotted) {
  std::string out = dotted;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

bool is_wall_metric(std::string_view name) {
  return name.rfind("wall.", 0) == 0;
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  require(!bounds_.empty(), "telemetry: histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i] > bounds_[i - 1],
            "telemetry: histogram bounds must be strictly increasing");
  }
  per_bucket_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++per_bucket_[bucket];
  ++count_;
  sum_ += v;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out(per_bucket_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < per_bucket_.size(); ++i) {
    running += per_bucket_[i];
    out[i] = running;
  }
  return out;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(const std::string& name,
                                                         const Labels& labels, Kind kind,
                                                         const std::string& help) {
  require(valid_name(name),
          "telemetry: invalid metric name '" + name +
              "' (lowercase dotted [a-z0-9_.], no leading/trailing dot)");
  for (const Label& l : labels) {
    require(valid_label_key(l.key),
            "telemetry: invalid label key '" + l.key + "' on metric '" + name + "'");
  }
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  } else {
    require(family.kind == kind, "telemetry: metric '" + name +
                                     "' re-registered as a different kind (" +
                                     kind_name(static_cast<int>(kind)) + " vs " +
                                     kind_name(static_cast<int>(family.kind)) + ")");
    if (family.help.empty() && !help.empty()) family.help = help;
  }
  Series& series = family.series[label_string(labels)];
  if (series.labels.empty() && !labels.empty()) series.labels = labels;
  return series;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kCounter, help);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kGauge, help);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds,
                                      const Labels& labels, const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kHistogram, help);
  if (!s.histogram) {
    s.histogram = std::make_unique<Histogram>(upper_bounds);
  } else {
    require(s.histogram->upper_bounds() == upper_bounds,
            "telemetry: histogram '" + name + "' re-registered with different buckets");
  }
  return *s.histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricsRegistry::to_prometheus(const RenderOptions& options) const {
  std::string out;
  if (options.manifest != nullptr) {
    out += "# manifest: " + options.manifest->to_json() + "\n";
  }
  for (const auto& [name, family] : families_) {
    if (!options.include_wall && is_wall_metric(name)) continue;
    const std::string flat = prom_name(name);
    if (!family.help.empty()) {
      out += "# HELP " + flat + " " + family.help + "\n";
    }
    out += "# TYPE " + flat + " " + kind_name(static_cast<int>(family.kind)) + "\n";
    for (const auto& [label_key, series] : family.series) {
      if (series.counter) {
        out += flat + label_key + " " + std::to_string(series.counter->value()) + "\n";
      } else if (series.gauge) {
        out += flat + label_key + " " + fmt_number(series.gauge->value()) + "\n";
      } else if (series.histogram) {
        const Histogram& h = *series.histogram;
        const std::vector<std::uint64_t> cumulative = h.cumulative_counts();
        // Re-render the label set with `le` appended per bucket.
        for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
          Labels with_le = series.labels;
          const std::string le =
              i < h.upper_bounds().size() ? fmt_number(h.upper_bounds()[i]) : "+Inf";
          with_le.push_back({"le", le});
          out += flat + "_bucket" + label_string(with_le) + " " +
                 std::to_string(cumulative[i]) + "\n";
        }
        out += flat + "_sum" + label_key + " " + fmt_number(h.sum()) + "\n";
        out += flat + "_count" + label_key + " " + std::to_string(h.count()) + "\n";
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json(const RenderOptions& options) const {
  std::string out = "{";
  if (options.manifest != nullptr) {
    out += "\"manifest\":" + options.manifest->to_json() + ",";
  }
  out += "\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!options.include_wall && is_wall_metric(name)) continue;
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + json_escape(name) + "\",\"type\":\"" +
           kind_name(static_cast<int>(family.kind)) + "\"";
    if (!family.help.empty()) out += ",\"help\":\"" + json_escape(family.help) + "\"";
    out += ",\"series\":[";
    bool first_series = true;
    for (const auto& [label_key, series] : family.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":{";
      for (std::size_t i = 0; i < series.labels.size(); ++i) {
        if (i > 0) out += ',';
        out += "\"" + json_escape(series.labels[i].key) + "\":\"" +
               json_escape(series.labels[i].value) + "\"";
      }
      out += "}";
      if (series.counter) {
        out += ",\"value\":" + std::to_string(series.counter->value());
      } else if (series.gauge) {
        out += ",\"value\":" + fmt_number(series.gauge->value());
      } else if (series.histogram) {
        const Histogram& h = *series.histogram;
        const std::vector<std::uint64_t> cumulative = h.cumulative_counts();
        out += ",\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + fmt_number(h.sum()) + ",\"buckets\":[";
        for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
          if (i > 0) out += ',';
          const std::string le =
              i < h.upper_bounds().size() ? fmt_number(h.upper_bounds()[i]) : "\"+Inf\"";
          out += "{\"le\":" + le + ",\"count\":" + std::to_string(cumulative[i]) + "}";
        }
        out += "]";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace tsn::telemetry
