// Run manifest — provenance stamped into every exported artifact.
//
// A benchmark trajectory is only attributable when each metrics snapshot,
// timeline, and campaign file records what produced it: the tool and its
// version, the git state of the tree it was built from, the scenario (and
// a hash of its canonical description, for cheap equality checks across
// runs), the preset or config provenance, and the seed. Everything in the
// manifest is a pure function of the build and the run request — never of
// wall-clock time — so stamping it does not break byte-identical
// determinism comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tsn::telemetry {

/// The tsnb tool version (kept in lockstep with the CMake project version).
inline constexpr const char* kToolVersion = "1.0.0";

/// `git describe --always --dirty` of the source tree at configure time,
/// or "unknown" outside a git checkout.
[[nodiscard]] const char* build_git_describe();

/// FNV-1a 64-bit — the scenario-hash function. Stable across platforms.
[[nodiscard]] std::uint64_t fnv1a_hash(std::string_view data);

struct RunManifest {
  std::string tool = "tsnb";
  std::string version = kToolVersion;
  std::string git_describe = build_git_describe();
  /// Canonical description of what ran ("simulate topology=ring ...",
  /// a campaign axes spec, ...).
  std::string scenario;
  /// Configuration provenance: a preset name, a config file path, or
  /// "planned" when the parameter planner derived it.
  std::string preset;
  std::uint64_t seed = 0;
  /// fnv1a_hash of `scenario` (set by make_manifest).
  std::uint64_t scenario_hash = 0;

  /// {"tool":...,"version":...,"git":...,"scenario":...,"preset":...,
  ///  "seed":...,"scenario_hash":"<hex>"} — fixed field order.
  [[nodiscard]] std::string to_json() const;
};

/// Builds a manifest with scenario_hash derived from `scenario`.
[[nodiscard]] RunManifest make_manifest(std::string scenario, std::string preset,
                                        std::uint64_t seed);

}  // namespace tsn::telemetry
