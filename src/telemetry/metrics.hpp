// Deterministic metrics registry — the observability spine of the stack.
//
// Every subsystem exports its state as named series: counters (monotonic
// totals), gauges (point-in-time values), and fixed-bucket histograms.
// Series are identified by a stable dotted name plus ordered labels
// ("tsn.switch.drops" {switch=s1,port=2,reason=queue_full}); the registry
// stores families in sorted order and renders snapshots (Prometheus text
// exposition or JSON) in that order, so two runs that observed the same
// simulated world produce byte-identical snapshots regardless of
// registration order or worker scheduling.
//
// Determinism contract: everything outside the reserved "wall." name
// prefix must derive from simulated time and seeded RNGs only. Wall-clock
// measurements (host timing, worker throughput) live under "wall.*" and
// are excluded from snapshots rendered with include_wall = false — the
// form campaign determinism tests compare byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::telemetry {

struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Monotonically increasing total.
class Counter {
 public:
  void inc() { value_ += 1; }
  void add(std::uint64_t n) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Keeps the maximum of all set_max() calls (high-water marks).
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: upper bounds are declared at registration and
/// never change, so bucket layouts are identical across runs by
/// construction. An implicit +Inf bucket catches overflow.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Cumulative counts per bucket, Prometheus-style: entry i counts
  /// observations <= upper_bounds()[i]; the final entry is the +Inf
  /// bucket and always equals count().
  [[nodiscard]] std::vector<std::uint64_t> cumulative_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> per_bucket_;  // non-cumulative; last = +Inf
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

struct RunManifest;  // manifest.hpp

/// Snapshot rendering options (see MetricsRegistry::to_prometheus/to_json).
struct RenderOptions {
  /// Include the "wall.*" namespace (host wall-clock measurements).
  /// Byte-identical determinism comparisons must pass false.
  bool include_wall = true;
  /// Stamped into the snapshot when non-null (JSON: a "manifest"
  /// object; Prometheus: a "# manifest: {...}" comment header).
  const RunManifest* manifest = nullptr;
};

class MetricsRegistry {
 public:
  /// Registers (or finds) the series `name`+`labels`. The returned
  /// reference is stable for the registry's lifetime. Registering an
  /// existing name with a different metric kind (or a histogram with
  /// different buckets) throws tsn::Error.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::vector<double>& upper_bounds,
                       const Labels& labels = {}, const std::string& help = "");

  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] bool empty() const { return families_.empty(); }

  using RenderOptions = telemetry::RenderOptions;

  /// Prometheus text exposition format, families and series in sorted
  /// order. Dotted names render with '.' replaced by '_'.
  [[nodiscard]] std::string to_prometheus(const RenderOptions& options = {}) const;

  /// JSON snapshot: {"manifest":{...}?,"metrics":[{name,type,help,
  /// series:[{labels,...}]}]}, sorted like the exposition format.
  [[nodiscard]] std::string to_json(const RenderOptions& options = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // Keyed by the canonical label rendering, so series order is a pure
    // function of the label sets, not registration order.
    std::map<std::string, Series> series;
  };

  Series& find_or_create(const std::string& name, const Labels& labels, Kind kind,
                         const std::string& help);

  std::map<std::string, Family> families_;
};

/// True for series names in the reserved host wall-clock namespace.
[[nodiscard]] bool is_wall_metric(std::string_view name);

}  // namespace tsn::telemetry
