#include "telemetry/manifest.hpp"

#include <cstdio>
#include <utility>

namespace tsn::telemetry {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* build_git_describe() {
#ifdef TSN_GIT_DESCRIBE
  return TSN_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::uint64_t fnv1a_hash(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string RunManifest::to_json() const {
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(scenario_hash));
  std::string out = "{";
  out += "\"tool\":\"" + json_escape(tool) + "\"";
  out += ",\"version\":\"" + json_escape(version) + "\"";
  out += ",\"git\":\"" + json_escape(git_describe) + "\"";
  out += ",\"scenario\":\"" + json_escape(scenario) + "\"";
  out += ",\"preset\":\"" + json_escape(preset) + "\"";
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"scenario_hash\":\"";
  out += hash_hex;
  out += "\"}";
  return out;
}

RunManifest make_manifest(std::string scenario, std::string preset, std::uint64_t seed) {
  RunManifest m;
  m.scenario = std::move(scenario);
  m.preset = std::move(preset);
  m.seed = seed;
  m.scenario_hash = fnv1a_hash(m.scenario);
  return m;
}

}  // namespace tsn::telemetry
