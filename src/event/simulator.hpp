// Discrete-event simulation kernel.
//
// The whole network — switch pipelines, link serialization, gPTP message
// exchange, gate updates, traffic injection — is driven by one Simulator.
// Events at equal timestamps execute in scheduling order (a monotonically
// increasing sequence number breaks ties), so runs are bit-for-bit
// deterministic for a given seed.
//
// Hot-path design: event records live in a slab of generation-checked
// slots recycled through an intrusive free list. A heap entry carries its
// slot index and the generation it was issued under, so cancellation is a
// generation bump (the stale heap entry is skimmed when it surfaces) —
// no hash lookups, no per-event node allocations. Callbacks are
// event::Callback (small-buffer optimized, see callback.hpp), so the
// typical `[this, index, occurrence]` capture never touches the heap.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "event/callback.hpp"

namespace tsn::telemetry {
class MetricsRegistry;
}  // namespace tsn::telemetry

namespace tsn::event {

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Encodes slot index (low 32 bits) and generation (high 32 bits); a
/// handle is spent once its event fires or is cancelled — reusing it is a
/// harmless no-op because the slot's generation has moved on.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  auto operator<=>(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = event::Callback;

  Simulator() = default;
  /// Ends the calling thread's log sim-time context (Logger prefixes).
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Only advances inside run()/run_until()/step().
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `callback` at absolute time `at` (must not be in the past).
  EventId schedule_at(TimePoint at, Callback callback);

  /// Schedules `callback` after `delay` (delay >= 0).
  EventId schedule_in(Duration delay, Callback callback) {
    return schedule_at(now_ + delay, std::move(callback));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs until the event queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs all events with time <= `until`, then sets now() == until.
  /// Returns the number of events executed.
  std::uint64_t run_until(TimePoint until);

  /// Executes the single earliest pending event. Returns false if none.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] bool idle() const { return pending_events() == 0; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// High-water mark of the event heap (scheduled + not-yet-skimmed
  /// cancelled entries) — the kernel's memory pressure gauge.
  [[nodiscard]] std::size_t peak_heap_depth() const { return peak_heap_depth_; }
  /// Slots ever allocated in the event slab (monotonic; free-listed slots
  /// stay in the pool for reuse).
  [[nodiscard]] std::size_t slot_pool_capacity() const { return slots_.size(); }
  /// Scheduled callbacks whose capture fit Callback's inline buffer /
  /// spilled to the heap — watches for captures outgrowing the budget.
  [[nodiscard]] std::uint64_t callbacks_inline() const { return callbacks_inline_; }
  [[nodiscard]] std::uint64_t callbacks_heap() const { return callbacks_heap_; }
  /// Host wall-clock time spent inside run()/run_until()/step() so far.
  /// Reporting-only: no simulation state may derive from it.
  [[nodiscard]] double wall_run_ms() const { return wall_run_ms_; }

  /// Exports kernel statistics: deterministic "tsn.event.*" series
  /// (events executed, peak heap depth, pending events, slot-pool size,
  /// inline/heap callback split, final sim time) plus "wall.event.*"
  /// host timing (run wall time, sim-to-wall ratio).
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  static constexpr std::uint32_t kNilSlot = UINT32_MAX;

  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
    // Ordered for a min-heap via std::greater.
    [[nodiscard]] bool operator>(const HeapEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// One event record. `gen` advances every time the slot is released
  /// (fire or cancel), invalidating outstanding EventIds and heap entries.
  struct Slot {
    Callback callback;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  [[nodiscard]] bool top_is_stale() const {
    const HeapEntry& e = heap_.top();
    const Slot& s = slots_[e.slot];
    return !s.armed || s.gen != e.gen;
  }
  /// Pops cancelled (generation-mismatched) entries off the heap top.
  void skim_stale() {
    while (!heap_.empty() && top_is_stale()) heap_.pop();
  }
  /// Frees the slot's callback storage and returns it to the free list,
  /// bumping the generation so stale handles/entries can't match it.
  void release_slot(std::uint32_t index);
  void execute_top();

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t callbacks_inline_ = 0;
  std::uint64_t callbacks_heap_ = 0;
  std::size_t live_ = 0;  // armed slots == events that will still fire
  std::size_t peak_heap_depth_ = 0;
  double wall_run_ms_ = 0.0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
};

/// Repeats a callback with a fixed period, starting at `first`.
/// Owns its scheduling; destroy (or stop()) to end the repetition.
class PeriodicTask {
 public:
  /// `callback` runs at first, first+period, first+2*period, ...
  PeriodicTask(Simulator& sim, TimePoint first, Duration period, Callback callback);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(TimePoint at);

  Simulator& sim_;
  Duration period_;
  Callback callback_;
  EventId pending_{};
  bool running_ = true;
};

}  // namespace tsn::event
