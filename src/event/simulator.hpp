// Discrete-event simulation kernel.
//
// The whole network — switch pipelines, link serialization, gPTP message
// exchange, gate updates, traffic injection — is driven by one Simulator.
// Events at equal timestamps execute in scheduling order (a monotonically
// increasing sequence number breaks ties), so runs are bit-for-bit
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace tsn::telemetry {
class MetricsRegistry;
}  // namespace tsn::telemetry

namespace tsn::event {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  auto operator<=>(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  /// Ends the calling thread's log sim-time context (Logger prefixes).
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Only advances inside run()/run_until()/step().
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `callback` at absolute time `at` (must not be in the past).
  EventId schedule_at(TimePoint at, Callback callback);

  /// Schedules `callback` after `delay` (delay >= 0).
  EventId schedule_in(Duration delay, Callback callback) {
    return schedule_at(now_ + delay, std::move(callback));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs until the event queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs all events with time <= `until`, then sets now() == until.
  /// Returns the number of events executed.
  std::uint64_t run_until(TimePoint until);

  /// Executes the single earliest pending event. Returns false if none.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] bool idle() const { return pending_events() == 0; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// High-water mark of the event heap (scheduled + not-yet-skimmed
  /// cancelled entries) — the kernel's memory pressure gauge.
  [[nodiscard]] std::size_t peak_heap_depth() const { return peak_heap_depth_; }
  /// Host wall-clock time spent inside run()/run_until()/step() so far.
  /// Reporting-only: no simulation state may derive from it.
  [[nodiscard]] double wall_run_ms() const { return wall_run_ms_; }

  /// Exports kernel statistics: deterministic "tsn.event.*" series
  /// (events executed, peak heap depth, pending events, final sim time)
  /// plus "wall.event.*" host timing (run wall time, sim-to-wall ratio).
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    // Ordered for a min-heap via std::greater.
    [[nodiscard]] bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Pops cancelled entries off the heap top.
  void skim_cancelled();
  void execute_top();

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t peak_heap_depth_ = 0;
  double wall_run_ms_ = 0.0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeats a callback with a fixed period, starting at `first`.
/// Owns its scheduling; destroy (or stop()) to end the repetition.
class PeriodicTask {
 public:
  /// `callback` runs at first, first+period, first+2*period, ...
  PeriodicTask(Simulator& sim, TimePoint first, Duration period,
               std::function<void()> callback);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(TimePoint at);

  Simulator& sim_;
  Duration period_;
  std::function<void()> callback_;
  EventId pending_{};
  bool running_ = true;
};

}  // namespace tsn::event
