// Move-only callable wrapper with small-buffer optimization.
//
// The discrete-event kernel runs tens of millions of callbacks per
// experiment; std::function heap-allocates any capture above its ~16-byte
// internal buffer and carries copyability machinery a scheduled event
// never uses. Function<> stores captures up to kInlineSize bytes inline —
// the kernel's typical `[this, index, occurrence]` capture is 24 bytes —
// and falls back to the heap only for oversized captures (e.g. lambdas
// that capture a whole net::Packet by value). It is move-only, matching
// the single-owner lifecycle of an event record in the slot pool.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tsn::event {

template <typename Signature>
class Function;

template <typename R, typename... Args>
class Function<R(Args...)> {
 public:
  /// Inline capture budget: a `this` pointer plus four 64-bit words of
  /// indices/timestamps. Anything larger (packet copies, std::function
  /// wrappers with their own state) relocates to the heap.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Function() = default;
  Function(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Function> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  Function(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kStoresInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kOps<Fn, true>;
    } else {
      // tsnlint:allow(hot-path-alloc): designed escape hatch — oversized captures relocate to the heap once at construction; every kernel callback fits the SBO path above
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kOps<Fn, false>;
    }
  }

  Function(Function&& other) noexcept { move_from(other); }
  Function& operator=(Function&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~Function() { reset(); }

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  Function& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

  /// True when the wrapped callable lives in the inline buffer. Empty
  /// wrappers report false. The kernel exports inline-vs-heap counts so a
  /// capture that silently outgrows the budget shows up in telemetry.
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Relocation: move-construct the callable from `src` into `dst`,
    /// then destroy the source (heap-stored callables just move the
    /// owning pointer across).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool kStoresInline = sizeof(Fn) <= kInlineSize &&
                                        alignof(Fn) <= kInlineAlign &&
                                        std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static Fn* inline_ptr(void* s) {
    return std::launder(reinterpret_cast<Fn*>(s));
  }
  template <typename Fn>
  static Fn** heap_slot(void* s) {
    return std::launder(reinterpret_cast<Fn**>(s));
  }

  template <typename Fn, bool Inline>
  static constexpr Ops kOps{
      [](void* s, Args&&... args) -> R {
        if constexpr (Inline) {
          return (*inline_ptr<Fn>(s))(std::forward<Args>(args)...);
        } else {
          return (**heap_slot<Fn>(s))(std::forward<Args>(args)...);
        }
      },
      [](void* src, void* dst) noexcept {
        if constexpr (Inline) {
          Fn* from = inline_ptr<Fn>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        } else {
          ::new (dst) Fn*(*heap_slot<Fn>(src));
        }
      },
      [](void* s) noexcept {
        if constexpr (Inline) {
          inline_ptr<Fn>(s)->~Fn();
        } else {
          delete *heap_slot<Fn>(s);
        }
      },
      Inline};

  void move_from(Function& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// The kernel's event callback type.
using Callback = Function<void()>;

}  // namespace tsn::event
