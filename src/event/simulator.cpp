#include "event/simulator.hpp"

#include <utility>

namespace tsn::event {

EventId Simulator::schedule_at(TimePoint at, Callback callback) {
  require(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Simulator::schedule_at: null callback");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(callback));
  return EventId{id};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulator::skim_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

void Simulator::execute_top() {
  const Entry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  // Move the callback out before invoking: the callback may schedule or
  // cancel other events (rehashing callbacks_), or even schedule at the
  // same timestamp.
  auto node = callbacks_.extract(top.id);
  ++executed_;
  node.mapped()();
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t count = 0;
  while (count < limit) {
    skim_cancelled();
    if (heap_.empty()) break;
    execute_top();
    ++count;
  }
  return count;
}

std::uint64_t Simulator::run_until(TimePoint until) {
  require(until >= now_, "Simulator::run_until: target time is in the past");
  std::uint64_t count = 0;
  while (true) {
    skim_cancelled();
    if (heap_.empty() || heap_.top().at > until) break;
    execute_top();
    ++count;
  }
  now_ = until;
  return count;
}

bool Simulator::step() {
  skim_cancelled();
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

PeriodicTask::PeriodicTask(Simulator& sim, TimePoint first, Duration period,
                           std::function<void()> callback)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  require(period_.ns() > 0, "PeriodicTask: period must be positive");
  require(static_cast<bool>(callback_), "PeriodicTask: null callback");
  arm(first);
}

void PeriodicTask::arm(TimePoint at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    // Re-arm first so the callback may stop() the task.
    arm(at + period_);
    callback_();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

}  // namespace tsn::event
