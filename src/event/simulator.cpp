#include "event/simulator.hpp"

#include <chrono>
#include <utility>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::event {
namespace {

/// Measures host time spent inside one run loop and accumulates it into
/// `total_ms` on scope exit. Reporting-only telemetry (wall.event.*):
/// nothing in the simulation reads the measured value.
class WallRunTimer {
 public:
  explicit WallRunTimer(double& total_ms)
      : total_ms_(total_ms),
        // tsnlint:allow(wall-clock): wall.event.* run timing is reporting-only telemetry; no sim state derives from it
        started_(std::chrono::steady_clock::now()) {}
  ~WallRunTimer() {
    total_ms_ += std::chrono::duration<double, std::milli>(
                     // tsnlint:allow(wall-clock): wall.event.* run timing is reporting-only telemetry
                     std::chrono::steady_clock::now() - started_)
                     .count();
  }
  WallRunTimer(const WallRunTimer&) = delete;
  WallRunTimer& operator=(const WallRunTimer&) = delete;

 private:
  double& total_ms_;
  // tsnlint:allow(wall-clock): stores the run-loop start instant for wall.event.* reporting only
  std::chrono::steady_clock::time_point started_;
};

}  // namespace

Simulator::~Simulator() { Logger::clear_sim_now(); }

EventId Simulator::schedule_at(TimePoint at, Callback callback) {
  require(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Simulator::schedule_at: null callback");
  if (callback.is_inline()) {
    ++callbacks_inline_;
  } else {
    ++callbacks_heap_;
  }
  std::uint32_t index;
  if (free_head_ != kNilSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    require(slots_.size() < kNilSlot, "Simulator::schedule_at: slot pool exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.callback = std::move(callback);
  slot.armed = true;
  heap_.push(HeapEntry{at, next_seq_++, index, slot.gen});
  ++live_;
  if (heap_.size() > peak_heap_depth_) peak_heap_depth_ = heap_.size();
  return EventId{(static_cast<std::uint64_t>(slot.gen) << 32) | index};
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.callback = Callback();  // drop captured state immediately
  slot.armed = false;
  // Generation wrap after 2^32 releases of one slot could alias a stale
  // handle; at millions of events per second that is decades of reuse of
  // a single slot, and skipping 0 keeps EventId.value nonzero.
  if (++slot.gen == 0) slot.gen = 1;
  slot.next_free = free_head_;
  free_head_ = index;
  --live_;
}

bool Simulator::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (gen == 0 || index >= slots_.size()) return false;
  const Slot& slot = slots_[index];
  if (!slot.armed || slot.gen != gen) return false;
  release_slot(index);
  return true;
}

void Simulator::execute_top() {
  const HeapEntry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  // Publish the simulated instant for this thread's log lines: every
  // tsn::log() call made from inside the callback carries [t=...].
  Logger::set_sim_now(now_);
  // Move the callback out and release the slot before invoking: the
  // callback may schedule (possibly reusing this very slot), cancel other
  // events, or grow the slot vector.
  Callback cb = std::move(slots_[top.slot].callback);
  release_slot(top.slot);
  ++executed_;
  cb();
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  const WallRunTimer timer(wall_run_ms_);
  std::uint64_t count = 0;
  while (count < limit) {
    skim_stale();
    if (heap_.empty()) break;
    execute_top();
    ++count;
  }
  return count;
}

std::uint64_t Simulator::run_until(TimePoint until) {
  require(until >= now_, "Simulator::run_until: target time is in the past");
  const WallRunTimer timer(wall_run_ms_);
  std::uint64_t count = 0;
  while (true) {
    skim_stale();
    if (heap_.empty() || heap_.top().at > until) break;
    execute_top();
    ++count;
  }
  now_ = until;
  Logger::set_sim_now(now_);
  return count;
}

bool Simulator::step() {
  const WallRunTimer timer(wall_run_ms_);
  skim_stale();
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

void Simulator::collect_metrics(telemetry::MetricsRegistry& registry) const {
  registry
      .counter("tsn.event.executed", {},
               "events executed by the discrete-event kernel")
      .add(executed_);
  registry.gauge("tsn.event.peak_heap_depth", {}, "event heap high-water mark")
      .set(static_cast<double>(peak_heap_depth_));
  registry.gauge("tsn.event.pending", {}, "events still pending at collection time")
      .set(static_cast<double>(pending_events()));
  registry
      .gauge("tsn.event.slot_pool_capacity", {},
             "event slots ever allocated in the kernel slab")
      .set(static_cast<double>(slot_pool_capacity()));
  registry
      .counter("tsn.event.callbacks_inline", {},
               "scheduled callbacks stored in Callback's inline buffer")
      .add(callbacks_inline_);
  registry
      .counter("tsn.event.callbacks_heap", {},
               "scheduled callbacks whose capture spilled to the heap")
      .add(callbacks_heap_);
  registry.gauge("tsn.event.now_ns", {}, "simulated time at collection")
      .set(static_cast<double>(now_.ns()));
  registry.gauge("wall.event.run_ms", {}, "host wall-clock spent in run loops")
      .set(wall_run_ms_);
  if (wall_run_ms_ > 0.0) {
    registry
        .gauge("wall.event.sim_to_wall_ratio", {},
               "simulated ms advanced per host ms in run loops")
        .set(now_.ms() / wall_run_ms_);
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, TimePoint first, Duration period,
                           Callback callback)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  require(period_.ns() > 0, "PeriodicTask: period must be positive");
  require(static_cast<bool>(callback_), "PeriodicTask: null callback");
  arm(first);
}

void PeriodicTask::arm(TimePoint at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    // Re-arm first so the callback may stop() the task.
    arm(at + period_);
    callback_();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

}  // namespace tsn::event
