#include "event/simulator.hpp"

#include <chrono>
#include <utility>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::event {
namespace {

/// Measures host time spent inside one run loop and accumulates it into
/// `total_ms` on scope exit. Reporting-only telemetry (wall.event.*):
/// nothing in the simulation reads the measured value.
class WallRunTimer {
 public:
  explicit WallRunTimer(double& total_ms)
      : total_ms_(total_ms),
        // tsnlint:allow(wall-clock): wall.event.* run timing is reporting-only telemetry; no sim state derives from it
        started_(std::chrono::steady_clock::now()) {}
  ~WallRunTimer() {
    total_ms_ += std::chrono::duration<double, std::milli>(
                     // tsnlint:allow(wall-clock): wall.event.* run timing is reporting-only telemetry
                     std::chrono::steady_clock::now() - started_)
                     .count();
  }
  WallRunTimer(const WallRunTimer&) = delete;
  WallRunTimer& operator=(const WallRunTimer&) = delete;

 private:
  double& total_ms_;
  // tsnlint:allow(wall-clock): stores the run-loop start instant for wall.event.* reporting only
  std::chrono::steady_clock::time_point started_;
};

}  // namespace

Simulator::~Simulator() { Logger::clear_sim_now(); }

EventId Simulator::schedule_at(TimePoint at, Callback callback) {
  require(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  require(static_cast<bool>(callback), "Simulator::schedule_at: null callback");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  if (heap_.size() > peak_heap_depth_) peak_heap_depth_ = heap_.size();
  callbacks_.emplace(id, std::move(callback));
  return EventId{id};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulator::skim_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

void Simulator::execute_top() {
  const Entry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  // Publish the simulated instant for this thread's log lines: every
  // tsn::log() call made from inside the callback carries [t=...].
  Logger::set_sim_now(now_);
  // Move the callback out before invoking: the callback may schedule or
  // cancel other events (rehashing callbacks_), or even schedule at the
  // same timestamp.
  auto node = callbacks_.extract(top.id);
  ++executed_;
  node.mapped()();
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  const WallRunTimer timer(wall_run_ms_);
  std::uint64_t count = 0;
  while (count < limit) {
    skim_cancelled();
    if (heap_.empty()) break;
    execute_top();
    ++count;
  }
  return count;
}

std::uint64_t Simulator::run_until(TimePoint until) {
  require(until >= now_, "Simulator::run_until: target time is in the past");
  const WallRunTimer timer(wall_run_ms_);
  std::uint64_t count = 0;
  while (true) {
    skim_cancelled();
    if (heap_.empty() || heap_.top().at > until) break;
    execute_top();
    ++count;
  }
  now_ = until;
  Logger::set_sim_now(now_);
  return count;
}

bool Simulator::step() {
  const WallRunTimer timer(wall_run_ms_);
  skim_cancelled();
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

void Simulator::collect_metrics(telemetry::MetricsRegistry& registry) const {
  registry
      .counter("tsn.event.executed", {},
               "events executed by the discrete-event kernel")
      .add(executed_);
  registry.gauge("tsn.event.peak_heap_depth", {}, "event heap high-water mark")
      .set(static_cast<double>(peak_heap_depth_));
  registry.gauge("tsn.event.pending", {}, "events still pending at collection time")
      .set(static_cast<double>(pending_events()));
  registry.gauge("tsn.event.now_ns", {}, "simulated time at collection")
      .set(static_cast<double>(now_.ns()));
  registry.gauge("wall.event.run_ms", {}, "host wall-clock spent in run loops")
      .set(wall_run_ms_);
  if (wall_run_ms_ > 0.0) {
    registry
        .gauge("wall.event.sim_to_wall_ratio", {},
               "simulated ms advanced per host ms in run loops")
        .set(now_.ms() / wall_run_ms_);
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, TimePoint first, Duration period,
                           std::function<void()> callback)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  require(period_.ns() > 0, "PeriodicTask: period must be positive");
  require(static_cast<bool>(callback_), "PeriodicTask: null callback");
  arm(first);
}

void PeriodicTask::arm(TimePoint at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    // Re-arm first so the callback may stop() the task.
    arm(at + period_);
    callback_();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

}  // namespace tsn::event
