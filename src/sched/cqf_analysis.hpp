// CQF latency analysis (paper Eq. 1):
//   L_max = (hop + 1) * slot,   L_min = (hop - 1) * slot.
//
// Utility functions connecting slot size, hop count, deadlines and the
// scheduling cycle — used by the parameter planner and checked against
// measured latencies in the integration tests.
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::sched {

struct CqfLatencyBound {
  Duration min{};
  Duration max{};
};

/// Eq. (1) for a path through `hops` switches.
[[nodiscard]] constexpr CqfLatencyBound cqf_bounds(std::int64_t hops, Duration slot) {
  return CqfLatencyBound{Duration((hops - 1) * slot.ns()), Duration((hops + 1) * slot.ns())};
}

/// Number of switches a flow traverses, from the topology route.
[[nodiscard]] std::int64_t hop_count(const topo::Topology& topology,
                                     const traffic::FlowSpec& flow);

/// True when every TS flow meets its deadline under the worst-case CQF
/// bound: (hops + 1) * slot <= deadline.
[[nodiscard]] bool deadlines_met(const topo::Topology& topology,
                                 const std::vector<traffic::FlowSpec>& flows, Duration slot);

/// Largest slot size (multiple of `granularity`) for which all TS
/// deadlines hold; nullopt when even the granularity slot is too big.
[[nodiscard]] std::optional<Duration> max_feasible_slot(
    const topo::Topology& topology, const std::vector<traffic::FlowSpec>& flows,
    Duration granularity = microseconds(5));

/// The 802.1Qbv scheduling cycle: LCM of all TS flow periods.
[[nodiscard]] Duration scheduling_cycle(const std::vector<traffic::FlowSpec>& flows);

/// Gate-table entries needed for a CQF program (always 2) vs. a general
/// per-slot program over the scheduling cycle (cycle / slot) — the
/// quantity behind paper guideline (2).
[[nodiscard]] std::int64_t gate_entries_for_cqf();
[[nodiscard]] std::int64_t gate_entries_for_full_cycle(Duration cycle, Duration slot);

}  // namespace tsn::sched
