// Injection Time Planning (ITP) — the flow-scheduling mechanism of the
// authors' companion paper [24] (INFOCOM 2020), which the evaluation's
// queue-depth parameter (12) comes from.
//
// Under CQF, every packet received in slot t leaves in slot t+1, so a flow
// injected in absolute slot t occupies the filling queue of the j-th
// switch on its path during slot t+j. If all talkers injected at period
// start, every flow of the period would land in the SAME slot and the TS
// queue would need depth ~ flow-count. ITP spreads injections across the
// slots of each period so the worst per-(link, slot) load — and hence the
// required queue depth and buffer count — collapses to ~flows/slots.
//
// The planner is a greedy first-fit load balancer: flows (longest path
// first) pick the injection slot minimizing the peak load over the cells
// they touch. Plans report the achieved peak, which becomes the
// `queue_depth` resource parameter (paper §III.C guideline 4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "telemetry/metrics.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::sched {

struct ItpPlan {
  Duration slot{};
  Duration hyperperiod{};
  std::int64_t slots_per_hyperperiod = 0;

  /// Injection slot (within the flow's period) per TS flow. Ordered by
  /// flow id so plan consumers traverse flows deterministically.
  std::map<net::FlowId, std::int64_t> injection_slot;

  /// Peak packets in any (egress link, slot) cell — the queue depth the
  /// TS queues must provision.
  std::int64_t max_queue_load = 0;

  /// True when the peak per-slot load also fits the wire: peak frames can
  /// all be serialized within one slot.
  bool wire_feasible = true;

  [[nodiscard]] std::int64_t recommended_queue_depth() const { return max_queue_load; }

  /// Writes each flow's injection_offset (= slot index x slot size).
  void apply(std::vector<traffic::FlowSpec>& flows) const;

  /// Exports the plan shape into `registry` under "tsn.itp.*": slot/
  /// hyperperiod geometry, the peak (link, slot) load, wire feasibility,
  /// and the flow count injecting in each used slot {slot=} — the CQF
  /// slot-occupancy picture behind recommended_queue_depth().
  void collect_metrics(telemetry::MetricsRegistry& registry) const;
};

class ItpPlanner {
 public:
  ItpPlanner(const topo::Topology& topology, Duration slot);

  /// Plans injection offsets for the TS flows in `flows` (other classes
  /// are ignored). Throws when a TS flow has no route.
  [[nodiscard]] ItpPlan plan(const std::vector<traffic::FlowSpec>& flows) const;

  /// The no-ITP baseline: every flow injects at its period start. Used by
  /// the ablation bench to show why ITP is load-bearing.
  [[nodiscard]] ItpPlan plan_naive(const std::vector<traffic::FlowSpec>& flows) const;

 private:
  struct Occurrence {
    std::size_t cell = 0;  // (link, slot) accounting cell
  };

  [[nodiscard]] ItpPlan plan_impl(const std::vector<traffic::FlowSpec>& flows,
                                  bool naive) const;

  const topo::Topology* topology_;
  Duration slot_;
};

}  // namespace tsn::sched
