// 802.1Qbv gate-program synthesis — the general (non-CQF) case of the
// paper's guideline (2): "the number of entries for each [gate] table
// equals the number of time slots within a scheduling cycle".
//
// Given ITP-planned TS flows, the synthesizer computes, for every egress
// port on a TS route, the slots in which scheduled departures occur and
// emits a cyclic gate program that opens the TS queue exactly in those
// windows (all other queues are closed during them, giving the same
// isolation the CQF slots provide). Consecutive slots with identical gate
// states are merged, so the synthesized entry count is also a measure of
// how irregular the schedule is — `required_gate_entries()` is what
// set_gate_tbl() must provision.
//
// This module exists to quantify the resource cost of running a full
// per-slot Qbv program instead of CQF's 2-entry ping-pong
// (bench/ablation_gate_mode): same QoS, vastly different gate tables.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "sched/itp.hpp"
#include "tables/gcl.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::sched {

struct QbvPortProgram {
  tables::GateControlList ingress;  // all-open, one entry spanning the cycle
  tables::GateControlList egress;   // TS windows + protected background slots
};

struct QbvProgram {
  Duration slot{};
  Duration cycle{};                       // scheduling cycle (LCM of periods)
  std::int64_t slots_per_cycle = 0;
  std::int64_t max_entries = 0;           // largest synthesized egress GCL
  /// Programs keyed by (switch node, egress port).
  std::map<std::pair<topo::NodeId, std::uint8_t>, QbvPortProgram> ports;

  /// Gate table size set_gate_tbl() must provision for this program.
  [[nodiscard]] std::int64_t required_gate_entries() const { return max_entries; }
};

class QbvSynthesizer {
 public:
  /// `ts_queue` — the queue the TS windows open (classification targets
  /// it directly; no CQF redirection in Qbv mode).
  QbvSynthesizer(const topo::Topology& topology, Duration slot,
                 std::uint8_t ts_queue = traffic::kTsPriority);

  /// Synthesizes the per-port programs for the TS flows in `flows`
  /// (injection offsets must already be ITP-applied). Requirements:
  /// every TS period must be a multiple of the slot (so windows repeat
  /// within the cycle) and every TS flow must be routable.
  [[nodiscard]] QbvProgram synthesize(const std::vector<traffic::FlowSpec>& flows) const;

 private:
  const topo::Topology* topology_;
  Duration slot_;
  std::uint8_t ts_queue_;
};

}  // namespace tsn::sched
