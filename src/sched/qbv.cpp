#include "sched/qbv.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace tsn::sched {

QbvSynthesizer::QbvSynthesizer(const topo::Topology& topology, Duration slot,
                               std::uint8_t ts_queue)
    : topology_(&topology), slot_(slot), ts_queue_(ts_queue) {
  require(slot.ns() > 0, "QbvSynthesizer: slot must be positive");
  require(ts_queue < 8, "QbvSynthesizer: TS queue must be in [0, 8)");
}

QbvProgram QbvSynthesizer::synthesize(const std::vector<traffic::FlowSpec>& flows) const {
  QbvProgram program;
  program.slot = slot_;

  std::vector<Duration> periods;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    require(f.period % slot_ == Duration::zero(),
            "QbvSynthesizer: every TS period must be a multiple of the slot");
    periods.push_back(f.period);
  }
  require(!periods.empty(), "QbvSynthesizer: no TS flows to schedule");
  program.cycle = lcm_of_periods(periods);
  program.slots_per_cycle = program.cycle / slot_;
  const std::int64_t S = program.slots_per_cycle;

  // Mark departure slots per (node, port): a packet injected in absolute
  // slot t departs the j-th switch on its path during slot t + j + 1.
  std::map<std::pair<topo::NodeId, std::uint8_t>, std::vector<bool>> windows;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    const auto route = topology_->route(f.src_host, f.dst_host);
    require(route.has_value(), "QbvSynthesizer: TS flow has no route");

    const std::int64_t inject_slot = f.injection_offset / slot_;
    const std::int64_t occurrences = program.cycle / f.period;
    const std::int64_t period_slots = f.period / slot_;
    for (std::int64_t k = 0; k < occurrences; ++k) {
      const std::int64_t t = inject_slot + k * period_slots;
      std::int64_t j = 0;
      for (const topo::Hop& hop : *route) {
        if (topology_->node(hop.node).kind != topo::NodeKind::kSwitch) continue;
        auto& bits = windows[{hop.node, hop.out_port}];
        if (bits.empty()) bits.assign(static_cast<std::size_t>(S), false);
        bits[static_cast<std::size_t>((t + j + 1) % S)] = true;
        ++j;
      }
    }
  }

  // Emit the cyclic programs: TS-only gates in window slots, the
  // complement everywhere else; adjacent equal slots merge into one entry.
  const auto ts_bit = static_cast<tables::GateBitmap>(1u << ts_queue_);
  const auto background = static_cast<tables::GateBitmap>(~ts_bit);
  for (const auto& [where, bits] : windows) {
    std::vector<tables::GateEntry> entries;
    for (std::int64_t s = 0; s < S; ++s) {
      const tables::GateBitmap gates = bits[static_cast<std::size_t>(s)] ? ts_bit : background;
      if (!entries.empty() && entries.back().gate_states == gates) {
        entries.back().interval += slot_;
      } else {
        entries.push_back(tables::GateEntry{gates, slot_});
      }
    }
    // Note: the first and last entries are NOT merged across the cycle
    // wrap even when equal — entry 0 is anchored at the cycle base, and
    // folding the tail into it would rotate every window.

    QbvPortProgram port{tables::GateControlList(std::max<std::size_t>(1, entries.size())),
                        tables::GateControlList(std::max<std::size_t>(1, entries.size()))};
    require(port.ingress.add_entry({tables::kAllGatesOpen, program.cycle}),
            "QbvSynthesizer: internal ingress program error");
    for (const tables::GateEntry& e : entries) {
      require(port.egress.add_entry(e), "QbvSynthesizer: internal egress program error");
    }
    program.max_entries =
        std::max(program.max_entries, static_cast<std::int64_t>(entries.size()));
    program.ports.emplace(where, std::move(port));
  }
  return program;
}

}  // namespace tsn::sched
