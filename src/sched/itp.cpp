#include "sched/itp.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace tsn::sched {

void ItpPlan::apply(std::vector<traffic::FlowSpec>& flows) const {
  for (traffic::FlowSpec& f : flows) {
    const auto it = injection_slot.find(f.id);
    if (it == injection_slot.end()) continue;
    f.injection_offset = Duration(it->second * slot.ns());
  }
}

void ItpPlan::collect_metrics(telemetry::MetricsRegistry& registry) const {
  registry.gauge("tsn.itp.slot_ns", {}, "CQF slot size").set(static_cast<double>(slot.ns()));
  registry.gauge("tsn.itp.hyperperiod_ns", {}).set(static_cast<double>(hyperperiod.ns()));
  registry.gauge("tsn.itp.slots_per_hyperperiod", {})
      .set(static_cast<double>(slots_per_hyperperiod));
  registry
      .gauge("tsn.itp.max_queue_load", {},
             "peak packets in any (link, slot) cell — the provisioned TS queue depth")
      .set(static_cast<double>(max_queue_load));
  registry
      .gauge("tsn.itp.wire_feasible", {},
             "1 when the peak per-slot load serializes within one slot")
      .set(wire_feasible ? 1.0 : 0.0);
  registry.gauge("tsn.itp.planned_flows", {}).set(static_cast<double>(injection_slot.size()));
  // Ordered map -> deterministic series order: the slot-occupancy picture.
  std::map<std::int64_t, std::int64_t> flows_per_slot;
  for (const auto& [flow, slot_index] : injection_slot) ++flows_per_slot[slot_index];
  for (const auto& [slot_index, count] : flows_per_slot) {
    registry
        .gauge("tsn.itp.slot_injections", {{"slot", std::to_string(slot_index)}},
               "TS flows injecting in this slot of their period")
        .set(static_cast<double>(count));
  }
}

ItpPlanner::ItpPlanner(const topo::Topology& topology, Duration slot)
    : topology_(&topology), slot_(slot) {
  require(slot.ns() > 0, "ItpPlanner: slot must be positive");
}

ItpPlan ItpPlanner::plan(const std::vector<traffic::FlowSpec>& flows) const {
  return plan_impl(flows, /*naive=*/false);
}

ItpPlan ItpPlanner::plan_naive(const std::vector<traffic::FlowSpec>& flows) const {
  return plan_impl(flows, /*naive=*/true);
}

ItpPlan ItpPlanner::plan_impl(const std::vector<traffic::FlowSpec>& flows, bool naive) const {
  ItpPlan result;
  result.slot = slot_;

  // Collect TS flows and their routes.
  struct Entry {
    const traffic::FlowSpec* flow;
    std::vector<topo::Hop> hops;
  };
  std::vector<Entry> entries;
  std::vector<Duration> periods;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    auto hops = topology_->route(f.src_host, f.dst_host);
    require(hops.has_value(), "ItpPlanner: TS flow has no route");
    entries.push_back(Entry{&f, std::move(*hops)});
    periods.push_back(f.period);
  }
  if (entries.empty()) {
    result.hyperperiod = slot_;
    result.slots_per_hyperperiod = 1;
    return result;
  }

  result.hyperperiod = lcm_of_periods(periods);
  // Accounting granularity: the absolute slot grid over one hyperperiod.
  // Periods need not divide the slot; ceil keeps the ring covering.
  result.slots_per_hyperperiod = ceil_div(result.hyperperiod.ns(), slot_.ns());
  const std::int64_t ring = result.slots_per_hyperperiod;

  // Longest paths first: they touch the most cells and are hardest to place.
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&entries](std::size_t a, std::size_t b) {
    return entries[a].hops.size() > entries[b].hops.size();
  });

  // load[link][slot] over the hyperperiod ring.
  std::vector<std::vector<std::int64_t>> load(
      topology_->link_count(), std::vector<std::int64_t>(static_cast<std::size_t>(ring), 0));

  auto cells_for = [&](const Entry& e, std::int64_t offset_slot,
                       std::vector<std::pair<std::size_t, std::int64_t>>& out) {
    out.clear();
    const std::int64_t occurrences = result.hyperperiod / e.flow->period;
    for (std::int64_t k = 0; k < occurrences; ++k) {
      const std::int64_t inject_ns = k * e.flow->period.ns() + offset_slot * slot_.ns();
      const std::int64_t base_slot = inject_ns / slot_.ns();
      for (std::size_t j = 0; j < e.hops.size(); ++j) {
        const std::int64_t s = (base_slot + static_cast<std::int64_t>(j)) % ring;
        out.emplace_back(e.hops[j].link, s);
      }
    }
  };

  std::vector<std::pair<std::size_t, std::int64_t>> cells;
  std::int64_t global_peak = 0;
  for (const std::size_t idx : order) {
    const Entry& e = entries[idx];
    const std::int64_t period_slots = std::max<std::int64_t>(1, e.flow->period / slot_);

    std::int64_t best_offset = 0;
    std::int64_t best_peak = INT64_MAX;
    std::int64_t best_sum = INT64_MAX;
    const std::int64_t candidates = naive ? 1 : period_slots;
    for (std::int64_t s = 0; s < candidates; ++s) {
      cells_for(e, s, cells);
      std::int64_t peak = 0;
      std::int64_t sum = 0;
      for (const auto& [link, slot_idx] : cells) {
        const std::int64_t v = load[link][static_cast<std::size_t>(slot_idx)] + 1;
        peak = std::max(peak, v);
        sum += v;
      }
      if (peak < best_peak || (peak == best_peak && sum < best_sum)) {
        best_peak = peak;
        best_sum = sum;
        best_offset = s;
      }
    }

    cells_for(e, best_offset, cells);
    for (const auto& [link, slot_idx] : cells) {
      const std::int64_t v = ++load[link][static_cast<std::size_t>(slot_idx)];
      global_peak = std::max(global_peak, v);
    }
    result.injection_slot.emplace(e.flow->id, best_offset);
  }
  result.max_queue_load = global_peak;

  // Wire feasibility: the peak slot's frames must serialize within a slot.
  Duration worst_drain{};
  for (const Entry& e : entries) {
    const Duration wire = DataRate::gigabits_per_sec(1).transmission_time(
        net::wire_bits(e.flow->frame_bytes));
    worst_drain = std::max(worst_drain, wire * global_peak);
  }
  result.wire_feasible = worst_drain <= slot_;
  return result;
}

}  // namespace tsn::sched
