#include "sched/cqf_analysis.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace tsn::sched {

std::int64_t hop_count(const topo::Topology& topology, const traffic::FlowSpec& flow) {
  const auto hops = topology.route(flow.src_host, flow.dst_host);
  require(hops.has_value(), "hop_count: flow has no route");
  std::int64_t switches = 0;
  for (const topo::Hop& h : *hops) {
    if (topology.node(h.node).kind == topo::NodeKind::kSwitch) ++switches;
  }
  return switches;
}

bool deadlines_met(const topo::Topology& topology,
                   const std::vector<traffic::FlowSpec>& flows, Duration slot) {
  for (const traffic::FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    const std::int64_t hops = hop_count(topology, f);
    if (cqf_bounds(hops, slot).max > f.deadline) return false;
  }
  return true;
}

std::optional<Duration> max_feasible_slot(const topo::Topology& topology,
                                          const std::vector<traffic::FlowSpec>& flows,
                                          Duration granularity) {
  require(granularity.ns() > 0, "max_feasible_slot: granularity must be positive");
  // Tightest constraint: slot <= deadline / (hops + 1) over all TS flows.
  Duration best = Duration::max();
  bool any = false;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type != net::TrafficClass::kTimeSensitive) continue;
    any = true;
    const std::int64_t hops = hop_count(topology, f);
    const Duration limit(f.deadline.ns() / (hops + 1));
    best = std::min(best, limit);
  }
  if (!any) return std::nullopt;
  const std::int64_t steps = best.ns() / granularity.ns();
  if (steps <= 0) return std::nullopt;
  return Duration(steps * granularity.ns());
}

Duration scheduling_cycle(const std::vector<traffic::FlowSpec>& flows) {
  std::vector<Duration> periods;
  for (const traffic::FlowSpec& f : flows) {
    if (f.type == net::TrafficClass::kTimeSensitive) periods.push_back(f.period);
  }
  require(!periods.empty(), "scheduling_cycle: no TS flows");
  return lcm_of_periods(periods);
}

std::int64_t gate_entries_for_cqf() { return 2; }

std::int64_t gate_entries_for_full_cycle(Duration cycle, Duration slot) {
  require(slot.ns() > 0, "gate_entries_for_full_cycle: slot must be positive");
  return ceil_div(cycle.ns(), slot.ns());
}

}  // namespace tsn::sched
