// Streaming statistics (Welford) plus an optional sample store for
// percentiles. Used for latency/jitter reporting — the paper describes
// jitter as the standard deviation of latency.
#pragma once

#include <cstddef>
#include <vector>

namespace tsn::analysis {

class StreamingStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance / stddev (we observe the entire run).
  [[nodiscard]] double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  void merge(const StreamingStats& other);
  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// StreamingStats that additionally retains every sample so percentiles
/// can be queried after the run.
class SampleStats {
 public:
  void add(double value) {
    streaming_.add(value);
    samples_.push_back(value);
  }

  [[nodiscard]] const StreamingStats& summary() const { return streaming_; }
  [[nodiscard]] std::size_t count() const { return streaming_.count(); }
  [[nodiscard]] double mean() const { return streaming_.mean(); }
  [[nodiscard]] double stddev() const { return streaming_.stddev(); }
  [[nodiscard]] double min() const { return streaming_.min(); }
  [[nodiscard]] double max() const { return streaming_.max(); }

  /// Percentile in [0, 100] by nearest-rank on a sorted copy.
  [[nodiscard]] double percentile(double p) const;

  /// Every recorded sample, in insertion order. Lets callers pool the
  /// samples of several flows and take percentiles over the union.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  void reset() {
    streaming_.reset();
    samples_.clear();
  }

 private:
  StreamingStats streaming_;
  std::vector<double> samples_;
};

/// Percentile in [0, 100] over an already-pooled sample set (sorts
/// `samples` in place; linear interpolation between ranks, matching
/// SampleStats::percentile). Throws tsn::Error on an empty set or p
/// outside [0, 100].
[[nodiscard]] double percentile_of(std::vector<double>& samples, double p);

}  // namespace tsn::analysis
