// Fixed-range histogram for latency distributions.
//
// The paper plots latency as averages with error bars; the histogram
// makes the underlying distribution visible (e.g. the uniform phase sweep
// inside a CQF slot) in bench output and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsn::analysis {

class Histogram {
 public:
  /// `bins` equal-width buckets over [lo, hi); values outside land in the
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const;

  /// Renders rows of "[lo, hi) count |#####|", scaled to `max_width`
  /// characters for the fullest bin. Empty leading/trailing bins are
  /// trimmed.
  [[nodiscard]] std::string render_ascii(std::size_t max_width = 50) const;

  void reset();

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace tsn::analysis
