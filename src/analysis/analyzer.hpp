// The TSN analyzer: receives delivered packets, matches them with the
// talker's injection records, and reports latency, jitter (stddev of
// latency), packet loss, and deadline misses per flow and per traffic
// class — the metrics of the paper's Figs. 2 and 7.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/stats.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"

namespace tsn::analysis {

struct FlowRecord {
  net::TrafficClass traffic_class = net::TrafficClass::kBestEffort;
  std::uint64_t injected = 0;
  std::uint64_t received = 0;
  std::uint64_t deadline_misses = 0;
  SampleStats latency_us;  // microseconds
};

/// Aggregate over one traffic class.
struct ClassSummary {
  std::uint64_t injected = 0;
  std::uint64_t received = 0;
  std::uint64_t deadline_misses = 0;
  StreamingStats latency_us;

  [[nodiscard]] std::uint64_t lost() const { return injected - received; }
  [[nodiscard]] double loss_rate() const {
    return injected ? static_cast<double>(lost()) / static_cast<double>(injected) : 0.0;
  }
  [[nodiscard]] double avg_latency_us() const { return latency_us.mean(); }
  [[nodiscard]] double jitter_us() const { return latency_us.stddev(); }
};

class Analyzer {
 public:
  /// Talker-side record: flow `id` injected one packet.
  void record_injection(net::FlowId id, net::TrafficClass traffic_class);

  /// Listener-side record: a packet arrived at its destination at `now`.
  void record_delivery(const net::Packet& packet, TimePoint now);

  [[nodiscard]] bool has_flow(net::FlowId id) const { return flows_.contains(id); }
  [[nodiscard]] const FlowRecord& flow(net::FlowId id) const;
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  /// All recorded flow ids, sorted.
  [[nodiscard]] std::vector<net::FlowId> flow_ids() const;

  [[nodiscard]] ClassSummary summary(net::TrafficClass traffic_class) const;

  /// Per-packet latency samples (us) of every flow of one class, pooled.
  /// Feed to percentile_of() for class-level percentiles.
  [[nodiscard]] std::vector<double> latency_samples(net::TrafficClass traffic_class) const;

  /// Human-readable one-line summary per class ("TS: n=..., avg=..us ...").
  [[nodiscard]] std::string report() const;

  /// Per-flow results as CSV (header + one row per flow, sorted by id):
  /// flow,class,injected,received,deadline_misses,avg_us,stddev_us,min_us,
  /// max_us,p99_us. For offline plotting of the latency distributions.
  [[nodiscard]] std::string to_csv() const;

  void reset() { flows_.clear(); }

 private:
  std::unordered_map<net::FlowId, FlowRecord> flows_;
};

}  // namespace tsn::analysis
