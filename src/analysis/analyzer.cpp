#include "analysis/analyzer.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace tsn::analysis {

void Analyzer::record_injection(net::FlowId id, net::TrafficClass traffic_class) {
  FlowRecord& rec = flows_[id];
  rec.traffic_class = traffic_class;
  ++rec.injected;
}

void Analyzer::record_delivery(const net::Packet& packet, TimePoint now) {
  FlowRecord& rec = flows_[packet.meta.flow_id];
  rec.traffic_class = packet.meta.traffic_class;
  ++rec.received;
  const Duration latency = now - packet.meta.injected_at;
  rec.latency_us.add(latency.us());
  if (packet.meta.deadline.ns() > 0 && latency > packet.meta.deadline) {
    ++rec.deadline_misses;
  }
}

const FlowRecord& Analyzer::flow(net::FlowId id) const {
  const auto it = flows_.find(id);
  require(it != flows_.end(), "Analyzer::flow: unknown flow");
  return it->second;
}

ClassSummary Analyzer::summary(net::TrafficClass traffic_class) const {
  ClassSummary out;
  // Sorted flow order: the merge accumulates floating-point sums, so the
  // iteration order must be stable for bit-identical summaries.
  for (const net::FlowId id : flow_ids()) {
    const FlowRecord& rec = flows_.at(id);
    if (rec.traffic_class != traffic_class) continue;
    out.injected += rec.injected;
    out.received += rec.received;
    out.deadline_misses += rec.deadline_misses;
    out.latency_us.merge(rec.latency_us.summary());
  }
  return out;
}

std::vector<double> Analyzer::latency_samples(net::TrafficClass traffic_class) const {
  std::vector<double> pooled;
  // Sorted flow order keeps the pooled sample sequence (and any
  // percentile over it) ordering-stable by construction.
  for (const net::FlowId id : flow_ids()) {
    const FlowRecord& rec = flows_.at(id);
    if (rec.traffic_class != traffic_class) continue;
    const std::vector<double>& s = rec.latency_us.samples();
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  return pooled;
}

std::string Analyzer::report() const {
  std::string out;
  for (const net::TrafficClass c :
       {net::TrafficClass::kTimeSensitive, net::TrafficClass::kRateConstrained,
        net::TrafficClass::kBestEffort}) {
    const ClassSummary s = summary(c);
    if (s.injected == 0 && s.received == 0) continue;
    out += net::to_string(c) + ": injected=" + std::to_string(s.injected) +
           " received=" + std::to_string(s.received) +
           " loss=" + format_percent(s.loss_rate()) +
           " avg=" + format_double(s.avg_latency_us(), 2) + "us" +
           " jitter=" + format_double(s.jitter_us(), 2) + "us" +
           " min=" + format_double(s.latency_us.min(), 2) + "us" +
           " max=" + format_double(s.latency_us.max(), 2) + "us" +
           " deadline_misses=" + std::to_string(s.deadline_misses) + "\n";
  }
  return out;
}

std::vector<net::FlowId> Analyzer::flow_ids() const {
  std::vector<net::FlowId> ids;
  ids.reserve(flows_.size());
  // tsnlint:allow(unordered-iteration): keys are collected then sorted below
  for (const auto& [id, rec] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string Analyzer::to_csv() const {
  std::string out =
      "flow,class,injected,received,deadline_misses,avg_us,stddev_us,min_us,max_us,"
      "p99_us\n";
  for (const net::FlowId id : flow_ids()) {
    const FlowRecord& rec = flows_.at(id);
    out += std::to_string(id) + "," + net::to_string(rec.traffic_class) + "," +
           std::to_string(rec.injected) + "," + std::to_string(rec.received) + "," +
           std::to_string(rec.deadline_misses) + ",";
    if (rec.latency_us.count() > 0) {
      out += format_double(rec.latency_us.mean(), 3) + "," +
             format_double(rec.latency_us.stddev(), 3) + "," +
             format_double(rec.latency_us.min(), 3) + "," +
             format_double(rec.latency_us.max(), 3) + "," +
             format_double(rec.latency_us.percentile(99.0), 3);
    } else {
      out += ",,,,";
    }
    out += "\n";
  }
  return out;
}

}  // namespace tsn::analysis
