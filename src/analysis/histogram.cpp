#include "analysis/histogram.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace tsn::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  require(bins > 0, "Histogram: need at least one bin");
  require(hi > lo, "Histogram: hi must exceed lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  bins_.assign(bins, 0);
}

void Histogram::add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((value - lo_) / width_);
  if (idx >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[idx];
}

std::uint64_t Histogram::bin(std::size_t i) const {
  require(i < bins_.size(), "Histogram::bin: index out of range");
  return bins_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  require(i < bins_.size(), "Histogram::bin_lo: index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = underflow_ + overflow_;
  for (const std::uint64_t b : bins_) sum += b;
  return sum;
}

std::string Histogram::render_ascii(std::size_t max_width) const {
  std::size_t first = bins_.size();
  std::size_t last = 0;
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > 0) {
      first = std::min(first, i);
      last = std::max(last, i);
      peak = std::max(peak, bins_[i]);
    }
  }
  std::string out;
  if (underflow_ > 0) out += "  < range: " + std::to_string(underflow_) + "\n";
  if (peak > 0) {
    for (std::size_t i = first; i <= last; ++i) {
      const auto width = static_cast<std::size_t>(
          static_cast<double>(bins_[i]) / static_cast<double>(peak) *
          static_cast<double>(max_width));
      out += "  [" + format_trimmed(bin_lo(i), 2) + ", " + format_trimmed(bin_hi(i), 2) +
             ") " + std::to_string(bins_[i]) + "\t|" + std::string(width, '#') + "\n";
    }
  }
  if (overflow_ > 0) out += "  > range: " + std::to_string(overflow_) + "\n";
  return out;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
}

}  // namespace tsn::analysis
