#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tsn::analysis {

void StreamingStats::add(double value) {
  ++count_;
  if (count_ == 1) {
    mean_ = value;
    min_ = value;
    max_ = value;
    m2_ = 0.0;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double SampleStats::percentile(double p) const {
  std::vector<double> sorted = samples_;
  return percentile_of(sorted, p);
}

double percentile_of(std::vector<double>& samples, double p) {
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0, 100]");
  require(!samples.empty(), "percentile: no samples");
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace tsn::analysis
