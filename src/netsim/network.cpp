#include "netsim/network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/math_util.hpp"
#include "fault/recovery.hpp"
#include "flight/recorder.hpp"
#include "netsim/flight_wire.hpp"

namespace tsn::netsim {

Network::Network(event::Simulator& sim, const topo::Topology& topology,
                 NetworkOptions options)
    : sim_(sim),
      topology_(&topology),
      options_(std::move(options)),
      corrupt_rng_(stream_seed(options_.seed, "corruption")) {
  options_.resource.validate();
  options_.runtime.validate();
  build_devices();
  build_links();
  if (options_.enable_gptp || options_.free_run_drift) build_gptp();
}

void Network::build_devices() {
  for (const topo::Node& node : topology_->nodes()) {
    if (node.kind == topo::NodeKind::kSwitch) {
      const std::int64_t ports = std::max<std::int64_t>(1, node.port_count);
      switches_.emplace(node.id, std::make_unique<sw::TsnSwitch>(
                                     sim_, node.name, options_.resource, options_.runtime,
                                     ports));
    } else {
      // Per-NIC "traffic" stream: fault/corruption draws live in their
      // own streams, so traffic sequences are invariant under fault
      // injection (and shard-safe for future campaign sharding).
      nics_.emplace(node.id, std::make_unique<TsnNic>(
                                 sim_, node.id, options_.runtime.link_rate, analyzer_,
                                 stream_seed(options_.seed, "traffic", node.id)));
    }
  }
}

void Network::build_links() {
  for (const topo::Node& node : topology_->nodes()) {
    endpoints_[node.id].resize(node.port_count);
  }
  link_up_.assign(topology_->link_count(), true);
  link_ber_.assign(topology_->link_count(), 0.0);
  node_up_.assign(topology_->node_count(), true);
  for (const topo::Link& link : topology_->links()) {
    endpoints_[link.node_a][link.port_a] =
        Endpoint{link.node_b, link.port_b, link.propagation, link.id};
    endpoints_[link.node_b][link.port_b] =
        Endpoint{link.node_a, link.port_a, link.propagation, link.id};
  }

  for (auto& [node, sw_ptr] : switches_) {
    sw::TsnSwitch* device = sw_ptr.get();
    const topo::NodeId id = node;
    device->set_tx_callback([this, id](tables::PortIndex port, const net::Packet& packet) {
      deliver(id, port, packet);
    });
  }
  for (auto& [node, nic_ptr] : nics_) {
    TsnNic* nic = nic_ptr.get();
    const topo::NodeId id = node;
    nic->set_tx_callback([this, id](const net::Packet& packet) { deliver(id, 0, packet); });
  }
}

void Network::deliver(topo::NodeId from, std::uint8_t port, const net::Packet& packet) {
  const auto it = endpoints_.find(from);
  require(it != endpoints_.end() && port < it->second.size(), "deliver: unknown endpoint");
  const Endpoint& ep = it->second[port];
  if (ep.peer == topo::kInvalidNode) return;  // unconnected port
  // A frame makes it onto the wire only when the link is up and neither
  // end is mid-reboot (a dead switch neither transmits nor receives).
  const bool up = link_up_[ep.link] && node_up_[from] && node_up_[ep.peer];
  if (trace_ != nullptr) {
    trace_->record(TraceEntry{sim_.now(), from, port, ep.peer, packet.meta.flow_id,
                              packet.meta.sequence,
                              static_cast<std::int32_t>(packet.frame_bytes()), !up});
  }
  if (!up) {
    const WireDrop wire_drop = link_up_[ep.link] ? WireDrop::kSwitchDown : WireDrop::kLinkDown;
    if (wire_drop == WireDrop::kSwitchDown) {
      ++reboot_drops_;  // failure injection: endpoint switch is down
    } else {
      ++link_drops_;  // failure injection: transmission onto a dead link
    }
    if (flight_ != nullptr) {
      flight_->on_wire_drop(packet, from, flight_cause(wire_drop), sim_.now());
    }
    return;
  }
  if (link_ber_[ep.link] > 0.0) {
    // Bit-error corruption: an independent error per wire bit corrupts
    // the frame with 1 - (1-ber)^bits; the receiver drops it on FCS.
    const double clean = std::pow(1.0 - link_ber_[ep.link],
                                  static_cast<double>(packet.wire_bits().bits()));
    if (corrupt_rng_.bernoulli(1.0 - clean)) {
      ++corruption_drops_;
      if (flight_ != nullptr) {
        flight_->on_wire_drop(packet, from, flight_cause(WireDrop::kCorrupted), sim_.now());
      }
      return;
    }
  }
  if (flight_ != nullptr) flight_->on_wire(packet, from, sim_.now(), ep.propagation);
  sim_.schedule_in(ep.propagation, [this, ep, packet] {
    if (const auto sw_it = switches_.find(ep.peer); sw_it != switches_.end()) {
      sw_it->second->receive(ep.peer_port, packet);
      return;
    }
    if (const auto nic_it = nics_.find(ep.peer); nic_it != nics_.end()) {
      nic_it->second->receive(packet);
    }
  });
}

void Network::build_gptp() {
  gptp_ = std::make_unique<timesync::GptpDomain>(sim_, stream_seed(options_.seed, "timesync"));

  // One gPTP node per device; the first switch is the grandmaster.
  const std::vector<topo::NodeId> switch_nodes = topology_->switches();
  require(!switch_nodes.empty(), "build_gptp: topology has no switches");

  // Oscillator errors come from their own "drift" stream: adding devices
  // or reordering construction elsewhere cannot change a node's drift.
  Rng drift_rng = make_stream(options_.seed, "drift");
  auto drift = [this, &drift_rng]() {
    return drift_rng.uniform_real(-options_.max_drift_ppm, options_.max_drift_ppm);
  };
  for (const topo::Node& node : topology_->nodes()) {
    timesync::GptpNode& gn = gptp_->add_node(node.name, drift());
    gptp_index_.emplace(node.id, gn.index());
    // Announce qualities ranked for a deterministic BMCA: the designated
    // grandmaster first, remaining switches as backups, end stations
    // last; identity (= node index) breaks ties.
    timesync::ClockQuality quality;
    quality.identity = gn.index();
    if (node.id == switch_nodes.front()) {
      quality.priority1 = 64;
    } else if (node.kind == topo::NodeKind::kSwitch) {
      quality.priority1 = 100;
    }
    gn.set_quality(quality);
  }

  // Spanning tree by BFS from the grandmaster over the physical links
  // (link direction restricts forwarding, not PTP).
  std::vector<bool> visited(topology_->node_count(), false);
  std::deque<topo::NodeId> frontier{switch_nodes.front()};
  visited[switch_nodes.front()] = true;
  while (!frontier.empty()) {
    const topo::NodeId cur = frontier.front();
    frontier.pop_front();
    for (const topo::Link& link : topology_->links()) {
      topo::NodeId other = topo::kInvalidNode;
      if (link.node_a == cur) other = link.node_b;
      if (link.node_b == cur) other = link.node_a;
      if (other == topo::kInvalidNode || visited[other]) continue;
      visited[other] = true;
      gptp_->connect(gptp_->node(gptp_index_.at(cur)), gptp_->node(gptp_index_.at(other)),
                     link.propagation);
      frontier.push_back(other);
    }
  }

  // Attach the disciplined clocks to the dataplane devices.
  for (auto& [node, sw_ptr] : switches_) {
    sw_ptr->use_clock(gptp_->node(gptp_index_.at(node)).clock());
  }
  for (auto& [node, nic_ptr] : nics_) {
    nic_ptr->use_clock(gptp_->node(gptp_index_.at(node)).clock());
  }
}

std::int64_t Network::provision(const std::vector<traffic::FlowSpec>& flows) {
  std::int64_t failures = 0;
  // Aggregated CBS reservations: (switch, port, queue) -> bps.
  std::map<std::tuple<topo::NodeId, std::uint8_t, tables::QueueId>, std::int64_t> cbs_bps;

  for (const traffic::FlowSpec& flow : flows) {
    flow.validate();
    const auto route = topology_->route(flow.src_host, flow.dst_host);
    if (!route) {
      log_warn("provision: no route for flow ", flow.id);
      ++failures;
      continue;
    }

    const MacAddress src_mac = traffic::host_mac(flow.src_host);
    const MacAddress dst_mac = traffic::host_mac(flow.dst_host);

    for (const topo::Hop& hop : *route) {
      if (topology_->node(hop.node).kind != topo::NodeKind::kSwitch) continue;
      sw::TsnSwitch& device = switch_at(hop.node);

      if (!device.add_unicast(dst_mac, flow.vid, hop.out_port)) ++failures;

      tables::MeterId meter = tables::kNoMeter;
      if (flow.type == net::TrafficClass::kRateConstrained) {
        // Police at the reserved rate with headroom; burst of 2 frames.
        const DataRate police(static_cast<std::int64_t>(
            static_cast<double>(flow.rate.bps()) * (1.0 + options_.cbs_headroom)));
        meter = device.install_meter(std::min(police, options_.runtime.link_rate),
                                     2 * flow.frame_bytes);
        if (meter == tables::kNoMeter) ++failures;
        cbs_bps[{hop.node, hop.out_port, flow.priority}] += flow.rate.bps();
      }

      const tables::ClassificationKey key{src_mac, dst_mac, flow.vid, flow.priority};
      // Tight 802.1Qci per-stream filter: the provisioned frame size is
      // the stream's max SDU; anything larger is a misbehaving talker.
      const tables::ClassificationResult result{
          meter, flow.priority, static_cast<std::int32_t>(flow.frame_bytes)};
      if (!device.add_class_entry(key, result)) {
        ++failures;
      }
    }

    // Register on the source NIC.
    nic_at(flow.src_host).add_flow(flow);
  }

  // Bind credit-based shapers for the aggregated RC reservations.
  for (const auto& [where, bps] : cbs_bps) {
    const auto& [node, port, queue] = where;
    const DataRate idle(std::min<std::int64_t>(
        options_.runtime.link_rate.bps(),
        static_cast<std::int64_t>(static_cast<double>(bps) *
                                  (1.0 + options_.cbs_headroom))));
    if (!switch_at(node).bind_shaper(
            port, queue, tables::CbsConfig::for_reservation(idle, options_.runtime.link_rate))) {
      ++failures;
    }
  }
  return failures;
}

std::int64_t Network::provision_route(const traffic::FlowSpec& flow,
                                       const std::vector<topo::Hop>& hops) {
  std::int64_t failures = 0;
  const MacAddress src_mac = traffic::host_mac(flow.src_host);
  const MacAddress dst_mac = traffic::host_mac(flow.dst_host);
  for (const topo::Hop& hop : hops) {
    if (topology_->node(hop.node).kind != topo::NodeKind::kSwitch) continue;
    sw::TsnSwitch& device = switch_at(hop.node);
    if (!device.add_unicast(dst_mac, flow.vid, hop.out_port)) ++failures;
    const tables::ClassificationKey key{src_mac, dst_mac, flow.vid, flow.priority};
    if (!device.add_class_entry(key,
                                tables::ClassificationResult{tables::kNoMeter, flow.priority})) {
      ++failures;
    }
  }
  return failures;
}

std::int64_t Network::provision_frer(const traffic::FlowSpec& flow, VlanId secondary_vid,
                                     std::size_t history_length) {
  flow.validate();
  require(flow.type == net::TrafficClass::kTimeSensitive,
          "provision_frer: replication is for TS streams");
  const auto primary = topology_->route(flow.src_host, flow.dst_host);
  require(primary.has_value(), "provision_frer: no route for the primary member");
  std::vector<topo::LinkId> used;
  for (const topo::Hop& hop : *primary) {
    // Only switch-to-switch links must be disjoint; the shared host
    // attachment links are unavoidable.
    const topo::Link& l = topology_->link(hop.link);
    if (topology_->node(l.node_a).kind == topo::NodeKind::kSwitch &&
        topology_->node(l.node_b).kind == topo::NodeKind::kSwitch) {
      used.push_back(hop.link);
    }
  }
  const auto secondary = topology_->route_avoiding(flow.src_host, flow.dst_host, used);
  require(secondary.has_value(),
          "provision_frer: no link-disjoint secondary path in this topology");

  std::int64_t failures = provision_route(flow, *primary);
  traffic::FlowSpec member = flow;
  member.vid = secondary_vid;
  failures += provision_route(member, *secondary);

  nic_at(flow.src_host).add_replicated_flow(flow, secondary_vid);
  nic_at(flow.dst_host).enable_frer_elimination(flow.id, history_length);
  return failures;
}

void Network::set_link_state(topo::LinkId link, bool up) {
  require(link < link_up_.size(), "set_link_state: unknown link");
  link_up_[link] = up;
}

void Network::set_link_corruption(topo::LinkId link, double bit_error_rate) {
  require(link < link_ber_.size(), "set_link_corruption: unknown link");
  require(bit_error_rate >= 0.0 && bit_error_rate < 1.0,
          "set_link_corruption: bit error rate must be in [0, 1)");
  link_ber_[link] = bit_error_rate;
}

void Network::set_switch_state(topo::NodeId node, bool up) {
  require(node < node_up_.size(), "set_switch_state: unknown node");
  require(switches_.find(node) != switches_.end(),
          "set_switch_state: node is not a switch");
  node_up_[node] = up;
}

void Network::fail_grandmaster() {
  require(gptp_ && options_.enable_gptp,
          "fail_grandmaster: time synchronization is not running");
  gptp_->fail_node(gptp_->grandmaster().index());
}

void Network::rebuild_sync_tree() {
  require(gptp_ && options_.enable_gptp,
          "rebuild_sync_tree: time synchronization is not running");
  // BMCA over the physical topology: undirected edges (link direction
  // restricts forwarding, not PTP), alive nodes only.
  std::vector<timesync::GptpDomain::Edge> edges;
  edges.reserve(topology_->link_count());
  for (const topo::Link& link : topology_->links()) {
    timesync::GptpDomain::Edge edge;
    edge.a = gptp_index_.at(link.node_a);
    edge.b = gptp_index_.at(link.node_b);
    edge.delay = link.propagation;
    edges.push_back(edge);
  }
  (void)gptp_->elect_and_build_tree(edges);
  gptp_->start(options_.gptp);
  ++gm_handoffs_;
  if (first_handoff_at_ == TimePoint::max()) first_handoff_at_ = sim_.now();
}

void Network::attach_recovery_tracker(fault::RecoveryTracker& tracker) {
  for (auto& [node, nic_ptr] : nics_) {
    (void)node;
    // The hooks outlive this frame; hold the tracker by pointer, not
    // through a captured reference to the parameter.
    nic_ptr->set_injection_hook(
        [t = &tracker](net::FlowId flow, std::uint64_t sequence, TimePoint at) {
          t->on_injection(flow, sequence, at);
        });
    nic_ptr->set_delivery_hook(
        [t = &tracker](net::FlowId flow, std::uint64_t sequence, TimePoint at) {
          t->on_delivery(flow, sequence, at);
        });
  }
}

void Network::set_flight(flight::FlightRecorder* recorder) {
  flight_ = recorder;
  for (auto& [node, sw_ptr] : switches_) sw_ptr->set_flight(recorder, node);
  for (auto& [node, nic_ptr] : nics_) {
    (void)node;
    nic_ptr->set_flight(recorder);
  }
}

void Network::start_network() {
  require(!network_started_, "Network::start_network: already started");
  network_started_ = true;
  // Under free_run_drift the domain exists (drifting clocks are attached)
  // but the synchronization protocol never runs.
  if (gptp_ && options_.enable_gptp) {
    gptp_->start(options_.gptp);
    // Track the worst-case error over the whole run, not just the final
    // instant. The probe arms after the 802.1AS startup window (~12 sync
    // exchanges: rate-ratio EWMA locked) so servo convergence transients
    // are not charged against the steady-state precision figure.
    sync_probe_ = std::make_unique<event::PeriodicTask>(
        sim_, sim_.now() + options_.gptp.sync_interval * 12, milliseconds(10), [this] {
          const Duration e = gptp_->max_abs_sync_error();
          if (e > worst_sync_error_) worst_sync_error_ = e;
          // After a grandmaster handoff the same probe also charges the
          // holdover + re-convergence excursion to its own high-water
          // mark, so campaigns can report it separately from the
          // steady-state figure.
          if (sim_.now() >= first_handoff_at_ && e > post_handoff_excursion_) {
            post_handoff_excursion_ = e;
          }
        });
  }
  for (auto& [node, sw_ptr] : switches_) sw_ptr->start();
}

void Network::start_traffic(TimePoint synced_start, Duration margin, Duration grid) {
  require(network_started_, "Network::start_traffic: start the network first");
  // Align to the gate grid so ITP offsets land in the planned slots.
  const Duration slot = grid.ns() > 0 ? grid : options_.runtime.slot_size;
  const TimePoint aligned = next_slot_boundary(synced_start, slot);
  for (auto& [node, nic_ptr] : nics_) nic_ptr->start_traffic(aligned, margin);
}

void Network::stop_traffic() {
  for (auto& [node, nic_ptr] : nics_) nic_ptr->stop_traffic();
}

sw::TsnSwitch& Network::switch_at(topo::NodeId node) {
  const auto it = switches_.find(node);
  require(it != switches_.end(), "switch_at: node is not a switch");
  return *it->second;
}

TsnNic& Network::nic_at(topo::NodeId node) {
  const auto it = nics_.find(node);
  require(it != nics_.end(), "nic_at: node is not a host");
  return *it->second;
}

std::uint64_t Network::total_switch_drops() const {
  std::uint64_t sum = 0;
  for (const auto& [node, sw_ptr] : switches_) sum += sw_ptr->counters().total_drops();
  return sum;
}

std::uint64_t Network::drops_by(sw::DropReason reason) const {
  std::uint64_t sum = 0;
  for (const auto& [node, sw_ptr] : switches_) {
    sum += sw_ptr->counters().drops[static_cast<std::size_t>(reason)];
  }
  return sum;
}

std::int64_t Network::peak_ts_queue_occupancy() const {
  std::int64_t peak = 0;
  for (const auto& [node, sw_ptr] : switches_) {
    for (std::int64_t p = 0; p < sw_ptr->port_count(); ++p) {
      auto& sched = sw_ptr->scheduler(static_cast<tables::PortIndex>(p));
      for (const std::uint8_t q :
           {options_.runtime.cqf_queue_a, options_.runtime.cqf_queue_b}) {
        if (q < sched.queue_count()) {
          peak = std::max(peak, static_cast<std::int64_t>(sched.queue(q).peak_occupancy()));
        }
      }
    }
  }
  return peak;
}

std::int64_t Network::peak_buffer_in_use() const {
  std::int64_t peak = 0;
  for (const auto& [node, sw_ptr] : switches_) {
    for (std::int64_t p = 0; p < sw_ptr->port_count(); ++p) {
      auto& sched = sw_ptr->scheduler(static_cast<tables::PortIndex>(p));
      peak = std::max(peak, sched.pool().peak_in_use());
    }
  }
  return peak;
}

Duration Network::max_sync_error() const {
  if (!gptp_) return Duration::zero();
  const Duration now_err = gptp_->max_abs_sync_error();
  return now_err > worst_sync_error_ ? now_err : worst_sync_error_;
}

std::int64_t Network::current_ts_queue_depth(topo::NodeId node) const {
  const auto it = switches_.find(node);
  require(it != switches_.end(), "current_ts_queue_depth: node is not a switch");
  std::int64_t depth = 0;
  for (std::int64_t p = 0; p < it->second->port_count(); ++p) {
    auto& sched = it->second->scheduler(static_cast<tables::PortIndex>(p));
    for (const std::uint8_t q :
         {options_.runtime.cqf_queue_a, options_.runtime.cqf_queue_b}) {
      if (q < sched.queue_count()) depth += static_cast<std::int64_t>(sched.queue(q).size());
    }
  }
  return depth;
}

void Network::collect_metrics(telemetry::MetricsRegistry& registry) const {
  for (const auto& [node, sw_ptr] : switches_) sw_ptr->collect_metrics(registry);
  if (gptp_ && options_.enable_gptp) gptp_->collect_metrics(registry);
  registry
      .counter("tsn.network.link_drops", {},
               "frames blackholed by failure-injected links")
      .add(link_drops_);
  registry
      .counter("tsn.network.corruption_drops", {},
               "frames dropped for FCS failure on bit-error-injected links")
      .add(corruption_drops_);
  registry
      .counter("tsn.network.reboot_drops", {},
               "frames dropped at switches that were mid-reboot")
      .add(reboot_drops_);
  registry
      .counter("tsn.network.gm_handoffs", {},
               "grandmaster handoffs (BMCA re-elections) performed")
      .add(gm_handoffs_);
  registry
      .gauge("tsn.network.post_handoff_sync_excursion_ns", {},
             "worst |sync error| at/after the first grandmaster handoff")
      .set(static_cast<double>(post_handoff_excursion_.ns()));
  registry
      .gauge("tsn.network.peak_ts_queue_occupancy", {},
             "peak occupancy over all CQF (TS) queues")
      .set(static_cast<double>(peak_ts_queue_occupancy()));
  registry
      .gauge("tsn.network.peak_buffer_in_use", {},
             "peak buffers concurrently in use in any port pool")
      .set(static_cast<double>(peak_buffer_in_use()));
  registry
      .gauge("tsn.network.max_sync_error_ns", {},
             "worst |sync error| observed by the 10 ms probe")
      .set(static_cast<double>(max_sync_error().ns()));
}

}  // namespace tsn::netsim
