#include "netsim/timeline_export.hpp"

#include <map>
#include <string>

#include "net/ethernet.hpp"

namespace tsn::netsim {

void export_flow_hops(const TraceRecorder& trace, const topo::Topology& topology,
                      DataRate link_rate, telemetry::TimelineBuilder& timeline) {
  timeline.set_process_name(kTimelineFlowsPid, "flows");
  std::map<net::FlowId, bool> named;
  for (const TraceEntry& e : trace.entries()) {
    if (e.flow == net::kInvalidFlowId) continue;
    const auto tid = static_cast<std::uint32_t>(e.flow);
    if (!named[e.flow]) {
      named[e.flow] = true;
      timeline.set_thread_name(kTimelineFlowsPid, tid, "flow " + std::to_string(e.flow));
    }
    const std::string name = topology.node(e.from).name + ":" +
                             std::to_string(e.from_port) + " -> " +
                             topology.node(e.to).name;
    const telemetry::TimelineBuilder::Args args = {
        {"seq", std::to_string(e.sequence)},
        {"frame_bytes", std::to_string(e.frame_bytes)},
    };
    if (e.link_down) {
      timeline.add_instant(name + " [LINK DOWN]", "hop", kTimelineFlowsPid, tid, e.at,
                           args);
      continue;
    }
    // The trace records the serialization END; the bar covers the wire time.
    const Duration wire = link_rate.transmission_time(net::wire_bits(e.frame_bytes));
    TimePoint start = e.at - wire;
    if (start.ns() < 0) start = TimePoint(0);
    timeline.add_complete(name, "hop", kTimelineFlowsPid, tid, start, e.at - start, args);
  }
}

void export_gate_grid(const sw::SwitchRuntimeConfig& rt, TimePoint from, TimePoint to,
                      telemetry::TimelineBuilder& timeline, std::size_t max_events) {
  if (!rt.enable_cqf || rt.slot_size.ns() <= 0 || to <= from) return;
  timeline.set_process_name(kTimelineGatesPid, "gates");
  const std::uint32_t tid_a = rt.cqf_queue_a;
  const std::uint32_t tid_b = rt.cqf_queue_b;
  timeline.set_thread_name(kTimelineGatesPid, tid_a,
                           "queue " + std::to_string(rt.cqf_queue_a) + " egress");
  timeline.set_thread_name(kTimelineGatesPid, tid_b,
                           "queue " + std::to_string(rt.cqf_queue_b) + " egress");
  // Ping-pong: in even slots queue A fills while queue B drains (egress
  // open), odd slots swap. Slot boundaries are aligned to synchronized
  // time 0, matching TsnSwitch::program_cqf's cycle base.
  const std::int64_t slot = rt.slot_size.ns();
  std::int64_t k = from.ns() / slot;
  std::size_t emitted = 0;
  for (; TimePoint(k * slot) < to && emitted < max_events; ++k, ++emitted) {
    const TimePoint slot_start(k * slot);
    const bool even = (k % 2) == 0;
    timeline.add_complete("open", "gate", kTimelineGatesPid, even ? tid_b : tid_a,
                          slot_start, rt.slot_size,
                          {{"slot", std::to_string(k)}});
  }
}

void export_flight_spans(const flight::FlightReport& report,
                         const topo::Topology& topology,
                         telemetry::TimelineBuilder& timeline) {
  if (report.frames.empty()) return;
  timeline.set_process_name(kTimelineFlightPid, "flight");
  net::FlowId named = 0;
  bool any_named = false;
  std::uint64_t id = 0;
  for (const flight::FrameRecord& rec : report.frames) {
    if (!any_named || rec.key.flow != named) {
      timeline.set_thread_name(kTimelineFlightPid, rec.key.flow,
                               "flow " + std::to_string(rec.key.flow));
      named = rec.key.flow;
      any_named = true;
    }
    ++id;  // one correlation id per retained frame occurrence
    const std::string frame_name = "frame " + std::to_string(rec.key.flow) + "/" +
                                   std::to_string(rec.key.sequence) + "/" +
                                   std::to_string(rec.key.vid);
    const telemetry::TimelineBuilder::Args frame_args = {
        {"cause", flight::to_string(rec.cause)},
        {"latency_ns", std::to_string(rec.latency().ns())}};
    timeline.add_async_begin(frame_name, "flight", kTimelineFlightPid, rec.key.flow,
                             id, rec.injected_at, frame_args);
    for (const flight::Span& span : rec.spans) {
      std::string name = flight::to_string(span.kind);
      if (span.node != topo::kInvalidNode && span.node < topology.node_count()) {
        name += " @" + topology.node(span.node).name;
      }
      telemetry::TimelineBuilder::Args args;
      if (span.kind == flight::SpanKind::kQueueWait) {
        args.push_back({"queued_behind", std::to_string(span.queued_behind)});
      }
      if (span.kind == flight::SpanKind::kDrop) {
        args.push_back({"cause", flight::to_string(span.cause)});
      }
      timeline.add_async_begin(name, "flight", kTimelineFlightPid, rec.key.flow, id,
                               span.start, args);
      timeline.add_async_end(name, "flight", kTimelineFlightPid, rec.key.flow, id,
                             span.end);
    }
    timeline.add_async_end(frame_name, "flight", kTimelineFlightPid, rec.key.flow,
                           id, rec.ended_at);
  }
}

}  // namespace tsn::netsim
