// Mapping from the network wire-drop counters (Network::link_drops /
// reboot_drops / corruption_drops) to flight-recorder causes. The switch
// statement is exhaustive under -Werror=switch, mirroring
// switch/flight_map.hpp for the MIB drop reasons.
#pragma once

#include <cstdint>

#include "flight/recorder.hpp"

namespace tsn::netsim {

/// One enumerator per Network wire-drop counter.
enum class WireDrop : std::uint8_t {
  kLinkDown,    // Network::link_drops
  kSwitchDown,  // Network::reboot_drops
  kCorrupted,   // Network::corruption_drops
  kCount,
};

[[nodiscard]] constexpr flight::Cause flight_cause(WireDrop drop) {
  switch (drop) {
    case WireDrop::kLinkDown: return flight::Cause::kLinkDown;
    case WireDrop::kSwitchDown: return flight::Cause::kSwitchRebooting;
    case WireDrop::kCorrupted: return flight::Cause::kCorrupted;
    case WireDrop::kCount: break;
  }
  return flight::Cause::kInFlight;  // unreachable for valid drops
}

}  // namespace tsn::netsim
