#include "netsim/trace.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace tsn::netsim {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  require(capacity > 0, "TraceRecorder: capacity must be positive");
  // An effectively-unbounded recorder (kUnlimited) still reserves only a
  // sane prefix; the vector grows on demand past it.
  entries_.reserve(capacity < 65536 ? capacity : 65536);
}

void TraceRecorder::record(TraceEntry entry) {
  ++total_;
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  entries_[head_] = entry;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEntry> TraceRecorder::entries() const {
  std::vector<TraceEntry> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(entries_[(head_ + i) % entries_.size()]);
  }
  return out;
}

std::vector<TraceEntry> TraceRecorder::path_of(net::FlowId flow,
                                               std::uint64_t sequence) const {
  std::vector<TraceEntry> out;
  for (const TraceEntry& e : entries()) {
    if (e.flow == flow && e.sequence == sequence) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::render(const topo::Topology& topology, std::size_t limit) const {
  const std::vector<TraceEntry> all = entries();
  const std::size_t start = all.size() > limit ? all.size() - limit : 0;
  std::string out;
  if (start > 0) {
    out += "(showing last " + std::to_string(all.size() - start) + " of " +
           std::to_string(all.size()) + " entries)\n";
  }
  for (std::size_t i = start; i < all.size(); ++i) {
    const TraceEntry& e = all[i];
    out += to_string(e.at) + "  " + topology.node(e.from).name + ":" +
           std::to_string(e.from_port) + " -> " + topology.node(e.to).name + "  flow " +
           std::to_string(e.flow) + " seq " + std::to_string(e.sequence) + "  " +
           std::to_string(e.frame_bytes) + "B";
    if (e.link_down) out += "  [LINK DOWN]";
    out += "\n";
  }
  if (dropped_entries() > 0) {
    out += "(" + std::to_string(dropped_entries()) + " older entries overwritten)\n";
  }
  return out;
}

std::string TraceRecorder::to_csv() const {
  std::string out = "# dropped_entries=" + std::to_string(dropped_entries()) + "\n";
  out += "at_ns,from,from_port,to,flow,sequence,frame_bytes,link_down\n";
  for (const TraceEntry& e : entries()) {
    out += std::to_string(e.at.ns()) + "," + std::to_string(e.from) + "," +
           std::to_string(e.from_port) + "," + std::to_string(e.to) + "," +
           std::to_string(e.flow) + "," + std::to_string(e.sequence) + "," +
           std::to_string(e.frame_bytes) + "," + (e.link_down ? "1" : "0") + "\n";
  }
  return out;
}

std::string TraceRecorder::to_json() const {
  std::string out = "{\"total_recorded\":" + std::to_string(total_) +
                    ",\"dropped_entries\":" + std::to_string(dropped_entries()) +
                    ",\"entries\":[";
  bool first = true;
  for (const TraceEntry& e : entries()) {
    if (!first) out += ",";
    first = false;
    out += "{\"at_ns\":" + std::to_string(e.at.ns()) +
           ",\"from\":" + std::to_string(e.from) +
           ",\"from_port\":" + std::to_string(e.from_port) +
           ",\"to\":" + std::to_string(e.to) + ",\"flow\":" + std::to_string(e.flow) +
           ",\"sequence\":" + std::to_string(e.sequence) +
           ",\"frame_bytes\":" + std::to_string(e.frame_bytes) +
           ",\"link_down\":" + (e.link_down ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

void TraceRecorder::clear() {
  entries_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace tsn::netsim
