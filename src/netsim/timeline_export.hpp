// Converts a recorded run into Chrome trace-event lanes (Perfetto /
// chrome://tracing). Three lane groups:
//
//   pid 1 "flows"  — one lane per flow; each hop is a complete ("X") bar
//                    spanning the frame's serialization onto the link, so
//                    a packet's path reads left-to-right across the lane.
//   pid 2 "gates"  — the nominal CQF slot grid: alternating open windows
//                    of the ping-pong queue pair (capped, see below).
//   pid 3 "queues" — TS queue-depth counter samples, one series per
//                    switch (added live by the scenario runner).
//   pid 4 "flight" — per-frame causal spans from the flight recorder,
//                    one lane per flow; each retained frame renders as
//                    one nestable async span per lineage segment.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "common/units.hpp"
#include "flight/recorder.hpp"
#include "netsim/trace.hpp"
#include "switch/config.hpp"
#include "telemetry/timeline.hpp"
#include "topo/topology.hpp"

namespace tsn::netsim {

inline constexpr std::uint32_t kTimelineFlowsPid = 1;
inline constexpr std::uint32_t kTimelineGatesPid = 2;
inline constexpr std::uint32_t kTimelineQueuesPid = 3;
inline constexpr std::uint32_t kTimelineFlightPid = 4;

/// Emits one "X" event per trace entry: the bar covers the frame's wire
/// time ending at the recorded hand-off instant. Blackholed frames
/// (link_down) become instant markers instead of bars.
void export_flow_hops(const TraceRecorder& trace, const topo::Topology& topology,
                      DataRate link_rate, telemetry::TimelineBuilder& timeline);

/// Emits the nominal CQF slot grid over [from, to): alternating open
/// windows for the runtime config's queue pair, one lane per queue. At
/// most `max_events` bars are emitted (long runs get the leading
/// prefix); no-op when CQF is disabled.
void export_gate_grid(const sw::SwitchRuntimeConfig& rt, TimePoint from, TimePoint to,
                      telemetry::TimelineBuilder& timeline,
                      std::size_t max_events = 4096);

/// Emits every retained flight-recorder frame as async ("b"/"e") spans:
/// one lane per flow (tid = flow id), one frame-level envelope span per
/// retained occurrence plus a child span per lineage segment, correlated
/// by a per-frame id. Frames render in report (key) order, so the output
/// is byte-identical across campaign worker counts.
void export_flight_spans(const flight::FlightReport& report,
                         const topo::Topology& topology,
                         telemetry::TimelineBuilder& timeline);

}  // namespace tsn::netsim
