// TSNNic — the network tester endpoint (paper §IV.A): a host NIC that
// injects user-defined TS/RC/BE flows and, on the listener side, hands
// delivered packets to the analyzer.
//
//  * TS flows inject periodically at ITP-planned offsets, scheduled on the
//    host's gPTP-disciplined clock so injections align with the network's
//    CQF slot grid.
//  * RC flows are token-paced at their reserved rate.
//  * BE flows emit with exponential (Poisson) gaps at their mean rate.
//
// Egress is a serializing FIFO at link rate — one frame at a time on the
// wire, like any real NIC.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include <map>
#include <optional>

#include "analysis/analyzer.hpp"
#include "frer/sequence_recovery.hpp"
#include "common/rng.hpp"
#include "event/simulator.hpp"
#include "net/packet.hpp"
#include "timesync/clock.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::flight {
class FlightRecorder;
}  // namespace tsn::flight

namespace tsn::netsim {

class TsnNic {
 public:
  /// Invoked at the end of a frame's serialization; the network layer adds
  /// propagation delay and delivers to the attached switch port.
  using TxCallback = event::Function<void(const net::Packet&)>;

  TsnNic(event::Simulator& sim, topo::NodeId node, DataRate link_rate,
         analysis::Analyzer& analyzer, std::uint64_t seed);

  [[nodiscard]] topo::NodeId node() const { return node_; }
  [[nodiscard]] MacAddress mac() const { return traffic::host_mac(node_); }

  void set_tx_callback(TxCallback cb) { tx_cb_ = std::move(cb); }

  /// Fault-plane instrumentation (fault::RecoveryTracker): the injection
  /// hook fires once per *logical* injection (FRER replicas share one),
  /// the delivery hook once per frame that reaches the analyzer — i.e.
  /// after duplicate elimination. Pure observers: attaching them must not
  /// change simulation behavior.
  using FlowEventHook = event::Function<void(net::FlowId, std::uint64_t, TimePoint)>;
  void set_injection_hook(FlowEventHook hook) { injection_hook_ = std::move(hook); }
  void set_delivery_hook(FlowEventHook hook) { delivery_hook_ = std::move(hook); }

  /// Uses a gPTP-disciplined clock for injection timing (must outlive the
  /// NIC). Without one, injections run on true simulation time.
  void use_clock(const timesync::LocalClock& clock) { clock_ = &clock; }

  /// Attaches the flight recorder (pure observer; nullptr detaches).
  void set_flight(flight::FlightRecorder* recorder) { flight_ = recorder; }

  /// Registers a flow sourced at this host. Call before start_traffic.
  void add_flow(const traffic::FlowSpec& flow);

  /// Registers an 802.1CB-replicated flow: every injection emits two
  /// copies sharing the flow id and sequence number — the primary tagged
  /// with flow.vid, the secondary with `secondary_vid` (provisioned over
  /// a link-disjoint route). The analyzer counts one logical injection.
  void add_replicated_flow(const traffic::FlowSpec& flow, VlanId secondary_vid);

  /// Enables FRER sequence recovery for `flow` at this listener: the
  /// first copy of each sequence number is delivered, duplicates are
  /// eliminated before they reach the analyzer.
  void enable_frer_elimination(net::FlowId flow, std::size_t history_length = 64);

  /// Total duplicates eliminated by sequence recovery at this NIC.
  [[nodiscard]] std::uint64_t frer_discarded() const;

  /// Starts the injection machinery. `margin` delays the first injection
  /// of the *scheduled* classes past the synchronized start: TS flow k
  /// injects at synchronized times `traffic_start + injection_offset +
  /// margin + n*period` (placing each injection safely inside its CQF
  /// slot), and RC pacing starts at `traffic_start + margin` so reserved
  /// streams only flow once gates are live. BE traffic ignores the margin
  /// — its Poisson gaps start from the raw traffic start.
  void start_traffic(TimePoint traffic_start_synced, Duration margin);

  /// Stops starting new injections (in-flight frames still drain).
  void stop_traffic() { stopped_ = true; }

  /// A frame addressed to this host has fully arrived.
  void receive(const net::Packet& packet);

  [[nodiscard]] std::uint64_t injected_packets() const { return injected_; }
  [[nodiscard]] std::uint64_t received_packets() const { return received_; }

 private:
  [[nodiscard]] TimePoint to_true(TimePoint synced_target) const;
  void schedule_ts(std::size_t flow_index, std::uint64_t occurrence);
  void schedule_paced(std::size_t flow_index, TimePoint first_true);
  void schedule_poisson(std::size_t flow_index);

  void inject(std::size_t flow_index);
  void enqueue_tx(net::Packet packet);
  void kick_tx();

  event::Simulator& sim_;
  topo::NodeId node_;
  DataRate link_rate_;
  analysis::Analyzer* analyzer_;
  Rng rng_;

  const timesync::LocalClock* clock_ = nullptr;
  TxCallback tx_cb_;
  FlowEventHook injection_hook_;
  FlowEventHook delivery_hook_;

  std::vector<traffic::FlowSpec> flows_;
  std::vector<std::optional<VlanId>> secondary_vid_;
  std::vector<std::uint64_t> sequence_;
  /// Per-RC-flow pacing remainder in units of bits·1e9 mod rate (bps):
  /// the sub-nanosecond part of the ideal inter-frame gap carried forward
  /// so the achieved rate matches the reservation exactly over any
  /// horizon instead of drifting fast by the truncated fraction.
  std::vector<std::int64_t> pace_acc_;
  std::map<net::FlowId, frer::SequenceRecovery> recovery_;
  TimePoint traffic_start_{};
  Duration margin_{};
  bool started_ = false;
  bool stopped_ = false;

  std::deque<net::Packet> tx_fifo_;
  bool tx_busy_ = false;
  flight::FlightRecorder* flight_ = nullptr;
  /// Serialization start of the frame currently on the wire (tx_busy_):
  /// read by the completion lambda before kick_tx() re-arms it.
  TimePoint tx_started_{};

  std::uint64_t injected_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace tsn::netsim
