// Scenario runner: one self-contained experiment — build the network,
// plan injections (ITP), warm up gPTP, run traffic, drain, and collect
// the metrics the paper reports. All Fig. 2 / Fig. 7 benches, the
// examples, and the integration tests drive this.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/analyzer.hpp"
#include "fault/plan.hpp"
#include "netsim/network.hpp"
#include "netsim/trace.hpp"
#include "sched/itp.hpp"
#include "sched/qbv.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "topo/builders.hpp"
#include "traffic/flow.hpp"

namespace tsn::netsim {

/// Observability hooks: non-owning sinks the runner fills during/after
/// the run. All outputs derive from simulated time only, so snapshots
/// are byte-identical across hosts and thread counts.
struct ScenarioObserve {
  /// Filled at scenario end with the full network/kernel/plan export.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Receives flow-hop bars, the nominal gate grid, and TS queue-depth
  /// samples (Chrome trace-event lanes).
  telemetry::TimelineBuilder* timeline = nullptr;
  /// Attached as the network's port mirror for the whole run. When only
  /// `timeline` is set, the runner uses an internal recorder instead.
  TraceRecorder* trace = nullptr;
  /// Per-frame causal flight recorder, attached to every device and the
  /// wire for the whole run. Fault actions are stitched in as
  /// annotations; the runner fills ScenarioResult::worst_frame_* from
  /// its report and (with `timeline` also set) exports flight spans as
  /// async timeline lanes. Pure observer — attaching it never changes
  /// simulation behavior.
  flight::FlightRecorder* flight = nullptr;
  /// TS queue-depth sampling period for the timeline's counter lane.
  Duration queue_sample_interval = milliseconds(1);
};

struct ScenarioConfig {
  topo::BuiltTopology built;
  NetworkOptions options;
  std::vector<traffic::FlowSpec> flows;

  /// gPTP convergence time before traffic starts.
  Duration warmup = milliseconds(200);
  /// Measured traffic window.
  Duration traffic_duration = milliseconds(300);
  /// Extra time for in-flight packets to land after injection stops.
  Duration drain = milliseconds(5);
  /// Injection placement inside the planned slot.
  Duration injection_margin = microseconds(2);
  /// Plan injection offsets with ITP (false = all flows inject at period
  /// start — the ablation baseline).
  bool use_itp = true;

  /// Gate control flavour: CQF (2-entry ping-pong, the paper's
  /// evaluation) or a synthesized full-cycle 802.1Qbv program
  /// (guideline 2's general case). Qbv requires every TS period to be a
  /// multiple of the slot and a gate_table_size large enough for the
  /// synthesized program (see ScenarioResult::qbv_gate_entries).
  enum class GateMode { kCqf, kQbv };
  GateMode gate_mode = GateMode::kCqf;

  /// FRER (802.1CB): provision every TS flow over two link-disjoint
  /// paths — the primary under flow.vid, the secondary under
  /// frer_secondary_base_vid + flow.id — with talker replication and
  /// listener duplicate elimination. Requires a topology with disjoint
  /// paths (e.g. the bidirectional ring builder).
  bool use_frer = false;
  VlanId frer_secondary_base_vid = 2000;
  /// Listener sequence-recovery history window (frames).
  std::size_t frer_history_length = 64;

  /// Fault plan, times relative to traffic start. Expanded with the
  /// "fault" RNG stream of options.seed (a pure function of plan +
  /// topology + seed) and driven through the simulator, so fault
  /// schedules are byte-identical across campaign worker counts.
  fault::FaultPlan faults;

  /// Also export the per-flow analyzer results as CSV into
  /// ScenarioResult::flow_csv (off by default; large for big flow sets).
  bool export_flow_csv = false;

  /// Observability sinks (metrics registry, timeline, packet trace).
  ScenarioObserve observe;
};

struct ScenarioResult {
  analysis::ClassSummary ts;
  analysis::ClassSummary rc;
  analysis::ClassSummary be;

  /// TS latency percentiles over the pooled per-packet samples of every
  /// TS flow (0 when nothing was delivered). The campaign sink exports
  /// these alongside mean/jitter.
  double ts_p50_us = 0.0;
  double ts_p99_us = 0.0;

  std::uint64_t provisioning_failures = 0;
  std::uint64_t switch_drops = 0;
  std::uint64_t ts_gate_drops = 0;     // ingress-gate-closed drops
  std::uint64_t queue_full_drops = 0;
  std::uint64_t buffer_drops = 0;
  std::int64_t peak_ts_queue = 0;
  std::int64_t peak_buffer_in_use = 0;
  Duration max_sync_error{};
  sched::ItpPlan plan;
  /// Entries of the largest synthesized Qbv gate program (0 under CQF).
  std::int64_t qbv_gate_entries = 0;

  // --- fault plane (all zero without faults/FRER) -----------------------
  /// Atomic fault actions applied during the run.
  std::uint64_t fault_actions = 0;
  std::uint64_t link_down_drops = 0;
  std::uint64_t corruption_drops = 0;
  std::uint64_t reboot_drops = 0;
  std::uint64_t gm_handoffs = 0;
  /// Worst |sync error| at/after the first grandmaster handoff.
  Duration post_handoff_sync_excursion{};
  /// Deliveries that escaped FRER duplicate elimination (0 = correct).
  std::uint64_t frer_duplicate_escapes = 0;
  /// TS frames injected after the first dataplane fault that never
  /// arrived (0 when a redundant path survived every fault).
  std::uint64_t frames_lost_failover = 0;
  /// Worst fault-to-next-delivery gap over the tracked TS flows.
  Duration worst_recovery{};
  /// Byte-stable text form of the expanded fault schedule.
  std::string fault_schedule;

  // --- flight plane (empty without ScenarioObserve::flight) ------------
  /// Latency of the worst retained frame occurrence (0 = none retained).
  std::int64_t worst_frame_latency_ns = 0;
  /// Name of the hop where that frame spent the most time.
  std::string worst_frame_hop;
  /// Full span lineage of that frame as a JSON object.
  std::string worst_frame_json;

  /// ASCII histogram of per-packet TS latency (20 bins over the observed
  /// range), for quick distribution inspection in bench/example output.
  std::string ts_latency_histogram;

  /// Per-flow CSV (when ScenarioConfig::export_flow_csv is set).
  std::string flow_csv;

  /// Kernel statistics of the run.
  std::uint64_t events_executed = 0;
  TimePoint sim_end{};
};

/// Runs the scenario to completion on a fresh simulator.
[[nodiscard]] ScenarioResult run_scenario(ScenarioConfig config);

}  // namespace tsn::netsim
