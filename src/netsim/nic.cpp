#include "netsim/nic.hpp"

#include "common/error.hpp"
#include "flight/recorder.hpp"

namespace tsn::netsim {

TsnNic::TsnNic(event::Simulator& sim, topo::NodeId node, DataRate link_rate,
               analysis::Analyzer& analyzer, std::uint64_t seed)
    : sim_(sim), node_(node), link_rate_(link_rate), analyzer_(&analyzer), rng_(seed) {}

void TsnNic::add_flow(const traffic::FlowSpec& flow) {
  require(!started_, "TsnNic::add_flow: traffic already started");
  require(flow.src_host == node_, "TsnNic::add_flow: flow is not sourced at this host");
  flow.validate();
  flows_.push_back(flow);
  secondary_vid_.push_back(std::nullopt);
  sequence_.push_back(0);
  pace_acc_.push_back(0);
}

void TsnNic::add_replicated_flow(const traffic::FlowSpec& flow, VlanId secondary_vid) {
  require(secondary_vid >= 1 && secondary_vid <= 4094 && secondary_vid != flow.vid,
          "add_replicated_flow: secondary VID invalid or equal to the primary");
  add_flow(flow);
  secondary_vid_.back() = secondary_vid;
}

void TsnNic::enable_frer_elimination(net::FlowId flow, std::size_t history_length) {
  recovery_.emplace(flow, frer::SequenceRecovery(history_length));
}

std::uint64_t TsnNic::frer_discarded() const {
  std::uint64_t sum = 0;
  for (const auto& [flow, rec] : recovery_) sum += rec.discarded();
  return sum;
}

TimePoint TsnNic::to_true(TimePoint synced_target) const {
  TimePoint due = clock_ ? clock_->true_for_synced(synced_target) : synced_target;
  return due < sim_.now() ? sim_.now() : due;
}

void TsnNic::start_traffic(TimePoint traffic_start_synced, Duration margin) {
  require(!started_, "TsnNic::start_traffic: already started");
  started_ = true;
  traffic_start_ = traffic_start_synced;
  margin_ = margin;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    switch (flows_[i].type) {
      case net::TrafficClass::kTimeSensitive:
        schedule_ts(i, 0);
        break;
      case net::TrafficClass::kRateConstrained:
        // Like TS flows, RC pacing honours the margin: the reservation is
        // meaningless until the gate/meter machinery is live at start+margin.
        schedule_paced(i, to_true(traffic_start_synced + margin_));
        break;
      case net::TrafficClass::kBestEffort:
        schedule_poisson(i);
        break;
    }
  }
}

void TsnNic::schedule_ts(std::size_t flow_index, std::uint64_t occurrence) {
  const traffic::FlowSpec& f = flows_[flow_index];
  // Target in *synchronized* (network) time; each occurrence re-maps
  // through the disciplined clock so injections track the slot grid even
  // as the servo trims the clock.
  const TimePoint target = traffic_start_ + f.injection_offset + margin_ +
                           f.period * static_cast<std::int64_t>(occurrence);
  sim_.schedule_at(to_true(target), [this, flow_index, occurrence] {
    if (stopped_) return;
    inject(flow_index);
    schedule_ts(flow_index, occurrence + 1);
  });
}

void TsnNic::schedule_paced(std::size_t flow_index, TimePoint first_true) {
  const TimePoint due = first_true < sim_.now() ? sim_.now() : first_true;
  sim_.schedule_at(due, [this, flow_index, due] {
    if (stopped_) return;
    inject(flow_index);
    // Exact pacing on the integer-ns grid: the ideal gap is
    // wire_bits/rate seconds = (bits·1e9)/bps ns, which rarely divides
    // evenly. Truncating every gap makes the flow systematically faster
    // than its reservation (and drift without bound on long runs), so the
    // fractional remainder — (bits·1e9) mod bps — is carried into the
    // next gap instead of discarded.
    const traffic::FlowSpec& f = flows_[flow_index];
    const std::int64_t bps = f.rate.bps();
    const std::int64_t scaled =
        net::wire_bits(f.frame_bytes).bits() * 1'000'000'000 + pace_acc_[flow_index];
    pace_acc_[flow_index] = scaled % bps;
    schedule_paced(flow_index, due + Duration(scaled / bps));
  });
}

void TsnNic::schedule_poisson(std::size_t flow_index) {
  const traffic::FlowSpec& f = flows_[flow_index];
  const double mean_gap_ns = static_cast<double>(net::wire_bits(f.frame_bytes).bits()) /
                             static_cast<double>(f.rate.bps()) * 1e9;
  const Duration gap(static_cast<std::int64_t>(rng_.exponential(mean_gap_ns)) + 1);
  sim_.schedule_in(gap, [this, flow_index] {
    if (stopped_) return;
    inject(flow_index);
    schedule_poisson(flow_index);
  });
}

void TsnNic::inject(std::size_t flow_index) {
  const traffic::FlowSpec& f = flows_[flow_index];
  net::Packet p = traffic::make_flow_packet(f);
  p.meta = f.meta_for(sequence_[flow_index]++, sim_.now());
  analyzer_->record_injection(f.id, f.type);
  ++injected_;
  if (injection_hook_) injection_hook_(f.id, p.meta.sequence, sim_.now());
  if (flight_ != nullptr) flight_->on_injection(p, node_, sim_.now());
  if (secondary_vid_[flow_index]) {
    // FRER replication: the member copy differs only in its VID (the
    // stream identification the disjoint route is provisioned under).
    // The primary serializes first — 802.1CB replicates at the talker,
    // so the primary path carries the original frame and recovery stats
    // attribute first arrivals to it under healthy conditions.
    net::Packet copy = p;
    copy.vlan.vid = *secondary_vid_[flow_index];
    // The FRER member copy is its own frame occurrence (same flow/seq,
    // different VID), so it gets its own injection span.
    if (flight_ != nullptr) flight_->on_injection(copy, node_, sim_.now());
    enqueue_tx(std::move(p));
    enqueue_tx(std::move(copy));
    return;
  }
  enqueue_tx(std::move(p));
}

void TsnNic::enqueue_tx(net::Packet packet) {
  tx_fifo_.push_back(std::move(packet));
  kick_tx();
}

void TsnNic::kick_tx() {
  if (tx_busy_ || tx_fifo_.empty()) return;
  tx_busy_ = true;
  tx_started_ = sim_.now();
  const net::Packet packet = tx_fifo_.front();
  tx_fifo_.pop_front();
  const Duration wire = link_rate_.transmission_time(packet.wire_bits());
  sim_.schedule_in(wire, [this, packet] {
    // Read before kick_tx() re-arms the next frame's start.
    const TimePoint started = tx_started_;
    tx_busy_ = false;
    if (flight_ != nullptr) flight_->on_serialize(packet, node_, 0, 0, started, sim_.now());
    if (tx_cb_) tx_cb_(packet);
    kick_tx();
  });
}

void TsnNic::receive(const net::Packet& packet) {
  // FRER sequence recovery: only the first copy of a sequence number
  // passes to the analyzer.
  if (const auto it = recovery_.find(packet.meta.flow_id); it != recovery_.end()) {
    if (!it->second.accept(packet.meta.sequence)) {
      if (flight_ != nullptr) flight_->on_frer_eliminated(packet, node_, sim_.now());
      return;
    }
  }
  ++received_;
  if (flight_ != nullptr) flight_->on_delivered(packet, node_, sim_.now());
  analyzer_->record_delivery(packet, sim_.now());
  if (delivery_hook_) delivery_hook_(packet.meta.flow_id, packet.meta.sequence, sim_.now());
}

}  // namespace tsn::netsim
