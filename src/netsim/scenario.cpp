#include "netsim/scenario.hpp"

#include <memory>
#include <utility>

#include "analysis/histogram.hpp"
#include "common/error.hpp"
#include "event/simulator.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "flight/explain.hpp"
#include "flight/recorder.hpp"
#include "netsim/timeline_export.hpp"

namespace tsn::netsim {

ScenarioResult run_scenario(ScenarioConfig config) {
  event::Simulator sim;

  // Plan injection offsets before building anything: ITP spreads the TS
  // flows across the slots of their periods.
  sched::ItpPlanner planner(config.built.topology, config.options.runtime.slot_size);
  ScenarioResult result;
  result.plan = config.use_itp ? planner.plan(config.flows) : planner.plan_naive(config.flows);
  result.plan.apply(config.flows);

  const bool qbv = config.gate_mode == ScenarioConfig::GateMode::kQbv;
  if (qbv) config.options.runtime.enable_cqf = false;

  Network network(sim, config.built.topology, config.options);
  if (config.use_frer) {
    // TS flows ride two link-disjoint member paths; RC/BE provision as
    // usual (redundancy is a TS-stream feature in 802.1CB terms).
    std::int64_t failures = 0;
    std::vector<traffic::FlowSpec> unprotected;
    for (const traffic::FlowSpec& flow : config.flows) {
      if (flow.type != net::TrafficClass::kTimeSensitive) {
        unprotected.push_back(flow);
        continue;
      }
      const std::uint32_t vid =
          static_cast<std::uint32_t>(config.frer_secondary_base_vid) + flow.id;
      require(vid <= kMaxVlanId - 1,
              "run_scenario: FRER secondary VID range exhausted");
      failures += network.provision_frer(flow, static_cast<VlanId>(vid),
                                         config.frer_history_length);
    }
    failures += network.provision(unprotected);
    result.provisioning_failures = static_cast<std::uint64_t>(failures);
  } else {
    result.provisioning_failures =
        static_cast<std::uint64_t>(network.provision(config.flows));
  }

  // Fault plane: per-flow recovery bookkeeping plus the expanded,
  // seed-deterministic action schedule (armed once traffic start is
  // known, below).
  fault::RecoveryTracker recovery;
  const bool fault_plane = config.use_frer || !config.faults.empty();
  if (fault_plane) {
    for (const traffic::FlowSpec& flow : config.flows) {
      if (flow.type == net::TrafficClass::kTimeSensitive) {
        recovery.track_flow(flow.id, flow.period);
      }
    }
    network.attach_recovery_tracker(recovery);
  }
  fault::FaultInjector injector(sim, network, fault_plane ? &recovery : nullptr);
  std::vector<fault::FaultAction> fault_schedule;
  if (!config.faults.empty()) {
    fault_schedule =
        fault::expand(config.faults, config.built.topology, config.options.seed);
    result.fault_schedule = fault::render_schedule(fault_schedule);
  }

  // Observability: attach the port mirror (caller's, or an internal one
  // when only the timeline needs hop records) and sample TS queue depths
  // for the timeline's counter lane.
  std::unique_ptr<TraceRecorder> own_trace;
  TraceRecorder* trace = config.observe.trace;
  if (trace == nullptr && config.observe.timeline != nullptr) {
    own_trace = std::make_unique<TraceRecorder>(65536);
    trace = own_trace.get();
  }
  if (trace != nullptr) network.set_trace(trace);
  flight::FlightRecorder* flight = config.observe.flight;
  if (flight != nullptr) network.set_flight(flight);

  std::unique_ptr<event::PeriodicTask> queue_sampler;
  if (config.observe.timeline != nullptr) {
    telemetry::TimelineBuilder& timeline = *config.observe.timeline;
    timeline.set_process_name(kTimelineQueuesPid, "queues");
    for (const topo::NodeId node : config.built.topology.switches()) {
      timeline.set_thread_name(kTimelineQueuesPid, static_cast<std::uint32_t>(node),
                               config.built.topology.node(node).name);
    }
    const topo::Topology& topology = config.built.topology;
    queue_sampler = std::make_unique<event::PeriodicTask>(
        sim, TimePoint(0), config.observe.queue_sample_interval,
        [&sim, &network, &timeline, &topology] {
          for (const topo::NodeId node : topology.switches()) {
            timeline.add_counter(
                "ts_queue_depth." + topology.node(node).name, kTimelineQueuesPid,
                sim.now(), "packets",
                static_cast<double>(network.current_ts_queue_depth(node)));
          }
        });
  }

  // Alignment grid for gate cycles and traffic start: the CQF slot, or
  // the full scheduling cycle under a synthesized Qbv program.
  Duration grid = config.options.runtime.slot_size;
  if (qbv) {
    sched::QbvSynthesizer synth(config.built.topology,
                                config.options.runtime.slot_size);
    const sched::QbvProgram program = synth.synthesize(config.flows);
    result.qbv_gate_entries = program.required_gate_entries();
    for (const auto& [where, port_program] : program.ports) {
      network.switch_at(where.first)
          .program_gates(where.second, port_program.ingress, port_program.egress,
                         TimePoint(0));
    }
    grid = program.cycle;
  }

  network.start_network();
  sim.run_until(TimePoint(0) + config.warmup);

  // Traffic begins on the next grid boundary after (warmup + 1 ms) in
  // network time; the margin keeps injections inside their planned slot.
  const TimePoint traffic_start = TimePoint(0) + config.warmup + milliseconds(1);
  network.start_traffic(traffic_start, config.injection_margin, grid);
  if (flight != nullptr) {
    // Stitch the fault actions into the flight record as annotations, so
    // `tsnb explain` shows "link[2] down" next to the frames it killed.
    for (const fault::FaultAction& action : fault_schedule) {
      std::string text = fault::action_kind_name(action.kind);
      switch (action.kind) {
        case fault::ActionKind::kLinkDown:
        case fault::ActionKind::kLinkUp:
        case fault::ActionKind::kCorruptStart:
        case fault::ActionKind::kCorruptStop:
          text += " link[" + std::to_string(action.link) + "]";
          break;
        case fault::ActionKind::kSwitchDown:
        case fault::ActionKind::kSwitchUp:
          text += " switch[" + std::to_string(action.node) + "]";
          break;
        case fault::ActionKind::kGmLoss:
        case fault::ActionKind::kGmRebuild:
          break;
      }
      flight->annotate(traffic_start + action.at, text);
    }
  }
  if (!fault_schedule.empty()) injector.arm(std::move(fault_schedule), traffic_start);

  sim.run_until(traffic_start + milliseconds(1) + config.traffic_duration);
  network.stop_traffic();
  sim.run_until(sim.now() + config.drain);
  if (queue_sampler) queue_sampler->stop();
  recovery.finalize(sim.now());
  result.events_executed = sim.events_executed();
  result.sim_end = sim.now();

  if (config.observe.metrics != nullptr) {
    network.collect_metrics(*config.observe.metrics);
    result.plan.collect_metrics(*config.observe.metrics);
    sim.collect_metrics(*config.observe.metrics);
    if (fault_plane) {
      injector.collect_metrics(*config.observe.metrics);
      recovery.collect_metrics(*config.observe.metrics);
    }
  }
  if (config.observe.timeline != nullptr && trace != nullptr) {
    export_flow_hops(*trace, config.built.topology, config.options.runtime.link_rate,
                     *config.observe.timeline);
    export_gate_grid(config.options.runtime, TimePoint(0), sim.now(),
                     *config.observe.timeline);
  }
  if (flight != nullptr) {
    const flight::FlightReport report = flight->report(sim.now());
    if (const flight::FrameRecord* worst = report.worst_latency_frame()) {
      result.worst_frame_latency_ns = worst->latency().ns();
      const topo::NodeId hop_node = flight::dominant_hop(*worst);
      if (hop_node != topo::kInvalidNode) {
        result.worst_frame_hop = config.built.topology.node(hop_node).name;
      }
      result.worst_frame_json = flight::frame_json(*worst, config.built.topology);
    }
    if (config.observe.timeline != nullptr) {
      export_flight_spans(report, config.built.topology, *config.observe.timeline);
    }
  }

  result.ts = network.analyzer().summary(net::TrafficClass::kTimeSensitive);
  result.rc = network.analyzer().summary(net::TrafficClass::kRateConstrained);
  result.be = network.analyzer().summary(net::TrafficClass::kBestEffort);
  result.switch_drops = network.total_switch_drops();
  result.ts_gate_drops = network.drops_by(sw::DropReason::kIngressGateClosed);
  result.queue_full_drops = network.drops_by(sw::DropReason::kQueueFull);
  result.buffer_drops = network.drops_by(sw::DropReason::kBufferExhausted);
  result.peak_ts_queue = network.peak_ts_queue_occupancy();
  result.peak_buffer_in_use = network.peak_buffer_in_use();
  result.max_sync_error = network.max_sync_error();
  result.fault_actions = injector.actions_applied();
  result.link_down_drops = network.link_drops();
  result.corruption_drops = network.corruption_drops();
  result.reboot_drops = network.reboot_drops();
  result.gm_handoffs = network.gm_handoffs();
  result.post_handoff_sync_excursion = network.post_handoff_sync_excursion();
  result.frer_duplicate_escapes = recovery.total_duplicates();
  result.frames_lost_failover = recovery.total_lost_in_failover();
  result.worst_recovery = recovery.worst_recovery();
  if (config.export_flow_csv) result.flow_csv = network.analyzer().to_csv();

  std::vector<double> ts_samples =
      network.analyzer().latency_samples(net::TrafficClass::kTimeSensitive);
  if (!ts_samples.empty()) {
    result.ts_p50_us = analysis::percentile_of(ts_samples, 50.0);
    result.ts_p99_us = analysis::percentile_of(ts_samples, 99.0);
  }

  // Distribution of per-packet TS latencies (all flows merged).
  if (result.ts.received > 0 && result.ts.latency_us.max() > result.ts.latency_us.min()) {
    analysis::Histogram hist(result.ts.latency_us.min(),
                             result.ts.latency_us.max() + 1e-9, 20);
    for (const net::FlowId id : network.analyzer().flow_ids()) {
      const analysis::FlowRecord& rec = network.analyzer().flow(id);
      if (rec.traffic_class != net::TrafficClass::kTimeSensitive) continue;
      for (double p = 2.5; p < 100.0; p += 5.0) {
        // Sampled percentiles approximate the per-flow distribution
        // without exporting every sample.
        if (rec.latency_us.count() > 0) hist.add(rec.latency_us.percentile(p));
      }
    }
    result.ts_latency_histogram = hist.render_ascii(40);
  }
  return result;
}

}  // namespace tsn::netsim
