// Network assembly: instantiates a TsnSwitch per topology switch node and
// a TsnNic per host node, wires the links, builds the gPTP domain over the
// physical topology, and provisions flows end-to-end (forwarding entries,
// classification, meters, CBS shapers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/analyzer.hpp"
#include "event/simulator.hpp"
#include "fault/injector.hpp"
#include "netsim/nic.hpp"
#include "netsim/trace.hpp"
#include "switch/tsn_switch.hpp"
#include "timesync/gptp.hpp"
#include "topo/topology.hpp"
#include "traffic/flow.hpp"

namespace tsn::fault {
class RecoveryTracker;
}  // namespace tsn::fault

namespace tsn::flight {
class FlightRecorder;
}  // namespace tsn::flight

namespace tsn::netsim {

struct NetworkOptions {
  sw::SwitchResourceConfig resource;
  sw::SwitchRuntimeConfig runtime;

  bool enable_gptp = true;
  /// With enable_gptp == false: true leaves every device free-running on
  /// its own drifting oscillator (the "no synchronization" ablation);
  /// false falls back to perfect clocks (unit-test determinism).
  bool free_run_drift = false;
  /// Per-device oscillator error drawn uniformly from [-max, +max] ppm.
  double max_drift_ppm = 20.0;
  timesync::GptpConfig gptp = timesync::fast_startup_profile();

  /// CBS headroom: idleSlope = min(link, rate * (1 + headroom)).
  double cbs_headroom = 0.10;

  std::uint64_t seed = 7;
};

class Network : public fault::FaultSurface {
 public:
  Network(event::Simulator& sim, const topo::Topology& topology, NetworkOptions options);

  /// Installs tables/meters/shapers for `flows` on every switch along each
  /// flow's route and registers the flows on their source NICs. Returns
  /// the number of provisioning failures (table/meter/shaper capacity
  /// exceeded) — 0 when the resource configuration fits the workload.
  std::int64_t provision(const std::vector<traffic::FlowSpec>& flows);

  /// FRER (802.1CB): provisions `flow` over its shortest route under
  /// flow.vid and over a link-disjoint secondary route under
  /// `secondary_vid`, registers replication at the talker NIC and
  /// sequence recovery at the listener NIC. Throws when no link-disjoint
  /// secondary path exists. Returns provisioning failures.
  std::int64_t provision_frer(const traffic::FlowSpec& flow, VlanId secondary_vid,
                              std::size_t history_length = 64);

  // --- fault::FaultSurface ---------------------------------------------
  /// Failure injection: takes a link administratively down (or back up).
  /// Frames already in flight still arrive; frames transmitted onto a
  /// down link are blackholed and counted in link_drops().
  void set_link_state(topo::LinkId link, bool up) override;
  [[nodiscard]] std::uint64_t link_drops() const { return link_drops_; }

  /// Per-bit error probability on `link`: each frame is corrupted (and
  /// dropped at the receiver with a bad FCS, counted in
  /// corruption_drops()) with probability 1 - (1-ber)^wire_bits. Draws
  /// come from the network's dedicated "corruption" RNG stream, so
  /// enabling corruption cannot perturb traffic or drift draws. 0 clears.
  void set_link_corruption(topo::LinkId link, double bit_error_rate) override;
  [[nodiscard]] std::uint64_t corruption_drops() const { return corruption_drops_; }

  /// Switch reboot model: while a switch is down it silently drops every
  /// frame it would transmit or receive (counted in reboot_drops()).
  /// Queue contents survive — this models a dataplane stall, not a cold
  /// boot — and gPTP message exchange is not interrupted.
  void set_switch_state(topo::NodeId node, bool up) override;
  [[nodiscard]] std::uint64_t reboot_drops() const { return reboot_drops_; }

  /// Kills the serving gPTP grandmaster (requires enable_gptp). Slaves
  /// free-run in holdover until rebuild_sync_tree() re-runs the BMCA over
  /// the physical topology and restarts the message machinery.
  void fail_grandmaster() override;
  void rebuild_sync_tree() override;
  [[nodiscard]] std::uint64_t gm_handoffs() const { return gm_handoffs_; }
  /// Worst |sync error| the 10 ms probe observed at/after the first
  /// grandmaster handoff — the holdover + re-convergence excursion.
  [[nodiscard]] Duration post_handoff_sync_excursion() const {
    return post_handoff_excursion_;
  }

  /// Wires `tracker` (which must outlive the network) into every NIC's
  /// injection/delivery hooks for per-flow recovery metrics.
  void attach_recovery_tracker(fault::RecoveryTracker& tracker);

  /// Attaches a link trace (the simulator's port mirror). `trace` must
  /// outlive the network; pass nullptr to detach.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches the per-frame flight recorder to every device (switches,
  /// NICs) and the wire. `recorder` must outlive the network; nullptr
  /// detaches. Pure observer: attaching it must not change simulation
  /// behavior, and with it detached the dataplane pays one pointer
  /// compare per hook site.
  void set_flight(flight::FlightRecorder* recorder);

  /// Arms gate engines (CQF program, cycle base = synchronized time 0) and
  /// the gPTP machinery. Call once, then run the simulator for a warm-up
  /// period before starting traffic.
  void start_network();

  /// Starts injection on every NIC. `synced_start` is in network
  /// (grandmaster) time and is rounded UP to the next `grid` boundary
  /// (default: the CQF slot) so ITP offsets line up with the gate
  /// programs; a synthesized Qbv program aligns to its full cycle.
  void start_traffic(TimePoint synced_start, Duration margin = microseconds(2),
                     Duration grid = Duration::zero());

  void stop_traffic();

  // --- access ----------------------------------------------------------
  [[nodiscard]] analysis::Analyzer& analyzer() { return analyzer_; }
  [[nodiscard]] const analysis::Analyzer& analyzer() const { return analyzer_; }
  [[nodiscard]] sw::TsnSwitch& switch_at(topo::NodeId node);
  [[nodiscard]] TsnNic& nic_at(topo::NodeId node);
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }
  [[nodiscard]] timesync::GptpDomain* gptp() { return gptp_ ? gptp_.get() : nullptr; }

  // --- aggregate statistics ---------------------------------------------
  [[nodiscard]] std::uint64_t total_switch_drops() const;
  [[nodiscard]] std::uint64_t drops_by(sw::DropReason reason) const;
  /// Peak occupancy over all CQF (TS) queues in the network.
  [[nodiscard]] std::int64_t peak_ts_queue_occupancy() const;
  /// Peak buffers concurrently in use in any port pool.
  [[nodiscard]] std::int64_t peak_buffer_in_use() const;
  /// Worst |sync error| observed by the periodic probe since the network
  /// started (sampled every 10 ms), not just the instantaneous value —
  /// transients during servo convergence count.
  [[nodiscard]] Duration max_sync_error() const;

  /// Packets sitting in `node`'s CQF (TS) queue pair across all its ports
  /// right now — the instantaneous value behind peak_ts_queue_occupancy(),
  /// for periodic timeline sampling.
  [[nodiscard]] std::int64_t current_ts_queue_depth(topo::NodeId node) const;

  /// Exports the whole network into `registry`: every switch's dataplane
  /// series (TsnSwitch::collect_metrics), the gPTP domain's servo series
  /// when synchronization is enabled, and network-level aggregates
  /// ("tsn.network.*": link drops, TS-queue/buffer peaks, worst observed
  /// sync error).
  void collect_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  struct Endpoint {
    topo::NodeId peer = topo::kInvalidNode;
    std::uint8_t peer_port = 0;
    Duration propagation{};
    topo::LinkId link = 0;
  };

  void build_devices();
  void build_links();
  void build_gptp();
  void deliver(topo::NodeId from, std::uint8_t port, const net::Packet& packet);
  /// Installs unicast + classification entries for `flow` along `hops`.
  std::int64_t provision_route(const traffic::FlowSpec& flow,
                               const std::vector<topo::Hop>& hops);

  event::Simulator& sim_;
  const topo::Topology* topology_;
  NetworkOptions options_;
  /// Dedicated stream for corruption draws — per-frame Bernoulli trials
  /// must not advance any stream another subsystem reads.
  Rng corrupt_rng_;

  analysis::Analyzer analyzer_;
  // Ordered maps: every traversal (device start, traffic start/stop,
  // counter aggregation) walks nodes in ascending NodeId order, so event
  // scheduling and report output are deterministic by construction
  // (tsnlint's unordered-iteration rule enforces this repo-wide).
  std::map<topo::NodeId, std::unique_ptr<sw::TsnSwitch>> switches_;
  std::map<topo::NodeId, std::unique_ptr<TsnNic>> nics_;
  // endpoint_[node][port]
  std::map<topo::NodeId, std::vector<Endpoint>> endpoints_;

  std::vector<bool> link_up_;
  std::vector<double> link_ber_;
  std::vector<bool> node_up_;
  std::uint64_t link_drops_ = 0;
  std::uint64_t corruption_drops_ = 0;
  std::uint64_t reboot_drops_ = 0;
  TraceRecorder* trace_ = nullptr;
  flight::FlightRecorder* flight_ = nullptr;

  std::unique_ptr<timesync::GptpDomain> gptp_;
  std::map<topo::NodeId, std::size_t> gptp_index_;
  std::unique_ptr<event::PeriodicTask> sync_probe_;
  Duration worst_sync_error_{};
  std::uint64_t gm_handoffs_ = 0;
  TimePoint first_handoff_at_ = TimePoint::max();
  Duration post_handoff_excursion_{};

  bool network_started_ = false;
};

}  // namespace tsn::netsim
