// Link-level packet trace — the simulator's "port mirror".
//
// When attached to a Network, every frame handed to a link is recorded
// (timestamp, link endpoints, flow id, sequence, frame size), in a
// bounded ring so long runs cannot exhaust memory. Traces reconstruct a
// packet's path hop by hop — the first thing one needs when a TS stream
// misses its slot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/packet.hpp"
#include "topo/topology.hpp"

namespace tsn::netsim {

struct TraceEntry {
  TimePoint at{};              // transmission end (hand-off to the link)
  topo::NodeId from = topo::kInvalidNode;
  std::uint8_t from_port = 0;
  topo::NodeId to = topo::kInvalidNode;
  net::FlowId flow = net::kInvalidFlowId;
  std::uint64_t sequence = 0;
  std::int32_t frame_bytes = 0;
  bool link_down = false;  // frame was blackholed by failure injection
};

class TraceRecorder {
 public:
  /// Capacity for an effectively-unbounded recorder (`--trace-limit 0`
  /// on the CLI): the ring never wraps, every entry is kept.
  static constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

  /// Keeps the most recent `capacity` entries.
  explicit TraceRecorder(std::size_t capacity = 4096);

  void record(TraceEntry entry);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped_entries() const {
    return total_ - static_cast<std::uint64_t>(entries_.size());
  }

  /// Entries oldest-first.
  [[nodiscard]] std::vector<TraceEntry> entries() const;

  /// The recorded hop sequence of one packet (flow, sequence),
  /// oldest-first — its path through the network.
  [[nodiscard]] std::vector<TraceEntry> path_of(net::FlowId flow,
                                                std::uint64_t sequence) const;

  /// Human-readable dump, `limit` most recent entries. Node names are
  /// resolved through `topology`. Notes both ring overwrites and entries
  /// hidden by `limit`, so a partial dump is never mistaken for the
  /// whole trace.
  [[nodiscard]] std::string render(const topo::Topology& topology,
                                   std::size_t limit = 32) const;

  /// Machine-readable exports, entries oldest-first. The CSV leads with a
  /// "# dropped_entries=N" comment and a column header; the JSON object
  /// carries {"total_recorded","dropped_entries","entries":[...]}.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  std::vector<TraceEntry> entries_;  // ring
  std::size_t head_ = 0;             // index of the oldest entry
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

}  // namespace tsn::netsim
